#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/bitstream.h"
#include "common/geometry.h"
#include "common/glyphs.h"
#include "common/random.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace visualroad {
namespace {

// --- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad width");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad width");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveExtractsValue) {
  StatusOr<std::string> result = std::string("payload");
  std::string extracted = std::move(result).value();
  EXPECT_EQ(extracted, "payload");
}

StatusOr<int> Doubler(StatusOr<int> input) {
  VR_ASSIGN_OR_RETURN(int value, std::move(input));
  return value * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  StatusOr<int> ok = Doubler(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> err = Doubler(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

// --- Random ---

TEST(RandomTest, Pcg32IsDeterministic) {
  Pcg32 a(123, 7), b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentStreamsDiffer) {
  Pcg32 a(123, 1), b(123, 2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RandomTest, BoundedStaysInBounds) {
  Pcg32 rng(9, 3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RandomTest, BoundedOneAlwaysZero) {
  Pcg32 rng(9, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RandomTest, NextIntCoversRangeInclusive) {
  Pcg32 rng(4, 4);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t value = rng.NextInt(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, NextDoubleInHalfOpenUnitInterval) {
  Pcg32 rng(5, 6);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, NextDoubleMeanIsCentred) {
  Pcg32 rng(11, 13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RandomTest, GaussianMomentsApproximatelyCorrect) {
  Pcg32 rng(21, 1);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RandomTest, SubStreamsAreIndependentOfDrawOrder) {
  // Drawing extra values from one substream must not perturb another.
  Pcg32 a1 = SubStream(99, "alpha");
  Pcg32 b1 = SubStream(99, "beta");
  uint32_t a_first = a1.Next();
  (void)b1.Next();

  Pcg32 b2 = SubStream(99, "beta");
  for (int i = 0; i < 10; ++i) (void)b2.Next();
  Pcg32 a2 = SubStream(99, "alpha");
  EXPECT_EQ(a2.Next(), a_first);
}

TEST(RandomTest, HashLabelDistinguishesLabels) {
  EXPECT_NE(HashLabel("tile"), HashLabel("tiles"));
  EXPECT_NE(HashLabel("a"), HashLabel("b"));
  EXPECT_EQ(HashLabel("camera"), HashLabel("camera"));
}

TEST(RandomTest, NextBoolProbability) {
  Pcg32 rng(31, 17);
  int trues = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.25)) ++trues;
  }
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.02);
}

// --- Geometry ---

TEST(GeometryTest, Vec3CrossIsOrthogonal) {
  Vec3 a{1, 2, 3}, b{-2, 0.5, 4};
  Vec3 c = a.Cross(b);
  EXPECT_NEAR(c.Dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.Dot(b), 0.0, 1e-12);
}

TEST(GeometryTest, NormalizedHasUnitLength) {
  Vec3 v = Vec3{3, 4, 12}.Normalized();
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
}

TEST(GeometryTest, RotationZRotatesXToY) {
  Vec3 rotated = Mat3::RotationZ(kPi / 2.0) * Vec3{1, 0, 0};
  EXPECT_NEAR(rotated.x, 0.0, 1e-12);
  EXPECT_NEAR(rotated.y, 1.0, 1e-12);
}

TEST(GeometryTest, MatrixTransposeOfRotationIsInverse) {
  Mat3 r = Mat3::RotationZ(0.7) * Mat3::RotationX(-0.3);
  Mat3 identity = r * r.Transposed();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(identity.m[i][j], i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(GeometryTest, RectIntersectionAndUnion) {
  RectI a{0, 0, 10, 10}, b{5, 5, 15, 15};
  RectI inter = a.Intersect(b);
  EXPECT_EQ(inter, (RectI{5, 5, 10, 10}));
  RectI uni = a.Union(b);
  EXPECT_EQ(uni, (RectI{0, 0, 15, 15}));
}

TEST(GeometryTest, EmptyRectHasZeroArea) {
  RectI r{5, 5, 5, 9};
  EXPECT_TRUE(r.Empty());
  EXPECT_EQ(r.Area(), 0);
}

TEST(GeometryTest, ClampRestrictsToFrame) {
  RectI r{-5, -5, 50, 50};
  RectI clamped = r.Clamp(20, 10);
  EXPECT_EQ(clamped, (RectI{0, 0, 20, 10}));
}

TEST(GeometryTest, IoUIdenticalIsOne) {
  RectI r{2, 3, 12, 13};
  EXPECT_DOUBLE_EQ(IoU(r, r), 1.0);
  EXPECT_DOUBLE_EQ(JaccardDistance(r, r), 0.0);
}

TEST(GeometryTest, IoUDisjointIsZero) {
  EXPECT_DOUBLE_EQ(IoU({0, 0, 5, 5}, {10, 10, 20, 20}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({0, 0, 5, 5}, {10, 10, 20, 20}), 1.0);
}

TEST(GeometryTest, IoUHalfOverlap) {
  // Two 10x10 boxes overlapping in a 5x10 strip: IoU = 50 / 150.
  EXPECT_NEAR(IoU({0, 0, 10, 10}, {5, 0, 15, 10}), 50.0 / 150.0, 1e-12);
}

TEST(GeometryTest, WrapAngleStaysInRange) {
  for (double a = -20.0; a <= 20.0; a += 0.37) {
    double w = WrapAngle(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
  }
}

// --- Bitstream ---

TEST(BitstreamTest, SingleBitsRoundTrip) {
  BitWriter writer;
  bool pattern[] = {true, false, true, true, false, false, true, false, true};
  for (bool bit : pattern) writer.WriteBit(bit);
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes);
  for (bool bit : pattern) EXPECT_EQ(reader.ReadBit(), bit);
}

TEST(BitstreamTest, MultiBitFieldsRoundTrip) {
  BitWriter writer;
  writer.WriteBits(0x2A, 6);
  writer.WriteBits(0x1FFFF, 17);
  writer.WriteBits(1, 1);
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.ReadBits(6), 0x2Au);
  EXPECT_EQ(reader.ReadBits(17), 0x1FFFFu);
  EXPECT_EQ(reader.ReadBits(1), 1u);
}

class GolombRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GolombRoundTrip, UnsignedRoundTrips) {
  BitWriter writer;
  writer.WriteUe(GetParam());
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.ReadUe(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, GolombRoundTrip,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 8u, 100u, 255u,
                                           1023u, 65535u, 1000000u));

TEST(BitstreamTest, SignedGolombRoundTrips) {
  BitWriter writer;
  int32_t values[] = {0, 1, -1, 2, -2, 17, -99, 30000, -30000};
  for (int32_t v : values) writer.WriteSe(v);
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes);
  for (int32_t v : values) EXPECT_EQ(reader.ReadSe(), v);
}

TEST(BitstreamTest, ReaderPastEndReturnsZero) {
  std::vector<uint8_t> bytes = {0xFF};
  BitReader reader(bytes);
  EXPECT_EQ(reader.ReadBits(8), 0xFFu);
  EXPECT_EQ(reader.ReadBits(16), 0u);
  EXPECT_TRUE(reader.Exhausted());
}

TEST(BitstreamTest, SequencesOfMixedWritesRoundTrip) {
  Pcg32 rng(77, 5);
  BitWriter writer;
  std::vector<std::pair<uint64_t, int>> fields;
  for (int i = 0; i < 500; ++i) {
    int width = 1 + static_cast<int>(rng.NextBounded(24));
    uint64_t value = rng.Next() & ((1ULL << width) - 1);
    fields.push_back({value, width});
    writer.WriteBits(value, width);
  }
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes);
  for (const auto& [value, width] : fields) {
    EXPECT_EQ(reader.ReadBits(width), value);
  }
}

// --- ThreadPool ---

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](int i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter = 7; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 7);
}

// --- Serialize ---

TEST(SerializeTest, PrimitivesRoundTrip) {
  ByteWriter writer;
  writer.U8(200);
  writer.U32(0xDEADBEEF);
  writer.I32(-12345);
  writer.U64(0x0123456789ABCDEFULL);
  writer.F64(-3.25e-8);
  writer.Str("visual road");
  std::vector<uint8_t> bytes = writer.Take();

  ByteCursor cursor(bytes);
  EXPECT_EQ(cursor.U8(), 200);
  EXPECT_EQ(cursor.U32(), 0xDEADBEEFu);
  EXPECT_EQ(cursor.I32(), -12345);
  EXPECT_EQ(cursor.U64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(cursor.F64(), -3.25e-8);
  EXPECT_EQ(cursor.Str(), "visual road");
  EXPECT_TRUE(cursor.ok());
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(SerializeTest, TruncationSetsNotOk) {
  ByteWriter writer;
  writer.U32(1);
  std::vector<uint8_t> bytes = writer.Take();
  bytes.pop_back();
  ByteCursor cursor(bytes);
  (void)cursor.U32();
  EXPECT_FALSE(cursor.ok());
}

TEST(SerializeTest, StringWithEmbeddedNulRoundTrips) {
  ByteWriter writer;
  std::string s("a\0b", 3);
  writer.Str(s);
  std::vector<uint8_t> bytes = writer.Take();
  ByteCursor cursor(bytes);
  EXPECT_EQ(cursor.Str(), s);
}

// --- Glyphs ---

TEST(GlyphTest, KnownCharactersHaveInk) {
  for (char c : std::string("ABCXYZ0129")) {
    int ink = 0;
    for (int y = 0; y < kGlyphHeight; ++y) {
      for (int x = 0; x < kGlyphWidth; ++x) {
        if (GlyphPixel(c, x, y)) ++ink;
      }
    }
    EXPECT_GT(ink, 4) << "glyph " << c;
  }
}

TEST(GlyphTest, SpaceIsBlank) {
  for (int y = 0; y < kGlyphHeight; ++y) {
    for (int x = 0; x < kGlyphWidth; ++x) {
      EXPECT_FALSE(GlyphPixel(' ', x, y));
    }
  }
}

TEST(GlyphTest, LowercaseFoldsToUppercase) {
  for (int y = 0; y < kGlyphHeight; ++y) {
    for (int x = 0; x < kGlyphWidth; ++x) {
      EXPECT_EQ(GlyphPixel('g', x, y), GlyphPixel('G', x, y));
    }
  }
}

TEST(GlyphTest, OutOfBoundsIsFalse) {
  EXPECT_FALSE(GlyphPixel('A', -1, 0));
  EXPECT_FALSE(GlyphPixel('A', kGlyphWidth, 0));
  EXPECT_FALSE(GlyphPixel('A', 0, kGlyphHeight));
}

TEST(GlyphTest, AlphabetGlyphsAreDistinct) {
  // Every pair of plate-alphabet glyphs must differ in at least 3 pixels so
  // the ALPR template matcher can discriminate them.
  const std::string alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  for (size_t i = 0; i < alphabet.size(); ++i) {
    for (size_t j = i + 1; j < alphabet.size(); ++j) {
      int differing = 0;
      for (int y = 0; y < kGlyphHeight; ++y) {
        for (int x = 0; x < kGlyphWidth; ++x) {
          if (GlyphPixel(alphabet[i], x, y) != GlyphPixel(alphabet[j], x, y)) {
            ++differing;
          }
        }
      }
      EXPECT_GE(differing, 3) << alphabet[i] << " vs " << alphabet[j];
    }
  }
}

}  // namespace
}  // namespace visualroad
