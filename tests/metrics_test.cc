#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "driver/datasets.h"
#include "queries/semantic_cache.h"
#include "driver/vcd.h"
#include "storage/vss.h"
#include "video/codec/codec.h"
#include "video/codec/gop_cache.h"
#include "video/rtp.h"

namespace visualroad {
namespace {

using metrics::Counter;
using metrics::FormatMetricValue;
using metrics::Gauge;
using metrics::Histogram;
using metrics::MetricsRegistry;

// --- Instruments ---

TEST(MetricsTest, GetIsGetOrCreate) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("vr_test_ops_total", "Ops", "kind=\"read\"");
  Counter& b = registry.GetCounter("vr_test_ops_total", "Ops", "kind=\"read\"");
  Counter& c = registry.GetCounter("vr_test_ops_total", "Ops", "kind=\"write\"");
  EXPECT_EQ(&a, &b);      // Same (name, labels) -> same instrument.
  EXPECT_NE(&a, &c);      // Another label set is another instrument.
  a.Increment(2);
  EXPECT_DOUBLE_EQ(b.Value(), 2.0);
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);
}

TEST(MetricsTest, CounterConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("vr_test_total", "Test");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Integer counts are exact in a double up to 2^53.
  EXPECT_DOUBLE_EQ(counter.Value(), 1.0 * kThreads * kPerThread);
}

TEST(MetricsTest, GaugeSetAddAndHighWaterMark) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(5);
  gauge.Add(-12);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.0);
  gauge.SetMax(2);  // Lower: no effect.
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.0);
  gauge.SetMax(7);
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.0);
}

TEST(MetricsTest, HistogramBucketsAreCumulative) {
  Histogram histogram({0.25, 1.0, 4.0});
  histogram.Observe(0.125);
  histogram.Observe(0.5);
  histogram.Observe(0.5);
  histogram.Observe(100.0);
  EXPECT_EQ(histogram.CumulativeCount(0), 1);  // <= 0.25
  EXPECT_EQ(histogram.CumulativeCount(1), 3);  // <= 1.0
  EXPECT_EQ(histogram.CumulativeCount(2), 3);  // <= 4.0
  EXPECT_EQ(histogram.CumulativeCount(3), 4);  // +Inf
  EXPECT_EQ(histogram.TotalCount(), 4);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 101.125);
}

TEST(MetricsTest, FormatMetricValueIntegersHaveNoDecimalPoint) {
  EXPECT_EQ(FormatMetricValue(0), "0");
  EXPECT_EQ(FormatMetricValue(42), "42");
  EXPECT_EQ(FormatMetricValue(-3), "-3");
  EXPECT_EQ(FormatMetricValue(1e6), "1000000");
  EXPECT_EQ(FormatMetricValue(0.25), "0.25");
  EXPECT_EQ(FormatMetricValue(1.5), "1.5");
}

// --- Prometheus exposition ---

TEST(MetricsTest, PrometheusTextMatchesGolden) {
  MetricsRegistry registry;
  registry.GetCounter("vr_test_ops_total", "Operations", "kind=\"read\"")
      .Increment(3);
  registry.GetCounter("vr_test_ops_total", "Operations", "kind=\"write\"")
      .Increment();
  registry.GetGauge("vr_test_bytes_in_use", "Resident bytes").Set(1024);
  Histogram& histogram = registry.GetHistogram(
      "vr_test_latency_seconds", "Latency", {0.25, 1.0});
  histogram.Observe(0.125);  // Dyadic values keep the sum exact.
  histogram.Observe(0.5);
  histogram.Observe(5.0);

  // Families and label sets export in lexicographic order, so the text is
  // deterministic and comparable against a golden string.
  const std::string expected =
      "# HELP vr_test_bytes_in_use Resident bytes\n"
      "# TYPE vr_test_bytes_in_use gauge\n"
      "vr_test_bytes_in_use 1024\n"
      "# HELP vr_test_latency_seconds Latency\n"
      "# TYPE vr_test_latency_seconds histogram\n"
      "vr_test_latency_seconds_bucket{le=\"0.25\"} 1\n"
      "vr_test_latency_seconds_bucket{le=\"1\"} 2\n"
      "vr_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "vr_test_latency_seconds_sum 5.625\n"
      "vr_test_latency_seconds_count 3\n"
      "# HELP vr_test_ops_total Operations\n"
      "# TYPE vr_test_ops_total counter\n"
      "vr_test_ops_total{kind=\"read\"} 3\n"
      "vr_test_ops_total{kind=\"write\"} 1\n";
  EXPECT_EQ(registry.PrometheusText(), expected);

  std::vector<std::string> names = registry.MetricNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "vr_test_bytes_in_use");
  EXPECT_EQ(names[1], "vr_test_latency_seconds");
  EXPECT_EQ(names[2], "vr_test_ops_total");
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// --- Registry/docs sync ---

video::codec::EncodedVideo EncodeTestVideo(int frames, int gop_length) {
  video::Video video;
  video.fps = 15;
  for (int f = 0; f < frames; ++f) {
    video::Frame frame(32, 32);
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        double value = 128 + 80 * std::sin((x + f * 3) * 0.13) * std::cos(y * 0.09);
        frame.SetPixel(x, y, static_cast<uint8_t>(value), 120, 130);
      }
    }
    video.frames.push_back(std::move(frame));
  }
  video::codec::EncoderConfig config;
  config.qp = 24;
  config.gop_length = gop_length;
  auto encoded = video::codec::Encode(video, config);
  EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
  return *encoded;
}

/// Every metric name registered in the Global() registry must be documented
/// in docs/OBSERVABILITY.md. Registration is lazy (a metric exists once its
/// subsystem first reports), so the test first exercises every instrumented
/// subsystem — pools, codec, GOP cache, RTP, all three engines, generator,
/// driver — then walks MetricNames().
TEST(MetricsDocsSyncTest, EveryRegisteredMetricIsDocumented) {
  // Thread pool (vr_pool_*).
  {
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) pool.Submit([] {});
    ASSERT_TRUE(pool.Wait().ok());
  }

  // Codec encode/decode including mid-GOP warmup, via the GOP cache
  // (vr_codec_*, vr_gop_cache_*, vr_gop_decode_seconds).
  {
    video::codec::EncodedVideo encoded = EncodeTestVideo(/*frames=*/8,
                                                         /*gop_length=*/4);
    video::codec::GopCache cache;
    uint64_t identity = video::codec::StreamIdentity(encoded);
    auto miss = cache.Get(encoded, identity, 0, 4);
    ASSERT_TRUE(miss.ok()) << miss.status().ToString();
    auto hit = cache.Get(encoded, identity, 0, 4);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    // Decode starting mid-GOP so warmup frames are consumed.
    auto warm = video::codec::DecodeRange(encoded, 6, 2);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }

  // RTP packetise/reassemble (vr_rtp_*).
  {
    video::codec::EncodedVideo encoded = EncodeTestVideo(/*frames=*/2,
                                                         /*gop_length=*/2);
    video::rtp::Packetizer packetizer(/*ssrc=*/7);
    video::rtp::Depacketizer depacketizer;
    for (const video::rtp::Packet& packet :
         packetizer.PacketizeVideo(encoded)) {
      depacketizer.Feed(packet);
    }
    EXPECT_TRUE(depacketizer.HasFrame());
  }

  // Generator, driver, and engine metrics (vr_generator_*, vr_driver_*,
  // vr_engine_*): one tiny end-to-end Q1 batch per engine.
  {
    sim::CityConfig config;
    config.scale_factor = 1;
    config.width = 96;
    config.height = 54;
    config.duration_seconds = 1.0;
    config.fps = 15;
    config.seed = 77;
    auto dataset = driver::PrepareDataset(config);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

    driver::VcdOptions vcd_options;
    vcd_options.validate = false;
    vcd_options.batch_size_override = 1;
    vcd_options.output_mode = systems::OutputMode::kStreaming;
    driver::VisualCityDriver vcd(*dataset, vcd_options);
    systems::EngineOptions engine_options;
    engine_options.threads = 2;
    std::unique_ptr<systems::Vdbms> engines[3] = {
        systems::MakeBatchEngine(engine_options),
        systems::MakePipelineEngine(engine_options),
        systems::MakeCascadeEngine(engine_options)};
    for (auto& engine : engines) {
      auto result = vcd.RunQueryBatch(*engine, queries::QueryId::kQ1);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      engine->Quiesce();
    }
  }

  // Storage service metrics (vr_store_*, vr_vss_*): ingest into a sharded
  // store, read at a transcode tier, range-read, and compact.
  {
    namespace fs = std::filesystem;
    std::string root = (fs::temp_directory_path() / "vr_metrics_vss").string();
    storage::StoreOptions store_options;
    store_options.root = root;
    store_options.block_size = 512;
    store_options.metrics_label = "metrics_test";
    auto store = storage::ShardedStore::Open(store_options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    storage::VssOptions vss_options;
    vss_options.store = &*store;
    vss_options.resident_bytes = 0;
    auto vss = storage::VideoStorageService::Open(vss_options);
    ASSERT_TRUE(vss.ok()) << vss.status().ToString();
    video::codec::EncodedVideo encoded = EncodeTestVideo(/*frames=*/8,
                                                         /*gop_length=*/4);
    ASSERT_TRUE((*vss)->Ingest("cam", encoded).ok());
    auto base = (*vss)->BaseTier("cam");
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE((*vss)->ReadRange("cam", *base, 5, 2).ok());
    storage::VariantKey tier{16, 16, 32};
    ASSERT_TRUE((*vss)->ReadVideo("cam", tier).ok());
    ASSERT_TRUE((*vss)->ReadVideo("cam", tier).ok());
    ASSERT_TRUE((*vss)->Compact().ok());
    // A degraded datanode exercises the fail-over counter.
    ASSERT_TRUE(store->DisableNode(0).ok());
    (*vss)->DropResident();
    auto read = (*vss)->ReadVideo("cam", *base);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    std::error_code ec;
    fs::remove_all(root, ec);
  }

  // Semantic result store (vr_semcache_*): one insert and one covering
  // probe registers the whole instrument family.
  {
    queries::SemanticCache semcache;
    queries::SemanticEntry entry;
    entry.key.stream = 0x5e;
    entry.key.model = "metrics-test";
    entry.range = {0, 4};
    entry.detections.resize(4);
    entry.RecomputeBytes();
    semcache.Insert(std::move(entry));
    EXPECT_NE(semcache.Probe({0x5e, "metrics-test", 0.0}, {0, 4}), nullptr);
  }

  std::ifstream docs(std::string(VISUALROAD_SOURCE_DIR) +
                     "/docs/OBSERVABILITY.md");
  ASSERT_TRUE(docs.good()) << "docs/OBSERVABILITY.md missing";
  std::stringstream buffer;
  buffer << docs.rdbuf();
  const std::string text = buffer.str();

  std::vector<std::string> undocumented;
  for (const std::string& name : MetricsRegistry::Global().MetricNames()) {
    if (text.find("`" + name + "`") == std::string::npos) {
      undocumented.push_back(name);
    }
  }
  std::string joined;
  for (const std::string& name : undocumented) joined += name + " ";
  EXPECT_TRUE(undocumented.empty())
      << "metrics registered but not documented in docs/OBSERVABILITY.md: "
      << joined;
}

}  // namespace
}  // namespace visualroad
