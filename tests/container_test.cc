#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "video/container/vrmp.h"

namespace visualroad::video::container {
namespace {

codec::EncodedVideo MakeEncodedVideo(int frames, uint64_t seed) {
  codec::EncodedVideo video;
  video.profile = codec::Profile::kHevcLike;
  video.width = 64;
  video.height = 36;
  video.fps = 24.0;
  Pcg32 rng(seed, 2);
  for (int i = 0; i < frames; ++i) {
    codec::EncodedFrame frame;
    frame.keyframe = i % 5 == 0;
    frame.qp = static_cast<uint8_t>(20 + (i % 10));
    size_t size = 10 + rng.NextBounded(300);
    frame.data.resize(size);
    for (uint8_t& b : frame.data) b = static_cast<uint8_t>(rng.NextBounded(256));
    video.frames.push_back(std::move(frame));
  }
  return video;
}

TEST(VrmpTest, MuxDemuxRoundTrip) {
  Container container;
  container.video = MakeEncodedVideo(12, 51);
  container.tracks.push_back({"WVTT", {'W', 'E', 'B', 'V', 'T', 'T'}});
  container.tracks.push_back({"GTRU", {1, 2, 3, 4, 5}});

  auto parsed = Demux(Mux(container));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->video.profile, container.video.profile);
  EXPECT_EQ(parsed->video.width, 64);
  EXPECT_EQ(parsed->video.height, 36);
  EXPECT_DOUBLE_EQ(parsed->video.fps, 24.0);
  ASSERT_EQ(parsed->video.frames.size(), container.video.frames.size());
  for (size_t i = 0; i < container.video.frames.size(); ++i) {
    EXPECT_EQ(parsed->video.frames[i].keyframe, container.video.frames[i].keyframe);
    EXPECT_EQ(parsed->video.frames[i].qp, container.video.frames[i].qp);
    EXPECT_EQ(parsed->video.frames[i].data, container.video.frames[i].data);
  }
  ASSERT_EQ(parsed->tracks.size(), 2u);
  EXPECT_EQ(parsed->tracks[0].kind, "WVTT");
  EXPECT_EQ(parsed->tracks[1].payload.size(), 5u);
}

TEST(VrmpTest, FindTrackLocatesByKind) {
  Container container;
  container.video = MakeEncodedVideo(1, 52);
  container.tracks.push_back({"GTRU", {9}});
  EXPECT_NE(container.FindTrack("GTRU"), nullptr);
  EXPECT_EQ(container.FindTrack("WVTT"), nullptr);
}

TEST(VrmpTest, EmptyVideoRoundTrips) {
  Container container;
  container.video.width = 8;
  container.video.height = 8;
  auto parsed = Demux(Mux(container));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->video.frames.empty());
}

TEST(VrmpTest, RejectsGarbage) {
  std::vector<uint8_t> garbage = {'n', 'o', 't', 'a', 'b', 'o', 'x'};
  EXPECT_FALSE(Demux(garbage).ok());
}

TEST(VrmpTest, RejectsTruncatedFile) {
  Container container;
  container.video = MakeEncodedVideo(4, 53);
  std::vector<uint8_t> bytes = Mux(container);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(Demux(bytes).ok());
}

TEST(VrmpTest, RejectsMissingMagic) {
  Container container;
  container.video = MakeEncodedVideo(1, 54);
  std::vector<uint8_t> bytes = Mux(container);
  // Corrupt the magic box type.
  bytes[0] = 'X';
  EXPECT_FALSE(Demux(bytes).ok());
}

TEST(VrmpTest, SkipsUnknownBoxes) {
  Container container;
  container.video = MakeEncodedVideo(2, 55);
  std::vector<uint8_t> bytes = Mux(container);
  // Append an unknown box: type "ZZZZ", size 3, payload "abc".
  const char type[] = {'Z', 'Z', 'Z', 'Z'};
  bytes.insert(bytes.end(), type, type + 4);
  uint64_t size = 3;
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<uint8_t>(size >> (8 * i)));
  bytes.push_back('a');
  bytes.push_back('b');
  bytes.push_back('c');
  auto parsed = Demux(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->video.frames.size(), 2u);
}

TEST(VrmpTest, FileRoundTrip) {
  Container container;
  container.video = MakeEncodedVideo(6, 56);
  container.tracks.push_back({"WVTT", {'x'}});
  std::string path =
      (std::filesystem::temp_directory_path() / "vrmp_test.vrmp").string();
  ASSERT_TRUE(WriteContainerFile(container, path).ok());
  auto loaded = ReadContainerFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->video.frames.size(), 6u);
  EXPECT_EQ(loaded->tracks.size(), 1u);
  std::remove(path.c_str());
}

TEST(VrmpTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadContainerFile("/nonexistent/dir/file.vrmp").ok());
}

TEST(VrmpTest, IndexMdatMismatchRejected) {
  Container container;
  container.video = MakeEncodedVideo(3, 57);
  std::vector<uint8_t> bytes = Mux(container);
  // Find the MDAT box and shrink its declared size by rebuilding: easier to
  // corrupt the INDX count by truncating one frame's bytes from MDAT. We
  // instead mux a container whose last frame we enlarge after muxing the
  // index — emulate by chopping the final byte off the file (MDAT payload).
  bytes.pop_back();
  EXPECT_FALSE(Demux(bytes).ok());
}

}  // namespace
}  // namespace visualroad::video::container
