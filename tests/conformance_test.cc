#include <gtest/gtest.h>

#include <cmath>

#include "driver/conformance.h"
#include "driver/datasets.h"
#include "video/metrics.h"

namespace visualroad::driver {
namespace {

QueryBatchResult MakeResult(queries::QueryId id, int instances, int succeeded,
                            double seconds) {
  QueryBatchResult result;
  result.id = id;
  result.engine = "TestEngine";
  result.instances = instances;
  result.succeeded = succeeded;
  result.total_seconds = seconds;
  result.validation.checked = succeeded;
  result.validation.passed = succeeded;
  result.validation.mean_psnr_db = 47.5;
  return result;
}

ConformanceReport MakeReport() {
  ConformanceReport report;
  report.system_name = "TestEngine";
  report.scale_factor = 2;
  report.width = 320;
  report.height = 180;
  report.duration_seconds = 10.0;
  report.fps = 15.0;
  report.seed = 99;
  report.results.push_back(MakeResult(queries::QueryId::kQ1, 8, 8, 1.25));
  report.results.push_back(MakeResult(queries::QueryId::kQ2c, 8, 8, 9.5));
  return report;
}

TEST(ConformanceTest, PassedWhenEverythingValidates) {
  ConformanceReport report = MakeReport();
  EXPECT_TRUE(report.Passed());
  EXPECT_EQ(report.SupportedQueryCount(), 2);
}

TEST(ConformanceTest, FailedValidationFailsReport) {
  ConformanceReport report = MakeReport();
  report.results[0].validation.passed = report.results[0].validation.checked - 1;
  EXPECT_FALSE(report.Passed());
}

TEST(ConformanceTest, HardFailureFailsReport) {
  ConformanceReport report = MakeReport();
  report.results[1].failed = 2;
  EXPECT_FALSE(report.Passed());
}

TEST(ConformanceTest, MemoryExhaustionDoesNotFailReport) {
  // The paper reports out-of-memory queries as N/A, not benchmark failure.
  ConformanceReport report = MakeReport();
  report.results[1].failed = 2;
  report.results[1].resource_exhausted = 2;
  EXPECT_TRUE(report.Passed());
}

TEST(ConformanceTest, UnsupportedQueriesDoNotFailReport) {
  ConformanceReport report = MakeReport();
  QueryBatchResult unsupported;
  unsupported.id = queries::QueryId::kQ9;
  unsupported.instances = 8;
  unsupported.unsupported = 8;
  report.results.push_back(unsupported);
  EXPECT_TRUE(report.Passed());
  EXPECT_EQ(report.SupportedQueryCount(), 2);
}

TEST(ConformanceTest, FormatContainsElections) {
  std::string text = FormatConformanceReport(MakeReport());
  EXPECT_NE(text.find("L=2"), std::string::npos);
  EXPECT_NE(text.find("320x180"), std::string::npos);
  EXPECT_NE(text.find("seed=99"), std::string::npos);
  EXPECT_NE(text.find("offline"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
  EXPECT_NE(text.find("Q2(c)"), std::string::npos);
}

TEST(ConformanceTest, SerializeParseRoundTrips) {
  ConformanceReport report = MakeReport();
  auto parsed = ParseConformanceReport(SerializeConformanceReport(report));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->system_name, "TestEngine");
  EXPECT_EQ(parsed->scale_factor, 2);
  EXPECT_EQ(parsed->seed, 99u);
  ASSERT_EQ(parsed->results.size(), 2u);
  EXPECT_EQ(parsed->results[0].id, queries::QueryId::kQ1);
  EXPECT_EQ(parsed->results[1].id, queries::QueryId::kQ2c);
  EXPECT_EQ(parsed->results[0].instances, 8);
  EXPECT_NEAR(parsed->results[1].total_seconds, 9.5, 1e-9);
  EXPECT_EQ(parsed->results[0].validation.passed, 8);
  EXPECT_TRUE(parsed->Passed());
}

TEST(ConformanceTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseConformanceReport("hello world\n").ok());
}

TEST(ConformanceTest, BuildPullsElectionsFromDataset) {
  sim::Dataset dataset;
  dataset.config.scale_factor = 3;
  dataset.config.width = 640;
  dataset.config.height = 360;
  dataset.config.duration_seconds = 12.0;
  dataset.config.fps = 30.0;
  dataset.config.seed = 1234;
  VcdOptions options;
  options.output_mode = systems::OutputMode::kStreaming;
  ConformanceReport report =
      BuildConformanceReport(dataset, options, "EngineX", {});
  EXPECT_EQ(report.scale_factor, 3);
  EXPECT_EQ(report.width, 640);
  EXPECT_EQ(report.output_mode, systems::OutputMode::kStreaming);
  EXPECT_EQ(report.system_name, "EngineX");
}

// --- SSIM (the paper's "future metric" extension) ---

video::Frame Gradient(int w, int h, int shift) {
  video::Frame frame(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      frame.SetPixel(x, y, static_cast<uint8_t>((x * 2 + y + shift) & 0xFF), 120,
                     136);
    }
  }
  return frame;
}

TEST(SsimTest, IdenticalFramesScoreOne) {
  video::Frame frame = Gradient(64, 48, 0);
  auto ssim = video::Ssim(frame, frame);
  ASSERT_TRUE(ssim.ok());
  EXPECT_NEAR(*ssim, 1.0, 1e-9);
}

TEST(SsimTest, NoiseScoresLow) {
  video::Frame frame = Gradient(64, 48, 0);
  video::Frame noise(64, 48);
  Pcg32 rng(3, 3);
  for (uint8_t& s : noise.y_plane()) s = static_cast<uint8_t>(rng.NextBounded(256));
  auto ssim = video::Ssim(frame, noise);
  ASSERT_TRUE(ssim.ok());
  EXPECT_LT(*ssim, 0.3);
}

TEST(SsimTest, MildDistortionScoresBetweenExtremes) {
  video::Frame frame = Gradient(64, 48, 0);
  video::Frame shifted = Gradient(64, 48, 4);
  auto ssim = video::Ssim(frame, shifted);
  ASSERT_TRUE(ssim.ok());
  EXPECT_GT(*ssim, 0.3);
  EXPECT_LT(*ssim, 0.999);
}

TEST(SsimTest, RejectsMismatchedAndTinyFrames) {
  EXPECT_FALSE(video::Ssim(video::Frame(16, 16), video::Frame(8, 16)).ok());
  EXPECT_FALSE(video::Ssim(video::Frame(4, 4), video::Frame(4, 4)).ok());
}

TEST(SsimTest, NearLosslessEncodeScoresAboveThreshold) {
  video::Video source;
  source.fps = 15;
  for (int f = 0; f < 3; ++f) source.frames.push_back(Gradient(64, 48, f * 3));
  video::codec::EncoderConfig config;
  config.qp = 8;
  auto encoded = video::codec::Encode(source, config);
  ASSERT_TRUE(encoded.ok());
  auto decoded = video::codec::Decode(*encoded);
  ASSERT_TRUE(decoded.ok());
  auto mean = video::MeanSsim(source, *decoded);
  ASSERT_TRUE(mean.ok());
  EXPECT_GT(*mean, video::kValidationSsim);
}

}  // namespace
}  // namespace visualroad::driver
