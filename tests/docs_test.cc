// Documentation sync tests (ctest label `docs`). The docs are part of the
// contract: docs/ARCHITECTURE.md must name every source subsystem, relative
// markdown links must resolve, and any `--flag` a doc shows next to the
// `vcd` binary must actually exist in the CLI. These fail the build when
// code and documentation drift.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace visualroad {
namespace {

namespace fs = std::filesystem;

const fs::path kRoot = fs::path(VISUALROAD_SOURCE_DIR);

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The markdown files whose content is a maintained contract. Deliberately
/// excludes working notes (ISSUE.md, CHANGES.md, ROADMAP.md, PAPERS.md,
/// SNIPPETS.md), which may reference external or planned artefacts.
std::vector<fs::path> DocFiles() {
  std::vector<fs::path> files = {kRoot / "README.md", kRoot / "DESIGN.md",
                                 kRoot / "EXPERIMENTS.md"};
  for (const auto& entry : fs::directory_iterator(kRoot / "docs")) {
    if (entry.path().extension() == ".md") files.push_back(entry.path());
  }
  return files;
}

TEST(DocsSyncTest, ArchitectureTableNamesEverySrcSubsystem) {
  const std::string text = ReadFile(kRoot / "docs" / "ARCHITECTURE.md");
  std::vector<std::string> missing;
  for (const auto& entry : fs::directory_iterator(kRoot / "src")) {
    if (!entry.is_directory()) continue;
    std::string name = entry.path().filename().string();
    // The subsystem reference table (and prose) names directories as
    // `src/<name>/`; a new subsystem must be added there.
    if (text.find("`src/" + name + "/`") == std::string::npos) {
      missing.push_back(name);
    }
  }
  std::string joined;
  for (const std::string& name : missing) joined += name + " ";
  EXPECT_TRUE(missing.empty())
      << "src/ subsystems missing from docs/ARCHITECTURE.md: " << joined;
}

TEST(DocsSyncTest, RelativeMarkdownLinksResolve) {
  // Matches the target of [text](target). External links, pure anchors,
  // and mailto links are out of scope; everything else must exist on disk
  // (anchors within a real file are stripped before the check).
  const std::regex link_pattern(R"(\]\(([^)\s]+)\))");
  for (const fs::path& doc : DocFiles()) {
    const std::string text = ReadFile(doc);
    for (auto it = std::sregex_iterator(text.begin(), text.end(), link_pattern);
         it != std::sregex_iterator(); ++it) {
      std::string target = (*it)[1].str();
      if (target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
          target.rfind("mailto:", 0) == 0 || target[0] == '#') {
        continue;
      }
      size_t anchor = target.find('#');
      if (anchor != std::string::npos) target = target.substr(0, anchor);
      if (target.empty()) continue;
      fs::path resolved = doc.parent_path() / target;
      EXPECT_TRUE(fs::exists(resolved))
          << doc.filename().string() << " links to nonexistent " << target;
    }
  }
}

TEST(DocsSyncTest, VcdFlagsShownInDocsExist) {
  const std::string cli_source =
      ReadFile(kRoot / "src" / "driver" / "vcd_main.cc");
  const std::regex flag_pattern(R"(--[a-z][a-z-]*)");
  for (const fs::path& doc : DocFiles()) {
    std::ifstream in(doc);
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      // Only lines that talk about the vcd binary: docs also show cmake and
      // google-benchmark flags, which are not this CLI's contract.
      if (line.find("vcd") == std::string::npos) continue;
      for (auto it = std::sregex_iterator(line.begin(), line.end(), flag_pattern);
           it != std::sregex_iterator(); ++it) {
        std::string flag = it->str();
        // Attribute the flag to the nearest preceding command word; a line
        // may show both `vcd --serve` and `ctest --preset tsan`.
        size_t flag_at = static_cast<size_t>(it->position());
        std::string before = line.substr(0, flag_at);
        size_t vcd_at = before.rfind("vcd");
        bool other_command = false;
        for (const char* command : {"ctest", "cmake", "benchmark"}) {
          size_t at = before.rfind(command);
          if (at != std::string::npos &&
              (vcd_at == std::string::npos || at > vcd_at)) {
            other_command = true;
          }
        }
        if (vcd_at == std::string::npos || other_command) continue;
        EXPECT_NE(cli_source.find("\"" + flag + "\""), std::string::npos)
            << doc.filename().string() << ":" << line_number
            << " mentions vcd flag " << flag
            << " which src/driver/vcd_main.cc does not define";
      }
    }
  }
}

TEST(DocsSyncTest, BenchCatalogueCoversEveryBenchBinary) {
  const std::string text = ReadFile(kRoot / "docs" / "BENCHMARKS.md");
  std::vector<std::string> missing;
  for (const auto& entry : fs::directory_iterator(kRoot / "bench")) {
    std::string name = entry.path().filename().string();
    if (entry.path().extension() != ".cc") continue;
    std::string stem = entry.path().stem().string();
    if (stem == "bench_common") continue;
    if (stem.rfind("bench_", 0) != 0) continue;
    if (text.find("`" + stem + "`") == std::string::npos) {
      missing.push_back(stem);
    }
  }
  std::string joined;
  for (const std::string& name : missing) joined += name + " ";
  EXPECT_TRUE(missing.empty())
      << "bench binaries missing from docs/BENCHMARKS.md: " << joined;
}

}  // namespace
}  // namespace visualroad
