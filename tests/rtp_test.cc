#include <gtest/gtest.h>

#include "common/random.h"
#include "video/metrics.h"
#include "video/rtp.h"

namespace visualroad::video::rtp {
namespace {

codec::EncodedVideo MakeStream(int frames, size_t frame_bytes, uint64_t seed) {
  codec::EncodedVideo video;
  video.width = 64;
  video.height = 36;
  video.fps = 30.0;
  Pcg32 rng(seed, 3);
  for (int f = 0; f < frames; ++f) {
    codec::EncodedFrame frame;
    frame.keyframe = f % 4 == 0;
    frame.qp = static_cast<uint8_t>(18 + f % 8);
    frame.data.resize(frame_bytes + rng.NextBounded(200));
    for (uint8_t& b : frame.data) b = static_cast<uint8_t>(rng.NextBounded(256));
    video.frames.push_back(std::move(frame));
  }
  return video;
}

TEST(RtpPacketTest, WireFormatRoundTrips) {
  Packet packet;
  packet.sequence_number = 0xBEEF;
  packet.timestamp = 0x12345678;
  packet.ssrc = 0xCAFEBABE;
  packet.marker = true;
  packet.payload_type = 96;
  packet.payload = {1, 2, 3, 4, 5};
  auto parsed = Packet::Parse(packet.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->sequence_number, 0xBEEF);
  EXPECT_EQ(parsed->timestamp, 0x12345678u);
  EXPECT_EQ(parsed->ssrc, 0xCAFEBABEu);
  EXPECT_TRUE(parsed->marker);
  EXPECT_EQ(parsed->payload_type, 96);
  EXPECT_EQ(parsed->payload, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
}

TEST(RtpPacketTest, RejectsTruncatedHeader) {
  std::vector<uint8_t> wire = {0x80, 0x60, 0x00};
  EXPECT_FALSE(Packet::Parse(wire).ok());
}

TEST(RtpPacketTest, RejectsWrongVersion) {
  Packet packet;
  std::vector<uint8_t> wire = packet.Serialize();
  wire[0] = 0x00;  // Version 0.
  EXPECT_FALSE(Packet::Parse(wire).ok());
}

TEST(RtpTest, SmallFrameIsOnePacketWithMarker) {
  codec::EncodedVideo video = MakeStream(1, 100, 1);
  Packetizer packetizer(7, 1200);
  std::vector<Packet> packets = packetizer.PacketizeFrame(video.frames[0], 0, 30.0);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(packets[0].marker);
  // The payload is the frame plus the 2-byte payload header.
  EXPECT_EQ(packets[0].payload.size(), video.frames[0].data.size() + 2);
}

TEST(RtpTest, LargeFrameFragmentsWithinMtu) {
  codec::EncodedVideo video = MakeStream(1, 5000, 2);
  Packetizer packetizer(7, 1200);
  std::vector<Packet> packets = packetizer.PacketizeFrame(video.frames[0], 0, 30.0);
  EXPECT_GT(packets.size(), 3u);
  for (size_t i = 0; i < packets.size(); ++i) {
    // The MTU bounds the serialized packet (header included), not just the
    // payload.
    EXPECT_LE(packets[i].Serialize().size(), 1200u);
    EXPECT_EQ(packets[i].marker, i + 1 == packets.size());
    // All fragments of one frame share a timestamp.
    EXPECT_EQ(packets[i].timestamp, packets[0].timestamp);
  }
}

TEST(RtpTest, SerializedPacketsRespectMtu) {
  codec::EncodedVideo video = MakeStream(6, 4000, 8);
  for (int mtu : {16, 100, 576, 1200, 1500}) {
    Packetizer packetizer(7, mtu);
    std::vector<Packet> packets = packetizer.PacketizeVideo(video);
    Depacketizer depacketizer;
    for (const Packet& packet : packets) {
      EXPECT_LE(packet.Serialize().size(), static_cast<size_t>(mtu))
          << "mtu=" << mtu;
      depacketizer.Feed(packet);
    }
    // The tighter budget must not corrupt reassembly.
    EXPECT_EQ(depacketizer.stats().frames_completed, 6) << "mtu=" << mtu;
    EXPECT_EQ(depacketizer.stats().packets_lost, 0) << "mtu=" << mtu;
  }
}

TEST(RtpTest, ReorderedPacketCountsReorderNotLoss) {
  codec::EncodedVideo video = MakeStream(6, 2500, 9);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);

  // Swap two adjacent mid-frame fragments so one packet arrives one slot
  // late. The backward gap is 0xFFFE in 16-bit arithmetic; a receiver that
  // misreads it as a forward gap books ~65k lost packets.
  size_t swap = 0;
  for (size_t i = 1; i + 1 < packets.size(); ++i) {
    bool mid_i = !packets[i].marker && !(packets[i].payload[0] & 0x02);
    bool mid_next =
        !packets[i + 1].marker && !(packets[i + 1].payload[0] & 0x02);
    if (mid_i && mid_next) {
      swap = i;
      break;
    }
  }
  ASSERT_GT(swap, 0u);
  std::swap(packets[swap], packets[swap + 1]);

  Depacketizer depacketizer;
  for (const Packet& packet : packets) depacketizer.Feed(packet);
  int completed = 0;
  while (depacketizer.HasFrame()) {
    ASSERT_TRUE(depacketizer.TakeFrame().ok());
    ++completed;
  }
  // The early arrival looks like a one-packet hole; the late one is counted
  // as reordered, not as a 65534-packet loss, and does not desynchronise
  // the sequence tracking for the frames that follow.
  EXPECT_EQ(depacketizer.stats().packets_lost, 1);
  EXPECT_EQ(depacketizer.stats().packets_reordered, 1);
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(depacketizer.stats().frames_dropped, 1);
}

TEST(RtpTest, ReorderAcrossSequenceWrapIsStillReorder) {
  codec::EncodedVideo video = MakeStream(4, 2500, 10);
  Packetizer packetizer(7, 700, /*first_sequence=*/65533);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  ASSERT_GT(packets.size(), 8u);
  // Swap the packets straddling the 65535 -> 0 wrap (positions 2 and 3).
  ASSERT_EQ(packets[2].sequence_number, 65535);
  ASSERT_EQ(packets[3].sequence_number, 0);
  std::swap(packets[2], packets[3]);

  Depacketizer depacketizer;
  for (const Packet& packet : packets) depacketizer.Feed(packet);
  EXPECT_EQ(depacketizer.stats().packets_lost, 1);
  EXPECT_EQ(depacketizer.stats().packets_reordered, 1);
}

TEST(RtpTest, SequenceNumbersAreContiguousAcrossFrames) {
  codec::EncodedVideo video = MakeStream(5, 3000, 3);
  Packetizer packetizer(7, 800, 65530);  // Wraps through 65535.
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  for (size_t i = 1; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].sequence_number,
              static_cast<uint16_t>(packets[i - 1].sequence_number + 1));
  }
}

TEST(RtpTest, TimestampsFollowNinetyKhzClock) {
  codec::EncodedVideo video = MakeStream(3, 100, 4);
  Packetizer packetizer(7);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  // At 30 fps each frame advances 3000 ticks.
  EXPECT_EQ(packets[0].timestamp, 0u);
  EXPECT_EQ(packets[1].timestamp, 3000u);
  EXPECT_EQ(packets[2].timestamp, 6000u);
}

TEST(RtpTest, LosslessLoopbackPreservesEveryFrame) {
  codec::EncodedVideo video = MakeStream(12, 2500, 5);
  auto looped = Loopback(video, 700);
  ASSERT_TRUE(looped.ok());
  ASSERT_EQ(looped->FrameCount(), 12);
  for (int f = 0; f < 12; ++f) {
    EXPECT_EQ(looped->frames[static_cast<size_t>(f)].data,
              video.frames[static_cast<size_t>(f)].data);
    EXPECT_EQ(looped->frames[static_cast<size_t>(f)].keyframe,
              video.frames[static_cast<size_t>(f)].keyframe);
    EXPECT_EQ(looped->frames[static_cast<size_t>(f)].qp,
              video.frames[static_cast<size_t>(f)].qp);
  }
}

TEST(RtpTest, PacketLossDropsOnlyAffectedFrames) {
  codec::EncodedVideo video = MakeStream(10, 2500, 6);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);

  Depacketizer depacketizer;
  // Drop one mid-frame packet (find a non-marker, non-first packet).
  size_t dropped = 0;
  for (size_t i = 1; i < packets.size(); ++i) {
    if (!packets[i].marker && !(packets[i].payload[0] & 0x02)) {
      dropped = i;
      break;
    }
  }
  ASSERT_GT(dropped, 0u);
  for (size_t i = 0; i < packets.size(); ++i) {
    if (i == dropped) continue;
    depacketizer.Feed(packets[i]);
  }
  int completed = 0;
  while (depacketizer.HasFrame()) {
    ASSERT_TRUE(depacketizer.TakeFrame().ok());
    ++completed;
  }
  EXPECT_EQ(depacketizer.stats().packets_lost, 1);
  EXPECT_EQ(completed, 9);  // Exactly the frame containing the loss is gone.
  EXPECT_EQ(depacketizer.stats().frames_dropped, 1);
}

TEST(RtpTest, LosingAFrameStartDropsThatFrame) {
  codec::EncodedVideo video = MakeStream(4, 1500, 7);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  Depacketizer depacketizer;
  bool skipped_first_start = false;
  for (const Packet& packet : packets) {
    bool is_start = (packet.payload[0] & 0x02) != 0;
    if (is_start && !skipped_first_start) {
      skipped_first_start = true;
      continue;  // Lose the very first frame's first fragment.
    }
    depacketizer.Feed(packet);
  }
  int completed = 0;
  while (depacketizer.HasFrame()) {
    (void)depacketizer.TakeFrame();
    ++completed;
  }
  EXPECT_EQ(completed, 3);
}

TEST(RtpTest, TakeFrameWithoutDataFails) {
  Depacketizer depacketizer;
  EXPECT_FALSE(depacketizer.TakeFrame().ok());
}

TEST(RtpTest, RealCodecStreamSurvivesRtpTransport) {
  // End-to-end: encode real video, transport over RTP, decode, compare.
  Video source;
  source.fps = 15;
  for (int f = 0; f < 6; ++f) {
    Frame frame(64, 36);
    for (int y = 0; y < 36; ++y) {
      for (int x = 0; x < 64; ++x) {
        frame.SetPixel(x, y, static_cast<uint8_t>((x * 4 + y * 3 + f * 8) & 0xFF),
                       120, 136);
      }
    }
    source.frames.push_back(std::move(frame));
  }
  codec::EncoderConfig config;
  config.qp = 20;
  auto encoded = codec::Encode(source, config);
  ASSERT_TRUE(encoded.ok());
  auto transported = Loopback(*encoded, 500);
  ASSERT_TRUE(transported.ok());
  auto decoded = codec::Decode(*transported);
  ASSERT_TRUE(decoded.ok());
  auto reference = codec::Decode(*encoded);
  ASSERT_TRUE(reference.ok());
  for (int f = 0; f < 6; ++f) {
    EXPECT_TRUE(decoded->frames[static_cast<size_t>(f)].SameContentAs(
        reference->frames[static_cast<size_t>(f)]));
  }
}

}  // namespace
}  // namespace visualroad::video::rtp
