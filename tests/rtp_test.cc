#include <gtest/gtest.h>

#include "common/random.h"
#include "video/metrics.h"
#include "video/rtp.h"

namespace visualroad::video::rtp {
namespace {

codec::EncodedVideo MakeStream(int frames, size_t frame_bytes, uint64_t seed) {
  codec::EncodedVideo video;
  video.width = 64;
  video.height = 36;
  video.fps = 30.0;
  Pcg32 rng(seed, 3);
  for (int f = 0; f < frames; ++f) {
    codec::EncodedFrame frame;
    frame.keyframe = f % 4 == 0;
    frame.qp = static_cast<uint8_t>(18 + f % 8);
    frame.data.resize(frame_bytes + rng.NextBounded(200));
    for (uint8_t& b : frame.data) b = static_cast<uint8_t>(rng.NextBounded(256));
    video.frames.push_back(std::move(frame));
  }
  return video;
}

TEST(RtpPacketTest, WireFormatRoundTrips) {
  Packet packet;
  packet.sequence_number = 0xBEEF;
  packet.timestamp = 0x12345678;
  packet.ssrc = 0xCAFEBABE;
  packet.marker = true;
  packet.payload_type = 96;
  packet.payload = {1, 2, 3, 4, 5};
  auto parsed = Packet::Parse(packet.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->sequence_number, 0xBEEF);
  EXPECT_EQ(parsed->timestamp, 0x12345678u);
  EXPECT_EQ(parsed->ssrc, 0xCAFEBABEu);
  EXPECT_TRUE(parsed->marker);
  EXPECT_EQ(parsed->payload_type, 96);
  EXPECT_EQ(parsed->payload, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
}

TEST(RtpPacketTest, RejectsTruncatedHeader) {
  std::vector<uint8_t> wire = {0x80, 0x60, 0x00};
  EXPECT_FALSE(Packet::Parse(wire).ok());
}

TEST(RtpPacketTest, RejectsWrongVersion) {
  Packet packet;
  std::vector<uint8_t> wire = packet.Serialize();
  wire[0] = 0x00;  // Version 0.
  EXPECT_FALSE(Packet::Parse(wire).ok());
}

TEST(RtpTest, SmallFrameIsOnePacketWithMarker) {
  codec::EncodedVideo video = MakeStream(1, 100, 1);
  Packetizer packetizer(7, 1200);
  std::vector<Packet> packets = packetizer.PacketizeFrame(video.frames[0], 0, 30.0);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(packets[0].marker);
  // The payload is the frame plus the 2-byte payload header.
  EXPECT_EQ(packets[0].payload.size(), video.frames[0].data.size() + 2);
}

TEST(RtpTest, LargeFrameFragmentsWithinMtu) {
  codec::EncodedVideo video = MakeStream(1, 5000, 2);
  Packetizer packetizer(7, 1200);
  std::vector<Packet> packets = packetizer.PacketizeFrame(video.frames[0], 0, 30.0);
  EXPECT_GT(packets.size(), 3u);
  for (size_t i = 0; i < packets.size(); ++i) {
    // The MTU bounds the serialized packet (header included), not just the
    // payload.
    EXPECT_LE(packets[i].Serialize().size(), 1200u);
    EXPECT_EQ(packets[i].marker, i + 1 == packets.size());
    // All fragments of one frame share a timestamp.
    EXPECT_EQ(packets[i].timestamp, packets[0].timestamp);
  }
}

TEST(RtpTest, SerializedPacketsRespectMtu) {
  codec::EncodedVideo video = MakeStream(6, 4000, 8);
  for (int mtu : {16, 100, 576, 1200, 1500}) {
    Packetizer packetizer(7, mtu);
    std::vector<Packet> packets = packetizer.PacketizeVideo(video);
    Depacketizer depacketizer;
    for (const Packet& packet : packets) {
      EXPECT_LE(packet.Serialize().size(), static_cast<size_t>(mtu))
          << "mtu=" << mtu;
      depacketizer.Feed(packet);
    }
    // The tighter budget must not corrupt reassembly.
    EXPECT_EQ(depacketizer.stats().frames_completed, 6) << "mtu=" << mtu;
    EXPECT_EQ(depacketizer.stats().packets_lost, 0) << "mtu=" << mtu;
  }
}

TEST(RtpTest, ReorderedPacketCountsReorderNotLoss) {
  codec::EncodedVideo video = MakeStream(6, 2500, 9);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);

  // Swap two adjacent mid-frame fragments so one packet arrives one slot
  // late. The backward gap is 0xFFFE in 16-bit arithmetic; a receiver that
  // misreads it as a forward gap books ~65k lost packets.
  size_t swap = 0;
  for (size_t i = 1; i + 1 < packets.size(); ++i) {
    bool mid_i = !packets[i].marker && !(packets[i].payload[0] & 0x02);
    bool mid_next =
        !packets[i + 1].marker && !(packets[i + 1].payload[0] & 0x02);
    if (mid_i && mid_next) {
      swap = i;
      break;
    }
  }
  ASSERT_GT(swap, 0u);
  std::swap(packets[swap], packets[swap + 1]);

  Depacketizer depacketizer;
  for (const Packet& packet : packets) depacketizer.Feed(packet);
  int completed = 0;
  while (depacketizer.HasFrame()) {
    ASSERT_TRUE(depacketizer.TakeFrame().ok());
    ++completed;
  }
  // The early arrival looks like a one-packet hole; the late one is counted
  // as reordered, not as a 65534-packet loss, and does not desynchronise
  // the sequence tracking for the frames that follow.
  EXPECT_EQ(depacketizer.stats().packets_lost, 1);
  EXPECT_EQ(depacketizer.stats().packets_reordered, 1);
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(depacketizer.stats().frames_dropped, 1);
}

TEST(RtpTest, ReorderAcrossSequenceWrapIsStillReorder) {
  codec::EncodedVideo video = MakeStream(4, 2500, 10);
  Packetizer packetizer(7, 700, /*first_sequence=*/65533);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  ASSERT_GT(packets.size(), 8u);
  // Swap the packets straddling the 65535 -> 0 wrap (positions 2 and 3).
  ASSERT_EQ(packets[2].sequence_number, 65535);
  ASSERT_EQ(packets[3].sequence_number, 0);
  std::swap(packets[2], packets[3]);

  Depacketizer depacketizer;
  for (const Packet& packet : packets) depacketizer.Feed(packet);
  EXPECT_EQ(depacketizer.stats().packets_lost, 1);
  EXPECT_EQ(depacketizer.stats().packets_reordered, 1);
}

TEST(RtpTest, SequenceNumbersAreContiguousAcrossFrames) {
  codec::EncodedVideo video = MakeStream(5, 3000, 3);
  Packetizer packetizer(7, 800, 65530);  // Wraps through 65535.
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  for (size_t i = 1; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].sequence_number,
              static_cast<uint16_t>(packets[i - 1].sequence_number + 1));
  }
}

TEST(RtpTest, TimestampsFollowNinetyKhzClock) {
  codec::EncodedVideo video = MakeStream(3, 100, 4);
  Packetizer packetizer(7);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  // At 30 fps each frame advances 3000 ticks.
  EXPECT_EQ(packets[0].timestamp, 0u);
  EXPECT_EQ(packets[1].timestamp, 3000u);
  EXPECT_EQ(packets[2].timestamp, 6000u);
}

TEST(RtpTest, LosslessLoopbackPreservesEveryFrame) {
  codec::EncodedVideo video = MakeStream(12, 2500, 5);
  auto looped = Loopback(video, 700);
  ASSERT_TRUE(looped.ok());
  ASSERT_EQ(looped->FrameCount(), 12);
  for (int f = 0; f < 12; ++f) {
    EXPECT_EQ(looped->frames[static_cast<size_t>(f)].data,
              video.frames[static_cast<size_t>(f)].data);
    EXPECT_EQ(looped->frames[static_cast<size_t>(f)].keyframe,
              video.frames[static_cast<size_t>(f)].keyframe);
    EXPECT_EQ(looped->frames[static_cast<size_t>(f)].qp,
              video.frames[static_cast<size_t>(f)].qp);
  }
}

TEST(RtpTest, PacketLossDropsOnlyAffectedFrames) {
  codec::EncodedVideo video = MakeStream(10, 2500, 6);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);

  Depacketizer depacketizer;
  // Drop one mid-frame packet (find a non-marker, non-first packet).
  size_t dropped = 0;
  for (size_t i = 1; i < packets.size(); ++i) {
    if (!packets[i].marker && !(packets[i].payload[0] & 0x02)) {
      dropped = i;
      break;
    }
  }
  ASSERT_GT(dropped, 0u);
  for (size_t i = 0; i < packets.size(); ++i) {
    if (i == dropped) continue;
    depacketizer.Feed(packets[i]);
  }
  int completed = 0;
  while (depacketizer.HasFrame()) {
    ASSERT_TRUE(depacketizer.TakeFrame().ok());
    ++completed;
  }
  EXPECT_EQ(depacketizer.stats().packets_lost, 1);
  EXPECT_EQ(completed, 9);  // Exactly the frame containing the loss is gone.
  EXPECT_EQ(depacketizer.stats().frames_dropped, 1);
}

TEST(RtpTest, LosingAFrameStartDropsThatFrame) {
  codec::EncodedVideo video = MakeStream(4, 1500, 7);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  Depacketizer depacketizer;
  bool skipped_first_start = false;
  for (const Packet& packet : packets) {
    bool is_start = (packet.payload[0] & 0x02) != 0;
    if (is_start && !skipped_first_start) {
      skipped_first_start = true;
      continue;  // Lose the very first frame's first fragment.
    }
    depacketizer.Feed(packet);
  }
  int completed = 0;
  while (depacketizer.HasFrame()) {
    (void)depacketizer.TakeFrame();
    ++completed;
  }
  EXPECT_EQ(completed, 3);
}

TEST(RtpTest, TakeFrameWithoutDataFails) {
  Depacketizer depacketizer;
  EXPECT_FALSE(depacketizer.TakeFrame().ok());
}

TEST(RtpTest, FlushDropsTruncatedTailFrame) {
  // Regression: a frame mid-assembly when the stream ends was neither
  // delivered nor counted — completed + dropped came up one frame short.
  codec::EncodedVideo video = MakeStream(3, 2500, 11);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  ASSERT_TRUE(packets.back().marker);
  packets.pop_back();  // Truncate: the last frame's marker never arrives.

  Depacketizer depacketizer;
  for (const Packet& packet : packets) depacketizer.Feed(packet);
  // Before Flush the tail frame is unaccounted (it could still complete).
  EXPECT_EQ(depacketizer.stats().frames_completed, 2);
  EXPECT_EQ(depacketizer.stats().frames_dropped, 0);
  depacketizer.Flush();
  EXPECT_EQ(depacketizer.stats().frames_completed, 2);
  EXPECT_EQ(depacketizer.stats().frames_dropped, 1);
  // Idempotent: a second Flush books nothing new.
  depacketizer.Flush();
  EXPECT_EQ(depacketizer.stats().frames_dropped, 1);
}

TEST(RtpTest, TruncatedLoopbackAccountsEveryFrame) {
  codec::EncodedVideo video = MakeStream(4, 1500, 12);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  packets.pop_back();
  Depacketizer depacketizer;
  for (const Packet& packet : packets) depacketizer.Feed(packet);
  depacketizer.Flush();
  const ReceiverStats& stats = depacketizer.stats();
  EXPECT_EQ(stats.frames_completed + stats.frames_dropped, 4);
}

TEST(RtpTest, ConcealmentRepeatsLastCompletedFrame) {
  codec::EncodedVideo video = MakeStream(6, 2500, 13);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  // Drop one mid-frame fragment of a frame after the first, so the receiver
  // has a completed frame to repeat.
  size_t dropped = 0;
  for (size_t i = 1; i < packets.size(); ++i) {
    bool mid = !packets[i].marker && !(packets[i].payload[0] & 0x02);
    if (mid && packets[i].timestamp > packets[0].timestamp) {
      dropped = i;
      break;
    }
  }
  ASSERT_GT(dropped, 0u);

  Depacketizer depacketizer(/*conceal_losses=*/true);
  for (size_t i = 0; i < packets.size(); ++i) {
    if (i == dropped) continue;
    depacketizer.Feed(packets[i]);
  }
  depacketizer.Flush();
  std::vector<codec::EncodedFrame> delivered;
  while (depacketizer.HasFrame()) {
    auto frame = depacketizer.TakeFrame();
    ASSERT_TRUE(frame.ok());
    delivered.push_back(std::move(*frame));
  }
  const ReceiverStats& stats = depacketizer.stats();
  EXPECT_EQ(stats.frames_dropped, 1);
  EXPECT_EQ(stats.frames_concealed, 1);
  // Index alignment is preserved: 6 frames in, 6 frames out, with the lost
  // one replaced by a byte-exact repeat of its predecessor.
  ASSERT_EQ(delivered.size(), 6u);
  bool found_repeat = false;
  for (size_t i = 1; i < delivered.size(); ++i) {
    if (delivered[i].data == delivered[i - 1].data) found_repeat = true;
  }
  EXPECT_TRUE(found_repeat);
}

TEST(RtpTest, LossBeforeFirstFrameStaysAPlainDrop) {
  codec::EncodedVideo video = MakeStream(3, 1500, 14);
  Packetizer packetizer(7, 700);
  std::vector<Packet> packets = packetizer.PacketizeVideo(video);
  Depacketizer depacketizer(/*conceal_losses=*/true);
  // Lose a fragment of the very first frame: when its marker arrives the
  // frame is dropped, but nothing has completed yet, so there is no frame
  // to repeat and the drop must not conceal.
  size_t skipped = 0;
  for (const Packet& packet : packets) {
    bool mid = !packet.marker && !(packet.payload[0] & 0x02);
    if (mid && packet.timestamp == packets[0].timestamp && skipped == 0) {
      ++skipped;
      continue;
    }
    depacketizer.Feed(packet);
  }
  ASSERT_EQ(skipped, 1u);
  depacketizer.Flush();
  EXPECT_EQ(depacketizer.stats().frames_dropped, 1);
  EXPECT_EQ(depacketizer.stats().frames_concealed, 0);
  EXPECT_EQ(depacketizer.stats().frames_completed, 2);
}

TEST(RtpTest, LossyChannelIsDeterministicPerSeed) {
  codec::EncodedVideo video = MakeStream(10, 2500, 15);
  auto profile = fault::ProfileByName("lossy");
  ASSERT_TRUE(profile.ok());

  auto run = [&](uint64_t seed) {
    fault::FaultInjector injector(*profile, seed);
    ReceiverStats stats;
    auto looped = LossyLoopback(video, 700, injector, &stats);
    EXPECT_TRUE(looped.ok());
    return std::make_pair(std::move(*looped), stats);
  };
  auto [a, a_stats] = run(5);
  auto [b, b_stats] = run(5);
  ASSERT_EQ(a.FrameCount(), b.FrameCount());
  for (int i = 0; i < a.FrameCount(); ++i) {
    EXPECT_EQ(a.frames[static_cast<size_t>(i)].data,
              b.frames[static_cast<size_t>(i)].data);
  }
  EXPECT_EQ(a_stats.packets_lost, b_stats.packets_lost);
  EXPECT_EQ(a_stats.packets_reordered, b_stats.packets_reordered);
  EXPECT_EQ(a_stats.frames_concealed, b_stats.frames_concealed);
  // The lossy profile actually exercised the channel.
  EXPECT_GT(a_stats.packets_lost, 0);
  // Delivered = completed + concealed; nothing silently vanishes beyond
  // frames lost before the first completion.
  EXPECT_EQ(a_stats.frames_completed + a_stats.frames_concealed,
            a.FrameCount());
}

TEST(RtpTest, RealCodecStreamSurvivesRtpTransport) {
  // End-to-end: encode real video, transport over RTP, decode, compare.
  Video source;
  source.fps = 15;
  for (int f = 0; f < 6; ++f) {
    Frame frame(64, 36);
    for (int y = 0; y < 36; ++y) {
      for (int x = 0; x < 64; ++x) {
        frame.SetPixel(x, y, static_cast<uint8_t>((x * 4 + y * 3 + f * 8) & 0xFF),
                       120, 136);
      }
    }
    source.frames.push_back(std::move(frame));
  }
  codec::EncoderConfig config;
  config.qp = 20;
  auto encoded = codec::Encode(source, config);
  ASSERT_TRUE(encoded.ok());
  auto transported = Loopback(*encoded, 500);
  ASSERT_TRUE(transported.ok());
  auto decoded = codec::Decode(*transported);
  ASSERT_TRUE(decoded.ok());
  auto reference = codec::Decode(*encoded);
  ASSERT_TRUE(reference.ok());
  for (int f = 0; f < 6; ++f) {
    EXPECT_TRUE(decoded->frames[static_cast<size_t>(f)].SameContentAs(
        reference->frames[static_cast<size_t>(f)]));
  }
}

}  // namespace
}  // namespace visualroad::video::rtp
