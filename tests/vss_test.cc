#include "storage/vss.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <thread>
#include <vector>

#include "driver/dataset_io.h"
#include "driver/datasets.h"
#include "storage/vss_policy.h"
#include "systems/vdbms.h"
#include "video/codec/codec.h"
#include "video/codec/gop_cache.h"

namespace visualroad::storage {
namespace {

namespace fs = std::filesystem;

using video::codec::EncodedVideo;

bool SameBitstream(const EncodedVideo& a, const EncodedVideo& b) {
  if (a.FrameCount() != b.FrameCount()) return false;
  for (int i = 0; i < a.FrameCount(); ++i) {
    const auto& fa = a.frames[static_cast<size_t>(i)];
    const auto& fb = b.frames[static_cast<size_t>(i)];
    if (fa.keyframe != fb.keyframe || fa.qp != fb.qp || fa.data != fb.data) {
      return false;
    }
  }
  return true;
}

EncodedVideo MakeStream(int frames, int width, int height, int gop_length,
                        uint64_t seed) {
  video::Video video;
  video.fps = 15;
  for (int f = 0; f < frames; ++f) {
    video::Frame frame(width, height);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        double value = 128 + 90 * std::sin((x + f * 2 + seed) * 0.11) *
                                 std::cos((y + f) * 0.07);
        frame.SetPixel(x, y, static_cast<uint8_t>(value), 120, 134);
      }
    }
    video.frames.push_back(std::move(frame));
  }
  video::codec::EncoderConfig config;
  config.qp = 20;
  config.gop_length = gop_length;
  auto encoded = video::codec::ParallelEncode(video, config);
  EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
  return *encoded;
}

class VssTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified so parallel ctest shards of this binary (each its own
    // process, each with counter_ == 0) never share a temp tree.
    root_ = (fs::temp_directory_path() /
             ("vr_vss_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++))).string();
    StoreOptions store_options;
    store_options.root = root_;
    store_options.num_nodes = 4;
    store_options.replication = 2;
    store_options.block_size = 512;
    store_options.metrics_label = "vss_test";
    auto store = ShardedStore::Open(store_options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::make_unique<ShardedStore>(std::move(store).value());
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  VssOptions Options() {
    VssOptions options;
    options.store = store_.get();
    return options;
  }

  std::unique_ptr<VideoStorageService> OpenService(const VssOptions& options) {
    auto service = VideoStorageService::Open(options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service).value();
  }

  std::string root_;
  std::unique_ptr<ShardedStore> store_;
  static int counter_;
};

int VssTest::counter_ = 0;

TEST_F(VssTest, IngestReadBackIsByteIdentical) {
  auto vss = OpenService(Options());
  EncodedVideo original = MakeStream(12, 64, 36, 4, 1);
  ASSERT_TRUE(vss->Ingest("cam", original).ok());

  auto tier = vss->BaseTier("cam");
  ASSERT_TRUE(tier.ok());
  EXPECT_EQ(tier->width, 64);
  EXPECT_EQ(tier->qp, 0);
  auto read = vss->ReadVideo("cam", *tier);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(SameBitstream(**read, original));
  EXPECT_EQ(vss->stats().base_hits, 1);

  // A second read is served from the resident stream cache.
  auto again = vss->ReadVideo("cam", *tier);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), read->get());
  EXPECT_EQ(vss->stats().resident_hits, 1);
}

TEST_F(VssTest, RangeReadFetchesOnlyCoveringSegments) {
  VssOptions options = Options();
  options.resident_bytes = 0;  // Force every read to the store.
  auto vss = OpenService(options);
  EncodedVideo original = MakeStream(16, 64, 36, 4, 2);
  ASSERT_TRUE(vss->Ingest("cam", original).ok());
  auto tier = vss->BaseTier("cam");
  ASSERT_TRUE(tier.ok());

  StoreStats store_before = store_->stats();
  // Frames [5, 9) live in GOPs 1 and 2 (of four 4-frame GOPs).
  auto range = vss->ReadRange("cam", *tier, 5, 4);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range->first_frame, 4);
  ASSERT_EQ(range->video->FrameCount(), 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(range->video->frames[static_cast<size_t>(i)].data,
              original.frames[static_cast<size_t>(i + 4)].data);
  }
  VssStats stats = vss->stats();
  EXPECT_EQ(stats.range_reads, 1);
  EXPECT_EQ(stats.segments_fetched, 2);
  EXPECT_LT(stats.bytes_fetched, static_cast<int64_t>(original.TotalBytes()));
  // The store served a strict subset of the variant object's blocks.
  EXPECT_GT(store_->stats().partial_reads, store_before.partial_reads);
}

TEST_F(VssTest, ReadRangeValidatesBounds) {
  auto vss = OpenService(Options());
  ASSERT_TRUE(vss->Ingest("cam", MakeStream(8, 32, 32, 4, 3)).ok());
  auto tier = vss->BaseTier("cam");
  ASSERT_TRUE(tier.ok());
  EXPECT_FALSE(vss->ReadRange("cam", *tier, -1, 2).ok());
  EXPECT_FALSE(vss->ReadRange("cam", *tier, 0, 0).ok());
  EXPECT_FALSE(vss->ReadRange("cam", *tier, 6, 3).ok());
  EXPECT_FALSE(vss->ReadRange("missing", *tier, 0, 1).ok());
  EXPECT_EQ(vss->ReadVideo("missing", *tier).status().code(),
            StatusCode::kNotFound);
}

TEST_F(VssTest, TranscodeOnReadMaterializesAndCachesVariant) {
  auto vss = OpenService(Options());
  ASSERT_TRUE(vss->Ingest("cam", MakeStream(12, 64, 36, 4, 4)).ok());

  VariantKey tier{32, 18, 32};
  auto read = vss->ReadVideo("cam", tier);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ((*read)->width, 32);
  EXPECT_EQ((*read)->height, 18);
  VssStats stats = vss->stats();
  EXPECT_EQ(stats.transcodes, 1);
  EXPECT_EQ(stats.variants_persisted, 1);

  auto entry = vss->Describe("cam");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->variants.size(), 2u);
  ASSERT_TRUE(entry->variants.count(tier));
  EXPECT_FALSE(entry->variants.at(tier).base);

  // After dropping the resident cache the persisted variant answers the
  // same tier without another transcode.
  vss->DropResident();
  auto again = vss->ReadVideo("cam", tier);
  ASSERT_TRUE(again.ok());
  stats = vss->stats();
  EXPECT_EQ(stats.transcodes, 1);
  EXPECT_EQ(stats.variant_hits, 1);
}

TEST_F(VssTest, CatalogAndVariantsSurviveReopen) {
  EncodedVideo original = MakeStream(12, 64, 36, 4, 5);
  VariantKey tier{32, 18, 32};
  {
    auto vss = OpenService(Options());
    ASSERT_TRUE(vss->Ingest("cam", original).ok());
    ASSERT_TRUE(vss->ReadVideo("cam", tier).ok());  // Persists the variant.
  }
  auto reopened = OpenService(Options());
  EXPECT_TRUE(reopened->Contains("cam"));
  auto entry = reopened->Describe("cam");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->frame_count, 12);
  EXPECT_EQ(entry->variants.size(), 2u);

  auto base = reopened->BaseTier("cam");
  ASSERT_TRUE(base.ok());
  auto read = reopened->ReadVideo("cam", *base);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(SameBitstream(**read, original));
  // The cached variant answers without a new transcode.
  ASSERT_TRUE(reopened->ReadVideo("cam", tier).ok());
  EXPECT_EQ(reopened->stats().transcodes, 0);
  EXPECT_EQ(reopened->stats().variant_hits, 1);
}

TEST_F(VssTest, SingleFlightCoalescesConcurrentTranscodes) {
  auto vss = OpenService(Options());
  ASSERT_TRUE(vss->Ingest("cam", MakeStream(12, 64, 36, 4, 6)).ok());

  constexpr int kThreads = 8;
  VariantKey tier{32, 18, 30};
  std::vector<std::shared_ptr<const EncodedVideo>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto read = vss->ReadVideo("cam", tier);
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      results[static_cast<size_t>(t)] = *read;
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactly one materialization ran; every reader got the same bitstream.
  EXPECT_EQ(vss->stats().transcodes, 1);
  EXPECT_EQ(vss->stats().variants_persisted, 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_TRUE(SameBitstream(*results[0], *results[static_cast<size_t>(t)]));
  }
}

TEST_F(VssTest, ConcurrentReadsSurviveDatanodeFailure) {
  VssOptions options = Options();
  options.resident_bytes = 0;  // Every range read goes to the store.
  auto vss = OpenService(options);
  EncodedVideo original = MakeStream(16, 64, 36, 4, 7);
  ASSERT_TRUE(vss->Ingest("cam", original).ok());
  auto tier = vss->BaseTier("cam");
  ASSERT_TRUE(tier.ok());

  // A datanode goes dark; replication must absorb it as fail-overs, never
  // as query failures — while one missing variant materializes exactly once.
  ASSERT_TRUE(store_->DisableNode(0).ok());
  VariantKey transcode_tier{32, 18, 32};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        int first = (t * 2 + round) % 12;
        auto range = vss->ReadRange("cam", *tier, first, 4);
        ASSERT_TRUE(range.ok()) << range.status().ToString();
        ASSERT_GE(first, range->first_frame);
        const auto& got =
            range->video->frames[static_cast<size_t>(first - range->first_frame)];
        EXPECT_EQ(got.data, original.frames[static_cast<size_t>(first)].data);
      }
      auto whole = vss->ReadVideo("cam", transcode_tier);
      ASSERT_TRUE(whole.ok()) << whole.status().ToString();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GT(store_->stats().replica_failovers, 0);
  EXPECT_EQ(vss->stats().transcodes, 1);
}

TEST_F(VssTest, EvictionRespectsVariantByteBudget) {
  VssOptions options = Options();
  options.variant_cache_bytes = 1;  // Nothing fits: persist then evict.
  auto vss = OpenService(options);
  ASSERT_TRUE(vss->Ingest("cam", MakeStream(12, 64, 36, 4, 8)).ok());

  ASSERT_TRUE(vss->ReadVideo("cam", VariantKey{32, 18, 32}).ok());
  VssStats stats = vss->stats();
  EXPECT_EQ(stats.variants_persisted, 1);
  EXPECT_EQ(stats.variants_evicted, 1);
  auto entry = vss->Describe("cam");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->variants.size(), 1u);  // Base survives; it is never budgeted.
  auto base = vss->BaseTier("cam");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(vss->ReadVideo("cam", *base).ok());
}

TEST_F(VssTest, CompactionDropsDominatedVariants) {
  VssOptions options = Options();
  options.compaction_byte_slack = 100.0;  // Quality alone decides dominance.
  auto vss = OpenService(options);
  ASSERT_TRUE(vss->Ingest("cam", MakeStream(12, 64, 36, 4, 9)).ok());

  // Materialize two variants at the same resolution, qp 40 and qp 32. The
  // qp 32 variant serves every read the qp 40 one can, so compaction drops
  // the dominated qp 40 object.
  ASSERT_TRUE(vss->ReadVideo("cam", VariantKey{32, 18, 40}).ok());
  ASSERT_TRUE(vss->ReadVideo("cam", VariantKey{32, 18, 32}).ok());
  ASSERT_EQ(vss->Describe("cam")->variants.size(), 3u);

  auto dropped = vss->Compact();
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 1);
  EXPECT_EQ(vss->stats().variants_compacted, 1);
  auto entry = vss->Describe("cam");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->variants.size(), 2u);
  EXPECT_FALSE(entry->variants.count(VariantKey{32, 18, 40}));
  ASSERT_TRUE(entry->variants.count(VariantKey{32, 18, 32}));

  // Reads at the dropped tier still succeed, served by the survivor.
  vss->DropResident();
  int64_t transcodes_before = vss->stats().transcodes;
  auto read = vss->ReadVideo("cam", VariantKey{32, 18, 40});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(vss->stats().transcodes, transcodes_before);
}

TEST_F(VssTest, IngestReplacesVideoAndDropsStaleVariants) {
  auto vss = OpenService(Options());
  EncodedVideo first = MakeStream(12, 64, 36, 4, 10);
  ASSERT_TRUE(vss->Ingest("cam", first).ok());
  ASSERT_TRUE(vss->ReadVideo("cam", VariantKey{32, 18, 32}).ok());

  EncodedVideo second = MakeStream(8, 64, 36, 4, 11);
  ASSERT_TRUE(vss->Ingest("cam", second).ok());
  auto entry = vss->Describe("cam");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->frame_count, 8);
  EXPECT_EQ(entry->variants.size(), 1u);  // The stale transcode is gone.
  auto base = vss->BaseTier("cam");
  ASSERT_TRUE(base.ok());
  auto read = vss->ReadVideo("cam", *base);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(SameBitstream(**read, second));
}

TEST_F(VssTest, TranscodeDeadlineDegradesToNearestVariant) {
  // Tentpole: when every transcode stalls past the deadline, the read
  // degrades — the already-fetched nearest better variant (here the base)
  // is served directly instead of blocking the query on the transcode.
  auto profile = fault::ProfileByName("degraded");
  ASSERT_TRUE(profile.ok());
  profile->transcode_stall_delay = std::chrono::microseconds(5000);
  fault::FaultInjector injector(*profile, 17);
  VssOptions options = Options();
  options.faults = &injector;
  options.transcode_deadline = std::chrono::milliseconds(1);
  auto vss = OpenService(options);
  EncodedVideo original = MakeStream(12, 64, 36, 4, 13);
  ASSERT_TRUE(vss->Ingest("cam", original).ok());

  VariantKey tier{32, 18, 32};
  auto read = vss->ReadVideo("cam", tier);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  // The degraded read serves the base bitstream (64x36), not the 32x18 tier.
  EXPECT_EQ((*read)->width, 64);
  EXPECT_TRUE(SameBitstream(**read, original));
  VssStats stats = vss->stats();
  EXPECT_EQ(stats.degraded_reads, 1);
  EXPECT_EQ(stats.transcodes, 0);
  // Nothing half-transcoded gets persisted as a variant.
  EXPECT_EQ(stats.variants_persisted, 0);
  auto entry = vss->Describe("cam");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->variants.size(), 1u);
}

TEST_F(VssTest, ZeroDeadlineNeverDegradesEvenWithStalls) {
  // transcode_deadline == 0 disables degradation entirely: with stalls
  // injected the read is slower but still serves the exact requested tier —
  // the byte-identity guarantee for faults-off configurations.
  auto profile = fault::ProfileByName("degraded");
  ASSERT_TRUE(profile.ok());
  profile->transcode_stall_delay = std::chrono::microseconds(100);
  fault::FaultInjector injector(*profile, 19);
  VssOptions options = Options();
  options.faults = &injector;
  auto vss = OpenService(options);
  ASSERT_TRUE(vss->Ingest("cam", MakeStream(12, 64, 36, 4, 14)).ok());

  VariantKey tier{32, 18, 32};
  auto read = vss->ReadVideo("cam", tier);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)->width, 32);
  EXPECT_EQ(vss->stats().degraded_reads, 0);
  EXPECT_EQ(vss->stats().transcodes, 1);
}

TEST_F(VssTest, DegradedSingleFlightWaitersSeeTheDegradedStream) {
  // Waiters coalesced behind a leader that degrades must observe the
  // leader's degraded outcome instead of hanging on a tier that never
  // materializes.
  auto profile = fault::ProfileByName("degraded");
  ASSERT_TRUE(profile.ok());
  profile->transcode_stall_delay = std::chrono::microseconds(5000);
  fault::FaultInjector injector(*profile, 23);
  VssOptions options = Options();
  options.faults = &injector;
  options.transcode_deadline = std::chrono::milliseconds(1);
  auto vss = OpenService(options);
  EncodedVideo original = MakeStream(12, 64, 36, 4, 15);
  ASSERT_TRUE(vss->Ingest("cam", original).ok());

  constexpr int kThreads = 6;
  std::vector<std::shared_ptr<const EncodedVideo>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto read = vss->ReadVideo("cam", VariantKey{32, 18, 32});
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      results[static_cast<size_t>(t)] = *read;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(SameBitstream(*results[static_cast<size_t>(t)], original));
  }
  EXPECT_GT(vss->stats().degraded_reads, 0);
  EXPECT_EQ(vss->stats().transcodes, 0);
}

TEST_F(VssTest, RejectsInvalidIngestAndOptions) {
  auto vss = OpenService(Options());
  EXPECT_FALSE(vss->Ingest("", MakeStream(4, 32, 32, 4, 12)).ok());
  EXPECT_FALSE(vss->Ingest("cam", EncodedVideo{}).ok());
  VssOptions bad;
  EXPECT_FALSE(VideoStorageService::Open(bad).ok());  // No store.
  bad.store = store_.get();
  bad.gops_per_segment = 0;
  EXPECT_FALSE(VideoStorageService::Open(bad).ok());
}

}  // namespace
}  // namespace visualroad::storage

namespace visualroad::driver {
namespace {

namespace fs = std::filesystem;

/// Acceptance: a full engine pass through the storage service produces
/// byte-identical results to the in-memory path, for all three engines.
TEST(VssEngineTest, EngineResultsByteIdenticalThroughStorage) {
  sim::CityConfig config;
  config.scale_factor = 1;
  config.width = 96;
  config.height = 54;
  config.duration_seconds = 0.5;
  config.fps = 16;
  config.seed = 99;
  auto dataset = PrepareDataset(config);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  std::string root = (fs::temp_directory_path() / "vr_vss_engines").string();
  storage::StoreOptions store_options;
  store_options.root = root;
  store_options.block_size = 8192;
  store_options.metrics_label = "vss_engines";
  auto store = storage::ShardedStore::Open(store_options);
  ASSERT_TRUE(store.ok());
  storage::VssOptions vss_options;
  vss_options.store = &*store;
  auto vss = storage::VideoStorageService::Open(vss_options);
  ASSERT_TRUE(vss.ok()) << vss.status().ToString();
  ASSERT_TRUE(IngestDatasetVss(*dataset, **vss).ok());

  queries::QueryInstance q1;
  q1.id = queries::QueryId::kQ1;
  q1.video_index = 0;
  q1.q1_t1 = 0.1;
  q1.q1_t2 = 0.4;
  q1.q1_rect = {8, 8, 72, 40};
  queries::QueryInstance q2a = q1;
  q2a.id = queries::QueryId::kQ2a;

  for (auto make : {systems::MakeBatchEngine, systems::MakePipelineEngine,
                    systems::MakeCascadeEngine}) {
    systems::EngineOptions plain;
    plain.threads = 2;
    video::codec::GopCache plain_cache;
    plain.gop_cache = &plain_cache;
    systems::EngineOptions stored = plain;
    video::codec::GopCache stored_cache;
    stored.gop_cache = &stored_cache;
    stored.vss = vss->get();
    auto engine_plain = make(plain);
    auto engine_stored = make(stored);
    for (const queries::QueryInstance& instance : {q1, q2a}) {
      if (!engine_plain->Supports(instance.id)) continue;
      auto a = engine_plain->Execute(instance, *dataset,
                                     systems::OutputMode::kWrite, "");
      auto b = engine_stored->Execute(instance, *dataset,
                                      systems::OutputMode::kWrite, "");
      ASSERT_TRUE(a.ok()) << engine_plain->name() << ": "
                          << a.status().ToString();
      ASSERT_TRUE(b.ok()) << engine_stored->name() << ": "
                          << b.status().ToString();
      ASSERT_EQ(a->video.FrameCount(), b->video.FrameCount());
      for (int i = 0; i < a->video.FrameCount(); ++i) {
        EXPECT_EQ(a->video.frames[static_cast<size_t>(i)].data,
                  b->video.frames[static_cast<size_t>(i)].data)
            << engine_plain->name() << " frame " << i;
      }
    }
    // The storage-backed engine actually read through the service.
    EXPECT_GT((*vss)->stats().reads + (*vss)->stats().range_reads, 0);
  }
  std::error_code ec;
  fs::remove_all(root, ec);
}

}  // namespace
}  // namespace visualroad::driver
