#include "common/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace visualroad {
namespace {

/// Each test starts from an empty session with tracing on, and leaves
/// tracing off so span recording never leaks into other suites.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SetEnabled(true);
    trace::Clear();
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  trace::SetEnabled(false);
  {
    TRACE_SPAN("ignored");
    trace::Span dynamic(std::string("also_ignored"));
  }
  EXPECT_EQ(trace::EventCount(), 0u);
}

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  {
    TRACE_SPAN("outer");
    {
      TRACE_SPAN("inner");
    }
  }
  std::vector<trace::Event> events = trace::AllEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete inner-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  // The outer interval contains the inner one.
  EXPECT_LE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
  // Both recorded on the same thread.
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, DynamicNamesAreCopied) {
  {
    std::string name = "dyn_";
    name += "span";
    trace::Span span(name);
    name = "mutated after construction";
  }
  std::vector<trace::Event> events = trace::AllEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "dyn_span");
}

TEST_F(TraceTest, SpansAcrossPoolWorkersFlushLosslessly) {
  constexpr int kTasks = 64;
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([] { TRACE_SPAN("worker_task"); });
    }
    ASSERT_TRUE(pool.Wait().ok());
  }
  std::vector<trace::Event> events = trace::AllEvents();
  ASSERT_EQ(events.size(), static_cast<size_t>(kTasks));
  for (const trace::Event& event : events) {
    EXPECT_EQ(event.name, "worker_task");
    EXPECT_GT(event.tid, 0);
  }
  EXPECT_EQ(trace::DroppedEvents(), 0);
}

TEST_F(TraceTest, EventsSinceBracketsAPhase) {
  { TRACE_SPAN("before_a"); }
  { TRACE_SPAN("before_b"); }
  size_t mark = trace::EventCount();
  { TRACE_SPAN("phase_a"); }
  { TRACE_SPAN("phase_b"); }
  { TRACE_SPAN("phase_c"); }
  std::vector<trace::Event> phase = trace::EventsSince(mark);
  ASSERT_EQ(phase.size(), 3u);
  EXPECT_EQ(phase[0].name, "phase_a");
  EXPECT_EQ(phase[2].name, "phase_c");
  // The mark is stable: asking again returns the same slice.
  EXPECT_EQ(trace::EventsSince(mark).size(), 3u);
  EXPECT_EQ(trace::EventsSince(trace::EventCount()).size(), 0u);
}

TEST_F(TraceTest, WriteChromeTraceEmitsCompleteEvents) {
  {
    TRACE_SPAN("traced \"quoted\" stage");
    TRACE_SPAN("plain_stage");
  }
  std::string path = ::testing::TempDir() + "/vr_trace_test.json";
  Status status = trace::WriteChromeTrace(path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  // The chrome://tracing JSON object format: a traceEvents array of
  // complete ("X") events with microsecond timestamps.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"plain_stage\""), std::string::npos);
  // Quotes in span names are escaped, so the file stays valid JSON.
  EXPECT_NE(json.find("traced \\\"quoted\\\" stage"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(TraceTest, SummarizeAggregatesByNameDescending) {
  std::vector<trace::Event> events;
  auto add = [&](const char* name, double dur_us) {
    trace::Event event;
    event.name = name;
    event.dur_us = dur_us;
    events.push_back(event);
  };
  add("fast", 100.0);
  add("slow", 900.0);
  add("fast", 200.0);
  std::vector<trace::SpanTotal> totals = trace::Summarize(events);
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].name, "slow");
  EXPECT_EQ(totals[0].count, 1);
  EXPECT_NEAR(totals[0].total_seconds, 900e-6, 1e-12);
  EXPECT_EQ(totals[1].name, "fast");
  EXPECT_EQ(totals[1].count, 2);
  EXPECT_NEAR(totals[1].total_seconds, 300e-6, 1e-12);
}

TEST_F(TraceTest, ClearEmptiesTheSession) {
  { TRACE_SPAN("gone"); }
  EXPECT_EQ(trace::EventCount(), 1u);
  trace::Clear();
  EXPECT_EQ(trace::EventCount(), 0u);
  EXPECT_EQ(trace::DroppedEvents(), 0);
}

}  // namespace
}  // namespace visualroad
