#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "video/codec/codec.h"
#include "video/codec/dct.h"
#include "video/codec/entropy.h"
#include "video/codec/intra.h"
#include "video/codec/motion.h"
#include "video/codec/quant.h"
#include "video/codec/rate_control.h"
#include "video/metrics.h"

namespace visualroad::video::codec {
namespace {

// --- DCT ---

TEST(DctTest, RoundTripIsNearExact) {
  Pcg32 rng(1, 1);
  int16_t input[kTransformArea], output[kTransformArea];
  double coefficients[kTransformArea];
  for (int trial = 0; trial < 50; ++trial) {
    for (int16_t& v : input) v = static_cast<int16_t>(rng.NextInt(-255, 255));
    ForwardDct8x8(input, coefficients);
    InverseDct8x8(coefficients, output);
    for (int i = 0; i < kTransformArea; ++i) {
      EXPECT_NEAR(output[i], input[i], 1);
    }
  }
}

TEST(DctTest, ConstantBlockHasOnlyDcEnergy) {
  int16_t input[kTransformArea];
  for (int16_t& v : input) v = 57;
  double coefficients[kTransformArea];
  ForwardDct8x8(input, coefficients);
  EXPECT_NEAR(coefficients[0], 57.0 * 8.0, 1e-6);  // DC = mean * N.
  for (int i = 1; i < kTransformArea; ++i) {
    EXPECT_NEAR(coefficients[i], 0.0, 1e-9);
  }
}

TEST(DctTest, ParsevalEnergyPreserved) {
  Pcg32 rng(2, 2);
  int16_t input[kTransformArea];
  double coefficients[kTransformArea];
  for (int16_t& v : input) v = static_cast<int16_t>(rng.NextInt(-100, 100));
  ForwardDct8x8(input, coefficients);
  double spatial = 0, frequency = 0;
  for (int i = 0; i < kTransformArea; ++i) {
    spatial += static_cast<double>(input[i]) * input[i];
    frequency += coefficients[i] * coefficients[i];
  }
  EXPECT_NEAR(spatial, frequency, spatial * 1e-9 + 1e-6);
}

TEST(DctTest, ZigZagIsAPermutation) {
  bool seen[kTransformArea] = {};
  for (int i = 0; i < kTransformArea; ++i) {
    ASSERT_GE(kZigZag8x8[i], 0);
    ASSERT_LT(kZigZag8x8[i], kTransformArea);
    EXPECT_FALSE(seen[kZigZag8x8[i]]);
    seen[kZigZag8x8[i]] = true;
  }
  EXPECT_EQ(kZigZag8x8[0], 0);
  EXPECT_EQ(kZigZag8x8[63], 63);
}

// --- Quant ---

TEST(QuantTest, StepDoublesEverySixQp) {
  for (int qp = 0; qp <= 45; qp += 3) {
    EXPECT_NEAR(QpToStep(qp + 6) / QpToStep(qp), 2.0, 1e-9);
  }
}

TEST(QuantTest, RoundTripErrorBoundedByStep) {
  Pcg32 rng(3, 3);
  double coefficients[kTransformArea], reconstructed[kTransformArea];
  int16_t levels[kTransformArea];
  for (int qp : {8, 20, 32, 44}) {
    double step = QpToStep(qp);
    for (double& c : coefficients) c = rng.NextDouble(-500.0, 500.0);
    QuantizeBlock(coefficients, qp, levels);
    DequantizeBlock(levels, qp, reconstructed);
    for (int i = 0; i < kTransformArea; ++i) {
      EXPECT_LE(std::abs(reconstructed[i] - coefficients[i]), step)
          << "qp=" << qp;
    }
  }
}

TEST(QuantTest, DeadZoneZeroesTinyCoefficients) {
  double coefficients[kTransformArea] = {};
  coefficients[5] = QpToStep(30) * 0.2;  // Inside the dead zone.
  int16_t levels[kTransformArea];
  QuantizeBlock(coefficients, 30, levels);
  EXPECT_EQ(levels[5], 0);
}

TEST(QuantTest, HigherQpProducesSmallerLevels) {
  double coefficients[kTransformArea];
  for (int i = 0; i < kTransformArea; ++i) coefficients[i] = 300.0 - i * 9.0;
  int16_t low_qp[kTransformArea], high_qp[kTransformArea];
  QuantizeBlock(coefficients, 10, low_qp);
  QuantizeBlock(coefficients, 40, high_qp);
  int64_t low_sum = 0, high_sum = 0;
  for (int i = 0; i < kTransformArea; ++i) {
    low_sum += std::abs(low_qp[i]);
    high_sum += std::abs(high_qp[i]);
  }
  EXPECT_GT(low_sum, high_sum);
}

// --- Entropy ---

TEST(EntropyTest, BypassBitsRoundTrip) {
  ArithmeticEncoder enc;
  Pcg32 rng(4, 4);
  std::vector<int> bits;
  for (int i = 0; i < 2000; ++i) {
    int bit = static_cast<int>(rng.NextBounded(2));
    bits.push_back(bit);
    enc.EncodeBypass(bit);
  }
  std::vector<uint8_t> data = enc.Finish();
  ArithmeticDecoder dec(data);
  for (int bit : bits) EXPECT_EQ(dec.DecodeBypass(), bit);
}

TEST(EntropyTest, AdaptiveBitsRoundTrip) {
  ArithmeticEncoder enc;
  BitModel enc_model;
  Pcg32 rng(5, 5);
  std::vector<int> bits;
  for (int i = 0; i < 3000; ++i) {
    int bit = rng.NextBool(0.85) ? 0 : 1;  // Skewed source.
    bits.push_back(bit);
    enc.EncodeBit(enc_model, bit);
  }
  std::vector<uint8_t> data = enc.Finish();
  ArithmeticDecoder dec(data);
  BitModel dec_model;
  for (int bit : bits) EXPECT_EQ(dec.DecodeBit(dec_model), bit);
}

TEST(EntropyTest, SkewedSourceCompressesBelowOneBitPerSymbol) {
  ArithmeticEncoder enc;
  BitModel model;
  Pcg32 rng(6, 6);
  const int n = 20000;
  for (int i = 0; i < n; ++i) enc.EncodeBit(model, rng.NextBool(0.95) ? 0 : 1);
  std::vector<uint8_t> data = enc.Finish();
  // Entropy of p=0.05 is ~0.29 bits; allow generous adaptation overhead.
  EXPECT_LT(static_cast<double>(data.size()) * 8.0 / n, 0.5);
}

TEST(EntropyTest, UnaryEgRoundTripsWideRange) {
  ArithmeticEncoder enc;
  BitModel models[12];
  uint32_t values[] = {0, 1, 2, 5, 11, 12, 13, 100, 4095, 1000000};
  for (uint32_t v : values) EncodeUnaryEg(enc, models, 12, v);
  std::vector<uint8_t> data = enc.Finish();
  ArithmeticDecoder dec(data);
  BitModel dec_models[12];
  for (uint32_t v : values) EXPECT_EQ(DecodeUnaryEg(dec, dec_models, 12), v);
}

class ResidualRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ResidualRoundTrip, RandomBlocksRoundTrip) {
  int density = GetParam();
  Pcg32 rng(7, static_cast<uint64_t>(density) + 1);
  ArithmeticEncoder enc;
  ResidualContexts enc_ctx;
  std::vector<std::array<int16_t, kTransformArea>> blocks;
  for (int b = 0; b < 100; ++b) {
    std::array<int16_t, kTransformArea> block{};
    for (int i = 0; i < kTransformArea; ++i) {
      if (static_cast<int>(rng.NextBounded(100)) < density) {
        block[static_cast<size_t>(i)] =
            static_cast<int16_t>(rng.NextInt(-200, 200));
      }
    }
    EncodeResidualBlock(enc, enc_ctx, block.data());
    blocks.push_back(block);
  }
  std::vector<uint8_t> data = enc.Finish();
  ArithmeticDecoder dec(data);
  ResidualContexts dec_ctx;
  for (const auto& block : blocks) {
    int16_t decoded[kTransformArea];
    DecodeResidualBlock(dec, dec_ctx, decoded);
    for (int i = 0; i < kTransformArea; ++i) {
      EXPECT_EQ(decoded[i], block[static_cast<size_t>(i)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, ResidualRoundTrip,
                         ::testing::Values(0, 3, 10, 30, 70, 100));

TEST(EntropyTest, AllZeroBlockCostsOneCbfBit) {
  ArithmeticEncoder enc;
  ResidualContexts ctx;
  int16_t zeros[kTransformArea] = {};
  for (int i = 0; i < 1000; ++i) EncodeResidualBlock(enc, ctx, zeros);
  std::vector<uint8_t> data = enc.Finish();
  // 1000 highly-predictable CBF bits should compress far below 1000 bits.
  EXPECT_LT(data.size(), 40u);
}

// --- Motion ---

Plane MakePlane(int w, int h, uint64_t seed) {
  Plane plane(w, h);
  Pcg32 rng(seed, 9);
  for (uint8_t& s : plane.samples) s = static_cast<uint8_t>(rng.NextBounded(256));
  return plane;
}

TEST(MotionTest, SadZeroForIdenticalBlocks) {
  Plane plane = MakePlane(64, 64, 11);
  EXPECT_EQ(BlockSad(plane, plane, 16, 16, 16, 0, 0), 0);
}

TEST(MotionTest, DiamondSearchRecoversKnownShift) {
  // Reference is a smooth structured pattern (diamond search descends cost
  // gradients, which pure noise does not have); current is the reference
  // shifted by (+3, -2).
  Plane reference(96, 96);
  for (int y = 0; y < 96; ++y) {
    for (int x = 0; x < 96; ++x) {
      double v = 128 + 60 * std::sin(x * 0.31) + 55 * std::cos(y * 0.27);
      reference.Set(x, y, static_cast<uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
  Plane current(96, 96);
  for (int y = 0; y < 96; ++y) {
    for (int x = 0; x < 96; ++x) {
      int sx = std::clamp(x + 3, 0, 95);
      int sy = std::clamp(y - 2, 0, 95);
      current.Set(x, y, reference.At(sx, sy));
    }
  }
  MotionVector mv = DiamondSearch(current, reference, 32, 32, 16, 8, {});
  EXPECT_EQ(mv.dx, 3);
  EXPECT_EQ(mv.dy, -2);
  EXPECT_EQ(mv.sad, 0);
}

TEST(MotionTest, PredictorSeedsLargeDisplacements) {
  Plane reference = MakePlane(128, 128, 13);
  Plane current(128, 128);
  // Shift of 11 exceeds a +-8 diamond walk from zero in one go but is
  // reachable from a predictor of (10, 0) — wait, the radius caps at 8, so
  // use radius 16 and verify the predictor accelerates the search.
  for (int y = 0; y < 128; ++y) {
    for (int x = 0; x < 128; ++x) {
      current.Set(x, y, reference.At(std::clamp(x + 11, 0, 127), y));
    }
  }
  MotionVector with_predictor =
      DiamondSearch(current, reference, 48, 48, 16, 16, {11, 0, 0});
  EXPECT_EQ(with_predictor.dx, 11);
  EXPECT_EQ(with_predictor.sad, 0);
}

TEST(MotionTest, MotionCompensateCopiesDisplacedBlock) {
  Plane reference = MakePlane(64, 64, 14);
  uint8_t block[16 * 16];
  MotionCompensate(reference, 16, 16, 16, 4, -3, block);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_EQ(block[y * 16 + x], reference.At(20 + x, 13 + y));
    }
  }
}

TEST(MotionTest, EdgeClampedCompensationInBounds) {
  Plane reference = MakePlane(32, 32, 15);
  uint8_t block[16 * 16];
  MotionCompensate(reference, 0, 0, 16, -8, -8, block);  // Out of bounds.
  EXPECT_EQ(block[0], reference.At(0, 0));
}

// --- Intra ---

TEST(IntraTest, DcPredictionAveragesNeighbours) {
  Plane recon(32, 32);
  for (int x = 0; x < 32; ++x) recon.Set(x, 7, 100);  // Row above block at y=8.
  for (int y = 0; y < 32; ++y) recon.Set(7, y, 200);  // Column left of x=8.
  uint8_t prediction[kTransformArea];
  IntraPredict(recon, 8, 8, kTransformSize, IntraMode::kDc, prediction);
  EXPECT_EQ(prediction[0], 150);
}

TEST(IntraTest, NoNeighboursDefaultsTo128) {
  Plane recon(32, 32);
  uint8_t prediction[kTransformArea];
  IntraPredict(recon, 0, 0, kTransformSize, IntraMode::kDc, prediction);
  EXPECT_EQ(prediction[0], 128);
}

TEST(IntraTest, HorizontalCopiesLeftColumn) {
  Plane recon(32, 32);
  for (int y = 0; y < 32; ++y) recon.Set(7, y, static_cast<uint8_t>(y * 3));
  uint8_t prediction[kTransformArea];
  IntraPredict(recon, 8, 8, kTransformSize, IntraMode::kHorizontal, prediction);
  for (int y = 0; y < kTransformSize; ++y) {
    for (int x = 0; x < kTransformSize; ++x) {
      EXPECT_EQ(prediction[y * kTransformSize + x], (8 + y) * 3);
    }
  }
}

TEST(IntraTest, VerticalCopiesTopRow) {
  Plane recon(32, 32);
  for (int x = 0; x < 32; ++x) recon.Set(x, 7, static_cast<uint8_t>(x * 5));
  uint8_t prediction[kTransformArea];
  IntraPredict(recon, 8, 8, kTransformSize, IntraMode::kVertical, prediction);
  for (int x = 0; x < kTransformSize; ++x) {
    EXPECT_EQ(prediction[x], (8 + x) * 5);
  }
}

TEST(IntraTest, ChooserPicksVerticalForVerticalStripes) {
  Plane source(32, 32);
  Plane recon(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      uint8_t v = x % 2 ? 230 : 20;
      source.Set(x, y, v);
      recon.Set(x, y, v);
    }
  }
  EXPECT_EQ(ChooseIntraMode(source, recon, 8, 8, kTransformSize, false),
            IntraMode::kVertical);
}

TEST(IntraTest, PlanarInterpolatesSmoothGradients) {
  Plane recon(32, 32);
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      recon.Set(i, j, static_cast<uint8_t>(4 * (i + j)));
    }
  }
  uint8_t prediction[kTransformArea];
  IntraPredict(recon, 8, 8, kTransformSize, IntraMode::kPlanar, prediction);
  // Planar prediction of a plane should roughly continue the gradient.
  EXPECT_NEAR(prediction[0], 4 * (8 + 8), 16);
  EXPECT_GT(prediction[63], prediction[0]);
}

// --- Rate control ---

TEST(RateControlTest, ConstantQpNeverMoves) {
  RateController rc(0, 30.0, 25);
  EXPECT_EQ(rc.PickQp(false), 25);
  EXPECT_EQ(rc.PickQp(true), 25);
  rc.Update(false, 1000000);
  EXPECT_EQ(rc.PickQp(false), 25);
}

TEST(RateControlTest, OverBudgetRaisesQp) {
  RateController rc(100000, 30.0, 25);  // ~417 bytes/frame budget.
  for (int i = 0; i < 10; ++i) rc.Update(false, 5000);
  EXPECT_GT(rc.current_qp(), 25);
}

TEST(RateControlTest, UnderBudgetLowersQp) {
  RateController rc(1000000, 30.0, 30);
  for (int i = 0; i < 10; ++i) rc.Update(false, 100);
  EXPECT_LT(rc.current_qp(), 30);
}

TEST(RateControlTest, KeyframesGetBonus) {
  RateController rc(100000, 30.0, 30);
  EXPECT_EQ(rc.PickQp(true), 27);
  EXPECT_EQ(rc.PickQp(false), 30);
}

// --- End-to-end codec ---

Video MakeMovingVideo(int w, int h, int frames, uint64_t seed) {
  Pcg32 rng(seed, 21);
  Video v;
  v.fps = 15;
  for (int f = 0; f < frames; ++f) {
    Frame frame(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double value = 128 + 90 * std::sin((x + f * 2) * 0.11) *
                                 std::cos((y - f) * 0.07);
        frame.SetPixel(x, y, static_cast<uint8_t>(value),
                       static_cast<uint8_t>(110 + (x % 16)),
                       static_cast<uint8_t>(140 - (y % 16)));
      }
    }
    // A moving high-contrast square exercises motion search.
    int bx = (5 + f * 3) % (w - 10), by = (7 + f * 2) % (h - 10);
    for (int y = by; y < by + 8; ++y) {
      for (int x = bx; x < bx + 8; ++x) frame.SetY(x, y, 250);
    }
    v.frames.push_back(std::move(frame));
  }
  return v;
}

struct CodecCase {
  Profile profile;
  int qp;
  int gop;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTrip, ReconstructionQualityScalesWithQp) {
  const CodecCase& param = GetParam();
  Video input = MakeMovingVideo(80, 48, 8, 33);
  EncoderConfig config;
  config.profile = param.profile;
  config.qp = param.qp;
  config.gop_length = param.gop;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto decoded = Decode(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->FrameCount(), input.FrameCount());
  auto psnr = MeanPsnr(input, *decoded);
  ASSERT_TRUE(psnr.ok());
  double minimum = param.qp <= 16 ? 40.0 : (param.qp <= 28 ? 33.0 : 26.0);
  EXPECT_GT(*psnr, minimum) << "profile=" << ProfileName(param.profile)
                            << " qp=" << param.qp;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Values(CodecCase{Profile::kH264Like, 10, 5},
                      CodecCase{Profile::kH264Like, 16, 15},
                      CodecCase{Profile::kH264Like, 28, 8},
                      CodecCase{Profile::kH264Like, 40, 4},
                      CodecCase{Profile::kHevcLike, 10, 5},
                      CodecCase{Profile::kHevcLike, 16, 15},
                      CodecCase{Profile::kHevcLike, 28, 8},
                      CodecCase{Profile::kHevcLike, 40, 4}));

TEST(CodecTest, HigherQpShrinksBitstream) {
  Video input = MakeMovingVideo(80, 48, 6, 34);
  EncoderConfig low, high;
  low.qp = 12;
  high.qp = 36;
  auto low_encoded = Encode(input, low);
  auto high_encoded = Encode(input, high);
  ASSERT_TRUE(low_encoded.ok());
  ASSERT_TRUE(high_encoded.ok());
  EXPECT_GT(low_encoded->TotalBytes(), 2 * high_encoded->TotalBytes());
}

TEST(CodecTest, StaticVideoCompressesToSkips) {
  Video input;
  input.fps = 15;
  Video moving = MakeMovingVideo(80, 48, 1, 35);
  for (int i = 0; i < 10; ++i) input.frames.push_back(moving.frames[0]);
  EncoderConfig config;
  config.qp = 24;
  config.gop_length = 50;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok());
  // P-frames of identical content should be tiny relative to the keyframe.
  int64_t keyframe_bytes = static_cast<int64_t>(encoded->frames[0].data.size());
  int64_t p_bytes = encoded->TotalBytes() - keyframe_bytes;
  EXPECT_LT(p_bytes, keyframe_bytes / 4);
}

TEST(CodecTest, NoiseVideoInflatesBitstream) {
  Pcg32 rng(36, 1);
  Video noise;
  noise.fps = 15;
  for (int f = 0; f < 6; ++f) {
    Frame frame(80, 48);
    for (uint8_t& s : frame.y_plane()) s = static_cast<uint8_t>(rng.Next());
    for (uint8_t& s : frame.u_plane()) s = static_cast<uint8_t>(rng.Next());
    for (uint8_t& s : frame.v_plane()) s = static_cast<uint8_t>(rng.Next());
    noise.frames.push_back(std::move(frame));
  }
  Video coherent = MakeMovingVideo(80, 48, 6, 37);
  EncoderConfig config;
  config.qp = 24;
  auto noise_encoded = Encode(noise, config);
  auto coherent_encoded = Encode(coherent, config);
  ASSERT_TRUE(noise_encoded.ok());
  ASSERT_TRUE(coherent_encoded.ok());
  EXPECT_GT(noise_encoded->TotalBytes(), 3 * coherent_encoded->TotalBytes());
}

TEST(CodecTest, GopStructureMatchesConfig) {
  Video input = MakeMovingVideo(48, 32, 10, 38);
  EncoderConfig config;
  config.gop_length = 4;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok());
  for (int i = 0; i < encoded->FrameCount(); ++i) {
    EXPECT_EQ(encoded->frames[static_cast<size_t>(i)].keyframe, i % 4 == 0);
  }
}

TEST(CodecTest, DecodeRangeMatchesFullDecode) {
  Video input = MakeMovingVideo(48, 32, 12, 39);
  EncoderConfig config;
  config.gop_length = 5;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok());
  auto full = Decode(*encoded);
  ASSERT_TRUE(full.ok());
  auto range = DecodeRange(*encoded, 7, 3);
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->FrameCount(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(range->frames[static_cast<size_t>(i)].SameContentAs(
        full->frames[static_cast<size_t>(7 + i)]));
  }
}

// --- GOP-parallel codec ---

/// Frame-by-frame bitstream equality, with a readable failure message.
void ExpectBitIdentical(const EncodedVideo& a, const EncodedVideo& b) {
  ASSERT_EQ(a.FrameCount(), b.FrameCount());
  for (int i = 0; i < a.FrameCount(); ++i) {
    const EncodedFrame& fa = a.frames[static_cast<size_t>(i)];
    const EncodedFrame& fb = b.frames[static_cast<size_t>(i)];
    EXPECT_EQ(fa.keyframe, fb.keyframe) << "frame " << i;
    EXPECT_EQ(fa.qp, fb.qp) << "frame " << i;
    ASSERT_EQ(fa.data, fb.data) << "frame " << i << " bytes diverge";
  }
}

TEST(ParallelCodecTest, EncodeBitIdenticalAcrossThreadCounts) {
  Video input = MakeMovingVideo(64, 48, 13, 50);
  EncoderConfig config;
  config.qp = 22;
  config.gop_length = 4;  // 4 GOPs; the last is short.
  auto baseline = Encode(input, config);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (int threads : {1, 2, 4, 8}) {
    auto parallel = ParallelEncode(input, config, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectBitIdentical(*baseline, *parallel);
  }
}

TEST(ParallelCodecTest, EncodeBitIdenticalUnderRateControl) {
  // Bitrate mode exercises the planned QP schedule: the pre-pass is serial
  // and deterministic, so the schedule — and therefore the bitstream — must
  // not depend on the worker count.
  Video input = MakeMovingVideo(96, 64, 24, 51);
  EncoderConfig config;
  config.target_bitrate_bps = 60000;
  config.gop_length = 6;
  auto baseline = Encode(input, config);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  bool qp_moved = false;
  for (const EncodedFrame& frame : baseline->frames) {
    if (frame.qp != baseline->frames[0].qp) qp_moved = true;
  }
  EXPECT_TRUE(qp_moved) << "rate control never adjusted QP; test is vacuous";
  for (int threads : {2, 4, 8}) {
    auto parallel = ParallelEncode(input, config, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectBitIdentical(*baseline, *parallel);
  }
}

TEST(ParallelCodecTest, ParallelDecodeMatchesSerial) {
  Video input = MakeMovingVideo(64, 48, 14, 52);
  EncoderConfig config;
  config.qp = 20;
  config.gop_length = 4;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok());
  auto serial = Decode(*encoded);
  ASSERT_TRUE(serial.ok());
  for (int threads : {1, 2, 4, 8}) {
    auto parallel = ParallelDecode(*encoded, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(parallel->FrameCount(), serial->FrameCount());
    for (int i = 0; i < serial->FrameCount(); ++i) {
      EXPECT_TRUE(parallel->frames[static_cast<size_t>(i)].SameContentAs(
          serial->frames[static_cast<size_t>(i)]))
          << "threads=" << threads << " frame=" << i;
    }
  }
}

TEST(ParallelCodecTest, DecodeRangeAtGopBoundaries) {
  // Regression for the warm-up skip: a range starting exactly on a keyframe
  // has no warm-up frames, one starting just past it has gop_length-1.
  Video input = MakeMovingVideo(48, 32, 12, 53);
  EncoderConfig config;
  config.gop_length = 4;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok());
  auto full = Decode(*encoded);
  ASSERT_TRUE(full.ok());
  struct RangeCase {
    int first;
    int count;
  };
  for (const RangeCase& c : {RangeCase{4, 4},    // Exactly on a keyframe.
                             RangeCase{5, 3},    // One past a keyframe.
                             RangeCase{3, 2},    // Straddles a GOP boundary.
                             RangeCase{0, 12},   // Whole stream.
                             RangeCase{11, 1}})  // Last frame alone.
  {
    for (int threads : {1, 4}) {
      auto range = DecodeRange(*encoded, c.first, c.count, threads);
      ASSERT_TRUE(range.ok()) << range.status().ToString();
      ASSERT_EQ(range->FrameCount(), c.count) << "first=" << c.first;
      for (int i = 0; i < c.count; ++i) {
        EXPECT_TRUE(range->frames[static_cast<size_t>(i)].SameContentAs(
            full->frames[static_cast<size_t>(c.first + i)]))
            << "first=" << c.first << " i=" << i << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelCodecTest, StreamingEncoderMatchesWholeVideoEncode) {
  // Constant-QP is the only mode with both a streaming and a planned user
  // base; their outputs must agree byte for byte.
  Video input = MakeMovingVideo(48, 32, 9, 54);
  EncoderConfig config;
  config.qp = 26;
  config.gop_length = 3;
  auto whole = Encode(input, config);
  ASSERT_TRUE(whole.ok());
  auto encoder = Encoder::Create(48, 32, config);
  ASSERT_TRUE(encoder.ok());
  for (int i = 0; i < input.FrameCount(); ++i) {
    auto frame = encoder->EncodeFrame(input.frames[static_cast<size_t>(i)]);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->data, whole->frames[static_cast<size_t>(i)].data)
        << "frame " << i;
  }
}

TEST(RateControlTest, PlanQpScheduleTracksTarget) {
  Video input = MakeMovingVideo(96, 64, 30, 55);
  EncoderConfig config;
  config.gop_length = 15;

  // Constant-QP plans are flat at the configured QP.
  config.qp = 24;
  std::vector<int> flat = PlanQpSchedule(input, config);
  ASSERT_EQ(flat.size(), input.frames.size());
  for (int qp : flat) EXPECT_EQ(qp, 24);

  // A starved target drives the planned QP up; a generous one drives it
  // down. The closed loop only needs the bit estimator right to ~2x for
  // this ordering to hold.
  config.target_bitrate_bps = 30000;
  std::vector<int> starved = PlanQpSchedule(input, config);
  config.target_bitrate_bps = 400000;
  std::vector<int> generous = PlanQpSchedule(input, config);
  int64_t starved_sum = 0, generous_sum = 0;
  for (int qp : starved) starved_sum += qp;
  for (int qp : generous) generous_sum += qp;
  EXPECT_GT(starved_sum, generous_sum);
}

TEST(MotionTest, BoundedSadExactUnderBound) {
  // The early-exit contract: a result below the bound is the exact SAD; a
  // result at or above it only promises "no better than the bound". Vectors
  // near the edge also exercise the clamped path's hoisted rows.
  Plane cur = MakePlane(64, 48, 57);
  Plane ref = MakePlane(64, 48, 58);
  for (int by : {0, 16}) {
    for (int dy = -3; dy <= 3; ++dy) {
      for (int dx = -3; dx <= 3; ++dx) {
        int64_t exact = BlockSad(cur, ref, 16, by, 16, dx, dy);
        int64_t bounded = BlockSadBounded(cur, ref, 16, by, 16, dx, dy, exact + 1);
        EXPECT_EQ(bounded, exact) << "by=" << by << " dx=" << dx << " dy=" << dy;
        if (exact > 0) {
          int64_t cut = BlockSadBounded(cur, ref, 16, by, 16, dx, dy, exact / 2);
          EXPECT_GE(cut, exact / 2) << "by=" << by << " dx=" << dx << " dy=" << dy;
        }
      }
    }
  }
}

TEST(CodecTest, DecodeRangeRejectsOutOfBounds) {
  Video input = MakeMovingVideo(48, 32, 4, 40);
  auto encoded = Encode(input, EncoderConfig{});
  ASSERT_TRUE(encoded.ok());
  EXPECT_FALSE(DecodeRange(*encoded, 2, 5).ok());
  EXPECT_FALSE(DecodeRange(*encoded, -1, 2).ok());
}

TEST(CodecTest, DecoderRejectsPFrameFirst) {
  Video input = MakeMovingVideo(48, 32, 4, 41);
  EncoderConfig config;
  config.gop_length = 10;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(48, 32, config.profile);
  EXPECT_FALSE(decoder.DecodeFrame(encoded->frames[1]).ok());
}

TEST(CodecTest, EncoderRejectsBadConfig) {
  EXPECT_FALSE(Encoder::Create(0, 32, EncoderConfig{}).ok());
  EncoderConfig bad_qp;
  bad_qp.qp = 99;
  EXPECT_FALSE(Encoder::Create(32, 32, bad_qp).ok());
  EncoderConfig bad_gop;
  bad_gop.gop_length = 0;
  EXPECT_FALSE(Encoder::Create(32, 32, bad_gop).ok());
}

TEST(CodecTest, EncoderRejectsMismatchedFrameSize) {
  auto encoder = Encoder::Create(48, 32, EncoderConfig{});
  ASSERT_TRUE(encoder.ok());
  EXPECT_FALSE(encoder->EncodeFrame(Frame(32, 32)).ok());
}

TEST(CodecTest, OddResolutionRoundTrips) {
  Video input = MakeMovingVideo(45, 27, 5, 42);
  EncoderConfig config;
  config.qp = 16;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok());
  auto decoded = Decode(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Width(), 45);
  EXPECT_EQ(decoded->Height(), 27);
  auto psnr = MeanPsnr(input, *decoded);
  ASSERT_TRUE(psnr.ok());
  EXPECT_GT(*psnr, 38.0);
}

TEST(CodecTest, RateControlApproachesTargetBitrate) {
  Video input = MakeMovingVideo(96, 64, 45, 43);
  // Target below the content's minimum-QP ceiling so the controller can
  // actually converge onto it from both sides.
  EncoderConfig config;
  config.target_bitrate_bps = 60000;
  config.gop_length = 15;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok());
  double achieved = encoded->BitrateBps();
  EXPECT_GT(achieved, config.target_bitrate_bps * 0.4);
  EXPECT_LT(achieved, config.target_bitrate_bps * 2.5);
}

TEST(CodecTest, RateControlRespondsToTargetDirection) {
  Video input = MakeMovingVideo(96, 64, 30, 47);
  EncoderConfig low, high;
  low.target_bitrate_bps = 30000;
  high.target_bitrate_bps = 200000;
  auto low_encoded = Encode(input, low);
  auto high_encoded = Encode(input, high);
  ASSERT_TRUE(low_encoded.ok());
  ASSERT_TRUE(high_encoded.ok());
  EXPECT_LT(low_encoded->TotalBytes(), high_encoded->TotalBytes());
}

TEST(CodecTest, HevcProfileNeverWorseThanH264OnSmoothContent) {
  // The HEVC-like profile's larger blocks and planar mode should compress
  // smooth content at least as well at equal QP.
  Video input;
  input.fps = 15;
  for (int f = 0; f < 5; ++f) {
    Frame frame(96, 64);
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 96; ++x) {
        frame.SetPixel(x, y, static_cast<uint8_t>((x + y + f) & 0xFF), 120, 136);
      }
    }
    input.frames.push_back(std::move(frame));
  }
  EncoderConfig h264, hevc;
  h264.profile = Profile::kH264Like;
  hevc.profile = Profile::kHevcLike;
  h264.qp = hevc.qp = 24;
  auto h264_encoded = Encode(input, h264);
  auto hevc_encoded = Encode(input, hevc);
  ASSERT_TRUE(h264_encoded.ok());
  ASSERT_TRUE(hevc_encoded.ok());
  // At these tiny payload sizes per-frame overheads dominate; allow a
  // modest margin rather than strict dominance.
  EXPECT_LE(hevc_encoded->TotalBytes(),
            static_cast<int64_t>(h264_encoded->TotalBytes() * 1.3));
}

TEST(CodecTest, ProfileMetadata) {
  EXPECT_STREQ(ProfileName(Profile::kH264Like), "h264");
  EXPECT_STREQ(ProfileName(Profile::kHevcLike), "hevc");
  EXPECT_EQ(ProfileBlockSize(Profile::kH264Like), 16);
  EXPECT_EQ(ProfileBlockSize(Profile::kHevcLike), 32);
  EXPECT_GT(ProfileSearchRadius(Profile::kHevcLike),
            ProfileSearchRadius(Profile::kH264Like));
}

// --- Robustness: corrupted and adversarial bitstreams must not crash ---

TEST(CodecRobustness, DecodingRandomGarbageDoesNotCrash) {
  Pcg32 rng(71, 1);
  Decoder decoder(48, 32, Profile::kH264Like);
  for (int trial = 0; trial < 30; ++trial) {
    EncodedFrame frame;
    frame.keyframe = true;  // Keyframes decode without a reference.
    frame.qp = static_cast<uint8_t>(rng.NextBounded(52));
    frame.data.resize(rng.NextBounded(600));
    for (uint8_t& b : frame.data) b = static_cast<uint8_t>(rng.NextBounded(256));
    // The arithmetic decoder reads zeros past the end, so decoding must
    // terminate and produce a frame (garbage content is fine).
    auto decoded = decoder.DecodeFrame(frame);
    EXPECT_TRUE(decoded.ok());
    if (decoded.ok()) {
      EXPECT_EQ(decoded->width(), 48);
      EXPECT_EQ(decoded->height(), 32);
    }
  }
}

TEST(CodecRobustness, TruncatedRealBitstreamDecodesWithoutCrash) {
  Video input = MakeMovingVideo(48, 32, 3, 72);
  EncoderConfig config;
  config.qp = 20;
  auto encoded = Encode(input, config);
  ASSERT_TRUE(encoded.ok());
  for (size_t keep : {size_t{0}, size_t{1}, size_t{5},
                      encoded->frames[0].data.size() / 2}) {
    EncodedFrame truncated = encoded->frames[0];
    truncated.data.resize(std::min(keep, truncated.data.size()));
    Decoder decoder(48, 32, config.profile);
    auto decoded = decoder.DecodeFrame(truncated);
    EXPECT_TRUE(decoded.ok());  // Terminates; content is undefined.
  }
}

TEST(CodecRobustness, BitFlippedStreamStaysBounded) {
  Video input = MakeMovingVideo(48, 32, 4, 73);
  auto encoded = Encode(input, EncoderConfig{});
  ASSERT_TRUE(encoded.ok());
  Pcg32 rng(74, 2);
  for (int trial = 0; trial < 20; ++trial) {
    EncodedVideo corrupted = *encoded;
    EncodedFrame& frame = corrupted.frames[rng.NextBounded(4)];
    if (frame.data.empty()) continue;
    size_t position = rng.NextBounded(static_cast<uint32_t>(frame.data.size()));
    frame.data[position] ^= static_cast<uint8_t>(1 << rng.NextBounded(8));
    auto decoded = Decode(corrupted);
    EXPECT_TRUE(decoded.ok());
    if (decoded.ok()) EXPECT_EQ(decoded->FrameCount(), 4);
  }
}

TEST(CodecTest, EncodedVideoAccounting) {
  Video input = MakeMovingVideo(48, 32, 6, 44);
  auto encoded = Encode(input, EncoderConfig{});
  ASSERT_TRUE(encoded.ok());
  int64_t total = 0;
  for (const EncodedFrame& frame : encoded->frames) {
    total += static_cast<int64_t>(frame.data.size());
  }
  EXPECT_EQ(encoded->TotalBytes(), total);
  EXPECT_GT(encoded->BitrateBps(), 0.0);
}

}  // namespace
}  // namespace visualroad::video::codec
