#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>

#include "driver/datasets.h"
#include "driver/report.h"
#include "driver/validation.h"
#include "driver/vcd.h"
#include "storage/sharded_store.h"
#include "storage/vss.h"
#include "video/codec/gop_cache.h"

namespace visualroad::driver {
namespace {

using queries::QueryId;

class DriverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::CityConfig config;
    config.scale_factor = 1;
    config.width = 96;
    config.height = 54;
    config.duration_seconds = 1.0;
    config.fps = 15;
    config.seed = 41;
    auto dataset = PrepareDataset(config);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new sim::Dataset(std::move(dataset).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static sim::Dataset* dataset_;
};

sim::Dataset* DriverTest::dataset_ = nullptr;

// --- Named datasets ---

TEST(DatasetsTest, TableTwoConfigurations) {
  std::vector<NamedDataset> configs = PregeneratedConfigs();
  ASSERT_EQ(configs.size(), 6u);
  EXPECT_EQ(configs[0].name, "1k-short");
  EXPECT_EQ(configs[0].config.scale_factor, 2);
  EXPECT_EQ(configs[1].name, "1k-long");
  EXPECT_EQ(configs[1].config.scale_factor, 4);
  // Resolution doubles from 1k to 2k to 4k (proportional scaling).
  EXPECT_EQ(configs[2].config.width, 2 * configs[0].config.width);
  EXPECT_EQ(configs[4].config.width, 4 * configs[0].config.width);
  // Long runs are 4x the short duration, as 60 min is 4 x 15 min.
  EXPECT_DOUBLE_EQ(configs[1].config.duration_seconds,
                   4.0 * configs[0].config.duration_seconds);
}

TEST(DatasetsTest, RandomCaptionsAreNonOverlapping) {
  Pcg32 rng(5, 5);
  video::WebVttDocument document = GenerateRandomCaptions(rng, 30.0);
  ASSERT_GT(document.cues.size(), 3u);
  for (size_t i = 1; i < document.cues.size(); ++i) {
    EXPECT_GE(document.cues[i].start_seconds, document.cues[i - 1].end_seconds);
  }
  for (const video::WebVttCue& cue : document.cues) {
    EXPECT_LT(cue.start_seconds, cue.end_seconds);
    EXPECT_LE(cue.end_seconds, 30.0);
    EXPECT_FALSE(cue.text.empty());
  }
}

TEST_F(DriverTest, CaptionTracksAttachedToEveryAsset) {
  for (const sim::VideoAsset& asset : dataset_->assets) {
    const video::container::MetadataTrack* track = asset.container.FindTrack("WVTT");
    ASSERT_NE(track, nullptr);
    auto parsed = video::ParseWebVtt(
        std::string(track->payload.begin(), track->payload.end()));
    EXPECT_TRUE(parsed.ok());
  }
}

TEST(DatasetsTest, CaptionAttachmentIsIdempotent) {
  sim::Dataset dataset;
  dataset.assets.emplace_back();
  dataset.assets[0].container.video.fps = 15;
  AttachCaptionTracks(dataset, 1);
  AttachCaptionTracks(dataset, 1);
  int tracks = 0;
  for (const auto& track : dataset.assets[0].container.tracks) {
    if (track.kind == "WVTT") ++tracks;
  }
  EXPECT_EQ(tracks, 1);
}

// --- Validation math ---

TEST(ValidationTest, FrameValidatePassesIdenticalVideo) {
  video::Video reference;
  reference.fps = 15;
  for (int f = 0; f < 4; ++f) {
    video::Frame frame(32, 32);
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        frame.SetPixel(x, y, static_cast<uint8_t>((x * 7 + y * 3 + f) & 0xFF), 120,
                       140);
      }
    }
    reference.frames.push_back(std::move(frame));
  }
  video::codec::EncoderConfig config;
  config.qp = 8;  // Near-lossless.
  auto encoded = video::codec::Encode(reference, config);
  ASSERT_TRUE(encoded.ok());
  auto stats = FrameValidate(*encoded, reference, 40.0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->checked, 4);
  EXPECT_EQ(stats->passed, 4);
  EXPECT_GT(stats->mean_psnr_db, 40.0);
}

TEST(ValidationTest, FrameValidateFailsCorruptedVideo) {
  video::Video reference;
  reference.fps = 15;
  video::Frame frame(32, 32);
  frame.Fill(100, 120, 140);
  reference.frames.push_back(frame);
  // "Engine output": a very different frame.
  video::Video wrong;
  wrong.fps = 15;
  video::Frame bad(32, 32);
  bad.Fill(30, 90, 200);
  wrong.frames.push_back(bad);
  video::codec::EncoderConfig config;
  config.qp = 8;
  auto encoded = video::codec::Encode(wrong, config);
  ASSERT_TRUE(encoded.ok());
  auto stats = FrameValidate(*encoded, reference, 40.0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->passed, 0);
}

TEST(ValidationTest, FrameValidateRejectsCountMismatch) {
  video::Video reference;
  reference.fps = 15;
  reference.frames.resize(3, video::Frame(16, 16));
  video::codec::EncoderConfig config;
  video::Video shorter = reference;
  shorter.frames.pop_back();
  auto encoded = video::codec::Encode(shorter, config);
  ASSERT_TRUE(encoded.ok());
  EXPECT_FALSE(FrameValidate(*encoded, reference, 40.0).ok());
}

TEST(ValidationTest, SemanticValidateUsesJaccardThreshold) {
  std::vector<sim::FrameGroundTruth> truth(1);
  sim::GroundTruthBox gt;
  gt.entity_id = 1001;
  gt.object_class = sim::ObjectClass::kVehicle;
  gt.box = {10, 10, 50, 50};
  truth[0].boxes.push_back(gt);

  std::vector<std::vector<vision::Detection>> detections(1);
  vision::Detection close;  // IoU well above 0.5.
  close.object_class = sim::ObjectClass::kVehicle;
  close.box = {12, 12, 52, 52};
  vision::Detection far;  // Disjoint.
  far.object_class = sim::ObjectClass::kVehicle;
  far.box = {70, 70, 90, 90};
  detections[0] = {close, far};

  auto stats = SemanticValidate(detections, truth, sim::ObjectClass::kVehicle, 0.5);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->checked, 2);
  EXPECT_EQ(stats->passed, 1);
}

TEST(ValidationTest, SemanticValidateIgnoresOtherClasses) {
  std::vector<sim::FrameGroundTruth> truth(1);
  std::vector<std::vector<vision::Detection>> detections(1);
  vision::Detection pedestrian;
  pedestrian.object_class = sim::ObjectClass::kPedestrian;
  pedestrian.box = {0, 0, 5, 5};
  detections[0].push_back(pedestrian);
  auto stats = SemanticValidate(detections, truth, sim::ObjectClass::kVehicle, 0.5);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->checked, 0);
}

TEST(ValidationTest, StatsMergeCombinesCorrectly) {
  ValidationStats a, b;
  a.checked = 2;
  a.passed = 2;
  a.min_psnr_db = 42;
  a.mean_psnr_db = 45;
  a.max_psnr_db = 48;
  b.checked = 2;
  b.passed = 1;
  b.min_psnr_db = 30;
  b.mean_psnr_db = 35;
  b.max_psnr_db = 40;
  a.Merge(b);
  EXPECT_EQ(a.checked, 4);
  EXPECT_EQ(a.passed, 3);
  EXPECT_DOUBLE_EQ(a.min_psnr_db, 30);
  EXPECT_DOUBLE_EQ(a.max_psnr_db, 48);
  EXPECT_DOUBLE_EQ(a.mean_psnr_db, 40);
  EXPECT_DOUBLE_EQ(a.PassRate(), 0.75);
}

TEST(ValidationTest, PerfectDetectorApIsOne) {
  std::vector<sim::FrameGroundTruth> truth(2);
  std::vector<std::vector<vision::Detection>> detections(2);
  for (int f = 0; f < 2; ++f) {
    sim::GroundTruthBox gt;
    gt.entity_id = 1001;
    gt.object_class = sim::ObjectClass::kVehicle;
    gt.box = {10, 10, 40, 40};
    gt.visible_fraction = 1.0;
    truth[static_cast<size_t>(f)].boxes.push_back(gt);
    vision::Detection d;
    d.object_class = sim::ObjectClass::kVehicle;
    d.box = gt.box;
    d.score = 0.9;
    detections[static_cast<size_t>(f)].push_back(d);
  }
  EXPECT_NEAR(AveragePrecision(detections, truth, sim::ObjectClass::kVehicle), 1.0,
              1e-9);
}

TEST(ValidationTest, FalsePositivesDepressAp) {
  std::vector<sim::FrameGroundTruth> truth(1);
  sim::GroundTruthBox gt;
  gt.object_class = sim::ObjectClass::kVehicle;
  gt.box = {10, 10, 40, 40};
  gt.visible_fraction = 1.0;
  truth[0].boxes.push_back(gt);

  std::vector<std::vector<vision::Detection>> detections(1);
  vision::Detection fp;  // Ranked above the true positive.
  fp.object_class = sim::ObjectClass::kVehicle;
  fp.box = {60, 60, 90, 90};
  fp.score = 0.95;
  vision::Detection tp;
  tp.object_class = sim::ObjectClass::kVehicle;
  tp.box = gt.box;
  tp.score = 0.5;
  detections[0] = {fp, tp};
  double ap = AveragePrecision(detections, truth, sim::ObjectClass::kVehicle);
  EXPECT_LT(ap, 0.75);
  EXPECT_GT(ap, 0.2);
}

TEST(ValidationTest, MissedObjectsDepressAp) {
  std::vector<sim::FrameGroundTruth> truth(1);
  for (int i = 0; i < 2; ++i) {
    sim::GroundTruthBox gt;
    gt.object_class = sim::ObjectClass::kVehicle;
    gt.box = {10 + 50 * i, 10, 40 + 50 * i, 40};
    gt.visible_fraction = 1.0;
    truth[0].boxes.push_back(gt);
  }
  std::vector<std::vector<vision::Detection>> detections(1);
  vision::Detection d;
  d.object_class = sim::ObjectClass::kVehicle;
  d.box = {10, 10, 40, 40};
  d.score = 0.9;
  detections[0].push_back(d);  // Only one of two objects found.
  EXPECT_NEAR(AveragePrecision(detections, truth, sim::ObjectClass::kVehicle), 0.5,
              1e-9);
}

TEST(ValidationTest, ApZeroWhenNoPositives) {
  std::vector<sim::FrameGroundTruth> truth(1);
  std::vector<std::vector<vision::Detection>> detections(1);
  EXPECT_DOUBLE_EQ(AveragePrecision(detections, truth, sim::ObjectClass::kVehicle),
                   0.0);
}

// --- VCD ---

TEST_F(DriverTest, BatchSizeIsFourTimesScale) {
  VcdOptions options;
  VisualCityDriver vcd(*dataset_, options);
  EXPECT_EQ(vcd.BatchSize(), 4 * dataset_->config.scale_factor);
  options.batch_size_override = 2;
  VisualCityDriver overridden(*dataset_, options);
  EXPECT_EQ(overridden.BatchSize(), 2);
}

TEST_F(DriverTest, BatchSamplingDeterministicAcrossDrivers) {
  VcdOptions options;
  VisualCityDriver a(*dataset_, options), b(*dataset_, options);
  auto batch_a = a.SampleBatch(QueryId::kQ1);
  auto batch_b = b.SampleBatch(QueryId::kQ1);
  ASSERT_TRUE(batch_a.ok());
  ASSERT_TRUE(batch_b.ok());
  ASSERT_EQ(batch_a->size(), batch_b->size());
  for (size_t i = 0; i < batch_a->size(); ++i) {
    EXPECT_EQ((*batch_a)[i].q1_rect, (*batch_b)[i].q1_rect);
    EXPECT_EQ((*batch_a)[i].video_index, (*batch_b)[i].video_index);
  }
}

TEST_F(DriverTest, DifferentSeedsDifferentBatches) {
  VcdOptions a_options, b_options;
  b_options.seed = a_options.seed + 1;
  VisualCityDriver a(*dataset_, a_options), b(*dataset_, b_options);
  auto batch_a = a.SampleBatch(QueryId::kQ1);
  auto batch_b = b.SampleBatch(QueryId::kQ1);
  ASSERT_TRUE(batch_a.ok());
  ASSERT_TRUE(batch_b.ok());
  bool differ = false;
  for (size_t i = 0; i < batch_a->size(); ++i) {
    if (!((*batch_a)[i].q1_rect == (*batch_b)[i].q1_rect)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST_F(DriverTest, RunQueryBatchMeasuresAndValidates) {
  VcdOptions options;
  options.batch_size_override = 2;
  VisualCityDriver vcd(*dataset_, options);
  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);
  auto result = vcd.RunQueryBatch(*engine, QueryId::kQ1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->instances, 2);
  EXPECT_EQ(result->succeeded, 2);
  EXPECT_GT(result->total_seconds, 0.0);
  EXPECT_GT(result->frames_per_second, 0.0);
  EXPECT_GT(result->validation.checked, 0);
  EXPECT_EQ(result->validation.passed, result->validation.checked);
}

TEST_F(DriverTest, UnsupportedQueryReportedNotFailed) {
  VcdOptions options;
  options.batch_size_override = 2;
  VisualCityDriver vcd(*dataset_, options);
  systems::EngineOptions engine_options;
  auto cascade = systems::MakeCascadeEngine(engine_options);
  auto result = vcd.RunQueryBatch(*cascade, QueryId::kQ3);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->Supported());
  EXPECT_EQ(result->failed, 0);
}

TEST_F(DriverTest, StreamingModeSkipsValidation) {
  VcdOptions options;
  options.batch_size_override = 1;
  options.output_mode = systems::OutputMode::kStreaming;
  VisualCityDriver vcd(*dataset_, options);
  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);
  auto result = vcd.RunQueryBatch(*engine, QueryId::kQ2a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->succeeded, 1);
  EXPECT_EQ(result->validation.checked, 0);
}

TEST_F(DriverTest, ParallelInstancesMatchSerialResults) {
  VcdOptions serial_options;
  serial_options.batch_size_override = 4;
  VcdOptions parallel_options = serial_options;
  parallel_options.parallel_instances = 4;

  systems::EngineOptions engine_options;
  auto serial_engine = systems::MakeBatchEngine(engine_options);
  auto parallel_engine = systems::MakeBatchEngine(engine_options);
  ASSERT_TRUE(parallel_engine->ConcurrentSafe());

  VisualCityDriver serial_vcd(*dataset_, serial_options);
  VisualCityDriver parallel_vcd(*dataset_, parallel_options);
  auto serial = serial_vcd.RunQueryBatch(*serial_engine, QueryId::kQ1);
  auto parallel = parallel_vcd.RunQueryBatch(*parallel_engine, QueryId::kQ1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->parallel_instances, 1);
  EXPECT_EQ(parallel->parallel_instances, 4);
  EXPECT_GT(parallel->pool_stats.tasks_executed, 0);
  // Outcome aggregation and validation must not depend on how the batch was
  // scheduled.
  EXPECT_EQ(parallel->succeeded, serial->succeeded);
  EXPECT_EQ(parallel->failed, serial->failed);
  EXPECT_EQ(parallel->unsupported, serial->unsupported);
  EXPECT_EQ(parallel->validation.checked, serial->validation.checked);
  EXPECT_EQ(parallel->validation.passed, serial->validation.passed);
  EXPECT_NEAR(parallel->validation.mean_psnr_db, serial->validation.mean_psnr_db,
              1e-9);
}

// All three shipped engines are ConcurrentSafe now, so the serial-fallback
// path needs an engine that deliberately is not.
class SerialOnlyEngine : public systems::Vdbms {
 public:
  const char* name() const override { return "SerialOnlyEngine"; }
  bool Supports(QueryId) const override { return true; }
  systems::EngineStats stats() const override { return {}; }
  // Inherits ConcurrentSafe() == false.
  StatusOr<systems::QueryOutput> Execute(
      const queries::QueryInstance&, const sim::Dataset&, systems::OutputMode,
      const std::string&, systems::EngineStats* call_stats = nullptr) override {
    if (call_stats != nullptr) *call_stats = {};
    return systems::QueryOutput{};
  }
};

TEST_F(DriverTest, ParallelRequestFallsBackForUnsafeEngine) {
  VcdOptions options;
  options.batch_size_override = 2;
  options.parallel_instances = 4;
  VisualCityDriver vcd(*dataset_, options);
  SerialOnlyEngine engine;
  ASSERT_FALSE(engine.ConcurrentSafe());
  auto result = vcd.RunQueryBatch(engine, QueryId::kQ1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The engine did not declare Execute() thread-safe, so the measured window
  // ran serially even though the driver was configured for parallelism.
  EXPECT_EQ(result->parallel_instances, 1);
  EXPECT_EQ(result->succeeded, 2);
}

TEST_F(DriverTest, PipelineAndCascadeRunParallelBatches) {
  // Since the GOP cache rework, all three engines opt into instance-level
  // parallelism; fanned-out batches must report what serial ones would.
  struct Case {
    std::unique_ptr<systems::Vdbms> serial;
    std::unique_ptr<systems::Vdbms> parallel;
    QueryId id;
  };
  systems::EngineOptions engine_options;
  Case cases[] = {
      {systems::MakePipelineEngine(engine_options),
       systems::MakePipelineEngine(engine_options), QueryId::kQ2a},
      {systems::MakeCascadeEngine(engine_options),
       systems::MakeCascadeEngine(engine_options), QueryId::kQ2c},
  };
  for (Case& c : cases) {
    ASSERT_TRUE(c.parallel->ConcurrentSafe());
    VcdOptions serial_options;
    serial_options.batch_size_override = 4;
    VcdOptions parallel_options = serial_options;
    parallel_options.parallel_instances = 4;
    VisualCityDriver serial_vcd(*dataset_, serial_options);
    VisualCityDriver parallel_vcd(*dataset_, parallel_options);
    auto serial = serial_vcd.RunQueryBatch(*c.serial, c.id);
    auto parallel = parallel_vcd.RunQueryBatch(*c.parallel, c.id);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(serial->parallel_instances, 1);
    EXPECT_EQ(parallel->parallel_instances, 4);
    EXPECT_EQ(parallel->succeeded, serial->succeeded);
    EXPECT_EQ(parallel->failed, serial->failed);
    EXPECT_EQ(parallel->validation.checked, serial->validation.checked);
    EXPECT_EQ(parallel->validation.passed, serial->validation.passed);
    EXPECT_NEAR(parallel->validation.mean_psnr_db,
                serial->validation.mean_psnr_db, 1e-9);
  }
}

TEST_F(DriverTest, BatchResultCarriesEngineCacheCounters) {
  VcdOptions options;
  options.batch_size_override = 3;
  VisualCityDriver vcd(*dataset_, options);
  systems::EngineOptions engine_options;
  video::codec::GopCache cache;
  engine_options.gop_cache = &cache;
  auto engine = systems::MakePipelineEngine(engine_options);
  auto result = vcd.RunQueryBatch(*engine, QueryId::kQ2a);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The window's decode demand shows up as cache traffic: at least one cold
  // miss, and repeat instances against the same few inputs produce hits.
  EXPECT_GT(result->engine_stats.cache_misses, 0);
  EXPECT_GT(result->engine_stats.frames_decoded, 0);
  std::string report = FormatBenchmarkReport({*result});
  EXPECT_NE(report.find("Cache"), std::string::npos);
  EXPECT_NE(report.find("% hit"), std::string::npos);
}

TEST_F(DriverTest, NoneInjectorBatchMatchesNoInjectorBatch) {
  // Faults-off byte-identity at the driver level: attaching a zero-
  // probability injector must not change any outcome, and the robustness
  // accounting must stay at zero.
  auto none = fault::ProfileByName("none");
  ASSERT_TRUE(none.ok());
  fault::FaultInjector injector(*none, 41);

  VcdOptions plain_options;
  plain_options.batch_size_override = 2;
  plain_options.execution_mode = systems::ExecutionMode::kOnline;
  plain_options.online_rate_multiplier = 10000.0;
  VcdOptions injected_options = plain_options;
  injected_options.faults = &injector;

  systems::EngineOptions engine_options;
  auto plain_engine = systems::MakePipelineEngine(engine_options);
  auto injected_engine = systems::MakePipelineEngine(engine_options);
  VisualCityDriver plain_vcd(*dataset_, plain_options);
  VisualCityDriver injected_vcd(*dataset_, injected_options);
  auto plain = plain_vcd.RunQueryBatch(*plain_engine, QueryId::kQ1);
  auto injected = injected_vcd.RunQueryBatch(*injected_engine, QueryId::kQ1);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(injected.ok()) << injected.status().ToString();

  EXPECT_EQ(injected->succeeded, plain->succeeded);
  EXPECT_EQ(injected->failed, plain->failed);
  EXPECT_EQ(injected->validation.checked, plain->validation.checked);
  EXPECT_EQ(injected->validation.passed, plain->validation.passed);
  EXPECT_NEAR(injected->validation.mean_psnr_db, plain->validation.mean_psnr_db,
              1e-9);
  EXPECT_EQ(injected->frames_degraded, 0);
  EXPECT_EQ(injected->retries, 0);
  EXPECT_EQ(plain->frames_degraded, 0);
  EXPECT_EQ(plain->retries, 0);
  // A clean run renders a "-" in the Faults column.
  std::string report = FormatBenchmarkReport({*injected});
  EXPECT_NE(report.find("Faults"), std::string::npos);
  EXPECT_EQ(report.find("degraded"), std::string::npos);
}

TEST_F(DriverTest, LossyOnlineBatchReportsDegradedFrames) {
  auto lossy = fault::ProfileByName("lossy");
  ASSERT_TRUE(lossy.ok());
  lossy->jitter_delay = std::chrono::microseconds(10);

  auto run = [&](uint64_t seed) {
    fault::FaultInjector injector(*lossy, seed);
    VcdOptions options;
    options.batch_size_override = 2;
    options.execution_mode = systems::ExecutionMode::kOnline;
    options.online_rate_multiplier = 10000.0;
    options.faults = &injector;
    options.validate = false;  // The feed is lossy; measure, don't validate.
    VisualCityDriver vcd(*dataset_, options);
    systems::EngineOptions engine_options;
    auto engine = systems::MakePipelineEngine(engine_options);
    auto result = vcd.RunQueryBatch(*engine, QueryId::kQ1);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->frames_degraded : int64_t{-1};
  };

  int64_t first = run(47);
  // The lossy channel froze some frames, the batch still completed, and the
  // count reproduces under the same seed.
  EXPECT_GT(first, 0);
  EXPECT_EQ(first, run(47));

  fault::FaultInjector injector(*lossy, 47);
  VcdOptions options;
  options.batch_size_override = 1;
  options.execution_mode = systems::ExecutionMode::kOnline;
  options.online_rate_multiplier = 10000.0;
  options.faults = &injector;
  options.validate = false;
  VisualCityDriver vcd(*dataset_, options);
  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);
  auto result = vcd.RunQueryBatch(*engine, QueryId::kQ1);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->frames_degraded, 0);
  std::string report = FormatBenchmarkReport({*result});
  EXPECT_NE(report.find("degraded"), std::string::npos);
}

TEST_F(DriverTest, DegradedReadsAttributeToTheReadingThreadOnly) {
  // Regression: the batch accounting used to take a before/after delta of
  // the *global* degraded counter around the measured window, so degraded
  // reads issued by an unrelated thread sharing the storage service were
  // billed to the batch. The thread-scoped accounting must attribute them
  // to the reading thread and nothing else.
  namespace fs = std::filesystem;
  auto profile = fault::ProfileByName("degraded");
  ASSERT_TRUE(profile.ok());
  fault::FaultInjector injector(*profile, 41);

  std::string root = (fs::temp_directory_path() / "vr_driver_degraded").string();
  std::error_code ec;
  fs::remove_all(root, ec);
  storage::StoreOptions store_options;
  store_options.root = root;
  store_options.block_size = 8192;
  store_options.replication = 1;
  store_options.metrics_label = "driver_degraded";
  store_options.faults = &injector;
  store_options.read_retry.max_attempts = 10;
  auto store = storage::ShardedStore::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  storage::VssOptions vss_options;
  vss_options.store = &*store;
  vss_options.faults = &injector;
  vss_options.transcode_deadline = std::chrono::milliseconds(1);
  vss_options.resident_bytes = 0;  // Every neighbour read re-degrades.
  auto vss = storage::VideoStorageService::Open(vss_options);
  ASSERT_TRUE(vss.ok()) << vss.status().ToString();

  VcdOptions options;
  options.batch_size_override = 3;
  options.validate = false;
  options.storage = vss->get();
  options.faults = &injector;
  VisualCityDriver vcd(*dataset_, options);
  ASSERT_TRUE(vcd.StageStorage().ok());

  systems::EngineOptions engine_options;
  engine_options.vss = vss->get();
  auto engine = systems::MakePipelineEngine(engine_options);

  // A neighbour thread reads a transcode tier whose every attempt stalls
  // past the deadline, so each read degrades. The batch itself reads only
  // the base tier and never degrades.
  const std::string stream = storage::CameraStreamName(
      dataset_->TrafficAssets().front()->camera.camera_id);
  storage::VariantKey slow_tier{32, 18, 32};
  int64_t service_before = (*vss)->stats().degraded_reads;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> neighbor_degraded{0};
  std::thread neighbor([&] {
    int64_t before = fault::ThreadDegraded();
    int reads = 0;
    while ((!stop.load() || reads < 4) && reads < 64) {
      auto read = (*vss)->ReadVideo(stream, slow_tier);
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      ++reads;
    }
    neighbor_degraded = fault::ThreadDegraded() - before;
  });
  auto result = vcd.RunQueryBatch(*engine, QueryId::kQ1);
  stop = true;
  neighbor.join();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int64_t service_delta = (*vss)->stats().degraded_reads - service_before;
  EXPECT_GT(neighbor_degraded.load(), 0);
  // Every degraded read the service saw belongs to the neighbour thread...
  EXPECT_EQ(neighbor_degraded.load(), service_delta);
  // ...and none of them leaked into the batch's robustness accounting.
  EXPECT_EQ(result->frames_degraded, 0);
  fs::remove_all(root, ec);
}

TEST_F(DriverTest, PoolStatsArePerBatchDeltas) {
  // Regression: the driver used to build a fresh ThreadPool per batch, so
  // PoolStats were per-batch by accident. With the driver-lifetime pool,
  // each result must still report the *delta* for its own window — a
  // second batch that shows cumulative task counts is the bug.
  VcdOptions options;
  options.batch_size_override = 4;
  options.parallel_instances = 4;
  options.validate = false;
  VisualCityDriver vcd(*dataset_, options);
  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);

  auto first = vcd.RunQueryBatch(*engine, QueryId::kQ2a);
  auto second = vcd.RunQueryBatch(*engine, QueryId::kQ2a);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // One task per instance in both windows (grain 1): cumulative counting
  // would report 8 for the second batch.
  EXPECT_EQ(first->pool_stats.tasks_submitted, 4);
  EXPECT_EQ(first->pool_stats.tasks_executed, 4);
  EXPECT_EQ(second->pool_stats.tasks_submitted, 4);
  EXPECT_EQ(second->pool_stats.tasks_executed, 4);
  // The queue peak is also per-window (reset between batches).
  EXPECT_LE(first->pool_stats.queue_peak, 4);
  EXPECT_LE(second->pool_stats.queue_peak, 4);
}

// Fails every second Execute call, so a batch splits cleanly into
// attempted-and-succeeded versus attempted-and-failed instances.
class EveryOtherFailsEngine : public systems::Vdbms {
 public:
  const char* name() const override { return "EveryOtherFailsEngine"; }
  bool Supports(QueryId) const override { return true; }
  bool ConcurrentSafe() const override { return false; }
  systems::EngineStats stats() const override { return {}; }
  StatusOr<systems::QueryOutput> Execute(
      const queries::QueryInstance&, const sim::Dataset&, systems::OutputMode,
      const std::string&, systems::EngineStats* call_stats = nullptr) override {
    if (call_stats != nullptr) *call_stats = {};
    if (++calls_ % 2 == 0) return Status::Internal("synthetic failure");
    return systems::QueryOutput{};
  }

 private:
  int calls_ = 0;
};

TEST_F(DriverTest, ThroughputCountsAttemptedFramesGoodputOnlySucceeded) {
  // Regression: frames_per_second used to divide succeeded-only frames by a
  // wall clock that included the failed instances, understating throughput
  // exactly when instances failed. Attempted throughput and goodput are now
  // separate numbers.
  VcdOptions options;
  options.batch_size_override = 4;
  options.validate = false;
  VisualCityDriver vcd(*dataset_, options);
  EveryOtherFailsEngine engine;
  auto result = vcd.RunQueryBatch(engine, QueryId::kQ1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->succeeded, 2);
  ASSERT_EQ(result->failed, 2);
  ASSERT_GT(result->total_seconds, 0.0);

  // Every Q1 instance reads one whole traffic stream, and all streams in
  // this dataset have the same frame count, so attempted = 2x goodput.
  EXPECT_GT(result->attempted_frames, 0);
  EXPECT_NEAR(result->frames_per_second,
              static_cast<double>(result->attempted_frames) /
                  result->total_seconds,
              1e-6);
  EXPECT_NEAR(result->goodput_frames_per_second,
              result->frames_per_second / 2.0, 1e-6);
  std::string report = FormatBenchmarkReport({*result});
  EXPECT_NE(report.find("Goodput"), std::string::npos);
}

TEST_F(DriverTest, PerCallEngineStatsReportIndependentWindows) {
  // Regression: engine stats used to be sampled as before/after snapshots of
  // the engine's cumulative counters, so two concurrent (or even sequential
  // interleaved) windows conflated each other's work. The per-call out-param
  // must carry exactly one call's counters, and the calls must sum to the
  // engine's cumulative totals.
  systems::EngineOptions engine_options;
  video::codec::GopCache cache;
  engine_options.gop_cache = &cache;
  auto engine = systems::MakePipelineEngine(engine_options);

  VcdOptions options;
  options.batch_size_override = 1;
  VisualCityDriver vcd(*dataset_, options);
  auto batch = vcd.SampleBatch(QueryId::kQ2a);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  const queries::QueryInstance& instance = batch->front();

  systems::EngineStats first, second;
  ASSERT_TRUE(engine
                  ->Execute(instance, *dataset_, systems::OutputMode::kWrite,
                            "", &first)
                  .ok());
  ASSERT_TRUE(engine
                  ->Execute(instance, *dataset_, systems::OutputMode::kWrite,
                            "", &second)
                  .ok());
  EXPECT_GT(first.frames_decoded, 0);
  // The second, warm call hits the GOP cache the first call populated.
  EXPECT_GT(second.cache_hits, 0);

  systems::EngineStats sum = first;
  sum.Add(second);
  systems::EngineStats cumulative = engine->stats();
  EXPECT_EQ(sum.frames_decoded, cumulative.frames_decoded);
  EXPECT_EQ(sum.frames_encoded, cumulative.frames_encoded);
  EXPECT_EQ(sum.cache_hits, cumulative.cache_hits);
  EXPECT_EQ(sum.cache_misses, cumulative.cache_misses);
  EXPECT_EQ(sum.chunked_redecodes, cumulative.chunked_redecodes);
  EXPECT_EQ(sum.cnn_frames_full, cumulative.cnn_frames_full);
  EXPECT_EQ(sum.cnn_frames_cheap, cumulative.cnn_frames_cheap);
  EXPECT_EQ(sum.cnn_frames_skipped, cumulative.cnn_frames_skipped);
}

// --- Report formatting ---

TEST(ReportTest, TextTableAlignsColumns) {
  TextTable table;
  table.SetHeader({"A", "LongHeader"});
  table.AddRow({"xxxxx", "1"});
  table.AddRow({"y", "22"});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("A      LongHeader"), std::string::npos);
  EXPECT_NE(rendered.find("xxxxx"), std::string::npos);
  EXPECT_NE(rendered.find("-----"), std::string::npos);
}

TEST(ReportTest, FormatSecondsAdaptsUnits) {
  EXPECT_EQ(FormatSeconds(0.128), "128ms");
  EXPECT_EQ(FormatSeconds(3.42), "3.42s");
  EXPECT_EQ(FormatSeconds(250.0), "250s");
}

TEST(ReportTest, FormatRatioMatchesPaperStyle) {
  EXPECT_EQ(FormatRatio(0.9), "0.9x");
  EXPECT_EQ(FormatRatio(26.0), "26x");
  EXPECT_EQ(FormatRatio(1.04), "1.0x");
}

TEST(ReportTest, BenchmarkReportListsQueries) {
  std::vector<QueryBatchResult> results(1);
  results[0].id = QueryId::kQ2b;
  results[0].engine = "TestEngine";
  results[0].instances = 4;
  results[0].succeeded = 4;
  results[0].total_seconds = 1.5;
  results[0].frames_per_second = 120;
  std::string report = FormatBenchmarkReport(results);
  EXPECT_NE(report.find("Q2(b)"), std::string::npos);
  EXPECT_NE(report.find("TestEngine"), std::string::npos);
  EXPECT_NE(report.find("1.50s"), std::string::npos);
}

TEST(ReportTest, FormatPoolStatsReportsEfficiency) {
  PoolStats stats;
  stats.tasks_executed = 72;
  stats.busy_seconds = 3.2;
  stats.queue_peak = 64;
  stats.tasks_failed = 0;
  std::string line = FormatPoolStats(stats, 8, 0.5);
  EXPECT_NE(line.find("8 threads"), std::string::npos);
  EXPECT_NE(line.find("72 tasks"), std::string::npos);
  EXPECT_NE(line.find("80% efficient"), std::string::npos);
  EXPECT_NE(line.find("queue peak 64"), std::string::npos);
}

TEST(ReportTest, BenchmarkReportShowsParallelColumn) {
  std::vector<QueryBatchResult> results(2);
  results[0].id = QueryId::kQ1;
  results[0].engine = "BatchEngine";
  results[0].instances = 4;
  results[0].succeeded = 4;
  results[0].total_seconds = 2.0;
  results[0].parallel_instances = 4;
  results[0].pool_stats.busy_seconds = 6.0;
  results[1].id = QueryId::kQ2a;
  results[1].engine = "BatchEngine";
  results[1].instances = 4;
  results[1].succeeded = 4;
  results[1].total_seconds = 2.0;
  std::string report = FormatBenchmarkReport(results);
  EXPECT_NE(report.find("Parallel"), std::string::npos);
  EXPECT_NE(report.find("4 thr, 75% busy"), std::string::npos);
}

TEST(ReportTest, ReportShowsNaForMemoryFailures) {
  std::vector<QueryBatchResult> results(1);
  results[0].id = QueryId::kQ4;
  results[0].engine = "BatchEngine";
  results[0].instances = 4;
  results[0].failed = 4;
  results[0].resource_exhausted = 4;
  std::string report = FormatBenchmarkReport(results);
  EXPECT_NE(report.find("N/A (out of memory)"), std::string::npos);
}

}  // namespace
}  // namespace visualroad::driver
