#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "dist/coordinator.h"
#include "dist/protocol.h"
#include "dist/rpc.h"
#include "dist/worker.h"
#include "driver/dataset_io.h"
#include "driver/datasets.h"
#include "driver/vcd.h"
#include "queries/semantic_cache.h"
#include "storage/sharded_store.h"
#include "storage/vss.h"
#include "video/container/vrmp.h"

namespace visualroad::dist {
namespace {

using std::chrono::milliseconds;

// --- RPC framing ---

TEST(RpcFramingTest, Crc32KnownVector) {
  // The standard IEEE 802.3 check value for "123456789".
  const char* data = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(data), 9), 0xCBF43926u);
}

/// A connected socketpair wrapped as two RpcConnections.
struct Pipe {
  RpcConnection a;
  RpcConnection b;
  static Pipe Make() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    return Pipe{RpcConnection(fds[0]), RpcConnection(fds[1])};
  }
};

TEST(RpcFramingTest, FrameRoundTrip) {
  Pipe pipe = Pipe::Make();
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.method = MethodId::kExecuteRange;
  frame.correlation_id = 0xDEADBEEFCAFEull;
  frame.deadline_micros = 1234567;
  frame.payload = {1, 2, 3, 250, 251, 252};
  ASSERT_TRUE(pipe.a.SendFrame(frame).ok());
  auto received = pipe.b.RecvFrame(milliseconds(1000));
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->type, frame.type);
  EXPECT_EQ(received->method, frame.method);
  EXPECT_EQ(received->correlation_id, frame.correlation_id);
  EXPECT_EQ(received->deadline_micros, frame.deadline_micros);
  EXPECT_EQ(received->payload, frame.payload);
}

TEST(RpcFramingTest, TruncatedFrameIsDataLoss) {
  Frame frame;
  frame.payload = std::vector<uint8_t>(64, 7);
  std::vector<uint8_t> wire = EncodeFrame(frame);
  ASSERT_GT(wire.size(), 10u);
  // Half a frame, then EOF: SendFrame always writes whole frames, so push
  // the truncated wire image through a raw socketpair fd instead.
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  RpcConnection reader(fds[1]);
  ASSERT_EQ(::send(fds[0], wire.data(), wire.size() / 2, 0),
            static_cast<ssize_t>(wire.size() / 2));
  ::close(fds[0]);
  auto received = reader.RecvFrame(milliseconds(1000));
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDataLoss);
}

TEST(RpcFramingTest, CorruptChecksumIsDataLoss) {
  Frame frame;
  frame.payload = {10, 20, 30, 40};
  std::vector<uint8_t> wire = EncodeFrame(frame);
  wire[wire.size() - 5] ^= 0x40;  // Flip a payload bit; CRC no longer matches.
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  RpcConnection reader(fds[1]);
  ASSERT_EQ(::send(fds[0], wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  ::close(fds[0]);
  auto received = reader.RecvFrame(milliseconds(1000));
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(received.status().message().find("checksum"), std::string::npos);
}

TEST(RpcFramingTest, OversizedFrameRejectedBeforeAllocation) {
  Frame frame;
  frame.payload = {1};
  std::vector<uint8_t> wire = EncodeFrame(frame);
  // Announce a length beyond the payload ceiling in the length field
  // (bytes 4..7, little-endian).
  uint32_t huge = kMaxFramePayload + 1024;
  wire[4] = static_cast<uint8_t>(huge);
  wire[5] = static_cast<uint8_t>(huge >> 8);
  wire[6] = static_cast<uint8_t>(huge >> 16);
  wire[7] = static_cast<uint8_t>(huge >> 24);
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  RpcConnection reader(fds[1]);
  ASSERT_EQ(::send(fds[0], wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  auto received = reader.RecvFrame(milliseconds(1000));
  ::close(fds[0]);
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kInvalidArgument);
}

TEST(RpcFramingTest, BadMagicIsDataLoss) {
  Frame frame;
  std::vector<uint8_t> wire = EncodeFrame(frame);
  wire[0] ^= 0xFF;
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  RpcConnection reader(fds[1]);
  ASSERT_EQ(::send(fds[0], wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  auto received = reader.RecvFrame(milliseconds(1000));
  ::close(fds[0]);
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDataLoss);
}

TEST(RpcFramingTest, PollBudgetNeverBusyLoopsBeforeDeadline) {
  // Past deadline: no budget, the caller's timeout check fires.
  EXPECT_EQ(internal::PollBudgetMs(std::chrono::steady_clock::now() -
                                   milliseconds(5)),
            0);
  // A sub-millisecond remainder must still hand poll() a >= 1ms budget;
  // rounding it down to 0 turns the tail of every wait into a busy loop.
  EXPECT_GE(internal::PollBudgetMs(std::chrono::steady_clock::now() +
                                   std::chrono::microseconds(500)),
            1);
  int far = internal::PollBudgetMs(std::chrono::steady_clock::now() +
                                   milliseconds(50));
  EXPECT_GE(far, 1);
  EXPECT_LE(far, 51);
}

TEST(RpcFramingTest, TimeoutMidFrameIsResumableNotDesync) {
  // A frame delivered in two halves across a receive timeout: the first
  // RecvFrame times out mid-frame, but the stream must stay synchronised so
  // the retry returns the complete frame. The straggler path depends on
  // this — a late oversize response is skipped whole, never torn.
  Frame frame;
  frame.type = FrameType::kResponseOk;
  frame.correlation_id = 77;
  frame.payload = std::vector<uint8_t>(4096, 0x5A);
  std::vector<uint8_t> wire = EncodeFrame(frame);
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  RpcConnection reader(fds[1]);
  size_t half = wire.size() / 2;
  ASSERT_EQ(::send(fds[0], wire.data(), half, 0), static_cast<ssize_t>(half));

  auto timed_out = reader.RecvFrame(milliseconds(50));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kIoError);
  EXPECT_NE(timed_out.status().message().find("timeout"), std::string::npos);

  ASSERT_EQ(::send(fds[0], wire.data() + half, wire.size() - half, 0),
            static_cast<ssize_t>(wire.size() - half));
  ::close(fds[0]);
  auto resumed = reader.RecvFrame(milliseconds(1000));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->correlation_id, frame.correlation_id);
  EXPECT_EQ(resumed->payload, frame.payload);
}

// --- Cache shipping payload ---

TEST(CacheShippingTest, CacheEntriesRoundTrip) {
  queries::SemanticEntry entry;
  entry.key.stream = 0xABCDEF0123ull;
  entry.key.model = "miniyolo/test/v1";
  entry.key.threshold = 0.25;
  entry.range.first = 3;
  entry.range.count = 2;
  entry.width = 96;
  entry.height = 54;
  entry.fps = 15.0;
  entry.detections.resize(2);
  vision::Detection det;
  det.object_class = sim::ObjectClass::kVehicle;
  det.box.x0 = 1;
  det.box.y0 = 2;
  det.box.x1 = 33;
  det.box.y1 = 44;
  det.score = 0.875;
  det.entity_id = 42;
  entry.detections[1].push_back(det);
  entry.RecomputeBytes();

  std::vector<uint8_t> wire =
      EncodeCacheEntries({std::make_shared<const queries::SemanticEntry>(entry)});
  auto decoded = DecodeCacheEntries(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 1u);
  const queries::SemanticEntry& got = (*decoded)[0];
  EXPECT_EQ(got.key.stream, entry.key.stream);
  EXPECT_EQ(got.key.model, entry.key.model);
  EXPECT_EQ(got.key.threshold, entry.key.threshold);
  EXPECT_EQ(got.range.first, 3);
  EXPECT_EQ(got.range.count, 2);
  EXPECT_EQ(got.width, 96);
  EXPECT_EQ(got.height, 54);
  EXPECT_EQ(got.fps, 15.0);
  ASSERT_EQ(got.detections.size(), 2u);
  EXPECT_TRUE(got.detections[0].empty());
  ASSERT_EQ(got.detections[1].size(), 1u);
  const vision::Detection& d = got.detections[1][0];
  EXPECT_EQ(d.object_class, det.object_class);
  EXPECT_EQ(d.box.x0, det.box.x0);
  EXPECT_EQ(d.box.y0, det.box.y0);
  EXPECT_EQ(d.box.x1, det.box.x1);
  EXPECT_EQ(d.box.y1, det.box.y1);
  EXPECT_EQ(d.score, det.score);
  EXPECT_EQ(d.entity_id, det.entity_id);
  EXPECT_GT(got.bytes, 0);

  // A truncated payload is rejected, not misparsed.
  std::vector<uint8_t> truncated(wire.begin(), wire.end() - 3);
  auto rejected = DecodeCacheEntries(truncated);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDataLoss);

  // The empty snapshot (a cold donor) round-trips too.
  auto empty = DecodeCacheEntries(EncodeCacheEntries({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// --- Worker server (in-process) ---

/// Knobs for the in-process worker harness beyond the spawn default.
struct InProcessWorkerConfig {
  bool exit_on_disconnect = false;
  /// When set, the harness's dataset factory counts its invocations here —
  /// how the staging tests prove a staged setup never regenerated pixels.
  std::atomic<int>* factory_calls = nullptr;
  /// Wire the sharded-store dataset loader (what worker_main.cc installs),
  /// enabling staged Setup.
  bool staged_loader = false;
};

/// Runs RunWorkerServer on a background thread against a throwaway socket;
/// stops it via a Shutdown RPC on destruction.
class InProcessWorker {
 public:
  explicit InProcessWorker(bool exit_on_disconnect = false)
      : InProcessWorker(InProcessWorkerConfig{exit_on_disconnect}) {}

  explicit InProcessWorker(const InProcessWorkerConfig& harness) {
    static int seq = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("vr-dist-test-" + std::to_string(::getpid()) + "-" +
              std::to_string(seq++) + ".sock"))
                .string();
    WorkerServerOptions options;
    options.socket_path = path_;
    options.exit_on_disconnect = harness.exit_on_disconnect;
    std::atomic<int>* factory_calls = harness.factory_calls;
    options.dataset_factory = [factory_calls](
                                  const sim::CityConfig& config,
                                  const sim::GeneratorOptions& generator) {
      if (factory_calls != nullptr) ++*factory_calls;
      return driver::PrepareDataset(config, generator);
    };
    if (harness.staged_loader) {
      options.dataset_loader = [](const storage::ShardedStore& store) {
        return driver::LoadDatasetSharded(store);
      };
    }
    thread_ = std::thread([options] {
      Status status = RunWorkerServer(options);
      EXPECT_TRUE(status.ok()) << status.ToString();
    });
  }

  ~InProcessWorker() {
    auto connected = RpcConnection::ConnectUnix(path_, milliseconds(2000));
    if (connected.ok()) {
      RpcClient client(std::move(connected).value());
      (void)client.Call(MethodId::kShutdown, {}, milliseconds(2000));
    }
    if (thread_.joinable()) thread_.join();
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::thread thread_;
};

TEST(WorkerServerTest, HandshakeAndHealth) {
  InProcessWorker worker;
  auto connected = RpcConnection::ConnectUnix(worker.path(), milliseconds(5000));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  RpcClient client(std::move(connected).value());
  ASSERT_TRUE(client.Handshake(milliseconds(2000)).ok());
  EXPECT_EQ(client.worker_pid(), ::getpid());  // In-process server.
  auto health = client.Call(MethodId::kHealth, {}, milliseconds(2000));
  EXPECT_TRUE(health.ok());
}

TEST(WorkerServerTest, ExpiredDeadlineRefusedWithoutExecuting) {
  InProcessWorker worker;
  auto connected = RpcConnection::ConnectUnix(worker.path(), milliseconds(5000));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  RpcConnection connection = std::move(connected).value();
  Frame request;
  request.type = FrameType::kRequest;
  request.method = MethodId::kHealth;
  request.correlation_id = 99;
  request.deadline_micros = NowMicros() - 1000000;  // One second in the past.
  ASSERT_TRUE(connection.SendFrame(request).ok());
  auto response = connection.RecvFrame(milliseconds(2000));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->type, FrameType::kResponseError);
  Status refused = DecodeStatusPayload(response->payload);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.message().find("deadline"), std::string::npos);
}

TEST(WorkerServerTest, ExecuteRangeBeforeSetupIsFailedPrecondition) {
  InProcessWorker worker;
  auto connected = RpcConnection::ConnectUnix(worker.path(), milliseconds(5000));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  RpcClient client(std::move(connected).value());
  ASSERT_TRUE(client.Handshake(milliseconds(2000)).ok());
  ExecuteRangeRequest request;
  auto response = client.Call(MethodId::kExecuteRange,
                              EncodeExecuteRequest(request), milliseconds(2000));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WorkerServerTest, SurvivesReconnect) {
  InProcessWorker worker(/*exit_on_disconnect=*/false);
  {
    auto first = RpcConnection::ConnectUnix(worker.path(), milliseconds(5000));
    ASSERT_TRUE(first.ok());
    RpcClient client(std::move(first).value());
    ASSERT_TRUE(client.Handshake(milliseconds(2000)).ok());
  }  // Connection dropped without Shutdown.
  auto second = RpcConnection::ConnectUnix(worker.path(), milliseconds(5000));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  RpcClient client(std::move(second).value());
  EXPECT_TRUE(client.Handshake(milliseconds(2000)).ok());
}

// --- Worker process lifecycle ---

std::string TestSocketPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("vr-dist-proc-" + std::to_string(::getpid()) + "-" + tag + ".sock"))
      .string();
}

TEST(WorkerProcessTest, SpawnHandshakeKillReapsChild) {
  std::string binary = DefaultWorkerBinary();
  ASSERT_FALSE(binary.empty());
  ASSERT_TRUE(std::filesystem::exists(binary)) << binary;
  // The socket path carries this (supervisor) process's pid, so concurrent
  // test runs cannot collide.
  std::string path = TestSocketPath("reap");
  EXPECT_NE(path.find(std::to_string(::getpid())), std::string::npos);

  auto spawned = WorkerProcess::Spawn(binary, path);
  ASSERT_TRUE(spawned.ok()) << spawned.status().ToString();
  WorkerProcess process = std::move(spawned).value();
  int pid = process.pid();
  ASSERT_GT(pid, 0);
  EXPECT_NE(pid, ::getpid());

  auto connected = RpcConnection::ConnectUnix(path, milliseconds(10000));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  RpcClient client(std::move(connected).value());
  ASSERT_TRUE(client.Handshake(milliseconds(5000)).ok());
  EXPECT_EQ(client.worker_pid(), pid);

  process.Kill();
  // Reaped: the pid no longer names a process (or at least not our zombie).
  EXPECT_FALSE(process.Alive());
  errno = 0;
  int probe = ::kill(pid, 0);
  EXPECT_TRUE(probe == -1 && errno == ESRCH) << "worker not reaped";
}

TEST(WorkerProcessTest, ReconnectAfterWorkerRestart) {
  std::string binary = DefaultWorkerBinary();
  ASSERT_FALSE(binary.empty());
  std::string path = TestSocketPath("restart");

  auto first = WorkerProcess::Spawn(binary, path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  {
    auto connected = RpcConnection::ConnectUnix(path, milliseconds(10000));
    ASSERT_TRUE(connected.ok());
    RpcClient client(std::move(connected).value());
    ASSERT_TRUE(client.Handshake(milliseconds(5000)).ok());
  }
  first->Kill();

  // A replacement worker re-binds the same path (stale socket unlinked on
  // bind) and a fresh connection handshakes cleanly.
  auto second = WorkerProcess::Spawn(binary, path);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto connected = RpcConnection::ConnectUnix(path, milliseconds(10000));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  RpcClient client(std::move(connected).value());
  ASSERT_TRUE(client.Handshake(milliseconds(5000)).ok());
  EXPECT_EQ(client.worker_pid(), second->pid());
}

// --- Locality ---

TEST(ShardedStoreTest, NodeBytesForPrefix) {
  storage::StoreOptions options;
  options.root = (std::filesystem::temp_directory_path() /
                  ("vr-dist-store-" + std::to_string(::getpid())))
                     .string();
  std::filesystem::remove_all(options.root);
  options.num_nodes = 3;
  options.replication = 2;
  options.block_size = 64;
  auto opened = storage::ShardedStore::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  storage::ShardedStore store = std::move(opened).value();
  ASSERT_TRUE(store.Put("vss/camera_0/base.var",
                        std::vector<uint8_t>(200, 1)).ok());
  ASSERT_TRUE(store.Put("vss/camera_1/base.var",
                        std::vector<uint8_t>(100, 2)).ok());

  std::vector<int64_t> camera0 = store.NodeBytesForPrefix("vss/camera_0/");
  ASSERT_EQ(camera0.size(), 3u);
  int64_t total0 = camera0[0] + camera0[1] + camera0[2];
  EXPECT_EQ(total0, 200 * 2);  // Replication counted.

  // The prefix filter excludes the other stream.
  std::vector<int64_t> all = store.NodeBytesForPrefix("vss/");
  int64_t total_all = all[0] + all[1] + all[2];
  EXPECT_EQ(total_all, 200 * 2 + 100 * 2);

  EXPECT_EQ(store.NodeBytesForPrefix("vss/camera_9/"),
            std::vector<int64_t>(3, 0));
  std::filesystem::remove_all(options.root);
}

// --- Coordinator ---

class CoordinatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_.scale_factor = 1;
    config_.width = 96;
    config_.height = 54;
    config_.duration_seconds = 0.5;
    config_.fps = 15;
    config_.seed = 41;
    auto dataset = driver::PrepareDataset(config_);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new sim::Dataset(std::move(dataset).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static std::vector<queries::QueryInstance> SampleBatch(queries::QueryId id,
                                                         int count,
                                                         uint64_t seed = 7) {
    Pcg32 rng(seed, 11);
    queries::SamplerOptions sampler;
    std::vector<queries::QueryInstance> batch;
    for (int i = 0; i < count; ++i) {
      auto instance = queries::SampleQueryInstance(id, *dataset_, rng, sampler);
      EXPECT_TRUE(instance.ok()) << instance.status().ToString();
      batch.push_back(std::move(instance).value());
    }
    return batch;
  }

  static CoordinatorOptions BaseOptions(int workers) {
    CoordinatorOptions options;
    options.workers = workers;
    options.setup.config = config_;
    options.setup.engine = "PipelineEngine";
    options.dataset = dataset_;
    return options;
  }

  static sim::CityConfig config_;
  static sim::Dataset* dataset_;
};

sim::CityConfig CoordinatorTest::config_;
sim::Dataset* CoordinatorTest::dataset_ = nullptr;

TEST_F(CoordinatorTest, ByteIdenticalToSingleProcess) {
  std::vector<queries::QueryInstance> batch = SampleBatch(queries::QueryId::kQ1, 4);
  std::vector<queries::QueryInstance> boxes =
      SampleBatch(queries::QueryId::kQ2c, 2, /*seed=*/9);
  batch.insert(batch.end(), boxes.begin(), boxes.end());

  // Single-process reference: the same engine architecture, run directly.
  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);
  std::vector<systems::QueryOutput> direct;
  for (const queries::QueryInstance& instance : batch) {
    auto output = engine->Execute(instance, *dataset_,
                                  systems::OutputMode::kWrite, "");
    ASSERT_TRUE(output.ok()) << output.status().ToString();
    direct.push_back(std::move(output).value());
  }

  // Four workers, the acceptance configuration: N workers vs direct Execute.
  Coordinator coordinator(BaseOptions(4));
  ASSERT_TRUE(coordinator.Start().ok());
  DistBatchStats stats;
  auto outcomes = coordinator.ExecuteBatch(batch, systems::OutputMode::kWrite,
                                           "", &stats);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), batch.size());
  EXPECT_GT(stats.chunks_dispatched, 0);
  EXPECT_GT(stats.worker_busy_seconds, 0.0);

  for (size_t i = 0; i < batch.size(); ++i) {
    const DistInstanceOutcome& outcome = (*outcomes)[i];
    ASSERT_EQ(outcome.state, DistInstanceOutcome::kSucceeded) << outcome.error;
    EXPECT_GE(outcome.worker, 0);
    // Byte identity: the encoded result container must match the
    // single-process run exactly.
    video::container::Container got, want;
    got.video = outcome.output.video;
    want.video = direct[i].video;
    EXPECT_EQ(video::container::Mux(got), video::container::Mux(want))
        << "instance " << i;
    // Semantic identity for the detection query.
    ASSERT_EQ(outcome.output.detections.size(), direct[i].detections.size());
    for (size_t f = 0; f < direct[i].detections.size(); ++f) {
      ASSERT_EQ(outcome.output.detections[f].size(),
                direct[i].detections[f].size());
      for (size_t d = 0; d < direct[i].detections[f].size(); ++d) {
        const vision::Detection& a = outcome.output.detections[f][d];
        const vision::Detection& b = direct[i].detections[f][d];
        EXPECT_EQ(a.box.x0, b.box.x0);
        EXPECT_EQ(a.box.y0, b.box.y0);
        EXPECT_EQ(a.box.x1, b.box.x1);
        EXPECT_EQ(a.box.y1, b.box.y1);
        EXPECT_EQ(a.score, b.score);
      }
    }
  }
}

TEST_F(CoordinatorTest, DeadWorkerWorkIsRedispatched) {
  fault::FaultProfile profile;
  profile.name = "crash-test";
  profile.prob(fault::Site::kWorkerCrash) = 1.0;
  fault::FaultInjector faults(profile, 17);

  CoordinatorOptions options = BaseOptions(3);
  options.faults = &faults;
  options.chunk_size = 1;
  Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Start().ok());

  std::vector<queries::QueryInstance> batch = SampleBatch(queries::QueryId::kQ1, 6);
  DistBatchStats stats;
  auto outcomes = coordinator.ExecuteBatch(batch, systems::OutputMode::kWrite,
                                           "", &stats);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  for (const DistInstanceOutcome& outcome : *outcomes) {
    EXPECT_EQ(outcome.state, DistInstanceOutcome::kSucceeded) << outcome.error;
  }
  // With p=1.0 every worker but the guarded survivor dies.
  EXPECT_GE(stats.workers_lost, 1);
  EXPECT_GE(stats.chunks_redispatched, 1);
  EXPECT_EQ(coordinator.live_workers(), 1);
}

TEST_F(CoordinatorTest, RpcSendFaultsAreRetried) {
  fault::FaultProfile profile;
  profile.name = "sendfault-test";
  profile.prob(fault::Site::kRpcSend) = 0.5;
  fault::FaultInjector faults(profile, 23);

  CoordinatorOptions options = BaseOptions(2);
  options.faults = &faults;
  options.chunk_size = 1;
  options.rpc_retry.max_attempts = 12;
  options.rpc_retry.deadline = std::chrono::microseconds(0);  // Attempts-only.
  Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Start().ok());

  std::vector<queries::QueryInstance> batch = SampleBatch(queries::QueryId::kQ1, 8);
  DistBatchStats stats;
  auto outcomes = coordinator.ExecuteBatch(batch, systems::OutputMode::kWrite,
                                           "", &stats);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  for (const DistInstanceOutcome& outcome : *outcomes) {
    EXPECT_EQ(outcome.state, DistInstanceOutcome::kSucceeded) << outcome.error;
  }
  EXPECT_GT(stats.rpc_retries, 0);
  EXPECT_GT(faults.injected(fault::Site::kRpcSend), 0);
}

TEST_F(CoordinatorTest, StressManySmallChunks) {
  // TSan target: three dispatch threads, per-instance chunks, shared queue
  // and merge path under contention.
  CoordinatorOptions options = BaseOptions(3);
  options.chunk_size = 1;
  Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Start().ok());

  std::vector<queries::QueryInstance> batch = SampleBatch(queries::QueryId::kQ1, 12);
  DistBatchStats stats;
  auto outcomes = coordinator.ExecuteBatch(batch, systems::OutputMode::kWrite,
                                           "", &stats);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  for (const DistInstanceOutcome& outcome : *outcomes) {
    EXPECT_EQ(outcome.state, DistInstanceOutcome::kSucceeded) << outcome.error;
  }
  EXPECT_GE(stats.chunks_dispatched, 12);
}

// --- Dispatch arithmetic ---

TEST(CoordinatorInternalTest, NonNegativeModFoldsNegativeIndices) {
  // C++ % keeps the dividend's sign: -1 % 3 == -1, which previously walked
  // off the front of the per-worker share vector.
  EXPECT_EQ(internal::NonNegativeMod(-1, 3), 2);
  EXPECT_EQ(internal::NonNegativeMod(-3, 3), 0);
  EXPECT_EQ(internal::NonNegativeMod(-4, 3), 2);
  EXPECT_EQ(internal::NonNegativeMod(0, 3), 0);
  EXPECT_EQ(internal::NonNegativeMod(7, 3), 1);
  EXPECT_EQ(internal::NonNegativeMod(5, 0), 0);  // Degenerate fleet.
}

TEST(CoordinatorInternalTest, StragglerChunkAvoidsTheWorkerItFled) {
  // A re-dispatched straggler chunk must not be taken back by the very
  // worker still busy with the old request...
  EXPECT_FALSE(internal::MayTakeChunk(/*avoid=*/1, /*worker=*/1,
                                      /*other_live_workers=*/1));
  // ...any other worker may take it...
  EXPECT_TRUE(internal::MayTakeChunk(1, 0, 1));
  // ...and self-steal is allowed as a last resort, when nobody else lives.
  EXPECT_TRUE(internal::MayTakeChunk(1, 1, 0));
  // Untagged chunks are eligible everywhere.
  EXPECT_TRUE(internal::MayTakeChunk(-1, 0, 1));
  EXPECT_TRUE(internal::MayTakeChunk(-1, 1, 0));
}

TEST_F(CoordinatorTest, NegativeVideoIndexDispatchesWithoutCorruption) {
  // Regression: a negative (unset) video_index or pano_group used to index
  // the share vector at -1 during partitioning. The batch must dispatch
  // cleanly; the invalid instances fail gracefully on the worker.
  std::vector<queries::QueryInstance> batch = SampleBatch(queries::QueryId::kQ1, 3);
  queries::QueryInstance bad = batch[0];
  bad.video_index = -1;
  batch.push_back(bad);
  queries::QueryInstance pano = batch[1];
  pano.id = queries::QueryId::kQ9;
  pano.pano_group = -2;
  batch.push_back(pano);

  Coordinator coordinator(BaseOptions(2));
  ASSERT_TRUE(coordinator.Start().ok());
  DistBatchStats stats;
  auto outcomes = coordinator.ExecuteBatch(batch, systems::OutputMode::kWrite,
                                           "", &stats);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), batch.size());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*outcomes)[i].state, DistInstanceOutcome::kSucceeded)
        << (*outcomes)[i].error;
  }
  EXPECT_NE((*outcomes)[3].state, DistInstanceOutcome::kSucceeded);
  EXPECT_NE((*outcomes)[4].state, DistInstanceOutcome::kSucceeded);
}

TEST_F(CoordinatorTest, StragglerRedispatchCompletesOnAnotherWorker) {
  // A 1ms straggler deadline fires on effectively every chunk. The fled
  // worker must not re-take its own chunk (the avoid tag), so every
  // re-dispatch lands on the other worker — and the batch still completes
  // exactly once per instance because merge keeps the first result.
  CoordinatorOptions options = BaseOptions(2);
  options.chunk_size = 1;
  options.call_timeout = milliseconds(1);
  Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Start().ok());

  std::vector<queries::QueryInstance> batch = SampleBatch(queries::QueryId::kQ1, 3);
  DistBatchStats stats;
  auto outcomes = coordinator.ExecuteBatch(batch, systems::OutputMode::kWrite,
                                           "", &stats);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), batch.size());
  for (const DistInstanceOutcome& outcome : *outcomes) {
    EXPECT_EQ(outcome.state, DistInstanceOutcome::kSucceeded) << outcome.error;
  }
  EXPECT_GE(stats.straggler_redispatches, 1);
  EXPECT_GE(stats.in_flight_peak, 1);
  EXPECT_EQ(coordinator.live_workers(), 2);
}

// --- Storage staging ---

TEST_F(CoordinatorTest, StagedSetupLoadsFromStoreWithoutRegenerating) {
  storage::StoreOptions store_options;
  store_options.root = (std::filesystem::temp_directory_path() /
                        ("vr-dist-stage-" + std::to_string(::getpid())))
                           .string();
  std::filesystem::remove_all(store_options.root);
  auto opened = storage::ShardedStore::Open(store_options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  storage::ShardedStore store = std::move(opened).value();
  ASSERT_TRUE(driver::SaveDatasetSharded(*dataset_, store).ok());
  {
    storage::VssOptions vss_options;
    vss_options.store = &store;
    auto vss = storage::VideoStorageService::Open(vss_options);
    ASSERT_TRUE(vss.ok()) << vss.status().ToString();
    ASSERT_TRUE(driver::IngestDatasetVss(*dataset_, **vss).ok());
  }

  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  metrics::Counter& stagings =
      registry.GetCounter("vr_dist_dataset_stagings_total", "");
  metrics::Counter& regenerations =
      registry.GetCounter("vr_dist_dataset_regenerations_total", "");
  double stagings_before = stagings.Value();
  double regenerations_before = regenerations.Value();

  std::atomic<int> factory_calls{0};
  InProcessWorkerConfig harness;
  harness.factory_calls = &factory_calls;
  harness.staged_loader = true;
  InProcessWorker worker(harness);
  auto connected = RpcConnection::ConnectUnix(worker.path(), milliseconds(5000));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  RpcClient client(std::move(connected).value());
  ASSERT_TRUE(client.Handshake(milliseconds(2000)).ok());

  WorkerSetup setup;
  setup.config = config_;
  setup.engine = "PipelineEngine";
  setup.store_root = store_options.root;
  auto setup_response =
      client.Call(MethodId::kSetup, EncodeWorkerSetup(setup),
                  milliseconds(120000));
  ASSERT_TRUE(setup_response.ok()) << setup_response.status().ToString();

  // The acceptance property: zero worker-side dataset regenerations.
  EXPECT_EQ(factory_calls.load(), 0);
  EXPECT_EQ(stagings.Value() - stagings_before, 1.0);
  EXPECT_EQ(regenerations.Value() - regenerations_before, 0.0);

  // The staged worker's results stay byte-identical to direct execution
  // against the locally generated dataset.
  std::vector<queries::QueryInstance> batch = SampleBatch(queries::QueryId::kQ1, 1);
  ExecuteRangeRequest request;
  request.mode = systems::OutputMode::kWrite;
  RangeItem item;
  item.index = 0;
  item.instance = batch[0];
  request.items.push_back(item);
  auto response = client.Call(MethodId::kExecuteRange,
                              EncodeExecuteRequest(request), milliseconds(120000));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto results = DecodeExecuteResponse(*response);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 1u);
  ASSERT_EQ((*results)[0].outcome, InstanceResult::kSucceeded)
      << (*results)[0].error;

  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);
  auto direct = engine->Execute(batch[0], *dataset_,
                                systems::OutputMode::kWrite, "");
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  video::container::Container got, want;
  got.video = (*results)[0].output.video;
  want.video = direct->video;
  EXPECT_EQ(video::container::Mux(got), video::container::Mux(want));
  std::filesystem::remove_all(store_options.root);
}

TEST_F(CoordinatorTest, StagedSetupWithoutLoaderIsFailedPrecondition) {
  // A staged Setup against a worker with no dataset loader must refuse
  // loudly, never silently fall back to regeneration.
  InProcessWorker worker;  // Harness default: factory only, no loader.
  auto connected = RpcConnection::ConnectUnix(worker.path(), milliseconds(5000));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  RpcClient client(std::move(connected).value());
  ASSERT_TRUE(client.Handshake(milliseconds(2000)).ok());
  WorkerSetup setup;
  setup.config = config_;
  setup.store_root = "/nonexistent/store/root";
  auto response = client.Call(MethodId::kSetup, EncodeWorkerSetup(setup),
                              milliseconds(10000));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
}

// --- Semantic-cache shipping ---

TEST_F(CoordinatorTest, PreSeedShipsLocalCacheEntriesToWorkers) {
  // Materialize detections locally, with the cache attached.
  queries::SemanticCache cache;
  std::vector<queries::QueryInstance> batch =
      SampleBatch(queries::QueryId::kQ2c, 2, /*seed=*/9);
  systems::EngineOptions engine_options;
  engine_options.semantic_cache = &cache;
  auto engine = systems::MakePipelineEngine(engine_options);
  std::vector<systems::QueryOutput> direct;
  for (const queries::QueryInstance& instance : batch) {
    auto output = engine->Execute(instance, *dataset_,
                                  systems::OutputMode::kWrite, "");
    ASSERT_TRUE(output.ok()) << output.status().ToString();
    direct.push_back(std::move(output).value());
  }
  ASSERT_GT(cache.stats().entries, 0);

  // A coordinator pointed at the same cache ships its entries to every
  // worker before dispatch; results stay byte-identical (the cache holds
  // exactly what the workers would have computed).
  CoordinatorOptions options = BaseOptions(2);
  options.semantic_cache = &cache;
  Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Start().ok());
  DistBatchStats stats;
  auto outcomes = coordinator.ExecuteBatch(batch, systems::OutputMode::kWrite,
                                           "", &stats);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), batch.size());
  EXPECT_GT(stats.cache_entries_shipped, 0);
  EXPECT_GT(stats.cache_bytes_shipped, 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    const DistInstanceOutcome& outcome = (*outcomes)[i];
    ASSERT_EQ(outcome.state, DistInstanceOutcome::kSucceeded) << outcome.error;
    video::container::Container got, want;
    got.video = outcome.output.video;
    want.video = direct[i].video;
    EXPECT_EQ(video::container::Mux(got), video::container::Mux(want))
        << "instance " << i;
  }
}

TEST_F(CoordinatorTest, LostWorkersRespawnAndWarmFromSurvivorCache) {
  fault::FaultProfile profile;
  profile.name = "heal-test";
  profile.prob(fault::Site::kWorkerCrash) = 1.0;
  fault::FaultInjector faults(profile, 17);

  CoordinatorOptions options = BaseOptions(3);
  options.faults = &faults;
  options.chunk_size = 1;
  Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Start().ok());

  // Batch 1 kills every worker but the guarded survivor; its Q2c work
  // populates the survivor's semantic cache.
  std::vector<queries::QueryInstance> first =
      SampleBatch(queries::QueryId::kQ2c, 3, /*seed=*/9);
  DistBatchStats stats1;
  auto outcomes1 = coordinator.ExecuteBatch(first, systems::OutputMode::kWrite,
                                            "", &stats1);
  ASSERT_TRUE(outcomes1.ok()) << outcomes1.status().ToString();
  EXPECT_GE(stats1.workers_lost, 1);
  ASSERT_EQ(coordinator.live_workers(), 1);

  // Batch 2 heals the fleet first: lost slots respawn and each replacement
  // is warmed from the survivor's exported cache before dispatch.
  std::vector<queries::QueryInstance> second =
      SampleBatch(queries::QueryId::kQ1, 3);
  DistBatchStats stats2;
  auto outcomes2 = coordinator.ExecuteBatch(second, systems::OutputMode::kWrite,
                                            "", &stats2);
  ASSERT_TRUE(outcomes2.ok()) << outcomes2.status().ToString();
  for (const DistInstanceOutcome& outcome : *outcomes2) {
    EXPECT_EQ(outcome.state, DistInstanceOutcome::kSucceeded) << outcome.error;
  }
  EXPECT_GE(stats2.workers_respawned, 1);
  EXPECT_GT(stats2.cache_entries_shipped, 0);
  EXPECT_GT(stats2.cache_bytes_shipped, 0);
}

// --- Driver integration ---

TEST_F(CoordinatorTest, DriverDistributedBatchMatchesAndValidates) {
  driver::VcdOptions vcd_options;
  vcd_options.workers = 2;
  vcd_options.validate = true;
  vcd_options.seed = 0x5EED;
  driver::VisualCityDriver vcd(*dataset_, vcd_options);

  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);
  auto result = vcd.RunQueryBatch(*engine, queries::QueryId::kQ1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->workers, 2);
  EXPECT_EQ(result->succeeded, result->instances);
  EXPECT_EQ(result->failed, 0);
  EXPECT_GT(result->validation.checked, 0);
  EXPECT_EQ(result->validation.passed, result->validation.checked);
  EXPECT_GT(result->worker_busy_seconds, 0.0);

  // Distributed online execution is rejected, not silently serialised.
  driver::VcdOptions online = vcd_options;
  online.execution_mode = systems::ExecutionMode::kOnline;
  driver::VisualCityDriver online_vcd(*dataset_, online);
  auto rejected = online_vcd.RunQueryBatch(*engine, queries::QueryId::kQ1);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CoordinatorTest, DriverStagedDistributedBatchValidates) {
  // --workers composed with --storage: the driver stages the dataset into
  // the shared store and the worker processes attach to it instead of
  // regenerating; results still validate against the reference.
  storage::StoreOptions store_options;
  store_options.root = (std::filesystem::temp_directory_path() /
                        ("vr-dist-vcd-stage-" + std::to_string(::getpid())))
                           .string();
  std::filesystem::remove_all(store_options.root);
  auto opened = storage::ShardedStore::Open(store_options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  storage::ShardedStore store = std::move(opened).value();
  storage::VssOptions vss_options;
  vss_options.store = &store;
  auto vss = storage::VideoStorageService::Open(vss_options);
  ASSERT_TRUE(vss.ok()) << vss.status().ToString();

  driver::VcdOptions vcd_options;
  vcd_options.workers = 2;
  vcd_options.validate = true;
  vcd_options.storage = vss->get();
  driver::VisualCityDriver vcd(*dataset_, vcd_options);

  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);
  auto result = vcd.RunQueryBatch(*engine, queries::QueryId::kQ1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->workers, 2);
  EXPECT_EQ(result->succeeded, result->instances);
  EXPECT_EQ(result->failed, 0);
  EXPECT_GT(result->validation.checked, 0);
  EXPECT_EQ(result->validation.passed, result->validation.checked);
  // The driver staged the dataset manifest into the shared store.
  EXPECT_TRUE(store.Get("dataset.vrds").ok());
  std::filesystem::remove_all(store_options.root);
}

TEST_F(CoordinatorTest, FaultedDriverRunCompletesWithValidResults) {
  // The acceptance scenario: a cluster-profile run that kills workers
  // mid-batch still completes with validated results via re-dispatch.
  auto profile = fault::ProfileByName("cluster");
  ASSERT_TRUE(profile.ok());
  fault::FaultInjector faults(*profile, 0x5EED);

  driver::VcdOptions vcd_options;
  vcd_options.workers = 3;
  vcd_options.validate = true;
  vcd_options.faults = &faults;
  driver::VisualCityDriver vcd(*dataset_, vcd_options);

  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);
  auto result = vcd.RunQueryBatch(*engine, queries::QueryId::kQ1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->succeeded, result->instances);
  EXPECT_GT(result->validation.checked, 0);
  EXPECT_EQ(result->validation.passed, result->validation.checked);
}

}  // namespace
}  // namespace visualroad::dist
