#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "driver/datasets.h"
#include "queries/reference.h"
#include "video/image_ops.h"
#include "video/metrics.h"

namespace visualroad::queries {
namespace {

using video::Video;

/// Shared fixture: one small generated dataset for the whole binary.
class QueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::CityConfig config;
    config.scale_factor = 1;
    config.width = 96;
    config.height = 54;
    config.duration_seconds = 1.0;
    config.fps = 15;
    config.seed = 21;
    auto dataset = driver::PrepareDataset(config);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new sim::Dataset(std::move(dataset).value());
    auto decoded = video::codec::Decode(
        dataset_->TrafficAssets()[0]->container.video);
    ASSERT_TRUE(decoded.ok());
    input_ = new Video(std::move(decoded).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete input_;
    dataset_ = nullptr;
    input_ = nullptr;
  }

  ReferenceContext Context() const {
    ReferenceContext context;
    context.dataset = dataset_;
    return context;
  }

  static sim::Dataset* dataset_;
  static Video* input_;
};

sim::Dataset* QueriesTest::dataset_ = nullptr;
Video* QueriesTest::input_ = nullptr;

// --- Metadata ---

TEST(QueryMetaTest, NamesAndOrder) {
  EXPECT_STREQ(QueryName(QueryId::kQ1), "Q1");
  EXPECT_STREQ(QueryName(QueryId::kQ2c), "Q2(c)");
  EXPECT_STREQ(QueryName(QueryId::kQ10), "Q10");
  EXPECT_EQ(AllQueries().front(), QueryId::kQ1);
  EXPECT_EQ(AllQueries().back(), QueryId::kQ10);
  EXPECT_EQ(AllQueries().size(), static_cast<size_t>(kQueryCount));
}

TEST(QueryMetaTest, MicrobenchmarkClassification) {
  EXPECT_TRUE(IsMicrobenchmark(QueryId::kQ1));
  EXPECT_TRUE(IsMicrobenchmark(QueryId::kQ6b));
  EXPECT_FALSE(IsMicrobenchmark(QueryId::kQ7));
  EXPECT_FALSE(IsMicrobenchmark(QueryId::kQ9));
}

TEST(QueryMetaTest, ValidationKinds) {
  EXPECT_EQ(ValidationFor(QueryId::kQ1), ValidationKind::kFrame);
  EXPECT_EQ(ValidationFor(QueryId::kQ2c), ValidationKind::kSemantic);
  EXPECT_EQ(ValidationFor(QueryId::kQ2d), ValidationKind::kSemantic);
  EXPECT_EQ(ValidationFor(QueryId::kQ9), ValidationKind::kFrame);
  EXPECT_EQ(ValidationFor(QueryId::kQ8), ValidationKind::kNone);
}

// --- Parameter sampling (Table 3 domains) ---

class SamplerDomains : public QueriesTest,
                       public ::testing::WithParamInterface<uint64_t> {};

TEST_P(SamplerDomains, AllQueriesRespectDomains) {
  Pcg32 rng = SubStream(GetParam(), "sampler-test");
  for (QueryId id : AllQueries()) {
    auto instance = SampleQueryInstance(id, *dataset_, rng);
    ASSERT_TRUE(instance.ok()) << QueryName(id);
    const QueryInstance& q = *instance;
    int rx = dataset_->config.width, ry = dataset_->config.height;
    switch (id) {
      case QueryId::kQ1:
        EXPECT_GE(q.q1_rect.x0, 0);
        EXPECT_LT(q.q1_rect.x0, q.q1_rect.x1);
        EXPECT_LE(q.q1_rect.x1, rx);
        EXPECT_GE(q.q1_rect.y0, 0);
        EXPECT_LT(q.q1_rect.y0, q.q1_rect.y1);
        EXPECT_LE(q.q1_rect.y1, ry);
        EXPECT_GE(q.q1_t1, 0.0);
        EXPECT_LE(q.q1_t1, q.q1_t2);
        EXPECT_LE(q.q1_t2, dataset_->config.duration_seconds);
        break;
      case QueryId::kQ2b:
        EXPECT_GE(q.q2b_d, 3);
        EXPECT_LE(q.q2b_d, 21);
        EXPECT_EQ(q.q2b_d % 2, 1);
        break;
      case QueryId::kQ2d:
        EXPECT_GE(q.q2d_m, 2);
        EXPECT_LE(q.q2d_m, 60);
        EXPECT_GT(q.q2d_epsilon, 0.0);
        EXPECT_LT(q.q2d_epsilon, 1.0);
        break;
      case QueryId::kQ3: {
        EXPECT_GT(q.q3_dx, 0);
        EXPECT_GT(q.q3_dy, 0);
        EXPECT_FALSE(q.q3_bitrates.empty());
        for (int64_t bitrate : q.q3_bitrates) {
          EXPECT_GE(bitrate, int64_t{1} << 16);
          EXPECT_LE(bitrate, int64_t{1} << 22);
        }
        break;
      }
      case QueryId::kQ4:
      case QueryId::kQ5: {
        // Power of two in [2, 32].
        EXPECT_EQ(q.q45_alpha & (q.q45_alpha - 1), 0);
        EXPECT_GE(q.q45_alpha, 2);
        EXPECT_LE(q.q45_alpha, 32);
        EXPECT_EQ(q.q45_beta & (q.q45_beta - 1), 0);
        break;
      }
      case QueryId::kQ8:
        EXPECT_EQ(q.q8_plate.size(), 6u);
        break;
      case QueryId::kQ10:
        for (int64_t bitrate : q.q10_bitrates) {
          EXPECT_TRUE(bitrate == (int64_t{1} << 21) || bitrate == (int64_t{1} << 17));
        }
        EXPECT_GT(q.q10_client_width, 0);
        break;
      default:
        break;
    }
    if (id != QueryId::kQ9 && id != QueryId::kQ10) {
      EXPECT_GE(q.video_index, 0);
      EXPECT_LT(q.video_index, static_cast<int>(dataset_->TrafficAssets().size()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerDomains,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

TEST_F(QueriesTest, SamplerIsDeterministic) {
  Pcg32 a = SubStream(7, "x"), b = SubStream(7, "x");
  auto ia = SampleQueryInstance(QueryId::kQ1, *dataset_, a);
  auto ib = SampleQueryInstance(QueryId::kQ1, *dataset_, b);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  EXPECT_EQ(ia->q1_rect, ib->q1_rect);
  EXPECT_DOUBLE_EQ(ia->q1_t1, ib->q1_t1);
}

TEST_F(QueriesTest, SamplerCapsUpsampleExponent) {
  SamplerOptions options;
  options.max_upsample_exponent = 2;
  Pcg32 rng = SubStream(9, "cap");
  for (int i = 0; i < 50; ++i) {
    auto instance = SampleQueryInstance(QueryId::kQ4, *dataset_, rng, options);
    ASSERT_TRUE(instance.ok());
    EXPECT_LE(instance->q45_alpha, 4);
    EXPECT_LE(instance->q45_beta, 4);
  }
}

TEST_F(QueriesTest, Q8SamplesSightedPlateWhenAvailable) {
  // Collect every plate the dataset ever sighted.
  std::set<std::string> sighted;
  std::set<std::string> all_plates;
  for (const sim::VideoAsset* asset : dataset_->TrafficAssets()) {
    for (const sim::FrameGroundTruth& frame : asset->ground_truth) {
      for (const sim::GroundTruthBox& box : frame.boxes) {
        if (!box.plate.empty()) all_plates.insert(box.plate);
        if (box.plate_visible) sighted.insert(box.plate);
      }
    }
  }
  Pcg32 rng = SubStream(13, "plates");
  auto instance = SampleQueryInstance(QueryId::kQ8, *dataset_, rng);
  ASSERT_TRUE(instance.ok());
  if (!sighted.empty()) {
    EXPECT_TRUE(sighted.count(instance->q8_plate)) << instance->q8_plate;
  } else if (!all_plates.empty()) {
    EXPECT_TRUE(all_plates.count(instance->q8_plate));
  }
}

// --- Query kernels ---

TEST_F(QueriesTest, Q1SelectCropsSpaceAndTime) {
  auto result = SelectQuery(*input_, {10, 10, 50, 40}, 0.2, 0.8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Width(), 40);
  EXPECT_EQ(result->Height(), 30);
  // [0.2, 0.8) s at 15 fps: frames 3..12 -> 9 or 10 frames.
  EXPECT_GE(result->FrameCount(), 9);
  EXPECT_LE(result->FrameCount(), 10);
  // Content must match a manual crop of the corresponding source frame.
  auto manual = video::Crop(input_->frames[3], {10, 10, 50, 40});
  ASSERT_TRUE(manual.ok());
  EXPECT_TRUE(result->frames[0].SameContentAs(*manual));
}

TEST_F(QueriesTest, Q1RejectsInvertedTime) {
  EXPECT_FALSE(SelectQuery(*input_, {0, 0, 8, 8}, 0.9, 0.1).ok());
}

TEST_F(QueriesTest, Q2aGrayscaleDropsChroma) {
  Video gray = GrayscaleQuery(*input_);
  ASSERT_EQ(gray.FrameCount(), input_->FrameCount());
  for (int f = 0; f < gray.FrameCount(); ++f) {
    const video::Frame& frame = gray.frames[static_cast<size_t>(f)];
    EXPECT_EQ(frame.U(10, 10), 128);
    EXPECT_EQ(frame.V(30, 20), 128);
    EXPECT_EQ(frame.Y(10, 10), input_->frames[static_cast<size_t>(f)].Y(10, 10));
  }
}

TEST_F(QueriesTest, Q2bBlurSmoothsFrames) {
  auto blurred = BlurQuery(*input_, 9);
  ASSERT_TRUE(blurred.ok());
  // Blur reduces luma variance.
  auto variance = [](const video::Frame& frame) {
    double sum = 0, sq = 0;
    for (uint8_t v : frame.y_plane()) {
      sum += v;
      sq += static_cast<double>(v) * v;
    }
    double n = static_cast<double>(frame.y_plane().size());
    double mean = sum / n;
    return sq / n - mean * mean;
  };
  EXPECT_LT(variance(blurred->frames[0]), variance(input_->frames[0]));
}

TEST_F(QueriesTest, Q2cBoxesMatchDetections) {
  vision::MiniYolo detector;
  const sim::VideoAsset* asset = dataset_->TrafficAssets()[0];
  auto result =
      BoxesQuery(*input_, asset->ground_truth, sim::ObjectClass::kVehicle, detector);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->video.FrameCount(), input_->FrameCount());
  ASSERT_EQ(result->detections.size(), static_cast<size_t>(input_->FrameCount()));
  video::Yuv color = vision::ClassColor(sim::ObjectClass::kVehicle);
  for (int f = 0; f < result->video.FrameCount(); ++f) {
    for (const vision::Detection& d : result->detections[static_cast<size_t>(f)]) {
      EXPECT_EQ(d.object_class, sim::ObjectClass::kVehicle);
      if (!d.box.Empty()) {
        int cx = (d.box.x0 + d.box.x1) / 2, cy = (d.box.y0 + d.box.y1) / 2;
        EXPECT_EQ(result->video.frames[static_cast<size_t>(f)].Y(cx, cy), color.y);
      }
    }
  }
}

TEST_F(QueriesTest, Q6aOverlayKeepsBaseWhereOmega) {
  vision::MiniYolo detector;
  const sim::VideoAsset* asset = dataset_->TrafficAssets()[0];
  auto boxes =
      BoxesQuery(*input_, asset->ground_truth, sim::ObjectClass::kVehicle, detector);
  ASSERT_TRUE(boxes.ok());
  auto merged = UnionBoxesQuery(*input_, boxes->video);
  ASSERT_TRUE(merged.ok());
  // Find a frame/pixel where the box video is omega: output == input there.
  const video::Frame& box_frame = boxes->video.frames[0];
  const video::Frame& in_frame = input_->frames[0];
  const video::Frame& out_frame = merged->frames[0];
  for (int y = 0; y < box_frame.height(); y += 7) {
    for (int x = 0; x < box_frame.width(); x += 7) {
      video::Yuv box_pixel{box_frame.Y(x, y), box_frame.U(x, y), box_frame.V(x, y)};
      if (video::IsOmega(box_pixel)) {
        EXPECT_EQ(out_frame.Y(x, y), in_frame.Y(x, y));
      } else {
        EXPECT_EQ(out_frame.Y(x, y), box_pixel.y);
      }
    }
  }
}

TEST_F(QueriesTest, Q6bCaptionsAppearAtCueTimes) {
  video::WebVttDocument captions;
  video::WebVttCue cue;
  cue.start_seconds = 0.0;
  cue.end_seconds = 0.4;
  cue.line_percent = 50;
  cue.position_percent = 50;
  cue.text = "TEST";
  captions.cues.push_back(cue);
  auto merged = UnionCaptionsQuery(*input_, captions);
  ASSERT_TRUE(merged.ok());
  // Frame 0 (t=0) differs from input; the last frame (t>0.4) matches it.
  EXPECT_FALSE(merged->frames[0].SameContentAs(input_->frames[0]));
  EXPECT_TRUE(merged->frames.back().SameContentAs(input_->frames.back()));
}

TEST_F(QueriesTest, ReferenceQ5HalvesResolution) {
  QueryInstance instance;
  instance.id = QueryId::kQ5;
  instance.video_index = 0;
  instance.q45_alpha = 2;
  instance.q45_beta = 2;
  auto result = RunReference(Context(), instance, *input_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->video.Width(), input_->Width() / 2);
  EXPECT_EQ(result->video.Height(), input_->Height() / 2);
}

TEST_F(QueriesTest, ReferenceQ4Doubles) {
  QueryInstance instance;
  instance.id = QueryId::kQ4;
  instance.video_index = 0;
  instance.q45_alpha = 2;
  instance.q45_beta = 2;
  auto result = RunReference(Context(), instance, *input_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->video.Width(), input_->Width() * 2);
}

TEST_F(QueriesTest, ReferenceQ3PreservesResolutionApproximately) {
  QueryInstance instance;
  instance.id = QueryId::kQ3;
  instance.video_index = 0;
  instance.q3_dx = input_->Width() / 2;
  instance.q3_dy = input_->Height() / 2;
  instance.q3_bitrates = {int64_t{1} << 20, int64_t{1} << 18};
  auto result = RunReference(Context(), instance, *input_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->video.Width(), input_->Width());
  EXPECT_EQ(result->video.Height(), input_->Height());
  auto psnr = video::MeanPsnr(*input_, result->video);
  ASSERT_TRUE(psnr.ok());
  EXPECT_GT(*psnr, 25.0);
}

TEST_F(QueriesTest, ReferenceQ7ComposesWithoutError) {
  QueryInstance instance;
  instance.id = QueryId::kQ7;
  instance.video_index = 0;
  instance.object_class = sim::ObjectClass::kVehicle;
  instance.q2d_m = 5;
  instance.q2d_epsilon = 0.2;
  auto result = RunReference(Context(), instance, *input_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->video.FrameCount(), input_->FrameCount());
}

TEST_F(QueriesTest, Q9StitchHasPanoramaShape) {
  auto stitched = StitchQuery(Context(), 0);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->Width(), PanoramaWidth(dataset_->config));
  EXPECT_EQ(stitched->Height(), PanoramaHeight(dataset_->config));
  EXPECT_EQ(stitched->FrameCount(), 15);
}

TEST_F(QueriesTest, Q9MissingGroupFails) {
  EXPECT_FALSE(StitchQuery(Context(), 99).ok());
}

TEST_F(QueriesTest, Q10ProducesClientResolution) {
  auto stitched = StitchQuery(Context(), 0);
  ASSERT_TRUE(stitched.ok());
  std::array<int64_t, 9> bitrates;
  for (size_t i = 0; i < 9; ++i) {
    bitrates[i] = i % 3 == 0 ? (int64_t{1} << 21) : (int64_t{1} << 17);
  }
  auto result = TileStreamQuery(*stitched, bitrates, 96, 48,
                                video::codec::Profile::kH264Like);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Width(), 96);
  EXPECT_EQ(result->Height(), 48);
}

TEST_F(QueriesTest, Q8TrackingSegmentsAreOrderedAndConcatenated) {
  // Pick the most-sighted plate so the query has content.
  std::string plate;
  int best = 0;
  std::map<std::string, int> counts;
  for (const sim::VideoAsset* asset : dataset_->TrafficAssets()) {
    for (const sim::FrameGroundTruth& frame : asset->ground_truth) {
      for (const sim::GroundTruthBox& box : frame.boxes) {
        if (box.plate_visible && ++counts[box.plate] > best) {
          best = counts[box.plate];
          plate = box.plate;
        }
      }
    }
  }
  if (plate.empty()) {
    GTEST_SKIP() << "no plate sightings in this tiny dataset";
  }
  std::vector<TrackingSegment> segments;
  auto result = TrackingQuery(Context(), plate, &segments);
  ASSERT_TRUE(result.ok());
  int64_t total_frames = 0;
  for (const TrackingSegment& segment : segments) {
    EXPECT_LE(segment.first_frame, segment.last_frame);
    total_frames += segment.last_frame - segment.first_frame + 1;
  }
  EXPECT_EQ(result->FrameCount(), total_frames);
}

TEST_F(QueriesTest, Q8UnknownPlateYieldsEmptyVideo) {
  auto result = TrackingQuery(Context(), "??????", nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->FrameCount(), 0);
}

/// Builds a synthetic one-video dataset in which a known plate is painted
/// onto a "vehicle" region for a known frame range — a deterministic Q8
/// scenario independent of simulation randomness.
sim::Dataset MakeSyntheticTrackingDataset(const std::string& plate,
                                          int plate_first, int plate_last) {
  const int w = 160, h = 90, frames = 12;
  video::Video raw;
  raw.fps = 15;
  sim::VideoAsset asset;
  asset.camera.kind = sim::CameraKind::kTraffic;
  for (int f = 0; f < frames; ++f) {
    video::Frame frame(w, h);
    frame.Fill(90, 120, 136);
    sim::FrameGroundTruth truth;
    // A large, fully visible "vehicle" box every frame.
    sim::GroundTruthBox box;
    box.entity_id = 1001;
    box.object_class = sim::ObjectClass::kVehicle;
    box.box = {30, 20, 130, 80};
    box.visible_fraction = 1.0;
    box.plate = plate;
    if (f >= plate_first && f <= plate_last) {
      // Paint the plate interior into the vehicle box (the canonical grid).
      std::vector<float> tmpl = vision::RenderPlateTemplate(plate, 76, 18);
      for (int y = 0; y < 18; ++y) {
        for (int x = 0; x < 76; ++x) {
          bool dark = tmpl[static_cast<size_t>(y) * 76 + x] < 0.5f;
          frame.SetPixel(50 + x, 45 + y, dark ? 25 : 230, 128, 128);
        }
      }
      box.plate_visible = true;
      box.plate_box = {50, 45, 126, 63};
    }
    truth.boxes.push_back(box);
    asset.ground_truth.push_back(std::move(truth));
    raw.frames.push_back(std::move(frame));
  }
  video::codec::EncoderConfig codec;
  codec.qp = 8;  // Near-lossless so the painted plate survives.
  asset.container.video = *video::codec::Encode(raw, codec);

  sim::Dataset dataset;
  dataset.config.scale_factor = 1;
  dataset.config.width = w;
  dataset.config.height = h;
  dataset.config.fps = 15;
  dataset.assets.push_back(std::move(asset));
  return dataset;
}

TEST(TrackingDeterministicTest, FindsThePaintedSegment) {
  sim::Dataset dataset = MakeSyntheticTrackingDataset("KR7W2P", 3, 8);
  ReferenceContext context;
  context.dataset = &dataset;
  // This test exercises segment formation, not detector noise: make the
  // region proposals near-certain.
  context.detector_options.base_recall = 0.999;
  context.detector_options.box_jitter = 0.01;
  std::vector<TrackingSegment> segments;
  auto result = TrackingQuery(context, "KR7W2P", &segments);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(segments.size(), 1u);
  // The recogniser should find the plate within a frame of the painted
  // range (the detector's per-frame miss probability can clip an endpoint).
  EXPECT_NEAR(segments[0].first_frame, 3, 1);
  EXPECT_NEAR(segments[0].last_frame, 8, 1);
  EXPECT_EQ(result->FrameCount(),
            segments[0].last_frame - segments[0].first_frame + 1);
}

TEST(TrackingDeterministicTest, WrongPlateFindsNothing) {
  sim::Dataset dataset = MakeSyntheticTrackingDataset("KR7W2P", 3, 8);
  ReferenceContext context;
  context.dataset = &dataset;
  context.detector_options.base_recall = 0.999;
  context.detector_options.box_jitter = 0.01;
  std::vector<TrackingSegment> segments;
  auto result = TrackingQuery(context, "XX9QQ4", &segments);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(segments.empty());
  EXPECT_EQ(result->FrameCount(), 0);
}

}  // namespace
}  // namespace visualroad::queries
