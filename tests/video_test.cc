#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "video/color.h"
#include "video/frame.h"
#include "video/image_ops.h"
#include "video/metrics.h"
#include "video/webvtt.h"

namespace visualroad::video {
namespace {

Frame GradientFrame(int w, int h, int shift = 0) {
  Frame frame(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      frame.SetPixel(x, y, static_cast<uint8_t>((x * 2 + y + shift) & 0xFF),
                     static_cast<uint8_t>(96 + (x & 31)),
                     static_cast<uint8_t>(160 - (y & 31)));
    }
  }
  return frame;
}

// --- Frame ---

TEST(FrameTest, ConstructionInitialisesBlack) {
  Frame frame(16, 12);
  EXPECT_EQ(frame.width(), 16);
  EXPECT_EQ(frame.height(), 12);
  EXPECT_EQ(frame.Y(5, 5), 0);
  EXPECT_EQ(frame.U(5, 5), 128);
  EXPECT_EQ(frame.V(5, 5), 128);
}

TEST(FrameTest, OddDimensionsGetCeilingChroma) {
  Frame frame(15, 9);
  EXPECT_EQ(frame.chroma_width(), 8);
  EXPECT_EQ(frame.chroma_height(), 5);
  frame.SetPixel(14, 8, 200, 30, 40);  // Must not crash at the odd edge.
  EXPECT_EQ(frame.Y(14, 8), 200);
  EXPECT_EQ(frame.U(14, 8), 30);
}

TEST(FrameTest, ContentHashDetectsChanges) {
  Frame a = GradientFrame(32, 24);
  Frame b = a;
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  EXPECT_TRUE(a.SameContentAs(b));
  b.SetY(10, 10, static_cast<uint8_t>(b.Y(10, 10) + 1));
  EXPECT_NE(a.ContentHash(), b.ContentHash());
  EXPECT_FALSE(a.SameContentAs(b));
}

TEST(FrameTest, FillSetsAllPlanes) {
  Frame frame(8, 8);
  frame.Fill(10, 20, 30);
  EXPECT_EQ(frame.Y(7, 7), 10);
  EXPECT_EQ(frame.U(0, 0), 20);
  EXPECT_EQ(frame.V(3, 5), 30);
}

TEST(VideoTest, DurationFromFps) {
  Video v;
  v.fps = 10.0;
  v.frames.resize(25, Frame(4, 4));
  EXPECT_DOUBLE_EQ(v.DurationSeconds(), 2.5);
  EXPECT_EQ(v.Width(), 4);
}

// --- Color ---

TEST(ColorTest, PrimariesRoundTripWithinTolerance) {
  Rgb primaries[] = {{255, 0, 0}, {0, 255, 0},   {0, 0, 255},
                     {255, 255, 255}, {0, 0, 0}, {128, 64, 200}};
  for (const Rgb& rgb : primaries) {
    Rgb back = YuvToRgb(RgbToYuv(rgb));
    EXPECT_NEAR(back.r, rgb.r, 3);
    EXPECT_NEAR(back.g, rgb.g, 3);
    EXPECT_NEAR(back.b, rgb.b, 3);
  }
}

TEST(ColorTest, GrayHasNeutralChroma) {
  Yuv yuv = RgbToYuv({77, 77, 77});
  EXPECT_EQ(yuv.u, 128);
  EXPECT_EQ(yuv.v, 128);
  EXPECT_EQ(yuv.y, 77);
}

TEST(ColorTest, OmegaIsBlack) {
  Rgb rgb = YuvToRgb(kOmega);
  EXPECT_EQ(rgb.r, 0);
  EXPECT_EQ(rgb.g, 0);
  EXPECT_EQ(rgb.b, 0);
  EXPECT_TRUE(IsOmega(kOmega));
  EXPECT_FALSE(IsOmega({1, 128, 128}));
}

TEST(ColorTest, RgbImageFrameRoundTrip) {
  RgbImage image(16, 16);
  Pcg32 rng(1, 1);
  for (uint8_t& s : image.data) s = static_cast<uint8_t>(rng.NextBounded(256));
  Frame frame = RgbToFrame(image);
  RgbImage back = FrameToRgb(frame);
  // 4:2:0 chroma subsampling of per-pixel random noise loses substantial
  // chroma detail; the average error stays bounded well below gross
  // corruption levels.
  double error = 0;
  for (size_t i = 0; i < image.data.size(); ++i) {
    error += std::abs(static_cast<int>(image.data[i]) - back.data[i]);
  }
  EXPECT_LT(error / static_cast<double>(image.data.size()), 48.0);
}

TEST(ColorTest, SolidColorSurvivesFrameRoundTripExactly) {
  RgbImage image(8, 8);
  for (int i = 0; i < 64; ++i) {
    image.data[static_cast<size_t>(i) * 3] = 180;
    image.data[static_cast<size_t>(i) * 3 + 1] = 40;
    image.data[static_cast<size_t>(i) * 3 + 2] = 90;
  }
  RgbImage back = FrameToRgb(RgbToFrame(image));
  EXPECT_NEAR(back.data[0], 180, 3);
  EXPECT_NEAR(back.data[1], 40, 3);
  EXPECT_NEAR(back.data[2], 90, 3);
}

// --- Image ops ---

TEST(ImageOpsTest, CropExtractsRegion) {
  Frame frame = GradientFrame(32, 24);
  auto cropped = Crop(frame, {4, 6, 20, 18});
  ASSERT_TRUE(cropped.ok());
  EXPECT_EQ(cropped->width(), 16);
  EXPECT_EQ(cropped->height(), 12);
  EXPECT_EQ(cropped->Y(0, 0), frame.Y(4, 6));
  EXPECT_EQ(cropped->Y(15, 11), frame.Y(19, 17));
}

TEST(ImageOpsTest, CropClampsToFrame) {
  Frame frame = GradientFrame(16, 16);
  auto cropped = Crop(frame, {-10, -10, 100, 100});
  ASSERT_TRUE(cropped.ok());
  EXPECT_EQ(cropped->width(), 16);
  EXPECT_EQ(cropped->height(), 16);
}

TEST(ImageOpsTest, EmptyCropFails) {
  Frame frame = GradientFrame(16, 16);
  EXPECT_FALSE(Crop(frame, {20, 20, 30, 30}).ok());
  EXPECT_FALSE(Crop(frame, {5, 5, 5, 10}).ok());
}

TEST(ImageOpsTest, ResizeToSameSizeIsNearIdentity) {
  Frame frame = GradientFrame(24, 16);
  auto resized = BilinearResize(frame, 24, 16);
  ASSERT_TRUE(resized.ok());
  auto psnr = Psnr(frame, *resized);
  ASSERT_TRUE(psnr.ok());
  EXPECT_GT(*psnr, 50.0);
}

TEST(ImageOpsTest, UpsampleDoublesDimensions) {
  Frame frame = GradientFrame(20, 12);
  auto up = BilinearResize(frame, 40, 24);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->width(), 40);
  EXPECT_EQ(up->height(), 24);
}

TEST(ImageOpsTest, UpsampleOfConstantIsConstant) {
  Frame frame(10, 10);
  frame.Fill(99, 60, 70);
  auto up = BilinearResize(frame, 35, 27);
  ASSERT_TRUE(up.ok());
  for (int y = 0; y < 27; ++y) {
    for (int x = 0; x < 35; ++x) {
      EXPECT_EQ(up->Y(x, y), 99);
    }
  }
}

TEST(ImageOpsTest, DownsampleHalves) {
  Frame frame = GradientFrame(32, 32);
  auto down = Downsample(frame, 16, 16);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->width(), 16);
  EXPECT_EQ(down->Y(0, 0), frame.Y(0, 0));
  EXPECT_EQ(down->Y(8, 8), frame.Y(16, 16));
}

TEST(ImageOpsTest, DownsampleLargerThanSourceFails) {
  Frame frame = GradientFrame(8, 8);
  EXPECT_FALSE(Downsample(frame, 16, 8).ok());
}

TEST(ImageOpsTest, ResizeRejectsBadTargets) {
  Frame frame = GradientFrame(8, 8);
  EXPECT_FALSE(BilinearResize(frame, 0, 8).ok());
  EXPECT_FALSE(BilinearResize(frame, 8, -1).ok());
}

TEST(ImageOpsTest, GrayscaleZeroesChromaKeepsLuma) {
  Frame frame = GradientFrame(16, 16);
  Frame gray = Grayscale(frame);
  EXPECT_EQ(gray.Y(7, 9), frame.Y(7, 9));
  EXPECT_EQ(gray.U(7, 9), 128);
  EXPECT_EQ(gray.V(7, 9), 128);
}

TEST(ImageOpsTest, GaussianKernelSumsToOne) {
  for (int d : {3, 5, 9, 15}) {
    std::vector<double> kernel = GaussianKernel1d(d, 0.0);
    EXPECT_EQ(static_cast<int>(kernel.size()), d);
    double sum = 0;
    for (double k : kernel) sum += k;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Symmetric and peaked at the centre.
    EXPECT_NEAR(kernel.front(), kernel.back(), 1e-12);
    EXPECT_GT(kernel[static_cast<size_t>(d / 2)], kernel[0]);
  }
}

TEST(ImageOpsTest, BlurPreservesConstantRegions) {
  Frame frame(16, 16);
  frame.Fill(120, 100, 140);
  auto blurred = GaussianBlur(frame, 5);
  ASSERT_TRUE(blurred.ok());
  EXPECT_EQ(blurred->Y(8, 8), 120);
  EXPECT_EQ(blurred->U(8, 8), 100);
}

TEST(ImageOpsTest, BlurReducesVariance) {
  Frame frame = GradientFrame(32, 32);
  // Add a bright dot.
  frame.SetY(16, 16, 255);
  auto blurred = GaussianBlur(frame, 7);
  ASSERT_TRUE(blurred.ok());
  EXPECT_LT(blurred->Y(16, 16), 255);
}

TEST(ImageOpsTest, BlurRejectsEvenKernel) {
  Frame frame = GradientFrame(8, 8);
  EXPECT_FALSE(GaussianBlur(frame, 4).ok());
  EXPECT_FALSE(GaussianBlur(frame, 0).ok());
}

TEST(ImageOpsTest, PMapAppliesPerPixel) {
  Video input;
  input.fps = 10;
  input.frames.push_back(GradientFrame(8, 8));
  Video output = PMap(input, [](const Yuv& p) { return Yuv{p.y, 128, 128}; });
  EXPECT_EQ(output.frames[0].U(3, 3), 128);
  EXPECT_EQ(output.frames[0].Y(3, 3), input.frames[0].Y(3, 3));
}

TEST(ImageOpsTest, FMapAppliesPerFrame) {
  Video input;
  input.fps = 10;
  input.frames.push_back(GradientFrame(8, 8, 0));
  input.frames.push_back(GradientFrame(8, 8, 5));
  Video output = FMap(input, [](const Frame& f) { return Grayscale(f); });
  EXPECT_EQ(output.FrameCount(), 2);
  EXPECT_EQ(output.frames[1].U(0, 0), 128);
}

TEST(ImageOpsTest, JoinPRequiresMatchingResolutions) {
  Video a, b;
  a.frames.push_back(GradientFrame(8, 8));
  b.frames.push_back(GradientFrame(16, 8));
  EXPECT_FALSE(JoinP(a, b, OmegaCoalesce).ok());
}

TEST(ImageOpsTest, OmegaCoalescePrefersNonOmegaOverlay) {
  Yuv base{50, 90, 110}, overlay{200, 30, 40};
  EXPECT_EQ(OmegaCoalesce(base, overlay), overlay);
  EXPECT_EQ(OmegaCoalesce(base, kOmega), base);
}

TEST(ImageOpsTest, JoinPTruncatesToShorter) {
  Video a, b;
  a.fps = 10;
  for (int i = 0; i < 5; ++i) a.frames.push_back(GradientFrame(8, 8));
  for (int i = 0; i < 3; ++i) b.frames.push_back(GradientFrame(8, 8));
  auto joined = JoinP(a, b, OmegaCoalesce);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->FrameCount(), 3);
}

TEST(ImageOpsTest, MeanFrameAveragesExactly) {
  Frame a(4, 4), b(4, 4);
  a.Fill(100, 110, 120);
  b.Fill(200, 130, 140);
  auto mean = MeanFrame({&a, &b});
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ(mean->Y(2, 2), 150);
  EXPECT_EQ(mean->U(2, 2), 120);
}

TEST(ImageOpsTest, MeanFrameRejectsEmptyAndMismatched) {
  EXPECT_FALSE(MeanFrame({}).ok());
  Frame a(4, 4), b(8, 4);
  EXPECT_FALSE(MeanFrame({&a, &b}).ok());
}

TEST(ImageOpsTest, MaskEmitsOmegaForStaticPixels) {
  Frame frame(4, 4), background(4, 4);
  frame.Fill(100, 90, 80);
  background.Fill(100, 90, 80);
  auto masked = MaskAgainstBackground(frame, background, 0.2);
  ASSERT_TRUE(masked.ok());
  EXPECT_EQ(masked->Y(1, 1), kOmega.y);
  EXPECT_EQ(masked->U(1, 1), kOmega.u);
}

TEST(ImageOpsTest, MaskKeepsChangedPixels) {
  Frame frame(4, 4), background(4, 4);
  frame.Fill(200, 90, 80);
  background.Fill(100, 90, 80);
  auto masked = MaskAgainstBackground(frame, background, 0.2);
  ASSERT_TRUE(masked.ok());
  EXPECT_EQ(masked->Y(1, 1), 200);
  EXPECT_EQ(masked->U(1, 1), 90);
}

TEST(ImageOpsTest, MaskThresholdBoundary) {
  // |(pv - pb)/pv| = 0.5 exactly; with epsilon 0.5 the pixel is NOT static
  // (< comparison) so it is kept.
  Frame frame(2, 2), background(2, 2);
  frame.Fill(100, 128, 128);
  background.Fill(150, 128, 128);
  auto masked = MaskAgainstBackground(frame, background, 0.5);
  ASSERT_TRUE(masked.ok());
  EXPECT_EQ(masked->Y(0, 0), 100);
}

// --- Metrics ---

TEST(MetricsTest, IdenticalFramesInfinitePsnr) {
  Frame frame = GradientFrame(16, 16);
  auto psnr = Psnr(frame, frame);
  ASSERT_TRUE(psnr.ok());
  EXPECT_TRUE(std::isinf(*psnr));
}

TEST(MetricsTest, KnownMseGivesKnownPsnr) {
  Frame a(16, 16), b(16, 16);
  a.Fill(100, 128, 128);
  b.Fill(110, 128, 128);
  // Luma differs by 10 everywhere, chroma identical.
  auto mse = LumaMse(a, b);
  ASSERT_TRUE(mse.ok());
  EXPECT_DOUBLE_EQ(*mse, 100.0);
  auto psnr = Psnr(a, b);
  ASSERT_TRUE(psnr.ok());
  // Combined MSE = 100 * (256 / 384): luma samples dominate 2:1.
  double expected = 10.0 * std::log10(255.0 * 255.0 / (100.0 * 256.0 / 384.0));
  EXPECT_NEAR(*psnr, expected, 1e-9);
}

TEST(MetricsTest, MismatchedSizesRejected) {
  Frame a(8, 8), b(16, 8);
  EXPECT_FALSE(Psnr(a, b).ok());
  EXPECT_FALSE(LumaMse(a, b).ok());
}

TEST(MetricsTest, MeanPsnrCapsIdenticalFrames) {
  Video a, b;
  a.frames.push_back(GradientFrame(8, 8));
  b.frames.push_back(GradientFrame(8, 8));
  auto mean = MeanPsnr(a, b, 99.0);
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(*mean, 99.0);
}

TEST(MetricsTest, MeanPsnrRequiresEqualCounts) {
  Video a, b;
  a.frames.resize(2, Frame(4, 4));
  b.frames.resize(3, Frame(4, 4));
  EXPECT_FALSE(MeanPsnr(a, b).ok());
}

// --- WebVTT ---

TEST(WebVttTest, SerializeParseRoundTrip) {
  WebVttDocument document;
  WebVttCue cue;
  cue.start_seconds = 1.25;
  cue.end_seconds = 4.5;
  cue.line_percent = 80;
  cue.position_percent = 25;
  cue.text = "HELLO WORLD";
  document.cues.push_back(cue);
  cue.start_seconds = 10;
  cue.end_seconds = 12.125;
  cue.text = "SECOND CUE";
  document.cues.push_back(cue);

  auto parsed = ParseWebVtt(SerializeWebVtt(document));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->cues.size(), 2u);
  EXPECT_NEAR(parsed->cues[0].start_seconds, 1.25, 1e-3);
  EXPECT_NEAR(parsed->cues[0].end_seconds, 4.5, 1e-3);
  EXPECT_NEAR(parsed->cues[0].line_percent, 80, 1e-9);
  EXPECT_NEAR(parsed->cues[0].position_percent, 25, 1e-9);
  EXPECT_EQ(parsed->cues[0].text, "HELLO WORLD");
  EXPECT_NEAR(parsed->cues[1].end_seconds, 12.125, 1e-3);
}

TEST(WebVttTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseWebVtt("00:00:01.000 --> 00:00:02.000\nhi\n").ok());
}

TEST(WebVttTest, RejectsInvertedTiming) {
  EXPECT_FALSE(
      ParseWebVtt("WEBVTT\n\n00:00:05.000 --> 00:00:02.000\nbackwards\n").ok());
}

TEST(WebVttTest, SkipsNoteBlocks) {
  auto parsed = ParseWebVtt(
      "WEBVTT\n\nNOTE this is a comment\nstill a comment\n\n"
      "00:00:01.000 --> 00:00:02.000\ncontent\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->cues.size(), 1u);
  EXPECT_EQ(parsed->cues[0].text, "content");
}

TEST(WebVttTest, ParsesCueIdentifierLines) {
  auto parsed = ParseWebVtt(
      "WEBVTT\n\ncue-1\n00:00:01.000 --> 00:00:02.000 line:40% position:60%\n"
      "identified\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->cues.size(), 1u);
  EXPECT_NEAR(parsed->cues[0].line_percent, 40.0, 1e-9);
  EXPECT_NEAR(parsed->cues[0].position_percent, 60.0, 1e-9);
}

TEST(WebVttTest, ActiveAtSelectsByHalfOpenInterval) {
  WebVttDocument document;
  WebVttCue cue;
  cue.start_seconds = 1.0;
  cue.end_seconds = 2.0;
  cue.text = "X";
  document.cues.push_back(cue);
  EXPECT_TRUE(document.ActiveAt(0.5).empty());
  EXPECT_EQ(document.ActiveAt(1.0).size(), 1u);
  EXPECT_EQ(document.ActiveAt(1.99).size(), 1u);
  EXPECT_TRUE(document.ActiveAt(2.0).empty());
}

TEST(WebVttTest, MultilinePayloadPreserved) {
  auto parsed = ParseWebVtt(
      "WEBVTT\n\n00:00:00.000 --> 00:00:01.000\nline one\nline two\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->cues[0].text, "line one\nline two");
}

}  // namespace
}  // namespace visualroad::video
