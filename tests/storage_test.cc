#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include "common/random.h"
#include "driver/dataset_io.h"
#include "driver/datasets.h"
#include "storage/sharded_store.h"

namespace visualroad::storage {
namespace {

namespace fs = std::filesystem;

class ShardedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs every discovered test in its own process, so counter_
    // restarts at zero in each shard; the pid keeps parallel shards of this
    // binary out of each other's trees.
    root_ = (fs::temp_directory_path() /
             ("vr_store_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++))).string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  StoreOptions Options(int nodes = 4, int replication = 2,
                       int64_t block_size = 256) {
    StoreOptions options;
    options.root = root_;
    options.num_nodes = nodes;
    options.replication = replication;
    options.block_size = block_size;
    return options;
  }

  std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
    Pcg32 rng(seed, 1);
    std::vector<uint8_t> bytes(n);
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.NextBounded(256));
    return bytes;
  }

  std::string root_;
  static int counter_;
};

int ShardedStoreTest::counter_ = 0;

TEST_F(ShardedStoreTest, PutGetRoundTrip) {
  auto store = ShardedStore::Open(Options());
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> payload = RandomBytes(1000, 1);
  ASSERT_TRUE(store->Put("a.vrmp", payload).ok());
  auto loaded = store->Get("a.vrmp");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, payload);
}

TEST_F(ShardedStoreTest, FilesSplitIntoBlocks) {
  auto store = ShardedStore::Open(Options(4, 2, 256));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("big", RandomBytes(1000, 2)).ok());
  auto info = store->Stat("big");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 1000);
  EXPECT_EQ(info->block_count, 4);  // ceil(1000/256).
}

TEST_F(ShardedStoreTest, EmptyFileStoresOneEmptyBlock) {
  auto store = ShardedStore::Open(Options());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("empty", {}).ok());
  auto loaded = store->Get("empty");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(ShardedStoreTest, GetMissingFileFails) {
  auto store = ShardedStore::Open(Options());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->Get("nope").ok());
  EXPECT_FALSE(store->Stat("nope").ok());
}

TEST_F(ShardedStoreTest, OverwriteReplacesContent) {
  auto store = ShardedStore::Open(Options());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("f", RandomBytes(500, 3)).ok());
  std::vector<uint8_t> second = RandomBytes(700, 4);
  ASSERT_TRUE(store->Put("f", second).ok());
  auto loaded = store->Get("f");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, second);
  EXPECT_EQ(store->List().size(), 1u);
}

TEST_F(ShardedStoreTest, DeleteRemovesFileAndBlocks) {
  auto store = ShardedStore::Open(Options());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("f", RandomBytes(600, 5)).ok());
  ASSERT_TRUE(store->Delete("f").ok());
  EXPECT_FALSE(store->Get("f").ok());
  // Every block file should be gone from every datanode.
  size_t remaining = 0;
  for (int n = 0; n < 4; ++n) {
    for (auto& entry : fs::directory_iterator(root_ + "/node" + std::to_string(n))) {
      (void)entry;
      ++remaining;
    }
  }
  EXPECT_EQ(remaining, 0u);
}

TEST_F(ShardedStoreTest, SurvivesSingleNodeFailure) {
  auto store = ShardedStore::Open(Options(4, 2, 128));
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> payload = RandomBytes(1024, 6);
  ASSERT_TRUE(store->Put("resilient", payload).ok());
  // With replication 2, any single node loss must be survivable.
  for (int victim = 0; victim < 4; ++victim) {
    ASSERT_TRUE(store->DisableNode(victim).ok());
    auto loaded = store->Get("resilient");
    ASSERT_TRUE(loaded.ok()) << "node " << victim;
    EXPECT_EQ(*loaded, payload);
    ASSERT_TRUE(store->EnableNode(victim).ok());
  }
}

TEST_F(ShardedStoreTest, DoubleNodeFailureCanLoseData) {
  auto store = ShardedStore::Open(Options(4, 2, 64));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("fragile", RandomBytes(1024, 7)).ok());
  // Disable two nodes: with replication 2 over 4 nodes and many blocks,
  // some block will have both replicas on the disabled pair.
  ASSERT_TRUE(store->DisableNode(0).ok());
  ASSERT_TRUE(store->DisableNode(1).ok());
  auto loaded = store->Get("fragile");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(ShardedStoreTest, ManifestPersistsAcrossReopen) {
  std::vector<uint8_t> payload = RandomBytes(900, 8);
  {
    auto store = ShardedStore::Open(Options());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Put("persist", payload).ok());
  }
  auto reopened = ShardedStore::Open(Options());
  ASSERT_TRUE(reopened.ok());
  auto loaded = reopened->Get("persist");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, payload);
  EXPECT_EQ(reopened->List(), std::vector<std::string>{"persist"});
}

TEST_F(ShardedStoreTest, RejectsBadOptions) {
  StoreOptions bad;
  EXPECT_FALSE(ShardedStore::Open(bad).ok());  // Empty root.
  bad.root = root_;
  bad.num_nodes = 0;
  EXPECT_FALSE(ShardedStore::Open(bad).ok());
  bad.num_nodes = 2;
  bad.block_size = 4;
  EXPECT_FALSE(ShardedStore::Open(bad).ok());
}

TEST_F(ShardedStoreTest, PartialReadFetchesOnlyCoveringBlocks) {
  auto store = ShardedStore::Open(Options(4, 2, 256));
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> payload = RandomBytes(1000, 10);
  ASSERT_TRUE(store->Put("f", payload).ok());
  StoreStats before = store->stats();
  auto slice = store->Read("f", 300, 400);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(*slice, std::vector<uint8_t>(payload.begin() + 300,
                                         payload.begin() + 700));
  StoreStats after = store->stats();
  // Bytes [300, 700) live in blocks 1 and 2 of four; the other two blocks
  // are never touched.
  EXPECT_EQ(after.blocks_read - before.blocks_read, 2);
  EXPECT_EQ(after.bytes_read - before.bytes_read, 400);
  EXPECT_EQ(after.partial_reads - before.partial_reads, 1);
}

TEST_F(ShardedStoreTest, PartialReadValidatesBounds) {
  auto store = ShardedStore::Open(Options(4, 2, 256));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("f", RandomBytes(100, 11)).ok());
  EXPECT_FALSE(store->Read("f", -1, 10).ok());
  EXPECT_FALSE(store->Read("f", 0, -1).ok());
  EXPECT_FALSE(store->Read("f", 90, 11).ok());
  EXPECT_FALSE(store->Read("missing", 0, 1).ok());
  auto empty = store->Read("f", 100, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(ShardedStoreTest, StreamingWriterRoundTrips) {
  auto store = ShardedStore::Open(Options(4, 2, 256));
  ASSERT_TRUE(store.ok());
  auto writer = store->OpenWriter("streamed");
  ASSERT_TRUE(writer.ok());
  std::vector<uint8_t> expected;
  // Appends straddle block boundaries in both directions (small and large).
  for (size_t chunk : {100u, 1u, 700u, 256u, 3u}) {
    std::vector<uint8_t> bytes = RandomBytes(chunk, 12 + chunk);
    expected.insert(expected.end(), bytes.begin(), bytes.end());
    ASSERT_TRUE(writer->Append(bytes).ok());
  }
  EXPECT_EQ(writer->size(), static_cast<int64_t>(expected.size()));
  // Not visible until Close.
  EXPECT_FALSE(store->Get("streamed").ok());
  ASSERT_TRUE(writer->Close().ok());
  auto loaded = store->Get("streamed");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, expected);
}

TEST_F(ShardedStoreTest, AbandonedWriterLeavesNoTrace) {
  auto store = ShardedStore::Open(Options(4, 2, 128));
  ASSERT_TRUE(store.ok());
  {
    auto writer = store->OpenWriter("ghost");
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(RandomBytes(600, 13)).ok());
    // Destroyed without Close: blocks already written must be removed.
  }
  EXPECT_FALSE(store->Get("ghost").ok());
  size_t remaining = 0;
  for (int n = 0; n < 4; ++n) {
    for (auto& entry : fs::directory_iterator(root_ + "/node" + std::to_string(n))) {
      (void)entry;
      ++remaining;
    }
  }
  EXPECT_EQ(remaining, 0u);
}

TEST_F(ShardedStoreTest, AbandonedWriterReconcilesCapacityAccounting) {
  // Regression: blocks removed when a writer was abandoned mid-stream were
  // deleted from disk but never subtracted from the stored-bytes accounting,
  // so the capacity gauge drifted upward forever.
  auto store = ShardedStore::Open(Options(4, 2, 128));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("keep", RandomBytes(200, 20)).ok());
  StoreStats before = store->stats();
  EXPECT_EQ(before.bytes_stored, 400);  // 200 logical x 2 replicas.
  {
    auto writer = store->OpenWriter("ghost");
    ASSERT_TRUE(writer.ok());
    // Three full blocks flush eagerly; a fourth partial block stays pending,
    // so the abandon happens mid-block with real replicas on disk.
    ASSERT_TRUE(writer->Append(RandomBytes(128 * 3 + 50, 21)).ok());
  }
  StoreStats after = store->stats();
  // Every abandoned replica byte is reclaimed; live capacity is unchanged.
  EXPECT_EQ(after.bytes_stored, before.bytes_stored);
  EXPECT_EQ(after.bytes_reclaimed - before.bytes_reclaimed, 128 * 3 * 2);
  // Delete reconciles the same way.
  ASSERT_TRUE(store->Delete("keep").ok());
  EXPECT_EQ(store->stats().bytes_stored, 0);
  EXPECT_EQ(store->stats().bytes_reclaimed, 128 * 3 * 2 + 400);
}

TEST_F(ShardedStoreTest, OverwriteReconcilesCapacityAccounting) {
  auto store = ShardedStore::Open(Options(4, 2, 256));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("f", RandomBytes(500, 22)).ok());
  ASSERT_TRUE(store->Put("f", RandomBytes(300, 23)).ok());
  StoreStats stats = store->stats();
  // Only the live version counts toward capacity; the replaced replicas are
  // fully reclaimed.
  EXPECT_EQ(stats.bytes_stored, 600);
  EXPECT_EQ(stats.bytes_reclaimed, 1000);
  EXPECT_EQ(stats.bytes_written, 1600);  // Monotonic: both versions.
}

TEST_F(ShardedStoreTest, FailDatanodeRecoversWithinRetryDeadline) {
  // A transient flap shorter than the read-retry deadline is invisible to
  // callers: the read fails over, backs off, and succeeds once the node
  // returns — no EnableNode needed.
  StoreOptions options = Options(1, 1, 256);
  auto store = ShardedStore::Open(options);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> payload = RandomBytes(500, 24);
  ASSERT_TRUE(store->Put("f", payload).ok());

  ASSERT_TRUE(store->FailDatanode(0, std::chrono::milliseconds(5)).ok());
  auto loaded = store->Get("f");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, payload);
  StoreStats stats = store->stats();
  EXPECT_GT(stats.read_retries, 0);
  EXPECT_GT(stats.replica_failovers, 0);
}

TEST_F(ShardedStoreTest, FailDatanodeLongerThanDeadlineFailsThenRecovers) {
  auto store = ShardedStore::Open(Options(1, 1, 256));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("f", RandomBytes(300, 25)).ok());

  // A flap far beyond the retry deadline surfaces as data loss...
  ASSERT_TRUE(store->FailDatanode(0, std::chrono::seconds(30)).ok());
  auto loaded = store->Get("f");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  // ...and EnableNode clears the flap early.
  ASSERT_TRUE(store->EnableNode(0).ok());
  EXPECT_TRUE(store->Get("f").ok());
}

TEST_F(ShardedStoreTest, FailDatanodeValidatesArguments) {
  auto store = ShardedStore::Open(Options(2, 1, 256));
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->FailDatanode(-1, std::chrono::milliseconds(5)).ok());
  EXPECT_FALSE(store->FailDatanode(2, std::chrono::milliseconds(5)).ok());
  EXPECT_FALSE(store->FailDatanode(0, std::chrono::milliseconds(0)).ok());
}

TEST_F(ShardedStoreTest, FlappedWritesPlaceOnHealthyNodes) {
  // Writes issued during a flap avoid the down node entirely, and reads of
  // those blocks never need it afterwards.
  auto store = ShardedStore::Open(Options(4, 2, 128));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->FailDatanode(0, std::chrono::seconds(30)).ok());
  std::vector<uint8_t> payload = RandomBytes(1024, 26);
  ASSERT_TRUE(store->Put("f", payload).ok());
  // Still down: the read must not touch node 0 at all.
  auto loaded = store->Get("f");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, payload);
  EXPECT_EQ(store->stats().replica_failovers, 0);
}

TEST_F(ShardedStoreTest, InjectedWriteFailuresReplaceReplicas) {
  auto profile = fault::ProfileByName("none");
  ASSERT_TRUE(profile.ok());
  profile->prob(fault::Site::kStoreWriteFail) = 0.4;
  fault::FaultInjector injector(*profile, 13);
  StoreOptions options = Options(4, 2, 128);
  options.faults = &injector;
  auto store = ShardedStore::Open(options);
  ASSERT_TRUE(store.ok());

  int succeeded = 0;
  for (int i = 0; i < 8; ++i) {
    std::vector<uint8_t> payload = RandomBytes(600, 30 + static_cast<uint64_t>(i));
    std::string name = "f" + std::to_string(i);
    if (!store->Put(name, payload).ok()) continue;
    ++succeeded;
    auto loaded = store->Get(name);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(*loaded, payload);
  }
  // The deterministic schedule at this seed completes writes by re-placing
  // failed replicas; every installed file reads back intact.
  EXPECT_GT(succeeded, 0);
  EXPECT_GT(store->stats().write_replacements, 0);
}

TEST_F(ShardedStoreTest, ScanStreamsBlockByBlock) {
  auto store = ShardedStore::Open(Options(4, 2, 256));
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> payload = RandomBytes(1000, 14);
  ASSERT_TRUE(store->Put("f", payload).ok());
  std::vector<uint8_t> assembled;
  size_t calls = 0;
  size_t largest = 0;
  ASSERT_TRUE(store
                  ->Scan("f",
                         [&](const uint8_t* data, size_t size) {
                           assembled.insert(assembled.end(), data, data + size);
                           largest = std::max(largest, size);
                           ++calls;
                           return Status::Ok();
                         })
                  .ok());
  EXPECT_EQ(assembled, payload);
  EXPECT_EQ(calls, 4u);       // One sink call per block.
  EXPECT_LE(largest, 256u);   // Never more than one block buffered.
}

TEST_F(ShardedStoreTest, CountersTrackWritesReadsAndFailovers) {
  auto store = ShardedStore::Open(Options(4, 2, 256));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("f", RandomBytes(1000, 15)).ok());
  StoreStats stats = store->stats();
  EXPECT_EQ(stats.blocks_written, 4);
  EXPECT_EQ(stats.bytes_written, 2000);  // Physical: replication x logical.
  EXPECT_EQ(stats.blocks_read, 0);
  ASSERT_TRUE(store->Get("f").ok());
  stats = store->stats();
  EXPECT_EQ(stats.blocks_read, 4);
  EXPECT_EQ(stats.bytes_read, 1000);
  EXPECT_EQ(stats.replica_failovers, 0);
  // A dark datanode forces at least one fail-over to a replica.
  ASSERT_TRUE(store->DisableNode(0).ok());
  ASSERT_TRUE(store->Get("f").ok());
  EXPECT_GT(store->stats().replica_failovers, 0);
}

TEST_F(ShardedStoreTest, ReplicationClampedToNodeCount) {
  auto store = ShardedStore::Open(Options(2, 5, 256));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->options().replication, 2);
  ASSERT_TRUE(store->Put("f", RandomBytes(100, 9)).ok());
  auto loaded = store->Get("f");
  EXPECT_TRUE(loaded.ok());
}

}  // namespace
}  // namespace visualroad::storage

namespace visualroad::driver {
namespace {

namespace fs = std::filesystem;

class DatasetIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::CityConfig config;
    config.scale_factor = 1;
    config.width = 96;
    config.height = 54;
    config.duration_seconds = 0.5;
    config.fps = 16;
    config.seed = 77;
    auto dataset = PrepareDataset(config);
    ASSERT_TRUE(dataset.ok());
    dataset_ = new sim::Dataset(std::move(dataset).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static sim::Dataset* dataset_;
};

sim::Dataset* DatasetIoTest::dataset_ = nullptr;

TEST_F(DatasetIoTest, ManifestRoundTrips) {
  auto parsed = ParseDatasetManifest(SerializeDatasetManifest(*dataset_));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->config.scale_factor, dataset_->config.scale_factor);
  EXPECT_EQ(parsed->config.seed, dataset_->config.seed);
  ASSERT_EQ(parsed->assets.size(), dataset_->assets.size());
  for (size_t i = 0; i < parsed->assets.size(); ++i) {
    EXPECT_EQ(parsed->assets[i].camera.camera_id,
              dataset_->assets[i].camera.camera_id);
    EXPECT_DOUBLE_EQ(parsed->assets[i].camera.pose.yaw,
                     dataset_->assets[i].camera.pose.yaw);
  }
}

TEST_F(DatasetIoTest, SaveLoadDirectoryRoundTrips) {
  std::string dir = (fs::temp_directory_path() / "vr_dataset_io").string();
  ASSERT_TRUE(SaveDataset(*dataset_, dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->assets.size(), dataset_->assets.size());
  for (size_t i = 0; i < loaded->assets.size(); ++i) {
    EXPECT_EQ(loaded->assets[i].container.video.TotalBytes(),
              dataset_->assets[i].container.video.TotalBytes());
    EXPECT_EQ(loaded->assets[i].ground_truth.size(),
              dataset_->assets[i].ground_truth.size());
    EXPECT_EQ(loaded->assets[i].camera.kind, dataset_->assets[i].camera.kind);
  }
  // A loaded dataset still answers structural queries.
  EXPECT_EQ(loaded->TrafficAssets().size(), dataset_->TrafficAssets().size());
  EXPECT_EQ(loaded->PanoramicGroupCount(), dataset_->PanoramicGroupCount());
  fs::remove_all(dir);
}

TEST_F(DatasetIoTest, LoadMissingDirectoryFails) {
  EXPECT_FALSE(LoadDataset("/nonexistent/vr_dataset").ok());
}

TEST_F(DatasetIoTest, ShardedStoreRoundTrips) {
  std::string root = (fs::temp_directory_path() / "vr_dataset_sharded").string();
  storage::StoreOptions options;
  options.root = root;
  options.num_nodes = 3;
  options.replication = 2;
  options.block_size = 4096;
  auto store = storage::ShardedStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(SaveDatasetSharded(*dataset_, *store).ok());
  auto loaded = LoadDatasetSharded(*store);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->assets.size(), dataset_->assets.size());
  EXPECT_EQ(loaded->assets[0].container.video.TotalBytes(),
            dataset_->assets[0].container.video.TotalBytes());

  // Resilience: the dataset survives one datanode going dark.
  ASSERT_TRUE(store->DisableNode(0).ok());
  auto degraded = LoadDatasetSharded(*store);
  EXPECT_TRUE(degraded.ok());
  fs::remove_all(root);
}

}  // namespace
}  // namespace visualroad::driver
