#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "simulation/city.h"
#include "simulation/generator.h"
#include "simulation/ground_truth.h"
#include "simulation/recorded_corpus.h"
#include "video/metrics.h"

namespace visualroad::sim {
namespace {

// --- Weather ---

TEST(WeatherTest, TwelvePresetsWithDistinctNames) {
  std::set<std::string> names;
  for (int i = 0; i < kWeatherCount; ++i) {
    const Weather& weather = WeatherPreset(i);
    EXPECT_EQ(weather.id, i);
    names.insert(weather.name);
    EXPECT_GE(weather.cloud_cover, 0.0);
    EXPECT_LE(weather.cloud_cover, 1.0);
    EXPECT_GE(weather.precipitation, 0.0);
    EXPECT_LE(weather.precipitation, 1.0);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kWeatherCount));
}

TEST(WeatherTest, SunsetPresetsHaveLowSun) {
  EXPECT_LT(WeatherPreset(7).sun_altitude_deg, 20.0);   // ClearSunset.
  EXPECT_GT(WeatherPreset(0).sun_altitude_deg, 45.0);   // ClearNoon.
}

// --- Road network ---

TEST(RoadNetworkTest, RoadCentrelineClassifiesAsRoad) {
  RoadNetwork roads(Town::kTown01);
  for (double line : roads.road_lines()) {
    // A point on the road but away from intersections and dash markings.
    EXPECT_EQ(roads.Classify({line + 3.0, 17.0}), SurfaceKind::kRoad);
  }
}

TEST(RoadNetworkTest, IntersectionWhereRoadsCross) {
  RoadNetwork roads(Town::kTown01);
  double a = roads.road_lines()[0], b = roads.road_lines()[1];
  EXPECT_EQ(roads.Classify({a, b}), SurfaceKind::kIntersection);
  EXPECT_TRUE(roads.InIntersection({a, b}));
}

TEST(RoadNetworkTest, SidewalkBesideRoad) {
  RoadNetwork roads(Town::kTown01);
  double line = roads.road_lines()[0];
  double sidewalk = line + (roads.road_half_width() + roads.sidewalk_outer()) / 2.0;
  EXPECT_EQ(roads.Classify({sidewalk, 17.0}), SurfaceKind::kSidewalk);
}

TEST(RoadNetworkTest, GrassFarFromRoads) {
  RoadNetwork roads(Town::kTown01);
  EXPECT_EQ(roads.Classify({80.0, 80.0}), SurfaceKind::kGrass);
}

TEST(RoadNetworkTest, LaneMarkingsDashAlongRoads) {
  RoadNetwork roads(Town::kTown01);
  double line = roads.road_lines()[0];
  bool saw_marking = false, saw_gap = false;
  for (double along = 10.0; along < 30.0; along += 0.5) {
    SurfaceKind kind = roads.Classify({line, along});
    if (kind == SurfaceKind::kLaneMarking) saw_marking = true;
    if (kind == SurfaceKind::kRoad) saw_gap = true;
  }
  EXPECT_TRUE(saw_marking);
  EXPECT_TRUE(saw_gap);
}

TEST(RoadNetworkTest, TownsHaveDifferentLatticeDensity) {
  EXPECT_GT(RoadNetwork(Town::kTown01).road_lines().size(),
            RoadNetwork(Town::kTown02).road_lines().size());
}

TEST(RoadNetworkTest, WrapIsToroidal) {
  RoadNetwork roads(Town::kTown01);
  double size = roads.tile_size();
  EXPECT_NEAR(roads.Wrap(size + 5.0), 5.0, 1e-9);
  EXPECT_NEAR(roads.Wrap(-5.0), size - 5.0, 1e-9);
  EXPECT_NEAR(roads.Wrap(17.0), 17.0, 1e-9);
}

TEST(RoadNetworkTest, NearestRoadLineSnapsCorrectly) {
  RoadNetwork roads(Town::kTown01);
  EXPECT_DOUBLE_EQ(roads.NearestRoadLine(45.0), 40.0);
  EXPECT_DOUBLE_EQ(roads.NearestRoadLine(100.0), 120.0);
}

// --- Tile pool ---

TEST(TilePoolTest, SeventyTwoDistinctArchetypes) {
  std::set<std::tuple<int, int, int>> combos;
  for (int i = 0; i < kTilePoolSize; ++i) {
    TileArchetype archetype = TilePoolEntry(i);
    combos.insert({static_cast<int>(archetype.town), archetype.weather_id,
                   static_cast<int>(archetype.density)});
  }
  EXPECT_EQ(combos.size(), static_cast<size_t>(kTilePoolSize));
}

TEST(TilePoolTest, DensityDrivesPopulationCounts) {
  EXPECT_LT(VehicleCount(Density::kLow), VehicleCount(Density::kRushHour));
  EXPECT_LT(PedestrianCount(Density::kMedium), PedestrianCount(Density::kRushHour));
}

// --- Tile ---

TEST(TileTest, PopulationMatchesDensity) {
  Tile tile(TilePoolEntry(2), 77);  // Density id 2 = rush hour.
  EXPECT_EQ(static_cast<int>(tile.vehicles().size()),
            VehicleCount(Density::kRushHour));
  EXPECT_EQ(static_cast<int>(tile.pedestrians().size()),
            PedestrianCount(Density::kRushHour));
  EXPECT_FALSE(tile.buildings().empty());
}

TEST(TileTest, SameSeedSameTile) {
  Tile a(TilePoolEntry(5), 123), b(TilePoolEntry(5), 123);
  ASSERT_EQ(a.vehicles().size(), b.vehicles().size());
  for (size_t i = 0; i < a.vehicles().size(); ++i) {
    EXPECT_EQ(a.vehicles()[i].plate, b.vehicles()[i].plate);
    EXPECT_DOUBLE_EQ(a.vehicles()[i].position.x, b.vehicles()[i].position.x);
  }
  // Determinism must survive stepping.
  for (int s = 0; s < 30; ++s) {
    a.Step(1.0 / 15);
    b.Step(1.0 / 15);
  }
  for (size_t i = 0; i < a.vehicles().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vehicles()[i].position.x, b.vehicles()[i].position.x);
    EXPECT_DOUBLE_EQ(a.vehicles()[i].position.y, b.vehicles()[i].position.y);
  }
}

TEST(TileTest, DifferentSeedsDifferentPlates) {
  Tile a(TilePoolEntry(5), 1), b(TilePoolEntry(5), 2);
  bool any_differ = false;
  for (size_t i = 0; i < a.vehicles().size(); ++i) {
    if (a.vehicles()[i].plate != b.vehicles()[i].plate) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(TileTest, PlatesAreSixAlphanumerics) {
  Tile tile(TilePoolEntry(8), 9);
  for (const Vehicle& vehicle : tile.vehicles()) {
    ASSERT_EQ(vehicle.plate.size(), 6u);
    for (char c : vehicle.plate) {
      EXPECT_TRUE((c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) << c;
    }
  }
}

TEST(TileTest, VehiclesStayOnRoads) {
  Tile tile(TilePoolEntry(1), 31);
  for (int s = 0; s < 200; ++s) {
    tile.Step(1.0 / 15);
    for (const Vehicle& vehicle : tile.vehicles()) {
      EXPECT_TRUE(tile.roads().OnRoad(vehicle.position))
          << "vehicle " << vehicle.id << " at (" << vehicle.position.x << ", "
          << vehicle.position.y << ") after step " << s;
    }
  }
}

TEST(TileTest, VehiclesActuallyMove) {
  Tile tile(TilePoolEntry(1), 32);
  Vec2 before = tile.vehicles()[0].position;
  for (int s = 0; s < 15; ++s) tile.Step(1.0 / 15);
  Vec2 after = tile.vehicles()[0].position;
  EXPECT_GT((after - before).Norm(), 1.0);
}

TEST(TileTest, PedestriansStayNearSidewalks) {
  Tile tile(TilePoolEntry(4), 33);
  for (int s = 0; s < 100; ++s) tile.Step(1.0 / 15);
  for (const Pedestrian& pedestrian : tile.pedestrians()) {
    SurfaceKind kind = tile.roads().Classify(pedestrian.position);
    EXPECT_TRUE(kind == SurfaceKind::kSidewalk || kind == SurfaceKind::kRoad ||
                kind == SurfaceKind::kIntersection || kind == SurfaceKind::kGrass);
  }
}

TEST(TileTest, BuildingsDoNotOverlapRoads) {
  Tile tile(TilePoolEntry(0), 34);
  for (const Building& building : tile.buildings()) {
    // Sample the footprint corners; none should be on a road.
    for (Vec2 corner : {building.min_corner, building.max_corner,
                        Vec2{building.min_corner.x, building.max_corner.y},
                        Vec2{building.max_corner.x, building.min_corner.y}}) {
      EXPECT_FALSE(tile.roads().OnRoad(corner))
          << "building corner on road at (" << corner.x << ", " << corner.y << ")";
    }
  }
}

TEST(TileTest, TimeAdvances) {
  Tile tile(TilePoolEntry(0), 35);
  tile.Step(0.5);
  tile.Step(0.25);
  EXPECT_DOUBLE_EQ(tile.time(), 0.75);
}

// --- Camera ---

TEST(CameraTest, ProjectAndRayAreInverse) {
  Camera camera({320, 180, 75.0}, {{10, 20, 12}, 0.8, -0.4});
  Vec3 world{40, 35, 2};
  auto projected = camera.Project(world);
  ASSERT_TRUE(projected.has_value());
  Vec3 ray = camera.PixelRay(projected->x, projected->y);
  Vec3 recovered = camera.pose().position + ray * ((world - camera.pose().position).Norm());
  EXPECT_NEAR(recovered.x, world.x, 0.05);
  EXPECT_NEAR(recovered.y, world.y, 0.05);
  EXPECT_NEAR(recovered.z, world.z, 0.05);
}

TEST(CameraTest, PointBehindCameraDoesNotProject) {
  Camera camera({320, 180, 60.0}, {{0, 0, 5}, 0.0, 0.0});  // Looking along +x.
  EXPECT_FALSE(camera.Project({-10, 0, 5}).has_value());
  EXPECT_TRUE(camera.Project({10, 0, 5}).has_value());
}

TEST(CameraTest, CentrePixelLooksAlongForward) {
  Camera camera({320, 180, 60.0}, {{0, 0, 5}, 1.1, -0.2});
  Vec3 ray = camera.PixelRay(160.0, 90.0);
  EXPECT_NEAR(ray.Dot(camera.forward()), 1.0, 1e-9);
}

TEST(CameraTest, BasisIsOrthonormal) {
  Camera camera({64, 64, 90.0}, {{1, 2, 3}, 2.3, 0.5});
  EXPECT_NEAR(camera.forward().Norm(), 1.0, 1e-12);
  EXPECT_NEAR(camera.right().Norm(), 1.0, 1e-12);
  EXPECT_NEAR(camera.up().Norm(), 1.0, 1e-12);
  EXPECT_NEAR(camera.forward().Dot(camera.right()), 0.0, 1e-12);
  EXPECT_NEAR(camera.forward().Dot(camera.up()), 0.0, 1e-12);
  EXPECT_NEAR(camera.right().Dot(camera.up()), 0.0, 1e-12);
}

TEST(CameraTest, ProjectedDepthIsForwardDistance) {
  Camera camera({320, 180, 60.0}, {{0, 0, 0}, 0.0, 0.0});
  auto projected = camera.Project({25, 3, 1});
  ASSERT_TRUE(projected.has_value());
  EXPECT_NEAR(projected->depth, 25.0, 1e-9);
}

TEST(CameraTest, PanoramicRigCoversFourYaws) {
  PanoramicRig rig;
  rig.position = {5, 5, 8};
  rig.base_yaw = 0.3;
  auto faces = rig.Faces();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(WrapAngle(faces[static_cast<size_t>(i)].pose().yaw -
                          (0.3 + i * kPi / 2.0)),
                0.0, 1e-9);
  }
  // 120-degree FOVs at 90-degree spacing: any horizontal direction must be
  // within 60 degrees of some face axis.
  for (double angle = 0; angle < 2 * kPi; angle += 0.05) {
    Vec3 direction{std::cos(angle), std::sin(angle), 0};
    double best = -1;
    for (const Camera& face : faces) {
      best = std::max(best, direction.Dot(face.forward()));
    }
    EXPECT_GT(best, std::cos(DegToRad(60.0)) - 1e-9);
  }
}

// --- Rasterizer ---

TEST(RasterizerTest, TriangleWritesColorDepthAndId) {
  Framebuffer fb(64, 64);
  Camera camera({64, 64, 60.0}, {{0, 0, 0}, 0.0, 0.0});
  Rasterizer raster(fb, camera);
  // A large triangle 10m ahead, facing the camera.
  RasterVertex a{{10, 5, -5}, 0, 0}, b{{10, -5, -5}, 1, 0}, c{{10, 0, 5}, 0.5, 1};
  raster.DrawTriangle(a, b, c, [](double, double) { return video::Rgb{255, 0, 0}; },
                      42);
  size_t centre = fb.Index(32, 32);
  EXPECT_EQ(fb.ids[centre], 42);
  EXPECT_NEAR(fb.depth[centre], 10.0, 0.1);
  EXPECT_EQ(fb.color.Pixel(32, 32)[0], 255);
}

TEST(RasterizerTest, NearerTriangleWins) {
  Framebuffer fb(64, 64);
  Camera camera({64, 64, 60.0}, {{0, 0, 0}, 0.0, 0.0});
  Rasterizer raster(fb, camera);
  auto red = [](double, double) { return video::Rgb{255, 0, 0}; };
  auto blue = [](double, double) { return video::Rgb{0, 0, 255}; };
  RasterVertex far_tri[3] = {{{20, 8, -8}}, {{20, -8, -8}}, {{20, 0, 8}}};
  RasterVertex near_tri[3] = {{{10, 4, -4}}, {{10, -4, -4}}, {{10, 0, 4}}};
  raster.DrawTriangle(far_tri[0], far_tri[1], far_tri[2], red, 1);
  raster.DrawTriangle(near_tri[0], near_tri[1], near_tri[2], blue, 2);
  EXPECT_EQ(fb.ids[fb.Index(32, 32)], 2);
  EXPECT_EQ(fb.color.Pixel(32, 32)[2], 255);
}

TEST(RasterizerTest, TriangleBehindCameraCulled) {
  Framebuffer fb(32, 32);
  Camera camera({32, 32, 60.0}, {{0, 0, 0}, 0.0, 0.0});
  Rasterizer raster(fb, camera);
  RasterVertex a{{-5, 2, -2}}, b{{-5, -2, -2}}, c{{-5, 0, 2}};
  raster.DrawTriangle(a, b, c, [](double, double) { return video::Rgb{9, 9, 9}; }, 7);
  for (int32_t id : fb.ids) EXPECT_EQ(id, kNoEntity);
}

TEST(RasterizerTest, TriangleStraddlingNearPlaneIsClipped) {
  Framebuffer fb(32, 32);
  Camera camera({32, 32, 60.0}, {{0, 0, 0}, 0.0, 0.0});
  Rasterizer raster(fb, camera);
  // One vertex behind the camera, two ahead: must render something without
  // crashing or wrapping.
  RasterVertex a{{-2, 0, 0}}, b{{10, -6, -4}}, c{{10, 6, -4}};
  raster.DrawTriangle(a, b, c, [](double, double) { return video::Rgb{5, 5, 5}; }, 3);
  int covered = 0;
  for (int32_t id : fb.ids) {
    if (id == 3) ++covered;
  }
  EXPECT_GT(covered, 0);
}

TEST(RasterizerTest, PerspectiveCorrectUv) {
  Framebuffer fb(64, 64);
  Camera camera({64, 64, 60.0}, {{0, 0, 0}, 0.0, 0.0});
  Rasterizer raster(fb, camera);
  // A quad receding in depth: u from 0 (near, 5m) to 1 (far, 25m).
  RasterVertex quad[4] = {{{5, 0.5, -1}, 0, 0},
                          {{25, 8, -2}, 1, 0},
                          {{25, 8, 2}, 1, 1},
                          {{5, 0.5, 1}, 0, 1}};
  std::vector<double> sampled_u;
  raster.DrawQuad(
      quad,
      [&](double u, double) {
        sampled_u.push_back(u);
        return video::Rgb{static_cast<uint8_t>(u * 255), 0, 0};
      },
      1);
  ASSERT_FALSE(sampled_u.empty());
  // With perspective-correct interpolation the screen-space midpoint of the
  // quad maps to u > 0.5 (the far half is compressed).
  double max_u = *std::max_element(sampled_u.begin(), sampled_u.end());
  EXPECT_GT(max_u, 0.9);
}

TEST(RasterizerTest, CuboidBackFacesCulled) {
  Framebuffer fb(64, 64);
  Camera camera({64, 64, 60.0}, {{0, 0, 1}, 0.0, 0.0});
  Rasterizer raster(fb, camera);
  std::vector<Vec3> shaded_normals;
  raster.DrawCuboid({5, -2, 0}, {9, 2, 3},
                    [&](const Vec3& normal, double, double) {
                      shaded_normals.push_back(normal);
                      return video::Rgb{100, 100, 100};
                    },
                    11);
  // The +x face (pointing away from a camera at the origin) must never be
  // shaded.
  for (const Vec3& normal : shaded_normals) {
    EXPECT_FALSE(normal.x > 0.5);
  }
}

TEST(FramebufferTest, ClearResetsEverything) {
  Framebuffer fb(8, 8);
  fb.color.Pixel(3, 3)[0] = 200;
  fb.depth[fb.Index(3, 3)] = 1.0f;
  fb.ids[fb.Index(3, 3)] = 5;
  fb.Clear();
  EXPECT_EQ(fb.color.Pixel(3, 3)[0], 0);
  EXPECT_TRUE(std::isinf(fb.depth[fb.Index(3, 3)]));
  EXPECT_EQ(fb.ids[fb.Index(3, 3)], kNoEntity);
}

// --- Scene renderer ---

TEST(SceneRendererTest, RenderIsDeterministic) {
  Tile tile(TilePoolEntry(3), 71);
  Camera camera({96, 54, 62.0}, {{40, 30, 14}, 1.0, -0.6});
  Framebuffer a = RenderScene(tile, camera, 5, 99);
  Framebuffer b = RenderScene(tile, camera, 5, 99);
  EXPECT_EQ(a.color.data, b.color.data);
  EXPECT_EQ(a.ids, b.ids);
}

TEST(SceneRendererTest, RainyFramesDifferAcrossFrameIndices) {
  TileArchetype archetype = TilePoolEntry(0);
  archetype.weather_id = 5;  // HardRainNoon.
  Tile tile(archetype, 72);
  Camera camera({96, 54, 62.0}, {{40, 30, 14}, 1.0, -0.6});
  Framebuffer a = RenderScene(tile, camera, 1, 99);
  Framebuffer b = RenderScene(tile, camera, 2, 99);
  EXPECT_NE(a.color.data, b.color.data);
}

TEST(SceneRendererTest, VehiclesAppearInIdBuffer) {
  Tile tile(TilePoolEntry(2), 73);  // Rush hour: many vehicles.
  // Aim a camera down a road centre.
  double line = tile.roads().road_lines()[0];
  Camera camera({160, 90, 70.0}, {{line, 10.0, 12.0}, kPi / 2.0, -0.5});
  Framebuffer fb = RenderScene(tile, camera, 0, 99);
  bool saw_vehicle = false;
  for (int32_t id : fb.ids) {
    if (IsVehicleId(id)) saw_vehicle = true;
  }
  EXPECT_TRUE(saw_vehicle);
}

TEST(SceneRendererTest, SunsetDarkerThanNoon) {
  TileArchetype noon = TilePoolEntry(0);
  noon.weather_id = 0;
  TileArchetype sunset = noon;
  sunset.weather_id = 7;
  Tile noon_tile(noon, 74), sunset_tile(sunset, 74);
  Camera camera({96, 54, 62.0}, {{40, 30, 14}, 1.0, -0.5});
  Framebuffer noon_fb = RenderScene(noon_tile, camera, 0, 99);
  Framebuffer sunset_fb = RenderScene(sunset_tile, camera, 0, 99);
  auto luminance = [](const Framebuffer& fb) {
    double sum = 0;
    for (size_t i = 0; i < fb.color.data.size(); i += 3) {
      sum += 0.299 * fb.color.data[i] + 0.587 * fb.color.data[i + 1] +
             0.114 * fb.color.data[i + 2];
    }
    return sum / (fb.color.data.size() / 3.0);
  };
  EXPECT_LT(luminance(sunset_fb), luminance(noon_fb));
}

TEST(SceneRendererTest, SunDirectionMatchesAltitude) {
  Vec3 noon = SunDirection(WeatherPreset(0));
  Vec3 sunset = SunDirection(WeatherPreset(7));
  EXPECT_GT(noon.z, sunset.z);
  EXPECT_NEAR(noon.Norm(), 1.0, 1e-12);
}

TEST(SceneRendererTest, WeatherEffectsToggle) {
  TileArchetype archetype = TilePoolEntry(0);
  archetype.weather_id = 5;  // Heavy rain.
  Tile tile(archetype, 75);
  Camera camera({96, 54, 62.0}, {{40, 30, 14}, 1.0, -0.5});
  RenderOptions with, without;
  without.weather_effects = false;
  Framebuffer rain = RenderScene(tile, camera, 0, 99, with);
  Framebuffer clear = RenderScene(tile, camera, 0, 99, without);
  EXPECT_NE(rain.color.data, clear.color.data);
}

// --- Ground truth ---

TEST(GroundTruthTest, BoxesCoverVisibleVehicles) {
  Tile tile(TilePoolEntry(2), 81);
  double line = tile.roads().road_lines()[0];
  Camera camera({160, 90, 70.0}, {{line, 10.0, 12.0}, kPi / 2.0, -0.5});
  Framebuffer fb = RenderScene(tile, camera, 0, 99);
  FrameGroundTruth truth = ExtractGroundTruth(tile, camera, fb);
  // Every id present in the framebuffer should be annotated.
  std::set<int32_t> rendered_ids;
  for (int32_t id : fb.ids) {
    if (IsVehicleId(id) || IsPedestrianId(id)) rendered_ids.insert(id);
  }
  for (int32_t id : rendered_ids) {
    EXPECT_NE(truth.Find(id), nullptr) << "id " << id << " missing from GT";
  }
  // And every annotation is visible and in-frame.
  for (const GroundTruthBox& box : truth.boxes) {
    EXPECT_GT(box.visible_fraction, 0.0);
    EXPECT_LE(box.visible_fraction, 1.0);
    EXPECT_GE(box.box.x0, 0);
    EXPECT_LE(box.box.x1, 160);
  }
}

TEST(GroundTruthTest, SerializationRoundTrips) {
  std::vector<FrameGroundTruth> frames(2);
  GroundTruthBox box;
  box.entity_id = 1005;
  box.object_class = ObjectClass::kVehicle;
  box.box = {1, 2, 30, 40};
  box.visible_fraction = 0.625;
  box.plate = "AB12CD";
  box.plate_box = {5, 6, 15, 9};
  box.plate_visible = true;
  frames[0].boxes.push_back(box);
  box.entity_id = 2003;
  box.object_class = ObjectClass::kPedestrian;
  box.plate.clear();
  box.plate_visible = false;
  frames[1].boxes.push_back(box);

  auto parsed = ParseGroundTruth(SerializeGroundTruth(frames));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  const GroundTruthBox& first = (*parsed)[0].boxes[0];
  EXPECT_EQ(first.entity_id, 1005);
  EXPECT_EQ(first.plate, "AB12CD");
  EXPECT_TRUE(first.plate_visible);
  EXPECT_DOUBLE_EQ(first.visible_fraction, 0.625);
  EXPECT_EQ(first.plate_box, (RectI{5, 6, 15, 9}));
  EXPECT_EQ((*parsed)[1].boxes[0].object_class, ObjectClass::kPedestrian);
}

TEST(GroundTruthTest, TruncatedPayloadRejected) {
  std::vector<FrameGroundTruth> frames(1);
  frames[0].boxes.emplace_back();
  std::vector<uint8_t> bytes = SerializeGroundTruth(frames);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(ParseGroundTruth(bytes).ok());
}

// --- City ---

TEST(CityTest, BuildPlacesConfiguredCameras) {
  CityConfig config;
  config.scale_factor = 3;
  config.seed = 5;
  VisualCity city = VisualCity::Build(config);
  EXPECT_EQ(city.tiles().size(), 3u);
  // 4 traffic + 4 pano faces per tile.
  EXPECT_EQ(city.cameras().size(), 3u * 8u);
  int traffic = 0, pano = 0;
  for (const CameraPlacement& camera : city.cameras()) {
    if (camera.kind == CameraKind::kTraffic) {
      ++traffic;
      EXPECT_GE(camera.pose.position.z, 10.0);
      EXPECT_LE(camera.pose.position.z, 20.0);
    } else {
      ++pano;
      EXPECT_GE(camera.pose.position.z, 5.0);
      EXPECT_LE(camera.pose.position.z, 10.0);
      EXPECT_GE(camera.pano_face, 0);
      EXPECT_LT(camera.pano_face, 4);
    }
  }
  EXPECT_EQ(traffic, 12);
  EXPECT_EQ(pano, 12);
}

TEST(CityTest, SameSeedSameCity) {
  CityConfig config;
  config.scale_factor = 2;
  config.seed = 42;
  VisualCity a = VisualCity::Build(config);
  VisualCity b = VisualCity::Build(config);
  for (size_t i = 0; i < a.cameras().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cameras()[i].pose.position.x, b.cameras()[i].pose.position.x);
    EXPECT_DOUBLE_EQ(a.cameras()[i].pose.yaw, b.cameras()[i].pose.yaw);
  }
  for (size_t i = 0; i < a.tiles().size(); ++i) {
    EXPECT_EQ(a.tiles()[i].archetype().id, b.tiles()[i].archetype().id);
  }
}

TEST(CityTest, DifferentSeedsDifferentCities) {
  CityConfig a_config, b_config;
  a_config.scale_factor = b_config.scale_factor = 4;
  a_config.seed = 1;
  b_config.seed = 2;
  VisualCity a = VisualCity::Build(a_config);
  VisualCity b = VisualCity::Build(b_config);
  bool differ = false;
  for (size_t i = 0; i < a.tiles().size(); ++i) {
    if (a.tiles()[i].archetype().id != b.tiles()[i].archetype().id) differ = true;
  }
  for (size_t i = 0; i < a.cameras().size() && !differ; ++i) {
    if (a.cameras()[i].pose.position.x != b.cameras()[i].pose.position.x) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(CityTest, CamerasOfTileFilters) {
  CityConfig config;
  config.scale_factor = 2;
  VisualCity city = VisualCity::Build(config);
  auto tile0 = city.CamerasOfTile(0);
  auto tile1 = city.CamerasOfTile(1);
  EXPECT_EQ(tile0.size(), 8u);
  EXPECT_EQ(tile1.size(), 8u);
  for (const CameraPlacement* camera : tile0) EXPECT_EQ(camera->tile_index, 0);
}

// --- Generator (shared fixture: generation is the expensive step) ---

class GeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig config;
    config.scale_factor = 1;
    config.width = 96;
    config.height = 54;
    config.duration_seconds = 1.0;
    config.fps = 15;
    config.seed = 7;
    sim::GeneratorOptions options;
    options.codec.qp = 24;
    VisualCityGenerator generator(options);
    auto result = generator.Generate(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    dataset_ = new Dataset(std::move(result).value());
    stats_ = generator.last_stats();
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static GeneratorStats stats_;
};

Dataset* GeneratorTest::dataset_ = nullptr;
GeneratorStats GeneratorTest::stats_;

TEST_F(GeneratorTest, ProducesExpectedAssetCount) {
  // 4 traffic + 4 pano faces per tile.
  EXPECT_EQ(dataset_->assets.size(), 8u);
  EXPECT_EQ(dataset_->TrafficAssets().size(), 4u);
  EXPECT_EQ(dataset_->PanoramicGroupCount(), 1);
}

TEST_F(GeneratorTest, VideosHaveConfiguredShape) {
  for (const VideoAsset& asset : dataset_->assets) {
    EXPECT_EQ(asset.container.video.width, 96);
    EXPECT_EQ(asset.container.video.height, 54);
    EXPECT_EQ(asset.container.video.FrameCount(), 15);
    EXPECT_EQ(asset.ground_truth.size(), 15u);
  }
}

TEST_F(GeneratorTest, GroundTruthTrackMatchesInMemoryTruth) {
  const VideoAsset& asset = dataset_->assets.front();
  const video::container::MetadataTrack* track = asset.container.FindTrack("GTRU");
  ASSERT_NE(track, nullptr);
  auto parsed = ParseGroundTruth(track->payload);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), asset.ground_truth.size());
  for (size_t f = 0; f < parsed->size(); ++f) {
    EXPECT_EQ((*parsed)[f].boxes.size(), asset.ground_truth[f].boxes.size());
  }
}

TEST_F(GeneratorTest, VideosDecodeCleanly) {
  const VideoAsset& asset = dataset_->assets.front();
  auto decoded = video::codec::Decode(asset.container.video);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->FrameCount(), 15);
}

TEST_F(GeneratorTest, StatsAreConsistent) {
  EXPECT_EQ(stats_.frames_rendered, 8 * 15);
  EXPECT_GT(stats_.bytes_encoded, 0);
  EXPECT_GT(stats_.total_seconds, 0.0);
}

TEST_F(GeneratorTest, PanoramicGroupHasFourOrderedFaces) {
  auto faces = dataset_->PanoramicGroup(0);
  ASSERT_EQ(faces.size(), 4u);
  for (int f = 0; f < 4; ++f) {
    ASSERT_NE(faces[static_cast<size_t>(f)], nullptr);
    EXPECT_EQ(faces[static_cast<size_t>(f)]->camera.pano_face, f);
  }
}

TEST(GeneratorModesTest, DistributedMatchesSingleNode) {
  CityConfig config;
  config.scale_factor = 2;
  config.width = 64;
  config.height = 36;
  config.duration_seconds = 0.5;
  config.fps = 16;
  config.seed = 11;
  sim::GeneratorOptions single, distributed;
  single.num_nodes = 1;
  distributed.num_nodes = 4;
  VisualCityGenerator a(single), b(distributed);
  auto da = a.Generate(config);
  auto db = b.Generate(config);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(da->assets.size(), db->assets.size());
  for (size_t i = 0; i < da->assets.size(); ++i) {
    EXPECT_EQ(da->assets[i].container.video.TotalBytes(),
              db->assets[i].container.video.TotalBytes());
    EXPECT_EQ(da->assets[i].camera.camera_id, db->assets[i].camera.camera_id);
  }
}

TEST(GeneratorModesTest, ParallelTilesMatchSerialByteForByte) {
  CityConfig config;
  config.scale_factor = 2;
  config.width = 64;
  config.height = 36;
  config.duration_seconds = 0.5;
  config.fps = 16;
  config.seed = 11;
  sim::GeneratorOptions serial, threaded;
  serial.threads = 1;
  threaded.threads = 8;
  VisualCityGenerator a(serial), b(threaded);
  auto da = a.Generate(config);
  auto db = b.Generate(config);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(a.last_stats().workers, 1);
  EXPECT_EQ(b.last_stats().workers, 8);
  EXPECT_GT(b.last_stats().pool.tasks_executed, 0);
  ASSERT_EQ(da->assets.size(), db->assets.size());
  // Byte-identical, not just same-sized: every encoded frame of every asset
  // must match, and ground truth and camera order must agree.
  for (size_t i = 0; i < da->assets.size(); ++i) {
    const VideoAsset& sa = da->assets[i];
    const VideoAsset& sb = db->assets[i];
    EXPECT_EQ(sa.camera.camera_id, sb.camera.camera_id);
    ASSERT_EQ(sa.container.video.FrameCount(), sb.container.video.FrameCount());
    for (size_t f = 0; f < sa.container.video.frames.size(); ++f) {
      EXPECT_EQ(sa.container.video.frames[f].data,
                sb.container.video.frames[f].data)
          << "asset " << i << " frame " << f;
    }
    EXPECT_EQ(sa.ground_truth.size(), sb.ground_truth.size());
  }
}

TEST(GeneratorModesTest, RejectsInvalidConfig) {
  VisualCityGenerator generator({});
  CityConfig bad;
  bad.scale_factor = 0;
  EXPECT_FALSE(generator.Generate(bad).ok());
  bad.scale_factor = 1;
  bad.fps = 5.0;  // Below the supported 15-90 range.
  EXPECT_FALSE(generator.Generate(bad).ok());
  bad.fps = 120.0;
  EXPECT_FALSE(generator.Generate(bad).ok());
}

// --- Recorded corpus & negative controls ---

TEST(RecordedCorpusTest, GeneratesAnnotatedVideos) {
  RecordedCorpusConfig config;
  config.video_count = 2;
  config.width = 64;
  config.height = 36;
  config.duration_seconds = 0.5;
  config.fps = 16;
  video::codec::EncoderConfig codec;
  codec.qp = 24;
  auto corpus = GenerateRecordedCorpus(config, codec);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->assets.size(), 2u);
  for (const VideoAsset& asset : corpus->assets) {
    EXPECT_EQ(asset.container.video.FrameCount(), 8);
    EXPECT_EQ(asset.ground_truth.size(), 8u);
  }
}

TEST(RecordedCorpusTest, SensorNoiseMakesItLessCompressible) {
  RecordedCorpusConfig noisy, clean;
  noisy.video_count = clean.video_count = 1;
  noisy.width = clean.width = 64;
  noisy.height = clean.height = 36;
  noisy.duration_seconds = clean.duration_seconds = 0.5;
  clean.sensor_noise_stddev = 0.0;
  clean.exposure_wobble = 0.0;
  clean.jitter_radians = 0.0;
  video::codec::EncoderConfig codec;
  codec.qp = 24;
  auto noisy_corpus = GenerateRecordedCorpus(noisy, codec);
  auto clean_corpus = GenerateRecordedCorpus(clean, codec);
  ASSERT_TRUE(noisy_corpus.ok());
  ASSERT_TRUE(clean_corpus.ok());
  EXPECT_GT(noisy_corpus->assets[0].container.video.TotalBytes(),
            clean_corpus->assets[0].container.video.TotalBytes());
}

TEST(RecordedCorpusTest, DuplicateCorpusReplicatesFirstVideo) {
  RecordedCorpusConfig config;
  config.video_count = 2;
  config.width = 64;
  config.height = 36;
  config.duration_seconds = 0.5;
  video::codec::EncoderConfig codec;
  auto source = GenerateRecordedCorpus(config, codec);
  ASSERT_TRUE(source.ok());
  Dataset duplicates = MakeDuplicateCorpus(*source, 5);
  ASSERT_EQ(duplicates.assets.size(), 5u);
  for (const VideoAsset& asset : duplicates.assets) {
    EXPECT_EQ(asset.container.video.TotalBytes(),
              source->assets[0].container.video.TotalBytes());
  }
}

TEST(RecordedCorpusTest, RandomCorpusMatchesShapeAndHasNoObjects) {
  RecordedCorpusConfig config;
  config.video_count = 2;
  config.width = 64;
  config.height = 36;
  config.duration_seconds = 0.5;
  video::codec::EncoderConfig codec;
  auto source = GenerateRecordedCorpus(config, codec);
  ASSERT_TRUE(source.ok());
  auto random = MakeRandomCorpus(*source, codec, 17);
  ASSERT_TRUE(random.ok());
  ASSERT_EQ(random->assets.size(), 2u);
  for (size_t i = 0; i < random->assets.size(); ++i) {
    EXPECT_EQ(random->assets[i].container.video.FrameCount(),
              source->assets[i].container.video.FrameCount());
    for (const FrameGroundTruth& frame : random->assets[i].ground_truth) {
      EXPECT_TRUE(frame.boxes.empty());
    }
    // Noise resists compression: bigger than the structured original.
    EXPECT_GT(random->assets[i].container.video.TotalBytes(),
              source->assets[i].container.video.TotalBytes());
  }
}

}  // namespace
}  // namespace visualroad::sim
