// Tests for the semantic result store (src/queries/semantic_cache.h) and the
// measured-selectivity planner (src/queries/plan.h), plus the engine-level
// guarantees the pair provides: a warm cache answers a repeated Q2(c) with
// zero decoder invocations and byte-identical output, and cached detections
// are shared across queries.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "driver/datasets.h"
#include "queries/plan.h"
#include "queries/semantic_cache.h"
#include "storage/sharded_store.h"
#include "systems/vdbms.h"
#include "video/codec/gop_cache.h"

namespace visualroad::queries {
namespace {

namespace fs = std::filesystem;

SemanticKey TestKey(double threshold = 0.0, const std::string& model = "model-a") {
  SemanticKey key;
  key.stream = 0x1234;
  key.model = model;
  key.threshold = threshold;
  return key;
}

// One synthetic detection per frame whose box encodes the absolute frame
// number, so slices are checkable.
SemanticEntry MakeEntry(const SemanticKey& key, int first, int count) {
  SemanticEntry entry;
  entry.key = key;
  entry.range = {first, count};
  entry.width = 64;
  entry.height = 36;
  entry.fps = 15.0;
  for (int f = first; f < first + count; ++f) {
    vision::Detection det;
    det.box = RectI{f, 0, f + 1, 1};
    det.score = 0.9;
    entry.detections.push_back({det});
  }
  entry.RecomputeBytes();
  return entry;
}

// --- Range subsumption ---

TEST(SemanticCacheTest, ContainedRangeIsServedFromCoveringEntry) {
  SemanticCache cache;
  cache.Insert(MakeEntry(TestKey(), 0, 60));
  auto hit = cache.Probe(TestKey(), {10, 20});
  ASSERT_NE(hit, nullptr);
  auto slice = SemanticCache::Slice(*hit, {10, 20});
  ASSERT_EQ(slice.size(), 20u);
  // Slice frame i is absolute frame 10 + i.
  EXPECT_EQ(slice[0][0].box.x0, 10);
  EXPECT_EQ(slice[19][0].box.x0, 29);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(SemanticCacheTest, AdjacentButNotOverlappingRangeMisses) {
  SemanticCache cache;
  cache.Insert(MakeEntry(TestKey(), 0, 60));
  // [60,120) merely touches [0,60); subsumption must not claim it.
  EXPECT_EQ(cache.Probe(TestKey(), {60, 60}), nullptr);
  // A range straddling the boundary is not fully covered either.
  EXPECT_EQ(cache.Probe(TestKey(), {50, 20}), nullptr);
  // The contained edge case still hits: [59,1) is inside.
  EXPECT_NE(cache.Probe(TestKey(), {59, 1}), nullptr);
}

// --- Key discrimination ---

TEST(SemanticCacheTest, ThresholdMismatchMissesInBothDirections) {
  SemanticCache cache;
  cache.Insert(MakeEntry(TestKey(0.25), 0, 60));
  // A stricter probe must not reuse a looser materialization...
  EXPECT_EQ(cache.Probe(TestKey(0.50), {0, 10}), nullptr);
  // ...and a looser probe must not reuse a stricter one.
  cache.Insert(MakeEntry(TestKey(0.50), 0, 60));
  EXPECT_EQ(cache.Probe(TestKey(0.10), {0, 10}), nullptr);
  // Exact threshold still matches.
  EXPECT_NE(cache.Probe(TestKey(0.25), {0, 10}), nullptr);
  EXPECT_NE(cache.Probe(TestKey(0.50), {0, 10}), nullptr);
}

TEST(SemanticCacheTest, ModelVersionBumpInvalidatesOldEntries) {
  vision::DetectorOptions options;
  std::string v1 = ModelFingerprint(options, "miniyolo", /*version=*/1);
  std::string v2 = ModelFingerprint(options, "miniyolo", /*version=*/2);
  ASSERT_NE(v1, v2);

  SemanticCache cache;
  cache.Insert(MakeEntry(TestKey(0.0, v1), 0, 60));
  // Redeploying the model (version bump) must never serve v1's outputs.
  EXPECT_EQ(cache.Probe(TestKey(0.0, v2), {0, 10}), nullptr);
  EXPECT_NE(cache.Probe(TestKey(0.0, v1), {0, 10}), nullptr);
}

TEST(SemanticCacheTest, FingerprintCoversDetectorConfiguration) {
  vision::DetectorOptions base;
  vision::DetectorOptions resized = base;
  resized.input_size = 224;
  EXPECT_NE(ModelFingerprint(base, "miniyolo"), ModelFingerprint(resized, "miniyolo"));
  EXPECT_NE(ModelFingerprint(base, "miniyolo"), ModelFingerprint(base, "cascade48+96"));
}

// --- Single-flight population ---

TEST(SemanticCacheTest, SingleFlightRunsComputeOnce) {
  SemanticCache cache;
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<SemanticCache::Outcome> outcomes(kThreads);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        auto result = cache.GetOrCompute(
            TestKey(), {0, 30},
            [&]() -> StatusOr<SemanticEntry> {
              ++computes;
              std::this_thread::sleep_for(std::chrono::milliseconds(20));
              return MakeEntry(TestKey(), 0, 30);
            },
            &outcomes[i]);
        ASSERT_TRUE(result.ok());
        EXPECT_TRUE((*result)->range.Contains(FrameRange{0, 30}));
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(computes.load(), 1);
  int misses = 0;
  for (auto outcome : outcomes) {
    if (outcome == SemanticCache::Outcome::kMiss) ++misses;
  }
  EXPECT_EQ(misses, 1);
}

// --- Incremental maintenance (merge-on-insert) ---

TEST(SemanticCacheTest, AdjacentInsertExtendsExistingEntry) {
  SemanticCache cache;
  cache.Insert(MakeEntry(TestKey(), 0, 30));
  cache.Insert(MakeEntry(TestKey(), 30, 30));
  SemanticCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.extensions, 1);
  EXPECT_EQ(stats.entries, 1);
  // The merged entry answers the combined range, with frames in order.
  auto hit = cache.Probe(TestKey(), {0, 60});
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->detections.size(), 60u);
  EXPECT_EQ(hit->detections[45][0].box.x0, 45);
}

TEST(SemanticCacheTest, OverlappingInsertMergesWithoutDuplication) {
  SemanticCache cache;
  cache.Insert(MakeEntry(TestKey(), 0, 40));
  cache.Insert(MakeEntry(TestKey(), 20, 40));  // Overlaps [20,40).
  auto hit = cache.Probe(TestKey(), {0, 60});
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->detections.size(), 60u);
  EXPECT_EQ(hit->detections[30][0].box.x0, 30);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(SemanticCacheTest, CoveredInsertIsANoOpBeyondRecency) {
  SemanticCache cache;
  cache.Insert(MakeEntry(TestKey(), 0, 60));
  cache.Insert(MakeEntry(TestKey(), 10, 10));
  SemanticCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
}

// --- Byte budget / LRU ---

TEST(SemanticCacheTest, LeastRecentlyUsedEntryIsEvictedOverBudget) {
  SemanticEntry a = MakeEntry(TestKey(0.0, "model-a"), 0, 50);
  SemanticEntry b = MakeEntry(TestKey(0.0, "model-b"), 0, 50);
  SemanticEntry c = MakeEntry(TestKey(0.0, "model-c"), 0, 50);

  SemanticCacheOptions options;
  options.capacity_bytes = a.bytes + b.bytes + c.bytes / 2;
  SemanticCache cache(options);
  cache.Insert(a);
  cache.Insert(b);
  // Touch a so b becomes the LRU victim.
  EXPECT_NE(cache.Probe(TestKey(0.0, "model-a"), {0, 10}), nullptr);
  cache.Insert(c);
  EXPECT_GE(cache.stats().evictions, 1);
  EXPECT_NE(cache.Probe(TestKey(0.0, "model-a"), {0, 10}), nullptr);
  EXPECT_EQ(cache.Probe(TestKey(0.0, "model-b"), {0, 10}), nullptr);
  EXPECT_NE(cache.Probe(TestKey(0.0, "model-c"), {0, 10}), nullptr);
}

// --- Persistence ---

TEST(SemanticCacheTest, PersistAndLoadRoundTripThroughShardedStore) {
  std::string root =
      (fs::temp_directory_path() / "vr_semcache_persist_test").string();
  fs::remove_all(root);
  storage::StoreOptions store_options;
  store_options.root = root;
  auto store = storage::ShardedStore::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  SemanticCacheOptions options;
  options.store = &*store;
  {
    SemanticCache cache(options);
    cache.Insert(MakeEntry(TestKey(0.25), 0, 60));
    cache.Insert(MakeEntry(TestKey(0.0, "model-b"), 30, 30));
    ASSERT_TRUE(cache.Persist().ok());
    EXPECT_EQ(cache.stats().persisted, 2);
  }
  SemanticCache recovered(options);
  ASSERT_TRUE(recovered.LoadPersisted().ok());
  EXPECT_EQ(recovered.stats().loaded, 2);
  auto hit = recovered.Probe(TestKey(0.25), {5, 40});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->width, 64);
  EXPECT_EQ(hit->fps, 15.0);
  auto slice = SemanticCache::Slice(*hit, {5, 40});
  ASSERT_EQ(slice.size(), 40u);
  EXPECT_EQ(slice[0][0].box.x0, 5);
  EXPECT_DOUBLE_EQ(slice[0][0].score, 0.9);
  EXPECT_NE(recovered.Probe(TestKey(0.0, "model-b"), {40, 10}), nullptr);
  fs::remove_all(root);
}

// --- Peek is side-effect free ---

TEST(SemanticCacheTest, PeekMovesNoStatsAndKeepsLruOrder) {
  SemanticCache cache;
  cache.Insert(MakeEntry(TestKey(), 0, 60));
  SemanticCacheStats before = cache.stats();
  EXPECT_NE(cache.Peek(TestKey(), {0, 10}), nullptr);
  EXPECT_EQ(cache.Peek(TestKey(), {60, 10}), nullptr);
  SemanticCacheStats after = cache.stats();
  EXPECT_EQ(before.hits, after.hits);
  EXPECT_EQ(before.misses, after.misses);
}

// --- Planner ---

class PlannerTest : public ::testing::Test {
 protected:
  PlanContext Context() {
    PlanContext context;
    context.meta.identity = 0x1234;
    context.meta.frame_count = 150;
    context.meta.width = 64;
    context.meta.height = 36;
    context.meta.fps = 15.0;
    return context;
  }

  QueryInstance Q2c() {
    QueryInstance instance;
    instance.id = QueryId::kQ2c;
    instance.object_class = sim::ObjectClass::kVehicle;
    return instance;
  }
};

TEST_F(PlannerTest, UnmeasuredStagesKeepStaticOrder) {
  PlanContext context = Context();
  context.stages = {"diff", "cheap", "full"};
  QueryPlan plan = PlanQuery(Q2c(), context);
  ASSERT_EQ(plan.stages.size(), 3u);
  EXPECT_EQ(plan.stages[0].name, "diff");
  EXPECT_EQ(plan.stages[1].name, "cheap");
  EXPECT_EQ(plan.stages[2].name, "full");
  for (const PlanStage& stage : plan.stages) EXPECT_TRUE(stage.enabled);
}

TEST_F(PlannerTest, UselessPrefilterIsDisabledOnlyWhenWellMeasured) {
  SelectivityTracker tracker;
  PlanContext context = Context();
  context.tracker = &tracker;
  context.stages = {"cheap", "full"};

  // Below kMinMeasuredAttempts the zero selectivity is treated as noise.
  tracker.Record("cheap", kMinMeasuredAttempts - 1, 0, 0.01);
  QueryPlan plan = PlanQuery(Q2c(), context);
  EXPECT_TRUE(plan.stages[0].enabled);

  // One more attempt crosses the confidence floor: now it is disabled.
  tracker.Record("cheap", 1, 0, 0.001);
  plan = PlanQuery(Q2c(), context);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_EQ(plan.stages[0].name, "cheap");
  EXPECT_FALSE(plan.stages[0].enabled);
  // The anchor stage always survives.
  EXPECT_TRUE(plan.stages[1].enabled);
}

TEST_F(PlannerTest, PrefiltersAreOrderedByCostPerResolvedFrame) {
  SelectivityTracker tracker;
  // "coarse" resolves 80% at 10us/frame (12.5us per resolved frame);
  // "fine" resolves 90% at 100us/frame (111us per resolved frame).
  tracker.Record("fine", 100, 90, 100e-6 * 100);
  tracker.Record("coarse", 100, 80, 10e-6 * 100);
  PlanContext context = Context();
  context.tracker = &tracker;
  context.stages = {"fine", "coarse", "anchor"};
  QueryPlan plan = PlanQuery(Q2c(), context);
  ASSERT_EQ(plan.stages.size(), 3u);
  EXPECT_EQ(plan.stages[0].name, "coarse");
  EXPECT_EQ(plan.stages[1].name, "fine");
  EXPECT_EQ(plan.stages[2].name, "anchor");
}

TEST_F(PlannerTest, TemporalPushdownTrimsTheDecodeWindow) {
  QueryInstance q1;
  q1.id = QueryId::kQ1;
  q1.q1_t1 = 2.0;
  q1.q1_t2 = 4.0;
  PlanContext context = Context();
  QueryPlan plan = PlanQuery(q1, context);
  EXPECT_EQ(plan.first_frame, 30);
  EXPECT_EQ(plan.first_frame + plan.frame_count, 60);

  // An engine that decodes eagerly must not claim the trimmed window.
  context.temporal_pushdown = false;
  plan = PlanQuery(q1, context);
  EXPECT_EQ(plan.first_frame, 0);
  EXPECT_EQ(plan.frame_count, 150);
}

TEST_F(PlannerTest, WarmCacheCollapsesThePlanToALookup) {
  SemanticCache cache;
  SemanticKey key = TestKey();
  key.stream = 0x1234;
  PlanContext context = Context();
  context.cache = &cache;
  context.key = key;
  context.stages = {"miniyolo96"};

  QueryPlan cold = PlanQuery(Q2c(), context);
  EXPECT_TRUE(cold.semcache_enabled);
  EXPECT_FALSE(cold.semcache_warm);
  std::string cold_text = ExplainPlan(cold);
  EXPECT_NE(cold_text.find("semcache=cold"), std::string::npos);

  cache.Insert(MakeEntry(key, 0, 150));
  QueryPlan warm = PlanQuery(Q2c(), context);
  EXPECT_TRUE(warm.semcache_warm);
  EXPECT_EQ(warm.frame_count, 0);  // No decode needed.
  std::string warm_text = ExplainPlan(warm);
  EXPECT_NE(warm_text.find("semcache=warm"), std::string::npos);
  EXPECT_NE(warm_text.find("decode=skipped"), std::string::npos);
}

// --- Engine-level guarantees ---

class SemCacheEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::CityConfig config;
    config.scale_factor = 1;
    config.width = 96;
    config.height = 54;
    config.duration_seconds = 1.0;
    config.fps = 15;
    config.seed = 47;
    auto dataset = driver::PrepareDataset(config);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new sim::Dataset(std::move(dataset).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static QueryInstance Q2c() {
    QueryInstance instance;
    instance.id = QueryId::kQ2c;
    instance.video_index = 0;
    instance.object_class = sim::ObjectClass::kVehicle;
    return instance;
  }

  static sim::Dataset* dataset_;
};

sim::Dataset* SemCacheEngineTest::dataset_ = nullptr;

TEST_F(SemCacheEngineTest, WarmQ2cDecodesNothingAndMatchesCacheOffByteForByte) {
  video::codec::GopCache off_gops, on_gops;
  SemanticCache semcache;

  systems::EngineOptions off_options;
  off_options.gop_cache = &off_gops;
  auto engine_off = systems::MakePipelineEngine(off_options);

  systems::EngineOptions on_options;
  on_options.gop_cache = &on_gops;
  on_options.semantic_cache = &semcache;
  auto engine_on = systems::MakePipelineEngine(on_options);

  auto baseline = engine_off->Execute(Q2c(), *dataset_,
                                      systems::OutputMode::kWrite, "");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  systems::EngineStats cold_stats;
  auto cold = engine_on->Execute(Q2c(), *dataset_, systems::OutputMode::kWrite,
                                 "", &cold_stats);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold_stats.frames_decoded, 0);

  // Drop decoded GOPs so a decode on the warm path would be visible in the
  // codec counters rather than absorbed by the GOP cache.
  on_gops.Clear();
  systems::EngineStats warm_stats;
  auto warm = engine_on->Execute(Q2c(), *dataset_, systems::OutputMode::kWrite,
                                 "", &warm_stats);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Zero decoder invocations on the warm path.
  EXPECT_EQ(warm_stats.frames_decoded, 0);
  EXPECT_EQ(warm_stats.cache_misses, 0);
  EXPECT_EQ(semcache.stats().hits, 1);

  // Byte-identical output bitstream and identical detections vs cache off.
  ASSERT_EQ(warm->video.FrameCount(), baseline->video.FrameCount());
  for (int f = 0; f < warm->video.FrameCount(); ++f) {
    EXPECT_EQ(warm->video.frames[static_cast<size_t>(f)].data,
              baseline->video.frames[static_cast<size_t>(f)].data)
        << "frame " << f;
  }
  ASSERT_EQ(warm->detections.size(), baseline->detections.size());
  for (size_t f = 0; f < warm->detections.size(); ++f) {
    ASSERT_EQ(warm->detections[f].size(), baseline->detections[f].size());
    for (size_t d = 0; d < warm->detections[f].size(); ++d) {
      EXPECT_EQ(warm->detections[f][d].score, baseline->detections[f][d].score);
      EXPECT_EQ(warm->detections[f][d].box.x0, baseline->detections[f][d].box.x0);
    }
  }
}

TEST_F(SemCacheEngineTest, Q7ReusesQ2cDetectionsAcrossQueries) {
  video::codec::GopCache gops;
  SemanticCache semcache;
  systems::EngineOptions options;
  options.gop_cache = &gops;
  options.semantic_cache = &semcache;
  auto engine = systems::MakePipelineEngine(options);

  auto boxes = engine->Execute(Q2c(), *dataset_, systems::OutputMode::kStreaming, "");
  ASSERT_TRUE(boxes.ok()) << boxes.status().ToString();
  ASSERT_EQ(semcache.stats().misses, 1);

  QueryInstance q7;
  q7.id = QueryId::kQ7;
  q7.video_index = 0;
  q7.object_class = sim::ObjectClass::kVehicle;
  // Drop decoded GOPs so Q7's pixel work shows up as real decodes.
  gops.Clear();
  systems::EngineStats q7_stats;
  auto masked = engine->Execute(q7, *dataset_, systems::OutputMode::kStreaming,
                                "", &q7_stats);
  ASSERT_TRUE(masked.ok()) << masked.status().ToString();
  // Q7 still decodes (it masks real pixels) but runs no full-model CNN:
  // the detections come from Q2(c)'s materialization.
  EXPECT_GT(q7_stats.frames_decoded, 0);
  EXPECT_EQ(q7_stats.cnn_frames_full, 0);
  EXPECT_EQ(semcache.stats().hits, 1);
}

TEST_F(SemCacheEngineTest, ExplainReportsCacheTemperature) {
  video::codec::GopCache gops;
  SemanticCache semcache;
  systems::EngineOptions options;
  options.gop_cache = &gops;
  options.semantic_cache = &semcache;
  auto engine = systems::MakePipelineEngine(options);

  std::string cold = engine->Explain(Q2c(), *dataset_);
  EXPECT_NE(cold.find("semcache=cold"), std::string::npos) << cold;

  ASSERT_TRUE(
      engine->Execute(Q2c(), *dataset_, systems::OutputMode::kStreaming, "").ok());
  std::string warm = engine->Explain(Q2c(), *dataset_);
  EXPECT_NE(warm.find("semcache=warm"), std::string::npos) << warm;
  EXPECT_NE(warm.find("decode=skipped"), std::string::npos) << warm;

  // Explain is a Peek: repeating it moved no hit/miss counters beyond the
  // one miss the executed query recorded.
  EXPECT_EQ(semcache.stats().misses, 1);
  EXPECT_EQ(semcache.stats().hits, 0);
}

}  // namespace
}  // namespace visualroad::queries
