// End-to-end integration tests: the full benchmark loop as a user would run
// it — generate, benchmark, validate, report — plus cross-cutting
// determinism guarantees the paper's reproducibility story rests on.

#include <gtest/gtest.h>

#include "driver/conformance.h"
#include "driver/datasets.h"
#include "driver/report.h"
#include "driver/vcd.h"

namespace visualroad {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::CityConfig config;
    config.scale_factor = 1;
    config.width = 96;
    config.height = 54;
    config.duration_seconds = 1.0;
    config.fps = 15;
    config.seed = 51;
    auto dataset = driver::PrepareDataset(config);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new sim::Dataset(std::move(dataset).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static sim::Dataset* dataset_;
};

sim::Dataset* IntegrationTest::dataset_ = nullptr;

TEST_F(IntegrationTest, FullBenchmarkOnPipelineEngineConforms) {
  driver::VcdOptions options;
  options.batch_size_override = 2;  // Keep the full Q1..Q10 loop fast.
  options.sampler.max_upsample_exponent = 2;
  driver::VisualCityDriver vcd(*dataset_, options);
  auto engine = systems::MakePipelineEngine({});
  auto results = vcd.RunBenchmark(*engine);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), static_cast<size_t>(queries::kQueryCount));

  driver::ConformanceReport report = driver::BuildConformanceReport(
      *dataset_, options, engine->name(), *results);
  EXPECT_TRUE(report.Passed()) << driver::FormatConformanceReport(report);
  EXPECT_EQ(report.SupportedQueryCount(), queries::kQueryCount);

  // The published form round-trips.
  auto parsed =
      driver::ParseConformanceReport(driver::SerializeConformanceReport(report));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Passed());
  EXPECT_EQ(parsed->results.size(), report.results.size());
}

TEST_F(IntegrationTest, CascadeEngineConformsOnItsSubset) {
  driver::VcdOptions options;
  options.batch_size_override = 2;
  driver::VisualCityDriver vcd(*dataset_, options);
  auto engine = systems::MakeCascadeEngine({});
  auto results = vcd.RunBenchmark(*engine);
  ASSERT_TRUE(results.ok());
  driver::ConformanceReport report = driver::BuildConformanceReport(
      *dataset_, options, engine->name(), *results);
  // Partial support is conformant (systems "may select specific applicable
  // queries", Section 1) — unsupported queries don't fail the report.
  EXPECT_TRUE(report.Passed());
  EXPECT_EQ(report.SupportedQueryCount(), 2);
}

TEST_F(IntegrationTest, OnlineModeGatesOnIngestTime) {
  driver::VcdOptions offline_options;
  offline_options.batch_size_override = 2;
  offline_options.validate = false;
  driver::VcdOptions online_options = offline_options;
  online_options.execution_mode = systems::ExecutionMode::kOnline;
  // 15 frames at 15 fps = 1 simulated second per instance; 50x real time
  // means the ingest gate alone costs ~20 ms/instance.
  online_options.online_rate_multiplier = 50.0;

  auto engine = systems::MakePipelineEngine({});
  driver::VisualCityDriver offline_vcd(*dataset_, offline_options);
  auto offline_result = offline_vcd.RunQueryBatch(*engine, queries::QueryId::kQ5);
  ASSERT_TRUE(offline_result.ok());
  engine->Quiesce();
  driver::VisualCityDriver online_vcd(*dataset_, online_options);
  auto online_result = online_vcd.RunQueryBatch(*engine, queries::QueryId::kQ5);
  ASSERT_TRUE(online_result.ok());
  // The online batch must include the throttled ingest: at least ~2 x 20ms.
  EXPECT_GT(online_result->total_seconds,
            offline_result->total_seconds + 0.025);
}

TEST(DeterminismTest, IdenticalConfigurationsProduceIdenticalDatasets) {
  // The paper's reproducibility contract: "By using the same configuration,
  // competing VDBMSs can reproduce the identical dataset" (Section 3.1).
  sim::CityConfig config;
  config.scale_factor = 2;
  config.width = 64;
  config.height = 36;
  config.duration_seconds = 0.5;
  config.fps = 16;
  config.seed = 777;
  sim::GeneratorOptions options;
  options.codec.qp = 24;
  sim::VisualCityGenerator a(options), b(options);
  auto da = a.Generate(config);
  auto db = b.Generate(config);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(da->assets.size(), db->assets.size());
  for (size_t i = 0; i < da->assets.size(); ++i) {
    // Bit-exact bitstreams, not just equal sizes.
    ASSERT_EQ(da->assets[i].container.video.frames.size(),
              db->assets[i].container.video.frames.size());
    for (size_t f = 0; f < da->assets[i].container.video.frames.size(); ++f) {
      EXPECT_EQ(da->assets[i].container.video.frames[f].data,
                db->assets[i].container.video.frames[f].data);
    }
    // Ground truth identical too.
    EXPECT_EQ(sim::SerializeGroundTruth(da->assets[i].ground_truth),
              sim::SerializeGroundTruth(db->assets[i].ground_truth));
  }
}

TEST(DeterminismTest, QueryBatchesIdenticalAcrossEnginesAndRuns) {
  sim::CityConfig config;
  config.scale_factor = 1;
  config.width = 64;
  config.height = 36;
  config.duration_seconds = 0.5;
  config.fps = 16;
  config.seed = 778;
  auto dataset = driver::PrepareDataset(config);
  ASSERT_TRUE(dataset.ok());
  driver::VcdOptions options;
  driver::VisualCityDriver vcd_a(*dataset, options), vcd_b(*dataset, options);
  for (queries::QueryId id : queries::AllQueries()) {
    auto batch_a = vcd_a.SampleBatch(id);
    auto batch_b = vcd_b.SampleBatch(id);
    ASSERT_TRUE(batch_a.ok());
    ASSERT_TRUE(batch_b.ok());
    ASSERT_EQ(batch_a->size(), batch_b->size());
    for (size_t i = 0; i < batch_a->size(); ++i) {
      EXPECT_EQ((*batch_a)[i].video_index, (*batch_b)[i].video_index);
      EXPECT_EQ((*batch_a)[i].q1_rect, (*batch_b)[i].q1_rect);
      EXPECT_EQ((*batch_a)[i].q2b_d, (*batch_b)[i].q2b_d);
      EXPECT_EQ((*batch_a)[i].q8_plate, (*batch_b)[i].q8_plate);
    }
  }
}

TEST(DeterminismTest, EnginesAgreeOnFrameValidatedOutputs) {
  // Both general engines must produce results that validate against the
  // same reference — the VDBMS-agnostic query specification in action.
  sim::CityConfig config;
  config.scale_factor = 1;
  config.width = 64;
  config.height = 36;
  config.duration_seconds = 0.5;
  config.fps = 16;
  config.seed = 779;
  auto dataset = driver::PrepareDataset(config);
  ASSERT_TRUE(dataset.ok());
  driver::VcdOptions options;
  options.batch_size_override = 2;
  driver::VisualCityDriver vcd(*dataset, options);
  for (queries::QueryId id : {queries::QueryId::kQ1, queries::QueryId::kQ2a,
                              queries::QueryId::kQ5, queries::QueryId::kQ6a}) {
    for (auto make : {systems::MakeBatchEngine, systems::MakePipelineEngine}) {
      auto engine = make({});
      auto result = vcd.RunQueryBatch(*engine, id);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->failed, 0) << queries::QueryName(id);
      EXPECT_GT(result->validation.checked, 0) << queries::QueryName(id);
      EXPECT_EQ(result->validation.passed, result->validation.checked)
          << queries::QueryName(id) << " on " << engine->name();
    }
  }
}

}  // namespace
}  // namespace visualroad
