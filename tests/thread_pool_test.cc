#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace visualroad {
namespace {

// Regression: a throwing task used to escape the worker thread, which calls
// std::terminate; an aborted decrement also stranded the in-flight counter so
// Wait() deadlocked. Now the exception becomes the Status Wait() returns.
TEST(ThreadPoolTest, ThrowingTaskSurfacesStatusAndWaitReturns) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("boom"), std::string::npos);

  // The pool is still usable: the worker survived and the error was cleared.
  std::atomic<int> ran{0};
  pool.Submit([&] { ++ran; });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, NonStandardExceptionIsAlsoCaptured) {
  ThreadPool pool(1);
  pool.Submit([] { throw 42; });
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ThreadPoolTest, WaitReturnsOnlyTheFirstErrorThenClears) {
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::runtime_error("second"); });
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("first"), std::string::npos);
  EXPECT_TRUE(pool.Wait().ok());
}

TEST(ThreadPoolTest, ParallelForStatusReturnsTheFailingIndexError) {
  ThreadPool pool(4);
  Status status = pool.ParallelForStatus(
      100,
      [](int i) {
        if (i == 57) return Status::InvalidArgument("index 57 rejected");
        return Status::Ok();
      },
      /*grain=*/1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("index 57"), std::string::npos);
}

TEST(ThreadPoolTest, ParallelForStatusConvertsExceptionsToInternal) {
  ThreadPool pool(4);
  Status status = pool.ParallelForStatus(
      64,
      [](int i) -> Status {
        if (i == 9) throw std::runtime_error("kernel fault");
        return Status::Ok();
      },
      /*grain=*/4);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("kernel fault"), std::string::npos);
}

TEST(ThreadPoolTest, SingleThreadFailureReportsLowestIndex) {
  // With one worker, chunks run in submission order, so the lowest failing
  // index is reported and later chunks are skipped.
  ThreadPool pool(1);
  std::atomic<int> bodies_run{0};
  Status status = pool.ParallelForStatus(
      100,
      [&](int i) {
        ++bodies_run;
        return Status::Internal("fail at " + std::to_string(i));
      },
      /*grain=*/1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("fail at 0"), std::string::npos);
  // Everything after the first failing chunk was skipped.
  EXPECT_EQ(bodies_run.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversTenThousandIndicesExactlyOnce) {
  ThreadPool pool(8);
  constexpr int kCount = 10000;
  std::atomic<int64_t> checksum{0};
  std::atomic<int> calls{0};
  pool.ParallelFor(kCount, [&](int i) {
    checksum += i;
    ++calls;
  });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(calls.load(), kCount);
  EXPECT_EQ(checksum.load(), static_cast<int64_t>(kCount) * (kCount - 1) / 2);
}

TEST(ThreadPoolTest, ExplicitGrainCoversEveryIndexOnce) {
  ThreadPool pool(3);
  constexpr int kCount = 101;  // Not divisible by the grain.
  std::vector<std::atomic<int>> visits(kCount);
  Status status = pool.ParallelForStatus(
      kCount,
      [&](int i) {
        ++visits[static_cast<size_t>(i)];
        return Status::Ok();
      },
      /*grain=*/7);
  EXPECT_TRUE(status.ok());
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForVoidParksErrorForNextWait) {
  ThreadPool pool(2);
  pool.ParallelFor(10, [](int i) {
    if (i == 3) throw std::runtime_error("void body threw");
  });
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("void body threw"), std::string::npos);
}

TEST(ThreadPoolTest, ConcurrentCallersKeepTheirOwnErrors) {
  // Two external threads drive ParallelForStatus on one pool at once; each
  // must get its own result — completion tracking is per call, not global.
  ThreadPool pool(4);
  Status ok_result = Status::Internal("unset");
  Status fail_result;
  std::thread succeeding([&] {
    ok_result = pool.ParallelForStatus(
        500, [](int) { return Status::Ok(); }, /*grain=*/1);
  });
  std::thread failing([&] {
    fail_result = pool.ParallelForStatus(
        500,
        [](int i) {
          if (i % 97 == 13) return Status::DataLoss("alpha");
          return Status::Ok();
        },
        /*grain=*/1);
  });
  succeeding.join();
  failing.join();
  EXPECT_TRUE(ok_result.ok());
  ASSERT_FALSE(fail_result.ok());
  EXPECT_NE(fail_result.ToString().find("alpha"), std::string::npos);
  // The pool-level error slot belongs to Submit()/ParallelFor users; the
  // routed ParallelForStatus failure must not leak into it.
  EXPECT_TRUE(pool.Wait().ok());
}

TEST(ThreadPoolTest, ManySubmittersAndWaitersStress) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 250;
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int t = 0; t < kTasksEach; ++t) {
        pool.Submit([&] { ++executed; });
      }
      // Waiting from several threads concurrently must be safe.
      EXPECT_TRUE(pool.Wait().ok());
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolTest, StatsCountSubmissionsExecutionsAndFailures) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] {});
  }
  pool.Submit([] { throw std::runtime_error("counted"); });
  EXPECT_FALSE(pool.Wait().ok());
  PoolStats stats = pool.stats();
  EXPECT_EQ(stats.tasks_submitted, 9);
  EXPECT_EQ(stats.tasks_executed, 9);
  EXPECT_EQ(stats.tasks_failed, 1);
  EXPECT_GE(stats.queue_peak, 1);
  EXPECT_GE(stats.busy_seconds, 0.0);
}

TEST(ThreadPoolTest, DefaultGrainBatchesChunks) {
  // grain=0 picks roughly count / (threads * 4), so 10k indices on 2 threads
  // must produce far fewer tasks than indices.
  ThreadPool pool(2);
  EXPECT_TRUE(
      pool.ParallelForStatus(10000, [](int) { return Status::Ok(); }).ok());
  PoolStats stats = pool.stats();
  EXPECT_GT(stats.tasks_submitted, 0);
  EXPECT_LE(stats.tasks_submitted, 64);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  EXPECT_TRUE(pool.ParallelForStatus(0, [&](int) {
                    ++calls;
                    return Status::Ok();
                  }).ok());
  EXPECT_TRUE(pool.ParallelForStatus(-5, [&](int) {
                    ++calls;
                    return Status::Ok();
                  }).ok());
  EXPECT_EQ(calls.load(), 0);
}

}  // namespace
}  // namespace visualroad
