#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "video/codec/codec.h"
#include "video/codec/gop_cache.h"
#include "video/metrics.h"

namespace visualroad::video::codec {
namespace {

Video MakeVideo(int w, int h, int frames, uint64_t seed) {
  Video v;
  v.fps = 15;
  for (int f = 0; f < frames; ++f) {
    Frame frame(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double value =
            128 + 80 * std::sin((x + f * 3 + static_cast<int>(seed)) * 0.13) *
                      std::cos((y + f) * 0.09);
        frame.SetPixel(x, y, static_cast<uint8_t>(value), 120, 130);
      }
    }
    v.frames.push_back(std::move(frame));
  }
  return v;
}

EncodedVideo EncodeOrDie(const Video& video, int gop_length) {
  EncoderConfig config;
  config.qp = 24;
  config.gop_length = gop_length;
  auto encoded = Encode(video, config);
  EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
  return *encoded;
}

TEST(GopCacheTest, StreamIdentityDistinguishesContent) {
  EncodedVideo a = EncodeOrDie(MakeVideo(32, 32, 4, 1), 4);
  EncodedVideo b = EncodeOrDie(MakeVideo(32, 32, 4, 2), 4);
  EXPECT_EQ(StreamIdentity(a), StreamIdentity(a));
  EXPECT_NE(StreamIdentity(a), StreamIdentity(b));
  // A single payload byte must change the identity.
  EncodedVideo c = a;
  ASSERT_FALSE(c.frames[1].data.empty());
  c.frames[1].data[0] ^= 1;
  EXPECT_NE(StreamIdentity(a), StreamIdentity(c));
}

TEST(GopCacheTest, GopStartsAreKeyframes) {
  EncodedVideo encoded = EncodeOrDie(MakeVideo(32, 32, 10, 3), 4);
  std::vector<int> starts = GopStarts(encoded);
  ASSERT_EQ(starts.size(), 3u);  // Frames 0, 4, 8.
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 4);
  EXPECT_EQ(starts[2], 8);
}

TEST(GopCacheTest, CachedDecodeMatchesDecode) {
  EncodedVideo encoded = EncodeOrDie(MakeVideo(48, 32, 11, 4), 4);
  auto plain = Decode(encoded);
  ASSERT_TRUE(plain.ok());
  GopCache cache;
  GopCacheCounters counters;
  auto cached = CachedDecode(encoded, cache, &counters);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  ASSERT_EQ(cached->FrameCount(), plain->FrameCount());
  for (int i = 0; i < plain->FrameCount(); ++i) {
    EXPECT_TRUE(cached->frames[static_cast<size_t>(i)].SameContentAs(
        plain->frames[static_cast<size_t>(i)]));
  }
  EXPECT_EQ(counters.misses.load(), 3);  // One per GOP.
  EXPECT_EQ(counters.hits.load(), 0);
  EXPECT_EQ(counters.frames_decoded.load(), 11);

  // The second pass is all hits — and still correct.
  auto again = CachedDecode(encoded, cache, &counters);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(counters.hits.load(), 3);
  EXPECT_EQ(counters.misses.load(), 3);
  GopCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.entries, 3);
  EXPECT_GT(stats.bytes_in_use, 0);
}

TEST(GopCacheTest, CachedDecodeRangeTrimsToWindow) {
  EncodedVideo encoded = EncodeOrDie(MakeVideo(48, 32, 12, 5), 4);
  auto full = Decode(encoded);
  ASSERT_TRUE(full.ok());
  GopCache cache;
  // [3, 9) spans GOPs starting at 0, 4, and 8.
  auto range = CachedDecodeRange(encoded, 3, 6, cache);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  ASSERT_EQ(range->FrameCount(), 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(range->frames[static_cast<size_t>(i)].SameContentAs(
        full->frames[static_cast<size_t>(3 + i)]));
  }
  EXPECT_EQ(cache.stats().entries, 3);
  EXPECT_FALSE(CachedDecodeRange(encoded, 8, 5, cache).ok());
  EXPECT_FALSE(CachedDecodeRange(encoded, -1, 2, cache).ok());
}

TEST(GopCacheTest, EvictsLeastRecentlyUsedFirst) {
  EncodedVideo encoded = EncodeOrDie(MakeVideo(32, 32, 12, 6), 4);
  uint64_t identity = StreamIdentity(encoded);
  // One shard gives a single global LRU order; capacity fits exactly two
  // decoded 4-frame GOPs of 32x32 YUV420 (1536 bytes per frame).
  GopCacheOptions options;
  options.shards = 1;
  options.capacity_bytes = 2 * 4 * 1536;
  GopCache cache(options);

  ASSERT_TRUE(cache.Get(encoded, identity, 0, 4).ok());
  ASSERT_TRUE(cache.Get(encoded, identity, 4, 4).ok());
  EXPECT_EQ(cache.stats().entries, 2);
  // Touch GOP 0 so GOP 4 becomes the LRU victim.
  GopCache::Outcome outcome;
  ASSERT_TRUE(cache.Get(encoded, identity, 0, 4, &outcome).ok());
  EXPECT_EQ(outcome, GopCache::Outcome::kHit);
  // Inserting GOP 8 evicts GOP 4, not GOP 0.
  ASSERT_TRUE(cache.Get(encoded, identity, 8, 4).ok());
  EXPECT_EQ(cache.stats().evictions, 1);
  ASSERT_TRUE(cache.Get(encoded, identity, 0, 4, &outcome).ok());
  EXPECT_EQ(outcome, GopCache::Outcome::kHit) << "LRU victim was wrong";
  ASSERT_TRUE(cache.Get(encoded, identity, 4, 4, &outcome).ok());
  EXPECT_EQ(outcome, GopCache::Outcome::kMiss) << "GOP 4 should have been evicted";
}

TEST(GopCacheTest, ClearDropsEntriesAndBytes) {
  EncodedVideo encoded = EncodeOrDie(MakeVideo(32, 32, 8, 7), 4);
  GopCache cache;
  ASSERT_TRUE(CachedDecode(encoded, cache).ok());
  EXPECT_GT(cache.stats().entries, 0);
  cache.Clear();
  GopCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes_in_use, 0);
  // Re-decode works and misses again.
  GopCacheCounters counters;
  ASSERT_TRUE(CachedDecode(encoded, cache, &counters).ok());
  EXPECT_EQ(counters.misses.load(), 2);
}

TEST(GopCacheTest, ShrinkingCapacityEvictsImmediately) {
  EncodedVideo encoded = EncodeOrDie(MakeVideo(32, 32, 12, 8), 4);
  GopCacheOptions options;
  options.shards = 1;
  GopCache cache(options);
  ASSERT_TRUE(CachedDecode(encoded, cache).ok());
  EXPECT_EQ(cache.stats().entries, 3);
  cache.set_capacity_bytes(4 * 1536);  // Room for one GOP.
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(cache.stats().evictions, 2);
}

TEST(GopCacheTest, SingleFlightCoalescesConcurrentDecodes) {
  EncodedVideo encoded = EncodeOrDie(MakeVideo(64, 48, 6, 9), 6);
  uint64_t identity = StreamIdentity(encoded);
  constexpr int kThreads = 8;
  GopCache cache;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto gop = cache.Get(encoded, identity, 0, 6);
      if (!gop.ok() || (*gop)->frames.size() != 6u) ++failures;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  GopCacheStats stats = cache.stats();
  // Exactly one thread decoded; everyone else was served the in-flight or
  // cached result.
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1);
}

TEST(GopCacheTest, ConcurrentMixedWorkloadStaysConsistent) {
  // Stress: many threads, several streams, tiny capacity (constant eviction
  // churn), interleaved Clear calls. Run under TSan via the tsan preset.
  std::vector<EncodedVideo> streams;
  std::vector<Video> plains;
  for (int s = 0; s < 3; ++s) {
    streams.push_back(
        EncodeOrDie(MakeVideo(32, 32, 8, 20 + static_cast<uint64_t>(s)), 4));
    auto plain = Decode(streams.back());
    ASSERT_TRUE(plain.ok());
    plains.push_back(*plain);
  }
  GopCacheOptions options;
  options.capacity_bytes = 3 * 4 * 1536;  // Fits ~3 GOPs; constant pressure.
  options.shards = 2;
  GopCache cache(options);

  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        size_t s = static_cast<size_t>((t + i) % 3);
        if (t == 0 && i % 10 == 9) cache.Clear();
        auto decoded = CachedDecode(streams[s], cache);
        if (!decoded.ok() ||
            decoded->FrameCount() != plains[s].FrameCount()) {
          ++mismatches;
          continue;
        }
        // Spot-check one frame per iteration to keep the stress fast.
        int f = (t * 7 + i) % decoded->FrameCount();
        if (!decoded->frames[static_cast<size_t>(f)].SameContentAs(
                plains[s].frames[static_cast<size_t>(f)])) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  GopCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.coalesced + stats.misses,
            static_cast<int64_t>(kThreads) * kIterations * 2);
  EXPECT_LE(stats.bytes_in_use, cache.capacity_bytes());
}

}  // namespace
}  // namespace visualroad::video::codec
