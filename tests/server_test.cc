#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "driver/datasets.h"
#include "driver/report.h"
#include "driver/vcd.h"
#include "server/admission.h"
#include "server/server.h"
#include "server/traffic.h"

namespace visualroad::server {
namespace {

using queries::QueryId;

// --- Stub engines --------------------------------------------------------
//
// Scheduling tests never run real queries: a gate-controlled engine lets a
// test hold every Execute() at a barrier, drive the scheduler into a known
// state (queues full, caps saturated), and then release work in a chosen
// order. All assertions are on counts and ordering — no wall-clock.

class GatedEngine : public systems::Vdbms {
 public:
  const char* name() const override { return "gated"; }
  bool Supports(QueryId) const override { return true; }
  bool ConcurrentSafe() const override { return true; }
  systems::EngineStats stats() const override { return {}; }

  StatusOr<systems::QueryOutput> Execute(
      const queries::QueryInstance& instance, const sim::Dataset&,
      systems::OutputMode, const std::string&,
      systems::EngineStats* call_stats = nullptr) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // video_index doubles as the test's instance marker.
      order_.push_back(instance.video_index);
      ++started_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return permits_ > 0 || open_; });
      if (!open_) --permits_;
    }
    if (call_stats != nullptr) *call_stats = {};
    return systems::QueryOutput{};
  }

  void WaitForStarted(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, n] { return started_ >= n; });
  }
  void Release(int n = 1) {
    std::unique_lock<std::mutex> lock(mutex_);
    permits_ += n;
    cv_.notify_all();
  }
  void Open() {
    std::unique_lock<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  std::vector<int> order() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return order_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int started_ = 0;
  int permits_ = 0;
  bool open_ = false;
  std::vector<int> order_;
};

/// Counts executions; optionally dawdles so queues can actually build up in
/// overload tests (the sleep is load, never an assertion).
class CountingEngine : public systems::Vdbms {
 public:
  explicit CountingEngine(std::chrono::microseconds dawdle = {})
      : dawdle_(dawdle) {}
  const char* name() const override { return "counting"; }
  bool Supports(QueryId) const override { return true; }
  bool ConcurrentSafe() const override { return true; }
  systems::EngineStats stats() const override { return {}; }

  StatusOr<systems::QueryOutput> Execute(
      const queries::QueryInstance&, const sim::Dataset&, systems::OutputMode,
      const std::string&, systems::EngineStats* call_stats = nullptr) override {
    if (dawdle_.count() > 0) std::this_thread::sleep_for(dawdle_);
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (call_stats != nullptr) *call_stats = {};
    return systems::QueryOutput{};
  }
  int64_t executed() const { return executed_.load(std::memory_order_relaxed); }

 private:
  std::chrono::microseconds dawdle_;
  std::atomic<int64_t> executed_{0};
};

queries::QueryInstance Marked(int marker) {
  queries::QueryInstance instance;
  instance.id = QueryId::kQ1;
  instance.video_index = marker;
  return instance;
}

std::vector<queries::QueryInstance> Batch(std::initializer_list<int> markers) {
  std::vector<queries::QueryInstance> batch;
  for (int marker : markers) batch.push_back(Marked(marker));
  return batch;
}

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::CityConfig config;
    config.scale_factor = 1;
    config.width = 96;
    config.height = 54;
    config.duration_seconds = 1.0;
    config.fps = 15;
    config.seed = 41;
    auto dataset = driver::PrepareDataset(config);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new sim::Dataset(std::move(dataset).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static sim::Dataset* dataset_;
};

sim::Dataset* ServerTest::dataset_ = nullptr;

// --- Admission control ---------------------------------------------------

TEST(AdmissionTest, TenantBoundCheckedBeforeServerBound) {
  AdmissionController admission(/*max_total_queued=*/2);
  TenantOptions tenant;
  tenant.name = "t";
  tenant.max_queued_batches = 1;
  EXPECT_TRUE(admission.Admit(tenant, 0).ok());
  // The tenant's own queue rejects first, so the stats distinguish a noisy
  // tenant from a saturated server.
  Status tenant_full = admission.Admit(tenant, 1);
  EXPECT_EQ(tenant_full.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(admission.Admit(tenant, 0).ok());
  Status server_full = admission.Admit(tenant, 0);
  EXPECT_EQ(server_full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.stats().admitted, 2);
  EXPECT_EQ(admission.stats().shed_tenant, 1);
  EXPECT_EQ(admission.stats().shed_server, 1);
  EXPECT_EQ(admission.stats().shed(), 2);
  admission.OnStarted();
  EXPECT_EQ(admission.queued(), 1);
  EXPECT_EQ(admission.stats().started, 1);
}

TEST_F(ServerTest, TenantQueueOverflowShedsWithResourceExhausted) {
  GatedEngine engine;
  ServerOptions options;
  options.worker_threads = 1;
  options.max_total_queued = 64;
  QueryServer server(*dataset_, engine, options);
  TenantOptions tenant;
  tenant.name = "alpha";
  tenant.max_queued_batches = 2;
  tenant.max_concurrent_batches = 1;
  QueryServer::Session& session = server.OpenSession(tenant);

  // First batch promotes straight to running; the next two fill the bounded
  // queue; the fourth must shed, not block.
  auto running = server.Submit(session, Batch({0}));
  ASSERT_TRUE(running.ok()) << running.status().ToString();
  auto queued1 = server.Submit(session, Batch({1}));
  ASSERT_TRUE(queued1.ok());
  auto queued2 = server.Submit(session, Batch({2}));
  ASSERT_TRUE(queued2.ok());
  auto shed = server.Submit(session, Batch({3}));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("tenant"), std::string::npos);

  engine.Open();
  server.Drain();
  EXPECT_EQ(running->get().succeeded, 1);
  EXPECT_EQ(queued1->get().succeeded, 1);
  EXPECT_EQ(queued2->get().succeeded, 1);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.admitted, 3);
  EXPECT_EQ(stats.admission.shed_tenant, 1);
  EXPECT_EQ(stats.admission.shed_server, 0);
  EXPECT_EQ(stats.batches_completed, 3);
  EXPECT_EQ(stats.queries_executed, 3);
  EXPECT_EQ(stats.queue_depth_peak, 2);
}

TEST_F(ServerTest, ServerWideBoundShedsAcrossTenants) {
  GatedEngine engine;
  ServerOptions options;
  options.worker_threads = 1;
  options.max_total_queued = 1;
  QueryServer server(*dataset_, engine, options);
  TenantOptions tenant;
  tenant.max_queued_batches = 10;
  tenant.max_concurrent_batches = 1;
  tenant.name = "alpha";
  QueryServer::Session& alpha = server.OpenSession(tenant);
  tenant.name = "beta";
  QueryServer::Session& beta = server.OpenSession(tenant);

  ASSERT_TRUE(server.Submit(alpha, Batch({0})).ok());  // Running.
  ASSERT_TRUE(server.Submit(alpha, Batch({1})).ok());  // Fills the server queue.
  auto shed = server.Submit(beta, Batch({2}));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("server queue"), std::string::npos);

  engine.Open();
  server.Drain();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.shed_server, 1);
  EXPECT_EQ(stats.admission.shed_tenant, 0);
  EXPECT_EQ(stats.admission.admitted, 2);
}

TEST_F(ServerTest, EmptyBatchIsRejected) {
  CountingEngine engine;
  QueryServer server(*dataset_, engine, ServerOptions{});
  QueryServer::Session& session = server.OpenSession(TenantOptions{});
  auto submitted = server.Submit(session, {});
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kInvalidArgument);
}

// --- Priority scheduling -------------------------------------------------

TEST_F(ServerTest, HigherPriorityTenantPromotedFirst) {
  GatedEngine engine;
  ServerOptions options;
  options.worker_threads = 1;  // One instance at a time: ordering is total.
  QueryServer server(*dataset_, engine, options);
  TenantOptions low;
  low.name = "low";
  low.priority = 0;
  TenantOptions high;
  high.name = "high";
  high.priority = 5;
  QueryServer::Session& low_session = server.OpenSession(low);
  QueryServer::Session& high_session = server.OpenSession(high);

  // The low tenant's first batch occupies the executor; its second batch
  // queued *earlier* than the high tenant's must still run *after* it.
  auto first = server.Submit(low_session, Batch({0}));
  ASSERT_TRUE(first.ok());
  auto low_queued = server.Submit(low_session, Batch({1}));
  ASSERT_TRUE(low_queued.ok());
  auto high_queued = server.Submit(high_session, Batch({2}));
  ASSERT_TRUE(high_queued.ok());

  engine.Open();
  server.Drain();
  EXPECT_EQ(engine.order(), (std::vector<int>{0, 2, 1}));
}

TEST_F(ServerTest, PerBatchCapLetsTenantsShareTheExecutor) {
  GatedEngine engine;
  ServerOptions options;
  options.worker_threads = 4;
  options.max_concurrent_queries = 4;
  options.max_concurrent_queries_per_batch = 2;
  QueryServer server(*dataset_, engine, options);
  TenantOptions tenant;
  tenant.name = "alpha";
  QueryServer::Session& alpha = server.OpenSession(tenant);
  tenant.name = "beta";
  QueryServer::Session& beta = server.OpenSession(tenant);

  // A wide batch may only hold max_concurrent_queries_per_batch slots, so
  // the narrower batch from the other tenant starts immediately too.
  auto wide = server.Submit(alpha, Batch({0, 0, 0, 0, 0, 0}));
  ASSERT_TRUE(wide.ok());
  auto narrow = server.Submit(beta, Batch({1, 1}));
  ASSERT_TRUE(narrow.ok());
  engine.WaitForStarted(4);
  std::vector<int> started = engine.order();
  EXPECT_EQ(std::count(started.begin(), started.end(), 0), 2);
  EXPECT_EQ(std::count(started.begin(), started.end(), 1), 2);

  engine.Open();
  server.Drain();
  EXPECT_EQ(wide->get().succeeded, 6);
  EXPECT_EQ(narrow->get().succeeded, 2);
}

// --- Traffic generation --------------------------------------------------

TEST(TrafficTest, SchedulesAreDeterministicAndOrdered) {
  TrafficOptions options;
  options.tenants = 5;
  options.duration_seconds = 30.0;
  options.arrivals_per_second = 2.0;
  options.seed = 99;
  std::vector<Arrival> first = GenerateOpenLoopSchedule(options);
  std::vector<Arrival> second = GenerateOpenLoopSchedule(options);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].time_seconds, second[i].time_seconds);
    EXPECT_EQ(first[i].tenant, second[i].tenant);
  }
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].time_seconds, first[i].time_seconds);
  }
  for (const Arrival& arrival : first) {
    EXPECT_GE(arrival.tenant, 0);
    EXPECT_LT(arrival.tenant, options.tenants);
    EXPECT_GE(arrival.time_seconds, 0.0);
    EXPECT_LT(arrival.time_seconds, options.duration_seconds);
  }
  options.seed = 100;
  std::vector<Arrival> reseeded = GenerateOpenLoopSchedule(options);
  EXPECT_NE(reseeded.size(), 0u);
  bool identical = reseeded.size() == first.size();
  for (size_t i = 0; identical && i < first.size(); ++i) {
    identical = reseeded[i].time_seconds == first[i].time_seconds &&
                reseeded[i].tenant == first[i].tenant;
  }
  EXPECT_FALSE(identical);
}

TEST(TrafficTest, AddingATenantDoesNotPerturbExistingStreams) {
  TrafficOptions options;
  options.tenants = 2;
  options.duration_seconds = 20.0;
  options.arrivals_per_second = 1.5;
  options.seed = 7;
  std::vector<Arrival> narrow = GenerateOpenLoopSchedule(options);
  options.tenants = 3;
  std::vector<Arrival> wide = GenerateOpenLoopSchedule(options);
  auto times_of = [](const std::vector<Arrival>& schedule, int tenant) {
    std::vector<double> times;
    for (const Arrival& arrival : schedule) {
      if (arrival.tenant == tenant) times.push_back(arrival.time_seconds);
    }
    return times;
  };
  EXPECT_EQ(times_of(narrow, 0), times_of(wide, 0));
  EXPECT_EQ(times_of(narrow, 1), times_of(wide, 1));
}

TEST(TrafficTest, DiurnalModulationConcentratesArrivalsInThePeak) {
  TrafficOptions options;
  options.tenants = 1;
  options.duration_seconds = 1000.0;
  options.arrivals_per_second = 2.0;
  options.diurnal_amplitude = 0.9;
  options.diurnal_period_seconds = 1000.0;
  options.seed = 13;
  std::vector<Arrival> schedule = GenerateOpenLoopSchedule(options);
  ASSERT_FALSE(schedule.empty());
  // rate(t) peaks in the first half-period (sin > 0) and troughs in the
  // second; with a = 0.9 the halves differ enormously.
  int64_t first_half = 0, second_half = 0;
  for (const Arrival& arrival : schedule) {
    (arrival.time_seconds < 500.0 ? first_half : second_half)++;
  }
  EXPECT_GT(first_half, 2 * second_half);
}

TEST(TrafficTest, SummarizeComputesNearestRankPercentiles) {
  std::vector<double> latencies;
  for (int i = 100; i >= 1; --i) latencies.push_back(i);
  LatencySummary summary = Summarize(latencies);
  EXPECT_EQ(summary.count, 100);
  EXPECT_DOUBLE_EQ(summary.mean_seconds, 50.5);
  EXPECT_DOUBLE_EQ(summary.p50_seconds, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95_seconds, 95.0);
  EXPECT_DOUBLE_EQ(summary.p99_seconds, 99.0);
  EXPECT_DOUBLE_EQ(summary.max_seconds, 100.0);
  LatencySummary empty = Summarize({});
  EXPECT_EQ(empty.count, 0);
  EXPECT_DOUBLE_EQ(empty.max_seconds, 0.0);
}

// --- Byte identity -------------------------------------------------------

bool SameEncodedVideo(const video::codec::EncodedVideo& a,
                      const video::codec::EncodedVideo& b) {
  if (a.FrameCount() != b.FrameCount()) return false;
  for (size_t i = 0; i < a.frames.size(); ++i) {
    if (a.frames[i].keyframe != b.frames[i].keyframe) return false;
    if (a.frames[i].qp != b.frames[i].qp) return false;
    if (a.frames[i].data != b.frames[i].data) return false;
  }
  return true;
}

TEST_F(ServerTest, ServedResultsAreByteIdenticalToDirectExecution) {
  // The acceptance gate: the server adds scheduling, not semantics. The
  // same instances run once directly against the engine and once through
  // the concurrent server; every result bitstream must match bit for bit.
  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);

  std::vector<queries::QueryInstance> instances;
  for (QueryId id : {QueryId::kQ1, QueryId::kQ2a, QueryId::kQ2b, QueryId::kQ4,
                     QueryId::kQ1, QueryId::kQ5}) {
    Pcg32 rng = SubStream(41, "byte-identity", instances.size());
    auto instance = queries::SampleQueryInstance(id, *dataset_, rng);
    ASSERT_TRUE(instance.ok()) << instance.status().ToString();
    instances.push_back(std::move(instance).value());
  }

  std::vector<systems::QueryOutput> direct;
  for (const queries::QueryInstance& instance : instances) {
    auto output = engine->Execute(instance, *dataset_,
                                  systems::OutputMode::kWrite, "");
    ASSERT_TRUE(output.ok()) << output.status().ToString();
    direct.push_back(std::move(output).value());
  }

  ServerOptions options;
  options.worker_threads = 3;
  options.max_concurrent_queries_per_batch = 3;
  QueryServer server(*dataset_, *engine, options);
  QueryServer::Session& session = server.OpenSession(TenantOptions{});
  auto submitted = server.Submit(session, instances);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ServedBatch batch = submitted->get();
  ASSERT_EQ(batch.queries.size(), instances.size());
  EXPECT_EQ(batch.succeeded, static_cast<int>(instances.size()));
  for (size_t i = 0; i < instances.size(); ++i) {
    const ServedQuery& served = batch.queries[i];
    ASSERT_TRUE(served.status.ok()) << served.status.ToString();
    EXPECT_EQ(served.output.produced, direct[i].produced);
    EXPECT_TRUE(SameEncodedVideo(served.output.video, direct[i].video))
        << "bitstream mismatch on instance " << i;
    EXPECT_EQ(served.output.detections.size(), direct[i].detections.size());
  }
}

// --- Open-loop replay and overload --------------------------------------

TEST_F(ServerTest, OpenLoopReplayShedsUnderOverloadAndReportsGoodput) {
  // Offered load far above capacity: submissions are instantaneous while
  // every query dawdles, so the bounded queues must overflow and shed with
  // kResourceExhausted (asserted inside RunOpenLoop, which fails the run on
  // any other submit error).
  CountingEngine engine(std::chrono::microseconds(1000));
  ServerOptions options;
  options.worker_threads = 2;
  options.max_total_queued = 6;
  QueryServer server(*dataset_, engine, options);

  TrafficOptions traffic;
  traffic.tenants = 4;
  traffic.duration_seconds = 50.0;
  traffic.arrivals_per_second = 1.0;
  traffic.seed = 17;
  std::vector<Arrival> schedule = GenerateOpenLoopSchedule(traffic);
  ASSERT_GT(schedule.size(), 40u);

  ReplayOptions replay;
  replay.batch_size = 1;
  replay.seed = 17;
  replay.tenant.max_queued_batches = 1;
  replay.tenant.max_concurrent_batches = 1;
  auto report = RunOpenLoop(server, *dataset_, schedule, replay);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->tenants, 4);
  EXPECT_EQ(report->offered_batches, static_cast<int64_t>(schedule.size()));
  EXPECT_EQ(report->admitted_batches + report->shed_batches,
            report->offered_batches);
  EXPECT_GT(report->shed_batches, 0);
  EXPECT_GT(report->admitted_batches, 0);
  EXPECT_EQ(report->succeeded_queries, report->admitted_batches);
  EXPECT_EQ(report->failed_queries, 0);
  EXPECT_EQ(report->latency.count, report->admitted_batches);
  // Every executed instance succeeded, so goodput equals attempted.
  EXPECT_GT(report->goodput_frames_per_second, 0.0);
  EXPECT_DOUBLE_EQ(report->goodput_frames_per_second,
                   report->attempted_frames_per_second);
  EXPECT_EQ(report->server.admission.shed(), report->shed_batches);
  EXPECT_EQ(engine.executed(), report->admitted_batches);

  std::string rendered = driver::FormatServingReport(*report);
  EXPECT_NE(rendered.find("p50"), std::string::npos);
  EXPECT_NE(rendered.find("goodput"), std::string::npos);
  EXPECT_NE(rendered.find("shed"), std::string::npos);
}

// --- Stress (TSan) -------------------------------------------------------

TEST_F(ServerTest, StressManyTenantsManyBatchesUnderSmallCaps) {
  // Scheduler stress for ThreadSanitizer: several submitter threads race
  // against pool-worker completion callbacks and a stats poller, with caps
  // small enough that promotion, dispatch, shedding, and finalization all
  // interleave constantly. Assertions are structural counts only.
  GatedEngine engine;
  ServerOptions options;
  options.worker_threads = 4;
  options.max_concurrent_queries = 4;
  options.max_concurrent_queries_per_batch = 2;
  options.max_total_queued = 8;
  QueryServer server(*dataset_, engine, options);

  constexpr int kTenants = 6;
  constexpr int kSubmitters = 3;
  constexpr int kBatchesPerSubmitter = 30;
  std::vector<QueryServer::Session*> sessions;
  for (int i = 0; i < kTenants; ++i) {
    TenantOptions tenant;
    tenant.name = "tenant-" + std::to_string(i);
    tenant.priority = i % 3;
    tenant.max_queued_batches = 2;
    tenant.max_concurrent_batches = 2;
    sessions.push_back(&server.OpenSession(tenant));
  }

  std::atomic<int64_t> admitted{0};
  std::atomic<int64_t> shed{0};
  std::mutex futures_mutex;
  std::vector<std::future<ServedBatch>> futures;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int b = 0; b < kBatchesPerSubmitter; ++b) {
        auto& session = *sessions[static_cast<size_t>((s + b) % kTenants)];
        auto submitted = server.Submit(session, Batch({s, b}));
        if (submitted.ok()) {
          admitted.fetch_add(1);
          std::lock_guard<std::mutex> lock(futures_mutex);
          futures.push_back(std::move(submitted).value());
        } else {
          ASSERT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
          shed.fetch_add(1);
        }
      }
    });
  }
  std::atomic<bool> stop_polling{false};
  std::thread poller([&] {
    while (!stop_polling.load()) {
      ServerStats stats = server.stats();
      ASSERT_GE(stats.admission.admitted, stats.batches_completed);
    }
  });

  // The gate stays shut while submitters flood the queues (guaranteeing
  // shed decisions fire), then opens to let the backlog drain.
  for (auto& submitter : submitters) submitter.join();
  engine.Open();
  server.Drain();
  stop_polling.store(true);
  poller.join();

  EXPECT_EQ(admitted.load() + shed.load(),
            int64_t{kSubmitters} * kBatchesPerSubmitter);
  EXPECT_GT(shed.load(), 0);
  int64_t succeeded = 0;
  for (auto& future : futures) succeeded += future.get().succeeded;
  EXPECT_EQ(succeeded, 2 * admitted.load());
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.admitted, admitted.load());
  EXPECT_EQ(stats.admission.shed(), shed.load());
  EXPECT_EQ(stats.batches_completed, admitted.load());
  EXPECT_EQ(stats.queries_executed, 2 * admitted.load());
}

// --- Driver integration --------------------------------------------------

TEST_F(ServerTest, DriverRunServingWiresScheduleServerAndReplay) {
  driver::VcdOptions vcd_options;
  driver::VisualCityDriver vcd(*dataset_, vcd_options);
  systems::EngineOptions engine_options;
  auto engine = systems::MakeCascadeEngine(engine_options);

  driver::ServingRunOptions run;
  run.traffic.tenants = 2;
  run.traffic.duration_seconds = 3.0;
  run.traffic.arrivals_per_second = 1.0;
  run.traffic.seed = 41;
  run.replay.seed = 41;
  run.replay.query_mix = {QueryId::kQ1};
  run.server.worker_threads = 2;
  run.server.output_mode = systems::OutputMode::kStreaming;
  auto report = vcd.RunServing(*engine, run);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->tenants, 2);
  EXPECT_GT(report->offered_batches, 0);
  EXPECT_EQ(report->shed_batches, 0);
  EXPECT_EQ(report->failed_queries, 0);
  EXPECT_EQ(report->succeeded_queries, report->admitted_batches);
  EXPECT_GT(report->goodput_frames_per_second, 0.0);
}

}  // namespace
}  // namespace visualroad::server
