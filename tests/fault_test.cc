#include "common/fault.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <thread>
#include <vector>

#include "storage/sharded_store.h"
#include "storage/vss.h"
#include "systems/video_source.h"
#include "video/codec/codec.h"

namespace visualroad::fault {
namespace {

TEST(FaultProfileTest, NamedProfilesResolve) {
  auto none = ProfileByName("none");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->any());
  for (const char* name : {"flaky", "lossy", "degraded"}) {
    auto profile = ProfileByName(name);
    ASSERT_TRUE(profile.ok()) << name;
    EXPECT_TRUE(profile->any()) << name;
    EXPECT_EQ(profile->name, name);
  }
  auto bad = ProfileByName("catastrophic");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  auto profile = ProfileByName("flaky");
  ASSERT_TRUE(profile.ok());
  FaultInjector a(*profile, 42);
  FaultInjector b(*profile, 42);
  for (int i = 0; i < 256; ++i) {
    for (int s = 0; s < kSiteCount; ++s) {
      Site site = static_cast<Site>(s);
      EXPECT_EQ(a.ShouldInject(site), b.ShouldInject(site))
          << SiteName(site) << " draw " << i;
    }
  }
  EXPECT_GT(a.injected(Site::kStoreReadFlap), 0);
}

TEST(FaultInjectorTest, SitesDrawIndependentStreams) {
  // Extra draws at one site must not shift another site's schedule: each
  // site owns its own substream. Injector `b` interleaves heavy rtp_loss
  // traffic; the store_read_flap outcomes still match injector `a`.
  auto profile = ProfileByName("flaky");
  ASSERT_TRUE(profile.ok());
  FaultInjector a(*profile, 7);
  FaultInjector b(*profile, 7);
  std::vector<bool> from_a;
  for (int i = 0; i < 128; ++i) from_a.push_back(a.ShouldInject(Site::kStoreReadFlap));
  for (int i = 0; i < 128; ++i) {
    for (int extra = 0; extra < 3; ++extra) b.ShouldInject(Site::kRtpLoss);
    EXPECT_EQ(b.ShouldInject(Site::kStoreReadFlap), from_a[static_cast<size_t>(i)])
        << "draw " << i;
  }
}

TEST(FaultInjectorTest, ZeroProbabilityStillConsumesTheStream) {
  // A "none" run draws the same stream as a faulty one, so flipping one
  // site's probability later cannot shift the schedule (stream stability).
  auto none = ProfileByName("none");
  ASSERT_TRUE(none.ok());
  FaultInjector injector(*none, 3);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(injector.ShouldInject(Site::kRtpLoss));
  }
  EXPECT_EQ(injector.draws(Site::kRtpLoss), 64);
  EXPECT_EQ(injector.injected(Site::kRtpLoss), 0);
}

TEST(RetryPolicyTest, FirstTrySuccessMakesOneAttempt) {
  RetryPolicy policy(Site::kStoreReadFlap, RetryOptions{});
  int attempts = 0;
  int64_t retries_before = TotalRetries();
  EXPECT_TRUE(policy.Run([] { return Status::Ok(); }, &attempts).ok());
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(TotalRetries(), retries_before);
}

TEST(RetryPolicyTest, TransientFailureRetriesUntilSuccess) {
  RetryPolicy policy(Site::kStoreReadFlap, RetryOptions{});
  int calls = 0;
  int attempts = 0;
  int64_t retries_before = TotalRetries();
  Status status = policy.Run(
      [&] {
        return ++calls < 3 ? Status::IoError("transient") : Status::Ok();
      },
      &attempts);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(TotalRetries() - retries_before, 2);
}

TEST(RetryPolicyTest, NonRetryableErrorReturnsImmediately) {
  RetryPolicy policy(Site::kStoreReadFlap, RetryOptions{});
  int attempts = 0;
  Status status =
      policy.Run([] { return Status::NotFound("no such file"); }, &attempts);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryPolicyTest, ExhaustedAttemptsGiveUpWithLastError) {
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff = std::chrono::microseconds(100);
  options.max_backoff = std::chrono::microseconds(200);
  RetryPolicy policy(Site::kStoreReadFlap, options);
  int attempts = 0;
  int64_t giveups_before = TotalGiveups();
  Status status =
      policy.Run([] { return Status::IoError("still down"); }, &attempts);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(TotalGiveups() - giveups_before, 1);
}

TEST(RetryPolicyTest, DeadlineBoundsTheRetryTail) {
  RetryOptions options;
  options.max_attempts = 1000;
  options.initial_backoff = std::chrono::microseconds(2000);
  options.max_backoff = std::chrono::microseconds(2000);
  options.deadline = std::chrono::microseconds(5000);
  RetryPolicy policy(Site::kStoreReadFlap, options);
  int attempts = 0;
  auto start = std::chrono::steady_clock::now();
  Status status =
      policy.Run([] { return Status::IoError("forever"); }, &attempts);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start).count();
  EXPECT_FALSE(status.ok());
  EXPECT_LT(attempts, 1000);
  // The deadline (5 ms) caps total sleeping; generous margin for CI noise.
  EXPECT_LT(elapsed, 1.0);
}

TEST(RetryPolicyTest, RetryableCodeSet) {
  EXPECT_TRUE(IsRetryable(StatusCode::kIoError));
  EXPECT_TRUE(IsRetryable(StatusCode::kDataLoss));
  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryable(StatusCode::kOutOfRange));
  EXPECT_FALSE(IsRetryable(StatusCode::kFailedPrecondition));
}

}  // namespace
}  // namespace visualroad::fault

namespace visualroad::storage {
namespace {

namespace fs = std::filesystem;

using video::codec::EncodedVideo;

EncodedVideo MakeStream(int frames, int width, int height, int gop_length,
                        uint64_t seed) {
  video::Video video;
  video.fps = 15;
  for (int f = 0; f < frames; ++f) {
    video::Frame frame(width, height);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        double value = 128 + 90 * std::sin((x + f * 2 + seed) * 0.11) *
                                 std::cos((y + f) * 0.07);
        frame.SetPixel(x, y, static_cast<uint8_t>(value), 120, 134);
      }
    }
    video.frames.push_back(std::move(frame));
  }
  video::codec::EncoderConfig config;
  config.qp = 20;
  config.gop_length = gop_length;
  auto encoded = video::codec::ParallelEncode(video, config);
  EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
  return *encoded;
}

bool SameBitstream(const EncodedVideo& a, const EncodedVideo& b) {
  if (a.FrameCount() != b.FrameCount()) return false;
  for (int i = 0; i < a.FrameCount(); ++i) {
    if (a.frames[static_cast<size_t>(i)].data !=
        b.frames[static_cast<size_t>(i)].data) {
      return false;
    }
  }
  return true;
}

class FaultServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified so parallel ctest shards of this binary (each its own
    // process, each with counter_ == 0) never share a temp tree.
    root_ = (fs::temp_directory_path() /
             ("vr_fault_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++))).string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::unique_ptr<ShardedStore> OpenStore(const std::string& subdir,
                                          fault::FaultInjector* faults = nullptr) {
    StoreOptions options;
    options.root = root_ + "/" + subdir;
    options.block_size = 512;
    options.metrics_label = "fault_test";
    options.faults = faults;
    auto store = ShardedStore::Open(options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::make_unique<ShardedStore>(std::move(store).value());
  }

  std::string root_;
  static int counter_;
};

int FaultServiceTest::counter_ = 0;

/// Acceptance: with faults disabled, attaching a "none" injector changes no
/// result byte anywhere — store reads, VSS reads (base and transcode tier),
/// and the online feed all match a build with no injector at all.
TEST_F(FaultServiceTest, FaultsOffIsByteIdenticalToNoInjector) {
  auto none = fault::ProfileByName("none");
  ASSERT_TRUE(none.ok());
  fault::FaultInjector injector(*none, 11);

  EncodedVideo original = MakeStream(12, 64, 36, 4, 21);

  auto plain_store = OpenStore("plain");
  auto faulty_store = OpenStore("faulty", &injector);

  VssOptions plain_options;
  plain_options.store = plain_store.get();
  auto plain = VideoStorageService::Open(plain_options);
  ASSERT_TRUE(plain.ok());
  VssOptions faulty_options;
  faulty_options.store = faulty_store.get();
  faulty_options.faults = &injector;
  auto faulty = VideoStorageService::Open(faulty_options);
  ASSERT_TRUE(faulty.ok());

  ASSERT_TRUE((*plain)->Ingest("cam", original).ok());
  ASSERT_TRUE((*faulty)->Ingest("cam", original).ok());

  auto base = (*plain)->BaseTier("cam");
  ASSERT_TRUE(base.ok());
  VariantKey transcode_tier{32, 18, 32};
  for (const VariantKey& tier : {*base, transcode_tier}) {
    auto a = (*plain)->ReadVideo("cam", tier);
    auto b = (*faulty)->ReadVideo("cam", tier);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_TRUE(SameBitstream(**a, **b));
  }
  EXPECT_EQ((*faulty)->stats().degraded_reads, 0);

  // The online feed delivers the identical frame sequence.
  systems::VideoSource clean =
      systems::VideoSource::Online(&original, 10000.0);
  systems::VideoSource injected =
      systems::VideoSource::Online(&original, 10000.0, &injector);
  while (!clean.AtEnd()) {
    auto a = clean.Next();
    auto b = injected.Next();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ((*a)->data, (*b)->data);
  }
  EXPECT_EQ(injected.frames_degraded(), 0);
}

/// Tentpole: a flaky-profile run against the storage read path completes
/// with the same bytes as a clean run, absorbing injected flaps as retries
/// — and the same seed reproduces the same retry count.
TEST_F(FaultServiceTest, FlakyReadsRetryToTheSameBytes) {
  auto flaky = fault::ProfileByName("flaky");
  ASSERT_TRUE(flaky.ok());
  flaky->slow_read_delay = std::chrono::microseconds(10);

  std::vector<uint8_t> payload(4000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>((i * 31) & 0xFF);
  }

  auto run = [&](uint64_t seed) {
    fault::FaultInjector injector(*flaky, seed);
    auto store = OpenStore("run" + std::to_string(counter_++), &injector);
    EXPECT_TRUE(store->Put("blob", payload).ok());
    for (int i = 0; i < 10; ++i) {
      auto loaded = store->Get("blob");
      EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
      if (loaded.ok()) {
        EXPECT_EQ(*loaded, payload);
      }
    }
    return store->stats();
  };

  StoreStats first = run(77);
  StoreStats second = run(77);
  // Injected flaps produced retries; the deterministic schedule makes the
  // two same-seed runs agree exactly.
  EXPECT_GT(first.read_retries + first.replica_failovers, 0);
  EXPECT_EQ(first.read_retries, second.read_retries);
  EXPECT_EQ(first.replica_failovers, second.replica_failovers);
  EXPECT_EQ(first.write_replacements, second.write_replacements);
}

/// Satellite: eviction and compaction racing single-flight materialization
/// under a tiny variant budget. Run under TSan (preset tsan-faults) this
/// shreds the pins_/inflight_/eviction interlock; everywhere it must simply
/// produce correct reads.
TEST_F(FaultServiceTest, EvictionRacesSingleFlightWithoutCorruption) {
  auto store = OpenStore("race");
  VssOptions options;
  options.store = store.get();
  options.variant_cache_bytes = 1;  // Every persisted variant evicts at once.
  options.resident_bytes = 0;       // Every read goes back to the store.
  auto vss = VideoStorageService::Open(options);
  ASSERT_TRUE(vss.ok());
  EncodedVideo original = MakeStream(8, 64, 36, 4, 31);
  ASSERT_TRUE((*vss)->Ingest("cam", original).ok());

  constexpr int kThreads = 6;
  constexpr int kRounds = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Rotate through tiers so materializations, evictions, and compaction
        // keep overlapping instead of settling into resident hits.
        VariantKey tier{32, 18, 28 + (t + round) % 3 * 4};
        auto read = (*vss)->ReadVideo("cam", tier);
        if (!read.ok()) {
          ++failures;
          continue;
        }
        if ((*read)->FrameCount() != original.FrameCount()) ++failures;
        (void)(*vss)->Compact();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // The tiny budget forced eviction activity while flights were landing.
  EXPECT_GT((*vss)->stats().variants_evicted, 0);
}

/// Satellite: Ingest replacing a video while readers stream it. Readers may
/// observe the old or the new video, or a clean error — never a crash, hang,
/// or torn read. Exercises the deferred-delete path for pinned variants.
TEST_F(FaultServiceTest, IngestDuringConcurrentReadsStaysCoherent) {
  auto store = OpenStore("ingest_race");
  VssOptions options;
  options.store = store.get();
  options.resident_bytes = 0;
  auto vss = VideoStorageService::Open(options);
  ASSERT_TRUE(vss.ok());
  EncodedVideo first = MakeStream(8, 64, 36, 4, 41);
  EncodedVideo second = MakeStream(12, 64, 36, 4, 42);
  ASSERT_TRUE((*vss)->Ingest("cam", first).ok());
  auto tier = (*vss)->BaseTier("cam");
  ASSERT_TRUE(tier.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> incoherent{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto range = (*vss)->ReadRange("cam", *tier, 0, 4);
        if (!range.ok()) continue;  // Clean error during replacement is fine.
        if (range->video->FrameCount() < 4) ++incoherent;
      }
    });
  }
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE((*vss)->Ingest("cam", round % 2 == 0 ? second : first).ok());
  }
  stop.store(true);
  for (std::thread& thread : readers) thread.join();
  EXPECT_EQ(incoherent.load(), 0);
  // The final catalog state reads back cleanly.
  auto read = (*vss)->ReadVideo("cam", *tier);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(SameBitstream(**read, first));
}

/// Single-flight leaders that fail must propagate the failure to their
/// waiters instead of leaving them blocked (or silently re-leading forever).
TEST_F(FaultServiceTest, SingleFlightWaitersObserveLeaderFailure) {
  auto store = OpenStore("leader_fail");
  VssOptions options;
  options.store = store.get();
  options.resident_bytes = 0;
  auto vss = VideoStorageService::Open(options);
  ASSERT_TRUE(vss.ok());
  ASSERT_TRUE((*vss)->Ingest("cam", MakeStream(8, 64, 36, 4, 51)).ok());

  // Kill enough datanodes that the base fetch cannot be served: every
  // leader's materialization fails, and every waiter must see that failure.
  for (int node = 0; node < 3; ++node) {
    ASSERT_TRUE(store->DisableNode(node).ok());
  }
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto read = (*vss)->ReadVideo("cam", VariantKey{32, 18, 32});
      if (!read.ok()) ++errors;
    });
  }
  for (std::thread& thread : threads) thread.join();
  // No thread hung; every read surfaced the storage failure.
  EXPECT_EQ(errors.load(), kThreads);

  // Recovery: once the nodes return, the same read succeeds.
  for (int node = 0; node < 3; ++node) {
    ASSERT_TRUE(store->EnableNode(node).ok());
  }
  auto read = (*vss)->ReadVideo("cam", VariantKey{32, 18, 32});
  EXPECT_TRUE(read.ok()) << read.status().ToString();
}

}  // namespace
}  // namespace visualroad::storage
