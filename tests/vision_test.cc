#include <gtest/gtest.h>

#include <cmath>

#include "simulation/city.h"
#include "simulation/render/scene_renderer.h"
#include "video/color.h"
#include "video/metrics.h"
#include "vision/alpr.h"
#include "vision/background.h"
#include "vision/convnet.h"
#include "vision/font.h"
#include "vision/miniyolo.h"
#include "vision/overlay.h"
#include "vision/stitcher.h"
#include "vision/tiling.h"

namespace visualroad::vision {
namespace {

using video::Frame;
using video::Video;

Frame GradientFrame(int w, int h, int shift = 0) {
  Frame frame(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      frame.SetPixel(x, y, static_cast<uint8_t>((x * 3 + y * 2 + shift) & 0xFF),
                     static_cast<uint8_t>(100 + (x & 15)),
                     static_cast<uint8_t>(150 - (y & 15)));
    }
  }
  return frame;
}

Video GradientVideo(int w, int h, int frames) {
  Video v;
  v.fps = 15;
  for (int f = 0; f < frames; ++f) v.frames.push_back(GradientFrame(w, h, f * 4));
  return v;
}

// --- Tensor & convnet ---

TEST(TensorTest, IndexingIsChw) {
  Tensor t(2, 3, 4);
  t.At(1, 2, 3) = 7.5f;
  EXPECT_FLOAT_EQ(t.Channel(1)[2 * 4 + 3], 7.5f);
  EXPECT_EQ(t.size(), 24u);
}

TEST(ConvTest, OutputShapeWithPaddingAndStride) {
  Conv2d conv(3, 8, 3, 1, 1);
  Tensor input(3, 16, 20);
  Tensor output = conv.Forward(input);
  EXPECT_EQ(output.channels(), 8);
  EXPECT_EQ(output.height(), 16);
  EXPECT_EQ(output.width(), 20);
}

TEST(ConvTest, StrideTwoHalvesSpatialSize) {
  Conv2d conv(1, 4, 3, 2, 2);
  Tensor input(1, 16, 16);
  Tensor output = conv.Forward(input);
  EXPECT_EQ(output.height(), 8);
  EXPECT_EQ(output.width(), 8);
}

TEST(ConvTest, DeterministicWeights) {
  Conv2d a(3, 4, 3, 1, 55), b(3, 4, 3, 1, 55);
  Tensor input(3, 8, 8);
  for (size_t i = 0; i < input.data().size(); ++i) {
    input.data()[i] = static_cast<float>(i % 13) * 0.1f;
  }
  Tensor out_a = a.Forward(input);
  Tensor out_b = b.Forward(input);
  EXPECT_EQ(out_a.data(), out_b.data());
}

TEST(ConvTest, ZeroInputGivesBiasOutput) {
  Conv2d conv(2, 3, 3, 1, 9);
  Tensor input(2, 6, 6);
  Tensor output = conv.Forward(input);
  // All spatial positions of one channel equal that channel's bias.
  for (int c = 0; c < 3; ++c) {
    float reference = output.At(c, 3, 3);
    EXPECT_FLOAT_EQ(output.At(c, 2, 2), reference);
  }
}

TEST(ConvTest, MacsAccounting) {
  Conv2d conv(3, 8, 3, 1, 1);
  EXPECT_EQ(conv.MacsFor(10, 10), static_cast<int64_t>(8) * 3 * 9 * 100);
}

TEST(ConvnetTest, MaxPoolTakesMaxima) {
  Tensor input(1, 4, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) input.At(0, y, x) = static_cast<float>(y * 4 + x);
  }
  Tensor output = MaxPool2x2(input);
  EXPECT_EQ(output.height(), 2);
  EXPECT_FLOAT_EQ(output.At(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(output.At(0, 1, 1), 15.0f);
}

TEST(ConvnetTest, LeakyReluScalesNegatives) {
  Tensor t(1, 1, 4);
  t.data() = {-10.0f, -1.0f, 0.0f, 5.0f};
  LeakyRelu(t);
  EXPECT_FLOAT_EQ(t.data()[0], -1.0f);
  EXPECT_FLOAT_EQ(t.data()[1], -0.1f);
  EXPECT_FLOAT_EQ(t.data()[2], 0.0f);
  EXPECT_FLOAT_EQ(t.data()[3], 5.0f);
}

// --- MiniYolo ---

sim::FrameGroundTruth MakeTruth(std::initializer_list<sim::GroundTruthBox> boxes) {
  sim::FrameGroundTruth truth;
  truth.boxes = boxes;
  return truth;
}

sim::GroundTruthBox MakeBox(int32_t id, sim::ObjectClass cls, RectI rect,
                            double visibility) {
  sim::GroundTruthBox box;
  box.entity_id = id;
  box.object_class = cls;
  box.box = rect;
  box.visible_fraction = visibility;
  return box;
}

TEST(MiniYoloTest, ForwardProducesGridActivations) {
  MiniYolo detector;
  Tensor grid = detector.Forward(GradientFrame(96, 54));
  EXPECT_EQ(grid.channels(), 8);
  EXPECT_EQ(grid.height(), 12);
  EXPECT_EQ(grid.width(), 12);
  EXPECT_GT(detector.MacsPerFrame(), 1000000);
}

TEST(MiniYoloTest, DetectsClearlyVisibleObjects) {
  MiniYolo detector;
  Frame frame = GradientFrame(160, 90);
  auto truth = MakeTruth({MakeBox(1001, sim::ObjectClass::kVehicle,
                                  {40, 30, 100, 70}, 1.0)});
  int detected = 0;
  for (int f = 0; f < 40; ++f) {
    for (const Detection& d : detector.Detect(frame, truth, f)) {
      if (d.entity_id == 1001) ++detected;
    }
  }
  EXPECT_GT(detected, 25);  // High recall for large fully-visible objects.
}

TEST(MiniYoloTest, NeverDetectsHeavilyOccludedObjects) {
  MiniYolo detector;
  Frame frame = GradientFrame(160, 90);
  auto truth = MakeTruth({MakeBox(1001, sim::ObjectClass::kVehicle,
                                  {40, 30, 100, 70}, 0.05)});
  for (int f = 0; f < 20; ++f) {
    for (const Detection& d : detector.Detect(frame, truth, f)) {
      EXPECT_NE(d.entity_id, 1001);
    }
  }
}

TEST(MiniYoloTest, NeverDetectsTinyObjects) {
  MiniYolo detector;
  Frame frame = GradientFrame(160, 90);
  auto truth = MakeTruth({MakeBox(1001, sim::ObjectClass::kVehicle,
                                  {40, 30, 42, 32}, 1.0)});
  for (int f = 0; f < 20; ++f) {
    EXPECT_TRUE(detector.Detect(frame, truth, f).empty() ||
                detector.Detect(frame, truth, f)[0].entity_id != 1001);
  }
}

TEST(MiniYoloTest, DeterministicPerFrameAndEntity) {
  MiniYolo a, b;
  Frame frame = GradientFrame(160, 90);
  auto truth = MakeTruth({MakeBox(1001, sim::ObjectClass::kVehicle,
                                  {40, 30, 100, 70}, 0.8),
                          MakeBox(2002, sim::ObjectClass::kPedestrian,
                                  {110, 20, 130, 60}, 0.9)});
  for (int f = 0; f < 10; ++f) {
    auto da = a.Detect(frame, truth, f);
    auto db = b.Detect(frame, truth, f);
    ASSERT_EQ(da.size(), db.size());
    for (size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].box, db[i].box);
      EXPECT_DOUBLE_EQ(da[i].score, db[i].score);
    }
  }
}

TEST(MiniYoloTest, EmptyTruthYieldsAtMostFalsePositives) {
  MiniYolo detector;
  Frame frame = GradientFrame(160, 90);
  sim::FrameGroundTruth empty;
  int false_positives = 0;
  for (int f = 0; f < 200; ++f) {
    false_positives += static_cast<int>(detector.Detect(frame, empty, f).size());
  }
  // Around options.false_positives_per_frame * 200 = ~8.
  EXPECT_LT(false_positives, 30);
}

TEST(MiniYoloTest, ScoresSortedDescending) {
  MiniYolo detector;
  Frame frame = GradientFrame(160, 90);
  auto truth = MakeTruth({MakeBox(1001, sim::ObjectClass::kVehicle,
                                  {10, 10, 60, 50}, 1.0),
                          MakeBox(1002, sim::ObjectClass::kVehicle,
                                  {80, 30, 140, 80}, 0.5)});
  auto detections = detector.Detect(frame, truth, 3);
  for (size_t i = 1; i < detections.size(); ++i) {
    EXPECT_GE(detections[i - 1].score, detections[i].score);
  }
}

TEST(MiniYoloTest, ClassColorsAreDistinctNonOmega) {
  video::Yuv vehicle = ClassColor(sim::ObjectClass::kVehicle);
  video::Yuv pedestrian = ClassColor(sim::ObjectClass::kPedestrian);
  EXPECT_FALSE(video::IsOmega(vehicle));
  EXPECT_FALSE(video::IsOmega(pedestrian));
  EXPECT_NE(vehicle, pedestrian);
}

// --- Font & overlay ---

TEST(FontTest, TextWidthScalesLinearly) {
  EXPECT_EQ(TextWidth("AB", 1), 11);
  EXPECT_EQ(TextWidth("AB", 2), 22);
  EXPECT_EQ(TextWidth("", 3), 0);
  EXPECT_EQ(TextHeight(2), 14);
}

TEST(FontTest, DrawTextWritesInkInsideBounds) {
  Frame frame(64, 32);
  DrawText(frame, "HI", 4, 4, 2, {235, 128, 128});
  int ink = 0;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (frame.Y(x, y) == 235) ++ink;
    }
  }
  EXPECT_GT(ink, 20);
}

TEST(FontTest, DrawTextClipsAtEdges) {
  Frame frame(16, 8);
  DrawText(frame, "WWWWWW", -10, -3, 3, {235, 128, 128});  // Mostly off-frame.
  SUCCEED();  // No crash; clipping handled.
}

TEST(OverlayTest, DetectionFrameFillsClassColor) {
  Detection detection;
  detection.object_class = sim::ObjectClass::kVehicle;
  detection.box = {10, 10, 20, 20};
  detection.score = 0.9;
  Frame frame = RenderDetectionFrame(32, 32, {detection});
  video::Yuv expected = ClassColor(sim::ObjectClass::kVehicle);
  EXPECT_EQ(frame.Y(15, 15), expected.y);
  EXPECT_EQ(frame.Y(5, 5), video::kOmega.y);
  EXPECT_EQ(frame.U(5, 5), video::kOmega.u);
}

TEST(OverlayTest, HigherScoreWinsOverlap) {
  Detection low, high;
  low.object_class = sim::ObjectClass::kVehicle;
  low.box = {0, 0, 20, 20};
  low.score = 0.3;
  high.object_class = sim::ObjectClass::kPedestrian;
  high.box = {10, 10, 30, 30};
  high.score = 0.9;
  Frame frame = RenderDetectionFrame(32, 32, {low, high});
  video::Yuv pedestrian = ClassColor(sim::ObjectClass::kPedestrian);
  EXPECT_EQ(frame.Y(15, 15), pedestrian.y);  // Overlap region.
}

TEST(OverlayTest, CaptionFrameRespectsCueSettings) {
  video::WebVttDocument captions;
  video::WebVttCue cue;
  cue.start_seconds = 0;
  cue.end_seconds = 10;
  cue.line_percent = 50;
  cue.position_percent = 50;
  cue.text = "X";
  captions.cues.push_back(cue);
  Frame frame = RenderCaptionFrame(64, 64, captions, 1.0);
  // Ink near the centre, omega at the corner.
  int centre_ink = 0;
  for (int y = 24; y < 40; ++y) {
    for (int x = 24; x < 40; ++x) {
      if (frame.Y(x, y) > 200) ++centre_ink;
    }
  }
  EXPECT_GT(centre_ink, 3);
  EXPECT_EQ(frame.Y(0, 0), video::kOmega.y);
}

TEST(OverlayTest, InactiveCuesRenderNothing) {
  video::WebVttDocument captions;
  video::WebVttCue cue;
  cue.start_seconds = 5;
  cue.end_seconds = 6;
  cue.text = "LATE";
  captions.cues.push_back(cue);
  Frame frame = RenderCaptionFrame(32, 32, captions, 1.0);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      EXPECT_EQ(frame.Y(x, y), video::kOmega.y);
    }
  }
}

TEST(OverlayTest, DetectionSerializationRoundTrips) {
  std::vector<std::vector<Detection>> per_frame(2);
  Detection d;
  d.object_class = sim::ObjectClass::kPedestrian;
  d.box = {1, 2, 3, 4};
  d.score = 0.75;
  d.entity_id = 2007;
  per_frame[0].push_back(d);
  auto parsed = ParseDetections(SerializeDetections(per_frame));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  ASSERT_EQ((*parsed)[0].size(), 1u);
  EXPECT_EQ((*parsed)[0][0].box, (RectI{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ((*parsed)[0][0].score, 0.75);
  EXPECT_EQ((*parsed)[0][0].entity_id, 2007);
  EXPECT_TRUE((*parsed)[1].empty());
}

// --- Background masking ---

class BackgroundEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BackgroundEquivalence, RunningMatchesNaive) {
  int m = GetParam();
  Video input = GradientVideo(32, 24, 12);
  // Add a moving bright block so some pixels are dynamic.
  for (int f = 0; f < input.FrameCount(); ++f) {
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 6; ++x) {
        input.frames[static_cast<size_t>(f)].SetY((f * 2 + x) % 32, (y + f) % 24, 250);
      }
    }
  }
  auto running = MaskBackgroundRunning(input, m, 0.15);
  auto naive = MaskBackgroundNaive(input, m, 0.15);
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(running->FrameCount(), naive->FrameCount());
  for (int f = 0; f < running->FrameCount(); ++f) {
    EXPECT_TRUE(running->frames[static_cast<size_t>(f)].SameContentAs(
        naive->frames[static_cast<size_t>(f)]))
        << "frame " << f << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, BackgroundEquivalence,
                         ::testing::Values(1, 2, 3, 5, 12, 40));

TEST(BackgroundTest, StaticVideoFullyMasked) {
  Video input;
  input.fps = 15;
  Frame constant(16, 16);
  constant.Fill(100, 110, 120);
  for (int i = 0; i < 6; ++i) input.frames.push_back(constant);
  auto masked = MaskBackgroundRunning(input, 4, 0.2);
  ASSERT_TRUE(masked.ok());
  for (const Frame& frame : masked->frames) {
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        EXPECT_EQ(frame.Y(x, y), video::kOmega.y);
      }
    }
  }
}

TEST(BackgroundTest, RejectsBadParameters) {
  Video input = GradientVideo(8, 8, 3);
  EXPECT_FALSE(MaskBackgroundRunning(input, 0, 0.2).ok());
  EXPECT_FALSE(MaskBackgroundRunning(input, 3, 0.0).ok());
  EXPECT_FALSE(MaskBackgroundRunning(input, 3, 1.0).ok());
  Video empty;
  EXPECT_FALSE(MaskBackgroundRunning(empty, 3, 0.2).ok());
}

// --- ALPR ---

TEST(AlprTest, TemplateHasPlateStructure) {
  std::vector<float> tmpl = RenderPlateTemplate("ABC123", 38, 9);
  // Border cells are white (1), some interior cells dark (0).
  EXPECT_FLOAT_EQ(tmpl[0], 1.0f);
  int dark = 0;
  for (float v : tmpl) {
    if (v < 0.5f) ++dark;
  }
  EXPECT_GT(dark, 30);
}

/// Paints a plate into a frame at the given rectangle using the canonical
/// layout (mirrors the simulator's plate shader).
void PaintPlate(Frame& frame, const std::string& plate, const RectI& rect) {
  std::vector<float> tmpl = RenderPlateTemplate(plate, rect.Width(), rect.Height());
  for (int y = 0; y < rect.Height(); ++y) {
    for (int x = 0; x < rect.Width(); ++x) {
      bool dark = tmpl[static_cast<size_t>(y) * rect.Width() + x] < 0.5f;
      frame.SetPixel(rect.x0 + x, rect.y0 + y, dark ? 25 : 230, 128, 128);
    }
  }
}

TEST(AlprTest, FindsPaintedPlate) {
  Frame frame = GradientFrame(160, 90);
  PaintPlate(frame, "QW3RT9", {60, 40, 98, 49});
  PlateRecognizer recognizer;
  PlateSearchResult result = recognizer.FindPlate(frame, {40, 25, 120, 70}, "QW3RT9");
  EXPECT_TRUE(result.found);
  EXPECT_GT(result.score, 0.7);
  EXPECT_LT(std::abs(result.box.x0 - 60), 8);
}

TEST(AlprTest, RejectsWrongPlate) {
  Frame frame = GradientFrame(160, 90);
  PaintPlate(frame, "QW3RT9", {60, 40, 98, 49});
  PlateRecognizer recognizer;
  PlateSearchResult wrong = recognizer.FindPlate(frame, {40, 25, 120, 70}, "ZZZZZZ");
  PlateSearchResult right = recognizer.FindPlate(frame, {40, 25, 120, 70}, "QW3RT9");
  EXPECT_GT(right.score, wrong.score + 0.1);
}

TEST(AlprTest, NoPlateNoMatch) {
  Frame frame = GradientFrame(160, 90);
  PlateRecognizer recognizer;
  PlateSearchResult result = recognizer.FindPlate(frame, {10, 10, 150, 80}, "AB12CD");
  EXPECT_FALSE(result.found);
}

TEST(AlprTest, ReadPlateRecoversLargeGlyphs) {
  Frame frame(200, 60);
  frame.Fill(80, 128, 128);
  PaintPlate(frame, "H7K2M4", {10, 10, 162, 46});  // 4 px per glyph column.
  PlateRecognizer recognizer;
  auto read = recognizer.ReadPlate(frame, {10, 10, 162, 46});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "H7K2M4");
}

TEST(AlprTest, ReadPlateRejectsTinyRegions) {
  Frame frame = GradientFrame(32, 32);
  PlateRecognizer recognizer;
  EXPECT_FALSE(recognizer.ReadPlate(frame, {0, 0, 4, 2}).ok());
}

TEST(AlprTest, MalformedQueryPlateNotFound) {
  Frame frame = GradientFrame(64, 64);
  PlateRecognizer recognizer;
  EXPECT_FALSE(recognizer.FindPlate(frame, {0, 0, 64, 64}, "ABC").found);
}

// --- Stitcher ---

TEST(StitcherTest, StitchedPanoramaMatchesDirectRender) {
  // Render four 120-degree faces of a scene and a direct equirect sample of
  // the same scene; the stitch should be close.
  sim::Tile tile(sim::TilePoolEntry(1), 91);
  sim::PanoramicRig rig;
  rig.position = {100, 100, 7};
  rig.base_yaw = 0.4;
  rig.face_intrinsics = {96, 54, 120.0};
  auto cameras = rig.Faces();

  std::array<Frame, 4> faces;
  for (int f = 0; f < 4; ++f) {
    sim::RenderOptions options;
    options.weather_effects = false;  // Pixel-deterministic geometry only.
    sim::Framebuffer fb =
        RenderScene(tile, cameras[static_cast<size_t>(f)], 0, 99, options);
    faces[static_cast<size_t>(f)] = video::RgbToFrame(fb.color);
  }
  auto pano = StitchEquirect({&faces[0], &faces[1], &faces[2], &faces[3]}, cameras,
                             192, 96, rig.base_yaw);
  ASSERT_TRUE(pano.ok());
  EXPECT_EQ(pano->width(), 192);
  EXPECT_EQ(pano->height(), 96);
  // The horizon band should contain plenty of non-black content from all
  // four directions.
  int bright = 0;
  for (int x = 0; x < 192; ++x) {
    if (pano->Y(x, 48) > 30) ++bright;
  }
  EXPECT_GT(bright, 96);
}

TEST(StitcherTest, EveryOutputPixelCoveredByAFace) {
  // With 120-degree faces at 90-degree spacing, no output pixel should be
  // left at the black fallback when faces contain a bright constant.
  sim::PanoramicRig rig;
  rig.face_intrinsics = {64, 64, 120.0};
  auto cameras = rig.Faces();
  Frame bright(64, 64);
  bright.Fill(200, 128, 128);
  auto pano = StitchEquirect({&bright, &bright, &bright, &bright}, cameras, 128, 64,
                             0.0);
  ASSERT_TRUE(pano.ok());
  // The equatorial band is covered by the faces; extreme poles exceed the
  // faces' vertical FOV and may clamp, so check the middle half.
  for (int y = 16; y < 48; ++y) {
    for (int x = 0; x < 128; ++x) {
      EXPECT_GT(pano->Y(x, y), 150) << "(" << x << ", " << y << ")";
    }
  }
}

TEST(StitcherTest, RejectsMissingFaces) {
  sim::PanoramicRig rig;
  auto cameras = rig.Faces();
  Frame frame(8, 8);
  EXPECT_FALSE(
      StitchEquirect({&frame, nullptr, &frame, &frame}, cameras, 16, 8, 0.0).ok());
}

TEST(StitcherTest, VideoStitchProcessesAllFrames) {
  sim::PanoramicRig rig;
  rig.face_intrinsics = {32, 32, 120.0};
  auto cameras = rig.Faces();
  Video face;
  face.fps = 15;
  face.frames.resize(3, Frame(32, 32));
  auto pano = StitchEquirectVideo({&face, &face, &face, &face}, cameras, 64, 32, 0.0);
  ASSERT_TRUE(pano.ok());
  EXPECT_EQ(pano->FrameCount(), 3);
}

// --- Tiling ---

TEST(TilingTest, PartitionReassembleRoundTrip) {
  Video input = GradientVideo(48, 36, 3);
  auto tiles = PartitionVideo(input, 16, 12);
  ASSERT_TRUE(tiles.ok());
  EXPECT_EQ(tiles->size(), 9u);
  auto reassembled = ReassembleTiles(*tiles, 3, 3);
  ASSERT_TRUE(reassembled.ok());
  ASSERT_EQ(reassembled->FrameCount(), 3);
  for (int f = 0; f < 3; ++f) {
    EXPECT_TRUE(reassembled->frames[static_cast<size_t>(f)].SameContentAs(
        input.frames[static_cast<size_t>(f)]));
  }
}

TEST(TilingTest, UnevenEdgesHandled) {
  Video input = GradientVideo(50, 38, 2);
  auto tiles = PartitionVideo(input, 16, 12);
  ASSERT_TRUE(tiles.ok());
  EXPECT_EQ(tiles->size(), 16u);  // ceil(50/16) x ceil(38/12) = 4 x 4.
  auto reassembled = ReassembleTiles(*tiles, 4, 4);
  ASSERT_TRUE(reassembled.ok());
  EXPECT_EQ(reassembled->Width(), 50);
  EXPECT_EQ(reassembled->Height(), 38);
  EXPECT_TRUE(reassembled->frames[0].SameContentAs(input.frames[0]));
}

TEST(TilingTest, ReassembleRejectsWrongShape) {
  Video input = GradientVideo(32, 32, 1);
  auto tiles = PartitionVideo(input, 16, 16);
  ASSERT_TRUE(tiles.ok());
  EXPECT_FALSE(ReassembleTiles(*tiles, 3, 2).ok());
}

TEST(TilingTest, TiledReencodeApproximatesInput) {
  Video input = GradientVideo(48, 36, 4);
  int64_t bytes = 0;
  auto result = TiledReencode(input, 16, 12, {1 << 20},
                              video::codec::Profile::kH264Like, &bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Width(), 48);
  EXPECT_GT(bytes, 0);
  auto psnr = video::MeanPsnr(input, *result);
  ASSERT_TRUE(psnr.ok());
  EXPECT_GT(*psnr, 30.0);
}

TEST(TilingTest, LowerBitrateSmallerPayload) {
  Video input = GradientVideo(48, 36, 6);
  // Make it noisy enough that rate control has something to squeeze.
  Pcg32 rng(3, 3);
  for (Frame& frame : input.frames) {
    for (uint8_t& s : frame.y_plane()) {
      s = static_cast<uint8_t>(std::clamp<int>(s + static_cast<int>(rng.NextBounded(64)) - 32, 0, 255));
    }
  }
  int64_t high_bytes = 0, low_bytes = 0;
  auto high = TiledReencode(input, 24, 18, {1 << 22},
                            video::codec::Profile::kH264Like, &high_bytes);
  auto low = TiledReencode(input, 24, 18, {1 << 15},
                           video::codec::Profile::kH264Like, &low_bytes);
  ASSERT_TRUE(high.ok());
  ASSERT_TRUE(low.ok());
  EXPECT_LT(low_bytes, high_bytes);
}

TEST(TilingTest, RejectsEmptyBitrates) {
  Video input = GradientVideo(32, 32, 1);
  EXPECT_FALSE(
      TiledReencode(input, 16, 16, {}, video::codec::Profile::kH264Like).ok());
}

}  // namespace
}  // namespace visualroad::vision
