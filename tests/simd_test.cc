#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/cpu.h"
#include "common/random.h"
#include "simulation/render/scene_renderer.h"
#include "simulation/tile.h"
#include "video/codec/codec.h"
#include "video/codec/motion.h"
#include "video/color.h"
#include "video/image_ops.h"
#include "video/kernels/kernels.h"
#include "vision/background.h"

// Byte-identity suite for the runtime-dispatched SIMD kernel layer
// (DESIGN.md section 13). Every test runs once per SIMD level the host CPU
// supports and asserts the output is bit-for-bit what the scalar kernels
// produce: the vector paths are required to preserve rounding, saturation,
// and early-exit decisions exactly, so goldens and determinism guarantees
// hold regardless of dispatch.

namespace visualroad {
namespace {

namespace kernels = video::kernels;

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels;
  for (int l = 0; l <= static_cast<int>(DetectedSimdLevel()); ++l) {
    levels.push_back(static_cast<SimdLevel>(l));
  }
  return levels;
}

class SimdLevelTest : public testing::TestWithParam<SimdLevel> {
 protected:
  void TearDown() override {
    kernels::SetSimdLevelForTest(RequestedSimdLevel());
  }
};

INSTANTIATE_TEST_SUITE_P(AllLevels, SimdLevelTest,
                         testing::ValuesIn(AvailableLevels()),
                         [](const testing::TestParamInfo<SimdLevel>& info) {
                           return SimdLevelName(info.param);
                         });

// Deterministic content with enough motion and texture to exercise inter
// prediction, early exits, and the masking threshold on both sides.
video::Video MakeVideo(int w, int h, int frames) {
  Pcg32 rng(77, 3);
  video::Video v;
  v.fps = 15;
  for (int f = 0; f < frames; ++f) {
    video::Frame frame(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double value = 120 + 70 * std::sin((x + 3 * f) * 0.11) *
                                 std::cos((y + f) * 0.07) +
                       rng.NextGaussian(0, 4);
        if (value < 0) value = 0;
        if (value > 255) value = 255;
        frame.SetPixel(x, y, static_cast<uint8_t>(value),
                       static_cast<uint8_t>(110 + ((x + f) % 32)),
                       static_cast<uint8_t>(150 - ((y + f) % 32)));
      }
    }
    v.frames.push_back(std::move(frame));
  }
  return v;
}

bool FramesIdentical(const video::Frame& a, const video::Frame& b) {
  return a.width() == b.width() && a.height() == b.height() &&
         a.y_plane() == b.y_plane() && a.u_plane() == b.u_plane() &&
         a.v_plane() == b.v_plane();
}

// --- Kernel-level bitwise identity (direct table comparison) ---

TEST_P(SimdLevelTest, SadMatchesScalarIncludingEarlyExit) {
  const kernels::KernelTable& scalar = kernels::KernelsFor(SimdLevel::kScalar);
  const kernels::KernelTable& table = kernels::KernelsFor(GetParam());
  Pcg32 rng(11, 1);
  constexpr int kStride = 80;
  std::vector<uint8_t> cur(kStride * 48), ref(kStride * 48);
  for (uint8_t& v : cur) v = static_cast<uint8_t>(rng.NextInt(0, 255));
  for (uint8_t& v : ref) v = static_cast<uint8_t>(rng.NextInt(0, 255));
  for (int size : {8, 16, 32}) {
    for (int trial = 0; trial < 40; ++trial) {
      int cx = rng.NextInt(0, kStride - size);
      int cy = rng.NextInt(0, 48 - size);
      int rx = rng.NextInt(0, kStride - size);
      int ry = rng.NextInt(0, 48 - size);
      // Bounds span "never exits" through "exits on the first row" so the
      // per-row early-exit decision itself is compared, not just final SADs.
      for (int64_t bound :
           {static_cast<int64_t>(INT64_MAX), static_cast<int64_t>(100000),
            static_cast<int64_t>(size * 40), static_cast<int64_t>(1)}) {
        int64_t expected =
            scalar.sad_bounded(&cur[cy * kStride + cx], kStride,
                               &ref[ry * kStride + rx], kStride, size, bound);
        int64_t actual =
            table.sad_bounded(&cur[cy * kStride + cx], kStride,
                              &ref[ry * kStride + rx], kStride, size, bound);
        ASSERT_EQ(expected, actual)
            << "size " << size << " bound " << bound << " trial " << trial;
      }
    }
  }
}

TEST_P(SimdLevelTest, DctQuantPipelineBitwiseIdentical) {
  const kernels::KernelTable& scalar = kernels::KernelsFor(SimdLevel::kScalar);
  const kernels::KernelTable& table = kernels::KernelsFor(GetParam());
  Pcg32 rng(12, 2);
  for (int trial = 0; trial < 60; ++trial) {
    int16_t block[64];
    for (int16_t& v : block) v = static_cast<int16_t>(rng.NextInt(-255, 255));

    double coeff_s[64], coeff_v[64];
    scalar.forward_dct(block, coeff_s);
    table.forward_dct(block, coeff_v);
    ASSERT_EQ(0, std::memcmp(coeff_s, coeff_v, sizeof(coeff_s))) << trial;

    double step = 0.25 + 0.5 * trial;
    int16_t levels_s[64], levels_v[64];
    scalar.quantize(coeff_s, step, levels_s);
    table.quantize(coeff_s, step, levels_v);
    ASSERT_EQ(0, std::memcmp(levels_s, levels_v, sizeof(levels_s))) << trial;

    double recon_s[64], recon_v[64];
    scalar.dequantize(levels_s, step, recon_s);
    table.dequantize(levels_s, step, recon_v);
    ASSERT_EQ(0, std::memcmp(recon_s, recon_v, sizeof(recon_s))) << trial;

    int16_t out_s[64], out_v[64];
    scalar.inverse_dct(recon_s, out_s);
    table.inverse_dct(recon_s, out_v);
    ASSERT_EQ(0, std::memcmp(out_s, out_v, sizeof(out_s))) << trial;
  }
}

TEST_P(SimdLevelTest, ColorRowKernelsBitwiseIdentical) {
  const kernels::KernelTable& scalar = kernels::KernelsFor(SimdLevel::kScalar);
  const kernels::KernelTable& table = kernels::KernelsFor(GetParam());
  Pcg32 rng(13, 3);
  // Odd width so every vector variant has a scalar tail to get right.
  constexpr int kN = 257;
  std::vector<uint8_t> rgb(kN * 3);
  for (uint8_t& v : rgb) v = static_cast<uint8_t>(rng.NextInt(0, 255));
  std::vector<uint8_t> ys(kN), us(kN), vs(kN), yv(kN), uv(kN), vv(kN);
  scalar.rgb_to_yuv_row(rgb.data(), kN, ys.data(), us.data(), vs.data());
  table.rgb_to_yuv_row(rgb.data(), kN, yv.data(), uv.data(), vv.data());
  EXPECT_EQ(ys, yv);
  EXPECT_EQ(us, uv);
  EXPECT_EQ(vs, vv);

  std::vector<uint8_t> luma(kN), cb(kN / 2 + 1), cr(kN / 2 + 1);
  for (uint8_t& v : luma) v = static_cast<uint8_t>(rng.NextInt(0, 255));
  for (uint8_t& v : cb) v = static_cast<uint8_t>(rng.NextInt(0, 255));
  for (uint8_t& v : cr) v = static_cast<uint8_t>(rng.NextInt(0, 255));
  std::vector<uint8_t> rgb_s(kN * 3), rgb_v(kN * 3);
  scalar.yuv_to_rgb_row(luma.data(), cb.data(), cr.data(), kN, rgb_s.data());
  table.yuv_to_rgb_row(luma.data(), cb.data(), cr.data(), kN, rgb_v.data());
  EXPECT_EQ(rgb_s, rgb_v);
}

TEST_P(SimdLevelTest, MaskAndAccumulateRowsBitwiseIdentical) {
  const kernels::KernelTable& scalar = kernels::KernelsFor(SimdLevel::kScalar);
  const kernels::KernelTable& table = kernels::KernelsFor(GetParam());
  Pcg32 rng(14, 4);
  constexpr int kN = 251;
  std::vector<uint8_t> pv(kN), pb(kN);
  for (int i = 0; i < kN; ++i) {
    pv[i] = static_cast<uint8_t>(rng.NextInt(0, 255));
    // Small perturbations keep the relative difference near the threshold;
    // forced zeros exercise the pv==0 guard (static iff pb==0 too).
    pb[i] = static_cast<uint8_t>(std::clamp(
        pv[i] + static_cast<int>(rng.NextInt(-12, 12)), 0, 255));
    if (i % 17 == 0) pv[i] = 0;
    if (i % 34 == 0) pb[i] = 0;
  }
  for (double epsilon : {0.01, 0.1, 0.5}) {
    std::vector<uint8_t> mask_s(kN), mask_v(kN);
    scalar.mask_static_row(pv.data(), pb.data(), epsilon, kN, mask_s.data());
    table.mask_static_row(pv.data(), pb.data(), epsilon, kN, mask_v.data());
    EXPECT_EQ(mask_s, mask_v) << "epsilon " << epsilon;
  }

  std::vector<uint8_t> src(kN);
  for (uint8_t& v : src) v = static_cast<uint8_t>(rng.NextInt(0, 255));
  std::vector<uint32_t> acc_s(kN), acc_v(kN);
  for (int i = 0; i < kN; ++i) acc_s[i] = acc_v[i] = rng.NextInt(0, 1000);
  for (int sign : {1, -1, -1, 1}) {
    scalar.accumulate_row(src.data(), kN, sign, acc_s.data());
    table.accumulate_row(src.data(), kN, sign, acc_v.data());
    ASSERT_EQ(acc_s, acc_v) << "sign " << sign;
  }
}

TEST_P(SimdLevelTest, RasterSpanBitwiseIdentical) {
  const kernels::KernelTable& scalar = kernels::KernelsFor(SimdLevel::kScalar);
  const kernels::KernelTable& table = kernels::KernelsFor(GetParam());
  // A triangle with partial span coverage so valid/invalid transitions land
  // mid-vector; per-vertex 1/z and attribute/z mirror DrawClipped's setup.
  kernels::SpanSetup s{};
  s.s0x = 12.4;  s.s0y = 9.3;
  s.s1x = 118.7; s.s1y = 31.2;
  s.s2x = 57.1;  s.s2y = 96.8;
  double area = (s.s1x - s.s0x) * (s.s2y - s.s0y) -
                (s.s2x - s.s0x) * (s.s1y - s.s0y);
  s.inv_area = 1.0 / area;
  s.z0 = 1.0 / 4.0;  s.z1 = 1.0 / 9.5;  s.z2 = 1.0 / 2.25;
  s.u0 = 0.0 * s.z0; s.u1 = 1.0 * s.z1; s.u2 = 0.5 * s.z2;
  s.v0 = 0.0 * s.z0; s.v1 = 0.25 * s.z1; s.v2 = 1.0 * s.z2;

  for (int y = 8; y < 100; y += 7) {
    double py = y + 0.5;
    for (int n : {1, 3, 64}) {
      std::vector<uint8_t> valid_s(n, 9), valid_v(n, 9);
      std::vector<float> depth_s(n), depth_v(n);
      std::vector<double> u_s(n), u_v(n), v_s(n), v_v(n);
      scalar.raster_span(s, py, 5, n, valid_s.data(), depth_s.data(),
                         u_s.data(), v_s.data());
      table.raster_span(s, py, 5, n, valid_v.data(), depth_v.data(),
                        u_v.data(), v_v.data());
      ASSERT_EQ(valid_s, valid_v) << "y " << y << " n " << n;
      for (int i = 0; i < n; ++i) {
        if (!valid_s[i]) continue;
        ASSERT_EQ(0, std::memcmp(&depth_s[i], &depth_v[i], sizeof(float)));
        ASSERT_EQ(0, std::memcmp(&u_s[i], &u_v[i], sizeof(double)));
        ASSERT_EQ(0, std::memcmp(&v_s[i], &v_v[i], sizeof(double)));
      }
    }
  }
}

// --- End-to-end identity through the public APIs ---

TEST_P(SimdLevelTest, CodecRoundTripBitstreamIdentical) {
  video::Video content = MakeVideo(96, 64, 6);
  video::codec::EncoderConfig config;
  config.qp = 28;
  config.gop_length = 3;  // Forces inter frames -> motion search -> SAD.

  kernels::SetSimdLevelForTest(SimdLevel::kScalar);
  auto encoded_scalar = video::codec::Encode(content, config);
  ASSERT_TRUE(encoded_scalar.ok());
  auto decoded_scalar = video::codec::Decode(*encoded_scalar);
  ASSERT_TRUE(decoded_scalar.ok());

  kernels::SetSimdLevelForTest(GetParam());
  auto encoded = video::codec::Encode(content, config);
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ(encoded_scalar->frames.size(), encoded->frames.size());
  for (size_t f = 0; f < encoded->frames.size(); ++f) {
    EXPECT_EQ(encoded_scalar->frames[f].keyframe, encoded->frames[f].keyframe);
    EXPECT_EQ(encoded_scalar->frames[f].data, encoded->frames[f].data)
        << "frame " << f;
  }
  auto decoded = video::codec::Decode(*encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded_scalar->frames.size(), decoded->frames.size());
  for (size_t f = 0; f < decoded->frames.size(); ++f) {
    EXPECT_TRUE(FramesIdentical(decoded_scalar->frames[f], decoded->frames[f]))
        << "frame " << f;
  }
}

TEST_P(SimdLevelTest, DiamondSearchVectorsAndStatsIdentical) {
  video::codec::Plane reference(240, 136), current(240, 136);
  for (int y = 0; y < 136; ++y) {
    for (int x = 0; x < 240; ++x) {
      uint8_t v = static_cast<uint8_t>(128 + 80 * std::sin(x * 0.12) *
                                                 std::cos(y * 0.1));
      reference.Set(x, y, v);
      current.Set(x, y,
                  reference.At(std::min(239, x + 3), std::max(0, y - 2)));
    }
  }
  struct Mv {
    int dx, dy;
    int64_t sad;
  };
  auto sweep = [&](SimdLevel level) {
    kernels::SetSimdLevelForTest(level);
    std::vector<Mv> mvs;
    for (int by = 0; by + 16 <= 136; by += 16) {
      for (int bx = 0; bx + 16 <= 240; bx += 16) {
        video::codec::MotionVector mv = video::codec::DiamondSearch(
            current, reference, bx, by, 16, 8, {});
        mvs.push_back({mv.dx, mv.dy, mv.sad});
      }
    }
    return mvs;
  };
  std::vector<Mv> expected = sweep(SimdLevel::kScalar);
  std::vector<Mv> actual = sweep(GetParam());
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].dx, actual[i].dx) << "block " << i;
    EXPECT_EQ(expected[i].dy, actual[i].dy) << "block " << i;
    EXPECT_EQ(expected[i].sad, actual[i].sad) << "block " << i;
  }
}

TEST_P(SimdLevelTest, RenderedFrameBitwiseIdentical) {
  static sim::Tile* tile = new sim::Tile(sim::TilePoolEntry(2), 321);
  double line = tile->roads().road_lines()[0];
  sim::Camera camera({240, 136, 62.0}, {{line, 20.0, 14.0}, kPi / 2.0, -0.55});

  kernels::SetSimdLevelForTest(SimdLevel::kScalar);
  sim::Framebuffer expected = sim::RenderScene(*tile, camera, 0, 99);
  kernels::SetSimdLevelForTest(GetParam());
  sim::Framebuffer actual = sim::RenderScene(*tile, camera, 0, 99);

  EXPECT_EQ(expected.color.data, actual.color.data);
  EXPECT_EQ(expected.ids, actual.ids);
  ASSERT_EQ(expected.depth.size(), actual.depth.size());
  EXPECT_EQ(0, std::memcmp(expected.depth.data(), actual.depth.data(),
                           expected.depth.size() * sizeof(float)));
}

TEST_P(SimdLevelTest, BackgroundSubtractionBitwiseIdentical) {
  video::Video content = MakeVideo(64, 48, 8);
  kernels::SetSimdLevelForTest(SimdLevel::kScalar);
  auto expected = vision::MaskBackgroundRunning(content, 4, 0.1);
  ASSERT_TRUE(expected.ok());
  kernels::SetSimdLevelForTest(GetParam());
  for (auto* masker :
       {&vision::MaskBackgroundRunning, &vision::MaskBackgroundNaive}) {
    auto actual = (*masker)(content, 4, 0.1);
    ASSERT_TRUE(actual.ok());
    ASSERT_EQ(expected->frames.size(), actual->frames.size());
    for (size_t f = 0; f < actual->frames.size(); ++f) {
      EXPECT_TRUE(FramesIdentical(expected->frames[f], actual->frames[f]))
          << "frame " << f;
    }
  }
}

TEST_P(SimdLevelTest, ColorConversionRoundTripIdentical) {
  Pcg32 rng(15, 5);
  video::RgbImage image(63, 37);  // Odd sizes: chroma edge clamps + row tails.
  for (uint8_t& v : image.data) v = static_cast<uint8_t>(rng.NextInt(0, 255));

  kernels::SetSimdLevelForTest(SimdLevel::kScalar);
  video::Frame frame_scalar = video::RgbToFrame(image);
  video::RgbImage back_scalar = video::FrameToRgb(frame_scalar);

  kernels::SetSimdLevelForTest(GetParam());
  video::Frame frame = video::RgbToFrame(image);
  video::RgbImage back = video::FrameToRgb(frame);

  EXPECT_TRUE(FramesIdentical(frame_scalar, frame));
  EXPECT_EQ(back_scalar.data, back.data);
}

TEST_P(SimdLevelTest, MaskAgainstBackgroundBitwiseIdentical) {
  video::Video content = MakeVideo(50, 34, 2);
  kernels::SetSimdLevelForTest(SimdLevel::kScalar);
  auto expected =
      video::MaskAgainstBackground(content.frames[0], content.frames[1], 0.12);
  ASSERT_TRUE(expected.ok());
  kernels::SetSimdLevelForTest(GetParam());
  auto actual =
      video::MaskAgainstBackground(content.frames[0], content.frames[1], 0.12);
  ASSERT_TRUE(actual.ok());
  EXPECT_TRUE(FramesIdentical(*expected, *actual));
}

// --- Dispatch plumbing ---

TEST(SimdDispatchTest, ParseAndNameRoundTrip) {
  SimdLevel level = SimdLevel::kAvx2;
  EXPECT_TRUE(ParseSimdLevel("scalar", &level));
  EXPECT_EQ(SimdLevel::kScalar, level);
  EXPECT_TRUE(ParseSimdLevel("SSE2", &level));
  EXPECT_EQ(SimdLevel::kSse2, level);
  EXPECT_TRUE(ParseSimdLevel("Avx2", &level));
  EXPECT_EQ(SimdLevel::kAvx2, level);
  EXPECT_FALSE(ParseSimdLevel("avx512", &level));
  EXPECT_EQ(SimdLevel::kAvx2, level);  // Unparseable input leaves it alone.
  for (SimdLevel l :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    SimdLevel parsed = SimdLevel::kScalar;
    EXPECT_TRUE(ParseSimdLevel(SimdLevelName(l), &parsed));
    EXPECT_EQ(l, parsed);
  }
}

TEST(SimdDispatchTest, RequestedLevelNeverExceedsDetected) {
  EXPECT_LE(static_cast<int>(RequestedSimdLevel()),
            static_cast<int>(DetectedSimdLevel()));
}

TEST(SimdDispatchTest, SetLevelForTestClampsAndRepoints) {
  SimdLevel detected = DetectedSimdLevel();
  // Asking for AVX2 selects at most what the CPU has.
  SimdLevel selected = kernels::SetSimdLevelForTest(SimdLevel::kAvx2);
  EXPECT_EQ(detected, selected);
  EXPECT_EQ(selected, kernels::ActiveSimdLevel());
  EXPECT_EQ(&kernels::KernelsFor(selected), &kernels::Kernels());

  selected = kernels::SetSimdLevelForTest(SimdLevel::kScalar);
  EXPECT_EQ(SimdLevel::kScalar, selected);
  EXPECT_EQ(&kernels::KernelsFor(SimdLevel::kScalar), &kernels::Kernels());

  kernels::SetSimdLevelForTest(RequestedSimdLevel());
  EXPECT_EQ(RequestedSimdLevel(), kernels::ActiveSimdLevel());
}

TEST(SimdDispatchTest, KernelCallCountersAccumulate) {
  uint64_t before = kernels::KernelCallCount(kernels::Kernel::kSad);
  kernels::CountKernelCalls(kernels::Kernel::kSad, 5);
  kernels::CountKernelCalls(kernels::Kernel::kSad, 0);  // No-op.
  EXPECT_EQ(before + 5, kernels::KernelCallCount(kernels::Kernel::kSad));

  // Running any codec work drives the counters through the real call sites.
  uint64_t dct_before = kernels::KernelCallCount(kernels::Kernel::kForwardDct);
  video::Video content = MakeVideo(32, 32, 2);
  video::codec::EncoderConfig config;
  auto encoded = video::codec::Encode(content, config);
  ASSERT_TRUE(encoded.ok());
  EXPECT_GT(kernels::KernelCallCount(kernels::Kernel::kForwardDct), dct_before);
}

TEST(SimdDispatchTest, KernelNamesAreStableMetricLabels) {
  EXPECT_STREQ("sad", kernels::KernelName(kernels::Kernel::kSad));
  EXPECT_STREQ("fdct", kernels::KernelName(kernels::Kernel::kForwardDct));
  EXPECT_STREQ("idct", kernels::KernelName(kernels::Kernel::kInverseDct));
  EXPECT_STREQ("quant", kernels::KernelName(kernels::Kernel::kQuantize));
  EXPECT_STREQ("dequant", kernels::KernelName(kernels::Kernel::kDequantize));
  EXPECT_STREQ("rgb2yuv", kernels::KernelName(kernels::Kernel::kRgbToYuvRow));
  EXPECT_STREQ("yuv2rgb", kernels::KernelName(kernels::Kernel::kYuvToRgbRow));
  EXPECT_STREQ("mask", kernels::KernelName(kernels::Kernel::kMaskStaticRow));
  EXPECT_STREQ("accum", kernels::KernelName(kernels::Kernel::kAccumulateRow));
  EXPECT_STREQ("raster_span",
               kernels::KernelName(kernels::Kernel::kRasterSpan));
}

}  // namespace
}  // namespace visualroad
