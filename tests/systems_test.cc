#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "driver/datasets.h"
#include "driver/validation.h"
#include "storage/vss.h"
#include "systems/vdbms.h"
#include "systems/video_source.h"
#include "video/codec/gop_cache.h"
#include "video/metrics.h"

namespace visualroad::systems {
namespace {

using queries::QueryId;
using queries::QueryInstance;

class SystemsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::CityConfig config;
    config.scale_factor = 1;
    config.width = 96;
    config.height = 54;
    config.duration_seconds = 1.0;
    config.fps = 15;
    config.seed = 31;
    auto dataset = driver::PrepareDataset(config);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new sim::Dataset(std::move(dataset).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  QueryInstance Sample(QueryId id, uint64_t seed = 5) {
    Pcg32 rng = SubStream(seed, "systems-test", static_cast<uint64_t>(id));
    queries::SamplerOptions options;
    options.max_upsample_exponent = 2;
    auto instance = queries::SampleQueryInstance(id, *dataset_, rng, options);
    EXPECT_TRUE(instance.ok());
    return *instance;
  }

  static sim::Dataset* dataset_;
};

sim::Dataset* SystemsTest::dataset_ = nullptr;

// --- VideoSource ---

TEST_F(SystemsTest, OfflineSourceSupportsSeek) {
  const video::codec::EncodedVideo& stream =
      dataset_->assets[0].container.video;
  VideoSource source = VideoSource::Offline(&stream);
  EXPECT_TRUE(source.SeekSupported());
  auto first = source.Next();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE((*first)->keyframe);
  ASSERT_TRUE(source.Seek(5).ok());
  EXPECT_EQ(source.position(), 5);
  // Exhaust and verify OutOfRange at the end.
  while (!source.AtEnd()) ASSERT_TRUE(source.Next().ok());
  EXPECT_FALSE(source.Next().ok());
}

TEST_F(SystemsTest, OnlineSourceIsForwardOnlyAndThrottled) {
  const video::codec::EncodedVideo& stream =
      dataset_->assets[0].container.video;
  // 100x real time keeps the test fast while still exercising the sleep
  // path: 15 frames at 15 fps = 1 simulated second = ~10ms wall.
  VideoSource source = VideoSource::Online(&stream, 100.0);
  EXPECT_FALSE(source.SeekSupported());
  EXPECT_FALSE(source.Seek(0).ok());
  auto start = std::chrono::steady_clock::now();
  int frames = 0;
  while (!source.AtEnd()) {
    ASSERT_TRUE(source.Next().ok());
    ++frames;
  }
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start).count();
  EXPECT_EQ(frames, stream.FrameCount());
  // Last frame available at (frames-1)/fps / 100 seconds.
  EXPECT_GE(elapsed, (frames - 1) / stream.fps / 100.0 * 0.8);
}

TEST_F(SystemsTest, OfflineSeekResetsPositionDependentState) {
  // Regression: Seek must reset every position-dependent member, so any
  // interleaving of seeks and reads yields exactly the frame at position().
  const video::codec::EncodedVideo& stream =
      dataset_->assets[0].container.video;
  VideoSource source = VideoSource::Offline(&stream);
  for (int target : {5, 2, 9, 0, 9, 4}) {
    ASSERT_TRUE(source.Seek(target).ok());
    EXPECT_EQ(source.position(), target);
    auto frame = source.Next();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ((*frame)->data, stream.frames[static_cast<size_t>(target)].data);
    EXPECT_EQ(source.position(), target + 1);
  }
  EXPECT_FALSE(source.Seek(-1).ok());
  EXPECT_FALSE(source.Seek(stream.FrameCount() + 1).ok());
}

TEST_F(SystemsTest, OnlineSourcePacingAnchorsAtFirstRead) {
  // Regression: the pacing clock starts at the first Next(), not at
  // construction — a source built ahead of consumption must not release an
  // instant backlog of "overdue" frames.
  const video::codec::EncodedVideo& stream =
      dataset_->assets[0].container.video;
  VideoSource source = VideoSource::Online(&stream, 100.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto start = std::chrono::steady_clock::now();
  int frames = 0;
  while (!source.AtEnd()) {
    ASSERT_TRUE(source.Next().ok());
    ++frames;
  }
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start).count();
  EXPECT_EQ(frames, stream.FrameCount());
  EXPECT_GE(elapsed, (frames - 1) / stream.fps / 100.0 * 0.8);
}

TEST_F(SystemsTest, OnlinePacingClampsBurstAfterStall) {
  // Regression: a consumer that stalled for many frame periods used to get
  // the whole backlog released instantly. A live feed cannot replay frames
  // the consumer slept through, so after a long stall delivery must resume
  // paced at the frame rate (small catch-up allowance aside).
  const video::codec::EncodedVideo& stream =
      dataset_->assets[0].container.video;
  ASSERT_GE(stream.FrameCount(), 12);
  // fps 15 x multiplier 13.33 => one frame every ~5 ms.
  VideoSource source = VideoSource::Online(&stream, 200.0 / stream.fps);
  ASSERT_TRUE(source.Next().ok());
  ASSERT_TRUE(source.Next().ok());
  // Stall for ~20 frame periods.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto resume = std::chrono::steady_clock::now();
  int frames = 0;
  while (!source.AtEnd()) {
    ASSERT_TRUE(source.Next().ok());
    ++frames;
  }
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - resume).count();
  EXPECT_EQ(frames, stream.FrameCount() - 2);
  // With the clamp, at most ~4 frames arrive instantly; the rest are paced
  // at 5 ms each. Without it, the whole tail would arrive in ~0 s.
  double frame_seconds = 1.0 / 200.0;
  EXPECT_GE(elapsed, (frames - 5) * frame_seconds * 0.8);
}

TEST_F(SystemsTest, OnlineChannelLossFreezesFramesDeterministically) {
  const video::codec::EncodedVideo& stream =
      dataset_->assets[0].container.video;
  auto profile = fault::ProfileByName("lossy");
  ASSERT_TRUE(profile.ok());
  profile->jitter_delay = std::chrono::microseconds(10);

  auto run = [&](uint64_t seed) {
    fault::FaultInjector injector(*profile, seed);
    VideoSource source = VideoSource::Online(&stream, 10000.0, &injector);
    std::vector<const video::codec::EncodedFrame*> delivered;
    while (!source.AtEnd()) {
      auto frame = source.Next();
      EXPECT_TRUE(frame.ok());
      delivered.push_back(*frame);
    }
    EXPECT_EQ(static_cast<int>(delivered.size()), stream.FrameCount());
    // A lost frame is concealed by repeating the previous delivery, so the
    // consumer still sees one decodable frame per capture slot.
    int repeats = 0;
    for (size_t i = 1; i < delivered.size(); ++i) {
      if (delivered[i] == delivered[i - 1]) ++repeats;
    }
    EXPECT_EQ(repeats, source.frames_degraded());
    return source.frames_degraded();
  };
  int first = run(29);
  EXPECT_GT(first, 0);  // The lossy profile dropped something.
  EXPECT_EQ(first, run(29));  // Same seed, same freeze-frame schedule.
}

TEST_F(SystemsTest, StorageBackedSourceMatchesInMemorySource) {
  namespace fs = std::filesystem;
  // Re-encode with short GOPs so the windowed source issues several
  // GOP-aligned range reads instead of one whole-file fetch.
  auto decoded =
      video::codec::ParallelDecode(dataset_->assets[0].container.video);
  ASSERT_TRUE(decoded.ok());
  video::codec::EncoderConfig config;
  config.gop_length = 4;
  auto reencoded = video::codec::ParallelEncode(*decoded, config);
  ASSERT_TRUE(reencoded.ok());
  const video::codec::EncodedVideo& stream = *reencoded;
  std::string root = (fs::temp_directory_path() / "vr_source_vss").string();
  storage::StoreOptions store_options;
  store_options.root = root;
  store_options.metrics_label = "source_test";
  auto store = storage::ShardedStore::Open(store_options);
  ASSERT_TRUE(store.ok());
  storage::VssOptions vss_options;
  vss_options.store = &*store;
  auto vss = storage::VideoStorageService::Open(vss_options);
  ASSERT_TRUE(vss.ok());
  ASSERT_TRUE((*vss)->Ingest("cam", stream).ok());

  // A small readahead forces several windowed range reads over the file.
  auto source = VideoSource::StorageOffline(vss->get(), "cam", 8);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_TRUE(source->SeekSupported());
  EXPECT_EQ(source->FrameCount(), stream.FrameCount());
  for (int i = 0; i < stream.FrameCount(); ++i) {
    auto frame = source->Next();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ((*frame)->data, stream.frames[static_cast<size_t>(i)].data);
  }
  EXPECT_TRUE(source->AtEnd());
  EXPECT_FALSE(source->Next().ok());
  EXPECT_GT((*vss)->stats().range_reads, 1);

  // Seeks inside and outside the fetched window both land exactly.
  for (int target : {3, 12, 1, stream.FrameCount() - 1}) {
    ASSERT_TRUE(source->Seek(target).ok());
    auto frame = source->Next();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ((*frame)->data, stream.frames[static_cast<size_t>(target)].data);
  }
  EXPECT_FALSE(vss->get() == nullptr);
  std::error_code ec;
  fs::remove_all(root, ec);
}

// --- Engine capabilities ---

TEST_F(SystemsTest, EngineSupportMatrix) {
  EngineOptions options;
  auto batch = MakeBatchEngine(options);
  auto pipeline = MakePipelineEngine(options);
  auto cascade = MakeCascadeEngine(options);
  for (QueryId id : queries::AllQueries()) {
    EXPECT_TRUE(batch->Supports(id));
    EXPECT_TRUE(pipeline->Supports(id));
  }
  EXPECT_TRUE(cascade->Supports(QueryId::kQ1));
  EXPECT_TRUE(cascade->Supports(QueryId::kQ2c));
  EXPECT_FALSE(cascade->Supports(QueryId::kQ2a));
  EXPECT_FALSE(cascade->Supports(QueryId::kQ9));
}

TEST_F(SystemsTest, EngineNamesAreDistinct) {
  EngineOptions options;
  EXPECT_STRNE(MakeBatchEngine(options)->name(),
               MakePipelineEngine(options)->name());
  EXPECT_STRNE(MakePipelineEngine(options)->name(),
               MakeCascadeEngine(options)->name());
}

// --- Cross-engine output equivalence (parameterised over engine x query) ---

enum class EngineKind { kBatch, kPipeline, kCascade };

std::unique_ptr<Vdbms> MakeEngine(EngineKind kind, const EngineOptions& options) {
  switch (kind) {
    case EngineKind::kBatch:
      return MakeBatchEngine(options);
    case EngineKind::kPipeline:
      return MakePipelineEngine(options);
    case EngineKind::kCascade:
      return MakeCascadeEngine(options);
  }
  return nullptr;
}

struct EngineQueryCase {
  EngineKind engine;
  QueryId query;
};

class EngineQueryMatrix : public SystemsTest,
                          public ::testing::WithParamInterface<EngineQueryCase> {};

TEST_P(EngineQueryMatrix, OutputValidatesAgainstReference) {
  const EngineQueryCase& param = GetParam();
  EngineOptions options;
  auto engine = MakeEngine(param.engine, options);
  if (!engine->Supports(param.query)) GTEST_SKIP() << "unsupported";

  QueryInstance instance = Sample(param.query);
  auto output = engine->Execute(instance, *dataset_, OutputMode::kWrite, "");
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_TRUE(output->produced || !output->detections.empty() ||
              output->video.FrameCount() == 0);

  queries::ValidationKind kind = queries::ValidationFor(param.query);
  if (kind == queries::ValidationKind::kFrame && output->video.FrameCount() > 0) {
    queries::ReferenceContext context;
    context.dataset = dataset_;
    video::Video input;
    if (param.query != QueryId::kQ9 && param.query != QueryId::kQ10) {
      auto asset = detail::InputAsset(instance, *dataset_);
      ASSERT_TRUE(asset.ok());
      auto decoded = video::codec::Decode((*asset)->container.video);
      ASSERT_TRUE(decoded.ok());
      input = std::move(decoded).value();
    }
    auto reference = queries::RunReference(context, instance, input);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    double threshold = param.query == QueryId::kQ9 ? video::kStitchingPsnrDb
                                                   : video::kValidationPsnrDb;
    auto stats = driver::FrameValidate(output->video, reference->video, threshold);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->passed, stats->checked)
        << "mean " << stats->mean_psnr_db << " dB, min " << stats->min_psnr_db;
  }
  if (kind == queries::ValidationKind::kSemantic && !output->detections.empty()) {
    auto asset = detail::InputAsset(instance, *dataset_);
    ASSERT_TRUE(asset.ok());
    auto stats = driver::SemanticValidate(output->detections, (*asset)->ground_truth,
                                          instance.object_class);
    ASSERT_TRUE(stats.ok());
    // A tiny batch can consist solely of the detector's rare false
    // positives; only assert the pass rate once the sample is meaningful.
    if (stats->checked >= 5) {
      EXPECT_GE(stats->PassRate(), 0.8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineQueryMatrix,
    ::testing::Values(
        EngineQueryCase{EngineKind::kBatch, QueryId::kQ1},
        EngineQueryCase{EngineKind::kBatch, QueryId::kQ2a},
        EngineQueryCase{EngineKind::kBatch, QueryId::kQ2b},
        EngineQueryCase{EngineKind::kBatch, QueryId::kQ2c},
        EngineQueryCase{EngineKind::kBatch, QueryId::kQ2d},
        EngineQueryCase{EngineKind::kBatch, QueryId::kQ5},
        EngineQueryCase{EngineKind::kBatch, QueryId::kQ6a},
        EngineQueryCase{EngineKind::kBatch, QueryId::kQ6b},
        EngineQueryCase{EngineKind::kBatch, QueryId::kQ9},
        EngineQueryCase{EngineKind::kPipeline, QueryId::kQ1},
        EngineQueryCase{EngineKind::kPipeline, QueryId::kQ2a},
        EngineQueryCase{EngineKind::kPipeline, QueryId::kQ2b},
        EngineQueryCase{EngineKind::kPipeline, QueryId::kQ2c},
        EngineQueryCase{EngineKind::kPipeline, QueryId::kQ2d},
        EngineQueryCase{EngineKind::kPipeline, QueryId::kQ5},
        EngineQueryCase{EngineKind::kPipeline, QueryId::kQ6a},
        EngineQueryCase{EngineKind::kPipeline, QueryId::kQ6b},
        EngineQueryCase{EngineKind::kPipeline, QueryId::kQ9},
        EngineQueryCase{EngineKind::kCascade, QueryId::kQ1},
        EngineQueryCase{EngineKind::kCascade, QueryId::kQ2c}));

// --- Engine-specific behaviours ---

TEST_F(SystemsTest, CascadeRejectsUnsupportedQueries) {
  EngineOptions options;
  auto cascade = MakeCascadeEngine(options);
  QueryInstance instance = Sample(QueryId::kQ2a);
  auto output = cascade->Execute(instance, *dataset_, OutputMode::kWrite, "");
  ASSERT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), StatusCode::kUnimplemented);
}

TEST_F(SystemsTest, CascadeSkipsRedundantFrames) {
  // A private cache keeps the decode counters independent of whatever other
  // tests have left in the process-wide one.
  video::codec::GopCache cache;
  EngineOptions options;
  options.gop_cache = &cache;
  auto cascade = MakeCascadeEngine(options);
  QueryInstance instance = Sample(QueryId::kQ2c);
  auto output = cascade->Execute(instance, *dataset_, OutputMode::kStreaming, "");
  ASSERT_TRUE(output.ok());
  EngineStats stats = cascade->stats();
  // Every input frame is decoded; not every one runs the full CNN.
  EXPECT_GT(stats.frames_decoded, 0);
  EXPECT_LT(stats.cnn_frames_full, stats.frames_decoded);
}

TEST_F(SystemsTest, PipelineCachesDecodedContent) {
  // A private cache keeps hit/miss expectations deterministic regardless of
  // what other tests have cached process-wide.
  video::codec::GopCache cache;
  EngineOptions options;
  options.gop_cache = &cache;
  auto pipeline = MakePipelineEngine(options);
  QueryInstance instance = Sample(QueryId::kQ2a);
  ASSERT_TRUE(
      pipeline->Execute(instance, *dataset_, OutputMode::kStreaming, "").ok());
  ASSERT_TRUE(
      pipeline->Execute(instance, *dataset_, OutputMode::kStreaming, "").ok());
  EngineStats stats = pipeline->stats();
  EXPECT_GE(stats.cache_hits, 1);
  // Quiesce clears the cache: the next run misses again.
  pipeline->Quiesce();
  ASSERT_TRUE(
      pipeline->Execute(instance, *dataset_, OutputMode::kStreaming, "").ok());
  EXPECT_GE(pipeline->stats().cache_misses, 2);
}

TEST_F(SystemsTest, BatchEngineFailsQ4UnderTightMemory) {
  EngineOptions options;
  options.memory_fail_bytes = 1 << 17;  // 128 KB ceiling: any upsample dies.
  auto batch = MakeBatchEngine(options);
  QueryInstance instance = Sample(QueryId::kQ4);
  auto output = batch->Execute(instance, *dataset_, OutputMode::kStreaming, "");
  ASSERT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SystemsTest, BatchEngineSpillsUnderMemoryPressure) {
  EngineOptions options;
  options.memory_budget_bytes = 1 << 16;  // Tiny budget: immediate pressure.
  auto batch = MakeBatchEngine(options);
  QueryInstance instance = Sample(QueryId::kQ2a);
  ASSERT_TRUE(batch->Execute(instance, *dataset_, OutputMode::kStreaming, "").ok());
  EXPECT_GT(batch->stats().chunked_redecodes, 0);
}

TEST_F(SystemsTest, WriteModePersistsContainer) {
  EngineOptions options;
  auto pipeline = MakePipelineEngine(options);
  QueryInstance instance = Sample(QueryId::kQ5);
  std::string dir =
      (std::filesystem::temp_directory_path() / "vr_systems_test").string();
  auto output = pipeline->Execute(instance, *dataset_, OutputMode::kWrite, dir);
  ASSERT_TRUE(output.ok());
  ASSERT_FALSE(output->written_path.empty());
  auto container = video::container::ReadContainerFile(output->written_path);
  ASSERT_TRUE(container.ok());
  EXPECT_EQ(container->video.FrameCount(), output->video.FrameCount());
  std::filesystem::remove_all(dir);
}

TEST_F(SystemsTest, StreamingModeDiscardsResults) {
  EngineOptions options;
  auto pipeline = MakePipelineEngine(options);
  QueryInstance instance = Sample(QueryId::kQ5);
  auto output = pipeline->Execute(instance, *dataset_, OutputMode::kStreaming, "");
  ASSERT_TRUE(output.ok());
  EXPECT_FALSE(output->produced);
  EXPECT_EQ(output->video.FrameCount(), 0);
  EXPECT_TRUE(output->written_path.empty());
}

TEST_F(SystemsTest, InvalidVideoIndexRejected) {
  EngineOptions options;
  auto batch = MakeBatchEngine(options);
  QueryInstance instance = Sample(QueryId::kQ2a);
  instance.video_index = 999;
  EXPECT_FALSE(batch->Execute(instance, *dataset_, OutputMode::kWrite, "").ok());
}

TEST_F(SystemsTest, BatchDetectorRunsLargerNetworkThanPipeline) {
  // The architectural difference behind the Q2(c) gap: the batch engine's
  // framework path must burn more arithmetic per frame.
  EngineOptions options;
  vision::MiniYolo reference_net(options.detector);
  vision::DetectorOptions batch_options = options.detector;
  batch_options.input_size = 224;
  vision::MiniYolo batch_net(batch_options);
  EXPECT_GT(batch_net.MacsPerFrame(), 4 * reference_net.MacsPerFrame());
}

}  // namespace
}  // namespace visualroad::systems
