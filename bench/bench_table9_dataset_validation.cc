// Reproduces Table 9: dataset validation.
//
// The paper's question: do Visual Road inputs produce the same VDBMS
// performance behaviour as real, manually-annotated video (UA-DETRAC), and
// do the naive alternatives (duplicated video, random noise) mislead? Four
// corpora are built — the recorded-corpus baseline (the UA-DETRAC stand-in,
// see DESIGN.md), a Visual Road corpus matched to it, a duplicates corpus,
// and a random-noise corpus — and the microbenchmark queries Q1-Q6(b) run on
// the pipeline (LightDB-like) and batch (Scanner-like) engines over each.
// Cells report runtime and the speedup relative to the baseline; flags mark
// the paper's two failure modes: a sign flip (the faster system changes) and
// an order-of-magnitude ratio distortion.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "simulation/recorded_corpus.h"

namespace visualroad::bench {
namespace {

using queries::QueryId;

const QueryId kMicroQueries[] = {QueryId::kQ1,  QueryId::kQ2a, QueryId::kQ2b,
                                 QueryId::kQ2c, QueryId::kQ2d, QueryId::kQ3,
                                 QueryId::kQ4,  QueryId::kQ5,  QueryId::kQ6a,
                                 QueryId::kQ6b};

struct Cell {
  double seconds = 0.0;
  bool available = false;
};

int Run() {
  PrintBanner("Table 9 - Dataset validation",
              "Runtime and speedup vs the recorded baseline on four corpora.");

  int video_count = EnvInt("VR_T9_VIDEOS", QuickMode() ? 3 : 6);
  double duration = QuickMode() ? 0.75 : 1.0;
  int width = kBaseWidth, height = kBaseHeight;

  video::codec::EncoderConfig codec;
  codec.qp = 26;

  // Corpus 1: the recorded baseline (UA-DETRAC stand-in).
  sim::RecordedCorpusConfig recorded_config;
  recorded_config.video_count = video_count;
  recorded_config.width = width;
  recorded_config.height = height;
  recorded_config.duration_seconds = duration;
  recorded_config.fps = kBaseFps;
  recorded_config.seed = 404;
  auto recorded = sim::GenerateRecordedCorpus(recorded_config, codec);
  if (!recorded.ok()) {
    std::fprintf(stderr, "recorded corpus failed: %s\n",
                 recorded.status().ToString().c_str());
    return 1;
  }
  driver::AttachCaptionTracks(*recorded, 11);

  // Corpus 2: Visual Road, matched in count/resolution/duration (the paper
  // matches its VCG output to the UA-DETRAC configuration).
  auto visualroad_corpus =
      MakeBenchDataset((video_count + 3) / 4, width, height, duration, 405);
  if (!visualroad_corpus.ok()) {
    std::fprintf(stderr, "visual road corpus failed: %s\n",
                 visualroad_corpus.status().ToString().c_str());
    return 1;
  }

  // Corpus 3: the longest baseline video duplicated N times.
  sim::Dataset duplicates = sim::MakeDuplicateCorpus(*recorded, video_count);
  driver::AttachCaptionTracks(duplicates, 12);

  // Corpus 4: random noise matched to the baseline.
  auto random = sim::MakeRandomCorpus(*recorded, codec, 406);
  if (!random.ok()) {
    std::fprintf(stderr, "random corpus failed: %s\n",
                 random.status().ToString().c_str());
    return 1;
  }
  driver::AttachCaptionTracks(*random, 13);

  struct Corpus {
    const char* name;
    const sim::Dataset* dataset;
  };
  const Corpus corpora[] = {{"Baseline", &*recorded},
                            {"VisualRoad", &*visualroad_corpus},
                            {"Duplicates", &duplicates},
                            {"Random", &*random}};

  // Run every (engine, corpus, query) cell. The engine persists (and keeps
  // its caches) across the queries of one corpus, as a system would across
  // a benchmark session; caches are dropped between corpora.
  std::map<std::string, std::map<std::string, std::map<QueryId, Cell>>> cells;
  for (const Corpus& corpus : corpora) {
    systems::EngineOptions engine_options = BenchEngineOptions();
    auto pipeline = systems::MakePipelineEngine(engine_options);
    auto batch = systems::MakeBatchEngine(engine_options);
    for (systems::Vdbms* engine : {pipeline.get(), batch.get()}) {
      driver::VcdOptions vcd_options = BenchVcdOptions();
      vcd_options.validate = false;  // Timing experiment.
      vcd_options.batch_size_override = video_count;
      driver::VisualCityDriver vcd(*corpus.dataset, vcd_options);
      for (QueryId id : kMicroQueries) {
        auto result = vcd.RunQueryBatch(*engine, id);
        Cell cell;
        if (result.ok() && result->failed == 0 && result->Supported()) {
          cell.seconds = result->total_seconds;
          cell.available = true;
        } else if (result.ok()) {
          cell.available = false;  // N/A (e.g. batch Q4 out of memory).
        }
        cells[engine->name()][corpus.name][id] = cell;
      }
    }
  }

  for (const char* engine : {"PipelineEngine", "BatchEngine"}) {
    std::printf("--- %s (LightDB-like / Scanner-like analogue) ---\n", engine);
    driver::TextTable table;
    table.SetHeader({"Query", "Baseline", "VisualRoad", "Duplicates", "Random",
                     "Flags"});
    for (QueryId id : kMicroQueries) {
      auto& row_cells = cells[engine];
      const Cell& base = row_cells["Baseline"][id];
      std::vector<std::string> row{queries::QueryName(id)};
      std::string flags;
      for (const char* corpus : {"Baseline", "VisualRoad", "Duplicates", "Random"}) {
        const Cell& cell = row_cells[corpus][id];
        if (!cell.available) {
          row.push_back("N/A");
          continue;
        }
        std::string text = driver::FormatSeconds(cell.seconds);
        if (base.available && corpus != std::string("Baseline")) {
          double ratio = cell.seconds / base.seconds;
          text += " (" + driver::FormatRatio(ratio) + ")";
          if (corpus != std::string("VisualRoad") &&
              (ratio >= 10.0 || ratio <= 0.1)) {
            flags += std::string(flags.empty() ? "" : " ") + corpus +
                     ">=10x-off";
          }
        }
        row.push_back(text);
      }
      row.push_back(flags.empty() ? "-" : flags);
      table.AddRow(row);
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // The headline check: does each alternative corpus preserve the *sign* of
  // the cross-engine comparison the baseline shows?
  std::printf("Cross-engine agreement with the baseline (who is faster):\n");
  driver::TextTable agreement;
  agreement.SetHeader({"Query", "Baseline winner", "VisualRoad", "Duplicates",
                       "Random"});
  for (QueryId id : kMicroQueries) {
    const Cell& base_p = cells["PipelineEngine"]["Baseline"][id];
    const Cell& base_b = cells["BatchEngine"]["Baseline"][id];
    if (!base_p.available || !base_b.available) continue;
    bool base_pipeline_wins = base_p.seconds <= base_b.seconds;
    std::vector<std::string> row{queries::QueryName(id),
                                 base_pipeline_wins ? "Pipeline" : "Batch"};
    for (const char* corpus : {"VisualRoad", "Duplicates", "Random"}) {
      const Cell& p = cells["PipelineEngine"][corpus][id];
      const Cell& b = cells["BatchEngine"][corpus][id];
      if (!p.available || !b.available) {
        row.push_back("N/A");
        continue;
      }
      bool pipeline_wins = p.seconds <= b.seconds;
      // Within-noise cells (the engines within 12% of each other on either
      // corpus) are reported as ties rather than flips.
      double margin = std::max(p.seconds, b.seconds) / std::min(p.seconds, b.seconds);
      double base_margin = std::max(base_p.seconds, base_b.seconds) /
                           std::min(base_p.seconds, base_b.seconds);
      if (margin < 1.12 || base_margin < 1.12) {
        row.push_back(pipeline_wins == base_pipeline_wins ? "agrees" : "~tie");
      } else {
        row.push_back(pipeline_wins == base_pipeline_wins ? "agrees" : "FLIPS");
      }
    }
    agreement.AddRow(row);
  }
  std::printf("%s\n", agreement.ToString().c_str());
  std::printf("Paper's finding to reproduce: VisualRoad agrees with the baseline"
              " on every query;\nDuplicates/Random flip at least one comparison"
              " or distort a ratio by >=10x.\n");
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
