// Reproduces Figure 8: single-node VCG generation time by scale factor and
// resolution.
//
// The paper shows approximately linear growth in L at each resolution (the
// number of cameras, and so the number of rendered pixels, is linear in L),
// with the highest resolution growing fastest. Resolutions here are the
// proportionally scaled 1k/2k/4k equivalents.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace visualroad::bench {
namespace {

int Run() {
  PrintBanner("Figure 8 - Generator time by scale and resolution",
              "Single-node VCG runs; expect ~linear growth in L per resolution.");

  double duration = QuickMode() ? 0.5 : 1.0;
  int l_max = EnvInt("VR_FIG8_LMAX", QuickMode() ? 2 : 4);

  struct Resolution {
    const char* label;
    int width, height;
    int l_cap;  // 4k-proportional renders ~16x the pixels of 1k; cap its L.
  };
  const Resolution resolutions[] = {
      {"1k", 240, 136, l_max},
      {"2k", 480, 270, l_max},
      {"4k", 960, 540, QuickMode() ? 1 : 2},
  };

  driver::TextTable table;
  std::vector<std::string> header{"Resolution"};
  for (int l = 1; l <= l_max; l *= 2) header.push_back("L=" + std::to_string(l));
  header.push_back("growth L1->Lmax");
  table.SetHeader(header);

  for (const Resolution& resolution : resolutions) {
    std::vector<std::string> row{resolution.label};
    double first = 0.0, last = 0.0;
    int last_l = 1;
    for (int l = 1; l <= l_max; l *= 2) {
      if (l > resolution.l_cap) {
        row.push_back("(skipped)");
        continue;
      }
      sim::CityConfig config;
      config.scale_factor = l;
      config.width = resolution.width;
      config.height = resolution.height;
      config.duration_seconds = duration;
      config.fps = kBaseFps;
      config.seed = 800 + static_cast<uint64_t>(l);
      sim::GeneratorOptions options;
      options.codec.qp = 26;
      sim::VisualCityGenerator generator(options);
      auto dataset = generator.Generate(config);
      if (!dataset.ok()) {
        std::fprintf(stderr, "generation failed: %s\n",
                     dataset.status().ToString().c_str());
        return 1;
      }
      double seconds = generator.last_stats().total_seconds;
      if (l == 1) first = seconds;
      last = seconds;
      last_l = l;
      row.push_back(driver::FormatSeconds(seconds));
    }
    char growth[48];
    std::snprintf(growth, sizeof(growth), "%.1fx over %dx tiles",
                  first > 0 ? last / first : 0.0, last_l);
    row.push_back(growth);
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  // --- Parallel tile generation ---
  // The VCG renders and encodes tiles concurrently when
  // GeneratorOptions::threads > 1; output stays byte-identical because each
  // tile derives its own RNG substream and results merge in tile order. The
  // speedup column only reflects real cores: on a single-core host every
  // thread count collapses to serial wall-clock time.
  std::printf("Parallel tile generation (hardware threads: %d)\n",
              ThreadPool::HardwareThreads());
  sim::CityConfig config;
  config.scale_factor = QuickMode() ? 2 : 4;
  config.width = 480;
  config.height = 270;
  config.duration_seconds = duration;
  config.fps = kBaseFps;
  config.seed = 808;

  driver::TextTable scaling;
  scaling.SetHeader({"Threads", "Runtime", "Speedup", "Efficiency", "Output"});
  double baseline_seconds = 0.0;
  sim::Dataset baseline;
  for (int threads : {1, 2, 4, 8}) {
    sim::GeneratorOptions options;
    options.codec.qp = 26;
    options.threads = threads;
    sim::VisualCityGenerator generator(options);
    auto dataset = generator.Generate(config);
    if (!dataset.ok()) {
      std::fprintf(stderr, "parallel generation failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    const sim::GeneratorStats& stats = generator.last_stats();
    double seconds = stats.total_seconds;

    std::string output = "baseline";
    if (threads == 1) {
      baseline_seconds = seconds;
      baseline = std::move(dataset).value();
    } else {
      // Determinism check: byte-identical to the serial run, asset by asset.
      bool identical = dataset->assets.size() == baseline.assets.size();
      for (size_t i = 0; identical && i < baseline.assets.size(); ++i) {
        const auto& a = baseline.assets[i].container.video.frames;
        const auto& b = dataset->assets[i].container.video.frames;
        identical = a.size() == b.size();
        for (size_t f = 0; identical && f < a.size(); ++f) {
          identical = a[f].data == b[f].data;
        }
      }
      output = identical ? "identical" : "DIVERGED";
    }

    double efficiency =
        threads > 1 && seconds > 0.0
            ? stats.pool.busy_seconds / (threads * seconds)
            : 1.0;
    char eff[32];
    std::snprintf(eff, sizeof(eff), "%.0f%%", 100.0 * efficiency);
    scaling.AddRow({std::to_string(threads), driver::FormatSeconds(seconds),
                    driver::FormatRatio(seconds > 0 ? baseline_seconds / seconds
                                                    : 0.0),
                    eff, output});
  }
  std::printf("%s\n", scaling.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
