// Reproduces Figure 8: single-node VCG generation time by scale factor and
// resolution.
//
// The paper shows approximately linear growth in L at each resolution (the
// number of cameras, and so the number of rendered pixels, is linear in L),
// with the highest resolution growing fastest. Resolutions here are the
// proportionally scaled 1k/2k/4k equivalents.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace visualroad::bench {
namespace {

int Run() {
  PrintBanner("Figure 8 - Generator time by scale and resolution",
              "Single-node VCG runs; expect ~linear growth in L per resolution.");

  double duration = QuickMode() ? 0.5 : 1.0;
  int l_max = EnvInt("VR_FIG8_LMAX", QuickMode() ? 2 : 4);

  struct Resolution {
    const char* label;
    int width, height;
    int l_cap;  // 4k-proportional renders ~16x the pixels of 1k; cap its L.
  };
  const Resolution resolutions[] = {
      {"1k", 240, 136, l_max},
      {"2k", 480, 270, l_max},
      {"4k", 960, 540, QuickMode() ? 1 : 2},
  };

  driver::TextTable table;
  std::vector<std::string> header{"Resolution"};
  for (int l = 1; l <= l_max; l *= 2) header.push_back("L=" + std::to_string(l));
  header.push_back("growth L1->Lmax");
  table.SetHeader(header);

  for (const Resolution& resolution : resolutions) {
    std::vector<std::string> row{resolution.label};
    double first = 0.0, last = 0.0;
    int last_l = 1;
    for (int l = 1; l <= l_max; l *= 2) {
      if (l > resolution.l_cap) {
        row.push_back("(skipped)");
        continue;
      }
      sim::CityConfig config;
      config.scale_factor = l;
      config.width = resolution.width;
      config.height = resolution.height;
      config.duration_seconds = duration;
      config.fps = kBaseFps;
      config.seed = 800 + static_cast<uint64_t>(l);
      sim::GeneratorOptions options;
      options.codec.qp = 26;
      sim::VisualCityGenerator generator(options);
      auto dataset = generator.Generate(config);
      if (!dataset.ok()) {
        std::fprintf(stderr, "generation failed: %s\n",
                     dataset.status().ToString().c_str());
        return 1;
      }
      double seconds = generator.last_stats().total_seconds;
      if (l == 1) first = seconds;
      last = seconds;
      last_l = l;
      row.push_back(driver::FormatSeconds(seconds));
    }
    char growth[48];
    std::snprintf(growth, sizeof(growth), "%.1fx over %dx tiles",
                  first > 0 ? last / first : 0.0, last_l);
    row.push_back(growth);
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
