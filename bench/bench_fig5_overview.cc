// Reproduces Figure 5: log-scale total runtime per query for all three
// comparison engines at a fixed configuration (paper: L = 4, 1k, 60 min;
// here proportionally scaled, L via VR_FIG5_L).
//
// The shapes to reproduce: the cascade (NoScope-like) engine supports only
// Q1/Q2(c) but dominates Q2(c); the batch (Scanner-like) engine pays a large
// premium on CNN queries (its heavyweight framework path) and fails Q4 on
// memory; pipeline (LightDB-like) and batch are comparable on Q1, Q6(b), and
// the composite/VR queries, which take far longer than the microbenchmarks.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"

namespace visualroad::bench {
namespace {

int Run() {
  int scale = EnvInt("VR_FIG5_L", QuickMode() ? 1 : 2);
  double duration = QuickMode() ? 0.75 : 1.0;

  PrintBanner("Figure 5 - Per-query runtime overview",
              "All queries x all engines, scale L=" + std::to_string(scale) + ".");

  auto dataset = MakeBenchDataset(scale, kBaseWidth, kBaseHeight, duration, 505);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  systems::EngineOptions engine_options = BenchEngineOptions();
  auto batch = systems::MakeBatchEngine(engine_options);
  auto pipeline = systems::MakePipelineEngine(engine_options);
  auto cascade = systems::MakeCascadeEngine(engine_options);

  driver::VcdOptions vcd_options = BenchVcdOptions();
  vcd_options.validate = false;  // Timing run; validation is exercised in tests.
  driver::VisualCityDriver vcd(*dataset, vcd_options);

  struct Row {
    std::string runtime[3];
    double log10_seconds[3] = {0, 0, 0};
    bool available[3] = {false, false, false};
  };
  std::map<queries::QueryId, Row> rows;
  systems::Vdbms* engines[3] = {batch.get(), pipeline.get(), cascade.get()};

  for (int e = 0; e < 3; ++e) {
    for (queries::QueryId id : queries::AllQueries()) {
      auto result = vcd.RunQueryBatch(*engines[e], id);
      Row& row = rows[id];
      if (!result.ok()) {
        row.runtime[e] = "error";
        continue;
      }
      if (!result->Supported()) {
        row.runtime[e] = "unsupported";
      } else if (result->resource_exhausted > 0 &&
                 result->resource_exhausted == result->failed &&
                 result->succeeded < result->instances) {
        row.runtime[e] = "N/A (memory)";
      } else if (result->failed > 0) {
        row.runtime[e] = "FAILED";
      } else {
        row.runtime[e] = driver::FormatSeconds(result->total_seconds);
        row.log10_seconds[e] = std::log10(std::max(1e-3, result->total_seconds));
        row.available[e] = true;
      }
    }
    engines[e]->Quiesce();
  }

  driver::TextTable table;
  table.SetHeader({"Query", "BatchEngine", "PipelineEngine", "CascadeEngine",
                   "log10(s) B/P/C"});
  for (queries::QueryId id : queries::AllQueries()) {
    const Row& row = rows[id];
    char logs[64];
    std::snprintf(logs, sizeof(logs), "%s / %s / %s",
                  row.available[0] ? std::to_string(row.log10_seconds[0]).substr(0, 5).c_str() : "-",
                  row.available[1] ? std::to_string(row.log10_seconds[1]).substr(0, 5).c_str() : "-",
                  row.available[2] ? std::to_string(row.log10_seconds[2]).substr(0, 5).c_str() : "-");
    table.AddRow({queries::QueryName(id), row.runtime[0], row.runtime[1],
                  row.runtime[2], logs});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Batch engine detector is the heavyweight-framework path (224px"
              " input vs 96px),\nso the expected shape is: Cascade << Pipeline"
              " << Batch on Q2(c); composite (Q7-Q10)\nslowest overall; batch"
              " Q4 N/A once the retained-table ceiling is hit.\n");
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
