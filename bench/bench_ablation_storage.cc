// Ablation bench: the tiered video storage service (DESIGN.md Section 10).
//
// Quantifies the storage hierarchy's read paths in isolation: a cold
// whole-file read from the sharded store, a GOP-aligned range read of the
// same stream, a read served by a persisted lower-quality variant, a
// transcode-on-read that materializes the variant on the fly, and the
// resident-cache hit once a stream is pinned in memory. A final sweep
// times the deferred compaction pass against catalogs holding increasing
// numbers of dominated variants. Bytes fetched per read are exported as
// counters so the layout savings are visible next to the latencies.

#include <benchmark/benchmark.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>

#include "common/random.h"
#include "storage/vss.h"
#include "storage/vss_policy.h"
#include "video/codec/codec.h"

namespace visualroad::storage {
namespace {

namespace fs = std::filesystem;

constexpr int kFrames = 24;
constexpr int kGopLength = 4;

video::codec::EncodedVideo MakeContent(int w, int h) {
  Pcg32 rng(4321, 7);
  video::Video v;
  v.fps = 15;
  for (int f = 0; f < kFrames; ++f) {
    video::Frame frame(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double value = 120 + 70 * std::sin((x + 2 * f) * 0.09) *
                                 std::cos((y + f) * 0.06) +
                       rng.NextGaussian(0, 3);
        frame.SetPixel(x, y,
                       static_cast<uint8_t>(std::clamp(value, 0.0, 255.0)),
                       static_cast<uint8_t>(118 + (x % 24)),
                       static_cast<uint8_t>(142 - (y % 24)));
      }
    }
    v.frames.push_back(std::move(frame));
  }
  video::codec::EncoderConfig config;
  config.gop_length = kGopLength;
  config.qp = 24;
  auto encoded = video::codec::ParallelEncode(v, config);
  if (!encoded.ok()) std::abort();
  return std::move(encoded).value();
}

const video::codec::EncodedVideo& Content() {
  static const auto* content =
      new video::codec::EncodedVideo(MakeContent(240, 136));
  return *content;
}

/// One store + service per benchmark, torn down with its temp directory.
struct Rig {
  explicit Rig(const std::string& tag, int64_t variant_cache_bytes,
               int64_t resident_bytes) {
    root = (fs::temp_directory_path() / ("vr_bench_storage_" + tag)).string();
    std::error_code ec;
    fs::remove_all(root, ec);
    StoreOptions store_options;
    store_options.root = root;
    store_options.metrics_label = "bench";
    auto opened = ShardedStore::Open(store_options);
    if (!opened.ok()) std::abort();
    store = std::make_unique<ShardedStore>(std::move(opened).value());
    VssOptions options;
    options.store = store.get();
    options.variant_cache_bytes = variant_cache_bytes;
    options.resident_bytes = resident_bytes;
    auto service = VideoStorageService::Open(options);
    if (!service.ok()) std::abort();
    vss = std::move(service).value();
    if (!vss->Ingest("cam", Content()).ok()) std::abort();
  }
  ~Rig() {
    vss.reset();
    store.reset();
    std::error_code ec;
    fs::remove_all(root, ec);
  }

  VariantKey Base() const {
    auto tier = vss->BaseTier("cam");
    if (!tier.ok()) std::abort();
    return *tier;
  }

  std::string root;
  std::unique_ptr<ShardedStore> store;
  std::unique_ptr<VideoStorageService> vss;
};

/// Whole-file read with nothing resident: every iteration fetches the full
/// base object from the sharded store.
void BM_ColdWholeFileRead(benchmark::State& state) {
  Rig rig("cold", /*variant_cache_bytes=*/0, /*resident_bytes=*/0);
  VariantKey base = rig.Base();
  for (auto _ : state) {
    auto read = rig.vss->ReadVideo("cam", base);
    if (!read.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(read);
  }
  state.counters["bytes_per_read"] = static_cast<double>(
      rig.vss->stats().bytes_fetched / std::max<int64_t>(1, state.iterations()));
}
BENCHMARK(BM_ColdWholeFileRead)->Unit(benchmark::kMicrosecond);

/// GOP-aligned range read of one GOP: fetches only the covering segment.
void BM_GopRangeRead(benchmark::State& state) {
  Rig rig("range", /*variant_cache_bytes=*/0, /*resident_bytes=*/0);
  VariantKey base = rig.Base();
  int first = 0;
  for (auto _ : state) {
    auto read = rig.vss->ReadRange("cam", base, first, kGopLength);
    if (!read.ok()) state.SkipWithError("range read failed");
    benchmark::DoNotOptimize(read);
    first = (first + kGopLength) % kFrames;
  }
  state.counters["bytes_per_read"] = static_cast<double>(
      rig.vss->stats().bytes_fetched / std::max<int64_t>(1, state.iterations()));
}
BENCHMARK(BM_GopRangeRead)->Unit(benchmark::kMicrosecond);

/// Read at a tier whose variant was already materialized: fetches the
/// (smaller) variant object, no transcode.
void BM_VariantHit(benchmark::State& state) {
  Rig rig("variant", /*variant_cache_bytes=*/int64_t{64} << 20,
          /*resident_bytes=*/0);
  VariantKey tier{120, 68, 34};
  if (!rig.vss->ReadVideo("cam", tier).ok()) {  // Materialize once.
    state.SkipWithError("materialization failed");
    return;
  }
  for (auto _ : state) {
    auto read = rig.vss->ReadVideo("cam", tier);
    if (!read.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(read);
  }
  state.counters["transcodes"] =
      static_cast<double>(rig.vss->stats().transcodes);
}
BENCHMARK(BM_VariantHit)->Unit(benchmark::kMicrosecond);

/// Read at a missing tier with variant caching disabled: every iteration
/// decodes, resizes, and re-encodes from the base bitstream.
void BM_TranscodeOnRead(benchmark::State& state) {
  Rig rig("transcode", /*variant_cache_bytes=*/0, /*resident_bytes=*/0);
  VariantKey tier{120, 68, 34};
  for (auto _ : state) {
    auto read = rig.vss->ReadVideo("cam", tier);
    if (!read.ok()) state.SkipWithError("transcode failed");
    benchmark::DoNotOptimize(read);
  }
  state.counters["transcodes"] =
      static_cast<double>(rig.vss->stats().transcodes);
}
BENCHMARK(BM_TranscodeOnRead)->Unit(benchmark::kMillisecond)->MinTime(0.2);

/// Read of a stream pinned in the resident cache: no store traffic at all.
void BM_ResidentHit(benchmark::State& state) {
  Rig rig("resident", /*variant_cache_bytes=*/0,
          /*resident_bytes=*/int64_t{64} << 20);
  VariantKey base = rig.Base();
  if (!rig.vss->ReadVideo("cam", base).ok()) {  // Warm the resident cache.
    state.SkipWithError("warm read failed");
    return;
  }
  for (auto _ : state) {
    auto read = rig.vss->ReadVideo("cam", base);
    if (!read.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(read);
  }
  state.counters["bytes_fetched"] =
      static_cast<double>(rig.vss->stats().bytes_fetched);
}
BENCHMARK(BM_ResidentHit)->Unit(benchmark::kMicrosecond);

/// Deferred compaction over a catalog with `range(0)` dominated variants:
/// materializes qp tiers 40, 39, ... at one resolution, then times the
/// pass that collapses them onto the best survivor.
void BM_CompactionSweep(benchmark::State& state) {
  const int variants = static_cast<int>(state.range(0));
  int64_t dropped_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rig rig("compact", /*variant_cache_bytes=*/int64_t{64} << 20,
            /*resident_bytes=*/0);
    for (int i = 0; i < variants; ++i) {
      VariantKey tier{120, 68, 40 - i};
      if (!rig.vss->ReadVideo("cam", tier).ok()) {
        state.SkipWithError("materialization failed");
        break;
      }
    }
    state.ResumeTiming();
    auto dropped = rig.vss->Compact();
    if (!dropped.ok()) state.SkipWithError("compact failed");
    benchmark::DoNotOptimize(dropped);
    state.PauseTiming();
    dropped_total += dropped.ok() ? *dropped : 0;
    state.ResumeTiming();
  }
  state.counters["dropped_per_pass"] = static_cast<double>(
      dropped_total / std::max<int64_t>(1, state.iterations()));
}
// The untimed per-iteration setup (fresh rig + N transcodes) dominates wall
// time, so the sweep runs a fixed handful of passes rather than a min-time.
BENCHMARK(BM_CompactionSweep)
    ->Arg(2)->Arg(4)->Arg(6)
    ->Iterations(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace visualroad::storage

BENCHMARK_MAIN();
