// Ablation bench: the VRC codec's design choices (DESIGN.md E11).
//
// Micro-benchmarks (google-benchmark) over the codec substrate quantify the
// knobs behind the system-level results: profile (H264-like vs HEVC-like),
// GOP structure, motion-search radius, QP, and the raw throughput of the
// transform and entropy stages. Bitstream sizes are reported as counters so
// the rate/speed trade is visible in one table.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cpu.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "driver/report.h"
#include "video/codec/codec.h"
#include "video/codec/dct.h"
#include "video/codec/entropy.h"
#include "video/codec/gop_cache.h"
#include "video/codec/motion.h"
#include "video/kernels/kernels.h"

namespace visualroad::video::codec {
namespace {

// Custom sections time with one untimed warm-up run followed by the median of
// kSectionReps timed runs, so first-touch effects (page faults, cold caches,
// lazy static init) do not land in the reported numbers.
constexpr int kSectionReps = 3;

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

Video MakeContent(int w, int h, int frames) {
  Pcg32 rng(1234, 9);
  Video v;
  v.fps = 15;
  for (int f = 0; f < frames; ++f) {
    Frame frame(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double value = 120 + 70 * std::sin((x + 2 * f) * 0.09) *
                                 std::cos((y + f) * 0.06) +
                       rng.NextGaussian(0, 3);
        frame.SetPixel(x, y,
                       static_cast<uint8_t>(std::clamp(value, 0.0, 255.0)),
                       static_cast<uint8_t>(118 + (x % 24)),
                       static_cast<uint8_t>(142 - (y % 24)));
      }
    }
    v.frames.push_back(std::move(frame));
  }
  return v;
}

const Video& Content() {
  static const Video* content = new Video(MakeContent(240, 136, 8));
  return *content;
}

void BM_EncodeProfile(benchmark::State& state) {
  EncoderConfig config;
  config.profile = static_cast<Profile>(state.range(0));
  config.qp = 28;
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = Encode(Content(), config);
    if (!encoded.ok()) state.SkipWithError("encode failed");
    bytes = encoded->TotalBytes();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetLabel(ProfileName(config.profile));
}
BENCHMARK(BM_EncodeProfile)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EncodeGop(benchmark::State& state) {
  EncoderConfig config;
  config.gop_length = static_cast<int>(state.range(0));
  config.qp = 28;
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = Encode(Content(), config);
    if (!encoded.ok()) state.SkipWithError("encode failed");
    bytes = encoded->TotalBytes();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeGop)->Arg(1)->Arg(4)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_EncodeSearchRadius(benchmark::State& state) {
  EncoderConfig config;
  config.search_radius = static_cast<int>(state.range(0));
  config.qp = 28;
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = Encode(Content(), config);
    if (!encoded.ok()) state.SkipWithError("encode failed");
    bytes = encoded->TotalBytes();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeSearchRadius)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_EncodeQp(benchmark::State& state) {
  EncoderConfig config;
  config.qp = static_cast<int>(state.range(0));
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = Encode(Content(), config);
    if (!encoded.ok()) state.SkipWithError("encode failed");
    bytes = encoded->TotalBytes();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeQp)->Arg(12)->Arg(28)->Arg(44)->Unit(benchmark::kMillisecond);

void BM_Decode(benchmark::State& state) {
  EncoderConfig config;
  config.qp = 28;
  auto encoded = Encode(Content(), config);
  for (auto _ : state) {
    auto decoded = Decode(*encoded);
    if (!decoded.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_Decode)->Unit(benchmark::kMillisecond);

void BM_ForwardDct(benchmark::State& state) {
  Pcg32 rng(5, 5);
  int16_t block[kTransformArea];
  for (int16_t& v : block) v = static_cast<int16_t>(rng.NextInt(-128, 127));
  double coefficients[kTransformArea];
  for (auto _ : state) {
    ForwardDct8x8(block, coefficients);
    benchmark::DoNotOptimize(coefficients);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDct);

void BM_ArithmeticCoder(benchmark::State& state) {
  Pcg32 rng(6, 6);
  std::vector<int> bits(10000);
  for (int& bit : bits) bit = rng.NextBool(0.8) ? 0 : 1;
  for (auto _ : state) {
    ArithmeticEncoder encoder;
    BitModel model;
    for (int bit : bits) encoder.EncodeBit(model, bit);
    auto data = encoder.Finish();
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(bits.size()));
}
BENCHMARK(BM_ArithmeticCoder);

void BM_DiamondSearch(benchmark::State& state) {
  Plane reference(240, 136), current(240, 136);
  for (int y = 0; y < 136; ++y) {
    for (int x = 0; x < 240; ++x) {
      uint8_t v = static_cast<uint8_t>(128 + 80 * std::sin(x * 0.12) *
                                                 std::cos(y * 0.1));
      reference.Set(x, y, v);
      current.Set(x, y,
                  reference.At(std::min(239, x + 3), std::max(0, y - 2)));
    }
  }
  int radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int by = 0; by + 16 <= 136; by += 16) {
      for (int bx = 0; bx + 16 <= 240; bx += 16) {
        MotionVector mv = DiamondSearch(current, reference, bx, by, 16, radius, {});
        benchmark::DoNotOptimize(mv);
      }
    }
  }
}
BENCHMARK(BM_DiamondSearch)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

// Isolates the bounded-SAD early exit: the same candidate sweep once through
// the exhaustive kernel (bound disabled) and once with a best-so-far bound,
// the way DiamondSearch calls it. Arg(0) = unbounded, Arg(1) = bounded.
void BM_BlockSadEarlyExit(benchmark::State& state) {
  Plane reference(240, 136), current(240, 136);
  for (int y = 0; y < 136; ++y) {
    for (int x = 0; x < 240; ++x) {
      uint8_t v = static_cast<uint8_t>(128 + 80 * std::sin(x * 0.12) *
                                                 std::cos(y * 0.1));
      reference.Set(x, y, v);
      current.Set(x, y,
                  reference.At(std::min(239, x + 3), std::max(0, y - 2)));
    }
  }
  bool bounded = state.range(0) != 0;
  for (auto _ : state) {
    for (int by = 0; by + 16 <= 136; by += 16) {
      for (int bx = 0; bx + 16 <= 240; bx += 16) {
        int64_t best = INT64_MAX;
        for (int dy = -4; dy <= 4; ++dy) {
          for (int dx = -4; dx <= 4; ++dx) {
            int64_t sad =
                bounded ? BlockSadBounded(current, reference, bx, by, 16, dx,
                                          dy, best)
                        : BlockSad(current, reference, bx, by, 16, dx, dy);
            if (sad < best) best = sad;
          }
        }
        benchmark::DoNotOptimize(best);
      }
    }
  }
  state.SetLabel(bounded ? "bounded" : "exhaustive");
}
BENCHMARK(BM_BlockSadEarlyExit)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --- GOP-parallel codec scaling ---
// ParallelEncode/ParallelDecode split work at keyframe boundaries; output is
// byte-identical to the serial path at every thread count because a serial
// rate-control pre-pass fixes the QP schedule first. Like bench_fig8's
// generator table, the speedup column only reflects real cores: on a
// single-core host every thread count collapses to serial wall-clock time.
int RunParallelScalingSection() {
  std::printf(
      "GOP-parallel codec scaling (hardware threads: %d, 8 GOPs of 8 "
      "frames; warm-run median of %d)\n",
      ThreadPool::HardwareThreads(), kSectionReps);
  Video content = MakeContent(240, 136, 64);
  EncoderConfig config;
  config.qp = 28;
  config.gop_length = 8;

  driver::TextTable table;
  table.SetHeader({"Threads", "Encode", "Decode", "Speedup", "Efficiency",
                   "Output"});
  double baseline_seconds = 0.0;
  EncodedVideo baseline;
  for (int threads : {1, 2, 4, 8}) {
    // Warm-up run (untimed), then timed reps; keep the last rep's output for
    // the determinism check — every rep encodes identical bytes.
    {
      auto warm = ParallelEncode(content, config, threads);
      if (!warm.ok()) {
        std::fprintf(stderr, "parallel encode failed: %s\n",
                     warm.status().ToString().c_str());
        return 1;
      }
      auto warm_dec = ParallelDecode(*warm, threads);
      if (!warm_dec.ok()) {
        std::fprintf(stderr, "parallel decode failed: %s\n",
                     warm_dec.status().ToString().c_str());
        return 1;
      }
    }
    std::vector<double> encode_reps, decode_reps;
    StatusOr<EncodedVideo> encoded = Status::Internal("no rep ran");
    PoolStats before = CodecPoolStats();
    double timed_seconds = 0.0;
    for (int rep = 0; rep < kSectionReps; ++rep) {
      Stopwatch watch;
      encoded = ParallelEncode(content, config, threads);
      encode_reps.push_back(watch.ElapsedSeconds());
      if (!encoded.ok()) {
        std::fprintf(stderr, "parallel encode failed: %s\n",
                     encoded.status().ToString().c_str());
        return 1;
      }
      watch.Reset();
      auto decoded = ParallelDecode(*encoded, threads);
      decode_reps.push_back(watch.ElapsedSeconds());
      if (!decoded.ok()) {
        std::fprintf(stderr, "parallel decode failed: %s\n",
                     decoded.status().ToString().c_str());
        return 1;
      }
      timed_seconds += encode_reps.back() + decode_reps.back();
    }
    double encode_seconds = Median(encode_reps);
    double decode_seconds = Median(decode_reps);
    double seconds = encode_seconds + decode_seconds;
    PoolStats after = CodecPoolStats();

    std::string output = "baseline";
    if (threads == 1) {
      baseline_seconds = seconds;
      baseline = std::move(encoded).value();
    } else {
      // Determinism check: bitstream byte-identical to the serial encode.
      bool identical = encoded->frames.size() == baseline.frames.size();
      for (size_t f = 0; identical && f < baseline.frames.size(); ++f) {
        identical = encoded->frames[f].data == baseline.frames[f].data &&
                    encoded->frames[f].keyframe == baseline.frames[f].keyframe;
      }
      output = identical ? "identical" : "DIVERGED";
    }

    double busy = after.busy_seconds - before.busy_seconds;
    double efficiency = threads > 1 && timed_seconds > 0.0
                            ? busy / (threads * timed_seconds)
                            : 1.0;
    char eff[32];
    std::snprintf(eff, sizeof(eff), "%.0f%%", 100.0 * efficiency);
    table.AddRow({std::to_string(threads),
                  driver::FormatSeconds(encode_seconds),
                  driver::FormatSeconds(decode_seconds),
                  driver::FormatRatio(seconds > 0 ? baseline_seconds / seconds
                                                  : 0.0),
                  eff, output});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}

// --- Decoded-GOP cache ---
// The shared cache every engine decodes through: a cold sweep pays one decode
// per GOP, re-reads are pure hits, and a capacity half the working set forces
// LRU churn. Hit rate and decode-work saved come from the cache's own
// counters.
int RunGopCacheSection() {
  std::printf(
      "Decoded-GOP cache (8 GOPs of 8 frames, 3 passes per row; warm-run "
      "median of %d)\n",
      kSectionReps);
  Video content = MakeContent(240, 136, 64);
  EncoderConfig config;
  config.qp = 28;
  config.gop_length = 8;
  auto encoded = Encode(content, config);
  if (!encoded.ok()) {
    std::fprintf(stderr, "encode failed: %s\n",
                 encoded.status().ToString().c_str());
    return 1;
  }
  int64_t gop_bytes = 0;
  for (const Frame& frame : content.frames) {
    gop_bytes += static_cast<int64_t>(frame.y_plane().size() +
                                      frame.u_plane().size() +
                                      frame.v_plane().size());
  }
  gop_bytes /= 8;  // Per-GOP decoded footprint.

  driver::TextTable table;
  table.SetHeader({"Capacity", "Runtime", "Hit rate", "Frames decoded",
                   "Evictions"});
  struct Row {
    const char* label;
    int64_t gops;  // Capacity in whole decoded GOPs.
  } rows[] = {{"whole stream", 8}, {"half stream", 4}, {"one GOP", 1}};
  for (const Row& row : rows) {
    GopCacheOptions options;
    options.capacity_bytes = row.gops * gop_bytes;
    options.shards = 1;
    // Each rep runs against a fresh cache so hit/eviction stats are
    // deterministic; the first (warm-up) rep is untimed, then the median of
    // the timed reps is reported with the last rep's stats.
    std::vector<double> rep_seconds;
    GopCacheStats stats;
    int64_t frames_decoded = 0;
    for (int rep = 0; rep < kSectionReps + 1; ++rep) {
      GopCache cache(options);
      GopCacheCounters counters;
      Stopwatch watch;
      for (int pass = 0; pass < 3; ++pass) {
        auto decoded = CachedDecode(*encoded, cache, &counters);
        if (!decoded.ok()) {
          std::fprintf(stderr, "cached decode failed: %s\n",
                       decoded.status().ToString().c_str());
          return 1;
        }
        benchmark::DoNotOptimize(decoded);
      }
      if (rep > 0) rep_seconds.push_back(watch.ElapsedSeconds());
      stats = cache.stats();
      frames_decoded = counters.frames_decoded.load();
    }
    double seconds = Median(rep_seconds);
    int64_t lookups = stats.hits + stats.coalesced + stats.misses;
    char hit_rate[32];
    std::snprintf(hit_rate, sizeof(hit_rate), "%.0f%%",
                  lookups > 0
                      ? 100.0 * static_cast<double>(stats.hits + stats.coalesced) /
                            static_cast<double>(lookups)
                      : 0.0);
    table.AddRow({row.label, driver::FormatSeconds(seconds), hit_rate,
                  std::to_string(frames_decoded),
                  std::to_string(stats.evictions)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}

// --- SIMD dispatch-level speedup ---
// End-to-end Encode()/Decode() at each kernel dispatch level, repinned via
// SetSimdLevelForTest. The output column cross-checks the identity guarantee
// at the bitstream level: every dispatch level must produce the exact bytes
// the scalar kernels produce.
int RunSimdSpeedupSection() {
  SimdLevel detected = DetectedSimdLevel();
  std::printf(
      "Codec by SIMD dispatch level (detected: %s; warm-run median of %d)\n",
      SimdLevelName(detected), kSectionReps);
  const Video& content = Content();
  EncoderConfig config;
  config.qp = 28;

  driver::TextTable table;
  table.SetHeader({"Level", "Encode", "Decode", "Speedup", "Output"});
  double baseline_seconds = 0.0;
  EncodedVideo baseline;
  for (int l = 0; l <= static_cast<int>(detected); ++l) {
    SimdLevel level = static_cast<SimdLevel>(l);
    kernels::SetSimdLevelForTest(level);
    {
      auto warm = Encode(content, config);
      if (!warm.ok() || !Decode(*warm).ok()) {
        std::fprintf(stderr, "warm-up encode/decode failed\n");
        return 1;
      }
    }
    std::vector<double> encode_reps, decode_reps;
    StatusOr<EncodedVideo> encoded = Status::Internal("no rep ran");
    for (int rep = 0; rep < kSectionReps; ++rep) {
      Stopwatch watch;
      encoded = Encode(content, config);
      encode_reps.push_back(watch.ElapsedSeconds());
      if (!encoded.ok()) {
        std::fprintf(stderr, "encode failed: %s\n",
                     encoded.status().ToString().c_str());
        return 1;
      }
      watch.Reset();
      auto decoded = Decode(*encoded);
      decode_reps.push_back(watch.ElapsedSeconds());
      if (!decoded.ok()) {
        std::fprintf(stderr, "decode failed: %s\n",
                     decoded.status().ToString().c_str());
        return 1;
      }
    }
    double encode_seconds = Median(encode_reps);
    double decode_seconds = Median(decode_reps);
    double seconds = encode_seconds + decode_seconds;

    std::string output = "baseline";
    if (l == 0) {
      baseline_seconds = seconds;
      baseline = std::move(encoded).value();
    } else {
      bool identical = encoded->frames.size() == baseline.frames.size();
      for (size_t f = 0; identical && f < baseline.frames.size(); ++f) {
        identical = encoded->frames[f].data == baseline.frames[f].data;
      }
      output = identical ? "identical" : "DIVERGED";
    }
    table.AddRow({SimdLevelName(level), driver::FormatSeconds(encode_seconds),
                  driver::FormatSeconds(decode_seconds),
                  driver::FormatRatio(seconds > 0 ? baseline_seconds / seconds
                                                  : 0.0),
                  output});
  }
  kernels::SetSimdLevelForTest(RequestedSimdLevel());
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace visualroad::video::codec

int main(int argc, char** argv) {
  using namespace visualroad::video::codec;
  if (int rc = RunSimdSpeedupSection(); rc != 0) return rc;
  if (int rc = RunParallelScalingSection(); rc != 0) return rc;
  if (int rc = RunGopCacheSection(); rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
