// Ablation bench: the VRC codec's design choices (DESIGN.md E11).
//
// Micro-benchmarks (google-benchmark) over the codec substrate quantify the
// knobs behind the system-level results: profile (H264-like vs HEVC-like),
// GOP structure, motion-search radius, QP, and the raw throughput of the
// transform and entropy stages. Bitstream sizes are reported as counters so
// the rate/speed trade is visible in one table.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/random.h"
#include "video/codec/codec.h"
#include "video/codec/dct.h"
#include "video/codec/entropy.h"
#include "video/codec/motion.h"

namespace visualroad::video::codec {
namespace {

Video MakeContent(int w, int h, int frames) {
  Pcg32 rng(1234, 9);
  Video v;
  v.fps = 15;
  for (int f = 0; f < frames; ++f) {
    Frame frame(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double value = 120 + 70 * std::sin((x + 2 * f) * 0.09) *
                                 std::cos((y + f) * 0.06) +
                       rng.NextGaussian(0, 3);
        frame.SetPixel(x, y,
                       static_cast<uint8_t>(std::clamp(value, 0.0, 255.0)),
                       static_cast<uint8_t>(118 + (x % 24)),
                       static_cast<uint8_t>(142 - (y % 24)));
      }
    }
    v.frames.push_back(std::move(frame));
  }
  return v;
}

const Video& Content() {
  static const Video* content = new Video(MakeContent(240, 136, 8));
  return *content;
}

void BM_EncodeProfile(benchmark::State& state) {
  EncoderConfig config;
  config.profile = static_cast<Profile>(state.range(0));
  config.qp = 28;
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = Encode(Content(), config);
    if (!encoded.ok()) state.SkipWithError("encode failed");
    bytes = encoded->TotalBytes();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetLabel(ProfileName(config.profile));
}
BENCHMARK(BM_EncodeProfile)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EncodeGop(benchmark::State& state) {
  EncoderConfig config;
  config.gop_length = static_cast<int>(state.range(0));
  config.qp = 28;
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = Encode(Content(), config);
    if (!encoded.ok()) state.SkipWithError("encode failed");
    bytes = encoded->TotalBytes();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeGop)->Arg(1)->Arg(4)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_EncodeSearchRadius(benchmark::State& state) {
  EncoderConfig config;
  config.search_radius = static_cast<int>(state.range(0));
  config.qp = 28;
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = Encode(Content(), config);
    if (!encoded.ok()) state.SkipWithError("encode failed");
    bytes = encoded->TotalBytes();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeSearchRadius)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_EncodeQp(benchmark::State& state) {
  EncoderConfig config;
  config.qp = static_cast<int>(state.range(0));
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = Encode(Content(), config);
    if (!encoded.ok()) state.SkipWithError("encode failed");
    bytes = encoded->TotalBytes();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeQp)->Arg(12)->Arg(28)->Arg(44)->Unit(benchmark::kMillisecond);

void BM_Decode(benchmark::State& state) {
  EncoderConfig config;
  config.qp = 28;
  auto encoded = Encode(Content(), config);
  for (auto _ : state) {
    auto decoded = Decode(*encoded);
    if (!decoded.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_Decode)->Unit(benchmark::kMillisecond);

void BM_ForwardDct(benchmark::State& state) {
  Pcg32 rng(5, 5);
  int16_t block[kTransformArea];
  for (int16_t& v : block) v = static_cast<int16_t>(rng.NextInt(-128, 127));
  double coefficients[kTransformArea];
  for (auto _ : state) {
    ForwardDct8x8(block, coefficients);
    benchmark::DoNotOptimize(coefficients);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDct);

void BM_ArithmeticCoder(benchmark::State& state) {
  Pcg32 rng(6, 6);
  std::vector<int> bits(10000);
  for (int& bit : bits) bit = rng.NextBool(0.8) ? 0 : 1;
  for (auto _ : state) {
    ArithmeticEncoder encoder;
    BitModel model;
    for (int bit : bits) encoder.EncodeBit(model, bit);
    auto data = encoder.Finish();
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(bits.size()));
}
BENCHMARK(BM_ArithmeticCoder);

void BM_DiamondSearch(benchmark::State& state) {
  Plane reference(240, 136), current(240, 136);
  for (int y = 0; y < 136; ++y) {
    for (int x = 0; x < 240; ++x) {
      uint8_t v = static_cast<uint8_t>(128 + 80 * std::sin(x * 0.12) *
                                                 std::cos(y * 0.1));
      reference.Set(x, y, v);
      current.Set(x, y,
                  reference.At(std::min(239, x + 3), std::max(0, y - 2)));
    }
  }
  int radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int by = 0; by + 16 <= 136; by += 16) {
      for (int bx = 0; bx + 16 <= 240; bx += 16) {
        MotionVector mv = DiamondSearch(current, reference, bx, by, 16, radius, {});
        benchmark::DoNotOptimize(mv);
      }
    }
  }
}
BENCHMARK(BM_DiamondSearch)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace visualroad::video::codec

BENCHMARK_MAIN();
