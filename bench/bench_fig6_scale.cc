// Reproduces Figure 6: total benchmark-query runtime as the scale factor L
// grows (paper: per-query plots at L = 1..; here L in {1, 2, 4} by default,
// override with VR_FIG6_LMAX).
//
// Shapes to reproduce: no single system dominates at small L; as L grows the
// batch (Scanner-like) engine falls behind on memory-bound queries (its
// retained tables cross the budget and every stage starts round-tripping
// through disk), the cascade (NoScope-like) engine keeps its Q2(c) lead, and
// batch Q4 remains N/A throughout.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

namespace visualroad::bench {
namespace {

int Run() {
  int l_max = EnvInt("VR_FIG6_LMAX", QuickMode() ? 2 : 4);
  std::vector<int> scales;
  for (int l = 1; l <= l_max; l *= 2) scales.push_back(l);
  double duration = QuickMode() ? 0.5 : 0.75;

  PrintBanner("Figure 6 - Runtime vs scale factor",
              "Each cell: total batch runtime (batch size 4L).");

  // Per-query tables: rows = engines, columns = L values.
  std::map<queries::QueryId,
           std::map<std::string, std::vector<std::string>>> cells;

  for (int scale : scales) {
    auto dataset =
        MakeBenchDataset(scale, kBaseWidth, kBaseHeight, duration,
                         600 + static_cast<uint64_t>(scale));
    if (!dataset.ok()) {
      std::fprintf(stderr, "dataset failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    systems::EngineOptions engine_options = BenchEngineOptions();
    auto batch = systems::MakeBatchEngine(engine_options);
    auto pipeline = systems::MakePipelineEngine(engine_options);
    auto cascade = systems::MakeCascadeEngine(engine_options);

    driver::VcdOptions vcd_options = BenchVcdOptions();
    vcd_options.validate = false;
    // The composite queries scan the whole corpus per instance, so their
    // batch cost grows as L^2; cap instances for bench tractability
    // (VR_FULL_BATCH=1 restores the strict 4L rule).
    bool full_batch = EnvInt("VR_FULL_BATCH", 0) == 1;

    for (systems::Vdbms* engine : {batch.get(), pipeline.get(), cascade.get()}) {
      for (queries::QueryId id : queries::AllQueries()) {
        driver::VcdOptions per_query = vcd_options;
        if (!full_batch && !queries::IsMicrobenchmark(id)) {
          per_query.batch_size_override = std::min(8, 4 * scale);
        }
        driver::VisualCityDriver per_query_vcd(*dataset, per_query);
        auto result = per_query_vcd.RunQueryBatch(*engine, id);
        std::string cell;
        if (!result.ok()) {
          cell = "error";
        } else if (!result->Supported()) {
          cell = "-";
        } else if (result->resource_exhausted > 0 &&
                   result->succeeded < result->instances) {
          cell = "N/A";
        } else if (result->failed > 0) {
          cell = "FAILED";
        } else {
          cell = driver::FormatSeconds(result->total_seconds);
        }
        cells[id][engine->name()].push_back(cell);
      }
      engine->Quiesce();
    }
  }

  for (queries::QueryId id : queries::AllQueries()) {
    std::printf("--- %s ---\n", queries::QueryName(id));
    driver::TextTable table;
    std::vector<std::string> header{"Engine"};
    for (int scale : scales) header.push_back("L=" + std::to_string(scale));
    table.SetHeader(header);
    for (const char* engine :
         {"BatchEngine", "PipelineEngine", "CascadeEngine"}) {
      std::vector<std::string> row{engine};
      for (const std::string& cell : cells[id][engine]) row.push_back(cell);
      table.AddRow(row);
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
