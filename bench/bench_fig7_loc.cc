// Reproduces Figure 7: lines of code required to express each benchmark
// query on each system.
//
// The paper counts the minimal auto-formatted code needed to run each query
// per system, plus any supporting extension code. Here each engine's
// per-query implementation is delimited by "vr:<query>:begin/end" markers in
// its source file; this bench reads the sources (via the compiled-in source
// root) and counts non-empty, non-marker lines — the same methodology at the
// granularity this codebase expresses queries.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "bench_common.h"

namespace visualroad::bench {
namespace {

std::map<std::string, int> CountMarkedSections(const std::string& path) {
  std::map<std::string, int> counts;
  std::ifstream file(path);
  if (!file) return counts;
  std::string line;
  std::string active;
  while (std::getline(file, line)) {
    size_t begin = line.find("// vr:");
    if (begin != std::string::npos) {
      std::string marker = line.substr(begin + 6);
      size_t colon = marker.find(':');
      if (colon != std::string::npos) {
        std::string query = marker.substr(0, colon);
        std::string kind = marker.substr(colon + 1);
        if (kind.find("begin") == 0) {
          active = query;
          continue;
        }
        if (kind.find("end") == 0) {
          active.clear();
          continue;
        }
      }
    }
    if (active.empty()) continue;
    // Count non-empty, non-pure-comment lines (auto-formatted source).
    std::string trimmed;
    for (char c : line) {
      if (!isspace(static_cast<unsigned char>(c))) trimmed += c;
    }
    if (trimmed.empty()) continue;
    if (trimmed.rfind("//", 0) == 0) continue;
    ++counts[active];
  }
  return counts;
}

int Run() {
  PrintBanner("Figure 7 - Lines of code per query per system",
              "Counting marked per-query implementation sections.");

  const std::string root = VISUALROAD_SOURCE_DIR;
  struct EngineSource {
    const char* name;
    std::string path;
  };
  const EngineSource sources[] = {
      {"BatchEngine", root + "/src/systems/batch_engine.cc"},
      {"PipelineEngine", root + "/src/systems/pipeline_engine.cc"},
      {"CascadeEngine", root + "/src/systems/cascade_engine.cc"},
  };

  std::map<std::string, std::map<std::string, int>> counts;
  for (const EngineSource& source : sources) {
    counts[source.name] = CountMarkedSections(source.path);
    if (counts[source.name].empty()) {
      std::fprintf(stderr, "no marked sections found in %s\n",
                   source.path.c_str());
      return 1;
    }
  }

  driver::TextTable table;
  table.SetHeader({"Query", "BatchEngine", "PipelineEngine", "CascadeEngine"});
  int totals[3] = {0, 0, 0};
  for (queries::QueryId id : queries::AllQueries()) {
    std::string name = queries::QueryName(id);
    std::vector<std::string> row{name};
    int e = 0;
    for (const EngineSource& source : sources) {
      auto it = counts[source.name].find(name);
      if (it == counts[source.name].end()) {
        row.push_back("-");
      } else {
        row.push_back(std::to_string(it->second));
        totals[e] += it->second;
      }
      ++e;
    }
    table.AddRow(row);
  }
  table.AddRow({"Total", std::to_string(totals[0]), std::to_string(totals[1]),
                std::to_string(totals[2])});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Shape to reproduce: the specialised cascade engine needs code for"
              " only two queries;\nthe two general engines have similar counts"
              " per query (both are C++ dataflow code).\n");
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
