// Reproduces Section 6.4: write vs streaming execution modes.
//
// The paper finds the runtime difference between persisting each result
// (write mode) and discarding it (streaming mode) is below 2.5% for every
// query, because disk IO is cheap relative to video compression. Both modes
// run the microbenchmark queries on both general engines and the per-query
// deltas are reported.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "bench_common.h"

namespace visualroad::bench {
namespace {

using queries::QueryId;

int Run() {
  PrintBanner("Section 6.4 - Write vs streaming modes",
              "Expected: small per-query deltas (paper: < 2.5%).");

  int scale = EnvInt("VR_S64_L", 1);
  double duration = QuickMode() ? 0.75 : 1.0;
  auto dataset = MakeBenchDataset(scale, kBaseWidth, kBaseHeight, duration, 640);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  const QueryId queries[] = {QueryId::kQ1,  QueryId::kQ2a, QueryId::kQ2b,
                             QueryId::kQ2d, QueryId::kQ3,  QueryId::kQ5,
                             QueryId::kQ6a, QueryId::kQ6b};

  std::string output_dir =
      (std::filesystem::temp_directory_path() / "vr_sec64").string();

  systems::EngineOptions engine_options = BenchEngineOptions();
  auto pipeline = systems::MakePipelineEngine(engine_options);
  auto batch = systems::MakeBatchEngine(engine_options);

  for (systems::Vdbms* engine : {pipeline.get(), batch.get()}) {
    driver::TextTable table;
    table.SetHeader({"Query", "Write", "Streaming", "Delta"});
    std::printf("--- %s ---\n", engine->name());
    for (QueryId id : queries) {
      double seconds[2] = {0, 0};
      bool ok = true;
      int mode_index = 0;
      for (systems::OutputMode mode :
           {systems::OutputMode::kWrite, systems::OutputMode::kStreaming}) {
        driver::VcdOptions options = BenchVcdOptions();
        options.output_mode = mode;
        options.validate = false;
        options.output_dir =
            mode == systems::OutputMode::kWrite ? output_dir : "";
        driver::VisualCityDriver vcd(*dataset, options);
        auto result = vcd.RunQueryBatch(*engine, id);
        if (!result.ok() || result->failed > 0) {
          ok = false;
          break;
        }
        seconds[mode_index++] = result->total_seconds;
        engine->Quiesce();
      }
      if (!ok) {
        table.AddRow({queries::QueryName(id), "N/A", "N/A", "-"});
        continue;
      }
      double delta = (seconds[0] - seconds[1]) / std::max(1e-9, seconds[0]) * 100.0;
      char delta_cell[32];
      std::snprintf(delta_cell, sizeof(delta_cell), "%+.1f%%", delta);
      table.AddRow({queries::QueryName(id), driver::FormatSeconds(seconds[0]),
                    driver::FormatSeconds(seconds[1]), delta_cell});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::filesystem::remove_all(output_dir);
  std::printf("Note: streaming mode still encodes each result (it goes to the"
              " null device);\nonly the container write is skipped, so deltas"
              " stay small (the paper's finding).\n");
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
