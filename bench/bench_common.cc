#include "bench_common.h"

#include <cstdio>
#include <fstream>

#include "common/metrics.h"
#include "common/trace.h"

namespace visualroad::bench {
namespace {

/// Writes the run's observability artefacts at process exit when requested
/// via the environment (docs/OBSERVABILITY.md): VR_TRACE_PATH receives a
/// Chrome trace of every recorded span, VR_METRICS a Prometheus dump ('-'
/// for stdout). Installed once, from PrintBanner, so every bench binary
/// supports the same inspection workflow without per-bench wiring.
void DumpObservabilityAtExit() {
  const char* trace_path = std::getenv("VR_TRACE_PATH");
  if (trace_path != nullptr && trace_path[0] != '\0') {
    Status status = trace::WriteChromeTrace(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   status.ToString().c_str());
    }
  }
  const char* metrics_path = std::getenv("VR_METRICS");
  if (metrics_path != nullptr && metrics_path[0] != '\0') {
    std::string text = metrics::MetricsRegistry::Global().PrometheusText();
    if (std::string(metrics_path) == "-") {
      std::printf("%s", text.c_str());
    } else {
      std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
      out << text;
    }
  }
}

void InstallObservabilityDump() {
  static bool installed = [] {
    // Recording must be on for the trace dump to have content; VR_TRACE_PATH
    // implies VR_TRACE=1.
    if (const char* path = std::getenv("VR_TRACE_PATH");
        path != nullptr && path[0] != '\0') {
      trace::SetEnabled(true);
    }
    std::atexit(DumpObservabilityAtExit);
    return true;
  }();
  (void)installed;
}

}  // namespace

bool QuickMode() {
  const char* value = std::getenv("VR_QUICK");
  return value != nullptr && value[0] == '1';
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

systems::EngineOptions BenchEngineOptions() {
  systems::EngineOptions options;
  // Proportional to the scaled world: the paper's 32 GB machine handles
  // roughly 1.5 hours of 1k video; these budgets put the same pressure
  // points at bench sizes.
  options.memory_budget_bytes = int64_t{24} << 20;
  options.memory_fail_bytes = int64_t{96} << 20;
  options.threads = 2;
  return options;
}

driver::VcdOptions BenchVcdOptions() {
  driver::VcdOptions options;
  options.output_mode = systems::OutputMode::kWrite;
  options.validate = true;
  options.seed = 0xBE7C4;
  // Table 3 allows upsampling exponents to 2^5; at bench resolutions that
  // is memory-prohibitive for every engine, so benches sample n in [1, 2]
  // (recorded in EXPERIMENTS.md).
  options.sampler.max_upsample_exponent = 2;
  return options;
}

StatusOr<sim::Dataset> MakeBenchDataset(int scale_factor, int width, int height,
                                        double duration_seconds, uint64_t seed) {
  sim::CityConfig config;
  config.scale_factor = scale_factor;
  config.width = width;
  config.height = height;
  config.duration_seconds = duration_seconds;
  config.fps = kBaseFps;
  config.seed = seed;
  sim::GeneratorOptions options;
  options.codec.qp = 26;
  options.codec.gop_length = 15;
  return driver::PrepareDataset(config, options);
}

void PrintBanner(const std::string& title, const std::string& subtitle) {
  InstallObservabilityDump();
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace visualroad::bench
