// Reproduces Section 6.3.1: quality of generated video, measured as the
// detector's average precision at 50% IoU on Visual Road vs the recorded
// (real-video stand-in) corpus.
//
// The paper reports AP@50 of 72% (Visual Road) vs 75% (UA-DETRAC) for
// YOLOv2 on automobiles — i.e. the synthetic video's semantic structure is
// close enough to real video for detection workloads. The shape to
// reproduce: the two APs land within a few points of each other, both in the
// YOLOv2-on-traffic-video range (low-to-mid 70s).

#include <cstdio>

#include "bench_common.h"
#include "driver/validation.h"
#include "simulation/recorded_corpus.h"

namespace visualroad::bench {
namespace {

/// Runs the reference detector over every traffic video of a dataset and
/// pools detections/truth for AP computation.
StatusOr<double> CorpusAp(const sim::Dataset& dataset) {
  vision::MiniYolo detector;
  std::vector<std::vector<vision::Detection>> all_detections;
  std::vector<sim::FrameGroundTruth> all_truth;
  for (const sim::VideoAsset* asset : dataset.TrafficAssets()) {
    VR_ASSIGN_OR_RETURN(video::Video decoded,
                        video::codec::Decode(asset->container.video));
    for (int f = 0; f < decoded.FrameCount(); ++f) {
      static const sim::FrameGroundTruth kEmpty;
      const sim::FrameGroundTruth& truth =
          static_cast<size_t>(f) < asset->ground_truth.size()
              ? asset->ground_truth[static_cast<size_t>(f)]
              : kEmpty;
      all_detections.push_back(
          detector.Detect(decoded.frames[static_cast<size_t>(f)], truth, f));
      all_truth.push_back(truth);
    }
  }
  return driver::AveragePrecision(all_detections, all_truth,
                                  sim::ObjectClass::kVehicle, 0.5);
}

int Run() {
  PrintBanner("Section 6.3.1 - Video quality (AP@50, vehicles)",
              "Detector AP on Visual Road vs the recorded-corpus baseline.");

  int videos = EnvInt("VR_Q631_VIDEOS", QuickMode() ? 4 : 8);
  double duration = QuickMode() ? 1.0 : 2.0;

  auto visual_road =
      MakeBenchDataset((videos + 3) / 4, kBaseWidth, kBaseHeight, duration, 631);
  if (!visual_road.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 visual_road.status().ToString().c_str());
    return 1;
  }

  sim::RecordedCorpusConfig recorded_config;
  recorded_config.video_count = videos;
  recorded_config.width = kBaseWidth;
  recorded_config.height = kBaseHeight;
  recorded_config.duration_seconds = duration;
  recorded_config.fps = kBaseFps;
  recorded_config.seed = 632;
  video::codec::EncoderConfig codec;
  codec.qp = 26;
  auto recorded = sim::GenerateRecordedCorpus(recorded_config, codec);
  if (!recorded.ok()) {
    std::fprintf(stderr, "recorded corpus failed: %s\n",
                 recorded.status().ToString().c_str());
    return 1;
  }

  auto vr_ap = CorpusAp(*visual_road);
  auto rec_ap = CorpusAp(*recorded);
  if (!vr_ap.ok() || !rec_ap.ok()) {
    std::fprintf(stderr, "AP computation failed\n");
    return 1;
  }

  driver::TextTable table;
  table.SetHeader({"Corpus", "AP@50 (vehicles)", "Paper"});
  char vr_cell[16], rec_cell[16];
  std::snprintf(vr_cell, sizeof(vr_cell), "%.0f%%", *vr_ap * 100.0);
  std::snprintf(rec_cell, sizeof(rec_cell), "%.0f%%", *rec_ap * 100.0);
  table.AddRow({"Visual Road", vr_cell, "72%"});
  table.AddRow({"Recorded baseline", rec_cell, "75% (UA-DETRAC)"});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Shape to reproduce: both APs within a few points of each other,"
              " in the low-to-mid 70s.\n");
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
