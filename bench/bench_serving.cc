// Serving bench (DESIGN.md Section 12): open-loop latency and goodput
// under offered load.
//
// Calibrates the server's approximate batch capacity from a few direct
// executions, then sweeps the offered arrival rate at 0.5x, 1x, and 2x of
// that capacity through the multi-tenant query server with real-time
// pacing. Under-load the latency percentiles sit near the service time and
// goodput tracks the offered rate; at 2x the admission controller sheds
// with kResourceExhausted and goodput saturates near capacity instead of
// collapsing. Results are printed as a table and written as JSON to
// bench/BENCH_serving.json (override with VR_SERVING_OUT).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"

namespace visualroad::bench {
namespace {

struct LoadPoint {
  double load_factor = 0.0;
  server::ServingReport report;
};

int Run() {
  PrintBanner("Serving - open-loop load sweep",
              "Multi-tenant query server; latency percentiles and goodput "
              "at 0.5x / 1x / 2x of calibrated capacity.");

  double duration = QuickMode() ? 0.3 : 0.5;
  auto dataset = MakeBenchDataset(1, kBaseWidth, kBaseHeight, duration, 1200);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  constexpr int kWorkers = 2;
  constexpr int kBatchSize = 2;

  // Calibration: mean direct Q1 execution time gives the per-query service
  // time; capacity is how many kBatchSize-instance batches per second
  // kWorkers can clear at that service time.
  driver::VcdOptions calibrate_options = BenchVcdOptions();
  calibrate_options.validate = false;
  calibrate_options.batch_size_override = 4;
  driver::VisualCityDriver calibrator(*dataset, calibrate_options);
  auto calibration_batch = calibrator.SampleBatch(queries::QueryId::kQ1);
  if (!calibration_batch.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n",
                 calibration_batch.status().ToString().c_str());
    return 1;
  }
  auto engine = systems::MakePipelineEngine(BenchEngineOptions());
  Stopwatch calibration_watch;
  for (const queries::QueryInstance& instance : *calibration_batch) {
    auto output = engine->Execute(instance, *dataset,
                                  systems::OutputMode::kStreaming, "");
    if (!output.ok()) {
      std::fprintf(stderr, "calibration query failed: %s\n",
                   output.status().ToString().c_str());
      return 1;
    }
  }
  double mean_query_seconds =
      calibration_watch.ElapsedSeconds() /
      static_cast<double>(calibration_batch->size());
  double capacity_batches_per_second =
      kWorkers / (mean_query_seconds * kBatchSize);
  std::printf("Calibration: %.1f ms/query -> capacity ~%.1f batches/s "
              "(%d workers, %d queries/batch)\n\n",
              mean_query_seconds * 1e3, capacity_batches_per_second, kWorkers,
              kBatchSize);

  std::vector<LoadPoint> points;
  for (double load : {0.5, 1.0, 2.0}) {
    driver::VcdOptions options = BenchVcdOptions();
    options.validate = false;
    driver::VisualCityDriver vcd(*dataset, options);

    driver::ServingRunOptions run;
    run.server.worker_threads = kWorkers;
    run.server.max_concurrent_queries_per_batch = kBatchSize;
    run.server.max_total_queued = 8;
    run.server.output_mode = systems::OutputMode::kStreaming;
    run.traffic.tenants = 2;
    run.traffic.duration_seconds = QuickMode() ? 1.0 : 2.0;
    run.traffic.arrivals_per_second = load * capacity_batches_per_second;
    run.traffic.seed = 1200;
    run.replay.batch_size = kBatchSize;
    run.replay.time_scale = 1.0;  // Real time: overload must mean overload.
    run.replay.seed = 1200;
    run.replay.tenant.max_queued_batches = 4;

    auto fresh_engine = systems::MakePipelineEngine(BenchEngineOptions());
    auto report = vcd.RunServing(*fresh_engine, run);
    if (!report.ok()) {
      std::fprintf(stderr, "serving run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    points.push_back({load, *report});
  }

  driver::TextTable table;
  table.SetHeader({"Load", "Offered", "Shed", "p50", "p95", "p99",
                   "Goodput f/s", "Attempted f/s"});
  for (const LoadPoint& point : points) {
    const server::ServingReport& r = point.report;
    char load[16], goodput[32], attempted[32];
    std::snprintf(load, sizeof(load), "%.1fx", point.load_factor);
    std::snprintf(goodput, sizeof(goodput), "%.0f",
                  r.goodput_frames_per_second);
    std::snprintf(attempted, sizeof(attempted), "%.0f",
                  r.attempted_frames_per_second);
    table.AddRow({load, std::to_string(r.offered_batches),
                  std::to_string(r.shed_batches),
                  driver::FormatSeconds(r.latency.p50_seconds),
                  driver::FormatSeconds(r.latency.p95_seconds),
                  driver::FormatSeconds(r.latency.p99_seconds), goodput,
                  attempted});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Overload (2x) should shed batches at admission instead of "
              "queueing without bound;\ngoodput saturates near the 1x level "
              "while p99 stays finite.\n");

  const char* env_out = std::getenv("VR_SERVING_OUT");
  std::string out_path = env_out != nullptr && env_out[0] != '\0'
                             ? env_out
                             : "bench/BENCH_serving.json";
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"capacity_batches_per_second\": "
      << capacity_batches_per_second << ",\n  \"load_points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& point = points[i];
    const server::ServingReport& r = point.report;
    out << "    {\n"
        << "      \"load_factor\": " << point.load_factor << ",\n"
        << "      \"offered_batches\": " << r.offered_batches << ",\n"
        << "      \"admitted_batches\": " << r.admitted_batches << ",\n"
        << "      \"shed_batches\": " << r.shed_batches << ",\n"
        << "      \"p50_seconds\": " << r.latency.p50_seconds << ",\n"
        << "      \"p95_seconds\": " << r.latency.p95_seconds << ",\n"
        << "      \"p99_seconds\": " << r.latency.p99_seconds << ",\n"
        << "      \"queue_p99_seconds\": " << r.queue_latency.p99_seconds
        << ",\n"
        << "      \"attempted_frames_per_second\": "
        << r.attempted_frames_per_second << ",\n"
        << "      \"goodput_frames_per_second\": "
        << r.goodput_frames_per_second << "\n    }"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("Wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
