// Ablation bench: the SIMD kernel layer (DESIGN.md §13).
//
// Times every dispatched pixel kernel at each compiled-in SIMD level
// (scalar / SSE2 / AVX2, clamped to what the host CPU reports) through the
// same KernelTable the engines use, and cross-checks that each vector level
// reproduces the scalar output byte for byte on the bench inputs. Timings are
// warm-run medians: every (kernel, level) pair runs one untimed warm-up rep,
// then the median of five timed reps is reported. The decode-path aggregate
// (SAD + forward/inverse DCT + quantise + dequantise) is the headline number:
// the acceptance bar is >= 2x over scalar on AVX2 hardware.
//
// Prints per-kernel tables and writes machine-readable results to
// bench/BENCH_kernels.json (override with VR_KERNELS_OUT).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "driver/report.h"
#include "video/kernels/kernels.h"

namespace visualroad::video::kernels {
namespace {

constexpr int kWarmupReps = 1;
constexpr int kTimedReps = 5;
constexpr int kRowWidth = 1920;
constexpr int kPlaneW = 256, kPlaneH = 144;

struct Workload {
  // Pixel planes and blocks shared by every kernel's timing loop.
  std::vector<uint8_t> cur, ref, rgb, row_a, row_b;
  std::vector<uint32_t> acc;
  int16_t block[64];
  double coefficients[64];
  int16_t levels[64];
  SpanSetup span;

  Workload() {
    Pcg32 rng(42, 7);
    cur.resize(static_cast<size_t>(kPlaneW) * kPlaneH);
    ref.resize(cur.size());
    for (size_t i = 0; i < cur.size(); ++i) {
      cur[i] = static_cast<uint8_t>(rng.NextInt(0, 255));
      ref[i] = static_cast<uint8_t>(rng.NextInt(0, 255));
    }
    rgb.resize(static_cast<size_t>(kRowWidth) * 3);
    for (uint8_t& b : rgb) b = static_cast<uint8_t>(rng.NextInt(0, 255));
    row_a.resize(kRowWidth);
    row_b.resize(kRowWidth);
    for (int i = 0; i < kRowWidth; ++i) {
      row_a[i] = static_cast<uint8_t>(rng.NextInt(0, 255));
      row_b[i] = static_cast<uint8_t>(rng.NextInt(0, 255));
    }
    acc.assign(kRowWidth, 0);
    for (int i = 0; i < 64; ++i) {
      block[i] = static_cast<int16_t>(rng.NextInt(-255, 255));
      coefficients[i] = rng.NextGaussian(0.0, 160.0);
      levels[i] = static_cast<int16_t>(rng.NextInt(-90, 90));
    }
    // A triangle whose spans cover most of a 64-pixel chunk.
    span = SpanSetup{4.0,  2.0,  60.0, 8.0,  30.0, 60.0, 0.0,  0.02,
                     0.03, 0.05, 0.1,  0.9,  0.4,  0.2,  0.1,  0.8};
    double area = (span.s1x - span.s0x) * (span.s2y - span.s0y) -
                  (span.s2x - span.s0x) * (span.s1y - span.s0y);
    span.inv_area = 1.0 / area;
  }
};

/// One kernel's timing harness: `calls` is how many kernel invocations one
/// rep performs (the reported unit is ns per invocation), and `run` performs
/// one rep against the given table.
struct KernelCase {
  Kernel kernel;
  int calls;
  void (*run)(const KernelTable&, Workload&);
};

void RunSad(const KernelTable& kt, Workload& w) {
  int64_t total = 0;
  for (int by = 0; by + 16 <= kPlaneH; by += 16) {
    for (int bx = 0; bx + 16 <= kPlaneW; bx += 16) {
      total += kt.sad_bounded(w.cur.data() + by * kPlaneW + bx, kPlaneW,
                              w.ref.data() + by * kPlaneW + bx, kPlaneW, 16,
                              INT64_MAX);
    }
  }
  if (total < 0) std::abort();  // Keeps the loop observable.
}

void RunForwardDct(const KernelTable& kt, Workload& w) {
  double out[64];
  for (int i = 0; i < 64; ++i) {
    kt.forward_dct(w.block, out);
  }
  if (out[0] == 1e300) std::abort();
}

void RunInverseDct(const KernelTable& kt, Workload& w) {
  int16_t out[64];
  for (int i = 0; i < 64; ++i) {
    kt.inverse_dct(w.coefficients, out);
  }
  if (out[0] == 12345) std::abort();
}

void RunQuantize(const KernelTable& kt, Workload& w) {
  int16_t out[64];
  for (int i = 0; i < 64; ++i) {
    kt.quantize(w.coefficients, 5.0, out);
  }
  if (out[0] == 12345) std::abort();
}

void RunDequantize(const KernelTable& kt, Workload& w) {
  double out[64];
  for (int i = 0; i < 64; ++i) {
    kt.dequantize(w.levels, 5.0, out);
  }
  if (out[0] == 1e300) std::abort();
}

void RunRgbToYuv(const KernelTable& kt, Workload& w) {
  uint8_t y[kRowWidth], u[kRowWidth], v[kRowWidth];
  for (int i = 0; i < 16; ++i) {
    kt.rgb_to_yuv_row(w.rgb.data(), kRowWidth, y, u, v);
  }
  if (y[0] == 254 && u[0] == 254 && v[0] == 254) std::abort();
}

void RunYuvToRgb(const KernelTable& kt, Workload& w) {
  uint8_t rgb[kRowWidth * 3];
  for (int i = 0; i < 16; ++i) {
    kt.yuv_to_rgb_row(w.row_a.data(), w.row_b.data(), w.row_b.data(), kRowWidth,
                      rgb);
  }
  if (rgb[0] == 254 && rgb[1] == 254) std::abort();
}

void RunMask(const KernelTable& kt, Workload& w) {
  uint8_t mask[kRowWidth];
  for (int i = 0; i < 16; ++i) {
    kt.mask_static_row(w.row_a.data(), w.row_b.data(), 0.1, kRowWidth, mask);
  }
  if (mask[0] == 77) std::abort();
}

void RunAccumulate(const KernelTable& kt, Workload& w) {
  for (int i = 0; i < 16; ++i) {
    kt.accumulate_row(w.row_a.data(), kRowWidth, i % 2 == 0 ? 1 : -1,
                      w.acc.data());
  }
}

void RunRasterSpan(const KernelTable& kt, Workload& w) {
  uint8_t valid[64];
  float depth[64];
  double u[64], v[64];
  for (int i = 0; i < 64; ++i) {
    kt.raster_span(w.span, 16.5, 0, 64, valid, depth, u, v);
  }
  if (valid[0] == 77) std::abort();
}

const KernelCase kCases[] = {
    {Kernel::kSad, (kPlaneH / 16) * (kPlaneW / 16), RunSad},
    {Kernel::kForwardDct, 64, RunForwardDct},
    {Kernel::kInverseDct, 64, RunInverseDct},
    {Kernel::kQuantize, 64, RunQuantize},
    {Kernel::kDequantize, 64, RunDequantize},
    {Kernel::kRgbToYuvRow, 16, RunRgbToYuv},
    {Kernel::kYuvToRgbRow, 16, RunYuvToRgb},
    {Kernel::kMaskStaticRow, 16, RunMask},
    {Kernel::kAccumulateRow, 16, RunAccumulate},
    {Kernel::kRasterSpan, 64, RunRasterSpan},
};

constexpr Kernel kDecodePath[] = {Kernel::kSad, Kernel::kForwardDct,
                                  Kernel::kInverseDct, Kernel::kQuantize,
                                  Kernel::kDequantize};

bool OnDecodePath(Kernel kernel) {
  for (Kernel k : kDecodePath) {
    if (k == kernel) return true;
  }
  return false;
}

/// Warm-up then median-of-kTimedReps nanoseconds per kernel invocation.
double MedianNsPerCall(const KernelCase& c, const KernelTable& kt) {
  Workload w;
  for (int rep = 0; rep < kWarmupReps; ++rep) c.run(kt, w);
  std::vector<double> ns(kTimedReps);
  for (int rep = 0; rep < kTimedReps; ++rep) {
    Stopwatch watch;
    c.run(kt, w);
    ns[static_cast<size_t>(rep)] =
        watch.ElapsedSeconds() * 1e9 / static_cast<double>(c.calls);
  }
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

/// Byte-compares each vector level's output against scalar on the bench
/// inputs; returns false (and reports) on any mismatch.
bool VerifyIdentity(SimdLevel level) {
  const KernelTable& kt = KernelsFor(level);
  const KernelTable& ref = KernelsFor(SimdLevel::kScalar);
  Workload w;
  bool ok = true;
  auto check = [&](bool same, const char* what) {
    if (!same) {
      std::fprintf(stderr, "IDENTITY FAILURE: %s diverges at %s\n", what,
                   SimdLevelName(level));
      ok = false;
    }
  };

  int64_t sad_a = kt.sad_bounded(w.cur.data(), kPlaneW, w.ref.data(), kPlaneW,
                                 16, INT64_MAX);
  int64_t sad_b = ref.sad_bounded(w.cur.data(), kPlaneW, w.ref.data(), kPlaneW,
                                  16, INT64_MAX);
  check(sad_a == sad_b, "sad");

  double fa[64], fb[64];
  kt.forward_dct(w.block, fa);
  ref.forward_dct(w.block, fb);
  check(std::memcmp(fa, fb, sizeof(fa)) == 0, "fdct");

  int16_t ia[64], ib[64];
  kt.inverse_dct(w.coefficients, ia);
  ref.inverse_dct(w.coefficients, ib);
  check(std::memcmp(ia, ib, sizeof(ia)) == 0, "idct");

  kt.quantize(w.coefficients, 5.0, ia);
  ref.quantize(w.coefficients, 5.0, ib);
  check(std::memcmp(ia, ib, sizeof(ia)) == 0, "quant");

  kt.dequantize(w.levels, 5.0, fa);
  ref.dequantize(w.levels, 5.0, fb);
  check(std::memcmp(fa, fb, sizeof(fa)) == 0, "dequant");

  uint8_t ya[kRowWidth], ua[kRowWidth], va[kRowWidth];
  uint8_t yb[kRowWidth], ub[kRowWidth], vb[kRowWidth];
  kt.rgb_to_yuv_row(w.rgb.data(), kRowWidth, ya, ua, va);
  ref.rgb_to_yuv_row(w.rgb.data(), kRowWidth, yb, ub, vb);
  check(std::memcmp(ya, yb, sizeof(ya)) == 0 &&
            std::memcmp(ua, ub, sizeof(ua)) == 0 &&
            std::memcmp(va, vb, sizeof(va)) == 0,
        "rgb2yuv");

  uint8_t ra[kRowWidth * 3], rb[kRowWidth * 3];
  kt.yuv_to_rgb_row(w.row_a.data(), w.row_b.data(), w.row_b.data(), kRowWidth,
                    ra);
  ref.yuv_to_rgb_row(w.row_a.data(), w.row_b.data(), w.row_b.data(), kRowWidth,
                     rb);
  check(std::memcmp(ra, rb, sizeof(ra)) == 0, "yuv2rgb");

  kt.mask_static_row(w.row_a.data(), w.row_b.data(), 0.1, kRowWidth, ya);
  ref.mask_static_row(w.row_a.data(), w.row_b.data(), 0.1, kRowWidth, yb);
  check(std::memcmp(ya, yb, kRowWidth) == 0, "mask");

  std::vector<uint32_t> acc_a(kRowWidth, 7), acc_b(kRowWidth, 7);
  kt.accumulate_row(w.row_a.data(), kRowWidth, 1, acc_a.data());
  ref.accumulate_row(w.row_a.data(), kRowWidth, 1, acc_b.data());
  kt.accumulate_row(w.row_b.data(), kRowWidth, -1, acc_a.data());
  ref.accumulate_row(w.row_b.data(), kRowWidth, -1, acc_b.data());
  check(acc_a == acc_b, "accum");

  uint8_t valid_a[64], valid_b[64];
  float depth_a[64], depth_b[64];
  double ua2[64], va2[64], ub2[64], vb2[64];
  kt.raster_span(w.span, 16.5, 0, 64, valid_a, depth_a, ua2, va2);
  ref.raster_span(w.span, 16.5, 0, 64, valid_b, depth_b, ub2, vb2);
  bool span_same = std::memcmp(valid_a, valid_b, sizeof(valid_a)) == 0;
  for (int i = 0; span_same && i < 64; ++i) {
    if (valid_a[i]) {
      span_same = std::memcmp(&depth_a[i], &depth_b[i], sizeof(float)) == 0 &&
                  std::memcmp(&ua2[i], &ub2[i], sizeof(double)) == 0 &&
                  std::memcmp(&va2[i], &vb2[i], sizeof(double)) == 0;
    }
  }
  check(span_same, "raster_span");
  return ok;
}

int Run() {
  SimdLevel detected = DetectedSimdLevel();
  std::vector<SimdLevel> tier;
  for (int l = 0; l <= static_cast<int>(detected); ++l) {
    tier.push_back(static_cast<SimdLevel>(l));
  }
  std::printf("SIMD kernel ablation (detected level: %s; warm-run median of "
              "%d reps)\n\n",
              SimdLevelName(detected), kTimedReps);

  bool identity_ok = true;
  for (SimdLevel level : tier) identity_ok &= VerifyIdentity(level);

  // ns-per-call medians, indexed [kernel][level].
  double ns[kKernelCount][3] = {};
  for (const KernelCase& c : kCases) {
    for (SimdLevel level : tier) {
      ns[static_cast<int>(c.kernel)][static_cast<int>(level)] =
          MedianNsPerCall(c, KernelsFor(level));
    }
  }

  driver::TextTable table;
  table.SetHeader({"Kernel", "scalar ns", "sse2 ns", "avx2 ns", "sse2 x",
                   "avx2 x"});
  char buffer[64];
  auto fmt = [&buffer](double v) -> std::string {
    if (v <= 0.0) return "-";
    std::snprintf(buffer, sizeof(buffer), "%.1f", v);
    return buffer;
  };
  for (const KernelCase& c : kCases) {
    int k = static_cast<int>(c.kernel);
    double scalar = ns[k][0];
    table.AddRow({KernelName(c.kernel), fmt(scalar), fmt(ns[k][1]),
                  fmt(ns[k][2]),
                  ns[k][1] > 0.0 ? fmt(scalar / ns[k][1]) + "x" : "-",
                  ns[k][2] > 0.0 ? fmt(scalar / ns[k][2]) + "x" : "-"});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Decode-path aggregate: the kernels a Decode() call bottoms out in.
  double path_ns[3] = {};
  for (const KernelCase& c : kCases) {
    if (!OnDecodePath(c.kernel)) continue;
    for (SimdLevel level : tier) {
      path_ns[static_cast<int>(level)] += ns[static_cast<int>(c.kernel)]
                                            [static_cast<int>(level)];
    }
  }
  std::printf("Decode-path aggregate (sad+fdct+idct+quant+dequant): ");
  for (SimdLevel level : tier) {
    int l = static_cast<int>(level);
    if (l == 0) {
      std::printf("scalar %.0fns", path_ns[0]);
    } else if (path_ns[l] > 0.0) {
      std::printf(", %s %.0fns (%.2fx)", SimdLevelName(level), path_ns[l],
                  path_ns[0] / path_ns[l]);
    }
  }
  std::printf("\nIdentity: %s\n\n",
              identity_ok ? "all levels byte-identical to scalar"
                          : "FAILURES (see stderr)");

  const char* env_out = std::getenv("VR_KERNELS_OUT");
  std::string out_path = env_out != nullptr && env_out[0] != '\0'
                             ? env_out
                             : "bench/BENCH_kernels.json";
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"detected_level\": \"" << SimdLevelName(detected)
      << "\",\n  \"identity_ok\": " << (identity_ok ? "true" : "false")
      << ",\n  \"warm_reps\": " << kWarmupReps
      << ",\n  \"timed_reps\": " << kTimedReps << ",\n  \"kernels\": [\n";
  for (size_t i = 0; i < std::size(kCases); ++i) {
    int k = static_cast<int>(kCases[i].kernel);
    out << "    {\n      \"name\": \"" << KernelName(kCases[i].kernel)
        << "\",\n      \"decode_path\": "
        << (OnDecodePath(kCases[i].kernel) ? "true" : "false")
        << ",\n      \"levels\": [\n";
    for (size_t t = 0; t < tier.size(); ++t) {
      int l = static_cast<int>(tier[t]);
      out << "        {\"level\": \"" << SimdLevelName(tier[t])
          << "\", \"ns_per_call\": " << ns[k][l]
          << ", \"speedup_vs_scalar\": "
          << (ns[k][l] > 0.0 ? ns[k][0] / ns[k][l] : 0.0) << "}"
          << (t + 1 < tier.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (i + 1 < std::size(kCases) ? "," : "") << "\n";
  }
  out << "  ],\n  \"decode_path_aggregate\": [\n";
  for (size_t t = 0; t < tier.size(); ++t) {
    int l = static_cast<int>(tier[t]);
    out << "    {\"level\": \"" << SimdLevelName(tier[t])
        << "\", \"ns\": " << path_ns[l] << ", \"speedup_vs_scalar\": "
        << (path_ns[l] > 0.0 ? path_ns[0] / path_ns[l] : 0.0) << "}"
        << (t + 1 < tier.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("Wrote %s\n", out_path.c_str());
  return identity_ok ? 0 : 1;
}

}  // namespace
}  // namespace visualroad::video::kernels

int main() { return visualroad::video::kernels::Run(); }
