// Reproduces Figure 9: distributed scaling by worker count (paper: EC2
// p3.2xlarge nodes; near-linear speedup).
//
// Real mode (the default) runs a query batch through the dist/ subsystem:
// a Coordinator spawns N worker processes over Unix-socket RPC, partitions
// the batch by data locality, and merges results. Because this bench host
// may have fewer cores than workers, two measurements are reported:
//   - "wall" — actual wall-clock of the N-worker run on this host;
//   - "cluster makespan" — each instance's worker-measured execution time
//     (from the 1-worker baseline) assigned to N nodes longest-processing-
//     time-first: what a cluster of N one-instance-at-a-time nodes would
//     take. This is the curve to compare against the paper's, and it is
//     monotone in N by construction.
// Every multi-worker run is checked byte-identical against a single-process
// execution of the same batch.
//
// Flags:
//   --simulate       also run the legacy simulated-makespan path (per-tile
//                    generator timings round-robin-assigned to nodes) and
//                    report both curves side by side.
//   --faults [NAME]  run an extra section under the named fault profile
//                    (default "cluster"): worker crashes mid-batch must be
//                    re-dispatched and the merged results must still match
//                    the single-process run byte for byte.
//
// Results are printed and written as JSON to bench/BENCH_distributed.json
// (override with VR_DISTRIBUTED_OUT).

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "dist/coordinator.h"
#include "driver/dataset_io.h"
#include "queries/semantic_cache.h"
#include "storage/sharded_store.h"
#include "storage/vss.h"
#include "video/container/vrmp.h"

namespace visualroad::bench {
namespace {

/// Longest-processing-time-first assignment of `seconds` to `nodes` bins;
/// returns the makespan (maximum bin load).
double LptMakespan(std::vector<double> seconds, int nodes) {
  std::sort(seconds.begin(), seconds.end(), std::greater<double>());
  std::vector<double> load(static_cast<size_t>(nodes), 0.0);
  for (double s : seconds) {
    *std::min_element(load.begin(), load.end()) += s;
  }
  return *std::max_element(load.begin(), load.end());
}

/// Muxed bytes of every produced output, for byte-identity comparison.
std::vector<std::vector<uint8_t>> OutputBytes(
    const std::vector<systems::QueryOutput>& outputs) {
  std::vector<std::vector<uint8_t>> bytes;
  bytes.reserve(outputs.size());
  for (const systems::QueryOutput& output : outputs) {
    video::container::Container container;
    container.video = output.video;
    bytes.push_back(video::container::Mux(container));
  }
  return bytes;
}

struct RealPoint {
  int workers = 0;
  double wall_seconds = 0.0;
  double busy_seconds = 0.0;
  double makespan_seconds = 0.0;
  double speedup = 1.0;
  bool byte_identical = true;
};

struct SimPoint {
  int nodes = 0;
  double wall_seconds = 0.0;
  double makespan_seconds = 0.0;
  double speedup = 1.0;
};

struct FaultPoint {
  std::string profile;
  int workers = 0;
  bool completed = false;
  bool byte_identical = false;
  int64_t workers_lost = 0;
  int64_t chunks_redispatched = 0;
  int64_t rpc_retries = 0;
};

/// Fleet-setup time: workers regenerating the dataset vs attaching to the
/// coordinator's staged store.
struct SetupPoint {
  int workers = 0;
  double stage_seconds = 0.0;       // One-time dataset save + VSS ingest.
  double regenerate_seconds = 0.0;  // Start() with per-worker regeneration.
  double staged_seconds = 0.0;      // Start() attaching to the shared store.
  double reduction_factor = 0.0;    // regenerate / staged.
  bool staged_byte_identical = true;
};

/// Warm-start: a cold fleet vs one pre-seeded from the local semantic cache.
struct WarmPoint {
  int workers = 0;
  double cold_seconds = 0.0;
  double preseeded_seconds = 0.0;
  int64_t entries_shipped = 0;
  int64_t bytes_shipped = 0;
  bool byte_identical = true;
};

int Run(bool simulate, const char* fault_profile) {
  PrintBanner("Figure 9 - Distributed scaling by worker count",
              "Real coordinator/worker execution over local-socket RPC.");

  // One batch, shared by every worker count so the curves are comparable.
  sim::CityConfig config;
  config.scale_factor = EnvInt("VR_FIG9_L", 2);
  config.width = kBaseWidth;
  config.height = kBaseHeight;
  config.duration_seconds = QuickMode() ? 0.5 : 1.0;
  config.fps = kBaseFps;
  config.seed = 900;

  auto dataset = MakeBenchDataset(config.scale_factor, config.width,
                                  config.height, config.duration_seconds,
                                  config.seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  const int kInstances = EnvInt("VR_FIG9_INSTANCES", QuickMode() ? 6 : 10);
  Pcg32 rng(0xF19, 9);
  std::vector<queries::QueryInstance> batch;
  for (int i = 0; i < kInstances; ++i) {
    // Mostly Q1 selects with some Q2(c) detection instances, so both the
    // pixel path and the semantic path cross the wire.
    queries::QueryId id =
        (i % 3 == 2) ? queries::QueryId::kQ2c : queries::QueryId::kQ1;
    auto instance = queries::SampleQueryInstance(id, *dataset, rng, {});
    if (!instance.ok()) {
      std::fprintf(stderr, "sample: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    batch.push_back(std::move(instance).value());
  }

  // Single-process reference: the same engine run directly. Every
  // distributed point is compared against these bytes.
  auto engine = systems::MakePipelineEngine(BenchEngineOptions());
  std::vector<systems::QueryOutput> direct;
  for (const queries::QueryInstance& instance : batch) {
    auto output = engine->Execute(instance, *dataset,
                                  systems::OutputMode::kWrite, "");
    if (!output.ok()) {
      std::fprintf(stderr, "direct: %s\n", output.status().ToString().c_str());
      return 1;
    }
    direct.push_back(std::move(output).value());
  }
  std::vector<std::vector<uint8_t>> direct_bytes = OutputBytes(direct);

  auto base_options = [&](int workers) {
    dist::CoordinatorOptions options;
    options.workers = workers;
    options.setup.config = config;
    options.setup.codec.qp = 26;  // MakeBenchDataset's generator settings.
    options.setup.codec.gop_length = 15;
    options.setup.engine = "PipelineEngine";
    options.setup.engine_options = BenchEngineOptions();
    options.dataset = &dataset.value();
    return options;
  };

  // --- Real scaling curve ---
  std::vector<RealPoint> real_points;
  std::vector<double> baseline_exec;  // 1-worker per-instance seconds.
  for (int workers : {1, 2, 4}) {
    dist::Coordinator coordinator(base_options(workers));
    if (Status status = coordinator.Start(); !status.ok()) {
      std::fprintf(stderr, "start(%d): %s\n", workers,
                   status.ToString().c_str());
      return 1;
    }
    dist::DistBatchStats stats;
    Stopwatch stopwatch;
    auto outcomes = coordinator.ExecuteBatch(
        batch, systems::OutputMode::kWrite, "", &stats);
    double wall = stopwatch.ElapsedSeconds();
    if (!outcomes.ok()) {
      std::fprintf(stderr, "batch(%d): %s\n", workers,
                   outcomes.status().ToString().c_str());
      return 1;
    }
    RealPoint point;
    point.workers = workers;
    point.wall_seconds = wall;
    point.busy_seconds = stats.worker_busy_seconds;
    for (size_t i = 0; i < outcomes->size(); ++i) {
      const dist::DistInstanceOutcome& outcome = (*outcomes)[i];
      if (outcome.state != dist::DistInstanceOutcome::kSucceeded) {
        std::fprintf(stderr, "instance %zu failed: %s\n", i,
                     outcome.error.c_str());
        return 1;
      }
      video::container::Container container;
      container.video = outcome.output.video;
      if (video::container::Mux(container) != direct_bytes[i]) {
        point.byte_identical = false;
      }
      if (workers == 1) baseline_exec.push_back(outcome.exec_seconds);
    }
    point.makespan_seconds = LptMakespan(baseline_exec, workers);
    point.speedup = point.makespan_seconds > 0
                        ? LptMakespan(baseline_exec, 1) / point.makespan_seconds
                        : 0.0;
    real_points.push_back(point);
    coordinator.Shutdown();
  }

  driver::TextTable table;
  table.SetHeader({"Workers", "Wall (this host)", "Cluster makespan", "Speedup",
                   "Byte-identical"});
  for (const RealPoint& point : real_points) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", point.speedup);
    table.AddRow({std::to_string(point.workers),
                  driver::FormatSeconds(point.wall_seconds),
                  driver::FormatSeconds(point.makespan_seconds), speedup,
                  point.byte_identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Cluster makespan models N single-instance nodes from the "
              "1-worker per-instance\ntimings (LPT assignment); wall-clock is "
              "bounded by this host's cores.\n\n");

  // --- Fleet setup: staged store vs per-worker regeneration ---
  SetupPoint setup_point;
  setup_point.workers = 2;
  {
    // Regenerated baseline: every worker re-renders the dataset in Setup.
    {
      dist::Coordinator coordinator(base_options(setup_point.workers));
      Stopwatch stopwatch;
      if (Status status = coordinator.Start(); !status.ok()) {
        std::fprintf(stderr, "setup baseline: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      setup_point.regenerate_seconds = stopwatch.ElapsedSeconds();
      coordinator.Shutdown();
    }

    // Staged: save the dataset into a sharded store once, then spawn a
    // fleet that attaches to it read-only instead of regenerating.
    storage::StoreOptions store_options;
    store_options.root = (std::filesystem::temp_directory_path() /
                          ("vr-bench-dist-stage-" + std::to_string(::getpid())))
                             .string();
    std::filesystem::remove_all(store_options.root);
    auto store = storage::ShardedStore::Open(store_options);
    if (!store.ok()) {
      std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
      return 1;
    }
    {
      Stopwatch stopwatch;
      if (Status status = driver::SaveDatasetSharded(*dataset, *store);
          !status.ok()) {
        std::fprintf(stderr, "stage: %s\n", status.ToString().c_str());
        return 1;
      }
      storage::VssOptions vss_options;
      vss_options.store = &*store;
      auto vss = storage::VideoStorageService::Open(vss_options);
      if (!vss.ok() || !driver::IngestDatasetVss(*dataset, **vss).ok()) {
        std::fprintf(stderr, "vss ingest failed\n");
        return 1;
      }
      setup_point.stage_seconds = stopwatch.ElapsedSeconds();
    }
    {
      dist::CoordinatorOptions options = base_options(setup_point.workers);
      options.setup.store_root = store_options.root;
      options.store = &*store;
      dist::Coordinator coordinator(options);
      Stopwatch stopwatch;
      if (Status status = coordinator.Start(); !status.ok()) {
        std::fprintf(stderr, "staged start: %s\n", status.ToString().c_str());
        return 1;
      }
      setup_point.staged_seconds = stopwatch.ElapsedSeconds();
      // Staged inputs must keep results byte-identical.
      auto outcomes = coordinator.ExecuteBatch(
          batch, systems::OutputMode::kWrite, "", nullptr);
      if (!outcomes.ok()) {
        std::fprintf(stderr, "staged batch: %s\n",
                     outcomes.status().ToString().c_str());
        return 1;
      }
      for (size_t i = 0; i < outcomes->size(); ++i) {
        const dist::DistInstanceOutcome& outcome = (*outcomes)[i];
        video::container::Container container;
        if (outcome.state == dist::DistInstanceOutcome::kSucceeded) {
          container.video = outcome.output.video;
        }
        if (outcome.state != dist::DistInstanceOutcome::kSucceeded ||
            video::container::Mux(container) != direct_bytes[i]) {
          setup_point.staged_byte_identical = false;
        }
      }
      coordinator.Shutdown();
    }
    std::filesystem::remove_all(store_options.root);
    setup_point.reduction_factor =
        setup_point.staged_seconds > 0
            ? setup_point.regenerate_seconds / setup_point.staged_seconds
            : 0.0;
    std::printf("Fleet setup (%d workers): regenerate %s, staged %s "
                "(%.2fx reduction; one-time staging %s); staged results %s.\n\n",
                setup_point.workers,
                driver::FormatSeconds(setup_point.regenerate_seconds).c_str(),
                driver::FormatSeconds(setup_point.staged_seconds).c_str(),
                setup_point.reduction_factor,
                driver::FormatSeconds(setup_point.stage_seconds).c_str(),
                setup_point.staged_byte_identical ? "byte-identical"
                                                  : "DIVERGED");
  }

  // --- Warm start: cold fleet vs semantic-cache pre-seeding ---
  WarmPoint warm_point;
  warm_point.workers = 2;
  {
    // Materialize the batch's detection results locally, cache attached.
    queries::SemanticCache cache;
    systems::EngineOptions cached_options = BenchEngineOptions();
    cached_options.semantic_cache = &cache;
    auto cached_engine = systems::MakePipelineEngine(cached_options);
    for (const queries::QueryInstance& instance : batch) {
      if (instance.id != queries::QueryId::kQ2c) continue;
      auto output = cached_engine->Execute(instance, *dataset,
                                           systems::OutputMode::kWrite, "");
      if (!output.ok()) {
        std::fprintf(stderr, "warm populate: %s\n",
                     output.status().ToString().c_str());
        return 1;
      }
    }

    auto timed_batch = [&](queries::SemanticCache* seed, double* seconds,
                           dist::DistBatchStats* stats) -> bool {
      dist::CoordinatorOptions options = base_options(warm_point.workers);
      options.semantic_cache = seed;
      dist::Coordinator coordinator(options);
      if (Status status = coordinator.Start(); !status.ok()) {
        std::fprintf(stderr, "warm start: %s\n", status.ToString().c_str());
        return false;
      }
      Stopwatch stopwatch;
      auto outcomes = coordinator.ExecuteBatch(
          batch, systems::OutputMode::kWrite, "", stats);
      *seconds = stopwatch.ElapsedSeconds();
      if (!outcomes.ok()) {
        std::fprintf(stderr, "warm batch: %s\n",
                     outcomes.status().ToString().c_str());
        return false;
      }
      for (size_t i = 0; i < outcomes->size(); ++i) {
        const dist::DistInstanceOutcome& outcome = (*outcomes)[i];
        video::container::Container container;
        if (outcome.state == dist::DistInstanceOutcome::kSucceeded) {
          container.video = outcome.output.video;
        }
        if (outcome.state != dist::DistInstanceOutcome::kSucceeded ||
            video::container::Mux(container) != direct_bytes[i]) {
          warm_point.byte_identical = false;
        }
      }
      coordinator.Shutdown();
      return true;
    };

    dist::DistBatchStats cold_stats, warm_stats;
    if (!timed_batch(nullptr, &warm_point.cold_seconds, &cold_stats) ||
        !timed_batch(&cache, &warm_point.preseeded_seconds, &warm_stats)) {
      return 1;
    }
    warm_point.entries_shipped = warm_stats.cache_entries_shipped;
    warm_point.bytes_shipped = warm_stats.cache_bytes_shipped;
    std::printf("Warm start (%d workers): cold %s, pre-seeded %s "
                "(%lld entries / %lld bytes shipped); results %s.\n\n",
                warm_point.workers,
                driver::FormatSeconds(warm_point.cold_seconds).c_str(),
                driver::FormatSeconds(warm_point.preseeded_seconds).c_str(),
                static_cast<long long>(warm_point.entries_shipped),
                static_cast<long long>(warm_point.bytes_shipped),
                warm_point.byte_identical ? "byte-identical" : "DIVERGED");
  }

  // --- Legacy simulated path (--simulate) ---
  std::vector<SimPoint> sim_points;
  if (simulate) {
    int scale = config.scale_factor;
    std::vector<double> tile_seconds(static_cast<size_t>(scale), 0.0);
    for (int t = 0; t < scale; ++t) {
      sim::CityConfig single = config;
      single.scale_factor = 1;
      single.seed = config.seed ^ (static_cast<uint64_t>(t) << 8);
      sim::GeneratorOptions options;
      options.codec.qp = 26;
      sim::VisualCityGenerator generator(options);
      Stopwatch stopwatch;
      auto tile = generator.Generate(single);
      if (!tile.ok()) {
        std::fprintf(stderr, "generation failed: %s\n",
                     tile.status().ToString().c_str());
        return 1;
      }
      tile_seconds[static_cast<size_t>(t)] = stopwatch.ElapsedSeconds();
    }

    driver::TextTable sim_table;
    sim_table.SetHeader(
        {"Nodes", "Wall (this host)", "Cluster makespan", "Speedup"});
    double baseline = 0.0;
    for (int nodes : {1, 2, 4, 8}) {
      if (nodes > scale) break;
      sim::GeneratorOptions options;
      options.codec.qp = 26;
      options.num_nodes = nodes;
      sim::VisualCityGenerator generator(options);
      auto generated = generator.Generate(config);
      if (!generated.ok()) {
        std::fprintf(stderr, "generation failed: %s\n",
                     generated.status().ToString().c_str());
        return 1;
      }
      SimPoint point;
      point.nodes = nodes;
      point.wall_seconds = generator.last_stats().total_seconds;
      std::vector<double> node_load(static_cast<size_t>(nodes), 0.0);
      for (int t = 0; t < scale; ++t) {
        node_load[static_cast<size_t>(t % nodes)] +=
            tile_seconds[static_cast<size_t>(t)];
      }
      point.makespan_seconds =
          *std::max_element(node_load.begin(), node_load.end());
      if (nodes == 1) baseline = point.makespan_seconds;
      point.speedup = point.makespan_seconds > 0
                          ? baseline / point.makespan_seconds
                          : 0.0;
      sim_points.push_back(point);

      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx", point.speedup);
      sim_table.AddRow({std::to_string(nodes),
                        driver::FormatSeconds(point.wall_seconds),
                        driver::FormatSeconds(point.makespan_seconds),
                        speedup});
    }
    std::printf("Legacy simulated generator curve (--simulate):\n%s\n",
                sim_table.ToString().c_str());
  }

  // --- Fault section (--faults) ---
  FaultPoint faulted;
  bool ran_faults = fault_profile != nullptr;
  if (ran_faults) {
    auto profile = fault::ProfileByName(fault_profile);
    if (!profile.ok()) {
      std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
      return 1;
    }
    fault::FaultInjector injector(*profile, 0xF19);
    dist::CoordinatorOptions options = base_options(3);
    options.faults = &injector;
    options.chunk_size = 1;  // Per-instance chunks: more crash opportunities.
    dist::Coordinator coordinator(options);
    if (Status status = coordinator.Start(); !status.ok()) {
      std::fprintf(stderr, "faulted start: %s\n", status.ToString().c_str());
      return 1;
    }
    dist::DistBatchStats stats;
    auto outcomes = coordinator.ExecuteBatch(
        batch, systems::OutputMode::kWrite, "", &stats);
    faulted.profile = fault_profile;
    faulted.workers = 3;
    faulted.workers_lost = stats.workers_lost;
    faulted.chunks_redispatched = stats.chunks_redispatched;
    faulted.rpc_retries = stats.rpc_retries;
    if (outcomes.ok()) {
      faulted.completed = true;
      faulted.byte_identical = true;
      for (size_t i = 0; i < outcomes->size(); ++i) {
        const dist::DistInstanceOutcome& outcome = (*outcomes)[i];
        video::container::Container container;
        if (outcome.state == dist::DistInstanceOutcome::kSucceeded) {
          container.video = outcome.output.video;
        }
        if (outcome.state != dist::DistInstanceOutcome::kSucceeded ||
            video::container::Mux(container) != direct_bytes[i]) {
          faulted.byte_identical = false;
        }
      }
    }
    std::printf("Faulted run (profile '%s', 3 workers): %s; lost %lld "
                "worker(s), re-dispatched %lld chunk(s), %lld rpc retries; "
                "results %s.\n\n",
                faulted.profile.c_str(),
                faulted.completed ? "completed" : "FAILED",
                static_cast<long long>(faulted.workers_lost),
                static_cast<long long>(faulted.chunks_redispatched),
                static_cast<long long>(faulted.rpc_retries),
                faulted.byte_identical ? "byte-identical" : "DIVERGED");
  }

  // --- JSON ---
  const char* env_out = std::getenv("VR_DISTRIBUTED_OUT");
  std::string out_path = env_out != nullptr && env_out[0] != '\0'
                             ? env_out
                             : "bench/BENCH_distributed.json";
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"instances\": " << batch.size() << ",\n  \"real\": [\n";
  for (size_t i = 0; i < real_points.size(); ++i) {
    const RealPoint& p = real_points[i];
    out << "    {\n"
        << "      \"workers\": " << p.workers << ",\n"
        << "      \"wall_seconds\": " << p.wall_seconds << ",\n"
        << "      \"worker_busy_seconds\": " << p.busy_seconds << ",\n"
        << "      \"makespan_seconds\": " << p.makespan_seconds << ",\n"
        << "      \"speedup\": " << p.speedup << ",\n"
        << "      \"byte_identical\": "
        << (p.byte_identical ? "true" : "false") << "\n    }"
        << (i + 1 < real_points.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"setup\": {\n"
      << "    \"workers\": " << setup_point.workers << ",\n"
      << "    \"stage_seconds\": " << setup_point.stage_seconds << ",\n"
      << "    \"regenerate_seconds\": " << setup_point.regenerate_seconds
      << ",\n"
      << "    \"staged_seconds\": " << setup_point.staged_seconds << ",\n"
      << "    \"reduction_factor\": " << setup_point.reduction_factor << ",\n"
      << "    \"byte_identical\": "
      << (setup_point.staged_byte_identical ? "true" : "false") << "\n  },\n"
      << "  \"warm_start\": {\n"
      << "    \"workers\": " << warm_point.workers << ",\n"
      << "    \"cold_seconds\": " << warm_point.cold_seconds << ",\n"
      << "    \"preseeded_seconds\": " << warm_point.preseeded_seconds << ",\n"
      << "    \"entries_shipped\": " << warm_point.entries_shipped << ",\n"
      << "    \"bytes_shipped\": " << warm_point.bytes_shipped << ",\n"
      << "    \"byte_identical\": "
      << (warm_point.byte_identical ? "true" : "false") << "\n  }";
  if (simulate) {
    out << ",\n  \"simulated\": [\n";
    for (size_t i = 0; i < sim_points.size(); ++i) {
      const SimPoint& p = sim_points[i];
      out << "    {\n"
          << "      \"nodes\": " << p.nodes << ",\n"
          << "      \"wall_seconds\": " << p.wall_seconds << ",\n"
          << "      \"makespan_seconds\": " << p.makespan_seconds << ",\n"
          << "      \"speedup\": " << p.speedup << "\n    }"
          << (i + 1 < sim_points.size() ? "," : "") << "\n";
    }
    out << "  ]";
  }
  if (ran_faults) {
    out << ",\n  \"faulted\": {\n"
        << "    \"profile\": \"" << faulted.profile << "\",\n"
        << "    \"workers\": " << faulted.workers << ",\n"
        << "    \"completed\": " << (faulted.completed ? "true" : "false")
        << ",\n"
        << "    \"byte_identical\": "
        << (faulted.byte_identical ? "true" : "false") << ",\n"
        << "    \"workers_lost\": " << faulted.workers_lost << ",\n"
        << "    \"chunks_redispatched\": " << faulted.chunks_redispatched
        << ",\n"
        << "    \"rpc_retries\": " << faulted.rpc_retries << "\n  }";
  }
  out << "\n}\n";
  std::printf("Wrote %s\n", out_path.c_str());

  bool ok = true;
  for (const RealPoint& point : real_points) ok = ok && point.byte_identical;
  ok = ok && setup_point.staged_byte_identical && warm_point.byte_identical;
  if (ran_faults) ok = ok && faulted.completed && faulted.byte_identical;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace visualroad::bench

int main(int argc, char** argv) {
  bool simulate = false;
  const char* fault_profile = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--simulate") == 0) {
      simulate = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      fault_profile =
          (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : "cluster";
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig9_distributed [--simulate] "
                   "[--faults [PROFILE]]\n");
      return 2;
    }
  }
  return visualroad::bench::Run(simulate, fault_profile);
}
