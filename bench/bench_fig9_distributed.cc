// Reproduces Figure 9: VCG generation time by node count in distributed
// mode (paper: EC2 p3.2xlarge nodes; L = 2, 1k, 60 min).
//
// Dataset generation needs no coordination between cameras, so the paper
// observes linear speedup with node count. Tiles are the unit of
// distribution here too. Because this bench host may have fewer physical
// cores than simulated nodes, two measurements are reported:
//   - "wall" — actual wall-clock of the thread-per-node run on this host;
//   - "cluster" — the simulated-cluster makespan: each tile's generation is
//     timed independently and tiles are assigned round-robin to N nodes, so
//     the makespan is the maximum per-node sum. This is what a real cluster
//     of N single-tile-at-a-time nodes would take, and is the curve to
//     compare against the paper's.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"

namespace visualroad::bench {
namespace {

int Run() {
  PrintBanner("Figure 9 - Generator time by node count",
              "Distributed VCG; expect ~linear decrease in simulated makespan.");

  int scale = EnvInt("VR_FIG9_L", QuickMode() ? 2 : 8);
  double duration = QuickMode() ? 0.5 : 1.0;

  sim::CityConfig config;
  config.scale_factor = scale;
  config.width = kBaseWidth;
  config.height = kBaseHeight;
  config.duration_seconds = duration;
  config.fps = kBaseFps;
  config.seed = 900;

  // Per-tile serial times, for the simulated-cluster makespan: tiles are
  // generated and timed one at a time (a single-tile city per index; tiles
  // are homogeneous in camera count, so these are representative of the
  // per-tile work a node would take).
  std::vector<double> tile_seconds(static_cast<size_t>(scale), 0.0);
  for (int t = 0; t < scale; ++t) {
    sim::CityConfig single = config;
    single.scale_factor = 1;
    single.seed = config.seed ^ (static_cast<uint64_t>(t) << 8);
    sim::GeneratorOptions options;
    options.codec.qp = 26;
    sim::VisualCityGenerator generator(options);
    Stopwatch stopwatch;
    auto dataset = generator.Generate(single);
    if (!dataset.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    tile_seconds[static_cast<size_t>(t)] = stopwatch.ElapsedSeconds();
  }

  driver::TextTable table;
  table.SetHeader({"Nodes", "Wall (this host)", "Cluster makespan", "Speedup"});
  double baseline = 0.0;
  for (int nodes : {1, 2, 4, 8}) {
    if (nodes > scale) break;
    // Wall-clock of the actual threaded distributed run.
    sim::GeneratorOptions options;
    options.codec.qp = 26;
    options.num_nodes = nodes;
    sim::VisualCityGenerator generator(options);
    auto dataset = generator.Generate(config);
    if (!dataset.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    double wall = generator.last_stats().total_seconds;

    // Simulated cluster makespan from the measured per-tile times.
    std::vector<double> node_load(static_cast<size_t>(nodes), 0.0);
    for (int t = 0; t < scale; ++t) {
      node_load[static_cast<size_t>(t % nodes)] +=
          tile_seconds[static_cast<size_t>(t)];
    }
    double makespan = *std::max_element(node_load.begin(), node_load.end());
    if (nodes == 1) baseline = makespan;

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  makespan > 0 ? baseline / makespan : 0.0);
    table.AddRow({std::to_string(nodes), driver::FormatSeconds(wall),
                  driver::FormatSeconds(makespan), speedup});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("The cluster-makespan column is the Figure 9 analogue: tiles are"
              " independent,\nso N nodes cut generation time ~Nx.\n");
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
