#ifndef VISUALROAD_BENCH_BENCH_COMMON_H_
#define VISUALROAD_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the experiment-reproduction binaries in bench/.
// Each binary reproduces one table or figure of the paper's evaluation
// (Section 6); the mapping is recorded in DESIGN.md and EXPERIMENTS.md.

#include <cstdlib>
#include <string>

#include "driver/datasets.h"
#include "driver/report.h"
#include "driver/vcd.h"

namespace visualroad::bench {

/// Scaled-down default benchmark geometry. The paper runs minutes of video
/// at up to 3840x2160 on a GPU-equipped testbed; these defaults keep the
/// full suite tractable on one CPU core while preserving every relative
/// shape (see EXPERIMENTS.md for the mapping).
inline constexpr int kBaseWidth = 240;   // "1k-proportional".
inline constexpr int kBaseHeight = 136;
inline constexpr double kBaseFps = 15.0;

/// True when the environment asks for a fast smoke pass (VR_QUICK=1).
bool QuickMode();

/// Reads a positive integer environment override, or `fallback`.
int EnvInt(const char* name, int fallback);

/// Engine options used across benches: memory limits proportional to the
/// scaled world so the paper's memory behaviours (Q4 failure, large-scale
/// thrashing) reproduce at bench sizes.
systems::EngineOptions BenchEngineOptions();

/// VCD options used across benches: write mode, validation on, Q4/Q5
/// exponents capped at 2 (see EXPERIMENTS.md), deterministic seed.
driver::VcdOptions BenchVcdOptions();

/// Builds a standard benchmark dataset (captions attached).
StatusOr<sim::Dataset> MakeBenchDataset(int scale_factor, int width, int height,
                                        double duration_seconds, uint64_t seed);

/// Prints a section banner matching the paper artefact being reproduced.
/// Also installs the at-exit observability dump: set VR_TRACE_PATH and/or
/// VR_METRICS in the environment to receive a Chrome trace / Prometheus
/// snapshot of the bench run (docs/OBSERVABILITY.md).
void PrintBanner(const std::string& title, const std::string& subtitle);

}  // namespace visualroad::bench

#endif  // VISUALROAD_BENCH_BENCH_COMMON_H_
