// Ablation bench: renderer and vision substrate costs (DESIGN.md E11).
//
// Quantifies the per-frame costs that drive the system results: scene
// rendering by resolution (the Figure 8 slope), CNN inference by input size
// (the engines' Q2(c) gap), panoramic stitching, plate search, and ground
// truth extraction.

#include <benchmark/benchmark.h>

#include "simulation/city.h"
#include "simulation/ground_truth.h"
#include "simulation/recorded_corpus.h"
#include "video/color.h"
#include "vision/alpr.h"
#include "vision/miniyolo.h"
#include "vision/stitcher.h"

namespace visualroad {
namespace {

sim::Tile& SharedTile() {
  static sim::Tile* tile = new sim::Tile(sim::TilePoolEntry(2), 777);
  return *tile;
}

sim::Camera MakeCamera(int width, int height) {
  const sim::Tile& tile = SharedTile();
  double line = tile.roads().road_lines()[0];
  return sim::Camera({width, height, 62.0},
                     {{line, 20.0, 14.0}, kPi / 2.0, -0.55});
}

void BM_RenderScene(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  int height = width * 9 / 16;
  sim::Camera camera = MakeCamera(width, height);
  int frame = 0;
  for (auto _ : state) {
    sim::Framebuffer fb = sim::RenderScene(SharedTile(), camera, frame++, 99);
    benchmark::DoNotOptimize(fb.color.data.data());
  }
  state.counters["pixels"] = static_cast<double>(width) * height;
}
BENCHMARK(BM_RenderScene)->Arg(240)->Arg(480)->Arg(960)
    ->Unit(benchmark::kMillisecond);

void BM_GroundTruthExtraction(benchmark::State& state) {
  sim::Camera camera = MakeCamera(240, 136);
  sim::Framebuffer fb = sim::RenderScene(SharedTile(), camera, 0, 99);
  for (auto _ : state) {
    sim::FrameGroundTruth truth = sim::ExtractGroundTruth(SharedTile(), camera, fb);
    benchmark::DoNotOptimize(truth);
  }
}
BENCHMARK(BM_GroundTruthExtraction)->Unit(benchmark::kMicrosecond);

video::Frame RenderedFrame() {
  sim::Camera camera = MakeCamera(240, 136);
  sim::Framebuffer fb = sim::RenderScene(SharedTile(), camera, 0, 99);
  return video::RgbToFrame(fb.color);
}

void BM_DetectorForward(benchmark::State& state) {
  vision::DetectorOptions options;
  options.input_size = static_cast<int>(state.range(0));
  vision::MiniYolo detector(options);
  video::Frame frame = RenderedFrame();
  for (auto _ : state) {
    vision::Tensor grid = detector.Forward(frame);
    benchmark::DoNotOptimize(grid.data().data());
  }
  state.counters["MACs"] = static_cast<double>(detector.MacsPerFrame());
}
BENCHMARK(BM_DetectorForward)->Arg(48)->Arg(96)->Arg(224)
    ->Unit(benchmark::kMillisecond);

void BM_PlateSearch(benchmark::State& state) {
  video::Frame frame = RenderedFrame();
  vision::PlateRecognizer recognizer;
  RectI region{40, 40, 160, 110};
  for (auto _ : state) {
    vision::PlateSearchResult result =
        recognizer.FindPlate(frame, region, "AB12CD");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PlateSearch)->Unit(benchmark::kMicrosecond);

void BM_StitchFrame(benchmark::State& state) {
  sim::PanoramicRig rig;
  rig.position = {100, 100, 7};
  rig.face_intrinsics = {240, 136, 120.0};
  auto cameras = rig.Faces();
  std::array<video::Frame, 4> faces;
  for (int f = 0; f < 4; ++f) {
    sim::Framebuffer fb =
        sim::RenderScene(SharedTile(), cameras[static_cast<size_t>(f)], 0, 99);
    faces[static_cast<size_t>(f)] = video::RgbToFrame(fb.color);
  }
  for (auto _ : state) {
    auto pano = vision::StitchEquirect(
        {&faces[0], &faces[1], &faces[2], &faces[3]}, cameras, 480, 240, 0.0);
    if (!pano.ok()) state.SkipWithError("stitch failed");
    benchmark::DoNotOptimize(pano);
  }
}
BENCHMARK(BM_StitchFrame)->Unit(benchmark::kMillisecond);

void BM_TileStep(benchmark::State& state) {
  for (auto _ : state) {
    SharedTile().Step(1.0 / 15.0);
  }
}
BENCHMARK(BM_TileStep)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace visualroad

BENCHMARK_MAIN();
