// Ablation bench: renderer and vision substrate costs (DESIGN.md E11).
//
// Quantifies the per-frame costs that drive the system results: scene
// rendering by resolution (the Figure 8 slope), CNN inference by input size
// (the engines' Q2(c) gap), panoramic stitching, plate search, and ground
// truth extraction.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cpu.h"
#include "common/stopwatch.h"
#include "driver/report.h"
#include "simulation/city.h"
#include "simulation/ground_truth.h"
#include "simulation/recorded_corpus.h"
#include "video/color.h"
#include "video/kernels/kernels.h"
#include "vision/alpr.h"
#include "vision/miniyolo.h"
#include "vision/stitcher.h"

namespace visualroad {
namespace {

sim::Tile& SharedTile() {
  static sim::Tile* tile = new sim::Tile(sim::TilePoolEntry(2), 777);
  return *tile;
}

sim::Camera MakeCamera(int width, int height) {
  const sim::Tile& tile = SharedTile();
  double line = tile.roads().road_lines()[0];
  return sim::Camera({width, height, 62.0},
                     {{line, 20.0, 14.0}, kPi / 2.0, -0.55});
}

void BM_RenderScene(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  int height = width * 9 / 16;
  sim::Camera camera = MakeCamera(width, height);
  int frame = 0;
  for (auto _ : state) {
    sim::Framebuffer fb = sim::RenderScene(SharedTile(), camera, frame++, 99);
    benchmark::DoNotOptimize(fb.color.data.data());
  }
  state.counters["pixels"] = static_cast<double>(width) * height;
}
BENCHMARK(BM_RenderScene)->Arg(240)->Arg(480)->Arg(960)
    ->Unit(benchmark::kMillisecond);

void BM_GroundTruthExtraction(benchmark::State& state) {
  sim::Camera camera = MakeCamera(240, 136);
  sim::Framebuffer fb = sim::RenderScene(SharedTile(), camera, 0, 99);
  for (auto _ : state) {
    sim::FrameGroundTruth truth = sim::ExtractGroundTruth(SharedTile(), camera, fb);
    benchmark::DoNotOptimize(truth);
  }
}
BENCHMARK(BM_GroundTruthExtraction)->Unit(benchmark::kMicrosecond);

video::Frame RenderedFrame() {
  sim::Camera camera = MakeCamera(240, 136);
  sim::Framebuffer fb = sim::RenderScene(SharedTile(), camera, 0, 99);
  return video::RgbToFrame(fb.color);
}

void BM_DetectorForward(benchmark::State& state) {
  vision::DetectorOptions options;
  options.input_size = static_cast<int>(state.range(0));
  vision::MiniYolo detector(options);
  video::Frame frame = RenderedFrame();
  for (auto _ : state) {
    vision::Tensor grid = detector.Forward(frame);
    benchmark::DoNotOptimize(grid.data().data());
  }
  state.counters["MACs"] = static_cast<double>(detector.MacsPerFrame());
}
BENCHMARK(BM_DetectorForward)->Arg(48)->Arg(96)->Arg(224)
    ->Unit(benchmark::kMillisecond);

void BM_PlateSearch(benchmark::State& state) {
  video::Frame frame = RenderedFrame();
  vision::PlateRecognizer recognizer;
  RectI region{40, 40, 160, 110};
  for (auto _ : state) {
    vision::PlateSearchResult result =
        recognizer.FindPlate(frame, region, "AB12CD");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PlateSearch)->Unit(benchmark::kMicrosecond);

void BM_StitchFrame(benchmark::State& state) {
  sim::PanoramicRig rig;
  rig.position = {100, 100, 7};
  rig.face_intrinsics = {240, 136, 120.0};
  auto cameras = rig.Faces();
  std::array<video::Frame, 4> faces;
  for (int f = 0; f < 4; ++f) {
    sim::Framebuffer fb =
        sim::RenderScene(SharedTile(), cameras[static_cast<size_t>(f)], 0, 99);
    faces[static_cast<size_t>(f)] = video::RgbToFrame(fb.color);
  }
  for (auto _ : state) {
    auto pano = vision::StitchEquirect(
        {&faces[0], &faces[1], &faces[2], &faces[3]}, cameras, 480, 240, 0.0);
    if (!pano.ok()) state.SkipWithError("stitch failed");
    benchmark::DoNotOptimize(pano);
  }
}
BENCHMARK(BM_StitchFrame)->Unit(benchmark::kMillisecond);

void BM_TileStep(benchmark::State& state) {
  for (auto _ : state) {
    SharedTile().Step(1.0 / 15.0);
  }
}
BENCHMARK(BM_TileStep)->Unit(benchmark::kMicrosecond);

// --- SIMD dispatch-level speedup ---
// RenderScene at each kernel dispatch level, repinned via SetSimdLevelForTest:
// the rasterizer's span kernel is the render hot path. The output column
// verifies the framebuffer (color, depth, and entity ids) is byte-identical
// to the scalar kernels at every level.
int RunSimdRenderSection() {
  constexpr int kReps = 3;
  SimdLevel detected = DetectedSimdLevel();
  std::printf(
      "Render by SIMD dispatch level (detected: %s, 480x270; warm-run median "
      "of %d)\n",
      SimdLevelName(detected), kReps);
  sim::Camera camera = MakeCamera(480, 270);

  driver::TextTable table;
  table.SetHeader({"Level", "Render", "Speedup", "Output"});
  double baseline_seconds = 0.0;
  sim::Framebuffer baseline(0, 0);
  for (int l = 0; l <= static_cast<int>(detected); ++l) {
    SimdLevel level = static_cast<SimdLevel>(l);
    video::kernels::SetSimdLevelForTest(level);
    sim::Framebuffer fb = sim::RenderScene(SharedTile(), camera, 0, 99);
    std::vector<double> reps;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      fb = sim::RenderScene(SharedTile(), camera, 0, 99);
      reps.push_back(watch.ElapsedSeconds());
      benchmark::DoNotOptimize(fb.color.data.data());
    }
    std::sort(reps.begin(), reps.end());
    double seconds = reps[reps.size() / 2];

    std::string output = "baseline";
    if (l == 0) {
      baseline_seconds = seconds;
      baseline = std::move(fb);
    } else {
      bool identical = fb.color.data == baseline.color.data &&
                       fb.depth == baseline.depth && fb.ids == baseline.ids;
      output = identical ? "identical" : "DIVERGED";
    }
    table.AddRow({SimdLevelName(level), driver::FormatSeconds(seconds),
                  driver::FormatRatio(seconds > 0 ? baseline_seconds / seconds
                                                  : 0.0),
                  output});
  }
  video::kernels::SetSimdLevelForTest(RequestedSimdLevel());
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace visualroad

int main(int argc, char** argv) {
  if (int rc = visualroad::RunSimdRenderSection(); rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
