// Ablation bench: the semantic result store and the measured-selectivity
// planner (DESIGN.md Section 14).
//
// Part 1 runs the same Q2(c) instance three ways on the pipeline engine —
// semantic cache off, cache on but cold, cache on and warm — and records
// latency, decoder work, and whether the three outputs are byte-identical
// (they must be: the warm path renders from the same unfiltered detections
// the cold path materialized). The warm run must report zero frames decoded.
//
// Part 2 runs a cascade Q2(c) batch twice. The first batch executes the
// static stage order while the selectivity tracker measures each stage; the
// second batch executes the measured plan, which drops prefilters whose
// observed selectivity cannot pay for itself (the detector is configured so
// cheap-model confidences are routinely ambiguous, making the cheap stage
// useless). The speedup between the two batches is the reorder win.
//
// Results are printed and written as JSON to bench/BENCH_semcache.json
// (override with VR_SEMCACHE_OUT).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "queries/semantic_cache.h"
#include "video/codec/gop_cache.h"

namespace visualroad::bench {
namespace {

bool SameDetections(const std::vector<std::vector<vision::Detection>>& a,
                    const std::vector<std::vector<vision::Detection>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t f = 0; f < a.size(); ++f) {
    if (a[f].size() != b[f].size()) return false;
    for (size_t d = 0; d < a[f].size(); ++d) {
      const vision::Detection& x = a[f][d];
      const vision::Detection& y = b[f][d];
      if (x.object_class != y.object_class || x.score != y.score ||
          x.entity_id != y.entity_id || x.box.x0 != y.box.x0 ||
          x.box.y0 != y.box.y0 || x.box.x1 != y.box.x1 || x.box.y1 != y.box.y1) {
        return false;
      }
    }
  }
  return true;
}

bool SameBitstream(const video::codec::EncodedVideo& a,
                   const video::codec::EncodedVideo& b) {
  if (a.FrameCount() != b.FrameCount() || a.width != b.width ||
      a.height != b.height) {
    return false;
  }
  for (int f = 0; f < a.FrameCount(); ++f) {
    if (a.frames[static_cast<size_t>(f)].data !=
        b.frames[static_cast<size_t>(f)].data) {
      return false;
    }
  }
  return true;
}

struct TimedRun {
  double seconds = 0.0;
  systems::EngineStats stats;
  systems::QueryOutput output;
};

StatusOr<TimedRun> RunOnce(systems::Vdbms& engine, const sim::Dataset& dataset,
                           const queries::QueryInstance& instance) {
  TimedRun run;
  Stopwatch watch;
  VR_ASSIGN_OR_RETURN(run.output,
                      engine.Execute(instance, dataset, systems::OutputMode::kWrite,
                                     /*output_dir=*/"", &run.stats));
  run.seconds = watch.ElapsedSeconds();
  return run;
}

int Run() {
  PrintBanner("Semantic cache + planner ablation",
              "Cold/warm Q2(c) through the semantic result store, and the "
              "measured-selectivity cascade reorder win.");

  double duration = QuickMode() ? 0.5 : 1.0;
  auto dataset = MakeBenchDataset(1, kBaseWidth, kBaseHeight, duration, 2400);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  queries::QueryInstance q2c;
  q2c.id = queries::QueryId::kQ2c;
  q2c.video_index = 0;
  q2c.object_class = sim::ObjectClass::kVehicle;

  // --- Part 1: cache off vs cold vs warm on the pipeline engine. Each
  // engine gets a private GOP cache so decode work is attributable, and the
  // cached engine gets a private semantic cache starting empty.
  video::codec::GopCache baseline_gops, cached_gops;
  queries::SemanticCache semcache;

  systems::EngineOptions off_options = BenchEngineOptions();
  off_options.gop_cache = &baseline_gops;
  auto engine_off = systems::MakePipelineEngine(off_options);

  systems::EngineOptions on_options = BenchEngineOptions();
  on_options.gop_cache = &cached_gops;
  on_options.semantic_cache = &semcache;
  auto engine_on = systems::MakePipelineEngine(on_options);

  auto off = RunOnce(*engine_off, *dataset, q2c);
  auto cold = RunOnce(*engine_on, *dataset, q2c);
  cached_gops.Clear();  // The warm run must not lean on decoded GOPs either.
  auto warm = RunOnce(*engine_on, *dataset, q2c);
  if (!off.ok() || !cold.ok() || !warm.ok()) {
    std::fprintf(stderr, "Q2(c) execution failed\n");
    return 1;
  }

  bool identical = SameDetections(off->output.detections, warm->output.detections) &&
                   SameDetections(cold->output.detections, warm->output.detections) &&
                   SameBitstream(off->output.video, warm->output.video) &&
                   SameBitstream(cold->output.video, warm->output.video);
  double warm_speedup = warm->seconds > 0 ? off->seconds / warm->seconds : 0.0;

  std::printf("Q2(c), %d frames (pipeline engine):\n",
              dataset->assets[0].container.video.FrameCount());
  std::printf("  cache off   %8.2f ms  (%lld frames decoded)\n",
              off->seconds * 1e3,
              static_cast<long long>(off->stats.frames_decoded));
  std::printf("  cache cold  %8.2f ms  (%lld frames decoded)\n",
              cold->seconds * 1e3,
              static_cast<long long>(cold->stats.frames_decoded));
  std::printf("  cache warm  %8.2f ms  (%lld frames decoded)  %.1fx\n",
              warm->seconds * 1e3,
              static_cast<long long>(warm->stats.frames_decoded), warm_speedup);
  std::printf("  outputs byte-identical: %s\n", identical ? "yes" : "NO");
  if (warm->stats.frames_decoded != 0) {
    std::printf("  WARNING: warm run decoded frames; the cache is not "
                "short-circuiting decode\n");
  }

  // --- Part 2: measured-selectivity reordering on the cascade engine. The
  // detector is configured with a heavy false-positive load whose scores
  // fall in the cascade's ambiguous band, so the cheap model resolves almost
  // nothing and nearly every frame escalates. Batch 1 measures that; batch 2
  // executes the resulting plan (useless prefilters dropped). No semantic
  // cache here: the second batch must re-run inference to show the win.
  video::codec::GopCache cascade_gops;
  systems::EngineOptions cascade_options = BenchEngineOptions();
  cascade_options.gop_cache = &cascade_gops;
  cascade_options.detector.false_positives_per_frame = 8.0;
  auto cascade = systems::MakeCascadeEngine(cascade_options);

  driver::VcdOptions vcd_options = BenchVcdOptions();
  vcd_options.validate = false;
  vcd_options.output_mode = systems::OutputMode::kStreaming;
  vcd_options.explain = true;
  driver::VisualCityDriver vcd(*dataset, vcd_options);

  auto static_batch = vcd.RunQueryBatch(*cascade, queries::QueryId::kQ2c);
  if (!static_batch.ok()) {
    std::fprintf(stderr, "cascade batch failed: %s\n",
                 static_batch.status().ToString().c_str());
    return 1;
  }
  cascade_gops.Clear();
  auto planned_batch = vcd.RunQueryBatch(*cascade, queries::QueryId::kQ2c);
  if (!planned_batch.ok()) {
    std::fprintf(stderr, "cascade batch failed: %s\n",
                 planned_batch.status().ToString().c_str());
    return 1;
  }
  double reorder_speedup = planned_batch->total_seconds > 0
                               ? static_batch->total_seconds /
                                     planned_batch->total_seconds
                               : 0.0;

  std::printf("\nCascade Q2(c) batch of %d (measured-selectivity planning):\n",
              static_batch->instances);
  std::printf("  static order  %8.2f ms  (cheap=%lld full=%lld skipped=%lld)\n",
              static_batch->total_seconds * 1e3,
              static_cast<long long>(static_batch->engine_stats.cnn_frames_cheap),
              static_cast<long long>(static_batch->engine_stats.cnn_frames_full),
              static_cast<long long>(static_batch->engine_stats.cnn_frames_skipped));
  std::printf("  measured plan %8.2f ms  (cheap=%lld full=%lld skipped=%lld)  %.2fx\n",
              planned_batch->total_seconds * 1e3,
              static_cast<long long>(planned_batch->engine_stats.cnn_frames_cheap),
              static_cast<long long>(planned_batch->engine_stats.cnn_frames_full),
              static_cast<long long>(planned_batch->engine_stats.cnn_frames_skipped),
              reorder_speedup);
  std::printf("  plan: %s\n", planned_batch->plan_explain.c_str());

  const char* env_out = std::getenv("VR_SEMCACHE_OUT");
  std::string out_path = env_out != nullptr && env_out[0] != '\0'
                             ? env_out
                             : "bench/BENCH_semcache.json";
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  queries::SemanticCacheStats cache_stats = semcache.stats();
  out << "{\n"
      << "  \"q2c\": {\n"
      << "    \"frames\": " << dataset->assets[0].container.video.FrameCount()
      << ",\n"
      << "    \"off_seconds\": " << off->seconds << ",\n"
      << "    \"cold_seconds\": " << cold->seconds << ",\n"
      << "    \"warm_seconds\": " << warm->seconds << ",\n"
      << "    \"warm_speedup\": " << warm_speedup << ",\n"
      << "    \"off_frames_decoded\": " << off->stats.frames_decoded << ",\n"
      << "    \"cold_frames_decoded\": " << cold->stats.frames_decoded << ",\n"
      << "    \"warm_frames_decoded\": " << warm->stats.frames_decoded << ",\n"
      << "    \"cache_hits\": " << cache_stats.hits << ",\n"
      << "    \"cache_misses\": " << cache_stats.misses << ",\n"
      << "    \"byte_identical\": " << (identical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"selectivity_reorder\": {\n"
      << "    \"instances\": " << static_batch->instances << ",\n"
      << "    \"static_seconds\": " << static_batch->total_seconds << ",\n"
      << "    \"planned_seconds\": " << planned_batch->total_seconds << ",\n"
      << "    \"speedup\": " << reorder_speedup << ",\n"
      << "    \"static_cnn_frames_cheap\": "
      << static_batch->engine_stats.cnn_frames_cheap << ",\n"
      << "    \"planned_cnn_frames_cheap\": "
      << planned_batch->engine_stats.cnn_frames_cheap << ",\n"
      << "    \"static_cnn_frames_full\": "
      << static_batch->engine_stats.cnn_frames_full << ",\n"
      << "    \"planned_cnn_frames_full\": "
      << planned_batch->engine_stats.cnn_frames_full << ",\n"
      << "    \"planned_explain\": \"" << planned_batch->plan_explain << "\"\n"
      << "  }\n}\n";
  std::printf("Wrote %s\n", out_path.c_str());
  return identical && warm->stats.frames_decoded == 0 ? 0 : 1;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
