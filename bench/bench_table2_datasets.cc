// Reproduces Table 2: the six pregenerated dataset configurations.
//
// The paper publishes 1k/2k/4k x short/long datasets; this bench generates
// each configuration (proportionally scaled, see driver/datasets.h) with the
// VCG and reports the generation statistics, demonstrating that every named
// configuration is reproducible from its hyperparameters alone.

#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"

namespace visualroad::bench {
namespace {

int Run() {
  PrintBanner("Table 2 - Pregenerated datasets",
              "Generating each named configuration from {L, R, t, s}.");

  // Bench-time caps so the suite stays tractable on one core; lift with
  // VR_TABLE2_MAX_SECONDS / VR_TABLE2_MAX_WIDTH.
  double max_seconds = EnvInt("VR_TABLE2_MAX_SECONDS", QuickMode() ? 1 : 3);
  int max_width = EnvInt("VR_TABLE2_MAX_WIDTH", QuickMode() ? 240 : 480);

  driver::TextTable table;
  table.SetHeader({"Name", "L", "Resolution", "Duration", "Videos", "MB",
                   "Gen time", "Kbps/video"});

  for (const driver::NamedDataset& named : driver::PregeneratedConfigs()) {
    sim::CityConfig config = named.config;
    bool capped = false;
    if (config.duration_seconds > max_seconds) {
      config.duration_seconds = max_seconds;
      capped = true;
    }
    while (config.width > max_width) {
      config.width /= 2;
      config.height /= 2;
      capped = true;
    }

    sim::GeneratorOptions options;
    options.codec.qp = 26;
    sim::VisualCityGenerator generator(options);
    auto dataset = generator.Generate(config);
    if (!dataset.ok()) {
      std::fprintf(stderr, "generation failed for %s: %s\n", named.name.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    const sim::GeneratorStats& stats = generator.last_stats();

    char resolution[32], duration[32], megabytes[32], kbps[32];
    std::snprintf(resolution, sizeof(resolution), "%dx%d%s", config.width,
                  config.height, capped ? "*" : "");
    std::snprintf(duration, sizeof(duration), "%.0fs%s", config.duration_seconds,
                  capped ? "*" : "");
    std::snprintf(megabytes, sizeof(megabytes), "%.2f",
                  static_cast<double>(stats.bytes_encoded) / (1 << 20));
    double seconds_of_video =
        config.duration_seconds * static_cast<double>(dataset->assets.size());
    std::snprintf(kbps, sizeof(kbps), "%.0f",
                  stats.bytes_encoded * 8.0 / 1000.0 / seconds_of_video);
    table.AddRow({named.name, std::to_string(config.scale_factor), resolution,
                  duration, std::to_string(dataset->assets.size()), megabytes,
                  driver::FormatSeconds(stats.total_seconds), kbps});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("* = capped for bench time; lift with VR_TABLE2_MAX_SECONDS /"
              " VR_TABLE2_MAX_WIDTH.\n");
  return 0;
}

}  // namespace
}  // namespace visualroad::bench

int main() { return visualroad::bench::Run(); }
