// The `vcd` command-line driver: generates a Visual City dataset, runs the
// benchmark query suite on one engine, and prints the standard report. The
// observability flags make it the quickest way to inspect a run:
//
//   vcd --scale 1 --duration 1 --queries Q1-Q4 --trace out.json --metrics -
//
// writes a chrome://tracing file covering the whole run and dumps every
// registered Prometheus metric to stdout (see docs/OBSERVABILITY.md).

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "driver/datasets.h"
#include "driver/report.h"
#include "driver/vcd.h"
#include "storage/vss.h"

namespace visualroad::driver {
namespace {

void PrintUsage(const char* argv0) {
  std::printf(
      "Usage: %s [options]\n"
      "\n"
      "Dataset:\n"
      "  --scale N         City scale factor L (default 1)\n"
      "  --duration SECS   Video duration per camera (default 1.0)\n"
      "  --width N         Camera width (default 240)\n"
      "  --height N        Camera height (default 136)\n"
      "  --seed N          Dataset + sampler seed (default 0x5EED)\n"
      "\n"
      "Execution:\n"
      "  --engine NAME     batch | pipeline | cascade (default pipeline)\n"
      "  --queries LIST    Comma list and/or ranges over submission order,\n"
      "                    e.g. Q1,Q3 or Q1-Q4 or Q2c (default: all)\n"
      "  --batch-size N    Override the 4L batch-size rule\n"
      "  --parallel N      Driver threads for concurrent instances\n"
      "  --workers N       Distributed scale-out (DESIGN.md Section 15):\n"
      "                    shard each batch across N worker processes over\n"
      "                    local-socket RPC. Offline only; results are\n"
      "                    byte-identical to N=0. With --storage, workers\n"
      "                    stage their dataset from the shared store instead\n"
      "                    of regenerating it; with --semcache, cached\n"
      "                    entries pre-seed the workers before each batch\n"
      "  --no-validate     Skip reference validation\n"
      "  --streaming       Discard results instead of writing containers\n"
      "  --output-dir DIR  Persist write-mode results under DIR\n"
      "  --storage DIR     Stage inputs into a tiered storage service rooted\n"
      "                    at DIR and read them back through it (DESIGN.md\n"
      "                    Section 10) instead of from memory\n"
      "  --semcache        Materialize inference results in the semantic\n"
      "                    result store (DESIGN.md Section 14): repeated\n"
      "                    detection queries are answered from cache instead\n"
      "                    of re-running decode+CNN. With --storage, cached\n"
      "                    entries persist through the store across runs\n"
      "  --explain         Print each batch's execution plan before running\n"
      "                    it: pushdown window, semantic-cache temperature,\n"
      "                    and measured-selectivity stage order\n"
      "  --faults NAME     Deterministic fault injection profile (none |\n"
      "                    flaky | lossy | degraded | cluster; DESIGN.md\n"
      "                    Section 11). Implies online execution at an\n"
      "                    accelerated rate and storage-backed reads (a temp\n"
      "                    store is created when --storage is not given);\n"
      "                    the report gains a Faults column with retries and\n"
      "                    degraded frames. With --workers N the run stays\n"
      "                    offline and the injector drives the rpc_send and\n"
      "                    worker_crash sites instead (profile: cluster)\n"
      "\n"
      "Serving (DESIGN.md Section 12):\n"
      "  --serve           Serving mode: replay an open-loop multi-tenant\n"
      "                    schedule through the async query server instead\n"
      "                    of running the batch benchmark\n"
      "  --tenants N       Tenants submitting traffic (default 4)\n"
      "  --rate R          Per-tenant offered batches/second (default 2)\n"
      "  --serve-seconds S Schedule length in offered seconds (default 5)\n"
      "  --serve-workers N Server executor threads (default 4)\n"
      "\n"
      "Observability (docs/OBSERVABILITY.md):\n"
      "  --trace PATH      Record spans; write Chrome trace JSON to PATH\n"
      "  --metrics PATH    Dump the Prometheus metrics registry to PATH\n"
      "                    after the run ('-' for stdout)\n",
      argv0);
}

/// Canonicalises a query token for matching: lowercase, parens stripped, so
/// "Q2(c)", "q2c", and "Q2C" all compare equal.
std::string CanonicalQueryToken(const std::string& token) {
  std::string out;
  for (char c : token) {
    if (c == '(' || c == ')' || c == ' ') continue;
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool LookupQuery(const std::string& token, queries::QueryId& id) {
  std::string canonical = CanonicalQueryToken(token);
  for (queries::QueryId candidate : queries::AllQueries()) {
    if (CanonicalQueryToken(queries::QueryName(candidate)) == canonical) {
      id = candidate;
      return true;
    }
  }
  return false;
}

/// Parses "Q1,Q3-Q5,Q6b" into query ids; ranges follow submission order.
bool ParseQueryList(const std::string& spec, std::vector<queries::QueryId>& out) {
  const auto& all = queries::AllQueries();
  auto index_of = [&](queries::QueryId id) {
    for (size_t i = 0; i < all.size(); ++i) {
      if (all[i] == id) return static_cast<int>(i);
    }
    return -1;
  };
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    size_t dash = item.find('-');
    if (dash != std::string::npos) {
      queries::QueryId first, last;
      if (!LookupQuery(item.substr(0, dash), first) ||
          !LookupQuery(item.substr(dash + 1), last)) {
        return false;
      }
      int lo = index_of(first), hi = index_of(last);
      if (lo < 0 || hi < lo) return false;
      for (int i = lo; i <= hi; ++i) out.push_back(all[i]);
    } else {
      queries::QueryId id;
      if (!LookupQuery(item, id)) return false;
      out.push_back(id);
    }
  }
  return !out.empty();
}

Status DumpMetrics(const std::string& path) {
  std::string text = metrics::MetricsRegistry::Global().PrometheusText();
  if (path == "-") {
    std::printf("%s", text.c_str());
    return Status::Ok();
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open metrics path: " + path);
  out << text;
  if (!out.flush()) return Status::IoError("cannot write metrics: " + path);
  return Status::Ok();
}

int Run(int argc, char** argv) {
  sim::CityConfig config;
  config.width = 240;
  config.height = 136;
  config.duration_seconds = 1.0;
  config.fps = 15.0;
  config.seed = 0x5EED;

  VcdOptions vcd_options;
  vcd_options.seed = config.seed;
  std::string engine_name = "pipeline";
  std::string query_spec;
  std::string metrics_path;
  std::string storage_dir;
  std::string faults_name;
  bool semcache = false;
  bool explain = false;
  bool serve = false;
  ServingRunOptions serving;
  serving.traffic.tenants = 4;
  serving.traffic.arrivals_per_second = 2.0;
  serving.traffic.duration_seconds = 5.0;

  auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--scale") {
      if (!(value = next_value(i, "--scale"))) return 2;
      config.scale_factor = std::atoi(value);
    } else if (arg == "--duration") {
      if (!(value = next_value(i, "--duration"))) return 2;
      config.duration_seconds = std::atof(value);
    } else if (arg == "--width") {
      if (!(value = next_value(i, "--width"))) return 2;
      config.width = std::atoi(value);
    } else if (arg == "--height") {
      if (!(value = next_value(i, "--height"))) return 2;
      config.height = std::atoi(value);
    } else if (arg == "--seed") {
      if (!(value = next_value(i, "--seed"))) return 2;
      config.seed = std::strtoull(value, nullptr, 0);
      vcd_options.seed = config.seed;
    } else if (arg == "--engine") {
      if (!(value = next_value(i, "--engine"))) return 2;
      engine_name = value;
    } else if (arg == "--queries") {
      if (!(value = next_value(i, "--queries"))) return 2;
      query_spec = value;
    } else if (arg == "--batch-size") {
      if (!(value = next_value(i, "--batch-size"))) return 2;
      vcd_options.batch_size_override = std::atoi(value);
    } else if (arg == "--parallel") {
      if (!(value = next_value(i, "--parallel"))) return 2;
      vcd_options.parallel_instances = std::atoi(value);
    } else if (arg == "--workers") {
      if (!(value = next_value(i, "--workers"))) return 2;
      vcd_options.workers = std::atoi(value);
    } else if (arg == "--no-validate") {
      vcd_options.validate = false;
    } else if (arg == "--streaming") {
      vcd_options.output_mode = systems::OutputMode::kStreaming;
    } else if (arg == "--output-dir") {
      if (!(value = next_value(i, "--output-dir"))) return 2;
      vcd_options.output_dir = value;
    } else if (arg == "--storage") {
      if (!(value = next_value(i, "--storage"))) return 2;
      storage_dir = value;
    } else if (arg == "--faults") {
      if (!(value = next_value(i, "--faults"))) return 2;
      faults_name = value;
    } else if (arg == "--semcache") {
      semcache = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--tenants") {
      if (!(value = next_value(i, "--tenants"))) return 2;
      serving.traffic.tenants = std::atoi(value);
    } else if (arg == "--rate") {
      if (!(value = next_value(i, "--rate"))) return 2;
      serving.traffic.arrivals_per_second = std::atof(value);
    } else if (arg == "--serve-seconds") {
      if (!(value = next_value(i, "--serve-seconds"))) return 2;
      serving.traffic.duration_seconds = std::atof(value);
    } else if (arg == "--serve-workers") {
      if (!(value = next_value(i, "--serve-workers"))) return 2;
      serving.server.worker_threads = std::atoi(value);
    } else if (arg == "--trace") {
      if (!(value = next_value(i, "--trace"))) return 2;
      vcd_options.trace = true;
      vcd_options.trace_path = value;
    } else if (arg == "--metrics") {
      if (!(value = next_value(i, "--metrics"))) return 2;
      metrics_path = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }

  std::vector<queries::QueryId> query_ids(queries::AllQueries().begin(),
                                          queries::AllQueries().end());
  if (!query_spec.empty()) {
    query_ids.clear();
    if (!ParseQueryList(query_spec, query_ids)) {
      std::fprintf(stderr, "cannot parse --queries '%s'\n", query_spec.c_str());
      return 2;
    }
  }

  // Fault injection: resolve the profile, then run online (the channel
  // faults act on the throttled feed) against storage-backed reads (the
  // store and VSS faults act on the read path). One injector seeded with
  // the run seed drives every site, so reruns reproduce the schedule.
  std::unique_ptr<fault::FaultInjector> faults;
  if (!faults_name.empty()) {
    auto profile = fault::ProfileByName(faults_name);
    if (!profile.ok()) {
      std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
      return 2;
    }
    faults = std::make_unique<fault::FaultInjector>(*profile, config.seed);
    vcd_options.faults = faults.get();
    if (vcd_options.workers > 0) {
      // Distributed runs stay offline: the injector's rpc_send and
      // worker_crash sites act on the coordinator's dispatch path, not the
      // ingest feed, and workers > 0 rejects online mode.
      std::printf("Fault profile '%s': driving the distributed dispatch "
                  "sites (%d workers)\n",
                  faults_name.c_str(), vcd_options.workers);
    } else {
      vcd_options.execution_mode = systems::ExecutionMode::kOnline;
      // Accelerate simulated real time so a faulted run stays test-sized;
      // the pacing semantics (and the fault schedule) are unchanged.
      vcd_options.online_rate_multiplier = 200.0;
      if (storage_dir.empty()) {
        storage_dir =
            (std::filesystem::temp_directory_path() /
             ("vcd-faults-" + std::to_string(config.seed)))
                .string();
        std::error_code ec;
        std::filesystem::remove_all(storage_dir, ec);
        std::printf("Fault profile '%s': using temporary storage at %s\n",
                    faults_name.c_str(), storage_dir.c_str());
      }
    }
  }

  std::unique_ptr<storage::ShardedStore> store;
  std::unique_ptr<storage::VideoStorageService> vss;
  if (!storage_dir.empty()) {
    storage::StoreOptions store_options;
    store_options.root = storage_dir;
    store_options.faults = faults.get();
    if (faults != nullptr) {
      // Single replica: an injected flap cannot fail over, it has to retry,
      // which is the behavior a fault run exists to demonstrate. The larger
      // attempt budget keeps the giveup odds negligible under `flaky`
      // (p=.35 per attempt), so every query still completes.
      store_options.replication = 1;
      store_options.read_retry.max_attempts = 10;
    }
    auto opened = storage::ShardedStore::Open(store_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open storage at %s: %s\n",
                   storage_dir.c_str(), opened.status().ToString().c_str());
      return 1;
    }
    store = std::make_unique<storage::ShardedStore>(std::move(opened).value());
    storage::VssOptions vss_options;
    vss_options.store = store.get();
    vss_options.faults = faults.get();
    if (faults != nullptr) {
      // Reads that stall in transcode past this budget degrade to the
      // nearest materialized variant instead of blocking the query.
      vss_options.transcode_deadline = std::chrono::milliseconds(2);
      // The resident cache would absorb every read after staging and the
      // store fault sites would never fire; a fault run is about the read
      // path, so force each read down to the sharded store.
      vss_options.resident_bytes = 0;
    }
    auto service = storage::VideoStorageService::Open(vss_options);
    if (!service.ok()) {
      std::fprintf(stderr, "cannot open storage service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    vss = std::move(service).value();
    vcd_options.storage = vss.get();
  }

  // Semantic result store: materialized inference outputs shared across
  // every query this process runs. With storage configured the store doubles
  // as the persistence substrate, so a later run starts warm.
  std::unique_ptr<queries::SemanticCache> semantic_cache;
  if (semcache) {
    queries::SemanticCacheOptions semcache_options;
    semcache_options.store = store.get();
    semantic_cache = std::make_unique<queries::SemanticCache>(semcache_options);
    if (store != nullptr) {
      Status loaded = semantic_cache->LoadPersisted();
      if (!loaded.ok()) {
        std::fprintf(stderr, "warning: semantic cache load failed: %s\n",
                     loaded.ToString().c_str());
      } else if (semantic_cache->stats().loaded > 0) {
        std::printf("Semantic cache: recovered %lld persisted entries\n",
                    static_cast<long long>(semantic_cache->stats().loaded));
      }
    }
  }
  vcd_options.semantic_cache = semantic_cache.get();
  vcd_options.explain = explain;

  systems::EngineOptions engine_options;
  engine_options.vss = vss.get();
  engine_options.semantic_cache = semantic_cache.get();
  std::unique_ptr<systems::Vdbms> engine;
  if (engine_name == "batch") {
    engine = systems::MakeBatchEngine(engine_options);
  } else if (engine_name == "pipeline") {
    engine = systems::MakePipelineEngine(engine_options);
  } else if (engine_name == "cascade") {
    engine = systems::MakeCascadeEngine(engine_options);
  } else {
    std::fprintf(stderr, "unknown engine '%s' (batch|pipeline|cascade)\n",
                 engine_name.c_str());
    return 2;
  }

  std::printf("Generating dataset: L=%d, %dx%d, %.2fs @ %.0f FPS, seed %llu\n",
              config.scale_factor, config.width, config.height,
              config.duration_seconds, config.fps,
              static_cast<unsigned long long>(config.seed));
  auto dataset = PrepareDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  VisualCityDriver vcd(*dataset, vcd_options);
  if (vss != nullptr) {
    std::printf("Staging %zu camera streams into %s...\n",
                dataset->assets.size(), storage_dir.c_str());
    Status staged = vcd.StageStorage();
    if (!staged.ok()) {
      std::fprintf(stderr, "storage staging failed: %s\n",
                   staged.ToString().c_str());
      return 1;
    }
  }
  if (serve) {
    serving.traffic.seed = config.seed;
    serving.replay.seed = config.seed;
    if (!query_spec.empty()) serving.replay.query_mix = query_ids;
    serving.server.output_mode = vcd_options.output_mode;
    serving.server.output_dir = vcd_options.output_dir;
    std::printf("Serving: %d tenants at %.1f batches/s each for %.1fs "
                "(%d workers, %s engine)...\n",
                serving.traffic.tenants, serving.traffic.arrivals_per_second,
                serving.traffic.duration_seconds, serving.server.worker_threads,
                engine_name.c_str());
    auto report = vcd.RunServing(*engine, serving);
    if (!report.ok()) {
      std::fprintf(stderr, "serving run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s\n", FormatServingReport(*report).c_str());
    if (!metrics_path.empty()) {
      Status status = DumpMetrics(metrics_path);
      if (!status.ok()) {
        std::fprintf(stderr, "metrics dump failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    return 0;
  }

  std::vector<QueryBatchResult> results;
  for (queries::QueryId id : query_ids) {
    std::printf("Running %s on %s engine (batch of %d)...\n",
                queries::QueryName(id), engine_name.c_str(), vcd.BatchSize());
    auto result = vcd.RunQueryBatch(*engine, id);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", queries::QueryName(id),
                   result.status().ToString().c_str());
      return 1;
    }
    if (!result->plan_explain.empty()) {
      std::printf("  plan: %s\n", result->plan_explain.c_str());
    }
    results.push_back(std::move(*result));
  }
  engine->Quiesce();
  if (semantic_cache != nullptr && store != nullptr) {
    Status persisted = semantic_cache->Persist();
    if (!persisted.ok()) {
      std::fprintf(stderr, "warning: semantic cache persist failed: %s\n",
                   persisted.ToString().c_str());
    } else {
      std::printf("Semantic cache: persisted %lld entries to %s\n",
                  static_cast<long long>(semantic_cache->stats().entries),
                  storage_dir.c_str());
    }
  }

  std::printf("\n%s\n", FormatBenchmarkReport(results).c_str());
  for (const QueryBatchResult& result : results) {
    std::string breakdown = FormatStageBreakdown(result);
    if (breakdown.empty()) continue;
    std::printf("Stage breakdown for %s:\n%s\n", queries::QueryName(result.id),
                breakdown.c_str());
  }

  if (!vcd_options.trace_path.empty()) {
    Status status = vcd.WriteTrace();
    if (!status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("Wrote Chrome trace to %s (open via chrome://tracing)\n",
                vcd_options.trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    Status status = DumpMetrics(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics dump failed: %s\n", status.ToString().c_str());
      return 1;
    }
    if (metrics_path != "-") {
      std::printf("Wrote Prometheus metrics to %s\n", metrics_path.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace visualroad::driver

int main(int argc, char** argv) { return visualroad::driver::Run(argc, argv); }
