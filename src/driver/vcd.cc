#include "driver/vcd.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "systems/video_source.h"
#include "video/metrics.h"

namespace visualroad::driver {

using queries::QueryId;
using queries::QueryInstance;

int VisualCityDriver::BatchSize() const {
  if (options_.batch_size_override > 0) return options_.batch_size_override;
  return 4 * dataset_->config.scale_factor;
}

StatusOr<std::vector<QueryInstance>> VisualCityDriver::SampleBatch(
    QueryId id) const {
  // The sampler substream depends only on (seed, query), so batches are
  // identical across engines and runs.
  Pcg32 rng = SubStream(options_.seed, "query-batch", static_cast<uint64_t>(id));
  std::vector<QueryInstance> batch;
  int size = BatchSize();
  batch.reserve(size);
  for (int i = 0; i < size; ++i) {
    VR_ASSIGN_OR_RETURN(QueryInstance instance,
                        queries::SampleQueryInstance(id, *dataset_, rng,
                                                     options_.sampler));
    batch.push_back(std::move(instance));
  }
  return batch;
}

int64_t VisualCityDriver::InputFrames(const QueryInstance& instance) const {
  switch (instance.id) {
    case QueryId::kQ8: {
      int64_t total = 0;
      for (const sim::VideoAsset* asset : dataset_->TrafficAssets()) {
        total += asset->container.video.FrameCount();
      }
      return total;
    }
    case QueryId::kQ9:
    case QueryId::kQ10: {
      std::vector<const sim::VideoAsset*> faces =
          dataset_->PanoramicGroup(instance.pano_group);
      int64_t total = 0;
      for (const sim::VideoAsset* face : faces) {
        if (face != nullptr) total += face->container.video.FrameCount();
      }
      return total;
    }
    default: {
      std::vector<const sim::VideoAsset*> traffic = dataset_->TrafficAssets();
      if (instance.video_index < 0 ||
          static_cast<size_t>(instance.video_index) >= traffic.size()) {
        return 0;
      }
      return traffic[static_cast<size_t>(instance.video_index)]
          ->container.video.FrameCount();
    }
  }
}

Status VisualCityDriver::Validate(const QueryInstance& instance,
                                  const systems::QueryOutput& output,
                                  ValidationStats& stats) const {
  queries::ValidationKind kind = queries::ValidationFor(instance.id);
  if (kind == queries::ValidationKind::kNone) return Status::Ok();

  if (kind == queries::ValidationKind::kSemantic) {
    if (instance.id == QueryId::kQ2d) {
      // Q2(d): per-pixel agreement of the static/dynamic classification
      // with the reference mask derived from the same input.
      if (output.video.FrameCount() == 0) return Status::Ok();
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          systems::detail::InputAsset(instance, *dataset_));
      VR_ASSIGN_OR_RETURN(video::Video input,
                          video::codec::Decode(asset->container.video));
      queries::ReferenceContext context;
      context.dataset = dataset_;
      context.detector_options = options_.detector;
      VR_ASSIGN_OR_RETURN(queries::ReferenceResult reference,
                          queries::RunReference(context, instance, input));
      VR_ASSIGN_OR_RETURN(ValidationStats mask_stats,
                          MaskValidate(output.video, reference.video));
      stats.Merge(mask_stats);
      return Status::Ok();
    }
    // Q2(c): each reported detection mapped back to scene geometry.
    if (output.detections.empty()) return Status::Ok();
    VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                        systems::detail::InputAsset(instance, *dataset_));
    VR_ASSIGN_OR_RETURN(
        ValidationStats semantic,
        SemanticValidate(output.detections, asset->ground_truth,
                         instance.object_class, /*epsilon=*/0.5));
    stats.Merge(semantic);
    return Status::Ok();
  }

  // Frame validation: run the reference implementation on the same decoded
  // input and compare PSNR per frame.
  queries::ReferenceContext context;
  context.dataset = dataset_;
  context.detector_options = options_.detector;

  video::Video input;
  if (instance.id != QueryId::kQ9 && instance.id != QueryId::kQ10) {
    VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                        systems::detail::InputAsset(instance, *dataset_));
    VR_ASSIGN_OR_RETURN(input, video::codec::Decode(asset->container.video));
  }
  VR_ASSIGN_OR_RETURN(queries::ReferenceResult reference,
                      queries::RunReference(context, instance, input));

  double threshold = instance.id == QueryId::kQ9 ? video::kStitchingPsnrDb
                                                 : video::kValidationPsnrDb;
  if (reference.video.frames.empty() && output.video.FrameCount() == 0) {
    return Status::Ok();
  }
  VR_ASSIGN_OR_RETURN(ValidationStats frame_stats,
                      FrameValidate(output.video, reference.video, threshold));
  stats.Merge(frame_stats);
  return Status::Ok();
}

StatusOr<QueryBatchResult> VisualCityDriver::RunQueryBatch(systems::Vdbms& engine,
                                                           QueryId id) {
  VR_ASSIGN_OR_RETURN(std::vector<QueryInstance> batch, SampleBatch(id));

  QueryBatchResult result;
  result.id = id;
  result.engine = engine.name();
  result.instances = static_cast<int>(batch.size());

  if (!engine.Supports(id)) {
    result.unsupported = result.instances;
    return result;
  }

  std::vector<systems::QueryOutput> outputs(batch.size());
  int64_t input_frames = 0;

  Stopwatch stopwatch;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (options_.execution_mode == systems::ExecutionMode::kOnline) {
      // Online processing (Section 3.2): data arrives through a throttled
      // forward-only feed at the camera's capture rate. The engine cannot
      // start ahead of the data, so the ingest gate is part of the measured
      // runtime.
      std::vector<const sim::VideoAsset*> traffic = dataset_->TrafficAssets();
      if (batch[i].video_index >= 0 &&
          static_cast<size_t>(batch[i].video_index) < traffic.size()) {
        systems::VideoSource source = systems::VideoSource::Online(
            &traffic[static_cast<size_t>(batch[i].video_index)]->container.video,
            options_.online_rate_multiplier);
        while (!source.AtEnd()) {
          if (!source.Next().ok()) break;
        }
      }
    }
    StatusOr<systems::QueryOutput> output =
        engine.Execute(batch[i], *dataset_, options_.output_mode,
                       options_.output_dir);
    if (output.ok()) {
      outputs[i] = std::move(output).value();
      ++result.succeeded;
      input_frames += InputFrames(batch[i]);
    } else if (output.status().code() == StatusCode::kUnimplemented) {
      ++result.unsupported;
    } else {
      ++result.failed;
      if (output.status().code() == StatusCode::kResourceExhausted) {
        ++result.resource_exhausted;
      }
      if (result.first_error.empty()) {
        result.first_error = output.status().ToString();
      }
    }
  }
  result.total_seconds = stopwatch.ElapsedSeconds();
  result.frames_per_second =
      result.total_seconds > 0
          ? static_cast<double>(input_frames) / result.total_seconds
          : 0.0;

  // Validation happens after the measured window (reference computation is
  // the VCD's cost, not the engine's).
  if (options_.validate && options_.output_mode == systems::OutputMode::kWrite) {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!outputs[i].produced && outputs[i].detections.empty()) continue;
      VR_RETURN_IF_ERROR(Validate(batch[i], outputs[i], result.validation));
    }
  }
  return result;
}

StatusOr<std::vector<QueryBatchResult>> VisualCityDriver::RunBenchmark(
    systems::Vdbms& engine) {
  std::vector<QueryBatchResult> results;
  for (QueryId id : queries::AllQueries()) {
    VR_ASSIGN_OR_RETURN(QueryBatchResult result, RunQueryBatch(engine, id));
    results.push_back(std::move(result));
    engine.Quiesce();  // Engines may quiesce between batches (Section 3.2).
  }
  return results;
}

}  // namespace visualroad::driver
