#include "driver/vcd.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "driver/dataset_io.h"
#include "systems/video_source.h"
#include "video/metrics.h"

namespace visualroad::driver {

using queries::QueryId;
using queries::QueryInstance;

namespace {

/// Registry instruments for driver-level progress, shared by every
/// VisualCityDriver instance in the process.
struct DriverMetrics {
  metrics::Counter& batches;
  metrics::Counter& instances_succeeded;
  metrics::Counter& instances_unsupported;
  metrics::Counter& instances_failed;
  metrics::Histogram& batch_seconds;
  metrics::Counter& validation_seconds;

  static DriverMetrics& Get() {
    static DriverMetrics* instruments = [] {
      metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
      return new DriverMetrics{
          registry.GetCounter("vr_driver_batches_total",
                              "Query batches the VCD measured"),
          registry.GetCounter("vr_driver_instances_succeeded_total",
                              "Query instances that produced a result"),
          registry.GetCounter(
              "vr_driver_instances_unsupported_total",
              "Query instances the engine declined as unsupported"),
          registry.GetCounter("vr_driver_instances_failed_total",
                              "Query instances that returned an error"),
          registry.GetHistogram("vr_driver_batch_seconds",
                                "Measured wall-clock duration per query batch",
                                {0.1, 0.5, 2.0, 10.0, 60.0, 300.0}),
          registry.GetCounter(
              "vr_driver_validation_seconds_total",
              "Wall-clock seconds spent validating results off the measured "
              "path"),
      };
    }();
    return *instruments;
  }
};

}  // namespace

int VisualCityDriver::BatchSize() const {
  if (options_.batch_size_override > 0) return options_.batch_size_override;
  return 4 * dataset_->config.scale_factor;
}

StatusOr<std::vector<QueryInstance>> VisualCityDriver::SampleBatch(
    QueryId id) const {
  // The sampler substream depends only on (seed, query), so batches are
  // identical across engines and runs.
  Pcg32 rng = SubStream(options_.seed, "query-batch", static_cast<uint64_t>(id));
  std::vector<QueryInstance> batch;
  int size = BatchSize();
  batch.reserve(size);
  for (int i = 0; i < size; ++i) {
    VR_ASSIGN_OR_RETURN(QueryInstance instance,
                        queries::SampleQueryInstance(id, *dataset_, rng,
                                                     options_.sampler));
    batch.push_back(std::move(instance));
  }
  return batch;
}

int64_t VisualCityDriver::InputFrames(const QueryInstance& instance) const {
  switch (instance.id) {
    case QueryId::kQ8: {
      int64_t total = 0;
      for (const sim::VideoAsset* asset : dataset_->TrafficAssets()) {
        total += asset->container.video.FrameCount();
      }
      return total;
    }
    case QueryId::kQ9:
    case QueryId::kQ10: {
      std::vector<const sim::VideoAsset*> faces =
          dataset_->PanoramicGroup(instance.pano_group);
      int64_t total = 0;
      for (const sim::VideoAsset* face : faces) {
        if (face != nullptr) total += face->container.video.FrameCount();
      }
      return total;
    }
    default: {
      std::vector<const sim::VideoAsset*> traffic = dataset_->TrafficAssets();
      if (instance.video_index < 0 ||
          static_cast<size_t>(instance.video_index) >= traffic.size()) {
        return 0;
      }
      return traffic[static_cast<size_t>(instance.video_index)]
          ->container.video.FrameCount();
    }
  }
}

Status VisualCityDriver::Validate(const QueryInstance& instance,
                                  const systems::QueryOutput& output,
                                  ValidationStats& stats) const {
  queries::ValidationKind kind = queries::ValidationFor(instance.id);
  if (kind == queries::ValidationKind::kNone) return Status::Ok();

  if (kind == queries::ValidationKind::kSemantic) {
    if (instance.id == QueryId::kQ2d) {
      // Q2(d): per-pixel agreement of the static/dynamic classification
      // with the reference mask derived from the same input.
      if (output.video.FrameCount() == 0) return Status::Ok();
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          systems::detail::InputAsset(instance, *dataset_));
      VR_ASSIGN_OR_RETURN(video::Video input,
                          video::codec::ParallelDecode(asset->container.video));
      queries::ReferenceContext context;
      context.dataset = dataset_;
      context.detector_options = options_.detector;
      VR_ASSIGN_OR_RETURN(queries::ReferenceResult reference,
                          queries::RunReference(context, instance, input));
      VR_ASSIGN_OR_RETURN(ValidationStats mask_stats,
                          MaskValidate(output.video, reference.video));
      stats.Merge(mask_stats);
      return Status::Ok();
    }
    // Q2(c): each reported detection mapped back to scene geometry.
    if (output.detections.empty()) return Status::Ok();
    VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                        systems::detail::InputAsset(instance, *dataset_));
    VR_ASSIGN_OR_RETURN(
        ValidationStats semantic,
        SemanticValidate(output.detections, asset->ground_truth,
                         instance.object_class, /*epsilon=*/0.5));
    stats.Merge(semantic);
    return Status::Ok();
  }

  // Frame validation: run the reference implementation on the same decoded
  // input and compare PSNR per frame.
  queries::ReferenceContext context;
  context.dataset = dataset_;
  context.detector_options = options_.detector;

  video::Video input;
  if (instance.id != QueryId::kQ9 && instance.id != QueryId::kQ10) {
    VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                        systems::detail::InputAsset(instance, *dataset_));
    // Validation is off the measured path; GOP-parallel decode just gets the
    // reference input materialised sooner.
    VR_ASSIGN_OR_RETURN(input,
                        video::codec::ParallelDecode(asset->container.video));
  }
  VR_ASSIGN_OR_RETURN(queries::ReferenceResult reference,
                      queries::RunReference(context, instance, input));

  double threshold = instance.id == QueryId::kQ9 ? video::kStitchingPsnrDb
                                                 : video::kValidationPsnrDb;
  if (reference.video.frames.empty() && output.video.FrameCount() == 0) {
    return Status::Ok();
  }
  VR_ASSIGN_OR_RETURN(ValidationStats frame_stats,
                      FrameValidate(output.video, reference.video, threshold));
  stats.Merge(frame_stats);
  return Status::Ok();
}

StatusOr<QueryBatchResult> VisualCityDriver::RunQueryBatch(systems::Vdbms& engine,
                                                           QueryId id) {
  // Session-list indices are stable, so this mark brackets every span this
  // batch (and its validation) records, across all threads.
  size_t trace_mark = trace::EventCount();
  VR_ASSIGN_OR_RETURN(std::vector<QueryInstance> batch, SampleBatch(id));

  QueryBatchResult result;
  result.id = id;
  result.engine = engine.name();
  result.instances = static_cast<int>(batch.size());

  if (!engine.Supports(id)) {
    result.unsupported = result.instances;
    DriverMetrics::Get().instances_unsupported.Increment(
        static_cast<double>(result.unsupported));
    return result;
  }

  // Per-instance outcome slots, aggregated in index order after the measured
  // window so parallel execution reports exactly what serial execution
  // would.
  struct InstanceOutcome {
    bool succeeded = false;
    bool unsupported = false;
    bool failed = false;
    bool resource_exhausted = false;
    std::string error;
    int64_t frames_degraded = 0;
  };
  std::vector<InstanceOutcome> outcomes(batch.size());
  std::vector<systems::QueryOutput> outputs(batch.size());

  auto run_one = [&](int i) {
    size_t index = static_cast<size_t>(i);
    if (options_.execution_mode == systems::ExecutionMode::kOnline) {
      // Online processing (Section 3.2): data arrives through a throttled
      // forward-only feed at the camera's capture rate. The engine cannot
      // start ahead of the data, so the ingest gate is part of the measured
      // runtime.
      std::vector<const sim::VideoAsset*> traffic = dataset_->TrafficAssets();
      if (batch[index].video_index >= 0 &&
          static_cast<size_t>(batch[index].video_index) < traffic.size()) {
        systems::VideoSource source = systems::VideoSource::Online(
            &traffic[static_cast<size_t>(batch[index].video_index)]
                 ->container.video,
            options_.online_rate_multiplier, options_.faults);
        while (!source.AtEnd()) {
          if (!source.Next().ok()) break;
        }
        outcomes[index].frames_degraded = source.frames_degraded();
      }
    }
    StatusOr<systems::QueryOutput> output =
        engine.Execute(batch[index], *dataset_, options_.output_mode,
                       options_.output_dir);
    if (output.ok()) {
      outputs[index] = std::move(output).value();
      outcomes[index].succeeded = true;
    } else if (output.status().code() == StatusCode::kUnimplemented) {
      outcomes[index].unsupported = true;
    } else {
      outcomes[index].failed = true;
      outcomes[index].resource_exhausted =
          output.status().code() == StatusCode::kResourceExhausted;
      outcomes[index].error = output.status().ToString();
    }
    return Status::Ok();
  };

  // Instance-level parallelism is opt-in, offline-only (online ingest
  // throttling is part of the measured semantics), and gated on the engine
  // declaring Execute() thread-safe.
  int pool_threads =
      std::min(options_.parallel_instances, static_cast<int>(batch.size()));
  bool parallel_execute = pool_threads > 1 &&
                          options_.execution_mode ==
                              systems::ExecutionMode::kOffline &&
                          engine.ConcurrentSafe();

  systems::EngineStats stats_before = engine.stats();
  // Robustness accounting for the measured window: retry attempts across
  // every RetryPolicy site, and reads the VSS served degraded.
  const int64_t retries_before = fault::TotalRetries();
  const int64_t vss_degraded_before =
      options_.storage != nullptr ? options_.storage->stats().degraded_reads : 0;
  Stopwatch stopwatch;
  {
    // One span covering the whole measured window, so the exported trace
    // accounts for the batch wall-clock even where no finer span runs. Named
    // "vcd:" to stay distinct from the engines' per-instance "<engine>:"
    // spans (the batch engine's is "batch:<query>").
    trace::Span batch_span(std::string("vcd:") + queries::QueryName(id));
    if (parallel_execute) {
      ThreadPool pool(pool_threads, "driver");
      VR_RETURN_IF_ERROR(pool.ParallelForStatus(static_cast<int>(batch.size()),
                                                run_one, /*grain=*/1));
      result.parallel_instances = pool.num_threads();
      result.pool_stats = pool.stats();
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        VR_RETURN_IF_ERROR(run_one(static_cast<int>(i)));
      }
    }
  }
  result.total_seconds = stopwatch.ElapsedSeconds();
  result.retries = fault::TotalRetries() - retries_before;
  if (options_.storage != nullptr) {
    result.frames_degraded +=
        options_.storage->stats().degraded_reads - vss_degraded_before;
  }
  DriverMetrics::Get().batches.Increment();
  DriverMetrics::Get().batch_seconds.Observe(result.total_seconds);
  // The engine's counter movement over the measured window; batches share
  // one engine, so absolutes would conflate earlier queries.
  systems::EngineStats stats_after = engine.stats();
  result.engine_stats.frames_decoded =
      stats_after.frames_decoded - stats_before.frames_decoded;
  result.engine_stats.frames_encoded =
      stats_after.frames_encoded - stats_before.frames_encoded;
  result.engine_stats.cache_hits = stats_after.cache_hits - stats_before.cache_hits;
  result.engine_stats.cache_misses =
      stats_after.cache_misses - stats_before.cache_misses;
  result.engine_stats.chunked_redecodes =
      stats_after.chunked_redecodes - stats_before.chunked_redecodes;
  result.engine_stats.cnn_frames_full =
      stats_after.cnn_frames_full - stats_before.cnn_frames_full;
  result.engine_stats.cnn_frames_cheap =
      stats_after.cnn_frames_cheap - stats_before.cnn_frames_cheap;
  result.engine_stats.cnn_frames_skipped =
      stats_after.cnn_frames_skipped - stats_before.cnn_frames_skipped;

  int64_t input_frames = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const InstanceOutcome& outcome = outcomes[i];
    result.frames_degraded += outcome.frames_degraded;
    if (outcome.succeeded) {
      ++result.succeeded;
      input_frames += InputFrames(batch[i]);
    } else if (outcome.unsupported) {
      ++result.unsupported;
    } else if (outcome.failed) {
      ++result.failed;
      if (outcome.resource_exhausted) ++result.resource_exhausted;
      if (result.first_error.empty()) result.first_error = outcome.error;
    }
  }
  result.frames_per_second =
      result.total_seconds > 0
          ? static_cast<double>(input_frames) / result.total_seconds
          : 0.0;
  DriverMetrics::Get().instances_succeeded.Increment(
      static_cast<double>(result.succeeded));
  DriverMetrics::Get().instances_unsupported.Increment(
      static_cast<double>(result.unsupported));
  DriverMetrics::Get().instances_failed.Increment(
      static_cast<double>(result.failed));

  // Validation happens after the measured window (reference computation is
  // the VCD's cost, not the engine's). It is pure per-instance work over
  // const data, so it parallelises whenever the driver is configured for it,
  // regardless of engine thread safety; per-instance stats merge in index
  // order to keep the aggregate deterministic.
  if (options_.validate && options_.output_mode == systems::OutputMode::kWrite) {
    trace::Span validate_span(std::string("validate:") + queries::QueryName(id));
    Stopwatch validate_watch;
    auto needs_validation = [&](size_t i) {
      return outputs[i].produced || !outputs[i].detections.empty();
    };
    if (pool_threads > 1) {
      std::vector<ValidationStats> per_instance(batch.size());
      ThreadPool pool(pool_threads, "driver");
      VR_RETURN_IF_ERROR(pool.ParallelForStatus(
          static_cast<int>(batch.size()),
          [&](int i) {
            size_t index = static_cast<size_t>(i);
            if (!needs_validation(index)) return Status::Ok();
            return Validate(batch[index], outputs[index], per_instance[index]);
          },
          /*grain=*/1));
      for (const ValidationStats& stats : per_instance) {
        result.validation.Merge(stats);
      }
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!needs_validation(i)) continue;
        VR_RETURN_IF_ERROR(Validate(batch[i], outputs[i], result.validation));
      }
    }
    DriverMetrics::Get().validation_seconds.Increment(
        validate_watch.ElapsedSeconds());
  }
  if (trace::Enabled()) {
    result.stage_breakdown = trace::Summarize(trace::EventsSince(trace_mark));
  }
  return result;
}

StatusOr<std::vector<QueryBatchResult>> VisualCityDriver::RunBenchmark(
    systems::Vdbms& engine) {
  std::vector<QueryBatchResult> results;
  VR_RETURN_IF_ERROR(StageStorage());
  for (QueryId id : queries::AllQueries()) {
    VR_ASSIGN_OR_RETURN(QueryBatchResult result, RunQueryBatch(engine, id));
    results.push_back(std::move(result));
    engine.Quiesce();  // Engines may quiesce between batches (Section 3.2).
  }
  VR_RETURN_IF_ERROR(WriteTrace());
  return results;
}

Status VisualCityDriver::WriteTrace() const {
  if (options_.trace_path.empty()) return Status::Ok();
  return trace::WriteChromeTrace(options_.trace_path);
}

Status VisualCityDriver::StageStorage() {
  if (options_.storage == nullptr) return Status::Ok();
  TRACE_SPAN("stage_storage");
  return IngestDatasetVss(*dataset_, *options_.storage);
}

}  // namespace visualroad::driver
