#include "driver/vcd.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "dist/coordinator.h"
#include "driver/dataset_io.h"
#include "storage/vss.h"
#include "systems/video_source.h"
#include "video/metrics.h"

namespace visualroad::driver {

using queries::QueryId;
using queries::QueryInstance;

namespace {

/// Registry instruments for driver-level progress, shared by every
/// VisualCityDriver instance in the process.
struct DriverMetrics {
  metrics::Counter& batches;
  metrics::Counter& instances_succeeded;
  metrics::Counter& instances_unsupported;
  metrics::Counter& instances_failed;
  metrics::Histogram& batch_seconds;
  metrics::Counter& validation_seconds;

  static DriverMetrics& Get() {
    static DriverMetrics* instruments = [] {
      metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
      return new DriverMetrics{
          registry.GetCounter("vr_driver_batches_total",
                              "Query batches the VCD measured"),
          registry.GetCounter("vr_driver_instances_succeeded_total",
                              "Query instances that produced a result"),
          registry.GetCounter(
              "vr_driver_instances_unsupported_total",
              "Query instances the engine declined as unsupported"),
          registry.GetCounter("vr_driver_instances_failed_total",
                              "Query instances that returned an error"),
          registry.GetHistogram("vr_driver_batch_seconds",
                                "Measured wall-clock duration per query batch",
                                {0.1, 0.5, 2.0, 10.0, 60.0, 300.0}),
          registry.GetCounter(
              "vr_driver_validation_seconds_total",
              "Wall-clock seconds spent validating results off the measured "
              "path"),
      };
    }();
    return *instruments;
  }
};

}  // namespace

VisualCityDriver::VisualCityDriver(const sim::Dataset& dataset,
                                   const VcdOptions& options)
    : dataset_(&dataset), options_(options) {
  if (options_.trace || !options_.trace_path.empty()) trace::SetEnabled(true);
}

VisualCityDriver::~VisualCityDriver() = default;

Status VisualCityDriver::EnsureCluster(systems::Vdbms& engine) {
  if (cluster_ != nullptr && cluster_engine_ == engine.name()) {
    return Status::Ok();
  }
  cluster_.reset();
  dist::CoordinatorOptions coordinator_options;
  coordinator_options.workers = options_.workers;
  coordinator_options.setup.config = dataset_->config;
  coordinator_options.setup.codec = options_.dataset_codec;
  coordinator_options.setup.engine = engine.name();
  coordinator_options.setup.engine_options = options_.worker_engine_options;
  coordinator_options.setup.engine_options.workers = options_.workers;
  coordinator_options.setup.detector = options_.detector;
  coordinator_options.dataset = dataset_;
  if (options_.storage != nullptr) {
    coordinator_options.store = options_.storage->options().store;
    // Storage staging: put the corpus and its VSS segments into the shared
    // store once, then ship the root so workers attach read-only instead of
    // regenerating the dataset (both idempotent, never inside a measured
    // window).
    VR_RETURN_IF_ERROR(StageStorage());
    VR_RETURN_IF_ERROR(StageClusterDataset());
    const storage::StoreOptions& store_options =
        coordinator_options.store->options();
    coordinator_options.setup.store_root = store_options.root;
    coordinator_options.setup.store_nodes = store_options.num_nodes;
    coordinator_options.setup.store_replication = store_options.replication;
    coordinator_options.setup.store_block_size = store_options.block_size;
  }
  // Warm workers from the local semantic cache before each batch.
  coordinator_options.semantic_cache = options_.semantic_cache;
  coordinator_options.faults = options_.faults;
  auto cluster = std::make_unique<dist::Coordinator>(coordinator_options);
  VR_RETURN_IF_ERROR(cluster->Start());
  cluster_ = std::move(cluster);
  cluster_engine_ = engine.name();
  return Status::Ok();
}

int VisualCityDriver::BatchSize() const {
  if (options_.batch_size_override > 0) return options_.batch_size_override;
  return 4 * dataset_->config.scale_factor;
}

StatusOr<std::vector<QueryInstance>> VisualCityDriver::SampleBatch(
    QueryId id) const {
  // The sampler substream depends only on (seed, query), so batches are
  // identical across engines and runs.
  Pcg32 rng = SubStream(options_.seed, "query-batch", static_cast<uint64_t>(id));
  std::vector<QueryInstance> batch;
  int size = BatchSize();
  batch.reserve(size);
  for (int i = 0; i < size; ++i) {
    VR_ASSIGN_OR_RETURN(QueryInstance instance,
                        queries::SampleQueryInstance(id, *dataset_, rng,
                                                     options_.sampler));
    batch.push_back(std::move(instance));
  }
  return batch;
}

int64_t VisualCityDriver::InputFrames(const QueryInstance& instance) const {
  return systems::detail::InputFrameCount(instance, *dataset_);
}

ThreadPool& VisualCityDriver::EnsurePool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(std::max(1, options_.parallel_instances),
                                         "driver");
  }
  return *pool_;
}

Status VisualCityDriver::Validate(const QueryInstance& instance,
                                  const systems::QueryOutput& output,
                                  ValidationStats& stats) const {
  queries::ValidationKind kind = queries::ValidationFor(instance.id);
  if (kind == queries::ValidationKind::kNone) return Status::Ok();

  if (kind == queries::ValidationKind::kSemantic) {
    if (instance.id == QueryId::kQ2d) {
      // Q2(d): per-pixel agreement of the static/dynamic classification
      // with the reference mask derived from the same input.
      if (output.video.FrameCount() == 0) return Status::Ok();
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          systems::detail::InputAsset(instance, *dataset_));
      VR_ASSIGN_OR_RETURN(video::Video input,
                          video::codec::ParallelDecode(asset->container.video));
      queries::ReferenceContext context;
      context.dataset = dataset_;
      context.detector_options = options_.detector;
      VR_ASSIGN_OR_RETURN(queries::ReferenceResult reference,
                          queries::RunReference(context, instance, input));
      VR_ASSIGN_OR_RETURN(ValidationStats mask_stats,
                          MaskValidate(output.video, reference.video));
      stats.Merge(mask_stats);
      return Status::Ok();
    }
    // Q2(c): each reported detection mapped back to scene geometry.
    if (output.detections.empty()) return Status::Ok();
    VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                        systems::detail::InputAsset(instance, *dataset_));
    VR_ASSIGN_OR_RETURN(
        ValidationStats semantic,
        SemanticValidate(output.detections, asset->ground_truth,
                         instance.object_class, /*epsilon=*/0.5));
    stats.Merge(semantic);
    return Status::Ok();
  }

  // Frame validation: run the reference implementation on the same decoded
  // input and compare PSNR per frame.
  queries::ReferenceContext context;
  context.dataset = dataset_;
  context.detector_options = options_.detector;

  video::Video input;
  if (instance.id != QueryId::kQ9 && instance.id != QueryId::kQ10) {
    VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                        systems::detail::InputAsset(instance, *dataset_));
    // Validation is off the measured path; GOP-parallel decode just gets the
    // reference input materialised sooner.
    VR_ASSIGN_OR_RETURN(input,
                        video::codec::ParallelDecode(asset->container.video));
  }
  VR_ASSIGN_OR_RETURN(queries::ReferenceResult reference,
                      queries::RunReference(context, instance, input));

  double threshold = instance.id == QueryId::kQ9 ? video::kStitchingPsnrDb
                                                 : video::kValidationPsnrDb;
  if (reference.video.frames.empty() && output.video.FrameCount() == 0) {
    return Status::Ok();
  }
  VR_ASSIGN_OR_RETURN(ValidationStats frame_stats,
                      FrameValidate(output.video, reference.video, threshold));
  stats.Merge(frame_stats);
  return Status::Ok();
}

StatusOr<QueryBatchResult> VisualCityDriver::RunQueryBatch(systems::Vdbms& engine,
                                                           QueryId id) {
  // Session-list indices are stable, so this mark brackets every span this
  // batch (and its validation) records, across all threads.
  size_t trace_mark = trace::EventCount();
  VR_ASSIGN_OR_RETURN(std::vector<QueryInstance> batch, SampleBatch(id));

  QueryBatchResult result;
  result.id = id;
  result.engine = engine.name();
  result.instances = static_cast<int>(batch.size());

  if (!engine.Supports(id)) {
    result.unsupported = result.instances;
    DriverMetrics::Get().instances_unsupported.Increment(
        static_cast<double>(result.unsupported));
    return result;
  }

  // Plan capture happens before the measured window: planning is
  // side-effect free, and the explain string must describe what the window
  // is about to do, not what it did.
  if (options_.explain && !batch.empty()) {
    result.plan_explain = engine.Explain(batch.front(), *dataset_);
  }

  // Per-instance outcome slots, aggregated in index order after the measured
  // window so parallel execution reports exactly what serial execution
  // would.
  struct InstanceOutcome {
    bool succeeded = false;
    bool unsupported = false;
    bool failed = false;
    bool resource_exhausted = false;
    std::string error;
    int64_t frames_degraded = 0;
    int64_t retries = 0;
    systems::EngineStats engine_stats;
  };
  std::vector<InstanceOutcome> outcomes(batch.size());
  std::vector<systems::QueryOutput> outputs(batch.size());

  auto run_one = [&](int i) {
    size_t index = static_cast<size_t>(i);
    // Robustness accounting is thread-scoped: every degrade/retry site runs
    // on the thread that performs the read, and this whole body runs on one
    // thread, so bracketing it counts each event exactly once for exactly
    // this instance — even with other batches live on the same services.
    const int64_t retries_before = fault::ThreadRetries();
    const int64_t degraded_before = fault::ThreadDegraded();
    if (options_.execution_mode == systems::ExecutionMode::kOnline) {
      // Online processing (Section 3.2): data arrives through a throttled
      // forward-only feed at the camera's capture rate. The engine cannot
      // start ahead of the data, so the ingest gate is part of the measured
      // runtime. Freeze-frame concealments surface through the thread-scoped
      // degraded counter.
      std::vector<const sim::VideoAsset*> traffic = dataset_->TrafficAssets();
      if (batch[index].video_index >= 0 &&
          static_cast<size_t>(batch[index].video_index) < traffic.size()) {
        systems::VideoSource source = systems::VideoSource::Online(
            &traffic[static_cast<size_t>(batch[index].video_index)]
                 ->container.video,
            options_.online_rate_multiplier, options_.faults);
        while (!source.AtEnd()) {
          if (!source.Next().ok()) break;
        }
      }
    }
    StatusOr<systems::QueryOutput> output =
        engine.Execute(batch[index], *dataset_, options_.output_mode,
                       options_.output_dir, &outcomes[index].engine_stats);
    outcomes[index].retries = fault::ThreadRetries() - retries_before;
    outcomes[index].frames_degraded = fault::ThreadDegraded() - degraded_before;
    if (output.ok()) {
      outputs[index] = std::move(output).value();
      outcomes[index].succeeded = true;
    } else if (output.status().code() == StatusCode::kUnimplemented) {
      outcomes[index].unsupported = true;
    } else {
      outcomes[index].failed = true;
      outcomes[index].resource_exhausted =
          output.status().code() == StatusCode::kResourceExhausted;
      outcomes[index].error = output.status().ToString();
    }
    return Status::Ok();
  };

  // Instance-level parallelism is opt-in, offline-only (online ingest
  // throttling is part of the measured semantics), and gated on the engine
  // declaring Execute() thread-safe.
  int pool_threads =
      std::min(options_.parallel_instances, static_cast<int>(batch.size()));
  bool parallel_execute = pool_threads > 1 &&
                          options_.execution_mode ==
                              systems::ExecutionMode::kOffline &&
                          engine.ConcurrentSafe();

  // Distributed scale-out: cluster startup (worker spawn, dataset
  // regeneration, engine construction) happens before the measured window —
  // it is provisioning cost, not query cost.
  if (options_.workers > 0) {
    if (options_.execution_mode == systems::ExecutionMode::kOnline) {
      return Status::InvalidArgument(
          "distributed execution (workers > 0) is offline-only: online "
          "ingest pacing is a single throttled feed");
    }
    VR_RETURN_IF_ERROR(EnsureCluster(engine));
    result.workers = options_.workers;
  }

  int64_t dist_rpc_retries = 0;
  Stopwatch stopwatch;
  {
    // One span covering the whole measured window, so the exported trace
    // accounts for the batch wall-clock even where no finer span runs. Named
    // "vcd:" to stay distinct from the engines' per-instance "<engine>:"
    // spans (the batch engine's is "batch:<query>").
    trace::Span batch_span(std::string("vcd:") + queries::QueryName(id));
    if (options_.workers > 0) {
      dist::DistBatchStats dist_stats;
      VR_ASSIGN_OR_RETURN(
          std::vector<dist::DistInstanceOutcome> dist_outcomes,
          cluster_->ExecuteBatch(batch, options_.output_mode,
                                 options_.output_dir, &dist_stats));
      for (size_t i = 0; i < dist_outcomes.size() && i < batch.size(); ++i) {
        dist::DistInstanceOutcome& from = dist_outcomes[i];
        InstanceOutcome& to = outcomes[i];
        switch (from.state) {
          case dist::DistInstanceOutcome::kSucceeded:
            to.succeeded = true;
            outputs[i] = std::move(from.output);
            break;
          case dist::DistInstanceOutcome::kUnsupported:
            to.unsupported = true;
            break;
          case dist::DistInstanceOutcome::kFailed:
            to.failed = true;
            to.resource_exhausted = from.resource_exhausted;
            to.error = std::move(from.error);
            break;
        }
        to.engine_stats = from.stats;
      }
      dist_rpc_retries = dist_stats.rpc_retries;
      result.worker_busy_seconds = dist_stats.worker_busy_seconds;
    } else if (parallel_execute) {
      // The driver-lifetime pool: per-batch pool churn put worker startup
      // and teardown inside the measured window. PoolStats still reports
      // this batch's movement only, via the snapshot delta.
      ThreadPool& pool = EnsurePool();
      pool.ResetQueuePeak();
      const PoolStats pool_before = pool.stats();
      VR_RETURN_IF_ERROR(pool.ParallelForStatus(static_cast<int>(batch.size()),
                                                run_one, /*grain=*/1));
      // ParallelForStatus returns on the last chunk's completion signal,
      // which fires inside the task body — the worker's tasks_executed /
      // busy_seconds bookkeeping lands just after. Quiesce before the
      // after-snapshot so the window delta covers every task it submitted.
      (void)pool.Wait();
      result.parallel_instances = pool_threads;
      result.pool_stats = PoolStatsDelta(pool.stats(), pool_before);
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        VR_RETURN_IF_ERROR(run_one(static_cast<int>(i)));
      }
    }
  }
  result.total_seconds = stopwatch.ElapsedSeconds();
  result.retries += dist_rpc_retries;
  DriverMetrics::Get().batches.Increment();
  DriverMetrics::Get().batch_seconds.Observe(result.total_seconds);

  // Aggregate the per-instance windows in index order. Engine counters are
  // the sum of the per-call windows Execute() reported, so the batch's
  // engine_stats is exact even when another batch overlaps on this engine —
  // a stats() before/after snapshot would absorb the other batch's work.
  int64_t attempted_frames = 0;
  int64_t succeeded_frames = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const InstanceOutcome& outcome = outcomes[i];
    result.frames_degraded += outcome.frames_degraded;
    result.retries += outcome.retries;
    result.engine_stats.Add(outcome.engine_stats);
    if (outcome.succeeded) {
      ++result.succeeded;
      int64_t frames = InputFrames(batch[i]);
      attempted_frames += frames;
      succeeded_frames += frames;
    } else if (outcome.unsupported) {
      ++result.unsupported;
    } else if (outcome.failed) {
      ++result.failed;
      attempted_frames += InputFrames(batch[i]);
      if (outcome.resource_exhausted) ++result.resource_exhausted;
      if (result.first_error.empty()) result.first_error = outcome.error;
    }
  }
  result.attempted_frames = attempted_frames;
  result.frames_per_second =
      result.total_seconds > 0
          ? static_cast<double>(attempted_frames) / result.total_seconds
          : 0.0;
  result.goodput_frames_per_second =
      result.total_seconds > 0
          ? static_cast<double>(succeeded_frames) / result.total_seconds
          : 0.0;
  DriverMetrics::Get().instances_succeeded.Increment(
      static_cast<double>(result.succeeded));
  DriverMetrics::Get().instances_unsupported.Increment(
      static_cast<double>(result.unsupported));
  DriverMetrics::Get().instances_failed.Increment(
      static_cast<double>(result.failed));

  // Validation happens after the measured window (reference computation is
  // the VCD's cost, not the engine's). It is pure per-instance work over
  // const data, so it parallelises whenever the driver is configured for it,
  // regardless of engine thread safety; per-instance stats merge in index
  // order to keep the aggregate deterministic.
  if (options_.validate && options_.output_mode == systems::OutputMode::kWrite) {
    trace::Span validate_span(std::string("validate:") + queries::QueryName(id));
    Stopwatch validate_watch;
    auto needs_validation = [&](size_t i) {
      return outputs[i].produced || !outputs[i].detections.empty();
    };
    if (pool_threads > 1) {
      std::vector<ValidationStats> per_instance(batch.size());
      // Same driver-lifetime pool as the measured window; the batch's
      // pool_stats delta was taken before validation, so validation tasks
      // never leak into the measured counters.
      ThreadPool& pool = EnsurePool();
      VR_RETURN_IF_ERROR(pool.ParallelForStatus(
          static_cast<int>(batch.size()),
          [&](int i) {
            size_t index = static_cast<size_t>(i);
            if (!needs_validation(index)) return Status::Ok();
            return Validate(batch[index], outputs[index], per_instance[index]);
          },
          /*grain=*/1));
      for (const ValidationStats& stats : per_instance) {
        result.validation.Merge(stats);
      }
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!needs_validation(i)) continue;
        VR_RETURN_IF_ERROR(Validate(batch[i], outputs[i], result.validation));
      }
    }
    DriverMetrics::Get().validation_seconds.Increment(
        validate_watch.ElapsedSeconds());
  }
  if (trace::Enabled()) {
    result.stage_breakdown = trace::Summarize(trace::EventsSince(trace_mark));
  }
  return result;
}

StatusOr<std::vector<QueryBatchResult>> VisualCityDriver::RunBenchmark(
    systems::Vdbms& engine) {
  std::vector<QueryBatchResult> results;
  VR_RETURN_IF_ERROR(StageStorage());
  for (QueryId id : queries::AllQueries()) {
    VR_ASSIGN_OR_RETURN(QueryBatchResult result, RunQueryBatch(engine, id));
    results.push_back(std::move(result));
    engine.Quiesce();  // Engines may quiesce between batches (Section 3.2).
  }
  VR_RETURN_IF_ERROR(WriteTrace());
  return results;
}

StatusOr<server::ServingReport> VisualCityDriver::RunServing(
    systems::Vdbms& engine, const ServingRunOptions& run) {
  VR_RETURN_IF_ERROR(StageStorage());
  std::vector<server::Arrival> schedule =
      server::GenerateOpenLoopSchedule(run.traffic);
  server::QueryServer srv(*dataset_, engine, run.server);
  return server::RunOpenLoop(srv, *dataset_, schedule, run.replay);
}

Status VisualCityDriver::WriteTrace() const {
  if (options_.trace_path.empty()) return Status::Ok();
  return trace::WriteChromeTrace(options_.trace_path);
}

Status VisualCityDriver::StageStorage() {
  if (options_.storage == nullptr) return Status::Ok();
  TRACE_SPAN("stage_storage");
  return IngestDatasetVss(*dataset_, *options_.storage);
}

Status VisualCityDriver::StageClusterDataset() {
  if (options_.storage == nullptr) return Status::Ok();
  storage::ShardedStore* store = options_.storage->options().store;
  if (store == nullptr) {
    return Status::InvalidArgument(
        "storage staging needs a store-backed VSS");
  }
  TRACE_SPAN("dist:stage");
  // Idempotent: a manifest already describing this many assets means a prior
  // run (or a prior EnsureCluster) staged the same deterministic corpus.
  StatusOr<std::vector<uint8_t>> manifest = store->Get("dataset.vrds");
  if (manifest.ok()) {
    StatusOr<sim::Dataset> existing = ParseDatasetManifest(*manifest);
    if (existing.ok() && existing->assets.size() == dataset_->assets.size()) {
      return Status::Ok();
    }
  }
  return SaveDatasetSharded(*dataset_, *store);
}

}  // namespace visualroad::driver
