#ifndef VISUALROAD_DRIVER_VALIDATION_H_
#define VISUALROAD_DRIVER_VALIDATION_H_

#include <vector>

#include "simulation/ground_truth.h"
#include "video/codec/codec.h"
#include "vision/miniyolo.h"

namespace visualroad::driver {

/// Aggregated validation outcome for one query instance or batch.
struct ValidationStats {
  int64_t checked = 0;
  int64_t passed = 0;
  double min_psnr_db = 0.0;
  double mean_psnr_db = 0.0;
  double max_psnr_db = 0.0;

  double PassRate() const {
    return checked > 0 ? static_cast<double>(passed) / static_cast<double>(checked)
                       : 1.0;
  }
  /// Merges another stats block into this one.
  void Merge(const ValidationStats& other);
};

/// Frame validation (Section 3.2): decodes the engine's encoded output and
/// compares it frame-by-frame against the reference output using PSNR; a
/// frame passes at >= threshold_db (40 dB for most queries, 30 dB for Q9).
StatusOr<ValidationStats> FrameValidate(const video::codec::EncodedVideo& actual,
                                        const video::Video& reference,
                                        double threshold_db);

/// Semantic validation (Section 3.2, Q2(c)): maps each reported detection
/// back to the scene geometry. A detection passes when some ground-truth
/// object of the same class has Jaccard distance <= epsilon from the
/// reported box (epsilon = 0.5, the PASCAL VOC threshold).
StatusOr<ValidationStats> SemanticValidate(
    const std::vector<std::vector<vision::Detection>>& detections,
    const std::vector<sim::FrameGroundTruth>& truth, sim::ObjectClass object_class,
    double epsilon = 0.5);

/// Semantic validation for Q2(d): decodes the engine's masked output and
/// compares its omega (static-region) classification per pixel against the
/// reference mask computed from the same input and parameters. A frame
/// passes when at least `min_agreement` of its pixels agree.
StatusOr<ValidationStats> MaskValidate(const video::codec::EncodedVideo& actual,
                                       const video::Video& reference_mask,
                                       double min_agreement = 0.99);

/// Average precision at the given IoU threshold over a detection set —
/// the Section 6.3.1 video-quality metric. Detections across frames are
/// pooled and ranked by score; AP is the area under the interpolated
/// precision-recall curve.
double AveragePrecision(const std::vector<std::vector<vision::Detection>>& detections,
                        const std::vector<sim::FrameGroundTruth>& truth,
                        sim::ObjectClass object_class, double iou_threshold = 0.5,
                        double min_visible_fraction = 0.20);

}  // namespace visualroad::driver

#endif  // VISUALROAD_DRIVER_VALIDATION_H_
