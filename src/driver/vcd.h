#ifndef VISUALROAD_DRIVER_VCD_H_
#define VISUALROAD_DRIVER_VCD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "driver/validation.h"
#include "server/server.h"
#include "server/traffic.h"
#include "systems/vdbms.h"

namespace visualroad::storage {
class VideoStorageService;
}  // namespace visualroad::storage

namespace visualroad::dist {
class Coordinator;
}  // namespace visualroad::dist

namespace visualroad::driver {

/// VCD configuration.
struct VcdOptions {
  systems::OutputMode output_mode = systems::OutputMode::kWrite;
  systems::ExecutionMode execution_mode = systems::ExecutionMode::kOffline;
  /// Online mode: the VCD exposes each input through a forward-only source
  /// throttled to the camera's capture rate x this multiplier (1.0 = strict
  /// real time; larger accelerates simulated time for tests/benches). The
  /// ingest time is part of the measured batch runtime, as with a named
  /// pipe or RTP feed.
  double online_rate_multiplier = 1.0;
  /// Validate results against the reference implementation (write mode
  /// only; validation time is excluded from the measured batch runtime).
  bool validate = true;
  /// Directory for write-mode result containers; empty keeps results in
  /// memory only.
  std::string output_dir;
  /// Seed for parameter sampling. The sampler stream depends only on this
  /// seed and the query id, never on the engine, so every engine receives
  /// the identical batch.
  uint64_t seed = 0x5EED;
  /// Override for the per-query batch size; 0 uses the benchmark's 4L rule.
  int batch_size_override = 0;
  /// Opt-in instance-level parallelism. When > 1, offline batch instances
  /// are submitted to the engine concurrently from this many driver threads
  /// — but only if the engine reports ConcurrentSafe(); otherwise execution
  /// stays serial. Online mode always stays serial: the throttled
  /// forward-only feed is part of the measured semantics. The
  /// post-measurement validation loop (pure reference computation) is
  /// parallelised whenever this is > 1, independent of the engine.
  int parallel_instances = 1;
  queries::SamplerOptions sampler;
  /// Reference detector configuration used when computing reference results.
  vision::DetectorOptions detector;
  /// Enables trace-span recording for this driver's runs (see
  /// docs/OBSERVABILITY.md). Setting `trace_path` implies `trace`.
  bool trace = false;
  /// When non-empty, RunBenchmark writes every span recorded during the run
  /// as Chrome trace JSON (chrome://tracing / Perfetto) to this path.
  std::string trace_path;
  /// Storage-backed offline mode: when set, RunBenchmark stages the
  /// dataset's camera streams into this service before the first measured
  /// batch (idempotent), and engines pointed at the same service via
  /// EngineOptions::vss read GOP-aligned ranges from it instead of the
  /// in-memory containers. Borrowed; must outlive the driver.
  storage::VideoStorageService* storage = nullptr;
  /// Deterministic fault injection for the run (borrowed; null = no
  /// faults). Online sources consume channel loss/jitter from it; storage
  /// and VSS faults flow through the services configured with the same
  /// injector. The per-batch retry and degraded-frame accounting in
  /// QueryBatchResult is populated whenever this is set.
  fault::FaultInjector* faults = nullptr;
  /// Capture each batch's execution plan (`vcd --explain`): before the
  /// measured window, the engine explains the batch's first instance and
  /// the string lands in QueryBatchResult::plan_explain. Planning is
  /// side-effect free (the cache probe is a Peek), so explain never
  /// changes what the measured window does.
  bool explain = false;
  /// Semantic result store handed to engines via
  /// EngineOptions::semantic_cache (borrowed; null = semantic caching
  /// off). The driver itself only persists/loads it around runs; the
  /// engines decide per query what to materialize.
  queries::SemanticCache* semantic_cache = nullptr;
  /// Distributed scale-out (DESIGN.md Section 15): when > 0, measured
  /// batches fan out across this many worker processes over local-socket
  /// RPC instead of running in-process. With `storage` also set the driver
  /// stages the dataset into the shared store and workers attach to it
  /// read-only (storage staging) instead of regenerating; either way the
  /// worker inputs are byte-identical to the coordinator's, so results are
  /// byte-identical to workers == 0. With `semantic_cache` also set, its
  /// ready entries pre-seed every worker before each batch. Offline only
  /// (online ingest pacing is inherently single-feed); combining with
  /// online mode is an error.
  int workers = 0;
  /// Codec configuration the dataset was generated with. Distributed
  /// workers rebuild their corpus from (dataset().config, this), so it must
  /// match the GeneratorOptions used locally; the default mirrors
  /// PrepareDataset's default.
  video::codec::EncoderConfig dataset_codec;
  /// Engine configuration shipped to distributed workers; should mirror
  /// what the local engine was constructed with. Pointer members (vss,
  /// caches) stay process-local: each worker hosts its own GOP and semantic
  /// caches, which are byte-identical by the caches' contracts.
  systems::EngineOptions worker_engine_options;
};

/// Measured outcome of one query batch on one engine.
struct QueryBatchResult {
  queries::QueryId id = queries::QueryId::kQ1;
  std::string engine;
  int instances = 0;
  int succeeded = 0;
  int unsupported = 0;
  int failed = 0;
  /// Of the failures, how many were memory exhaustion (the paper reports
  /// these as N/A, e.g. Scanner on Q4).
  int resource_exhausted = 0;
  /// Wall-clock seconds for the whole batch (persist time included in write
  /// mode, per Section 3.2).
  double total_seconds = 0.0;
  /// Input frames the engine attempted over the batch (succeeded plus failed
  /// instances; declined-as-unsupported instances read no input).
  int64_t attempted_frames = 0;
  /// Attempted-frame throughput: attempted_frames / total_seconds. The wall
  /// clock covers every instance, so the numerator must too — dividing only
  /// succeeded frames by the full wall time (the old definition) understated
  /// throughput exactly when instances failed, which is the norm under
  /// overload.
  double frames_per_second = 0.0;
  /// Goodput: input frames of *succeeded* instances / total_seconds. Under
  /// overload this diverges from frames_per_second; a healthy run has the
  /// two equal.
  double goodput_frames_per_second = 0.0;
  ValidationStats validation;
  /// First error message, when failures occurred (lowest instance index, so
  /// the report is deterministic under parallel execution).
  std::string first_error;
  /// Driver threads that executed the measured window (1 = serial).
  int parallel_instances = 1;
  /// Executor counters for the measured window when it ran in parallel.
  PoolStats pool_stats;
  /// Engine counter deltas over the measured window (decode cache hit/miss,
  /// frames decoded/encoded); see EngineStats.
  systems::EngineStats engine_stats;
  /// Per-span-name totals of every trace span recorded while this batch ran
  /// (measured window plus validation). Empty when tracing is disabled.
  std::vector<trace::SpanTotal> stage_breakdown;
  /// Frames delivered degraded during the measured window: freeze-frame
  /// repeats from online sources plus VSS reads served past the transcode
  /// deadline. Counted per instance from the thread-scoped accounting
  /// (fault::ThreadDegraded), so each degraded frame is attributed exactly
  /// once even when other batches share the storage service concurrently.
  /// Zero on a fault-free run.
  int64_t frames_degraded = 0;
  /// Retry attempts (across every RetryPolicy site) during the measured
  /// window, attributed per instance the same way. Zero on a fault-free run.
  int64_t retries = 0;
  /// The engine's plan for this batch's first instance (VcdOptions::explain;
  /// empty otherwise, or when the engine does not plan).
  std::string plan_explain;
  /// Worker processes the measured window ran across (0 = in-process).
  int workers = 0;
  /// Distributed only: sum of worker-measured per-instance execution
  /// seconds — the compute the cluster spent, regardless of coordinator
  /// overhead. Feeds the scaling bench's makespan model.
  double worker_busy_seconds = 0.0;

  bool Supported() const { return unsupported < instances; }
};

/// Serving mode: one driver-level entry point that wires the traffic
/// generator, the query server, and the open-loop replayer together.
struct ServingRunOptions {
  server::ServerOptions server;
  server::TrafficOptions traffic;
  server::ReplayOptions replay;
};

/// The Visual City Driver (Section 3.2): samples query batches, submits them
/// to a VDBMS, measures runtime, and validates results against the reference
/// implementation. Batch entry points are not themselves thread-safe (one
/// measured window at a time per driver); concurrent batch execution is the
/// query server's job.
class VisualCityDriver {
 public:
  /// Constructor and destructor are out of line: the cluster member's type
  /// (dist::Coordinator) is only forward-declared here.
  VisualCityDriver(const sim::Dataset& dataset, const VcdOptions& options);
  ~VisualCityDriver();

  /// Number of instances per batch: 4L (Section 3.1) unless overridden.
  int BatchSize() const;

  /// Samples the batch for query `id` (deterministic in the VCD seed).
  StatusOr<std::vector<queries::QueryInstance>> SampleBatch(queries::QueryId id) const;

  /// Submits one query batch to `engine` and measures it.
  StatusOr<QueryBatchResult> RunQueryBatch(systems::Vdbms& engine,
                                           queries::QueryId id);

  /// Runs every benchmark query in submission order (Q1 first). When
  /// `trace_path` is set, finishes by writing the run's Chrome trace there.
  StatusOr<std::vector<QueryBatchResult>> RunBenchmark(systems::Vdbms& engine);

  /// Serving mode: stages storage, generates the seeded open-loop schedule,
  /// stands up a QueryServer over `engine`, and replays the schedule through
  /// it. Returns the serving report (latency percentiles, shed counts,
  /// goodput under the offered load).
  StatusOr<server::ServingReport> RunServing(systems::Vdbms& engine,
                                             const ServingRunOptions& run);

  /// Writes every span recorded so far as Chrome trace JSON to
  /// options().trace_path; no-op (Ok) when no path is configured.
  Status WriteTrace() const;

  /// Stages the dataset's camera streams into options().storage; no-op (Ok)
  /// when no storage service is configured. RunBenchmark calls this before
  /// its first batch; staging time is never part of a measured window.
  Status StageStorage();

  const VcdOptions& options() const { return options_; }
  const sim::Dataset& dataset() const { return *dataset_; }

 private:
  /// Computes the reference result and validates `output` against it.
  Status Validate(const queries::QueryInstance& instance,
                  const systems::QueryOutput& output, ValidationStats& stats) const;

  /// Input frames a query instance consumes (for the FPS metric).
  int64_t InputFrames(const queries::QueryInstance& instance) const;

  /// The driver-lifetime executor for parallel measured windows and
  /// validation, created on first use with options().parallel_instances
  /// workers. One pool for the driver's whole life — constructing a fresh
  /// pool per batch paid thread startup inside the measured window and made
  /// PoolStats lifetime-equal-batch by accident rather than by contract.
  ThreadPool& EnsurePool();

  /// Spawns (or reuses) the worker cluster for distributed batches: workers
  /// stage the dataset from shared storage when options().storage is set
  /// (see StageClusterDataset), else regenerate it, and construct `engine`'s
  /// architecture from VcdOptions::worker_engine_options. Cluster startup
  /// happens here, before any measured window; a cluster built for a
  /// different engine is torn down and rebuilt.
  Status EnsureCluster(systems::Vdbms& engine);

  /// Saves the dataset's containers into options().storage's backing store
  /// (idempotent) so staged workers can load them instead of regenerating.
  Status StageClusterDataset();

  const sim::Dataset* dataset_;
  VcdOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<dist::Coordinator> cluster_;
  std::string cluster_engine_;
};

}  // namespace visualroad::driver

#endif  // VISUALROAD_DRIVER_VCD_H_
