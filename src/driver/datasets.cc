#include "driver/datasets.h"

#include <algorithm>

#include "vision/overlay.h"

namespace visualroad::driver {

std::vector<NamedDataset> PregeneratedConfigs() {
  auto make = [](std::string name, int scale, int width, int height,
                 double duration) {
    NamedDataset dataset;
    dataset.name = std::move(name);
    dataset.config.scale_factor = scale;
    dataset.config.width = width;
    dataset.config.height = height;
    dataset.config.duration_seconds = duration;
    dataset.config.fps = 15.0;
    dataset.config.seed = 1;
    return dataset;
  };
  // Table 2, proportionally scaled (see header).
  return {
      make("1k-short", 2, 240, 136, 6.0),  make("1k-long", 4, 240, 136, 24.0),
      make("2k-short", 2, 480, 270, 6.0),  make("2k-long", 4, 480, 270, 24.0),
      make("4k-short", 2, 960, 540, 6.0),  make("4k-long", 4, 960, 540, 24.0),
  };
}

video::WebVttDocument GenerateRandomCaptions(Pcg32& rng, double duration) {
  static const char* kPhrases[] = {
      "NORTH AVE CAM 04",    "SPEED LIMIT 30",     "CITY TRANSIT FEED",
      "INCIDENT REPORTED",   "LANE CLOSED AHEAD",  "WEATHER ADVISORY",
      "SIGNAL MAINTENANCE",  "EVENT TRAFFIC",      "DETOUR IN EFFECT",
      "LIVE TRAFFIC 7",
  };
  video::WebVttDocument document;
  double t = 0.0;
  while (t < duration) {
    video::WebVttCue cue;
    cue.start_seconds = t;
    double length = rng.NextDouble(0.8, 2.5);
    cue.end_seconds = std::min(duration, t + length);
    cue.line_percent = rng.NextDouble(10.0, 90.0);
    cue.position_percent = rng.NextDouble(20.0, 80.0);
    cue.text = kPhrases[rng.NextBounded(10)];
    document.cues.push_back(cue);
    // Non-overlapping durations: the next cue starts after this one ends.
    t = cue.end_seconds + rng.NextDouble(0.2, 1.0);
  }
  return document;
}

void AttachCaptionTracks(sim::Dataset& dataset, uint64_t seed) {
  for (size_t i = 0; i < dataset.assets.size(); ++i) {
    sim::VideoAsset& asset = dataset.assets[i];
    if (asset.container.FindTrack("WVTT") != nullptr) continue;
    Pcg32 rng = SubStream(seed, "captions", i);
    double duration =
        asset.container.video.FrameCount() / std::max(1.0, asset.container.video.fps);
    std::string text = video::SerializeWebVtt(GenerateRandomCaptions(rng, duration));
    asset.container.tracks.push_back(video::container::MetadataTrack{
        "WVTT", std::vector<uint8_t>(text.begin(), text.end())});
  }
}

Status AttachBoxTracks(sim::Dataset& dataset,
                       const vision::DetectorOptions& detector_options) {
  vision::MiniYolo detector(detector_options);
  static const sim::FrameGroundTruth kEmpty;
  for (sim::VideoAsset& asset : dataset.assets) {
    if (asset.camera.kind != sim::CameraKind::kTraffic) continue;
    if (asset.container.FindTrack("BOXV") != nullptr) continue;
    VR_ASSIGN_OR_RETURN(video::Video decoded,
                        video::codec::Decode(asset.container.video));
    video::Video box_video;
    box_video.fps = decoded.fps;
    std::vector<std::vector<vision::Detection>> per_frame;
    for (int f = 0; f < decoded.FrameCount(); ++f) {
      const sim::FrameGroundTruth& truth =
          static_cast<size_t>(f) < asset.ground_truth.size()
              ? asset.ground_truth[static_cast<size_t>(f)]
              : kEmpty;
      // The offline box video carries every detected object (both classes,
      // each filled with its constant class colour).
      std::vector<vision::Detection> detections =
          detector.Detect(decoded.frames[static_cast<size_t>(f)], truth, f);
      box_video.frames.push_back(vision::RenderDetectionFrame(
          decoded.Width(), decoded.Height(), detections));
      per_frame.push_back(std::move(detections));
    }
    // Format 1: an encoded video. Encoded near-losslessly (QP 2): consumers
    // re-encode their joined output, and the two generations of codec noise
    // must together stay clear of the 40 dB validation bar. Flat box
    // regions encode tiny regardless of QP.
    video::codec::EncoderConfig codec;
    codec.profile = asset.container.video.profile;
    codec.qp = 2;
    VR_ASSIGN_OR_RETURN(video::codec::EncodedVideo encoded,
                        video::codec::Encode(box_video, codec));
    video::container::Container box_container;
    box_container.video = std::move(encoded);
    asset.container.tracks.push_back(video::container::MetadataTrack{
        "BOXV", video::container::Mux(box_container)});
    // Format 2: the serialized class-id + coordinate sequence.
    asset.container.tracks.push_back(video::container::MetadataTrack{
        "BOXS", vision::SerializeDetections(per_frame)});
  }
  return Status::Ok();
}

StatusOr<sim::Dataset> PrepareDataset(const sim::CityConfig& config,
                                      const sim::GeneratorOptions& options) {
  sim::VisualCityGenerator generator(options);
  VR_ASSIGN_OR_RETURN(sim::Dataset dataset, generator.Generate(config));
  AttachCaptionTracks(dataset, config.seed ^ 0xCAB71015);
  VR_RETURN_IF_ERROR(AttachBoxTracks(dataset));
  return dataset;
}

}  // namespace visualroad::driver
