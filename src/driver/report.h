#ifndef VISUALROAD_DRIVER_REPORT_H_
#define VISUALROAD_DRIVER_REPORT_H_

#include <string>
#include <vector>

#include "driver/vcd.h"

namespace visualroad::driver {

/// A minimal fixed-width text table used by the bench binaries to print
/// paper-style tables and figure series.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> cells);
  /// Appends a data row.
  void AddRow(std::vector<std::string> cells);
  /// Renders with column alignment and a header rule.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with adaptive precision ("3.42s", "128ms").
std::string FormatSeconds(double seconds);

/// Formats a ratio as the paper prints speedups ("0.9x", "26x").
std::string FormatRatio(double ratio);

/// Renders one phase's executor counters with its parallel efficiency, e.g.
/// "8 threads: 72 tasks, busy 3.20s / wall 0.48s (83% efficient), queue peak
/// 64". Efficiency is busy / (threads x wall), clamped to [0, 100%].
std::string FormatPoolStats(const PoolStats& stats, int threads,
                            double wall_seconds);

/// Renders a batch-result list as the standard per-query report (runtime,
/// FPS, validation summary).
std::string FormatBenchmarkReport(const std::vector<QueryBatchResult>& results);

/// Renders a serving run's outcome: offered/admitted/shed counts, latency
/// percentiles (p50/p95/p99), queueing delay, and attempted-vs-goodput
/// throughput.
std::string FormatServingReport(const server::ServingReport& report);

/// Renders one batch's trace-span totals as a stage-breakdown table
/// (Span | Count | Total | % of wall). Spans are inclusive, so nested stages
/// can sum past 100% of the batch wall-clock; the top rows still show where
/// the time went. Empty string when the batch recorded no spans.
std::string FormatStageBreakdown(const QueryBatchResult& result);

}  // namespace visualroad::driver

#endif  // VISUALROAD_DRIVER_REPORT_H_
