#include "driver/validation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "video/metrics.h"

namespace visualroad::driver {

void ValidationStats::Merge(const ValidationStats& other) {
  if (other.checked == 0) return;
  if (checked == 0) {
    *this = other;
    return;
  }
  min_psnr_db = std::min(min_psnr_db, other.min_psnr_db);
  max_psnr_db = std::max(max_psnr_db, other.max_psnr_db);
  mean_psnr_db = (mean_psnr_db * static_cast<double>(checked) +
                  other.mean_psnr_db * static_cast<double>(other.checked)) /
                 static_cast<double>(checked + other.checked);
  checked += other.checked;
  passed += other.passed;
}

StatusOr<ValidationStats> FrameValidate(const video::codec::EncodedVideo& actual,
                                        const video::Video& reference,
                                        double threshold_db) {
  if (reference.frames.empty()) {
    ValidationStats empty;
    // An empty reference validates an empty result.
    empty.checked = actual.FrameCount() == 0 ? 0 : 1;
    empty.passed = 0;
    return empty;
  }
  VR_ASSIGN_OR_RETURN(video::Video decoded, video::codec::Decode(actual));
  if (decoded.frames.size() != reference.frames.size()) {
    return Status::InvalidArgument("output frame count differs from reference");
  }
  ValidationStats stats;
  stats.min_psnr_db = std::numeric_limits<double>::infinity();
  stats.max_psnr_db = 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < decoded.frames.size(); ++i) {
    VR_ASSIGN_OR_RETURN(double psnr,
                        video::Psnr(decoded.frames[i], reference.frames[i]));
    psnr = std::min(psnr, 99.0);  // Finite cap for identical frames.
    ++stats.checked;
    if (psnr >= threshold_db) ++stats.passed;
    stats.min_psnr_db = std::min(stats.min_psnr_db, psnr);
    stats.max_psnr_db = std::max(stats.max_psnr_db, psnr);
    sum += psnr;
  }
  stats.mean_psnr_db = sum / static_cast<double>(stats.checked);
  return stats;
}

StatusOr<ValidationStats> SemanticValidate(
    const std::vector<std::vector<vision::Detection>>& detections,
    const std::vector<sim::FrameGroundTruth>& truth, sim::ObjectClass object_class,
    double epsilon) {
  ValidationStats stats;
  for (size_t f = 0; f < detections.size(); ++f) {
    static const sim::FrameGroundTruth kEmpty;
    const sim::FrameGroundTruth& gt = f < truth.size() ? truth[f] : kEmpty;
    for (const vision::Detection& detection : detections[f]) {
      if (detection.object_class != object_class) continue;
      ++stats.checked;
      // The VCD queries the scene geometry: is there a real object of this
      // class within the Jaccard tolerance?
      bool valid = false;
      for (const sim::GroundTruthBox& box : gt.boxes) {
        if (box.object_class != object_class) continue;
        if (JaccardDistance(detection.box, box.box) <= epsilon) {
          valid = true;
          break;
        }
      }
      if (valid) ++stats.passed;
    }
  }
  return stats;
}

StatusOr<ValidationStats> MaskValidate(const video::codec::EncodedVideo& actual,
                                       const video::Video& reference_mask,
                                       double min_agreement) {
  VR_ASSIGN_OR_RETURN(video::Video decoded, video::codec::Decode(actual));
  if (decoded.frames.size() != reference_mask.frames.size()) {
    return Status::InvalidArgument("mask output frame count differs from reference");
  }
  ValidationStats stats;
  for (size_t f = 0; f < decoded.frames.size(); ++f) {
    const video::Frame& a = decoded.frames[f];
    const video::Frame& b = reference_mask.frames[f];
    if (a.width() != b.width() || a.height() != b.height()) {
      return Status::InvalidArgument("mask output resolution differs");
    }
    int64_t agree = 0, total = 0;
    for (int y = 0; y < a.height(); ++y) {
      for (int x = 0; x < a.width(); ++x) {
        // A pixel is "masked" when near the black sentinel. The output has
        // been through a near-lossless encode, so compare with tolerance.
        bool a_masked = a.Y(x, y) < 16 && std::abs(a.U(x, y) - 128) < 12 &&
                        std::abs(a.V(x, y) - 128) < 12;
        bool b_masked = b.Y(x, y) < 16 && std::abs(b.U(x, y) - 128) < 12 &&
                        std::abs(b.V(x, y) - 128) < 12;
        agree += a_masked == b_masked ? 1 : 0;
        ++total;
      }
    }
    ++stats.checked;
    if (total > 0 &&
        static_cast<double>(agree) / static_cast<double>(total) >= min_agreement) {
      ++stats.passed;
    }
  }
  return stats;
}

double AveragePrecision(const std::vector<std::vector<vision::Detection>>& detections,
                        const std::vector<sim::FrameGroundTruth>& truth,
                        sim::ObjectClass object_class, double iou_threshold,
                        double min_visible_fraction) {
  // Pool (frame, detection) pairs ranked by confidence.
  struct Ranked {
    double score;
    size_t frame;
    const vision::Detection* detection;
  };
  std::vector<Ranked> ranked;
  for (size_t f = 0; f < detections.size(); ++f) {
    for (const vision::Detection& d : detections[f]) {
      if (d.object_class == object_class) ranked.push_back({d.score, f, &d});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.score > b.score; });

  // Count ground-truth positives (sufficiently visible objects).
  int64_t positives = 0;
  std::vector<std::vector<bool>> matched(truth.size());
  for (size_t f = 0; f < truth.size(); ++f) {
    matched[f].assign(truth[f].boxes.size(), false);
    for (const sim::GroundTruthBox& box : truth[f].boxes) {
      if (box.object_class == object_class &&
          box.visible_fraction >= min_visible_fraction) {
        ++positives;
      }
    }
  }
  if (positives == 0) return 0.0;

  // Sweep the ranked list accumulating precision/recall points.
  std::vector<double> precision, recall;
  int64_t tp = 0, fp = 0;
  for (const Ranked& r : ranked) {
    bool is_tp = false;
    if (r.frame < truth.size()) {
      const sim::FrameGroundTruth& gt = truth[r.frame];
      for (size_t b = 0; b < gt.boxes.size(); ++b) {
        const sim::GroundTruthBox& box = gt.boxes[b];
        if (box.object_class != object_class || matched[r.frame][b]) continue;
        if (box.visible_fraction < min_visible_fraction) continue;
        if (IoU(r.detection->box, box.box) >= iou_threshold) {
          matched[r.frame][b] = true;
          is_tp = true;
          break;
        }
      }
    }
    if (is_tp) {
      ++tp;
    } else {
      ++fp;
    }
    precision.push_back(static_cast<double>(tp) / static_cast<double>(tp + fp));
    recall.push_back(static_cast<double>(tp) / static_cast<double>(positives));
  }

  // Interpolated AP: monotone precision envelope (suffix max), then the
  // rectangle sum over recall increments.
  std::vector<double> envelope(precision.size());
  double running_max = 0.0;
  for (size_t i = precision.size(); i-- > 0;) {
    running_max = std::max(running_max, precision[i]);
    envelope[i] = running_max;
  }
  double ap = 0.0;
  double previous_recall = 0.0;
  for (size_t i = 0; i < envelope.size(); ++i) {
    ap += envelope[i] * (recall[i] - previous_recall);
    previous_recall = recall[i];
  }
  return ap;
}

}  // namespace visualroad::driver
