#include "driver/conformance.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "driver/report.h"

namespace visualroad::driver {

bool ConformanceReport::Passed() const {
  for (const QueryBatchResult& result : results) {
    if (!result.Supported()) continue;
    if (result.failed > 0 && result.resource_exhausted < result.failed) return false;
    if (result.validation.checked == 0) continue;
    if (queries::ValidationFor(result.id) == queries::ValidationKind::kSemantic) {
      // Semantic validation is statistical: the specified detector has a
      // false-positive rate by design, so conformance requires a high pass
      // rate over a meaningful sample, not perfection.
      if (result.validation.checked >= 5 && result.validation.PassRate() < 0.8) {
        return false;
      }
    } else if (result.validation.passed < result.validation.checked) {
      return false;
    }
  }
  return true;
}

int ConformanceReport::SupportedQueryCount() const {
  int count = 0;
  for (const QueryBatchResult& result : results) {
    if (result.Supported()) ++count;
  }
  return count;
}

ConformanceReport BuildConformanceReport(const sim::Dataset& dataset,
                                         const VcdOptions& options,
                                         const std::string& system_name,
                                         std::vector<QueryBatchResult> results) {
  ConformanceReport report;
  report.system_name = system_name;
  report.scale_factor = dataset.config.scale_factor;
  report.width = dataset.config.width;
  report.height = dataset.config.height;
  report.duration_seconds = dataset.config.duration_seconds;
  report.fps = dataset.config.fps;
  report.seed = dataset.config.seed;
  report.execution_mode = options.execution_mode;
  report.output_mode = options.output_mode;
  report.results = std::move(results);
  return report;
}

std::string FormatConformanceReport(const ConformanceReport& report) {
  std::ostringstream out;
  out << "=== " << report.benchmark_version << " conformance report ===\n";
  out << "System:      " << report.system_name << "\n";
  char line[160];
  std::snprintf(line, sizeof(line),
                "Elections:   L=%d, R=%dx%d, t=%.1fs @ %.0f FPS, seed=%llu\n",
                report.scale_factor, report.width, report.height,
                report.duration_seconds, report.fps,
                static_cast<unsigned long long>(report.seed));
  out << line;
  out << "Modes:       "
      << (report.execution_mode == systems::ExecutionMode::kOffline ? "offline"
                                                                    : "online")
      << " execution, "
      << (report.output_mode == systems::OutputMode::kWrite ? "write" : "streaming")
      << " output\n";
  out << "Supported:   " << report.SupportedQueryCount() << "/"
      << report.results.size() << " queries\n";
  out << "Outcome:     " << (report.Passed() ? "PASS" : "FAIL") << "\n\n";
  out << FormatBenchmarkReport(report.results);
  return out.str();
}

std::string SerializeConformanceReport(const ConformanceReport& report) {
  std::ostringstream out;
  out << "version=" << report.benchmark_version << "\n";
  out << "system=" << report.system_name << "\n";
  out << "scale=" << report.scale_factor << "\n";
  out << "width=" << report.width << "\n";
  out << "height=" << report.height << "\n";
  out << "duration=" << report.duration_seconds << "\n";
  out << "fps=" << report.fps << "\n";
  out << "seed=" << report.seed << "\n";
  out << "execution=" << static_cast<int>(report.execution_mode) << "\n";
  out << "output=" << static_cast<int>(report.output_mode) << "\n";
  for (const QueryBatchResult& result : report.results) {
    out << "query=" << queries::QueryName(result.id)
        << ";instances=" << result.instances << ";succeeded=" << result.succeeded
        << ";unsupported=" << result.unsupported << ";failed=" << result.failed
        << ";oom=" << result.resource_exhausted
        << ";seconds=" << result.total_seconds << ";fps=" << result.frames_per_second
        << ";checked=" << result.validation.checked
        << ";passed=" << result.validation.passed
        << ";mean_psnr=" << result.validation.mean_psnr_db << "\n";
  }
  return out.str();
}

namespace {

/// Parses "key=value" off a line; returns false when the prefix mismatches.
bool TakeValue(const std::string& line, const char* key, std::string& value) {
  std::string prefix = std::string(key) + "=";
  if (line.rfind(prefix, 0) != 0) return false;
  value = line.substr(prefix.size());
  return true;
}

/// Parses one ";"-separated field list of a query record into a map.
std::map<std::string, std::string> ParseFields(const std::string& text) {
  std::map<std::string, std::string> fields;
  std::istringstream in(text);
  std::string field;
  while (std::getline(in, field, ';')) {
    size_t eq = field.find('=');
    if (eq != std::string::npos) {
      fields[field.substr(0, eq)] = field.substr(eq + 1);
    }
  }
  return fields;
}

queries::QueryId QueryIdFromName(const std::string& name) {
  for (queries::QueryId id : queries::AllQueries()) {
    if (name == queries::QueryName(id)) return id;
  }
  return queries::QueryId::kQ1;
}

}  // namespace

StatusOr<ConformanceReport> ParseConformanceReport(const std::string& text) {
  ConformanceReport report;
  std::istringstream in(text);
  std::string line, value;
  bool saw_version = false;
  while (std::getline(in, line)) {
    if (TakeValue(line, "version", value)) {
      report.benchmark_version = value;
      saw_version = true;
    } else if (TakeValue(line, "system", value)) {
      report.system_name = value;
    } else if (TakeValue(line, "scale", value)) {
      report.scale_factor = std::atoi(value.c_str());
    } else if (TakeValue(line, "width", value)) {
      report.width = std::atoi(value.c_str());
    } else if (TakeValue(line, "height", value)) {
      report.height = std::atoi(value.c_str());
    } else if (TakeValue(line, "duration", value)) {
      report.duration_seconds = std::atof(value.c_str());
    } else if (TakeValue(line, "fps", value)) {
      report.fps = std::atof(value.c_str());
    } else if (TakeValue(line, "seed", value)) {
      report.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (TakeValue(line, "execution", value)) {
      report.execution_mode = static_cast<systems::ExecutionMode>(std::atoi(value.c_str()));
    } else if (TakeValue(line, "output", value)) {
      report.output_mode = static_cast<systems::OutputMode>(std::atoi(value.c_str()));
    } else if (line.rfind("query=", 0) == 0) {
      std::map<std::string, std::string> fields = ParseFields(line);
      QueryBatchResult result;
      result.id = QueryIdFromName(fields["query"]);
      result.engine = report.system_name;
      result.instances = std::atoi(fields["instances"].c_str());
      result.succeeded = std::atoi(fields["succeeded"].c_str());
      result.unsupported = std::atoi(fields["unsupported"].c_str());
      result.failed = std::atoi(fields["failed"].c_str());
      result.resource_exhausted = std::atoi(fields["oom"].c_str());
      result.total_seconds = std::atof(fields["seconds"].c_str());
      result.frames_per_second = std::atof(fields["fps"].c_str());
      result.validation.checked = std::atoll(fields["checked"].c_str());
      result.validation.passed = std::atoll(fields["passed"].c_str());
      result.validation.mean_psnr_db = std::atof(fields["mean_psnr"].c_str());
      report.results.push_back(std::move(result));
    }
  }
  if (!saw_version) return Status::InvalidArgument("not a conformance report");
  return report;
}

}  // namespace visualroad::driver
