#ifndef VISUALROAD_DRIVER_CONFORMANCE_H_
#define VISUALROAD_DRIVER_CONFORMANCE_H_

#include <string>
#include <vector>

#include "driver/vcd.h"

namespace visualroad::driver {

/// A complete benchmark conformance report, as Section 3.2 requires an
/// evaluator to publish: per-query validation descriptive statistics, the
/// performance figures (total runtime / frames per second), and the global
/// elections — scale factor, resolution, duration, and execution mode.
struct ConformanceReport {
  std::string system_name;
  std::string benchmark_version = "VisualRoad-1.0 (C++ reproduction)";
  // Global elections.
  int scale_factor = 0;
  int width = 0;
  int height = 0;
  double duration_seconds = 0.0;
  double fps = 0.0;
  uint64_t seed = 0;
  systems::ExecutionMode execution_mode = systems::ExecutionMode::kOffline;
  systems::OutputMode output_mode = systems::OutputMode::kWrite;
  // Per-query outcomes, in submission order.
  std::vector<QueryBatchResult> results;

  /// True when every supported query succeeded and every validated result
  /// passed its threshold.
  bool Passed() const;
  /// Number of queries the system could express at all.
  int SupportedQueryCount() const;
};

/// Assembles the report from a finished benchmark run.
ConformanceReport BuildConformanceReport(const sim::Dataset& dataset,
                                         const VcdOptions& options,
                                         const std::string& system_name,
                                         std::vector<QueryBatchResult> results);

/// Renders the report for publication (the text form an evaluator would
/// attach to results, e.g. "We executed Visual Road 1.0 with scale L,
/// resolution R, duration t, and seed s").
std::string FormatConformanceReport(const ConformanceReport& report);

/// Machine-readable serialisation (line-oriented key=value records), and
/// its parser — lets published results be diffed and re-checked.
std::string SerializeConformanceReport(const ConformanceReport& report);
StatusOr<ConformanceReport> ParseConformanceReport(const std::string& text);

}  // namespace visualroad::driver

#endif  // VISUALROAD_DRIVER_CONFORMANCE_H_
