#include "driver/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace visualroad::driver {

void TextTable::SetHeader(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns; ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    out << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0fms", seconds * 1e3);
  } else if (seconds < 100.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0fs", seconds);
  }
  return buffer;
}

std::string FormatRatio(double ratio) {
  char buffer[32];
  if (ratio >= 9.95) {
    std::snprintf(buffer, sizeof(buffer), "%.0fx", ratio);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1fx", ratio);
  }
  return buffer;
}

std::string FormatBenchmarkReport(const std::vector<QueryBatchResult>& results) {
  TextTable table;
  table.SetHeader({"Query", "Engine", "Batch", "Runtime", "FPS", "Validation"});
  for (const QueryBatchResult& result : results) {
    std::string validation;
    if (!result.Supported()) {
      validation = "unsupported";
    } else if (result.resource_exhausted == result.failed && result.failed > 0) {
      validation = "N/A (out of memory)";
    } else if (result.failed > 0) {
      validation = "FAILED: " + result.first_error;
    } else if (result.validation.checked == 0) {
      validation = "-";
    } else {
      char buffer[64];
      if (result.validation.mean_psnr_db > 0.0) {
        std::snprintf(buffer, sizeof(buffer), "%.0f%% pass (%.1f dB mean)",
                      result.validation.PassRate() * 100.0,
                      result.validation.mean_psnr_db);
      } else {
        std::snprintf(buffer, sizeof(buffer), "%.0f%% pass (semantic)",
                      result.validation.PassRate() * 100.0);
      }
      validation = buffer;
    }
    char fps[32];
    std::snprintf(fps, sizeof(fps), "%.0f", result.frames_per_second);
    table.AddRow({queries::QueryName(result.id), result.engine,
                  std::to_string(result.instances),
                  result.Supported() ? FormatSeconds(result.total_seconds) : "N/A",
                  result.Supported() ? fps : "-", validation});
  }
  return table.ToString();
}

}  // namespace visualroad::driver
