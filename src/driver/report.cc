#include "driver/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace visualroad::driver {

void TextTable::SetHeader(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns; ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    out << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0fms", seconds * 1e3);
  } else if (seconds < 100.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0fs", seconds);
  }
  return buffer;
}

std::string FormatRatio(double ratio) {
  char buffer[32];
  if (ratio >= 9.95) {
    std::snprintf(buffer, sizeof(buffer), "%.0fx", ratio);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1fx", ratio);
  }
  return buffer;
}

std::string FormatPoolStats(const PoolStats& stats, int threads,
                            double wall_seconds) {
  double efficiency = 0.0;
  if (threads > 0 && wall_seconds > 0.0) {
    efficiency = stats.busy_seconds / (threads * wall_seconds);
    efficiency = std::min(1.0, std::max(0.0, efficiency));
  }
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%d thread%s: %lld tasks, busy %s / wall %s (%.0f%% efficient), "
                "queue peak %lld, %lld failed",
                threads, threads == 1 ? "" : "s",
                static_cast<long long>(stats.tasks_executed),
                FormatSeconds(stats.busy_seconds).c_str(),
                FormatSeconds(wall_seconds).c_str(), efficiency * 100.0,
                static_cast<long long>(stats.queue_peak),
                static_cast<long long>(stats.tasks_failed));
  return buffer;
}

std::string FormatBenchmarkReport(const std::vector<QueryBatchResult>& results) {
  TextTable table;
  table.SetHeader({"Query", "Engine", "Batch", "Runtime", "FPS", "Goodput",
                   "Validation", "Parallel", "Cache", "Faults"});
  for (const QueryBatchResult& result : results) {
    std::string validation;
    if (!result.Supported()) {
      validation = "unsupported";
    } else if (result.resource_exhausted == result.failed && result.failed > 0) {
      validation = "N/A (out of memory)";
    } else if (result.failed > 0) {
      validation = "FAILED: " + result.first_error;
    } else if (result.validation.checked == 0) {
      validation = "-";
    } else {
      char buffer[64];
      if (result.validation.mean_psnr_db > 0.0) {
        std::snprintf(buffer, sizeof(buffer), "%.0f%% pass (%.1f dB mean)",
                      result.validation.PassRate() * 100.0,
                      result.validation.mean_psnr_db);
      } else {
        std::snprintf(buffer, sizeof(buffer), "%.0f%% pass (semantic)",
                      result.validation.PassRate() * 100.0);
      }
      validation = buffer;
    }
    char fps[32];
    std::snprintf(fps, sizeof(fps), "%.0f", result.frames_per_second);
    // Goodput (succeeded-instance frames per second) separates useful work
    // from attempted throughput; the columns match on a failure-free batch.
    char goodput[32];
    std::snprintf(goodput, sizeof(goodput), "%.0f",
                  result.goodput_frames_per_second);
    // Per-batch parallel efficiency: how busy the driver's instance pool
    // kept its workers during the measured window.
    std::string parallel = "-";
    if (result.parallel_instances > 1 && result.total_seconds > 0.0) {
      double efficiency =
          result.pool_stats.busy_seconds /
          (result.parallel_instances * result.total_seconds);
      efficiency = std::min(1.0, std::max(0.0, efficiency));
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "%d thr, %.0f%% busy",
                    result.parallel_instances, efficiency * 100.0);
      parallel = buffer;
    }
    // Decode-cache hit rate over the measured window: how much of the batch's
    // decode demand the shared GOP cache absorbed.
    std::string cache = "-";
    int64_t lookups =
        result.engine_stats.cache_hits + result.engine_stats.cache_misses;
    if (lookups > 0) {
      char buffer[96];
      std::snprintf(buffer, sizeof(buffer), "%.0f%% hit (%lld/%lld)",
                    100.0 * static_cast<double>(result.engine_stats.cache_hits) /
                        static_cast<double>(lookups),
                    static_cast<long long>(result.engine_stats.cache_hits),
                    static_cast<long long>(lookups));
      cache = buffer;
    }
    // Robustness accounting: retries absorbed and frames served degraded
    // during the measured window. A clean run shows "-".
    std::string faults = "-";
    if (result.retries > 0 || result.frames_degraded > 0) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%lld retries, %lld degraded",
                    static_cast<long long>(result.retries),
                    static_cast<long long>(result.frames_degraded));
      faults = buffer;
    }
    table.AddRow({queries::QueryName(result.id), result.engine,
                  std::to_string(result.instances),
                  result.Supported() ? FormatSeconds(result.total_seconds) : "N/A",
                  result.Supported() ? fps : "-",
                  result.Supported() ? goodput : "-", validation, parallel,
                  cache, faults});
  }
  return table.ToString();
}

std::string FormatServingReport(const server::ServingReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "Serving: %lld offered over %s (%.1f batches/s), "
                "%lld admitted, %lld shed (%lld tenant-queue, %lld server-queue)\n",
                static_cast<long long>(report.offered_batches),
                FormatSeconds(report.wall_seconds).c_str(),
                report.offered_per_second,
                static_cast<long long>(report.admitted_batches),
                static_cast<long long>(report.shed_batches),
                static_cast<long long>(report.server.admission.shed_tenant),
                static_cast<long long>(report.server.admission.shed_server));
  out += line;
  std::snprintf(line, sizeof(line),
                "Queries: %lld ok, %lld failed, %lld unsupported; "
                "queue depth peak %d\n",
                static_cast<long long>(report.succeeded_queries),
                static_cast<long long>(report.failed_queries),
                static_cast<long long>(report.unsupported_queries),
                report.server.queue_depth_peak);
  out += line;
  std::snprintf(line, sizeof(line),
                "Latency: p50 %s, p95 %s, p99 %s, max %s "
                "(queued p50 %s, p99 %s)\n",
                FormatSeconds(report.latency.p50_seconds).c_str(),
                FormatSeconds(report.latency.p95_seconds).c_str(),
                FormatSeconds(report.latency.p99_seconds).c_str(),
                FormatSeconds(report.latency.max_seconds).c_str(),
                FormatSeconds(report.queue_latency.p50_seconds).c_str(),
                FormatSeconds(report.queue_latency.p99_seconds).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "Throughput: %.0f frames/s attempted, %.0f frames/s goodput\n",
                report.attempted_frames_per_second,
                report.goodput_frames_per_second);
  out += line;
  return out;
}

std::string FormatStageBreakdown(const QueryBatchResult& result) {
  if (result.stage_breakdown.empty()) return "";
  TextTable table;
  table.SetHeader({"Span", "Count", "Total", "% of wall"});
  for (const trace::SpanTotal& total : result.stage_breakdown) {
    std::string share = "-";
    if (result.total_seconds > 0.0) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.0f%%",
                    100.0 * total.total_seconds / result.total_seconds);
      share = buffer;
    }
    table.AddRow({total.name, std::to_string(total.count),
                  FormatSeconds(total.total_seconds), share});
  }
  return table.ToString();
}

}  // namespace visualroad::driver
