#ifndef VISUALROAD_DRIVER_DATASET_IO_H_
#define VISUALROAD_DRIVER_DATASET_IO_H_

#include <string>

#include "simulation/generator.h"
#include "storage/sharded_store.h"
#include "storage/vss.h"

namespace visualroad::driver {

/// Persists a generated dataset: one container file per camera video plus a
/// dataset manifest carrying the configuration and camera placements. This
/// is how the VCD stages inputs on storage before offline benchmarking
/// (Section 3.2) — pregenerated datasets (Table 2) are shipped this way.
Status SaveDataset(const sim::Dataset& dataset, const std::string& directory);

/// Loads a dataset saved by SaveDataset, reconstructing ground truth from
/// the embedded "GTRU" tracks.
StatusOr<sim::Dataset> LoadDataset(const std::string& directory);

/// Stores a dataset into a sharded (HDFS-like) store, for the distributed
/// offline mode.
Status SaveDatasetSharded(const sim::Dataset& dataset,
                          storage::ShardedStore& store);

/// Loads a dataset from a sharded store.
StatusOr<sim::Dataset> LoadDatasetSharded(const storage::ShardedStore& store);

/// Ingests every camera video of `dataset` into the storage service as its
/// base variant, named CameraStreamName(camera_id). Streams the service
/// already holds at the same frame count are left untouched, so re-staging
/// a dataset is idempotent and keeps cached transcoded variants.
Status IngestDatasetVss(const sim::Dataset& dataset,
                        storage::VideoStorageService& vss);

/// Serialises/parses the dataset manifest (config + camera placements).
std::vector<uint8_t> SerializeDatasetManifest(const sim::Dataset& dataset);
StatusOr<sim::Dataset> ParseDatasetManifest(const std::vector<uint8_t>& bytes);

}  // namespace visualroad::driver

#endif  // VISUALROAD_DRIVER_DATASET_IO_H_
