#include "driver/dataset_io.h"

#include <filesystem>
#include <fstream>

#include "common/serialize.h"
#include "simulation/ground_truth.h"

namespace visualroad::driver {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kManifestMagic = 0x56524453;  // "VRDS".

std::string AssetFileName(int index) {
  return "video_" + std::to_string(index) + ".vrmp";
}

void WriteCamera(ByteWriter& writer, const sim::CameraPlacement& camera) {
  writer.I32(camera.camera_id);
  writer.I32(camera.tile_index);
  writer.U8(static_cast<uint8_t>(camera.kind));
  writer.I32(camera.pano_group);
  writer.I32(camera.pano_face);
  writer.F64(camera.pose.position.x);
  writer.F64(camera.pose.position.y);
  writer.F64(camera.pose.position.z);
  writer.F64(camera.pose.yaw);
  writer.F64(camera.pose.pitch);
  writer.F64(camera.fov_deg);
}

sim::CameraPlacement ReadCamera(ByteCursor& cursor) {
  sim::CameraPlacement camera;
  camera.camera_id = cursor.I32();
  camera.tile_index = cursor.I32();
  camera.kind = static_cast<sim::CameraKind>(cursor.U8());
  camera.pano_group = cursor.I32();
  camera.pano_face = cursor.I32();
  camera.pose.position.x = cursor.F64();
  camera.pose.position.y = cursor.F64();
  camera.pose.position.z = cursor.F64();
  camera.pose.yaw = cursor.F64();
  camera.pose.pitch = cursor.F64();
  camera.fov_deg = cursor.F64();
  return camera;
}

/// Restores an asset's in-memory ground truth from its GTRU track.
Status RestoreGroundTruth(sim::VideoAsset& asset) {
  const video::container::MetadataTrack* track = asset.container.FindTrack("GTRU");
  if (track == nullptr) return Status::Ok();  // Annotation-free corpus.
  VR_ASSIGN_OR_RETURN(asset.ground_truth, sim::ParseGroundTruth(track->payload));
  return Status::Ok();
}

}  // namespace

std::vector<uint8_t> SerializeDatasetManifest(const sim::Dataset& dataset) {
  ByteWriter writer;
  writer.U32(kManifestMagic);
  const sim::CityConfig& config = dataset.config;
  writer.I32(config.scale_factor);
  writer.I32(config.width);
  writer.I32(config.height);
  writer.F64(config.duration_seconds);
  writer.F64(config.fps);
  writer.U64(config.seed);
  writer.I32(config.traffic_cameras_per_tile);
  writer.I32(config.panoramic_cameras_per_tile);
  writer.U32(static_cast<uint32_t>(dataset.assets.size()));
  for (const sim::VideoAsset& asset : dataset.assets) {
    WriteCamera(writer, asset.camera);
  }
  return writer.Take();
}

StatusOr<sim::Dataset> ParseDatasetManifest(const std::vector<uint8_t>& bytes) {
  ByteCursor cursor(bytes);
  if (cursor.U32() != kManifestMagic) {
    return Status::DataLoss("bad dataset manifest magic");
  }
  sim::Dataset dataset;
  dataset.config.scale_factor = cursor.I32();
  dataset.config.width = cursor.I32();
  dataset.config.height = cursor.I32();
  dataset.config.duration_seconds = cursor.F64();
  dataset.config.fps = cursor.F64();
  dataset.config.seed = cursor.U64();
  dataset.config.traffic_cameras_per_tile = cursor.I32();
  dataset.config.panoramic_cameras_per_tile = cursor.I32();
  uint32_t asset_count = cursor.U32();
  dataset.assets.resize(asset_count);
  for (uint32_t i = 0; i < asset_count; ++i) {
    dataset.assets[i].camera = ReadCamera(cursor);
  }
  if (!cursor.ok()) return Status::DataLoss("truncated dataset manifest");
  return dataset;
}

Status SaveDataset(const sim::Dataset& dataset, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return Status::IoError("cannot create dataset directory: " + directory);

  std::vector<uint8_t> manifest = SerializeDatasetManifest(dataset);
  {
    std::ofstream file(directory + "/dataset.vrds",
                       std::ios::binary | std::ios::trunc);
    if (!file) return Status::IoError("cannot write dataset manifest");
    file.write(reinterpret_cast<const char*>(manifest.data()),
               static_cast<std::streamsize>(manifest.size()));
  }
  for (size_t i = 0; i < dataset.assets.size(); ++i) {
    VR_RETURN_IF_ERROR(video::container::WriteContainerFile(
        dataset.assets[i].container,
        directory + "/" + AssetFileName(static_cast<int>(i))));
  }
  return Status::Ok();
}

StatusOr<sim::Dataset> LoadDataset(const std::string& directory) {
  std::ifstream file(directory + "/dataset.vrds", std::ios::binary | std::ios::ate);
  if (!file) return Status::NotFound("no dataset manifest in " + directory);
  std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<uint8_t> manifest(static_cast<size_t>(size));
  if (!file.read(reinterpret_cast<char*>(manifest.data()), size)) {
    return Status::IoError("manifest read failed");
  }
  VR_ASSIGN_OR_RETURN(sim::Dataset dataset, ParseDatasetManifest(manifest));
  for (size_t i = 0; i < dataset.assets.size(); ++i) {
    VR_ASSIGN_OR_RETURN(dataset.assets[i].container,
                        video::container::ReadContainerFile(
                            directory + "/" + AssetFileName(static_cast<int>(i))));
    VR_RETURN_IF_ERROR(RestoreGroundTruth(dataset.assets[i]));
  }
  return dataset;
}

Status SaveDatasetSharded(const sim::Dataset& dataset,
                          storage::ShardedStore& store) {
  VR_RETURN_IF_ERROR(store.Put("dataset.vrds", SerializeDatasetManifest(dataset)));
  for (size_t i = 0; i < dataset.assets.size(); ++i) {
    VR_RETURN_IF_ERROR(
        store.Put(AssetFileName(static_cast<int>(i)),
                  video::container::Mux(dataset.assets[i].container)));
  }
  return Status::Ok();
}

Status IngestDatasetVss(const sim::Dataset& dataset,
                        storage::VideoStorageService& vss) {
  for (const sim::VideoAsset& asset : dataset.assets) {
    const std::string name = storage::CameraStreamName(asset.camera.camera_id);
    if (vss.Contains(name)) {
      VR_ASSIGN_OR_RETURN(storage::CatalogEntry entry, vss.Describe(name));
      if (entry.frame_count == asset.container.video.FrameCount()) continue;
    }
    VR_RETURN_IF_ERROR(vss.Ingest(name, asset.container.video));
  }
  return Status::Ok();
}

StatusOr<sim::Dataset> LoadDatasetSharded(const storage::ShardedStore& store) {
  VR_ASSIGN_OR_RETURN(std::vector<uint8_t> manifest, store.Get("dataset.vrds"));
  VR_ASSIGN_OR_RETURN(sim::Dataset dataset, ParseDatasetManifest(manifest));
  for (size_t i = 0; i < dataset.assets.size(); ++i) {
    VR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                        store.Get(AssetFileName(static_cast<int>(i))));
    VR_ASSIGN_OR_RETURN(dataset.assets[i].container,
                        video::container::Demux(bytes));
    VR_RETURN_IF_ERROR(RestoreGroundTruth(dataset.assets[i]));
  }
  return dataset;
}

}  // namespace visualroad::driver
