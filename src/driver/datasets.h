#ifndef VISUALROAD_DRIVER_DATASETS_H_
#define VISUALROAD_DRIVER_DATASETS_H_

#include <string>
#include <vector>

#include "simulation/generator.h"
#include "video/webvtt.h"
#include "vision/miniyolo.h"

namespace visualroad::driver {

/// A named dataset configuration (Table 2).
struct NamedDataset {
  std::string name;
  sim::CityConfig config;
};

/// The six pregenerated dataset configurations of Table 2, proportionally
/// scaled for a single-machine reproduction: resolutions are 1/4 linear
/// (1k: 960x540 -> 240x136) and durations map 15 min -> 6 s and
/// 60 min -> 24 s. The L (scale factor) values match the paper exactly.
/// The mapping is recorded in EXPERIMENTS.md.
std::vector<NamedDataset> PregeneratedConfigs();

/// Generates a random caption document for a video of `duration` seconds:
/// randomly positioned, non-overlapping cues (Section 4.1.1, Q6(b)).
video::WebVttDocument GenerateRandomCaptions(Pcg32& rng, double duration);

/// Attaches a randomly generated "WVTT" caption track to every asset of the
/// dataset (the VCD's Q6(b) preparation step). Deterministic in `seed`.
void AttachCaptionTracks(sim::Dataset& dataset, uint64_t seed);

/// Attaches the Q6(a) inputs to every traffic asset: the bounding-box video
/// B = Q2c(V_i), "generated offline by the VCD by applying the reference
/// implementation of Q2(c)" (Section 4.1.1), in both formats the VCD
/// exposes — an encoded video ("BOXV" track, containing both object
/// classes) and a serialized detection sequence ("BOXS" track). Engines may
/// consume either when executing Q6(a).
Status AttachBoxTracks(sim::Dataset& dataset,
                       const vision::DetectorOptions& detector_options = {});

/// Convenience: generates the dataset for `config` and attaches caption
/// tracks, returning a corpus ready for the driver.
StatusOr<sim::Dataset> PrepareDataset(const sim::CityConfig& config,
                                      const sim::GeneratorOptions& options = {});

}  // namespace visualroad::driver

#endif  // VISUALROAD_DRIVER_DATASETS_H_
