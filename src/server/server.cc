#include "server/server.h"

#include <algorithm>
#include <utility>

#include "common/fault.h"
#include "common/trace.h"

namespace visualroad::server {

namespace {

metrics::Counter& ServerCounter(const std::string& name, const std::string& help,
                                const std::string& labels = "") {
  return metrics::MetricsRegistry::Global().GetCounter(name, help, labels);
}

int ResolveMaxQueries(const ServerOptions& options, const systems::Vdbms& engine) {
  int cap = options.max_concurrent_queries > 0 ? options.max_concurrent_queries
                                               : options.worker_threads;
  cap = std::max(1, cap);
  // Engines that do not opt into concurrent Execute stay serial; the server
  // still overlaps queueing and admission with execution.
  if (!engine.ConcurrentSafe()) cap = 1;
  return cap;
}

}  // namespace

/// One submitted batch: the middle level of the execution tree. The owning
/// session holds it while queued/running; dispatched pool tasks hold a
/// shared_ptr so the node (and its promise) outlives early detachment.
struct QueryServer::Session::Batch {
  int64_t id = 0;
  Session* session = nullptr;
  std::vector<queries::QueryInstance> instances;
  std::promise<ServedBatch> promise;
  ServedBatch result;
  /// Next instance to dispatch.
  size_t next_query = 0;
  /// Instances finished (any status).
  size_t done = 0;
  /// Instances currently executing.
  int running = 0;
  /// Ticks from admission; reads give queue_seconds and total_seconds.
  Stopwatch since_submit;
};

QueryServer::QueryServer(const sim::Dataset& dataset, systems::Vdbms& engine,
                         const ServerOptions& options)
    : dataset_(&dataset),
      engine_(&engine),
      options_(options),
      max_queries_(ResolveMaxQueries(options, engine)),
      admission_(options.max_total_queued),
      metrics_{
          ServerCounter("vr_server_sessions_total", "Tenant sessions opened"),
          ServerCounter("vr_server_batches_submitted_total",
                        "Batches offered to Submit (admitted or shed)"),
          ServerCounter("vr_server_batches_admitted_total",
                        "Batches admitted into a tenant queue"),
          ServerCounter("vr_server_batches_shed_total",
                        "Batches shed by admission control, by reason",
                        "reason=\"tenant_queue\""),
          ServerCounter("vr_server_batches_shed_total",
                        "Batches shed by admission control, by reason",
                        "reason=\"server_queue\""),
          ServerCounter("vr_server_batches_completed_total",
                        "Batches finalized (future fulfilled)"),
          ServerCounter("vr_server_queries_total",
                        "Query instances the server finished executing"),
          metrics::MetricsRegistry::Global().GetGauge(
              "vr_server_queue_depth_peak",
              "High-water mark of queued batches across all tenants"),
          metrics::MetricsRegistry::Global().GetHistogram(
              "vr_server_batch_seconds",
              "Batch latency from admission to completion (seconds)",
              {0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 30, 60}),
      },
      pool_(std::max(1, options.worker_threads), "server") {}

QueryServer::~QueryServer() { Drain(); }

QueryServer::Session& QueryServer::OpenSession(const TenantOptions& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto session = std::make_unique<Session>();
  session->tenant_ = tenant;
  session->index_ = static_cast<int>(sessions_.size());
  metrics_.sessions.Increment();
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

StatusOr<std::future<ServedBatch>> QueryServer::Submit(
    Session& session, std::vector<queries::QueryInstance> instances) {
  TRACE_SPAN("server:submit");
  if (instances.empty()) {
    return Status::InvalidArgument("empty batch submitted");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.submitted.Increment();
  Status admitted =
      admission_.Admit(session.tenant_, static_cast<int>(session.queued_.size()));
  if (!admitted.ok()) {
    (session.queued_.size() >=
             static_cast<size_t>(std::max(0, session.tenant_.max_queued_batches))
         ? metrics_.shed_tenant
         : metrics_.shed_server)
        .Increment();
    return admitted;
  }
  metrics_.admitted.Increment();

  auto batch = std::make_shared<Batch>();
  batch->id = next_batch_id_++;
  batch->session = &session;
  batch->result.id = batch->id;
  batch->result.tenant = session.tenant_.name;
  batch->result.queries.resize(instances.size());
  batch->instances = std::move(instances);
  std::future<ServedBatch> future = batch->promise.get_future();
  session.queued_.push_back(std::move(batch));
  ++outstanding_batches_;
  queue_depth_peak_ = std::max(queue_depth_peak_, admission_.queued());
  metrics_.queue_depth_peak.SetMax(static_cast<double>(queue_depth_peak_));
  PumpLocked();
  return future;
}

void QueryServer::PumpLocked() {
  // Promotion: repeatedly pick the highest-priority tenant (tie: earliest
  // session) that has a queued batch and spare batch concurrency.
  for (;;) {
    Session* best = nullptr;
    for (const auto& session : sessions_) {
      if (session->queued_.empty()) continue;
      if (static_cast<int>(session->running_.size()) >=
          std::max(1, session->tenant_.max_concurrent_batches)) {
        continue;
      }
      if (best == nullptr || session->tenant_.priority > best->tenant_.priority) {
        best = session.get();
      }
    }
    if (best == nullptr) break;
    std::shared_ptr<Batch> batch = std::move(best->queued_.front());
    best->queued_.pop_front();
    admission_.OnStarted();
    batch->result.queue_seconds = batch->since_submit.ElapsedSeconds();
    best->running_.push_back(std::move(batch));
  }

  // Dispatch: walk running batches by tenant priority (then session order,
  // then batch FIFO) and start instances while both the server-wide and the
  // per-batch caps have room.
  std::vector<Session*> by_priority;
  by_priority.reserve(sessions_.size());
  for (const auto& session : sessions_) {
    if (!session->running_.empty()) by_priority.push_back(session.get());
  }
  std::stable_sort(by_priority.begin(), by_priority.end(),
                   [](const Session* a, const Session* b) {
                     return a->tenant_.priority > b->tenant_.priority;
                   });
  const int per_batch = std::max(1, options_.max_concurrent_queries_per_batch);
  for (Session* session : by_priority) {
    for (const auto& batch : session->running_) {
      while (running_queries_ < max_queries_ && batch->running < per_batch &&
             batch->next_query < batch->instances.size()) {
        const size_t index = batch->next_query++;
        ++batch->running;
        ++running_queries_;
        std::shared_ptr<Batch> node = batch;
        pool_.Submit([this, node = std::move(node), index]() mutable {
          RunQuery(std::move(node), index);
        });
      }
      if (running_queries_ >= max_queries_) return;
    }
  }
}

void QueryServer::RunQuery(std::shared_ptr<Batch> batch, size_t index) {
  const queries::QueryInstance& instance = batch->instances[index];
  ServedQuery& served = batch->result.queries[index];
  trace::Span span(std::string("server:") + queries::QueryName(instance.id));
  if (!engine_->Supports(instance.id)) {
    served.status = Status::Unimplemented(
        std::string(engine_->name()) + " does not support " +
        queries::QueryName(instance.id));
  } else {
    // Thread-scoped fault accounting brackets exactly this call, on this
    // worker thread — the same exactly-once attribution the VCD uses.
    const int64_t retries_before = fault::ThreadRetries();
    const int64_t degraded_before = fault::ThreadDegraded();
    StatusOr<systems::QueryOutput> output =
        engine_->Execute(instance, *dataset_, options_.output_mode,
                         options_.output_dir, &served.engine_stats);
    served.retries = fault::ThreadRetries() - retries_before;
    served.frames_degraded = fault::ThreadDegraded() - degraded_before;
    if (output.ok()) {
      served.output = std::move(output).value();
    } else {
      served.status = output.status();
    }
  }
  OnQueryDone(std::move(batch), index);
}

void QueryServer::OnQueryDone(std::shared_ptr<Batch> batch, size_t index) {
  (void)index;
  bool finished = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_queries_;
    --batch->running;
    ++batch->done;
    ++queries_executed_;
    metrics_.queries.Increment();
    if (batch->done == batch->instances.size()) {
      finished = true;
      ServedBatch& result = batch->result;
      for (const ServedQuery& q : result.queries) {
        if (q.status.ok()) {
          ++result.succeeded;
        } else if (q.status.code() == StatusCode::kUnimplemented) {
          ++result.unsupported;
        } else {
          ++result.failed;
        }
        result.engine_stats.Add(q.engine_stats);
      }
      result.total_seconds = batch->since_submit.ElapsedSeconds();
      metrics_.batch_seconds.Observe(result.total_seconds);
      metrics_.completed.Increment();
      ++batches_completed_;

      Session& session = *batch->session;
      session.running_.erase(
          std::find(session.running_.begin(), session.running_.end(), batch));
      --outstanding_batches_;
    }
    PumpLocked();
    if (outstanding_batches_ == 0) drained_.notify_all();
  }
  if (finished) {
    // Outside the lock: fulfilling the future may run arbitrary waiter
    // code. The shared_ptr keeps the node alive through set_value.
    batch->promise.set_value(std::move(batch->result));
  }
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return outstanding_batches_ == 0; });
}

ServerStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats stats;
  stats.admission = admission_.stats();
  stats.batches_completed = batches_completed_;
  stats.queries_executed = queries_executed_;
  stats.queue_depth_peak = queue_depth_peak_;
  return stats;
}

}  // namespace visualroad::server
