#ifndef VISUALROAD_SERVER_SERVER_H_
#define VISUALROAD_SERVER_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "server/admission.h"
#include "systems/vdbms.h"

namespace visualroad::server {

/// Query server configuration.
struct ServerOptions {
  /// Executor width: the shared long-lived pool all query instances run on.
  int worker_threads = 4;
  /// Server-wide cap on query instances executing at once; 0 means
  /// worker_threads. Clamped to 1 for engines that are not ConcurrentSafe().
  int max_concurrent_queries = 0;
  /// Per-batch cap on concurrently executing instances, so one wide batch
  /// cannot monopolize the executor.
  int max_concurrent_queries_per_batch = 2;
  /// Server-wide bound on admitted-but-not-started batches (load shedding
  /// kicks in beyond it; see AdmissionController).
  int max_total_queued = 64;
  systems::OutputMode output_mode = systems::OutputMode::kWrite;
  /// Directory for write-mode result containers; empty keeps results in
  /// memory (which is what the byte-identity tests compare).
  std::string output_dir;
};

/// Outcome of one served query instance.
struct ServedQuery {
  Status status = Status::Ok();
  systems::QueryOutput output;
  /// Engine counter movement of exactly this call (per-call window, correct
  /// under concurrent Execute calls).
  systems::EngineStats engine_stats;
  /// Thread-scoped fault accounting over this call (exactly-once).
  int64_t frames_degraded = 0;
  int64_t retries = 0;
};

/// Outcome of one served batch, fulfilled through the future Submit returns.
struct ServedBatch {
  int64_t id = 0;
  std::string tenant;
  /// One entry per submitted instance, in submission order.
  std::vector<ServedQuery> queries;
  int succeeded = 0;
  int failed = 0;
  int unsupported = 0;
  /// Seconds from admission to promotion (time spent queued).
  double queue_seconds = 0.0;
  /// Seconds from admission to the last instance finishing — the latency a
  /// client observes, which is what the serving report's percentiles are
  /// computed over.
  double total_seconds = 0.0;
  /// Sum of the per-query engine windows.
  systems::EngineStats engine_stats;
};

/// Server-level counters (admission decisions plus execution progress).
struct ServerStats {
  AdmissionStats admission;
  int64_t batches_completed = 0;
  int64_t queries_executed = 0;
  /// High-water mark of queued batches across all tenants.
  int queue_depth_peak = 0;
};

/// An async multi-tenant query server over one VDBMS: the execution tree is
/// session → batch → query instance, each level owned by its parent. Batches
/// are admitted (or shed) under per-tenant quotas, promoted in priority
/// order, and their instances fan out onto one shared long-lived ThreadPool;
/// completions bubble back up as callbacks (a finishing instance finalizes
/// its batch when it is the last one, and re-pumps the scheduler either
/// way). Submit never blocks on execution — overload sheds with
/// ResourceExhausted instead of queueing unboundedly.
///
/// Results are byte-identical to calling Vdbms::Execute directly: the server
/// adds scheduling, not semantics.
class QueryServer {
 public:
  /// One tenant's connection. Owned by the server; obtained from
  /// OpenSession() and passed (by reference) to Submit(). A session's
  /// batches run FIFO among themselves, capped at the tenant's
  /// max_concurrent_batches.
  class Session {
   public:
    const TenantOptions& tenant() const { return tenant_; }

   private:
    friend class QueryServer;
    struct Batch;

    TenantOptions tenant_;
    /// Open order; the priority tie-break, so scheduling is deterministic.
    int index_ = 0;
    /// Admitted, not yet promoted (FIFO).
    std::deque<std::shared_ptr<Batch>> queued_;
    /// Promoted batches currently running.
    std::vector<std::shared_ptr<Batch>> running_;
  };

  /// The engine and dataset are borrowed and must outlive the server.
  QueryServer(const sim::Dataset& dataset, systems::Vdbms& engine,
              const ServerOptions& options);
  /// Drains outstanding work, then joins the executor.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Opens a session for `tenant`. The returned reference stays valid for
  /// the server's lifetime.
  Session& OpenSession(const TenantOptions& tenant);

  /// Submits a batch of query instances on `session`. Returns a future
  /// fulfilled when every instance has finished, or ResourceExhausted when
  /// admission sheds it (per-tenant queue or server-wide bound full).
  /// Non-blocking either way; safe to call from any thread, including pool
  /// workers (it only enqueues).
  StatusOr<std::future<ServedBatch>> Submit(
      Session& session, std::vector<queries::QueryInstance> instances);

  /// Blocks until no admitted batch remains queued or running.
  void Drain();

  ServerStats stats() const;

  const ServerOptions& options() const { return options_; }

 private:
  using Batch = Session::Batch;

  /// Scheduler pump, called under mutex_ whenever capacity may have opened:
  /// promotes queued batches (priority order, per-tenant concurrency caps)
  /// and dispatches runnable instances until the query caps are reached.
  void PumpLocked();

  /// Executes instance `index` of `batch` on a pool worker, then finalizes
  /// through OnQueryDone.
  void RunQuery(std::shared_ptr<Batch> batch, size_t index);

  /// Completion callback: updates the batch node, finalizes it when this
  /// was its last instance, and re-pumps the scheduler.
  void OnQueryDone(std::shared_ptr<Batch> batch, size_t index);

  const sim::Dataset* dataset_;
  systems::Vdbms* engine_;
  ServerOptions options_;
  /// Effective server-wide instance cap (resolved against worker_threads
  /// and the engine's ConcurrentSafe()).
  int max_queries_ = 1;

  mutable std::mutex mutex_;
  std::condition_variable drained_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<Session>> sessions_;
  int64_t next_batch_id_ = 0;
  /// Query instances currently executing.
  int running_queries_ = 0;
  /// Admitted batches not yet finalized (queued + running).
  int outstanding_batches_ = 0;
  int64_t batches_completed_ = 0;
  int64_t queries_executed_ = 0;
  int queue_depth_peak_ = 0;

  struct Metrics {
    metrics::Counter& sessions;
    metrics::Counter& submitted;
    metrics::Counter& admitted;
    metrics::Counter& shed_tenant;
    metrics::Counter& shed_server;
    metrics::Counter& completed;
    metrics::Counter& queries;
    metrics::Gauge& queue_depth_peak;
    metrics::Histogram& batch_seconds;
  };
  Metrics metrics_;

  /// Declared last so it is destroyed (joined) first: after the join, no
  /// callback can touch the members above, and every promise has been
  /// fulfilled.
  ThreadPool pool_;
};

}  // namespace visualroad::server

#endif  // VISUALROAD_SERVER_SERVER_H_
