#ifndef VISUALROAD_SERVER_ADMISSION_H_
#define VISUALROAD_SERVER_ADMISSION_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace visualroad::server {

/// Per-tenant serving policy. Tenants are the unit of isolation: each one
/// gets its own bounded submission queue and a fair-share priority; the
/// scheduler never lets one tenant's backlog starve another's quota.
struct TenantOptions {
  std::string name;
  /// Scheduling priority: higher-priority tenants' queued batches are
  /// promoted first; ties break by session-open order (deterministic).
  int priority = 0;
  /// Bounded per-tenant queue: a submit beyond this many queued (admitted,
  /// not yet started) batches is shed with ResourceExhausted.
  int max_queued_batches = 8;
  /// How many of this tenant's batches may be running at once.
  int max_concurrent_batches = 1;
};

/// Load-shedding counters, by decision.
struct AdmissionStats {
  /// Batches admitted into a queue.
  int64_t admitted = 0;
  /// Batches shed because the tenant's own queue was full.
  int64_t shed_tenant = 0;
  /// Batches shed because the server-wide queue bound was reached.
  int64_t shed_server = 0;
  /// Admitted batches later promoted to running.
  int64_t started = 0;

  int64_t shed() const { return shed_tenant + shed_server; }
};

/// Admission decisions for the query server: bounded per-tenant queues under
/// one server-wide bound, shedding (never blocking) on overflow. Pure
/// policy — no locks, no metrics; the caller (QueryServer) serializes calls
/// under its scheduler mutex and exports the counters.
class AdmissionController {
 public:
  /// `max_total_queued` bounds admitted-but-not-started batches across all
  /// tenants (at least 1).
  explicit AdmissionController(int max_total_queued);

  /// Decides one submission for `tenant`, which currently has
  /// `tenant_queued` batches waiting. Ok admits (the caller must enqueue);
  /// ResourceExhausted sheds, with the bounded queue that rejected it named
  /// in the message. Per-tenant bounds are checked before the server-wide
  /// bound, so a noisy tenant hits its own quota first.
  Status Admit(const TenantOptions& tenant, int tenant_queued);

  /// Records that an admitted batch left its queue and started running.
  void OnStarted();

  /// Admitted batches not yet started, across all tenants.
  int queued() const { return queued_; }

  const AdmissionStats& stats() const { return stats_; }

 private:
  int max_total_queued_;
  int queued_ = 0;
  AdmissionStats stats_;
};

}  // namespace visualroad::server

#endif  // VISUALROAD_SERVER_ADMISSION_H_
