#include "server/admission.h"

#include <algorithm>

namespace visualroad::server {

AdmissionController::AdmissionController(int max_total_queued)
    : max_total_queued_(std::max(1, max_total_queued)) {}

Status AdmissionController::Admit(const TenantOptions& tenant, int tenant_queued) {
  if (tenant_queued >= std::max(0, tenant.max_queued_batches)) {
    ++stats_.shed_tenant;
    return Status::ResourceExhausted("tenant queue full for \"" + tenant.name +
                                     "\" (" + std::to_string(tenant_queued) +
                                     " batches queued)");
  }
  if (queued_ >= max_total_queued_) {
    ++stats_.shed_server;
    return Status::ResourceExhausted(
        "server queue full (" + std::to_string(queued_) + " batches queued)");
  }
  ++queued_;
  ++stats_.admitted;
  return Status::Ok();
}

void AdmissionController::OnStarted() {
  --queued_;
  ++stats_.started;
}

}  // namespace visualroad::server
