#include "server/traffic.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/random.h"
#include "common/stopwatch.h"

namespace visualroad::server {

std::vector<Arrival> GenerateOpenLoopSchedule(const TrafficOptions& options) {
  std::vector<Arrival> schedule;
  if (options.tenants <= 0 || options.duration_seconds <= 0.0 ||
      options.arrivals_per_second <= 0.0) {
    return schedule;
  }
  const double amplitude =
      std::clamp(options.diurnal_amplitude, 0.0, 0.999);
  const double period = options.diurnal_period_seconds > 0.0
                            ? options.diurnal_period_seconds
                            : options.duration_seconds;
  // Thinning (Lewis & Shedler): draw a homogeneous process at the peak rate
  // and keep each point with probability rate(t) / peak. Exact for any
  // bounded rate function, and each tenant's stream stays independent.
  const double peak = options.arrivals_per_second * (1.0 + amplitude);
  for (int tenant = 0; tenant < options.tenants; ++tenant) {
    Pcg32 rng = SubStream(options.seed, "traffic-tenant",
                          static_cast<uint64_t>(tenant));
    double t = 0.0;
    for (;;) {
      // Exponential inter-arrival at the peak rate; 1 - U keeps the argument
      // of log strictly positive.
      t += -std::log(1.0 - rng.NextDouble()) / peak;
      if (t >= options.duration_seconds) break;
      const double rate =
          options.arrivals_per_second *
          (1.0 + amplitude * std::sin(2.0 * M_PI * t / period));
      if (rng.NextDouble() * peak <= rate) {
        schedule.push_back(Arrival{t, tenant});
      }
    }
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Arrival& a, const Arrival& b) {
                     if (a.time_seconds != b.time_seconds) {
                       return a.time_seconds < b.time_seconds;
                     }
                     return a.tenant < b.tenant;
                   });
  return schedule;
}

LatencySummary Summarize(std::vector<double> latencies_seconds) {
  LatencySummary summary;
  if (latencies_seconds.empty()) return summary;
  std::sort(latencies_seconds.begin(), latencies_seconds.end());
  summary.count = static_cast<int64_t>(latencies_seconds.size());
  double sum = 0.0;
  for (double v : latencies_seconds) sum += v;
  summary.mean_seconds = sum / static_cast<double>(summary.count);
  // Nearest-rank: the smallest value with at least p of the sample at or
  // below it. Deterministic and defined for any sample size.
  auto rank = [&](double p) {
    size_t index = static_cast<size_t>(
        std::ceil(p * static_cast<double>(latencies_seconds.size())));
    index = std::min(std::max<size_t>(index, 1), latencies_seconds.size());
    return latencies_seconds[index - 1];
  };
  summary.p50_seconds = rank(0.50);
  summary.p95_seconds = rank(0.95);
  summary.p99_seconds = rank(0.99);
  summary.max_seconds = latencies_seconds.back();
  return summary;
}

StatusOr<ServingReport> RunOpenLoop(QueryServer& server, const sim::Dataset& dataset,
                                    const std::vector<Arrival>& schedule,
                                    const ReplayOptions& options) {
  ServingReport report;
  int max_tenant = -1;
  for (const Arrival& arrival : schedule) {
    max_tenant = std::max(max_tenant, arrival.tenant);
  }
  report.tenants = max_tenant + 1;

  std::vector<QueryServer::Session*> sessions;
  sessions.reserve(static_cast<size_t>(report.tenants));
  for (int tenant = 0; tenant < report.tenants; ++tenant) {
    TenantOptions policy = options.tenant;
    policy.name = "tenant-" + std::to_string(tenant);
    sessions.push_back(&server.OpenSession(policy));
  }

  std::vector<queries::QueryId> mix = options.query_mix;
  if (mix.empty()) mix.push_back(queries::QueryId::kQ1);
  const int batch_size = std::max(1, options.batch_size);

  struct Pending {
    std::future<ServedBatch> future;
    /// Input frames per instance, indexed like ServedBatch::queries.
    std::vector<int64_t> input_frames;
  };
  std::vector<Pending> pending;
  pending.reserve(schedule.size());

  Stopwatch wall;
  for (size_t k = 0; k < schedule.size(); ++k) {
    const Arrival& arrival = schedule[k];
    if (options.time_scale > 0.0) {
      const double target = arrival.time_seconds * options.time_scale;
      const double now = wall.ElapsedSeconds();
      if (target > now) {
        std::this_thread::sleep_for(std::chrono::duration<double>(target - now));
      }
    }
    // Sampling is keyed on the schedule index alone, so the offered instance
    // sequence is identical across replays regardless of shedding.
    Pcg32 rng = SubStream(options.seed, "serve-batch", static_cast<uint64_t>(k));
    std::vector<queries::QueryInstance> instances;
    std::vector<int64_t> input_frames;
    instances.reserve(static_cast<size_t>(batch_size));
    input_frames.reserve(static_cast<size_t>(batch_size));
    for (int i = 0; i < batch_size; ++i) {
      const queries::QueryId id = mix[rng.NextBounded(static_cast<uint32_t>(mix.size()))];
      VR_ASSIGN_OR_RETURN(queries::QueryInstance instance,
                          queries::SampleQueryInstance(id, dataset, rng,
                                                       options.sampler));
      input_frames.push_back(systems::detail::InputFrameCount(instance, dataset));
      instances.push_back(std::move(instance));
    }
    ++report.offered_batches;
    StatusOr<std::future<ServedBatch>> submitted =
        server.Submit(*sessions[static_cast<size_t>(arrival.tenant)],
                      std::move(instances));
    if (!submitted.ok()) {
      if (submitted.status().code() != StatusCode::kResourceExhausted) {
        return submitted.status();
      }
      ++report.shed_batches;
      continue;
    }
    ++report.admitted_batches;
    pending.push_back(Pending{std::move(submitted).value(), std::move(input_frames)});
  }
  server.Drain();
  report.wall_seconds = wall.ElapsedSeconds();

  std::vector<double> latencies;
  std::vector<double> queue_latencies;
  latencies.reserve(pending.size());
  queue_latencies.reserve(pending.size());
  for (Pending& entry : pending) {
    ServedBatch batch = entry.future.get();
    latencies.push_back(batch.total_seconds);
    queue_latencies.push_back(batch.queue_seconds);
    report.succeeded_queries += batch.succeeded;
    report.failed_queries += batch.failed;
    report.unsupported_queries += batch.unsupported;
    for (size_t i = 0; i < batch.queries.size(); ++i) {
      const ServedQuery& query = batch.queries[i];
      if (query.status.ok()) {
        report.attempted_frames += entry.input_frames[i];
        report.succeeded_frames += entry.input_frames[i];
      } else if (query.status.code() != StatusCode::kUnimplemented) {
        report.attempted_frames += entry.input_frames[i];
      }
    }
  }
  report.latency = Summarize(std::move(latencies));
  report.queue_latency = Summarize(std::move(queue_latencies));
  if (report.wall_seconds > 0.0) {
    report.offered_per_second =
        static_cast<double>(report.offered_batches) / report.wall_seconds;
    report.attempted_frames_per_second =
        static_cast<double>(report.attempted_frames) / report.wall_seconds;
    report.goodput_frames_per_second =
        static_cast<double>(report.succeeded_frames) / report.wall_seconds;
  }
  report.server = server.stats();
  return report;
}

}  // namespace visualroad::server
