#ifndef VISUALROAD_SERVER_TRAFFIC_H_
#define VISUALROAD_SERVER_TRAFFIC_H_

#include <cstdint>
#include <vector>

#include "queries/params.h"
#include "server/server.h"

namespace visualroad::server {

/// Open-loop traffic model: every tenant submits from an independent Poisson
/// process (optionally diurnally modulated), regardless of whether earlier
/// batches have completed — which is what lets overload actually build up,
/// unlike closed-loop replay where slow responses throttle the offered load.
struct TrafficOptions {
  int tenants = 4;
  /// Length of the generated schedule in offered (virtual) seconds.
  double duration_seconds = 10.0;
  /// Per-tenant base arrival rate (batches per virtual second).
  double arrivals_per_second = 1.0;
  /// Diurnal modulation amplitude a in [0, 1): the instantaneous rate is
  /// base * (1 + a * sin(2*pi*t / period)). 0 keeps arrivals homogeneous.
  double diurnal_amplitude = 0.0;
  double diurnal_period_seconds = 10.0;
  /// Master seed; each tenant draws from its own substream, so adding a
  /// tenant never perturbs another tenant's arrivals.
  uint64_t seed = 0x5EED;
};

/// One scheduled submission.
struct Arrival {
  /// Offered time in virtual seconds from schedule start.
  double time_seconds = 0.0;
  int tenant = 0;
};

/// Generates the merged arrival schedule (sorted by time; ties broken by
/// tenant index). Deterministic in the options: same options, same schedule,
/// on any platform. Diurnal modulation uses thinning against the peak rate,
/// which preserves per-tenant stream independence.
std::vector<Arrival> GenerateOpenLoopSchedule(const TrafficOptions& options);

/// Order statistics over a latency sample (seconds).
struct LatencySummary {
  int64_t count = 0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Summarizes `latencies_seconds` (nearest-rank percentiles). Empty input
/// yields an all-zero summary.
LatencySummary Summarize(std::vector<double> latencies_seconds);

/// Outcome of one open-loop replay against a QueryServer.
struct ServingReport {
  int tenants = 0;
  /// Batches offered / admitted / shed at Submit time.
  int64_t offered_batches = 0;
  int64_t admitted_batches = 0;
  int64_t shed_batches = 0;
  /// Per-query outcomes across admitted batches.
  int64_t succeeded_queries = 0;
  int64_t failed_queries = 0;
  int64_t unsupported_queries = 0;
  /// Wall-clock seconds from the first submission to drain.
  double wall_seconds = 0.0;
  /// Offered load: batches per wall-clock second over the replay.
  double offered_per_second = 0.0;
  /// Client-observed batch latency (admission to completion).
  LatencySummary latency;
  /// Time admitted batches spent queued before starting.
  LatencySummary queue_latency;
  /// Input frames of executed (succeeded + failed) instances, and of
  /// succeeded instances only. Shed batches and unsupported instances read
  /// no input, so they appear in neither.
  int64_t attempted_frames = 0;
  int64_t succeeded_frames = 0;
  /// attempted_frames / wall_seconds and succeeded_frames / wall_seconds:
  /// under overload the gap between them is the work wasted on failures,
  /// and goodput is the number that matters.
  double attempted_frames_per_second = 0.0;
  double goodput_frames_per_second = 0.0;
  /// Server counters at drain time (shed split by reason lives here).
  ServerStats server;
};

/// Replay policy mapping a schedule onto a server.
struct ReplayOptions {
  /// Query instances per submitted batch.
  int batch_size = 1;
  /// Pacing: 0 replays as fast as possible (each arrival submits
  /// immediately — the schedule only fixes order and sampling); > 0 sleeps
  /// until `arrival.time_seconds * time_scale` wall seconds. Tests use 0;
  /// benches sweeping offered load use it indirectly by scaling rates.
  double time_scale = 0.0;
  /// Queries to sample from; empty means Q1 only (cheap, every engine
  /// supports it).
  std::vector<queries::QueryId> query_mix;
  queries::SamplerOptions sampler;
  /// Seed for instance sampling (independent of the schedule's seed).
  uint64_t seed = 0x5EED;
  /// Tenant template: tenant i gets this policy with name "tenant-<i>".
  TenantOptions tenant;
};

/// Replays `schedule` through `server` open-loop: opens one session per
/// tenant, samples each batch deterministically from the replay seed and the
/// arrival's schedule index, submits without waiting for completions, then
/// drains and aggregates. Sampling is independent of submission outcome, so
/// two replays of one schedule offer the identical instance sequence even if
/// shedding differs.
StatusOr<ServingReport> RunOpenLoop(QueryServer& server, const sim::Dataset& dataset,
                                    const std::vector<Arrival>& schedule,
                                    const ReplayOptions& options);

}  // namespace visualroad::server

#endif  // VISUALROAD_SERVER_TRAFFIC_H_
