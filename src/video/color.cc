#include "video/color.h"

#include <algorithm>

namespace visualroad::video {

namespace {
uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
}
}  // namespace

Yuv RgbToYuv(const Rgb& rgb) {
  double r = rgb.r, g = rgb.g, b = rgb.b;
  return {ClampByte(0.299 * r + 0.587 * g + 0.114 * b),
          ClampByte(-0.168736 * r - 0.331264 * g + 0.5 * b + 128.0),
          ClampByte(0.5 * r - 0.418688 * g - 0.081312 * b + 128.0)};
}

Rgb YuvToRgb(const Yuv& yuv) {
  double y = yuv.y, u = yuv.u - 128.0, v = yuv.v - 128.0;
  return {ClampByte(y + 1.402 * v), ClampByte(y - 0.344136 * u - 0.714136 * v),
          ClampByte(y + 1.772 * u)};
}

Frame RgbToFrame(const RgbImage& image) {
  Frame frame(image.width, image.height);
  for (int y = 0; y < image.height; ++y) {
    for (int x = 0; x < image.width; ++x) {
      const uint8_t* p = image.Pixel(x, y);
      Yuv yuv = RgbToYuv({p[0], p[1], p[2]});
      frame.SetY(x, y, yuv.y);
    }
  }
  // Average each 2x2 block for the chroma planes.
  int cw = frame.chroma_width(), ch = frame.chroma_height();
  for (int cy = 0; cy < ch; ++cy) {
    for (int cx = 0; cx < cw; ++cx) {
      int u_sum = 0, v_sum = 0, count = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          int x = cx * 2 + dx, y = cy * 2 + dy;
          if (x >= image.width || y >= image.height) continue;
          const uint8_t* p = image.Pixel(x, y);
          Yuv yuv = RgbToYuv({p[0], p[1], p[2]});
          u_sum += yuv.u;
          v_sum += yuv.v;
          ++count;
        }
      }
      size_t idx = static_cast<size_t>(cy) * cw + cx;
      frame.u_plane()[idx] = static_cast<uint8_t>(u_sum / count);
      frame.v_plane()[idx] = static_cast<uint8_t>(v_sum / count);
    }
  }
  return frame;
}

RgbImage FrameToRgb(const Frame& frame) {
  RgbImage image(frame.width(), frame.height());
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      Rgb rgb = YuvToRgb({frame.Y(x, y), frame.U(x, y), frame.V(x, y)});
      uint8_t* p = image.Pixel(x, y);
      p[0] = rgb.r;
      p[1] = rgb.g;
      p[2] = rgb.b;
    }
  }
  return image;
}

}  // namespace visualroad::video
