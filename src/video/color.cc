#include "video/color.h"

#include <algorithm>
#include <vector>

#include "video/kernels/kernels.h"

namespace visualroad::video {

namespace {
uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
}
}  // namespace

Yuv RgbToYuv(const Rgb& rgb) {
  double r = rgb.r, g = rgb.g, b = rgb.b;
  return {ClampByte(0.299 * r + 0.587 * g + 0.114 * b),
          ClampByte(-0.168736 * r - 0.331264 * g + 0.5 * b + 128.0),
          ClampByte(0.5 * r - 0.418688 * g - 0.081312 * b + 128.0)};
}

Rgb YuvToRgb(const Yuv& yuv) {
  double y = yuv.y, u = yuv.u - 128.0, v = yuv.v - 128.0;
  return {ClampByte(y + 1.402 * v), ClampByte(y - 0.344136 * u - 0.714136 * v),
          ClampByte(y + 1.772 * u)};
}

Frame RgbToFrame(const RgbImage& image) {
  Frame frame(image.width, image.height);
  if (frame.Empty()) return frame;
  const int w = image.width, h = image.height;
  // Convert each row once into planar full-resolution Y/U/V. (The per-pixel
  // formulation converted every pixel twice — once for luma, once inside the
  // chroma averaging — so this also halves the conversion work before any
  // vectorisation.)
  const kernels::KernelTable& kt = kernels::Kernels();
  std::vector<uint8_t> u_full(static_cast<size_t>(w) * h);
  std::vector<uint8_t> v_full(static_cast<size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    kt.rgb_to_yuv_row(image.Pixel(0, y), w,
                           frame.y_plane().data() + static_cast<size_t>(y) * w,
                           u_full.data() + static_cast<size_t>(y) * w,
                           v_full.data() + static_cast<size_t>(y) * w);
  }
  kernels::CountKernelCalls(kernels::Kernel::kRgbToYuvRow,
                            static_cast<uint64_t>(h));
  // Average each 2x2 block for the chroma planes. Integer sums and the same
  // truncating division as before — exact.
  int cw = frame.chroma_width(), ch = frame.chroma_height();
  for (int cy = 0; cy < ch; ++cy) {
    for (int cx = 0; cx < cw; ++cx) {
      int u_sum = 0, v_sum = 0, count = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          int x = cx * 2 + dx, y = cy * 2 + dy;
          if (x >= w || y >= h) continue;
          size_t src = static_cast<size_t>(y) * w + x;
          u_sum += u_full[src];
          v_sum += v_full[src];
          ++count;
        }
      }
      size_t idx = static_cast<size_t>(cy) * cw + cx;
      frame.u_plane()[idx] = static_cast<uint8_t>(u_sum / count);
      frame.v_plane()[idx] = static_cast<uint8_t>(v_sum / count);
    }
  }
  return frame;
}

RgbImage FrameToRgb(const Frame& frame) {
  RgbImage image(frame.width(), frame.height());
  if (frame.Empty()) return image;
  const int w = frame.width(), h = frame.height();
  const int cw = frame.chroma_width();
  const kernels::KernelTable& kt = kernels::Kernels();
  for (int y = 0; y < h; ++y) {
    const uint8_t* u_row =
        frame.u_plane().data() + static_cast<size_t>(y / 2) * cw;
    const uint8_t* v_row =
        frame.v_plane().data() + static_cast<size_t>(y / 2) * cw;
    kt.yuv_to_rgb_row(frame.y_plane().data() + static_cast<size_t>(y) * w,
                           u_row, v_row, w, image.Pixel(0, y));
  }
  kernels::CountKernelCalls(kernels::Kernel::kYuvToRgbRow,
                            static_cast<uint64_t>(h));
  return image;
}

}  // namespace visualroad::video
