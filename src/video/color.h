#ifndef VISUALROAD_VIDEO_COLOR_H_
#define VISUALROAD_VIDEO_COLOR_H_

#include <cstdint>

#include "video/frame.h"

namespace visualroad::video {

/// A YUV triple, the native pixel type of the benchmark's convenience
/// operators (PMap and friends operate on these).
struct Yuv {
  uint8_t y = 0;
  uint8_t u = 128;
  uint8_t v = 128;
  bool operator==(const Yuv&) const = default;
};

/// An RGB triple.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;
  bool operator==(const Rgb&) const = default;
};

/// BT.601 full-range RGB -> YUV conversion.
Yuv RgbToYuv(const Rgb& rgb);

/// BT.601 full-range YUV -> RGB conversion.
Rgb YuvToRgb(const Yuv& yuv);

/// Converts an interleaved RGB image to a planar YUV420 frame, averaging the
/// 2x2 chroma neighbourhoods.
Frame RgbToFrame(const RgbImage& image);

/// Converts a YUV420 frame back to interleaved RGB (chroma replicated).
RgbImage FrameToRgb(const Frame& frame);

/// The black sentinel color omega used by the benchmark's masking and
/// coalesce operators (Section 4.1).
inline constexpr Yuv kOmega{0, 128, 128};

/// True when the pixel equals the omega sentinel.
inline bool IsOmega(const Yuv& p) { return p == kOmega; }

/// True when the pixel is within `tolerance` of the omega sentinel on every
/// channel. Consumers of *encoded* omega-sentinel videos (e.g. the VCD's
/// Q6(a) box video) must use this form: near-lossless codec noise perturbs
/// exact sentinel values by a few code levels.
inline bool IsNearOmega(const Yuv& p, int tolerance = 8) {
  return p.y <= tolerance && p.u >= 128 - tolerance && p.u <= 128 + tolerance &&
         p.v >= 128 - tolerance && p.v <= 128 + tolerance;
}

}  // namespace visualroad::video

#endif  // VISUALROAD_VIDEO_COLOR_H_
