#include "video/rtp.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"

namespace visualroad::video::rtp {

namespace {

constexpr size_t kHeaderBytes = 12;
constexpr uint8_t kVersionBits = 2 << 6;  // RTP version 2, no padding/ext/CSRC.

/// Process-wide aggregates across every Packetizer/Depacketizer instance;
/// per-instance ReceiverStats stays the exact per-stream view.
struct RtpMetrics {
  metrics::Counter& packets_sent;
  metrics::Counter& packets_received;
  metrics::Counter& packets_lost;
  metrics::Counter& packets_reordered;
  metrics::Counter& frames_completed;
  metrics::Counter& frames_dropped;
  metrics::Counter& frames_concealed;

  static RtpMetrics& Get() {
    static RtpMetrics* instruments = [] {
      metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
      return new RtpMetrics{
          registry.GetCounter("vr_rtp_packets_sent_total",
                              "RTP packets produced by packetizers"),
          registry.GetCounter("vr_rtp_packets_received_total",
                              "RTP packets fed to depacketizers"),
          registry.GetCounter("vr_rtp_packets_lost_total",
                              "Packets inferred lost from forward sequence gaps"),
          registry.GetCounter(
              "vr_rtp_packets_reordered_total",
              "Late arrivals behind the newest processed packet"),
          registry.GetCounter("vr_rtp_frames_completed_total",
                              "Frames fully reassembled from packets"),
          registry.GetCounter(
              "vr_rtp_frames_dropped_total",
              "Frames abandoned because a fragment was missing or damaged"),
          registry.GetCounter(
              "vr_rtp_frames_concealed_total",
              "Dropped frames replaced by a freeze-frame repeat"),
      };
    }();
    return *instruments;
  }
};

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

}  // namespace

std::vector<uint8_t> Packet::Serialize() const {
  std::vector<uint8_t> wire;
  wire.reserve(kHeaderBytes + payload.size());
  wire.push_back(kVersionBits);
  wire.push_back(static_cast<uint8_t>((marker ? 0x80 : 0) | (payload_type & 0x7F)));
  PutU16(wire, sequence_number);
  PutU32(wire, timestamp);
  PutU32(wire, ssrc);
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

StatusOr<Packet> Packet::Parse(const std::vector<uint8_t>& wire) {
  if (wire.size() < kHeaderBytes) {
    return Status::DataLoss("RTP packet shorter than its header");
  }
  if ((wire[0] >> 6) != 2) {
    return Status::InvalidArgument("unsupported RTP version");
  }
  Packet packet;
  packet.marker = (wire[1] & 0x80) != 0;
  packet.payload_type = wire[1] & 0x7F;
  packet.sequence_number = static_cast<uint16_t>((wire[2] << 8) | wire[3]);
  packet.timestamp = (static_cast<uint32_t>(wire[4]) << 24) |
                     (static_cast<uint32_t>(wire[5]) << 16) |
                     (static_cast<uint32_t>(wire[6]) << 8) | wire[7];
  packet.ssrc = (static_cast<uint32_t>(wire[8]) << 24) |
                (static_cast<uint32_t>(wire[9]) << 16) |
                (static_cast<uint32_t>(wire[10]) << 8) | wire[11];
  packet.payload.assign(wire.begin() + kHeaderBytes, wire.end());
  return packet;
}

Packetizer::Packetizer(uint32_t ssrc, int mtu, uint16_t first_sequence)
    : ssrc_(ssrc), mtu_(std::max(16, mtu)), sequence_(first_sequence) {}

std::vector<Packet> Packetizer::PacketizeFrame(const codec::EncodedFrame& frame,
                                               int frame_index, double fps) {
  // RTP video timestamps run on a 90 kHz clock.
  uint32_t timestamp = static_cast<uint32_t>(
      std::llround(frame_index * 90000.0 / (fps > 0 ? fps : 30.0)));

  std::vector<Packet> packets;
  size_t offset = 0;
  // The MTU bounds the serialized packet, so the budget for frame bytes is
  // the MTU minus the 12-byte RTP header and the 2-byte payload header.
  size_t chunk = static_cast<size_t>(mtu_) - kHeaderBytes - 2;
  bool first = true;
  do {
    size_t take = std::min(chunk, frame.data.size() - offset);
    Packet packet;
    packet.sequence_number = sequence_++;
    packet.timestamp = timestamp;
    packet.ssrc = ssrc_;
    // Payload header: flags byte + QP.
    uint8_t flags = 0;
    if (frame.keyframe) flags |= 0x01;
    if (first) flags |= 0x02;
    packet.payload.push_back(flags);
    packet.payload.push_back(frame.qp);
    packet.payload.insert(packet.payload.end(), frame.data.begin() + offset,
                          frame.data.begin() + offset + take);
    offset += take;
    packet.marker = offset >= frame.data.size();
    packets.push_back(std::move(packet));
    first = false;
  } while (offset < frame.data.size());
  RtpMetrics::Get().packets_sent.Increment(static_cast<double>(packets.size()));
  return packets;
}

std::vector<Packet> Packetizer::PacketizeVideo(const codec::EncodedVideo& video) {
  std::vector<Packet> packets;
  for (int f = 0; f < video.FrameCount(); ++f) {
    std::vector<Packet> frame_packets =
        PacketizeFrame(video.frames[static_cast<size_t>(f)], f, video.fps);
    for (Packet& packet : frame_packets) packets.push_back(std::move(packet));
  }
  return packets;
}

void Depacketizer::Feed(const Packet& packet) {
  ++stats_.packets_received;
  RtpMetrics::Get().packets_received.Increment();

  // Loss detection by sequence gap (16-bit wraparound handled). A gap in
  // the upper half of the sequence space is not a ~65k-packet loss: it is a
  // packet that arrived late, behind ones already processed. This in-order
  // assembler cannot splice it back in, so it is counted as reordered and
  // otherwise ignored — in particular `last_sequence_` keeps tracking the
  // newest packet, so the next in-order arrival is not misread as a loss.
  if (has_last_sequence_) {
    uint16_t expected = static_cast<uint16_t>(last_sequence_ + 1);
    if (packet.sequence_number != expected) {
      uint16_t gap = static_cast<uint16_t>(packet.sequence_number - expected);
      if (gap >= 0x8000) {
        ++stats_.packets_reordered;
        RtpMetrics::Get().packets_reordered.Increment();
        return;
      }
      stats_.packets_lost += gap;
      RtpMetrics::Get().packets_lost.Increment(static_cast<double>(gap));
      assembly_broken_ = assembling_ || gap > 0;
    }
  }
  last_sequence_ = packet.sequence_number;
  has_last_sequence_ = true;

  if (packet.payload.size() < 2) {
    assembly_broken_ = true;
    return;
  }
  uint8_t flags = packet.payload[0];
  bool keyframe = (flags & 0x01) != 0;
  bool first_fragment = (flags & 0x02) != 0;

  if (first_fragment) {
    // Starting a new frame; a frame still mid-assembly was truncated.
    if (assembling_) DropFrame();
    assembly_.clear();
    assembling_ = true;
    assembly_broken_ = false;
    assembly_keyframe_ = keyframe;
    assembly_qp_ = packet.payload[1];
  } else if (!assembling_) {
    // Mid-frame fragment without a start: its head was lost.
    assembly_broken_ = true;
    return;
  }

  assembly_.insert(assembly_.end(), packet.payload.begin() + 2,
                   packet.payload.end());

  if (packet.marker) {
    if (assembly_broken_) {
      DropFrame();
    } else {
      codec::EncodedFrame frame;
      frame.keyframe = assembly_keyframe_;
      frame.qp = assembly_qp_;
      frame.data = assembly_;
      last_completed_ = frame;
      frames_.push_back(std::move(frame));
      ++stats_.frames_completed;
      RtpMetrics::Get().frames_completed.Increment();
    }
    assembly_.clear();
    assembling_ = false;
    assembly_broken_ = false;
  }
}

void Depacketizer::DropFrame() {
  ++stats_.frames_dropped;
  RtpMetrics::Get().frames_dropped.Increment();
  if (conceal_losses_ && last_completed_.has_value()) {
    frames_.push_back(*last_completed_);
    ++stats_.frames_concealed;
    RtpMetrics::Get().frames_concealed.Increment();
  }
}

void Depacketizer::Flush() {
  // A frame mid-assembly at end-of-stream can never complete: without this,
  // it would be neither delivered nor counted (drops were only detected at
  // the next frame boundary, and the boundary never comes).
  if (assembling_) DropFrame();
  assembly_.clear();
  assembling_ = false;
  assembly_broken_ = false;
}

StatusOr<codec::EncodedFrame> Depacketizer::TakeFrame() {
  if (frames_.empty()) return Status::FailedPrecondition("no complete frame ready");
  codec::EncodedFrame frame = std::move(frames_.front());
  frames_.erase(frames_.begin());
  return frame;
}

StatusOr<codec::EncodedVideo> Loopback(const codec::EncodedVideo& video, int mtu) {
  Packetizer packetizer(0x5EED, mtu);
  Depacketizer depacketizer;
  codec::EncodedVideo out;
  out.profile = video.profile;
  out.width = video.width;
  out.height = video.height;
  out.fps = video.fps;
  for (const Packet& packet : packetizer.PacketizeVideo(video)) {
    // Exercise the wire format round trip too.
    VR_ASSIGN_OR_RETURN(Packet parsed, Packet::Parse(packet.Serialize()));
    depacketizer.Feed(parsed);
    while (depacketizer.HasFrame()) {
      VR_ASSIGN_OR_RETURN(codec::EncodedFrame frame, depacketizer.TakeFrame());
      out.frames.push_back(std::move(frame));
    }
  }
  depacketizer.Flush();
  if (out.FrameCount() != video.FrameCount()) {
    return Status::DataLoss("loopback lost frames");
  }
  return out;
}

std::vector<Packet> ApplyChannel(std::vector<Packet> packets,
                                 fault::FaultInjector& faults) {
  std::vector<Packet> delivered;
  delivered.reserve(packets.size());
  std::optional<Packet> held;  // A reordered packet waits one slot.
  for (Packet& packet : packets) {
    if (faults.ShouldInject(fault::Site::kRtpLoss)) continue;
    if (held.has_value()) {
      delivered.push_back(std::move(packet));
      delivered.push_back(std::move(*held));
      held.reset();
      continue;
    }
    if (faults.ShouldInject(fault::Site::kRtpReorder)) {
      held = std::move(packet);
      continue;
    }
    delivered.push_back(std::move(packet));
  }
  if (held.has_value()) delivered.push_back(std::move(*held));
  return delivered;
}

StatusOr<codec::EncodedVideo> LossyLoopback(const codec::EncodedVideo& video,
                                            int mtu,
                                            fault::FaultInjector& faults,
                                            ReceiverStats* stats_out) {
  Packetizer packetizer(0x5EED, mtu);
  Depacketizer depacketizer(/*conceal_losses=*/true);
  codec::EncodedVideo out;
  out.profile = video.profile;
  out.width = video.width;
  out.height = video.height;
  out.fps = video.fps;
  for (const Packet& packet :
       ApplyChannel(packetizer.PacketizeVideo(video), faults)) {
    VR_ASSIGN_OR_RETURN(Packet parsed, Packet::Parse(packet.Serialize()));
    depacketizer.Feed(parsed);
    while (depacketizer.HasFrame()) {
      VR_ASSIGN_OR_RETURN(codec::EncodedFrame frame, depacketizer.TakeFrame());
      out.frames.push_back(std::move(frame));
    }
  }
  depacketizer.Flush();
  while (depacketizer.HasFrame()) {
    VR_ASSIGN_OR_RETURN(codec::EncodedFrame frame, depacketizer.TakeFrame());
    out.frames.push_back(std::move(frame));
  }
  if (stats_out != nullptr) *stats_out = depacketizer.stats();
  return out;
}

}  // namespace visualroad::video::rtp
