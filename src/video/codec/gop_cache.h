#ifndef VISUALROAD_VIDEO_CODEC_GOP_CACHE_H_
#define VISUALROAD_VIDEO_CODEC_GOP_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "video/codec/codec.h"
#include "video/frame.h"

namespace visualroad::video::codec {

/// One decoded closed GOP. Immutable once published to the cache; concurrent
/// readers share it by shared_ptr, so eviction never invalidates a reader.
struct DecodedGop {
  int first_frame = 0;
  std::vector<Frame> frames;
  int64_t bytes = 0;  // Decoded payload size, for the cache budget.
};

/// Cumulative counters across all shards.
struct GopCacheStats {
  int64_t hits = 0;        // Entry was ready on arrival.
  int64_t misses = 0;      // Caller decoded the GOP (single-flight leader).
  int64_t coalesced = 0;   // Waited on another caller's in-flight decode.
  int64_t evictions = 0;   // Entries dropped to fit the byte budget.
  int64_t bytes_in_use = 0;
  int64_t entries = 0;
};

struct GopCacheOptions {
  /// Total decoded-frame budget across shards.
  int64_t capacity_bytes = int64_t{256} << 20;
  /// Lock striping width. 1 gives a single global LRU order (deterministic
  /// eviction, used by tests); the default spreads contention.
  int shards = 8;
};

/// Sharded, mutex-per-shard LRU of decoded GOPs keyed by (stream identity,
/// GOP start frame), with byte-size budgeting and single-flight decode:
/// concurrent requesters of the same cold GOP block on the one in-flight
/// decode instead of repeating it. Thread-safe; entries are immutable once
/// published.
class GopCache {
 public:
  explicit GopCache(const GopCacheOptions& options = {});
  ~GopCache();

  GopCache(const GopCache&) = delete;
  GopCache& operator=(const GopCache&) = delete;

  /// The process-wide cache every engine shares by default.
  static GopCache& Global();

  /// How a Get was satisfied.
  enum class Outcome { kHit, kMiss, kCoalesced };

  /// Returns the decoded GOP of `encoded` starting at frame `start` and
  /// spanning `count` frames, decoding it (serially — GOPs are the unit of
  /// parallelism) on a miss. `identity` must be StreamIdentity(encoded).
  StatusOr<std::shared_ptr<const DecodedGop>> Get(const EncodedVideo& encoded,
                                                  uint64_t identity, int start,
                                                  int count,
                                                  Outcome* outcome = nullptr);

  /// Drops every ready entry (in-flight decodes complete uncached).
  void Clear();

  /// Adjusts the byte budget; evicts immediately if over.
  void set_capacity_bytes(int64_t bytes);
  int64_t capacity_bytes() const { return capacity_bytes_.load(); }

  GopCacheStats stats() const;

 private:
  struct Shard;

  Shard& ShardFor(uint64_t identity, int start) const;
  /// Evicts LRU entries until `shard` fits its per-shard budget share.
  void EvictLocked(Shard& shard);

  std::atomic<int64_t> capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Full-bitstream identity hash (dimensions, profile, every payload byte) for
/// cache keying. Collision-resistant enough for a cache: a false hit needs an
/// FNV-1a collision across entire streams.
uint64_t StreamIdentity(const EncodedVideo& encoded);

/// Keyframe indices of `encoded`, i.e. the start of each closed GOP.
std::vector<int> GopStarts(const EncodedVideo& encoded);

/// Per-engine accounting, separate from the cache's own stats because the
/// cache is process-wide and shared.
struct GopCacheCounters {
  std::atomic<int64_t> hits{0};    // Served without decoding (hit or coalesced).
  std::atomic<int64_t> misses{0};  // This caller ran the decode.
  std::atomic<int64_t> frames_decoded{0};
};

/// Decode of a whole stream through `cache`. Returns a fresh Video assembled
/// from cached GOPs.
StatusOr<Video> CachedDecode(const EncodedVideo& encoded, GopCache& cache,
                             GopCacheCounters* counters = nullptr);

/// Range decode through `cache`: fetches only the GOPs overlapping
/// [first, first+count) and trims to the requested window.
StatusOr<Video> CachedDecodeRange(const EncodedVideo& encoded, int first, int count,
                                  GopCache& cache,
                                  GopCacheCounters* counters = nullptr);

}  // namespace visualroad::video::codec

#endif  // VISUALROAD_VIDEO_CODEC_GOP_CACHE_H_
