#ifndef VISUALROAD_VIDEO_CODEC_QUANT_H_
#define VISUALROAD_VIDEO_CODEC_QUANT_H_

#include <cstdint>

#include "video/codec/dct.h"

namespace visualroad::video::codec {

/// Quantisation parameter range, H.264-style: step doubles every 6 QP.
inline constexpr int kMinQp = 0;
inline constexpr int kMaxQp = 51;

/// Quantisation step size for `qp`.
double QpToStep(int qp);

/// Quantises a transform-coefficient block in place: level = round(coef/step)
/// with a small dead zone that biases tiny coefficients to zero (as real
/// encoders do). Writes 16-bit levels.
void QuantizeBlock(const double* coefficients, int qp, int16_t* levels);

/// Reconstructs coefficients from levels: coef = level * step.
void DequantizeBlock(const int16_t* levels, int qp, double* coefficients);

}  // namespace visualroad::video::codec

#endif  // VISUALROAD_VIDEO_CODEC_QUANT_H_
