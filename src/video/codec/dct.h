#ifndef VISUALROAD_VIDEO_CODEC_DCT_H_
#define VISUALROAD_VIDEO_CODEC_DCT_H_

#include <cstdint>

namespace visualroad::video::codec {

/// Transform block edge length. VRC uses an 8x8 transform in both profiles
/// (prediction block sizes differ instead).
inline constexpr int kTransformSize = 8;
inline constexpr int kTransformArea = kTransformSize * kTransformSize;

/// Forward 8x8 DCT-II of a residual block (values in roughly [-255, 255]).
/// `input` and `output` are row-major 64-element arrays. Deterministic: the
/// encoder and decoder share this exact implementation, so encoder-side
/// reconstruction is bit-exact with the decoder.
void ForwardDct8x8(const int16_t* input, double* output);

/// Inverse 8x8 DCT-III. Rounds to the nearest integer.
void InverseDct8x8(const double* input, int16_t* output);

/// Zig-zag scan order for an 8x8 block (index = scan position, value = raster
/// offset), identical to the JPEG/H.264 ordering.
extern const int kZigZag8x8[kTransformArea];

}  // namespace visualroad::video::codec

#endif  // VISUALROAD_VIDEO_CODEC_DCT_H_
