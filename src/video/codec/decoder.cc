#include <algorithm>
#include <cstring>
#include <memory>

#include "common/trace.h"
#include "video/codec/codec.h"
#include "video/codec/codec_internal.h"
#include "video/codec/dct.h"
#include "video/codec/intra.h"
#include "video/codec/quant.h"

namespace visualroad::video::codec {

namespace internal {

void ReconstructBlock(const uint8_t* prediction, const int16_t* levels, int qp,
                      Plane& recon, int bx, int by) {
  double coefficients[kTransformArea];
  DequantizeBlock(levels, qp, coefficients);
  int16_t residual[kTransformArea];
  InverseDct8x8(coefficients, residual);
  for (int y = 0; y < kTransformSize; ++y) {
    for (int x = 0; x < kTransformSize; ++x) {
      int value = prediction[y * kTransformSize + x] + residual[y * kTransformSize + x];
      recon.Set(bx + x, by + y, static_cast<uint8_t>(std::clamp(value, 0, 255)));
    }
  }
}

}  // namespace internal

using internal::FrameContexts;
using internal::PadTo;
using internal::ReconPlanes;
using internal::ReconstructBlock;

namespace {

/// Decodes a motion-vector component difference (matches EncodeMvComponent).
int DecodeMvComponent(ArithmeticDecoder& dec, BitModel* models) {
  uint32_t magnitude = DecodeUnaryEg(dec, models, 10);
  if (magnitude == 0) return 0;
  int sign = dec.DecodeBypass();
  return sign ? -static_cast<int>(magnitude) : static_cast<int>(magnitude);
}

/// Decodes one intra-coded 8x8 block and reconstructs it.
void DecodeIntraBlock(ArithmeticDecoder& dec, FrameContexts& ctx, Plane& recon,
                      int bx, int by, int qp, bool is_luma) {
  IntraMode mode = IntraMode::kDc;
  if (is_luma) {
    int bit0 = dec.DecodeBit(ctx.intra_mode[0]);
    int bit1 = dec.DecodeBit(ctx.intra_mode[1]);
    mode = static_cast<IntraMode>(bit0 | (bit1 << 1));
  }
  uint8_t prediction[kTransformArea];
  IntraPredict(recon, bx, by, kTransformSize, mode, prediction);
  int16_t levels[kTransformArea];
  DecodeResidualBlock(dec, ctx.residual[is_luma ? 0 : 1], levels);
  ReconstructBlock(prediction, levels, qp, recon, bx, by);
}

}  // namespace

struct Decoder::State {
  int width = 0;
  int height = 0;
  int block_size = 16;
  bool has_reference = false;
  ReconPlanes reference;
};

Decoder::Decoder(int width, int height, Profile profile)
    : state_(std::make_shared<State>()) {
  state_->width = width;
  state_->height = height;
  state_->block_size = ProfileBlockSize(profile);
}

Status Decoder::DecodeInto(const EncodedFrame& encoded) {
  State& s = *state_;
  if (s.width <= 0 || s.height <= 0) {
    return Status::FailedPrecondition("decoder has invalid dimensions");
  }
  if (!encoded.keyframe && !s.has_reference) {
    return Status::FailedPrecondition("P-frame received before any keyframe");
  }
  int qp = encoded.qp;
  int mb = s.block_size;
  int cmb = mb / 2;
  int cw = (s.width + 1) / 2, ch = (s.height + 1) / 2;

  ReconPlanes recon;
  recon.y = Plane(PadTo(s.width, mb), PadTo(s.height, mb));
  recon.u = Plane(PadTo(cw, cmb), PadTo(ch, cmb));
  recon.v = Plane(PadTo(cw, cmb), PadTo(ch, cmb));

  FrameContexts ctx;
  ArithmeticDecoder dec(encoded.data);

  int mbs_x = recon.y.width / mb;
  int mbs_y = recon.y.height / mb;
  int sub = mb / kTransformSize;
  int csub = cmb / kTransformSize;

  for (int mby = 0; mby < mbs_y; ++mby) {
    MotionVector left_mv;
    for (int mbx = 0; mbx < mbs_x; ++mbx) {
      int bx = mbx * mb, by = mby * mb;
      int cbx = mbx * cmb, cby = mby * cmb;

      bool intra_mb = encoded.keyframe;
      if (!encoded.keyframe) {
        if (dec.DecodeBit(ctx.skip) == 1) {
          for (int y = 0; y < mb; ++y) {
            std::memcpy(recon.y.Row(by + y) + bx, s.reference.y.Row(by + y) + bx, mb);
          }
          for (int y = 0; y < cmb; ++y) {
            std::memcpy(recon.u.Row(cby + y) + cbx, s.reference.u.Row(cby + y) + cbx,
                        cmb);
            std::memcpy(recon.v.Row(cby + y) + cbx, s.reference.v.Row(cby + y) + cbx,
                        cmb);
          }
          left_mv = MotionVector{};
          continue;
        }
        intra_mb = dec.DecodeBit(ctx.intra_flag) == 1;
      }

      if (intra_mb) {
        for (int sy = 0; sy < sub; ++sy) {
          for (int sx = 0; sx < sub; ++sx) {
            DecodeIntraBlock(dec, ctx, recon.y, bx + sx * kTransformSize,
                             by + sy * kTransformSize, qp, /*is_luma=*/true);
          }
        }
        for (int sy = 0; sy < csub; ++sy) {
          for (int sx = 0; sx < csub; ++sx) {
            int tx = cbx + sx * kTransformSize, ty = cby + sy * kTransformSize;
            DecodeIntraBlock(dec, ctx, recon.u, tx, ty, qp, /*is_luma=*/false);
            DecodeIntraBlock(dec, ctx, recon.v, tx, ty, qp, /*is_luma=*/false);
          }
        }
        left_mv = MotionVector{};
        continue;
      }

      // Inter macroblock.
      MotionVector mv;
      mv.dx = left_mv.dx + DecodeMvComponent(dec, ctx.mv_mag[0]);
      mv.dy = left_mv.dy + DecodeMvComponent(dec, ctx.mv_mag[1]);
      for (int sy = 0; sy < sub; ++sy) {
        for (int sx = 0; sx < sub; ++sx) {
          int tx = bx + sx * kTransformSize, ty = by + sy * kTransformSize;
          uint8_t prediction[kTransformArea];
          MotionCompensate(s.reference.y, tx, ty, kTransformSize, mv.dx, mv.dy,
                           prediction);
          int16_t levels[kTransformArea];
          DecodeResidualBlock(dec, ctx.residual[0], levels);
          ReconstructBlock(prediction, levels, qp, recon.y, tx, ty);
        }
      }
      int cdx = mv.dx / 2, cdy = mv.dy / 2;
      for (int plane = 0; plane < 2; ++plane) {
        Plane& crecon = plane == 0 ? recon.u : recon.v;
        const Plane& cref = plane == 0 ? s.reference.u : s.reference.v;
        for (int sy = 0; sy < csub; ++sy) {
          for (int sx = 0; sx < csub; ++sx) {
            int tx = cbx + sx * kTransformSize, ty = cby + sy * kTransformSize;
            uint8_t prediction[kTransformArea];
            MotionCompensate(cref, tx, ty, kTransformSize, cdx, cdy, prediction);
            int16_t levels[kTransformArea];
            DecodeResidualBlock(dec, ctx.residual[1], levels);
            ReconstructBlock(prediction, levels, qp, crecon, tx, ty);
          }
        }
      }
      left_mv = mv;
    }
  }

  s.reference = std::move(recon);
  s.has_reference = true;
  return Status::Ok();
}

Status Decoder::Advance(const EncodedFrame& encoded) {
  VR_RETURN_IF_ERROR(DecodeInto(encoded));
  internal::WarmupFramesCounter().Increment();
  return Status::Ok();
}

StatusOr<Frame> Decoder::DecodeFrame(const EncodedFrame& encoded) {
  VR_RETURN_IF_ERROR(DecodeInto(encoded));
  internal::FramesDecodedCounter().Increment();
  State& s = *state_;
  int cw = (s.width + 1) / 2, ch = (s.height + 1) / 2;
  Frame frame(s.width, s.height);
  internal::UnpadPlane(s.reference.y, s.width, s.height, frame.y_plane());
  internal::UnpadPlane(s.reference.u, cw, ch, frame.u_plane());
  internal::UnpadPlane(s.reference.v, cw, ch, frame.v_plane());
  return frame;
}

namespace {

/// Decodes frames [begin, end), which must start at a keyframe (or at the
/// warm-up keyframe preceding `first`), writing frames at or after `first`
/// into out[i - first]. Warm-up frames only advance the reference state.
Status DecodeSegment(const EncodedVideo& encoded, int begin, int end, int first,
                     std::vector<Frame>& out) {
  TRACE_SPAN("decode_gop");
  Decoder decoder(encoded.width, encoded.height, encoded.profile);
  for (int i = begin; i < end; ++i) {
    if (i < first) {
      VR_RETURN_IF_ERROR(decoder.Advance(encoded.frames[i]));
      continue;
    }
    VR_ASSIGN_OR_RETURN(Frame frame, decoder.DecodeFrame(encoded.frames[i]));
    out[static_cast<size_t>(i - first)] = std::move(frame);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Video> Decode(const EncodedVideo& encoded) {
  return DecodeRange(encoded, 0, encoded.FrameCount());
}

StatusOr<Video> DecodeRange(const EncodedVideo& encoded, int first, int count,
                            int threads) {
  if (first < 0 || count < 0 || first + count > encoded.FrameCount()) {
    return Status::OutOfRange("decode range outside the encoded video");
  }
  // Random access requires starting from the keyframe at or before `first`.
  int start = first;
  while (start > 0 && !encoded.frames[start].keyframe) --start;
  int end = first + count;

  Video out;
  out.fps = encoded.fps;
  out.frames.resize(count);

  // Keyframes after `start` open independently decodable segments.
  std::vector<int> segment_starts{start};
  for (int i = start + 1; i < end; ++i) {
    if (encoded.frames[i].keyframe) segment_starts.push_back(i);
  }
  int segments = static_cast<int>(segment_starts.size());
  if (threads <= 0) threads = DefaultCodecThreads();

  if (threads <= 1 || segments <= 1) {
    VR_RETURN_IF_ERROR(DecodeSegment(encoded, start, end, first, out.frames));
    return out;
  }
  VR_RETURN_IF_ERROR(internal::CodecParallelForStatus(
      std::min(threads, segments), segments, [&](int index) -> Status {
        int begin = segment_starts[index];
        int stop = index + 1 < segments ? segment_starts[index + 1] : end;
        return DecodeSegment(encoded, begin, stop, first, out.frames);
      }));
  return out;
}

}  // namespace visualroad::video::codec
