#ifndef VISUALROAD_VIDEO_CODEC_RATE_CONTROL_H_
#define VISUALROAD_VIDEO_CODEC_RATE_CONTROL_H_

#include <cstdint>
#include <vector>

#include "video/codec/codec.h"
#include "video/frame.h"

namespace visualroad::video::codec {

/// Closed-loop per-frame rate controller. Targets a constant bitrate by
/// nudging QP after each frame based on the running bit debt; keyframes get a
/// small QP bonus since they seed the rest of the GOP.
class RateController {
 public:
  /// `target_bps` of 0 means constant-QP mode with `base_qp`.
  RateController(int64_t target_bps, double fps, int base_qp);

  /// QP to use for the next frame.
  int PickQp(bool keyframe) const;

  /// Reports the actual size of the frame just encoded.
  void Update(bool keyframe, int64_t bytes);

  bool constant_qp() const { return target_bps_ == 0; }
  int current_qp() const { return qp_; }

 private:
  int64_t target_bps_;
  double bits_per_frame_;
  int qp_;
  double debt_bits_ = 0.0;  // Positive when over budget.
};

/// Predicted payload bits for one frame at `qp` without encoding it: a
/// rate-model of luma activity (intra) or the post-compensation residual
/// proxy — the minimum sampled delta over small whole-frame shifts — (inter)
/// against the quantisation step. `previous` is null for keyframes. Used by
/// the QP pre-pass so rate control no longer needs the actual encoded byte
/// counts.
int64_t EstimateFrameBits(const Frame& frame, const Frame* previous, int qp);

/// Serial rate-control pre-pass: runs the closed-loop controller over
/// EstimateFrameBits instead of real encodes and returns the per-frame QP
/// schedule. With the schedule fixed up front, keyframe-delimited GOPs can
/// encode in parallel and still match the serial path byte for byte.
/// Constant-QP configs (target_bitrate_bps == 0) yield a flat schedule. Costs
/// one sampled pass over the luma planes — orders of magnitude cheaper than
/// the encode it plans.
std::vector<int> PlanQpSchedule(const Video& video, const EncoderConfig& config);

}  // namespace visualroad::video::codec

#endif  // VISUALROAD_VIDEO_CODEC_RATE_CONTROL_H_
