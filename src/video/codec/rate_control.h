#ifndef VISUALROAD_VIDEO_CODEC_RATE_CONTROL_H_
#define VISUALROAD_VIDEO_CODEC_RATE_CONTROL_H_

#include <cstdint>

namespace visualroad::video::codec {

/// Closed-loop per-frame rate controller. Targets a constant bitrate by
/// nudging QP after each frame based on the running bit debt; keyframes get a
/// small QP bonus since they seed the rest of the GOP.
class RateController {
 public:
  /// `target_bps` of 0 means constant-QP mode with `base_qp`.
  RateController(int64_t target_bps, double fps, int base_qp);

  /// QP to use for the next frame.
  int PickQp(bool keyframe) const;

  /// Reports the actual size of the frame just encoded.
  void Update(bool keyframe, int64_t bytes);

  bool constant_qp() const { return target_bps_ == 0; }
  int current_qp() const { return qp_; }

 private:
  int64_t target_bps_;
  double bits_per_frame_;
  int qp_;
  double debt_bits_ = 0.0;  // Positive when over budget.
};

}  // namespace visualroad::video::codec

#endif  // VISUALROAD_VIDEO_CODEC_RATE_CONTROL_H_
