// GOP-parallel encode/decode. Every gop_length-th frame is an I-frame and the
// GOP is closed (keyframes never read the inter reference), so each GOP is an
// independent coding unit: encoding it with fresh reference state produces
// exactly the bytes the streaming path would. The only cross-GOP coupling is
// rate control, which PlanQpSchedule resolves serially up front — analogous to
// the generator's per-tile RNG substreams.

#include <algorithm>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "video/codec/codec.h"
#include "video/codec/codec_internal.h"
#include "video/codec/rate_control.h"

namespace visualroad::video::codec {

namespace {

/// Process-wide pool shared by every codec call. Intentionally leaked so
/// worker shutdown never races static destruction at process exit.
ThreadPool& CodecPool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::HardwareThreads(), "codec");
  return *pool;
}

}  // namespace

int DefaultCodecThreads() { return ThreadPool::HardwareThreads(); }

PoolStats CodecPoolStats() { return CodecPool().stats(); }

namespace internal {

metrics::Counter& FramesEncodedCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global().GetCounter(
      "vr_codec_frames_encoded_total",
      "Frames encoded, across the streaming and GOP-parallel paths");
  return counter;
}

metrics::Counter& FramesDecodedCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global().GetCounter(
      "vr_codec_frames_decoded_total",
      "Frames fully decoded and returned to a caller");
  return counter;
}

metrics::Counter& WarmupFramesCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global().GetCounter(
      "vr_codec_warmup_frames_total",
      "Frames decoded only to advance a decoder to a seek target");
  return counter;
}

Status CodecParallelForStatus(int parallelism, int count,
                              const std::function<Status(int)>& fn) {
  if (count <= 0) return Status::Ok();
  parallelism = std::clamp(parallelism, 1, count);
  int grain = (count + parallelism - 1) / parallelism;
  return CodecPool().ParallelForStatus(count, fn, grain);
}

}  // namespace internal

StatusOr<EncodedVideo> ParallelEncode(const Video& video, const EncoderConfig& config,
                                      int threads) {
  if (video.frames.empty()) {
    return Status::InvalidArgument("cannot encode an empty video");
  }
  int width = video.Width(), height = video.Height();
  VR_RETURN_IF_ERROR(internal::ValidateEncoderConfig(width, height, config));

  // Serial pre-pass: fix the QP of every frame before any GOP encodes, so the
  // schedule (and thus the bitstream) is independent of thread count.
  std::vector<int> schedule;
  {
    TRACE_SPAN("plan_qp_schedule");
    schedule = PlanQpSchedule(video, config);
  }
  internal::EncoderSettings settings =
      internal::MakeEncoderSettings(width, height, config);

  int frame_count = static_cast<int>(video.frames.size());
  int gop = config.gop_length;
  int gops = (frame_count + gop - 1) / gop;

  EncodedVideo out;
  out.profile = config.profile;
  out.width = width;
  out.height = height;
  out.fps = video.fps;
  out.frames.resize(video.frames.size());

  auto encode_gop = [&](int index) -> Status {
    TRACE_SPAN("encode_gop");
    int begin = index * gop;
    int end = std::min(begin + gop, frame_count);
    internal::ReconPlanes reference;
    for (int i = begin; i < end; ++i) {
      VR_ASSIGN_OR_RETURN(out.frames[i],
                          internal::EncodeFrameImpl(settings, reference,
                                                    video.frames[i],
                                                    /*keyframe=*/i == begin,
                                                    schedule[i]));
    }
    return Status::Ok();
  };

  if (threads <= 0) threads = DefaultCodecThreads();
  if (threads <= 1 || gops <= 1) {
    for (int g = 0; g < gops; ++g) VR_RETURN_IF_ERROR(encode_gop(g));
    return out;
  }
  VR_RETURN_IF_ERROR(internal::CodecParallelForStatus(threads, gops, encode_gop));
  return out;
}

StatusOr<EncodedVideo> Encode(const Video& video, const EncoderConfig& config) {
  return ParallelEncode(video, config, /*threads=*/1);
}

StatusOr<Video> ParallelDecode(const EncodedVideo& encoded, int threads) {
  return DecodeRange(encoded, 0, encoded.FrameCount(),
                     threads <= 0 ? DefaultCodecThreads() : threads);
}

}  // namespace visualroad::video::codec
