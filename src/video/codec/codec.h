#ifndef VISUALROAD_VIDEO_CODEC_CODEC_H_
#define VISUALROAD_VIDEO_CODEC_CODEC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "video/frame.h"

namespace visualroad::video::codec {

/// Coding profiles. Visual Road 1.0 supports H264 and HEVC (Section 5); VRC
/// mirrors that with two genuinely different coding toolsets:
///  - kH264Like: 16x16 prediction blocks, 3 intra modes, +/-8 motion search.
///  - kHevcLike: 32x32 prediction blocks, planar intra mode, +/-12 search
///    (better compression, slower encode — the same trade real HEVC makes).
enum class Profile : uint8_t {
  kH264Like = 0,
  kHevcLike = 1,
};

/// Returns "h264" or "hevc".
const char* ProfileName(Profile profile);

/// Prediction (macro)block edge length for `profile`.
int ProfileBlockSize(Profile profile);

/// Default motion search radius for `profile`.
int ProfileSearchRadius(Profile profile);

/// Encoder settings.
struct EncoderConfig {
  Profile profile = Profile::kH264Like;
  /// Frames per GOP; every gop_length-th frame is an I-frame.
  int gop_length = 15;
  /// Constant quantisation parameter [0, 51] used when target_bitrate_bps==0.
  int qp = 28;
  /// When non-zero, a closed-loop rate controller adjusts QP per frame to hit
  /// this many bits per second of video.
  int64_t target_bitrate_bps = 0;
  /// Integer-pel motion search radius; 0 selects the profile default.
  int search_radius = 0;
};

/// One encoded frame: an independently entropy-coded arithmetic payload.
struct EncodedFrame {
  bool keyframe = false;
  uint8_t qp = 28;
  std::vector<uint8_t> data;
};

/// A full encoded video (VRC elementary stream).
struct EncodedVideo {
  Profile profile = Profile::kH264Like;
  int width = 0;
  int height = 0;
  double fps = 30.0;
  std::vector<EncodedFrame> frames;

  int FrameCount() const { return static_cast<int>(frames.size()); }
  /// Total payload bytes across all frames.
  int64_t TotalBytes() const;
  /// Average bits per second given `fps`.
  double BitrateBps() const;
};

/// Streaming encoder: feed frames in display order.
class Encoder {
 public:
  /// Validates the configuration; returns an error for bad dimensions/QP.
  static StatusOr<Encoder> Create(int width, int height, const EncoderConfig& config);

  Encoder(Encoder&&) noexcept;
  Encoder& operator=(Encoder&&) noexcept;
  ~Encoder();

  /// Encodes the next frame. Frames must match the configured dimensions.
  StatusOr<EncodedFrame> EncodeFrame(const Frame& frame);

  const EncoderConfig& config() const { return config_; }

 private:
  struct State;
  explicit Encoder(std::unique_ptr<State> state);

  EncoderConfig config_;
  std::unique_ptr<State> state_;
};

/// Streaming decoder: feed encoded frames in coding order.
class Decoder {
 public:
  Decoder(int width, int height, Profile profile);

  /// Decodes the next frame. The first frame must be a keyframe.
  StatusOr<Frame> DecodeFrame(const EncodedFrame& encoded);

  /// Decodes `encoded` into the reference state without materialising an
  /// output frame — the cheap warm-up path when random access lands mid-GOP.
  Status Advance(const EncodedFrame& encoded);

 private:
  struct State;
  Status DecodeInto(const EncodedFrame& encoded);

  std::shared_ptr<State> state_;
};

/// Encodes an entire video. Equivalent to ParallelEncode(video, config, 1).
StatusOr<EncodedVideo> Encode(const Video& video, const EncoderConfig& config);

/// GOP-parallel encode, byte-identical to Encode() at every thread count: a
/// serial rate-control pre-pass (PlanQpSchedule) fixes the per-frame QP, then
/// keyframe-delimited GOPs — independent coding units in this closed-GOP
/// format — encode concurrently on the shared codec pool. `threads` <= 0
/// selects DefaultCodecThreads().
StatusOr<EncodedVideo> ParallelEncode(const Video& video, const EncoderConfig& config,
                                      int threads = 0);

/// Decodes an entire encoded video.
StatusOr<Video> Decode(const EncodedVideo& encoded);

/// GOP-parallel decode of the whole stream; output is identical to Decode().
/// `threads` <= 0 selects DefaultCodecThreads().
StatusOr<Video> ParallelDecode(const EncodedVideo& encoded, int threads = 0);

/// Decodes only frames [first, first+count) — requires decoding from the
/// preceding keyframe, which is what offline (random access) engines do.
/// Warm-up frames before `first` advance the reference without being
/// materialised. With `threads` > 1, independent GOPs inside the range decode
/// concurrently; `threads` <= 0 selects DefaultCodecThreads().
StatusOr<Video> DecodeRange(const EncodedVideo& encoded, int first, int count,
                            int threads = 1);

/// Worker count used when `threads` <= 0 is passed to the calls above: one per
/// hardware thread.
int DefaultCodecThreads();

/// Cumulative counters of the process-wide codec pool, for the benchmark
/// parallel-efficiency lines.
PoolStats CodecPoolStats();

}  // namespace visualroad::video::codec

#endif  // VISUALROAD_VIDEO_CODEC_CODEC_H_
