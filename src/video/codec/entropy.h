#ifndef VISUALROAD_VIDEO_CODEC_ENTROPY_H_
#define VISUALROAD_VIDEO_CODEC_ENTROPY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace visualroad::video::codec {

/// Adaptive probability model for one binary decision context. Probability of
/// the bit being zero, in 1/65536 units; adapts with an exponential moving
/// average on each coded bit (CABAC-style context modelling).
struct BitModel {
  uint16_t prob_zero = 1 << 15;

  void Update(int bit) {
    // Shift-based adaptation, rate 1/32.
    if (bit == 0) {
      prob_zero = static_cast<uint16_t>(prob_zero + ((65536 - prob_zero) >> 5));
    } else {
      prob_zero = static_cast<uint16_t>(prob_zero - (prob_zero >> 5));
    }
    // Keep the model away from certainty so the coder stays renormalisable.
    if (prob_zero < 64) prob_zero = 64;
    if (prob_zero > 65536 - 64) prob_zero = 65536 - 64;
  }
};

/// Binary range encoder (carry-less, LZMA-style renormalisation). Together
/// with BitModel this forms VRC's adaptive arithmetic entropy coder.
class ArithmeticEncoder {
 public:
  /// Encodes one bit under an adaptive context model.
  void EncodeBit(BitModel& model, int bit);
  /// Encodes one equiprobable ("bypass") bit.
  void EncodeBypass(int bit);
  /// Encodes `count` bypass bits, MSB first.
  void EncodeBypassBits(uint32_t bits, int count);
  /// Flushes the coder state and returns the byte stream.
  std::vector<uint8_t> Finish();

  size_t ByteCount() const { return bytes_.size(); }

 private:
  void ShiftLow();

  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;
  int64_t cache_size_ = 1;
  std::vector<uint8_t> bytes_;
};

/// Binary range decoder matching ArithmeticEncoder.
class ArithmeticDecoder {
 public:
  ArithmeticDecoder(const uint8_t* data, size_t size);
  explicit ArithmeticDecoder(const std::vector<uint8_t>& data)
      : ArithmeticDecoder(data.data(), data.size()) {}

  int DecodeBit(BitModel& model);
  int DecodeBypass();
  uint32_t DecodeBypassBits(int count);

 private:
  uint8_t NextByte();

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint32_t code_ = 0;
};

/// Encodes a non-negative integer with an adaptive-unary prefix (up to
/// `unary_limit` context-coded continuation bits) followed by a bypass
/// exponential-Golomb suffix for the remainder. `models` must hold at least
/// `unary_limit` contexts.
void EncodeUnaryEg(ArithmeticEncoder& enc, BitModel* models, int unary_limit,
                   uint32_t value);

/// Decodes a value written by EncodeUnaryEg.
uint32_t DecodeUnaryEg(ArithmeticDecoder& dec, BitModel* models, int unary_limit);

/// Context set for coding one 8x8 residual block: a coded-block flag,
/// position-bucketed significance and last-coefficient flags, and adaptive
/// level-magnitude models. One instance per plane type (luma/chroma).
struct ResidualContexts {
  BitModel cbf;
  BitModel significant[4];
  BitModel last[4];
  BitModel level[12];
};

/// Entropy-codes an 8x8 block of quantised levels (raster order; the zig-zag
/// scan is applied internally): CBF, then per-coefficient significance, sign
/// (bypass), magnitude (adaptive unary + exp-Golomb escape), and a
/// last-significant flag.
void EncodeResidualBlock(ArithmeticEncoder& enc, ResidualContexts& ctx,
                         const int16_t* levels);

/// Decodes a block written by EncodeResidualBlock into raster order. Returns
/// true when the block had any non-zero coefficient.
bool DecodeResidualBlock(ArithmeticDecoder& dec, ResidualContexts& ctx,
                         int16_t* levels);

}  // namespace visualroad::video::codec

#endif  // VISUALROAD_VIDEO_CODEC_ENTROPY_H_
