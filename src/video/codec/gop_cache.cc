#include "video/codec/gop_cache.h"

#include <algorithm>
#include <condition_variable>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace visualroad::video::codec {

namespace {

/// Registry instruments aggregating across every GopCache instance (tests
/// construct private caches besides Global()). Per-instance stats() remains
/// the exact per-cache view.
struct CacheMetrics {
  metrics::Counter& hits;
  metrics::Counter& misses;
  metrics::Counter& coalesced;
  metrics::Counter& evictions;
  metrics::Gauge& bytes_in_use;
  metrics::Gauge& entries;
  metrics::Histogram& decode_seconds;

  static CacheMetrics& Get() {
    static CacheMetrics* instruments = [] {
      metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
      return new CacheMetrics{
          registry.GetCounter("vr_gop_cache_hits_total",
                              "GOP cache lookups satisfied by a ready entry"),
          registry.GetCounter(
              "vr_gop_cache_misses_total",
              "GOP cache lookups that decoded as the single-flight leader"),
          registry.GetCounter(
              "vr_gop_cache_coalesced_total",
              "GOP cache lookups that waited on another caller's decode"),
          registry.GetCounter("vr_gop_cache_evictions_total",
                              "Cached GOPs dropped to fit the byte budget"),
          registry.GetGauge("vr_gop_cache_bytes_in_use",
                            "Decoded bytes resident across all GOP caches"),
          registry.GetGauge("vr_gop_cache_entries",
                            "Ready GOP entries resident across all GOP caches"),
          registry.GetHistogram(
              "vr_gop_decode_seconds",
              "Wall-clock duration of single-flight GOP decodes",
              {0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0}),
      };
    }();
    return *instruments;
  }
};

struct Key {
  uint64_t identity = 0;
  int start = 0;

  bool operator==(const Key& other) const {
    return identity == other.identity && start == other.start;
  }
};

struct KeyHash {
  size_t operator()(const Key& key) const {
    uint64_t h = key.identity ^ (static_cast<uint64_t>(key.start) * 0x9e3779b97f4a7c15ull);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

/// Decoded footprint of one YUV 4:2:0 frame.
int64_t DecodedFrameBytes(int width, int height) {
  int64_t luma = static_cast<int64_t>(width) * height;
  int64_t chroma =
      static_cast<int64_t>((width + 1) / 2) * ((height + 1) / 2);
  return luma + 2 * chroma;
}

}  // namespace

struct GopCache::Shard {
  struct Entry {
    std::shared_ptr<const DecodedGop> value;  // Null while the decode is in flight.
    bool decoding = false;
    std::list<Key>::iterator lru_position;  // Valid only when `value` is set.
  };

  mutable std::mutex mutex;
  std::condition_variable ready;
  std::unordered_map<Key, Entry, KeyHash> entries;
  std::list<Key> lru;  // Front is the least recently used.
  int64_t bytes = 0;
  GopCacheStats stats;
};

GopCache::GopCache(const GopCacheOptions& options)
    : capacity_bytes_(std::max<int64_t>(options.capacity_bytes, 0)) {
  int shards = std::max(options.shards, 1);
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

GopCache::~GopCache() = default;

GopCache& GopCache::Global() {
  // Leaked intentionally: engine threads may outlive static destruction order.
  static GopCache* cache = new GopCache();
  return *cache;
}

GopCache::Shard& GopCache::ShardFor(uint64_t identity, int start) const {
  size_t index = KeyHash{}(Key{identity, start}) % shards_.size();
  return *shards_[index];
}

void GopCache::EvictLocked(Shard& shard) {
  int64_t budget =
      std::max<int64_t>(capacity_bytes_.load() / static_cast<int64_t>(shards_.size()), 1);
  while (shard.bytes > budget && !shard.lru.empty()) {
    Key victim = shard.lru.front();
    shard.lru.pop_front();
    auto it = shard.entries.find(victim);
    if (it != shard.entries.end() && it->second.value != nullptr) {
      shard.bytes -= it->second.value->bytes;
      CacheMetrics::Get().bytes_in_use.Add(
          -static_cast<double>(it->second.value->bytes));
      CacheMetrics::Get().entries.Add(-1.0);
      shard.entries.erase(it);
      ++shard.stats.evictions;
      CacheMetrics::Get().evictions.Increment();
    }
  }
}

StatusOr<std::shared_ptr<const DecodedGop>> GopCache::Get(
    const EncodedVideo& encoded, uint64_t identity, int start, int count,
    Outcome* outcome) {
  Key key{identity, start};
  Shard& shard = ShardFor(identity, start);

  bool waited = false;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
      auto it = shard.entries.find(key);
      if (it == shard.entries.end()) break;  // Cold (or a leader failed): lead.
      if (!it->second.decoding) {
        // Ready: refresh recency and share the entry.
        shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_position);
        if (waited) {
          ++shard.stats.coalesced;
          CacheMetrics::Get().coalesced.Increment();
          if (outcome) *outcome = Outcome::kCoalesced;
        } else {
          ++shard.stats.hits;
          CacheMetrics::Get().hits.Increment();
          if (outcome) *outcome = Outcome::kHit;
        }
        return it->second.value;
      }
      waited = true;
      shard.ready.wait(lock);
    }
    // Single-flight leader: publish the in-flight marker before decoding.
    shard.entries[key].decoding = true;
    ++shard.stats.misses;
    CacheMetrics::Get().misses.Increment();
    if (outcome) *outcome = Outcome::kMiss;
  }

  // Decode outside the lock; other keys (and other shards) proceed freely.
  // Serial decode: the GOP itself is the unit of parallelism here.
  Stopwatch decode_watch;
  StatusOr<Video> decoded = [&] {
    TRACE_SPAN("gop_decode");
    return DecodeRange(encoded, start, count, /*threads=*/1);
  }();
  CacheMetrics::Get().decode_seconds.Observe(decode_watch.ElapsedSeconds());

  std::unique_lock<std::mutex> lock(shard.mutex);
  if (!decoded.ok()) {
    shard.entries.erase(key);
    shard.ready.notify_all();
    return decoded.status();
  }

  auto gop = std::make_shared<DecodedGop>();
  gop->first_frame = start;
  gop->frames = std::move(decoded->frames);
  gop->bytes = DecodedFrameBytes(encoded.width, encoded.height) *
               static_cast<int64_t>(gop->frames.size());

  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    // Clear() ran mid-decode; hand the result to the caller uncached.
    shard.ready.notify_all();
    return std::shared_ptr<const DecodedGop>(gop);
  }
  it->second.decoding = false;
  it->second.value = gop;
  it->second.lru_position = shard.lru.insert(shard.lru.end(), key);
  shard.bytes += gop->bytes;
  CacheMetrics::Get().bytes_in_use.Add(static_cast<double>(gop->bytes));
  CacheMetrics::Get().entries.Add(1.0);
  EvictLocked(shard);
  shard.ready.notify_all();
  return std::shared_ptr<const DecodedGop>(gop);
}

void GopCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    // In-flight decodes stay: their leaders complete (uncached if the entry
    // vanished). Only ready entries are dropped.
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (it->second.decoding) {
        ++it;
      } else {
        shard->lru.erase(it->second.lru_position);
        shard->bytes -= it->second.value->bytes;
        CacheMetrics::Get().bytes_in_use.Add(
            -static_cast<double>(it->second.value->bytes));
        CacheMetrics::Get().entries.Add(-1.0);
        it = shard->entries.erase(it);
      }
    }
  }
}

void GopCache::set_capacity_bytes(int64_t bytes) {
  capacity_bytes_.store(std::max<int64_t>(bytes, 0));
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    EvictLocked(*shard);
  }
}

GopCacheStats GopCache::stats() const {
  GopCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.coalesced += shard->stats.coalesced;
    total.evictions += shard->stats.evictions;
    total.bytes_in_use += shard->bytes;
    total.entries += static_cast<int64_t>(shard->entries.size());
  }
  return total;
}

uint64_t StreamIdentity(const EncodedVideo& encoded) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  auto mix_byte = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  auto mix_int = [&](uint64_t value) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<uint8_t>(value >> (i * 8)));
  };
  mix_int(static_cast<uint64_t>(encoded.width));
  mix_int(static_cast<uint64_t>(encoded.height));
  mix_int(static_cast<uint64_t>(encoded.profile));
  mix_int(static_cast<uint64_t>(encoded.frames.size()));
  for (const EncodedFrame& frame : encoded.frames) {
    mix_byte(frame.keyframe ? 1 : 0);
    mix_byte(frame.qp);
    mix_int(frame.data.size());
    for (uint8_t byte : frame.data) mix_byte(byte);
  }
  return h;
}

std::vector<int> GopStarts(const EncodedVideo& encoded) {
  std::vector<int> starts;
  if (encoded.FrameCount() == 0) return starts;
  // Frame 0 always opens the first GOP; a malformed stream whose first frame
  // is not a keyframe fails inside the decoder, exactly as Decode() does.
  starts.push_back(0);
  for (int i = 1; i < encoded.FrameCount(); ++i) {
    if (encoded.frames[i].keyframe) starts.push_back(i);
  }
  return starts;
}

StatusOr<Video> CachedDecode(const EncodedVideo& encoded, GopCache& cache,
                             GopCacheCounters* counters) {
  return CachedDecodeRange(encoded, 0, encoded.FrameCount(), cache, counters);
}

StatusOr<Video> CachedDecodeRange(const EncodedVideo& encoded, int first, int count,
                                  GopCache& cache, GopCacheCounters* counters) {
  if (first < 0 || count < 0 || first + count > encoded.FrameCount()) {
    return Status::OutOfRange("decode range outside the encoded video");
  }
  Video out;
  out.fps = encoded.fps;
  out.frames.reserve(count);
  if (count == 0) return out;

  std::vector<int> starts = GopStarts(encoded);
  uint64_t identity = StreamIdentity(encoded);
  int total = encoded.FrameCount();
  int end = first + count;

  // First GOP whose range contains `first`: the last start <= first.
  size_t g = static_cast<size_t>(
      std::upper_bound(starts.begin(), starts.end(), first) - starts.begin() - 1);
  for (; g < starts.size() && starts[g] < end; ++g) {
    int begin = starts[g];
    int stop = g + 1 < starts.size() ? starts[g + 1] : total;
    GopCache::Outcome outcome = GopCache::Outcome::kMiss;
    VR_ASSIGN_OR_RETURN(
        std::shared_ptr<const DecodedGop> gop,
        cache.Get(encoded, identity, begin, stop - begin, &outcome));
    if (counters != nullptr) {
      if (outcome == GopCache::Outcome::kMiss) {
        counters->misses.fetch_add(1, std::memory_order_relaxed);
        counters->frames_decoded.fetch_add(static_cast<int64_t>(gop->frames.size()),
                                           std::memory_order_relaxed);
      } else {
        counters->hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (int i = std::max(begin, first); i < std::min(stop, end); ++i) {
      out.frames.push_back(gop->frames[static_cast<size_t>(i - begin)]);
    }
  }
  return out;
}

}  // namespace visualroad::video::codec
