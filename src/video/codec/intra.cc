#include "video/codec/intra.h"

#include <algorithm>
#include <cstdlib>

namespace visualroad::video::codec {

void IntraPredict(const Plane& recon, int bx, int by, int size, IntraMode mode,
                  uint8_t* out) {
  bool has_top = by > 0;
  bool has_left = bx > 0;

  auto top = [&](int x) -> int {
    return recon.At(std::min(bx + x, recon.width - 1), by - 1);
  };
  auto left = [&](int y) -> int {
    return recon.At(bx - 1, std::min(by + y, recon.height - 1));
  };

  switch (mode) {
    case IntraMode::kDc: {
      int sum = 0, count = 0;
      if (has_top) {
        for (int x = 0; x < size; ++x) sum += top(x);
        count += size;
      }
      if (has_left) {
        for (int y = 0; y < size; ++y) sum += left(y);
        count += size;
      }
      uint8_t dc = count > 0 ? static_cast<uint8_t>((sum + count / 2) / count) : 128;
      std::fill(out, out + size * size, dc);
      break;
    }
    case IntraMode::kHorizontal: {
      for (int y = 0; y < size; ++y) {
        uint8_t v = has_left ? static_cast<uint8_t>(left(y)) : 128;
        std::fill(out + y * size, out + (y + 1) * size, v);
      }
      break;
    }
    case IntraMode::kVertical: {
      for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
          out[y * size + x] = has_top ? static_cast<uint8_t>(top(x)) : 128;
        }
      }
      break;
    }
    case IntraMode::kPlanar: {
      // Bilinear blend of the top row and left column, HEVC-style.
      int top_right = has_top ? top(size - 1) : 128;
      int bottom_left = has_left ? left(size - 1) : 128;
      for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
          int t = has_top ? top(x) : 128;
          int l = has_left ? left(y) : 128;
          int horizontal = (size - 1 - x) * l + (x + 1) * top_right;
          int vertical = (size - 1 - y) * t + (y + 1) * bottom_left;
          out[y * size + x] =
              static_cast<uint8_t>((horizontal + vertical + size) / (2 * size));
        }
      }
      break;
    }
  }
}

IntraMode ChooseIntraMode(const Plane& source, const Plane& recon, int bx, int by,
                          int size, bool allow_planar) {
  IntraMode modes[] = {IntraMode::kDc, IntraMode::kHorizontal, IntraMode::kVertical,
                       IntraMode::kPlanar};
  int mode_count = allow_planar ? 4 : 3;
  IntraMode best = IntraMode::kDc;
  int64_t best_sad = INT64_MAX;
  std::vector<uint8_t> prediction(static_cast<size_t>(size) * size);
  for (int m = 0; m < mode_count; ++m) {
    IntraPredict(recon, bx, by, size, modes[m], prediction.data());
    int64_t sad = 0;
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        sad += std::abs(static_cast<int>(source.At(bx + x, by + y)) -
                        prediction[y * size + x]);
      }
    }
    if (sad < best_sad) {
      best_sad = sad;
      best = modes[m];
    }
  }
  return best;
}

}  // namespace visualroad::video::codec
