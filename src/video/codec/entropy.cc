#include "video/codec/entropy.h"

#include <cstdlib>

#include "video/codec/dct.h"

namespace visualroad::video::codec {

namespace {

constexpr uint32_t kTopValue = 1u << 24;

/// Buckets a zig-zag scan position into one of four frequency bands.
int PositionBucket(int pos) {
  if (pos == 0) return 0;
  if (pos <= 5) return 1;
  if (pos <= 20) return 2;
  return 3;
}

}  // namespace

void ArithmeticEncoder::ShiftLow() {
  if (low_ < 0xFF000000ULL || low_ > 0xFFFFFFFFULL) {
    uint8_t carry = static_cast<uint8_t>(low_ >> 32);
    // First iteration emits the cached byte (initialised so the very first
    // flush writes a leading zero the decoder skips).
    while (cache_size_ != 0) {
      bytes_.push_back(static_cast<uint8_t>(cache_ + carry));
      cache_ = 0xFF;
      --cache_size_;
    }
    cache_ = static_cast<uint8_t>(low_ >> 24);
    cache_size_ = 0;
  }
  ++cache_size_;
  low_ = (low_ << 8) & 0xFFFFFFFFULL;
}

void ArithmeticEncoder::EncodeBit(BitModel& model, int bit) {
  uint32_t bound = static_cast<uint32_t>(
      (static_cast<uint64_t>(range_) * model.prob_zero) >> 16);
  if (bit == 0) {
    range_ = bound;
  } else {
    low_ += bound;
    range_ -= bound;
  }
  model.Update(bit);
  while (range_ < kTopValue) {
    range_ <<= 8;
    ShiftLow();
  }
}

void ArithmeticEncoder::EncodeBypass(int bit) {
  range_ >>= 1;
  if (bit != 0) low_ += range_;
  while (range_ < kTopValue) {
    range_ <<= 8;
    ShiftLow();
  }
}

void ArithmeticEncoder::EncodeBypassBits(uint32_t bits, int count) {
  for (int i = count - 1; i >= 0; --i) EncodeBypass((bits >> i) & 1);
}

std::vector<uint8_t> ArithmeticEncoder::Finish() {
  for (int i = 0; i < 5; ++i) ShiftLow();
  return std::move(bytes_);
}

ArithmeticDecoder::ArithmeticDecoder(const uint8_t* data, size_t size)
    : data_(data), size_(size) {
  // Skip the leading flush byte, then prime 4 code bytes.
  NextByte();
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | NextByte();
}

uint8_t ArithmeticDecoder::NextByte() { return pos_ < size_ ? data_[pos_++] : 0; }

int ArithmeticDecoder::DecodeBit(BitModel& model) {
  uint32_t bound = static_cast<uint32_t>(
      (static_cast<uint64_t>(range_) * model.prob_zero) >> 16);
  int bit;
  if (code_ < bound) {
    range_ = bound;
    bit = 0;
  } else {
    code_ -= bound;
    range_ -= bound;
    bit = 1;
  }
  model.Update(bit);
  while (range_ < kTopValue) {
    range_ <<= 8;
    code_ = (code_ << 8) | NextByte();
  }
  return bit;
}

int ArithmeticDecoder::DecodeBypass() {
  range_ >>= 1;
  int bit = 0;
  if (code_ >= range_) {
    code_ -= range_;
    bit = 1;
  }
  while (range_ < kTopValue) {
    range_ <<= 8;
    code_ = (code_ << 8) | NextByte();
  }
  return bit;
}

uint32_t ArithmeticDecoder::DecodeBypassBits(int count) {
  uint32_t value = 0;
  for (int i = 0; i < count; ++i) value = (value << 1) | DecodeBypass();
  return value;
}

void EncodeUnaryEg(ArithmeticEncoder& enc, BitModel* models, int unary_limit,
                   uint32_t value) {
  int prefix = 0;
  while (prefix < unary_limit && value > static_cast<uint32_t>(prefix)) {
    enc.EncodeBit(models[prefix], 1);
    ++prefix;
  }
  if (prefix < unary_limit) {
    enc.EncodeBit(models[prefix], 0);
    return;
  }
  // Remainder coded as bypass exp-Golomb (order 0).
  uint32_t remainder = value - unary_limit;
  uint64_t mapped = static_cast<uint64_t>(remainder) + 1;
  int bits = 0;
  while ((mapped >> bits) > 1) ++bits;
  for (int i = 0; i < bits; ++i) enc.EncodeBypass(0);
  enc.EncodeBypass(1);
  enc.EncodeBypassBits(static_cast<uint32_t>(mapped & ((1ULL << bits) - 1)), bits);
}

void EncodeResidualBlock(ArithmeticEncoder& enc, ResidualContexts& ctx,
                         const int16_t* levels) {
  int last_significant = -1;
  for (int pos = 0; pos < kTransformArea; ++pos) {
    if (levels[kZigZag8x8[pos]] != 0) last_significant = pos;
  }
  if (last_significant < 0) {
    enc.EncodeBit(ctx.cbf, 0);
    return;
  }
  enc.EncodeBit(ctx.cbf, 1);
  for (int pos = 0; pos <= last_significant; ++pos) {
    int16_t level = levels[kZigZag8x8[pos]];
    int bucket = PositionBucket(pos);
    if (level == 0) {
      enc.EncodeBit(ctx.significant[bucket], 0);
      continue;
    }
    enc.EncodeBit(ctx.significant[bucket], 1);
    enc.EncodeBypass(level < 0 ? 1 : 0);
    EncodeUnaryEg(enc, ctx.level, 12, static_cast<uint32_t>(std::abs(level) - 1));
    if (pos < kTransformArea - 1) {
      enc.EncodeBit(ctx.last[bucket], pos == last_significant ? 1 : 0);
    }
  }
}

bool DecodeResidualBlock(ArithmeticDecoder& dec, ResidualContexts& ctx,
                         int16_t* levels) {
  for (int i = 0; i < kTransformArea; ++i) levels[i] = 0;
  if (dec.DecodeBit(ctx.cbf) == 0) return false;
  for (int pos = 0; pos < kTransformArea; ++pos) {
    int bucket = PositionBucket(pos);
    if (dec.DecodeBit(ctx.significant[bucket]) == 0) continue;
    int sign = dec.DecodeBypass();
    uint32_t magnitude = DecodeUnaryEg(dec, ctx.level, 12) + 1;
    int16_t level = static_cast<int16_t>(sign ? -static_cast<int32_t>(magnitude)
                                              : static_cast<int32_t>(magnitude));
    levels[kZigZag8x8[pos]] = level;
    if (pos < kTransformArea - 1 && dec.DecodeBit(ctx.last[bucket]) == 1) break;
  }
  return true;
}

uint32_t DecodeUnaryEg(ArithmeticDecoder& dec, BitModel* models, int unary_limit) {
  int prefix = 0;
  while (prefix < unary_limit && dec.DecodeBit(models[prefix]) == 1) ++prefix;
  if (prefix < unary_limit) return static_cast<uint32_t>(prefix);
  int bits = 0;
  while (dec.DecodeBypass() == 0) {
    if (++bits > 32) break;  // Corrupt stream guard.
  }
  uint32_t suffix = dec.DecodeBypassBits(bits);
  uint32_t mapped = (1u << bits) | suffix;
  return static_cast<uint32_t>(unary_limit) + (mapped - 1);
}

}  // namespace visualroad::video::codec
