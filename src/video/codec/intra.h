#ifndef VISUALROAD_VIDEO_CODEC_INTRA_H_
#define VISUALROAD_VIDEO_CODEC_INTRA_H_

#include <cstdint>

#include "video/codec/motion.h"

namespace visualroad::video::codec {

/// Intra prediction modes for an 8x8 transform block. kPlanar is only used by
/// the HEVC-like profile (its presence is one of the two profiles' genuine
/// coding-efficiency differences).
enum class IntraMode : uint8_t {
  kDc = 0,
  kHorizontal = 1,
  kVertical = 2,
  kPlanar = 3,
};

/// Builds the `size` x `size` intra prediction for the block at (bx, by) from
/// the already-reconstructed samples of `recon` above and to the left.
/// Unavailable neighbours default to 128, as in H.264.
void IntraPredict(const Plane& recon, int bx, int by, int size, IntraMode mode,
                  uint8_t* out);

/// Evaluates the allowed modes against the source block and returns the mode
/// with the lowest SAD. `allow_planar` enables the HEVC-like profile's
/// fourth mode.
IntraMode ChooseIntraMode(const Plane& source, const Plane& recon, int bx, int by,
                          int size, bool allow_planar);

}  // namespace visualroad::video::codec

#endif  // VISUALROAD_VIDEO_CODEC_INTRA_H_
