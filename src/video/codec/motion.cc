#include "video/codec/motion.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "video/kernels/kernels.h"

namespace visualroad::video::codec {

namespace {

int ClampCoord(int v, int limit) { return std::clamp(v, 0, limit - 1); }

/// True for the block widths the dispatch table's SAD kernel handles (full
/// luma blocks and their chroma halves).
bool KernelSadSize(int size) { return size == 8 || size == 16 || size == 32; }

/// SAD without call accounting; DiamondSearch batches its own count.
int64_t SadBoundedImpl(const Plane& cur, const Plane& ref, int bx, int by,
                       int size, int dx, int dy, int64_t bound) {
  int64_t sad = 0;
  bool inside = bx + dx >= 0 && by + dy >= 0 && bx + dx + size <= ref.width &&
                by + dy + size <= ref.height;
  if (inside) {
    if (KernelSadSize(size)) {
      return kernels::Kernels().sad_bounded(cur.Row(by) + bx, cur.width,
                                            ref.Row(by + dy) + bx + dx,
                                            ref.width, size, bound);
    }
    for (int y = 0; y < size; ++y) {
      const uint8_t* crow = cur.Row(by + y) + bx;
      const uint8_t* rrow = ref.Row(by + dy + y) + bx + dx;
      for (int x = 0; x < size; ++x) {
        sad += std::abs(static_cast<int>(crow[x]) - rrow[x]);
      }
      if (sad >= bound) return sad;
    }
    return sad;
  }
  // Edge-clamped slow path: per-sample coordinate clamping resists a
  // contiguous-row kernel; blocks touching the frame border are a thin
  // minority, so this stays scalar.
  for (int y = 0; y < size; ++y) {
    const uint8_t* crow = cur.Row(by + y) + bx;
    const uint8_t* rrow = ref.Row(ClampCoord(by + dy + y, ref.height));
    for (int x = 0; x < size; ++x) {
      sad += std::abs(static_cast<int>(crow[x]) -
                      rrow[ClampCoord(bx + dx + x, ref.width)]);
    }
    if (sad >= bound) return sad;
  }
  return sad;
}

}  // namespace

int64_t BlockSadBounded(const Plane& cur, const Plane& ref, int bx, int by, int size,
                        int dx, int dy, int64_t bound) {
  kernels::CountKernelCalls(kernels::Kernel::kSad, 1);
  return SadBoundedImpl(cur, ref, bx, by, size, dx, dy, bound);
}

int64_t BlockSad(const Plane& cur, const Plane& ref, int bx, int by, int size, int dx,
                 int dy) {
  return BlockSadBounded(cur, ref, bx, by, size, dx, dy,
                         std::numeric_limits<int64_t>::max());
}

MotionVector DiamondSearch(const Plane& cur, const Plane& ref, int bx, int by,
                           int size, int search_radius, MotionVector predictor) {
  // Candidates only ever replace `best` on a strict improvement, so bounding
  // each SAD by the current best keeps every accept/reject decision — and so
  // the returned vector — identical to the unbounded search, while losing
  // candidates abandon the sum early. An accepted SAD never hit its bound,
  // so best.sad stays exact.
  uint64_t evaluations = 0;
  auto evaluate = [&](int dx, int dy, int64_t bound) -> int64_t {
    ++evaluations;
    return SadBoundedImpl(cur, ref, bx, by, size, dx, dy, bound);
  };

  MotionVector best{0, 0,
                    evaluate(0, 0, std::numeric_limits<int64_t>::max())};
  if (predictor.dx != 0 || predictor.dy != 0) {
    int64_t sad = evaluate(predictor.dx, predictor.dy, best.sad);
    if (sad < best.sad) best = {predictor.dx, predictor.dy, sad};
  }

  // Large diamond pattern, repeated until the centre wins or the radius is
  // exhausted; then one small-diamond refinement.
  static const int kLarge[8][2] = {{0, -2}, {1, -1}, {2, 0},  {1, 1},
                                   {0, 2},  {-1, 1}, {-2, 0}, {-1, -1}};
  static const int kSmall[4][2] = {{0, -1}, {1, 0}, {0, 1}, {-1, 0}};

  bool improved = true;
  while (improved) {
    improved = false;
    for (const auto& offset : kLarge) {
      int dx = best.dx + offset[0];
      int dy = best.dy + offset[1];
      if (std::abs(dx) > search_radius || std::abs(dy) > search_radius) continue;
      int64_t sad = evaluate(dx, dy, best.sad);
      if (sad < best.sad) {
        best = {dx, dy, sad};
        improved = true;
      }
    }
  }
  for (const auto& offset : kSmall) {
    int dx = best.dx + offset[0];
    int dy = best.dy + offset[1];
    if (std::abs(dx) > search_radius || std::abs(dy) > search_radius) continue;
    int64_t sad = evaluate(dx, dy, best.sad);
    if (sad < best.sad) best = {dx, dy, sad};
  }
  kernels::CountKernelCalls(kernels::Kernel::kSad, evaluations);
  return best;
}

void MotionCompensate(const Plane& ref, int bx, int by, int size, int dx, int dy,
                      uint8_t* out) {
  bool inside = bx + dx >= 0 && by + dy >= 0 && bx + dx + size <= ref.width &&
                by + dy + size <= ref.height;
  if (inside) {
    // The common fully-interior case is a straight row copy.
    for (int y = 0; y < size; ++y) {
      std::memcpy(out + static_cast<size_t>(y) * size,
                  ref.Row(by + dy + y) + bx + dx, static_cast<size_t>(size));
    }
    return;
  }
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      int rx = ClampCoord(bx + dx + x, ref.width);
      int ry = ClampCoord(by + dy + y, ref.height);
      out[y * size + x] = ref.At(rx, ry);
    }
  }
}

}  // namespace visualroad::video::codec
