#include "video/codec/motion.h"

#include <algorithm>
#include <cstdlib>

namespace visualroad::video::codec {

namespace {
int ClampCoord(int v, int limit) { return std::clamp(v, 0, limit - 1); }
}  // namespace

int64_t BlockSad(const Plane& cur, const Plane& ref, int bx, int by, int size, int dx,
                 int dy) {
  int64_t sad = 0;
  bool inside = bx + dx >= 0 && by + dy >= 0 && bx + dx + size <= ref.width &&
                by + dy + size <= ref.height;
  if (inside) {
    for (int y = 0; y < size; ++y) {
      const uint8_t* crow = cur.Row(by + y) + bx;
      const uint8_t* rrow = ref.Row(by + dy + y) + bx + dx;
      for (int x = 0; x < size; ++x) {
        sad += std::abs(static_cast<int>(crow[x]) - rrow[x]);
      }
    }
    return sad;
  }
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      int rx = ClampCoord(bx + dx + x, ref.width);
      int ry = ClampCoord(by + dy + y, ref.height);
      sad += std::abs(static_cast<int>(cur.At(bx + x, by + y)) - ref.At(rx, ry));
    }
  }
  return sad;
}

MotionVector DiamondSearch(const Plane& cur, const Plane& ref, int bx, int by,
                           int size, int search_radius, MotionVector predictor) {
  auto evaluate = [&](int dx, int dy) -> int64_t {
    return BlockSad(cur, ref, bx, by, size, dx, dy);
  };

  MotionVector best{0, 0, evaluate(0, 0)};
  if (predictor.dx != 0 || predictor.dy != 0) {
    int64_t sad = evaluate(predictor.dx, predictor.dy);
    if (sad < best.sad) best = {predictor.dx, predictor.dy, sad};
  }

  // Large diamond pattern, repeated until the centre wins or the radius is
  // exhausted; then one small-diamond refinement.
  static const int kLarge[8][2] = {{0, -2}, {1, -1}, {2, 0},  {1, 1},
                                   {0, 2},  {-1, 1}, {-2, 0}, {-1, -1}};
  static const int kSmall[4][2] = {{0, -1}, {1, 0}, {0, 1}, {-1, 0}};

  bool improved = true;
  while (improved) {
    improved = false;
    for (const auto& offset : kLarge) {
      int dx = best.dx + offset[0];
      int dy = best.dy + offset[1];
      if (std::abs(dx) > search_radius || std::abs(dy) > search_radius) continue;
      int64_t sad = evaluate(dx, dy);
      if (sad < best.sad) {
        best = {dx, dy, sad};
        improved = true;
      }
    }
  }
  for (const auto& offset : kSmall) {
    int dx = best.dx + offset[0];
    int dy = best.dy + offset[1];
    if (std::abs(dx) > search_radius || std::abs(dy) > search_radius) continue;
    int64_t sad = evaluate(dx, dy);
    if (sad < best.sad) best = {dx, dy, sad};
  }
  return best;
}

void MotionCompensate(const Plane& ref, int bx, int by, int size, int dx, int dy,
                      uint8_t* out) {
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      int rx = ClampCoord(bx + dx + x, ref.width);
      int ry = ClampCoord(by + dy + y, ref.height);
      out[y * size + x] = ref.At(rx, ry);
    }
  }
}

}  // namespace visualroad::video::codec
