#ifndef VISUALROAD_VIDEO_CODEC_CODEC_INTERNAL_H_
#define VISUALROAD_VIDEO_CODEC_CODEC_INTERNAL_H_

// Implementation details shared by encoder.cc and decoder.cc. Not part of the
// public API.

#include <algorithm>
#include <functional>

#include "common/metrics.h"
#include "video/codec/codec.h"
#include "video/codec/entropy.h"
#include "video/codec/motion.h"
#include "video/frame.h"

namespace visualroad::video::codec::internal {

/// Registry counters shared by the streaming and GOP-parallel paths. Both
/// funnel through EncodeFrameImpl / the decoder frame loop, so incrementing
/// there counts every frame exactly once regardless of entry point.
metrics::Counter& FramesEncodedCounter();
metrics::Counter& FramesDecodedCounter();
/// Frames decoded only to warm a decoder up to a seek target (wasted work a
/// GOP-aligned access pattern avoids).
metrics::Counter& WarmupFramesCounter();

/// Per-frame adaptive contexts; reset at every frame so each frame's payload
/// is independently decodable given its reference.
struct FrameContexts {
  BitModel skip;
  BitModel intra_flag;
  BitModel intra_mode[2];
  BitModel mv_mag[2][10];
  ResidualContexts residual[2];  // [0]=luma, [1]=chroma.
};

/// Pads `v` up to a multiple of `multiple`.
inline int PadTo(int v, int multiple) {
  return ((v + multiple - 1) / multiple) * multiple;
}

/// Copies a frame plane into a padded Plane, replicating edges.
inline Plane PadPlane(const std::vector<uint8_t>& src, int w, int h, int multiple) {
  Plane plane(PadTo(w, multiple), PadTo(h, multiple));
  for (int y = 0; y < plane.height; ++y) {
    int sy = std::min(y, h - 1);
    for (int x = 0; x < plane.width; ++x) {
      int sx = std::min(x, w - 1);
      plane.Set(x, y, src[static_cast<size_t>(sy) * w + sx]);
    }
  }
  return plane;
}

/// Copies the top-left w x h window of a padded Plane into a frame plane.
inline void UnpadPlane(const Plane& plane, int w, int h, std::vector<uint8_t>& dst) {
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      dst[static_cast<size_t>(y) * w + x] = plane.At(x, y);
    }
  }
}

/// Reconstruction planes for one frame (padded).
struct ReconPlanes {
  Plane y;
  Plane u;
  Plane v;
};

/// Reconstructs one 8x8 block from its prediction and quantised levels into
/// `recon` at (bx, by): dequantise, inverse-transform, add, clamp. Shared by
/// the encoder's reference loop and the decoder so both stay bit-exact.
void ReconstructBlock(const uint8_t* prediction, const int16_t* levels, int qp,
                      Plane& recon, int bx, int by);

/// Immutable per-stream encoder parameters derived from an EncoderConfig.
struct EncoderSettings {
  int width = 0;
  int height = 0;
  int block_size = 16;
  int search_radius = 8;
  bool allow_planar = false;
};

/// Shared validation for Encoder::Create and ParallelEncode.
Status ValidateEncoderConfig(int width, int height, const EncoderConfig& config);

EncoderSettings MakeEncoderSettings(int width, int height,
                                    const EncoderConfig& config);

/// Encodes one frame with an explicit (keyframe, qp) decision against
/// `reference` — the previous frame's padded reconstruction, unused for
/// keyframes — and replaces `reference` with this frame's reconstruction.
/// Both the streaming Encoder and the GOP-parallel path call this, so a fixed
/// QP schedule yields byte-identical output regardless of threading.
StatusOr<EncodedFrame> EncodeFrameImpl(const EncoderSettings& settings,
                                       ReconPlanes& reference, const Frame& frame,
                                       bool keyframe, int qp);

/// Runs fn(i) for i in [0, count) on the process-wide codec pool, batching
/// indices into at most `parallelism` contiguous chunk tasks. Returns the
/// lowest-index failure. Callers must not already be on the codec pool.
Status CodecParallelForStatus(int parallelism, int count,
                              const std::function<Status(int)>& fn);

}  // namespace visualroad::video::codec::internal

#endif  // VISUALROAD_VIDEO_CODEC_CODEC_INTERNAL_H_
