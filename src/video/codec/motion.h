#ifndef VISUALROAD_VIDEO_CODEC_MOTION_H_
#define VISUALROAD_VIDEO_CODEC_MOTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace visualroad::video::codec {

/// A padded 8-bit sample plane used inside the codec. Dimensions are padded
/// up to the profile's prediction-block multiple.
struct Plane {
  int width = 0;
  int height = 0;
  std::vector<uint8_t> samples;

  Plane() = default;
  Plane(int w, int h) : width(w), height(h), samples(static_cast<size_t>(w) * h, 0) {}

  uint8_t At(int x, int y) const { return samples[static_cast<size_t>(y) * width + x]; }
  void Set(int x, int y, uint8_t v) { samples[static_cast<size_t>(y) * width + x] = v; }
  const uint8_t* Row(int y) const { return &samples[static_cast<size_t>(y) * width]; }
  uint8_t* Row(int y) { return &samples[static_cast<size_t>(y) * width]; }
};

/// Integer-pel motion vector with its matching cost.
struct MotionVector {
  int dx = 0;
  int dy = 0;
  int64_t sad = 0;
};

/// Sum of absolute differences between the `size` x `size` block of `cur` at
/// (bx, by) and the block of `ref` displaced by (dx, dy). Out-of-bounds
/// reference samples are edge-clamped.
int64_t BlockSad(const Plane& cur, const Plane& ref, int bx, int by, int size, int dx,
                 int dy);

/// As BlockSad, but gives up once the running sum reaches `bound`, returning
/// some value >= `bound`. Exact whenever the true SAD is below `bound`, which
/// is all a strict best-so-far comparison needs — DiamondSearch passes the
/// current best so losing candidates stop early.
int64_t BlockSadBounded(const Plane& cur, const Plane& ref, int bx, int by, int size,
                        int dx, int dy, int64_t bound);

/// Diamond-search motion estimation: evaluates the zero vector and the
/// supplied predictor, then refines with a large-diamond / small-diamond
/// pattern out to `search_radius`. Returns the best integer-pel vector.
MotionVector DiamondSearch(const Plane& cur, const Plane& ref, int bx, int by,
                           int size, int search_radius, MotionVector predictor);

/// Copies the motion-compensated `size` x `size` prediction block from `ref`
/// at (bx+dx, by+dy) into `out` (row-major, size*size). Edge-clamped.
void MotionCompensate(const Plane& ref, int bx, int by, int size, int dx, int dy,
                      uint8_t* out);

}  // namespace visualroad::video::codec

#endif  // VISUALROAD_VIDEO_CODEC_MOTION_H_
