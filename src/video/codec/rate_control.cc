#include "video/codec/rate_control.h"

#include <algorithm>

#include "video/codec/quant.h"

namespace visualroad::video::codec {

RateController::RateController(int64_t target_bps, double fps, int base_qp)
    : target_bps_(target_bps),
      bits_per_frame_(fps > 0 ? static_cast<double>(target_bps) / fps : 0.0),
      qp_(std::clamp(base_qp, kMinQp, kMaxQp)) {}

int RateController::PickQp(bool keyframe) const {
  int qp = qp_;
  if (keyframe && !constant_qp()) qp -= 3;  // Spend more bits on anchors.
  return std::clamp(qp, kMinQp, kMaxQp);
}

void RateController::Update(bool keyframe, int64_t bytes) {
  if (constant_qp()) return;
  double bits = static_cast<double>(bytes) * 8.0;
  // Keyframes are budgeted at 3x an average frame.
  double budget = bits_per_frame_ * (keyframe ? 3.0 : 1.0);
  debt_bits_ += bits - budget;
  // Proportional control: one QP step changes the rate by roughly 12%
  // (2^(1/6) per step), so react when the debt exceeds half a frame budget.
  if (debt_bits_ > bits_per_frame_ * 0.5) {
    qp_ = std::min(qp_ + 1, kMaxQp);
    debt_bits_ *= 0.5;
  } else if (debt_bits_ < -bits_per_frame_ * 0.5) {
    qp_ = std::max(qp_ - 1, kMinQp);
    debt_bits_ *= 0.5;
  }
}

}  // namespace visualroad::video::codec
