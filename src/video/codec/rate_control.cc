#include "video/codec/rate_control.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "video/codec/quant.h"

namespace visualroad::video::codec {

RateController::RateController(int64_t target_bps, double fps, int base_qp)
    : target_bps_(target_bps),
      bits_per_frame_(fps > 0 ? static_cast<double>(target_bps) / fps : 0.0),
      qp_(std::clamp(base_qp, kMinQp, kMaxQp)) {}

int RateController::PickQp(bool keyframe) const {
  int qp = qp_;
  if (keyframe && !constant_qp()) qp -= 3;  // Spend more bits on anchors.
  return std::clamp(qp, kMinQp, kMaxQp);
}

void RateController::Update(bool keyframe, int64_t bytes) {
  if (constant_qp()) return;
  double bits = static_cast<double>(bytes) * 8.0;
  // Keyframes are budgeted at 3x an average frame.
  double budget = bits_per_frame_ * (keyframe ? 3.0 : 1.0);
  debt_bits_ += bits - budget;
  // Proportional control: one QP step changes the rate by roughly 12%
  // (2^(1/6) per step), so react when the debt exceeds half a frame budget.
  if (debt_bits_ > bits_per_frame_ * 0.5) {
    qp_ = std::min(qp_ + 1, kMaxQp);
    debt_bits_ *= 0.5;
  } else if (debt_bits_ < -bits_per_frame_ * 0.5) {
    qp_ = std::max(qp_ - 1, kMinQp);
    debt_bits_ *= 0.5;
  }
}

namespace {

/// Luma planes are sampled on this grid; the estimator needs a texture
/// statistic, not an exact sum.
constexpr int kSampleStride = 2;

/// Mean absolute horizontal luma gradient — a proxy for intra coding cost.
double SampledGradient(const Frame& frame) {
  const std::vector<uint8_t>& y = frame.y_plane();
  int w = frame.width(), h = frame.height();
  int64_t total = 0, count = 0;
  for (int row = 0; row < h; row += kSampleStride) {
    const uint8_t* base = &y[static_cast<size_t>(row) * w];
    for (int col = 1; col < w; col += kSampleStride) {
      total += std::abs(static_cast<int>(base[col]) - base[col - 1]);
      ++count;
    }
  }
  return count > 0 ? static_cast<double>(total) / static_cast<double>(count) : 0.0;
}

/// Mean absolute luma difference vs `previous` displaced by (dx, dy),
/// edge-clamped, over the sampling grid.
double SampledShiftDelta(const Frame& frame, const Frame& previous, int dx, int dy) {
  const std::vector<uint8_t>& a = frame.y_plane();
  const std::vector<uint8_t>& b = previous.y_plane();
  int w = frame.width(), h = frame.height();
  int64_t total = 0, count = 0;
  for (int row = 0; row < h; row += kSampleStride) {
    size_t base = static_cast<size_t>(row) * w;
    size_t shifted = static_cast<size_t>(std::clamp(row + dy, 0, h - 1)) * w;
    for (int col = 0; col < w; col += kSampleStride) {
      int sc = std::clamp(col + dx, 0, w - 1);
      total += std::abs(static_cast<int>(a[base + col]) - b[shifted + sc]);
      ++count;
    }
  }
  return count > 0 ? static_cast<double>(total) / static_cast<double>(count) : 0.0;
}

/// Coarse motion-search radius for the inter proxy. Plain frame deltas
/// overstate compensable motion by an order of magnitude (the encoder's
/// DiamondSearch removes it) while matching uncompensable noise exactly, so
/// a small whole-frame shift search is the cheapest statistic that separates
/// the two regimes.
constexpr int kShiftRadius = 2;

/// Minimum sampled delta over whole-frame shifts within kShiftRadius — a
/// proxy for the post-motion-compensation residual.
double SampledMinShiftDelta(const Frame& frame, const Frame& previous) {
  double best = SampledShiftDelta(frame, previous, 0, 0);
  for (int dy = -kShiftRadius; dy <= kShiftRadius; ++dy) {
    for (int dx = -kShiftRadius; dx <= kShiftRadius; ++dx) {
      if (dx == 0 && dy == 0) continue;
      best = std::min(best, SampledShiftDelta(frame, previous, dx, dy));
    }
  }
  return best;
}

// Rate-model constants, fitted against this codec's actual output across
// QP 12-40 on four content regimes: textured+moving, smooth pan (fully
// compensable), and uniform noise (uncompensable). Worst-case aggregate error
// is ~2x, which is the tolerance the closed loop needs (see
// PlanQpScheduleTracksTarget in tests/codec_test.cc).
constexpr double kIntraBase = 0.045;   // Mode/DC/signaling floor, bits per pixel.
constexpr double kIntraRate = 1.80;
constexpr double kIntraScale = 0.6;
constexpr double kInterBase = 0.005;   // Skip flags and MV floor.
constexpr double kInterRate = 1.60;
constexpr double kInterScale = 0.8;
constexpr double kFrameOverheadBits = 256.0;

}  // namespace

int64_t EstimateFrameBits(const Frame& frame, const Frame* previous, int qp) {
  double step = QpToStep(qp);
  double pixels = static_cast<double>(frame.width()) * frame.height();
  double bpp;
  if (previous == nullptr) {
    double activity = SampledGradient(frame);
    bpp = kIntraBase + kIntraRate * std::log2(1.0 + kIntraScale * activity / step);
  } else {
    double delta = SampledMinShiftDelta(frame, *previous);
    bpp = kInterBase + kInterRate * std::log2(1.0 + kInterScale * delta / step);
  }
  return static_cast<int64_t>(std::llround(pixels * bpp + kFrameOverheadBits));
}

std::vector<int> PlanQpSchedule(const Video& video, const EncoderConfig& config) {
  std::vector<int> schedule(video.frames.size(), std::clamp(config.qp, kMinQp, kMaxQp));
  // The pre-pass mirrors Encoder::Create's controller, including its fixed
  // 30 fps assumption, so streaming and planned paths share one rate model.
  RateController control(config.target_bitrate_bps, 30.0, config.qp);
  if (control.constant_qp()) return schedule;
  const Frame* previous = nullptr;
  for (size_t i = 0; i < video.frames.size(); ++i) {
    bool keyframe = i % static_cast<size_t>(config.gop_length) == 0;
    int qp = control.PickQp(keyframe);
    schedule[i] = qp;
    int64_t bits = EstimateFrameBits(video.frames[i], keyframe ? nullptr : previous, qp);
    control.Update(keyframe, bits / 8);
    previous = &video.frames[i];
  }
  return schedule;
}

}  // namespace visualroad::video::codec
