#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include "video/codec/codec.h"
#include "video/codec/codec_internal.h"
#include "video/codec/dct.h"
#include "video/codec/intra.h"
#include "video/codec/quant.h"
#include "video/codec/rate_control.h"
#include "video/kernels/kernels.h"

namespace visualroad::video::codec {

using internal::FrameContexts;
using internal::PadPlane;
using internal::ReconPlanes;
using internal::ReconstructBlock;

const char* ProfileName(Profile profile) {
  return profile == Profile::kH264Like ? "h264" : "hevc";
}

int ProfileBlockSize(Profile profile) {
  return profile == Profile::kH264Like ? 16 : 32;
}

int ProfileSearchRadius(Profile profile) {
  return profile == Profile::kH264Like ? 8 : 12;
}

int64_t EncodedVideo::TotalBytes() const {
  int64_t total = 0;
  for (const EncodedFrame& f : frames) total += static_cast<int64_t>(f.data.size());
  return total;
}

double EncodedVideo::BitrateBps() const {
  if (frames.empty() || fps <= 0) return 0.0;
  double seconds = static_cast<double>(frames.size()) / fps;
  return static_cast<double>(TotalBytes()) * 8.0 / seconds;
}

namespace {

/// Computes the residual between the source block at (bx, by) and a
/// prediction buffer, transform-codes it, and returns quantised levels.
void TransformQuantBlock(const Plane& source, int bx, int by,
                         const uint8_t* prediction, int qp, int16_t* levels) {
  int16_t residual[kTransformArea];
  for (int y = 0; y < kTransformSize; ++y) {
    for (int x = 0; x < kTransformSize; ++x) {
      residual[y * kTransformSize + x] = static_cast<int16_t>(
          static_cast<int>(source.At(bx + x, by + y)) -
          prediction[y * kTransformSize + x]);
    }
  }
  double coefficients[kTransformArea];
  ForwardDct8x8(residual, coefficients);
  QuantizeBlock(coefficients, qp, levels);
}

bool AllZero(const int16_t* levels, int count) {
  for (int i = 0; i < count; ++i) {
    if (levels[i] != 0) return false;
  }
  return true;
}

/// Encodes a motion-vector component difference: adaptive magnitude with a
/// bypass sign bit.
void EncodeMvComponent(ArithmeticEncoder& enc, BitModel* models, int value) {
  EncodeUnaryEg(enc, models, 10, static_cast<uint32_t>(std::abs(value)));
  if (value != 0) enc.EncodeBypass(value < 0 ? 1 : 0);
}

/// Encodes one intra-coded 8x8 block (mode + residual) and reconstructs it.
void EncodeIntraBlock(ArithmeticEncoder& enc, FrameContexts& ctx, const Plane& source,
                      Plane& recon, int bx, int by, int qp, bool allow_planar,
                      bool is_luma) {
  uint8_t prediction[kTransformArea];
  IntraMode mode = IntraMode::kDc;
  if (is_luma) {
    mode = ChooseIntraMode(source, recon, bx, by, kTransformSize, allow_planar);
    int mode_bits = static_cast<int>(mode);
    enc.EncodeBit(ctx.intra_mode[0], mode_bits & 1);
    enc.EncodeBit(ctx.intra_mode[1], (mode_bits >> 1) & 1);
  }
  IntraPredict(recon, bx, by, kTransformSize, mode, prediction);
  int16_t levels[kTransformArea];
  TransformQuantBlock(source, bx, by, prediction, qp, levels);
  EncodeResidualBlock(enc, ctx.residual[is_luma ? 0 : 1], levels);
  ReconstructBlock(prediction, levels, qp, recon, bx, by);
}

}  // namespace

namespace internal {

Status ValidateEncoderConfig(int width, int height, const EncoderConfig& config) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("encoder dimensions must be positive");
  }
  if (config.qp < kMinQp || config.qp > kMaxQp) {
    return Status::InvalidArgument("QP out of range");
  }
  if (config.gop_length < 1) {
    return Status::InvalidArgument("GOP length must be at least 1");
  }
  return Status::Ok();
}

EncoderSettings MakeEncoderSettings(int width, int height,
                                    const EncoderConfig& config) {
  EncoderSettings settings;
  settings.width = width;
  settings.height = height;
  settings.block_size = ProfileBlockSize(config.profile);
  settings.search_radius = config.search_radius > 0
                               ? config.search_radius
                               : ProfileSearchRadius(config.profile);
  settings.allow_planar = config.profile == Profile::kHevcLike;
  return settings;
}

StatusOr<EncodedFrame> EncodeFrameImpl(const EncoderSettings& s,
                                       ReconPlanes& reference, const Frame& frame,
                                       bool keyframe, int qp) {
  if (frame.width() != s.width || frame.height() != s.height) {
    return Status::InvalidArgument("frame dimensions do not match encoder");
  }

  int mb = s.block_size;
  int cmb = mb / 2;
  Plane src_y = PadPlane(frame.y_plane(), frame.width(), frame.height(), mb);
  Plane src_u =
      PadPlane(frame.u_plane(), frame.chroma_width(), frame.chroma_height(), cmb);
  Plane src_v =
      PadPlane(frame.v_plane(), frame.chroma_width(), frame.chroma_height(), cmb);

  ReconPlanes recon;
  recon.y = Plane(src_y.width, src_y.height);
  recon.u = Plane(src_u.width, src_u.height);
  recon.v = Plane(src_v.width, src_v.height);

  FrameContexts ctx;
  ArithmeticEncoder enc;

  int mbs_x = src_y.width / mb;
  int mbs_y = src_y.height / mb;
  int sub = mb / kTransformSize;    // Luma 8x8 sub-blocks per MB edge.
  int csub = cmb / kTransformSize;  // Chroma 8x8 sub-blocks per MB edge.

  for (int mby = 0; mby < mbs_y; ++mby) {
    MotionVector left_mv;  // Predictor: the previous MB's vector in this row.
    for (int mbx = 0; mbx < mbs_x; ++mbx) {
      int bx = mbx * mb, by = mby * mb;
      int cbx = mbx * cmb, cby = mby * cmb;

      if (keyframe) {
        for (int sy = 0; sy < sub; ++sy) {
          for (int sx = 0; sx < sub; ++sx) {
            EncodeIntraBlock(enc, ctx, src_y, recon.y, bx + sx * kTransformSize,
                             by + sy * kTransformSize, qp, s.allow_planar,
                             /*is_luma=*/true);
          }
        }
        for (int sy = 0; sy < csub; ++sy) {
          for (int sx = 0; sx < csub; ++sx) {
            int tx = cbx + sx * kTransformSize, ty = cby + sy * kTransformSize;
            EncodeIntraBlock(enc, ctx, src_u, recon.u, tx, ty, qp, s.allow_planar,
                             /*is_luma=*/false);
            EncodeIntraBlock(enc, ctx, src_v, recon.v, tx, ty, qp, s.allow_planar,
                             /*is_luma=*/false);
          }
        }
        continue;
      }

      // --- P-frame macroblock ---
      MotionVector mv =
          DiamondSearch(src_y, reference.y, bx, by, mb, s.search_radius, left_mv);

      // Trial-code the inter residuals so the skip decision is exact.
      std::vector<int16_t> luma_levels(static_cast<size_t>(sub) * sub * kTransformArea);
      std::vector<uint8_t> luma_pred(static_cast<size_t>(sub) * sub * kTransformArea);
      bool all_zero = mv.dx == 0 && mv.dy == 0;
      for (int sy = 0; sy < sub; ++sy) {
        for (int sx = 0; sx < sub; ++sx) {
          int tx = bx + sx * kTransformSize, ty = by + sy * kTransformSize;
          size_t off = (static_cast<size_t>(sy) * sub + sx) * kTransformArea;
          MotionCompensate(reference.y, tx, ty, kTransformSize, mv.dx, mv.dy,
                           &luma_pred[off]);
          TransformQuantBlock(src_y, tx, ty, &luma_pred[off], qp, &luma_levels[off]);
          if (!AllZero(&luma_levels[off], kTransformArea)) all_zero = false;
        }
      }
      int cdx = mv.dx / 2, cdy = mv.dy / 2;
      std::vector<int16_t> chroma_levels(2 * static_cast<size_t>(csub) * csub *
                                         kTransformArea);
      std::vector<uint8_t> chroma_pred(chroma_levels.size());
      for (int plane = 0; plane < 2; ++plane) {
        const Plane& csrc = plane == 0 ? src_u : src_v;
        const Plane& cref = plane == 0 ? reference.u : reference.v;
        for (int sy = 0; sy < csub; ++sy) {
          for (int sx = 0; sx < csub; ++sx) {
            int tx = cbx + sx * kTransformSize, ty = cby + sy * kTransformSize;
            size_t off = ((static_cast<size_t>(plane) * csub + sy) * csub + sx) *
                         kTransformArea;
            MotionCompensate(cref, tx, ty, kTransformSize, cdx, cdy, &chroma_pred[off]);
            TransformQuantBlock(csrc, tx, ty, &chroma_pred[off], qp,
                                &chroma_levels[off]);
            if (!AllZero(&chroma_levels[off], kTransformArea)) all_zero = false;
          }
        }
      }

      if (all_zero) {
        // Skip: zero vector, zero residual; reconstruction copies the
        // reference block.
        enc.EncodeBit(ctx.skip, 1);
        for (int y = 0; y < mb; ++y) {
          std::memcpy(recon.y.Row(by + y) + bx, reference.y.Row(by + y) + bx, mb);
        }
        for (int y = 0; y < cmb; ++y) {
          std::memcpy(recon.u.Row(cby + y) + cbx, reference.u.Row(cby + y) + cbx,
                      cmb);
          std::memcpy(recon.v.Row(cby + y) + cbx, reference.v.Row(cby + y) + cbx,
                      cmb);
        }
        left_mv = MotionVector{};
        continue;
      }

      enc.EncodeBit(ctx.skip, 0);

      // Estimate whether intra would beat inter for this macroblock (e.g. at
      // a scene change or an occlusion boundary).
      int64_t intra_sad = 0;
      for (int sy = 0; sy < sub; ++sy) {
        for (int sx = 0; sx < sub; ++sx) {
          int tx = bx + sx * kTransformSize, ty = by + sy * kTransformSize;
          IntraMode mode =
              ChooseIntraMode(src_y, recon.y, tx, ty, kTransformSize, s.allow_planar);
          uint8_t prediction[kTransformArea];
          IntraPredict(recon.y, tx, ty, kTransformSize, mode, prediction);
          intra_sad += kernels::Kernels().sad_bounded(
              src_y.Row(ty) + tx, src_y.width, prediction, kTransformSize,
              kTransformSize, std::numeric_limits<int64_t>::max());
          kernels::CountKernelCalls(kernels::Kernel::kSad, 1);
        }
      }
      bool use_intra = intra_sad * 5 < mv.sad * 4;  // 20% margin favours inter.
      enc.EncodeBit(ctx.intra_flag, use_intra ? 1 : 0);

      if (use_intra) {
        for (int sy = 0; sy < sub; ++sy) {
          for (int sx = 0; sx < sub; ++sx) {
            EncodeIntraBlock(enc, ctx, src_y, recon.y, bx + sx * kTransformSize,
                             by + sy * kTransformSize, qp, s.allow_planar,
                             /*is_luma=*/true);
          }
        }
        for (int sy = 0; sy < csub; ++sy) {
          for (int sx = 0; sx < csub; ++sx) {
            int tx = cbx + sx * kTransformSize, ty = cby + sy * kTransformSize;
            EncodeIntraBlock(enc, ctx, src_u, recon.u, tx, ty, qp, s.allow_planar,
                             /*is_luma=*/false);
            EncodeIntraBlock(enc, ctx, src_v, recon.v, tx, ty, qp, s.allow_planar,
                             /*is_luma=*/false);
          }
        }
        left_mv = MotionVector{};
        continue;
      }

      // Inter: motion vector difference against the left predictor.
      EncodeMvComponent(enc, ctx.mv_mag[0], mv.dx - left_mv.dx);
      EncodeMvComponent(enc, ctx.mv_mag[1], mv.dy - left_mv.dy);
      for (int sy = 0; sy < sub; ++sy) {
        for (int sx = 0; sx < sub; ++sx) {
          int tx = bx + sx * kTransformSize, ty = by + sy * kTransformSize;
          size_t off = (static_cast<size_t>(sy) * sub + sx) * kTransformArea;
          EncodeResidualBlock(enc, ctx.residual[0], &luma_levels[off]);
          ReconstructBlock(&luma_pred[off], &luma_levels[off], qp, recon.y, tx, ty);
        }
      }
      for (int plane = 0; plane < 2; ++plane) {
        Plane& crecon = plane == 0 ? recon.u : recon.v;
        for (int sy = 0; sy < csub; ++sy) {
          for (int sx = 0; sx < csub; ++sx) {
            int tx = cbx + sx * kTransformSize, ty = cby + sy * kTransformSize;
            size_t off = ((static_cast<size_t>(plane) * csub + sy) * csub + sx) *
                         kTransformArea;
            EncodeResidualBlock(enc, ctx.residual[1], &chroma_levels[off]);
            ReconstructBlock(&chroma_pred[off], &chroma_levels[off], qp, crecon, tx,
                             ty);
          }
        }
      }
      left_mv = mv;
    }
  }

  EncodedFrame out;
  out.keyframe = keyframe;
  out.qp = static_cast<uint8_t>(qp);
  out.data = enc.Finish();

  reference = std::move(recon);
  FramesEncodedCounter().Increment();
  return out;
}

}  // namespace internal

struct Encoder::State {
  internal::EncoderSettings settings;
  int frame_index = 0;
  RateController rate_control{0, 30.0, 28};
  internal::ReconPlanes reference;  // Previous reconstructed frame (padded).
};

Encoder::Encoder(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

Encoder::Encoder(Encoder&&) noexcept = default;
Encoder& Encoder::operator=(Encoder&&) noexcept = default;
Encoder::~Encoder() = default;

StatusOr<Encoder> Encoder::Create(int width, int height, const EncoderConfig& config) {
  VR_RETURN_IF_ERROR(internal::ValidateEncoderConfig(width, height, config));
  auto state = std::make_unique<State>();
  state->settings = internal::MakeEncoderSettings(width, height, config);
  state->rate_control = RateController(config.target_bitrate_bps, 30.0, config.qp);
  Encoder encoder(std::move(state));
  encoder.config_ = config;
  return encoder;
}

StatusOr<EncodedFrame> Encoder::EncodeFrame(const Frame& frame) {
  State& s = *state_;
  bool keyframe = s.frame_index % config_.gop_length == 0;
  int qp = s.rate_control.PickQp(keyframe);
  VR_ASSIGN_OR_RETURN(EncodedFrame out,
                      internal::EncodeFrameImpl(s.settings, s.reference, frame,
                                                keyframe, qp));
  s.rate_control.Update(keyframe, static_cast<int64_t>(out.data.size()));
  ++s.frame_index;
  return out;
}

}  // namespace visualroad::video::codec
