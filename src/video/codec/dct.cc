#include "video/codec/dct.h"

#include <cmath>

namespace visualroad::video::codec {

namespace {

/// Cosine basis, computed once: basis[k][n] = c(k) * cos((2n+1) k pi / 16).
struct DctBasis {
  double b[kTransformSize][kTransformSize];
  DctBasis() {
    const double pi = 3.14159265358979323846;
    for (int k = 0; k < kTransformSize; ++k) {
      double ck = k == 0 ? std::sqrt(1.0 / kTransformSize) : std::sqrt(2.0 / kTransformSize);
      for (int n = 0; n < kTransformSize; ++n) {
        b[k][n] = ck * std::cos((2 * n + 1) * k * pi / (2.0 * kTransformSize));
      }
    }
  }
};

const DctBasis& Basis() {
  static const DctBasis basis;
  return basis;
}

}  // namespace

const int kZigZag8x8[kTransformArea] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

void ForwardDct8x8(const int16_t* input, double* output) {
  const auto& basis = Basis().b;
  double rows[kTransformSize][kTransformSize];
  // Transform rows.
  for (int y = 0; y < kTransformSize; ++y) {
    for (int k = 0; k < kTransformSize; ++k) {
      double sum = 0.0;
      for (int n = 0; n < kTransformSize; ++n) {
        sum += basis[k][n] * input[y * kTransformSize + n];
      }
      rows[y][k] = sum;
    }
  }
  // Transform columns.
  for (int x = 0; x < kTransformSize; ++x) {
    for (int k = 0; k < kTransformSize; ++k) {
      double sum = 0.0;
      for (int n = 0; n < kTransformSize; ++n) sum += basis[k][n] * rows[n][x];
      output[k * kTransformSize + x] = sum;
    }
  }
}

void InverseDct8x8(const double* input, int16_t* output) {
  const auto& basis = Basis().b;
  double cols[kTransformSize][kTransformSize];
  // Inverse transform columns.
  for (int x = 0; x < kTransformSize; ++x) {
    for (int n = 0; n < kTransformSize; ++n) {
      double sum = 0.0;
      for (int k = 0; k < kTransformSize; ++k) {
        sum += basis[k][n] * input[k * kTransformSize + x];
      }
      cols[n][x] = sum;
    }
  }
  // Inverse transform rows.
  for (int y = 0; y < kTransformSize; ++y) {
    for (int n = 0; n < kTransformSize; ++n) {
      double sum = 0.0;
      for (int k = 0; k < kTransformSize; ++k) sum += basis[k][n] * cols[y][k];
      output[y * kTransformSize + n] =
          static_cast<int16_t>(std::lround(sum));
    }
  }
}

}  // namespace visualroad::video::codec
