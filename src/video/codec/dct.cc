#include "video/codec/dct.h"

#include "video/kernels/kernels.h"

namespace visualroad::video::codec {

const int kZigZag8x8[kTransformArea] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

void ForwardDct8x8(const int16_t* input, double* output) {
  kernels::Kernels().forward_dct(input, output);
  kernels::CountKernelCalls(kernels::Kernel::kForwardDct, 1);
}

void InverseDct8x8(const double* input, int16_t* output) {
  kernels::Kernels().inverse_dct(input, output);
  kernels::CountKernelCalls(kernels::Kernel::kInverseDct, 1);
}

}  // namespace visualroad::video::codec
