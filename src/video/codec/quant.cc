#include "video/codec/quant.h"

#include <algorithm>
#include <cmath>

#include "video/kernels/kernels.h"

namespace visualroad::video::codec {

double QpToStep(int qp) {
  qp = std::clamp(qp, kMinQp, kMaxQp);
  // Matches the H.264 convention: step(QP) ~= 0.625 * 2^(QP/6).
  return 0.625 * std::pow(2.0, qp / 6.0);
}

void QuantizeBlock(const double* coefficients, int qp, int16_t* levels) {
  kernels::Kernels().quantize(coefficients, QpToStep(qp), levels);
  kernels::CountKernelCalls(kernels::Kernel::kQuantize, 1);
}

void DequantizeBlock(const int16_t* levels, int qp, double* coefficients) {
  kernels::Kernels().dequantize(levels, QpToStep(qp), coefficients);
  kernels::CountKernelCalls(kernels::Kernel::kDequantize, 1);
}

}  // namespace visualroad::video::codec
