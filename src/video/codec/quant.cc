#include "video/codec/quant.h"

#include <algorithm>
#include <cmath>

namespace visualroad::video::codec {

double QpToStep(int qp) {
  qp = std::clamp(qp, kMinQp, kMaxQp);
  // Matches the H.264 convention: step(QP) ~= 0.625 * 2^(QP/6).
  return 0.625 * std::pow(2.0, qp / 6.0);
}

void QuantizeBlock(const double* coefficients, int qp, int16_t* levels) {
  double step = QpToStep(qp);
  // Dead-zone fraction: values within 1/3 step of zero quantise to zero.
  const double dead_zone = 1.0 / 3.0;
  for (int i = 0; i < kTransformArea; ++i) {
    double scaled = coefficients[i] / step;
    double magnitude = std::abs(scaled);
    int level = magnitude < dead_zone
                    ? 0
                    : static_cast<int>(magnitude + (1.0 - dead_zone) * 0.5);
    level = std::min(level, 32767);
    levels[i] = static_cast<int16_t>(scaled < 0 ? -level : level);
  }
}

void DequantizeBlock(const int16_t* levels, int qp, double* coefficients) {
  double step = QpToStep(qp);
  for (int i = 0; i < kTransformArea; ++i) {
    coefficients[i] = levels[i] * step;
  }
}

}  // namespace visualroad::video::codec
