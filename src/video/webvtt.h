#ifndef VISUALROAD_VIDEO_WEBVTT_H_
#define VISUALROAD_VIDEO_WEBVTT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace visualroad::video {

/// One WebVTT cue. Visual Road's Q6(b) requires VDBMSs to honour only the
/// `line` and `position` cue settings (Section 4.1.1), both expressed as
/// percentages of the frame.
struct WebVttCue {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  /// Vertical placement, percent of frame height [0, 100].
  double line_percent = 90.0;
  /// Horizontal placement, percent of frame width [0, 100].
  double position_percent = 50.0;
  std::string text;
};

/// A parsed WebVTT document.
struct WebVttDocument {
  std::vector<WebVttCue> cues;

  /// Returns the cues active at `seconds` (start <= t < end).
  std::vector<const WebVttCue*> ActiveAt(double seconds) const;
};

/// Serialises cues into a WebVTT text document ("WEBVTT" header, one cue per
/// block with line/position settings).
std::string SerializeWebVtt(const WebVttDocument& document);

/// Parses a WebVTT document. Tolerates comments/NOTE blocks; returns an
/// error for malformed timestamps or a missing header.
StatusOr<WebVttDocument> ParseWebVtt(const std::string& text);

}  // namespace visualroad::video

#endif  // VISUALROAD_VIDEO_WEBVTT_H_
