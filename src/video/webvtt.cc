#include "video/webvtt.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace visualroad::video {

namespace {

/// Formats seconds as HH:MM:SS.mmm.
std::string FormatTimestamp(double seconds) {
  if (seconds < 0) seconds = 0;
  int total_ms = static_cast<int>(std::lround(seconds * 1000.0));
  int ms = total_ms % 1000;
  int s = (total_ms / 1000) % 60;
  int m = (total_ms / 60000) % 60;
  int h = total_ms / 3600000;
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%02d:%02d:%02d.%03d", h, m, s, ms);
  return buffer;
}

/// Parses HH:MM:SS.mmm or MM:SS.mmm.
bool ParseTimestamp(const std::string& token, double& out) {
  int h = 0, m = 0, s = 0, ms = 0;
  if (std::sscanf(token.c_str(), "%d:%d:%d.%d", &h, &m, &s, &ms) == 4) {
    out = h * 3600.0 + m * 60.0 + s + ms / 1000.0;
    return true;
  }
  if (std::sscanf(token.c_str(), "%d:%d.%d", &m, &s, &ms) == 3) {
    out = m * 60.0 + s + ms / 1000.0;
    return true;
  }
  return false;
}

/// Parses "name:value%" cue settings (line and position only).
void ApplyCueSetting(WebVttCue& cue, const std::string& setting) {
  size_t colon = setting.find(':');
  if (colon == std::string::npos) return;
  std::string name = setting.substr(0, colon);
  std::string value = setting.substr(colon + 1);
  if (!value.empty() && value.back() == '%') value.pop_back();
  double percent = 0.0;
  if (std::sscanf(value.c_str(), "%lf", &percent) != 1) return;
  if (name == "line") cue.line_percent = percent;
  if (name == "position") cue.position_percent = percent;
}

std::string TrimCr(std::string line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) line.pop_back();
  return line;
}

}  // namespace

std::vector<const WebVttCue*> WebVttDocument::ActiveAt(double seconds) const {
  std::vector<const WebVttCue*> active;
  for (const WebVttCue& cue : cues) {
    if (cue.start_seconds <= seconds && seconds < cue.end_seconds) {
      active.push_back(&cue);
    }
  }
  return active;
}

std::string SerializeWebVtt(const WebVttDocument& document) {
  std::ostringstream out;
  out << "WEBVTT\n\n";
  for (const WebVttCue& cue : document.cues) {
    out << FormatTimestamp(cue.start_seconds) << " --> "
        << FormatTimestamp(cue.end_seconds) << " line:" << cue.line_percent
        << "% position:" << cue.position_percent << "%\n";
    out << cue.text << "\n\n";
  }
  return out.str();
}

StatusOr<WebVttDocument> ParseWebVtt(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || TrimCr(line).substr(0, 6) != "WEBVTT") {
    return Status::InvalidArgument("missing WEBVTT header");
  }

  WebVttDocument document;
  while (std::getline(in, line)) {
    line = TrimCr(line);
    if (line.empty()) continue;
    if (line.rfind("NOTE", 0) == 0) {
      // Skip comment block until a blank line.
      while (std::getline(in, line) && !TrimCr(line).empty()) {
      }
      continue;
    }
    // Optional cue identifier line (no "-->").
    if (line.find("-->") == std::string::npos) {
      if (!std::getline(in, line)) break;
      line = TrimCr(line);
    }
    size_t arrow = line.find("-->");
    if (arrow == std::string::npos) {
      return Status::InvalidArgument("expected cue timing line: " + line);
    }

    WebVttCue cue;
    std::string start_token = line.substr(0, arrow);
    // Strip whitespace around tokens.
    std::istringstream start_stream(start_token);
    start_stream >> start_token;
    std::istringstream rest(line.substr(arrow + 3));
    std::string end_token;
    rest >> end_token;
    if (!ParseTimestamp(start_token, cue.start_seconds) ||
        !ParseTimestamp(end_token, cue.end_seconds)) {
      return Status::InvalidArgument("malformed cue timestamp: " + line);
    }
    if (cue.end_seconds < cue.start_seconds) {
      return Status::InvalidArgument("cue ends before it starts: " + line);
    }
    std::string setting;
    while (rest >> setting) ApplyCueSetting(cue, setting);

    // Payload: lines until a blank line.
    std::string payload;
    while (std::getline(in, line)) {
      line = TrimCr(line);
      if (line.empty()) break;
      if (!payload.empty()) payload += "\n";
      payload += line;
    }
    cue.text = payload;
    document.cues.push_back(std::move(cue));
  }
  return document;
}

}  // namespace visualroad::video
