#include "video/metrics.h"

#include <cmath>
#include <limits>

namespace visualroad::video {

namespace {
double PlaneSse(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
  double sse = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    sse += d * d;
  }
  return sse;
}
}  // namespace

StatusOr<double> LumaMse(const Frame& a, const Frame& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return Status::InvalidArgument("MSE inputs must share a resolution");
  }
  if (a.y_plane().empty()) return Status::InvalidArgument("MSE of empty frames");
  return PlaneSse(a.y_plane(), b.y_plane()) / static_cast<double>(a.y_plane().size());
}

StatusOr<double> Psnr(const Frame& a, const Frame& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return Status::InvalidArgument("PSNR inputs must share a resolution");
  }
  size_t samples = a.y_plane().size() + a.u_plane().size() + a.v_plane().size();
  if (samples == 0) return Status::InvalidArgument("PSNR of empty frames");
  double sse = PlaneSse(a.y_plane(), b.y_plane()) + PlaneSse(a.u_plane(), b.u_plane()) +
               PlaneSse(a.v_plane(), b.v_plane());
  if (sse == 0.0) return std::numeric_limits<double>::infinity();
  double mse = sse / static_cast<double>(samples);
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

StatusOr<double> Ssim(const Frame& a, const Frame& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return Status::InvalidArgument("SSIM inputs must share a resolution");
  }
  if (a.width() < 8 || a.height() < 8) {
    return Status::InvalidArgument("SSIM needs frames of at least 8x8");
  }
  // Standard constants for 8-bit dynamic range.
  const double c1 = (0.01 * 255.0) * (0.01 * 255.0);
  const double c2 = (0.03 * 255.0) * (0.03 * 255.0);
  const int window = 8;

  double total = 0.0;
  int windows = 0;
  for (int y0 = 0; y0 + window <= a.height(); y0 += window) {
    for (int x0 = 0; x0 + window <= a.width(); x0 += window) {
      double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
      for (int y = y0; y < y0 + window; ++y) {
        for (int x = x0; x < x0 + window; ++x) {
          double va = a.Y(x, y), vb = b.Y(x, y);
          sum_a += va;
          sum_b += vb;
          sum_aa += va * va;
          sum_bb += vb * vb;
          sum_ab += va * vb;
        }
      }
      const double n = window * window;
      double mu_a = sum_a / n, mu_b = sum_b / n;
      double var_a = sum_aa / n - mu_a * mu_a;
      double var_b = sum_bb / n - mu_b * mu_b;
      double cov = sum_ab / n - mu_a * mu_b;
      double score = ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) /
                     ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
      total += score;
      ++windows;
    }
  }
  return total / windows;
}

StatusOr<double> MeanSsim(const Video& a, const Video& b) {
  if (a.frames.size() != b.frames.size()) {
    return Status::InvalidArgument("SSIM videos must have equal frame counts");
  }
  if (a.frames.empty()) return Status::InvalidArgument("SSIM of empty videos");
  double sum = 0.0;
  for (size_t i = 0; i < a.frames.size(); ++i) {
    VR_ASSIGN_OR_RETURN(double ssim, Ssim(a.frames[i], b.frames[i]));
    sum += ssim;
  }
  return sum / static_cast<double>(a.frames.size());
}

StatusOr<double> MeanPsnr(const Video& a, const Video& b, double cap_db) {
  if (a.frames.size() != b.frames.size()) {
    return Status::InvalidArgument("PSNR videos must have equal frame counts");
  }
  if (a.frames.empty()) return Status::InvalidArgument("PSNR of empty videos");
  double sum = 0.0;
  for (size_t i = 0; i < a.frames.size(); ++i) {
    VR_ASSIGN_OR_RETURN(double psnr, Psnr(a.frames[i], b.frames[i]));
    sum += std::min(psnr, cap_db);
  }
  return sum / static_cast<double>(a.frames.size());
}

}  // namespace visualroad::video
