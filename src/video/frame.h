#ifndef VISUALROAD_VIDEO_FRAME_H_
#define VISUALROAD_VIDEO_FRAME_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace visualroad::video {

/// A single decoded video frame in planar YUV 4:2:0 (BT.601 range 0-255).
/// The luma plane is width x height; the chroma planes are subsampled 2x in
/// each dimension with ceiling division so odd sizes are representable.
class Frame {
 public:
  Frame() = default;
  /// Creates a frame filled with black (Y=0, U=V=128).
  Frame(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  int chroma_width() const { return (width_ + 1) / 2; }
  int chroma_height() const { return (height_ + 1) / 2; }
  bool Empty() const { return width_ == 0 || height_ == 0; }

  const std::vector<uint8_t>& y_plane() const { return y_; }
  const std::vector<uint8_t>& u_plane() const { return u_; }
  const std::vector<uint8_t>& v_plane() const { return v_; }
  std::vector<uint8_t>& y_plane() { return y_; }
  std::vector<uint8_t>& u_plane() { return u_; }
  std::vector<uint8_t>& v_plane() { return v_; }

  uint8_t Y(int x, int y) const { return y_[static_cast<size_t>(y) * width_ + x]; }
  uint8_t U(int x, int y) const {
    return u_[static_cast<size_t>(y / 2) * chroma_width() + x / 2];
  }
  uint8_t V(int x, int y) const {
    return v_[static_cast<size_t>(y / 2) * chroma_width() + x / 2];
  }

  void SetY(int x, int y, uint8_t value) {
    y_[static_cast<size_t>(y) * width_ + x] = value;
  }
  void SetChroma(int x, int y, uint8_t u, uint8_t v) {
    size_t idx = static_cast<size_t>(y / 2) * chroma_width() + x / 2;
    u_[idx] = u;
    v_[idx] = v;
  }

  /// Sets the full-resolution pixel (x, y) to the given YUV triple. Chroma is
  /// stored at the co-sited subsampled position.
  void SetPixel(int x, int y, uint8_t yv, uint8_t uv, uint8_t vv) {
    SetY(x, y, yv);
    SetChroma(x, y, uv, vv);
  }

  /// Fills the frame with a constant YUV color.
  void Fill(uint8_t yv, uint8_t uv, uint8_t vv);

  /// True if every sample matches `other` exactly.
  bool SameContentAs(const Frame& other) const;

  /// 64-bit content hash (FNV-1a over all three planes); used by engines that
  /// cache decoded content.
  uint64_t ContentHash() const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> y_;
  std::vector<uint8_t> u_;
  std::vector<uint8_t> v_;
};

/// A decoded video: an ordered frame sequence at a constant frame rate.
struct Video {
  std::vector<Frame> frames;
  double fps = 30.0;

  int FrameCount() const { return static_cast<int>(frames.size()); }
  int Width() const { return frames.empty() ? 0 : frames.front().width(); }
  int Height() const { return frames.empty() ? 0 : frames.front().height(); }
  double DurationSeconds() const {
    return fps > 0 ? static_cast<double>(frames.size()) / fps : 0.0;
  }
};

/// An RGB24 interleaved image used at simulation/render boundaries.
struct RgbImage {
  int width = 0;
  int height = 0;
  std::vector<uint8_t> data;  // 3 bytes per pixel, row-major.

  RgbImage() = default;
  RgbImage(int w, int h) : width(w), height(h), data(static_cast<size_t>(w) * h * 3, 0) {}

  uint8_t* Pixel(int x, int y) { return &data[(static_cast<size_t>(y) * width + x) * 3]; }
  const uint8_t* Pixel(int x, int y) const {
    return &data[(static_cast<size_t>(y) * width + x) * 3];
  }
};

}  // namespace visualroad::video

#endif  // VISUALROAD_VIDEO_FRAME_H_
