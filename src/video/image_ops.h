#ifndef VISUALROAD_VIDEO_IMAGE_OPS_H_
#define VISUALROAD_VIDEO_IMAGE_OPS_H_

#include <functional>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "video/color.h"
#include "video/frame.h"

namespace visualroad::video {

/// Crops `frame` to `rect` (clamped to the frame bounds). Returns an error if
/// the clamped rectangle is empty.
StatusOr<Frame> Crop(const Frame& frame, const RectI& rect);

/// Bilinearly interpolates `frame` to `new_width` x `new_height`. This is the
/// Interpolate convenience operator from Table 4 (used by Q4 Upsample).
StatusOr<Frame> BilinearResize(const Frame& frame, int new_width, int new_height);

/// Point-samples `frame` down to `new_width` x `new_height`. This is the
/// Sample convenience operator from Table 4 (used by Q5 Downsample).
StatusOr<Frame> Downsample(const Frame& frame, int new_width, int new_height);

/// Converts a frame to grayscale by zeroing chroma (Q2(a)): the luma channel
/// is untouched, U and V are reset to neutral 128.
Frame Grayscale(const Frame& frame);

/// Applies a d x d Gaussian blur to every channel (Q2(b)). `d` must be odd
/// and >= 1; sigma defaults to d/6 as is conventional for a d-tap kernel.
StatusOr<Frame> GaussianBlur(const Frame& frame, int d, double sigma = 0.0);

/// Builds the normalized 1-D Gaussian kernel of width `d` (odd).
std::vector<double> GaussianKernel1d(int d, double sigma);

/// PMap (Table 4): applies `fn` to every pixel of every frame.
Video PMap(const Video& input, const std::function<Yuv(const Yuv&)>& fn);

/// FMap (Table 4): applies `fn` to every frame.
Video FMap(const Video& input, const std::function<Frame(const Frame&)>& fn);

/// JoinP (Table 4): joins two videos by pixel coordinate and applies a binary
/// projection. The shorter video determines the output length; frames must
/// share a resolution.
StatusOr<Video> JoinP(const Video& left, const Video& right,
                      const std::function<Yuv(const Yuv&, const Yuv&)>& projection);

/// The omega-coalesce projection of Equation 1: returns the overlay pixel
/// unless it is the black sentinel, in which case the base pixel wins.
Yuv OmegaCoalesce(const Yuv& base, const Yuv& overlay);

/// Computes the per-pixel mean of `frames` (the Window+Aggregate mean filter
/// backing Q2(d) background masking). Requires a non-empty, same-size list.
StatusOr<Frame> MeanFrame(const std::vector<const Frame*>& frames);

/// Applies Q2(d)'s masking rule: output omega where
/// |(pixel - background) / pixel| < epsilon, else the input pixel. Operates
/// on luma magnitude; chroma follows the luma decision.
StatusOr<Frame> MaskAgainstBackground(const Frame& frame, const Frame& background,
                                      double epsilon);

}  // namespace visualroad::video

#endif  // VISUALROAD_VIDEO_IMAGE_OPS_H_
