#ifndef VISUALROAD_VIDEO_METRICS_H_
#define VISUALROAD_VIDEO_METRICS_H_

#include "common/status.h"
#include "video/frame.h"

namespace visualroad::video {

/// Mean squared error over the luma plane of two equal-size frames.
StatusOr<double> LumaMse(const Frame& a, const Frame& b);

/// Peak signal-to-noise ratio in dB over all three planes. Identical frames
/// return +infinity. This is the frame-validation metric of Section 3.2;
/// values >= 40 dB are treated as near-lossless by the VCD.
StatusOr<double> Psnr(const Frame& a, const Frame& b);

/// Mean PSNR across two videos (frame count and resolutions must match).
/// Frames that match exactly contribute `cap_db` (default 99 dB) so means
/// remain finite.
StatusOr<double> MeanPsnr(const Video& a, const Video& b, double cap_db = 99.0);

/// Structural similarity (SSIM) over the luma plane, computed on 8x8
/// windows with the standard stabilising constants; returns the mean window
/// score in [-1, 1] (1 = identical). The paper fixes PSNR as version 1.0's
/// validation metric and names alternative metrics as future work
/// (Section 3.2); SSIM is provided as that extension and selectable through
/// the validation-metric option.
StatusOr<double> Ssim(const Frame& a, const Frame& b);

/// Mean SSIM across two videos (frame counts must match).
StatusOr<double> MeanSsim(const Video& a, const Video& b);

/// Validation metrics selectable by the VCD (PSNR is the paper's v1.0
/// metric; SSIM is the extension).
enum class ValidationMetric {
  kPsnr = 0,
  kSsim = 1,
};

/// The VCD's near-lossless frame validation threshold (Section 3.2).
inline constexpr double kValidationPsnrDb = 40.0;

/// Near-lossless SSIM threshold used when the SSIM metric is selected.
inline constexpr double kValidationSsim = 0.98;

/// The looser stitching threshold used by Q9 (Section 4.2.2).
inline constexpr double kStitchingPsnrDb = 30.0;

}  // namespace visualroad::video

#endif  // VISUALROAD_VIDEO_METRICS_H_
