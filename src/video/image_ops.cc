#include "video/image_ops.h"

#include <algorithm>
#include <cmath>

#include "video/kernels/kernels.h"

namespace visualroad::video {

namespace {

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
}

/// Samples a plane with edge clamping.
uint8_t PlaneAt(const std::vector<uint8_t>& plane, int w, int h, int x, int y) {
  x = std::clamp(x, 0, w - 1);
  y = std::clamp(y, 0, h - 1);
  return plane[static_cast<size_t>(y) * w + x];
}

double BilinearPlane(const std::vector<uint8_t>& plane, int w, int h, double fx,
                     double fy) {
  int x0 = static_cast<int>(std::floor(fx));
  int y0 = static_cast<int>(std::floor(fy));
  double ax = fx - x0, ay = fy - y0;
  double p00 = PlaneAt(plane, w, h, x0, y0);
  double p10 = PlaneAt(plane, w, h, x0 + 1, y0);
  double p01 = PlaneAt(plane, w, h, x0, y0 + 1);
  double p11 = PlaneAt(plane, w, h, x0 + 1, y0 + 1);
  return (p00 * (1 - ax) + p10 * ax) * (1 - ay) + (p01 * (1 - ax) + p11 * ax) * ay;
}

void Convolve1d(const std::vector<uint8_t>& src, std::vector<uint8_t>& dst, int w,
                int h, const std::vector<double>& kernel, bool horizontal) {
  int radius = static_cast<int>(kernel.size()) / 2;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double sum = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        int sx = horizontal ? x + k : x;
        int sy = horizontal ? y : y + k;
        sum += kernel[k + radius] * PlaneAt(src, w, h, sx, sy);
      }
      dst[static_cast<size_t>(y) * w + x] = ClampByte(sum);
    }
  }
}

void SeparableBlurPlane(std::vector<uint8_t>& plane, int w, int h,
                        const std::vector<double>& kernel) {
  std::vector<uint8_t> tmp(plane.size());
  Convolve1d(plane, tmp, w, h, kernel, /*horizontal=*/true);
  Convolve1d(tmp, plane, w, h, kernel, /*horizontal=*/false);
}

}  // namespace

StatusOr<Frame> Crop(const Frame& frame, const RectI& rect) {
  RectI r = rect.Clamp(frame.width(), frame.height());
  if (r.Empty()) {
    return Status::InvalidArgument("crop rectangle is empty after clamping");
  }
  Frame out(r.Width(), r.Height());
  for (int y = 0; y < r.Height(); ++y) {
    for (int x = 0; x < r.Width(); ++x) {
      out.SetPixel(x, y, frame.Y(r.x0 + x, r.y0 + y), frame.U(r.x0 + x, r.y0 + y),
                   frame.V(r.x0 + x, r.y0 + y));
    }
  }
  return out;
}

StatusOr<Frame> BilinearResize(const Frame& frame, int new_width, int new_height) {
  if (new_width <= 0 || new_height <= 0) {
    return Status::InvalidArgument("resize target must be positive");
  }
  if (frame.Empty()) return Status::InvalidArgument("resize of empty frame");
  Frame out(new_width, new_height);
  double sx = static_cast<double>(frame.width()) / new_width;
  double sy = static_cast<double>(frame.height()) / new_height;
  for (int y = 0; y < new_height; ++y) {
    for (int x = 0; x < new_width; ++x) {
      double fx = (x + 0.5) * sx - 0.5;
      double fy = (y + 0.5) * sy - 0.5;
      out.SetY(x, y, ClampByte(BilinearPlane(frame.y_plane(), frame.width(),
                                             frame.height(), fx, fy)));
    }
  }
  int cw = frame.chroma_width(), ch = frame.chroma_height();
  int ow = out.chroma_width(), oh = out.chroma_height();
  double csx = static_cast<double>(cw) / ow;
  double csy = static_cast<double>(ch) / oh;
  for (int y = 0; y < oh; ++y) {
    for (int x = 0; x < ow; ++x) {
      double fx = (x + 0.5) * csx - 0.5;
      double fy = (y + 0.5) * csy - 0.5;
      size_t idx = static_cast<size_t>(y) * ow + x;
      out.u_plane()[idx] = ClampByte(BilinearPlane(frame.u_plane(), cw, ch, fx, fy));
      out.v_plane()[idx] = ClampByte(BilinearPlane(frame.v_plane(), cw, ch, fx, fy));
    }
  }
  return out;
}

StatusOr<Frame> Downsample(const Frame& frame, int new_width, int new_height) {
  if (new_width <= 0 || new_height <= 0) {
    return Status::InvalidArgument("downsample target must be positive");
  }
  if (new_width > frame.width() || new_height > frame.height()) {
    return Status::InvalidArgument("downsample target exceeds source resolution");
  }
  Frame out(new_width, new_height);
  for (int y = 0; y < new_height; ++y) {
    for (int x = 0; x < new_width; ++x) {
      int sx = static_cast<int>((static_cast<int64_t>(x) * frame.width()) / new_width);
      int sy =
          static_cast<int>((static_cast<int64_t>(y) * frame.height()) / new_height);
      out.SetPixel(x, y, frame.Y(sx, sy), frame.U(sx, sy), frame.V(sx, sy));
    }
  }
  return out;
}

Frame Grayscale(const Frame& frame) {
  Frame out = frame;
  std::fill(out.u_plane().begin(), out.u_plane().end(), 128);
  std::fill(out.v_plane().begin(), out.v_plane().end(), 128);
  return out;
}

std::vector<double> GaussianKernel1d(int d, double sigma) {
  if (sigma <= 0.0) sigma = std::max(0.5, d / 6.0);
  std::vector<double> kernel(d);
  int radius = d / 2;
  double sum = 0.0;
  for (int i = 0; i < d; ++i) {
    double x = i - radius;
    kernel[i] = std::exp(-(x * x) / (2.0 * sigma * sigma));
    sum += kernel[i];
  }
  for (double& k : kernel) k /= sum;
  return kernel;
}

StatusOr<Frame> GaussianBlur(const Frame& frame, int d, double sigma) {
  if (d < 1 || d % 2 == 0) {
    return Status::InvalidArgument("blur kernel size must be odd and positive");
  }
  if (frame.Empty()) return Status::InvalidArgument("blur of empty frame");
  std::vector<double> kernel = GaussianKernel1d(d, sigma);
  Frame out = frame;
  SeparableBlurPlane(out.y_plane(), out.width(), out.height(), kernel);
  SeparableBlurPlane(out.u_plane(), out.chroma_width(), out.chroma_height(), kernel);
  SeparableBlurPlane(out.v_plane(), out.chroma_width(), out.chroma_height(), kernel);
  return out;
}

Video PMap(const Video& input, const std::function<Yuv(const Yuv&)>& fn) {
  Video out;
  out.fps = input.fps;
  out.frames.reserve(input.frames.size());
  for (const Frame& frame : input.frames) {
    Frame result(frame.width(), frame.height());
    for (int y = 0; y < frame.height(); ++y) {
      for (int x = 0; x < frame.width(); ++x) {
        Yuv mapped = fn({frame.Y(x, y), frame.U(x, y), frame.V(x, y)});
        result.SetPixel(x, y, mapped.y, mapped.u, mapped.v);
      }
    }
    out.frames.push_back(std::move(result));
  }
  return out;
}

Video FMap(const Video& input, const std::function<Frame(const Frame&)>& fn) {
  Video out;
  out.fps = input.fps;
  out.frames.reserve(input.frames.size());
  for (const Frame& frame : input.frames) out.frames.push_back(fn(frame));
  return out;
}

StatusOr<Video> JoinP(const Video& left, const Video& right,
                      const std::function<Yuv(const Yuv&, const Yuv&)>& projection) {
  if (left.Width() != right.Width() || left.Height() != right.Height()) {
    return Status::InvalidArgument("JoinP inputs must share a resolution");
  }
  Video out;
  out.fps = left.fps;
  size_t n = std::min(left.frames.size(), right.frames.size());
  out.frames.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Frame& a = left.frames[i];
    const Frame& b = right.frames[i];
    Frame result(a.width(), a.height());
    for (int y = 0; y < a.height(); ++y) {
      for (int x = 0; x < a.width(); ++x) {
        Yuv merged = projection({a.Y(x, y), a.U(x, y), a.V(x, y)},
                                {b.Y(x, y), b.U(x, y), b.V(x, y)});
        result.SetPixel(x, y, merged.y, merged.u, merged.v);
      }
    }
    out.frames.push_back(std::move(result));
  }
  return out;
}

Yuv OmegaCoalesce(const Yuv& base, const Yuv& overlay) {
  return IsOmega(overlay) ? base : overlay;
}

StatusOr<Frame> MeanFrame(const std::vector<const Frame*>& frames) {
  if (frames.empty()) return Status::InvalidArgument("mean of zero frames");
  int w = frames.front()->width(), h = frames.front()->height();
  for (const Frame* f : frames) {
    if (f->width() != w || f->height() != h) {
      return Status::InvalidArgument("mean-filter frames must share a resolution");
    }
  }
  Frame out(w, h);
  const kernels::KernelTable& kt = kernels::Kernels();
  std::vector<uint32_t> acc(out.y_plane().size(), 0);
  for (const Frame* f : frames) {
    const auto& plane = f->y_plane();
    kt.accumulate_row(plane.data(), static_cast<int>(plane.size()), 1, acc.data());
  }
  for (size_t i = 0; i < acc.size(); ++i) {
    out.y_plane()[i] = static_cast<uint8_t>(acc[i] / frames.size());
  }
  std::vector<uint32_t> acc_u(out.u_plane().size(), 0), acc_v(out.v_plane().size(), 0);
  for (const Frame* f : frames) {
    kt.accumulate_row(f->u_plane().data(), static_cast<int>(acc_u.size()), 1,
                      acc_u.data());
    kt.accumulate_row(f->v_plane().data(), static_cast<int>(acc_v.size()), 1,
                      acc_v.data());
  }
  kernels::CountKernelCalls(kernels::Kernel::kAccumulateRow,
                            3 * static_cast<uint64_t>(frames.size()));
  for (size_t i = 0; i < acc_u.size(); ++i) {
    out.u_plane()[i] = static_cast<uint8_t>(acc_u[i] / frames.size());
    out.v_plane()[i] = static_cast<uint8_t>(acc_v[i] / frames.size());
  }
  return out;
}

StatusOr<Frame> MaskAgainstBackground(const Frame& frame, const Frame& background,
                                      double epsilon) {
  if (frame.width() != background.width() || frame.height() != background.height()) {
    return Status::InvalidArgument("mask inputs must share a resolution");
  }
  const int w = frame.width(), h = frame.height();
  Frame out(w, h);
  // |(p_v - p_b) / p_v| < epsilon means "static": emit omega. The zero-pixel
  // guard (static only when the background is also zero) lives in the kernel.
  const kernels::KernelTable& kt = kernels::Kernels();
  std::vector<uint8_t> mask(static_cast<size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    kt.mask_static_row(frame.y_plane().data() + static_cast<size_t>(y) * w,
                       background.y_plane().data() + static_cast<size_t>(y) * w,
                       epsilon, w, mask.data() + static_cast<size_t>(y) * w);
  }
  kernels::CountKernelCalls(kernels::Kernel::kMaskStaticRow,
                            static_cast<uint64_t>(h));
  for (size_t i = 0; i < mask.size(); ++i) {
    out.y_plane()[i] = mask[i] ? kOmega.y : frame.y_plane()[i];
  }
  // The per-pixel SetPixel formulation wrote each subsampled chroma cell once
  // per covered pixel, so the bottom-right pixel of every 2x2 block decided
  // the cell. Reproduce that last-writer-wins result directly.
  const int cw = out.chroma_width(), ch = out.chroma_height();
  for (int cy = 0; cy < ch; ++cy) {
    int ly = std::min(2 * cy + 1, h - 1);
    for (int cx = 0; cx < cw; ++cx) {
      int lx = std::min(2 * cx + 1, w - 1);
      size_t idx = static_cast<size_t>(cy) * cw + cx;
      if (mask[static_cast<size_t>(ly) * w + lx]) {
        out.u_plane()[idx] = kOmega.u;
        out.v_plane()[idx] = kOmega.v;
      } else {
        out.u_plane()[idx] = frame.u_plane()[idx];
        out.v_plane()[idx] = frame.v_plane()[idx];
      }
    }
  }
  return out;
}

}  // namespace visualroad::video
