#ifndef VISUALROAD_VIDEO_RTP_H_
#define VISUALROAD_VIDEO_RTP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "video/codec/codec.h"

namespace visualroad::video::rtp {

/// An RTP-style packet (RFC 3550 layout subset): 12-byte header + payload.
/// The VCD's online mode can expose video "using either a named pipe ... or
/// via the RTP protocol" (Section 3.2); this module implements the RTP path:
/// frames are fragmented into MTU-sized packets with sequence numbers and
/// timestamps, and the receiving side reassembles them, detecting loss.
struct Packet {
  // Header fields (the subset VRC streaming uses).
  uint16_t sequence_number = 0;
  uint32_t timestamp = 0;       // 90 kHz clock, per RTP video convention.
  uint32_t ssrc = 0;            // Stream identifier.
  bool marker = false;          // Set on the last packet of a frame.
  uint8_t payload_type = 96;    // Dynamic payload type for VRC.
  std::vector<uint8_t> payload;

  /// Serialises to wire format (12-byte header, big-endian, then payload).
  std::vector<uint8_t> Serialize() const;

  /// Parses a wire-format packet.
  static StatusOr<Packet> Parse(const std::vector<uint8_t>& wire);
};

/// Per-packet metadata prefix VRC adds inside the payload (1 byte flags +
/// frame QP), carrying what the elementary stream needs beyond raw bytes.
struct PayloadHeader {
  bool keyframe = false;
  bool first_fragment = false;
  uint8_t qp = 28;
};

/// Fragments an encoded video into an RTP packet stream.
class Packetizer {
 public:
  /// `mtu` bounds each serialized packet — the 12-byte RTP header plus the
  /// payload — so fragments fit the configured link without IP
  /// fragmentation.
  Packetizer(uint32_t ssrc, int mtu = 1200, uint16_t first_sequence = 0);

  /// Packetises one frame; `frame_index` and `fps` produce the timestamp.
  std::vector<Packet> PacketizeFrame(const codec::EncodedFrame& frame,
                                     int frame_index, double fps);

  /// Packetises a whole stream.
  std::vector<Packet> PacketizeVideo(const codec::EncodedVideo& video);

  uint16_t next_sequence() const { return sequence_; }

 private:
  uint32_t ssrc_;
  int mtu_;
  uint16_t sequence_;
};

/// Statistics from reassembly.
struct ReceiverStats {
  int64_t packets_received = 0;
  int64_t packets_lost = 0;       // Forward sequence-number gaps.
  int64_t packets_reordered = 0;  // Late arrivals (behind the newest packet).
  int64_t frames_completed = 0;
  int64_t frames_dropped = 0;     // Incomplete at a frame boundary or Flush().
  /// Dropped frames replaced by a repeat of the last completed frame
  /// (freeze-frame concealment). Frames delivered = completed + concealed.
  int64_t frames_concealed = 0;
};

/// Reassembles frames from an (ordered, possibly lossy) packet stream.
class Depacketizer {
 public:
  /// With `conceal_losses`, a dropped frame is replaced in the output by a
  /// repeat of the last completed frame (freeze-frame), keeping the
  /// delivered sequence index-aligned with the sender; the drop is still
  /// counted in frames_dropped, and the substitution in frames_concealed.
  /// A drop before any frame completed has nothing to repeat and stays a
  /// plain drop.
  explicit Depacketizer(bool conceal_losses = false)
      : conceal_losses_(conceal_losses) {}

  /// Feeds one packet. Returns a completed frame when `packet` finishes one
  /// (marker bit), otherwise nullopt-like empty StatusOr handled by
  /// HasFrame/TakeFrame below.
  void Feed(const Packet& packet);

  /// Ends the stream: a frame still mid-assembly can never complete (its
  /// marker packet will not arrive), so it is dropped — and concealed, when
  /// enabled — instead of being silently forgotten. Safe to call more than
  /// once; further Feed() calls start fresh.
  void Flush();

  /// True when at least one complete frame is ready.
  bool HasFrame() const { return !frames_.empty(); }

  /// Pops the next completed frame in arrival order.
  StatusOr<codec::EncodedFrame> TakeFrame();

  const ReceiverStats& stats() const { return stats_; }

 private:
  /// Records a dropped frame and queues the freeze-frame repeat when
  /// concealment is on and a previous frame exists.
  void DropFrame();

  bool conceal_losses_ = false;
  std::vector<codec::EncodedFrame> frames_;
  std::vector<uint8_t> assembly_;
  bool assembly_keyframe_ = false;
  uint8_t assembly_qp_ = 28;
  bool assembling_ = false;
  bool assembly_broken_ = false;
  bool has_last_sequence_ = false;
  uint16_t last_sequence_ = 0;
  std::optional<codec::EncodedFrame> last_completed_;
  ReceiverStats stats_;
};

/// Convenience: packetise then reassemble an entire video (the loopback
/// path used by tests and the online driver when no loss is injected).
StatusOr<codec::EncodedVideo> Loopback(const codec::EncodedVideo& video, int mtu);

/// A deterministic lossy channel: each packet is dropped with the
/// injector's kRtpLoss probability, and a surviving packet is delivered one
/// slot late with the kRtpReorder probability. Same injector state => same
/// delivery sequence.
std::vector<Packet> ApplyChannel(std::vector<Packet> packets,
                                 fault::FaultInjector& faults);

/// Loopback through ApplyChannel with freeze-frame concealment. The result
/// may still hold fewer frames than `video` when a loss precedes the first
/// completed frame. `stats_out` (optional) receives the receiver's stats.
StatusOr<codec::EncodedVideo> LossyLoopback(const codec::EncodedVideo& video,
                                            int mtu,
                                            fault::FaultInjector& faults,
                                            ReceiverStats* stats_out = nullptr);

}  // namespace visualroad::video::rtp

#endif  // VISUALROAD_VIDEO_RTP_H_
