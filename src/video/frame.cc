#include "video/frame.h"

namespace visualroad::video {

Frame::Frame(int width, int height)
    : width_(width),
      height_(height),
      y_(static_cast<size_t>(width) * height, 0),
      u_(static_cast<size_t>((width + 1) / 2) * ((height + 1) / 2), 128),
      v_(static_cast<size_t>((width + 1) / 2) * ((height + 1) / 2), 128) {}

void Frame::Fill(uint8_t yv, uint8_t uv, uint8_t vv) {
  std::fill(y_.begin(), y_.end(), yv);
  std::fill(u_.begin(), u_.end(), uv);
  std::fill(v_.begin(), v_.end(), vv);
}

bool Frame::SameContentAs(const Frame& other) const {
  return width_ == other.width_ && height_ == other.height_ && y_ == other.y_ &&
         u_ == other.u_ && v_ == other.v_;
}

namespace {
uint64_t HashBytes(uint64_t hash, const std::vector<uint8_t>& bytes) {
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}
}  // namespace

uint64_t Frame::ContentHash() const {
  uint64_t hash = 0xcbf29ce484222325ULL;
  hash ^= static_cast<uint64_t>(width_) << 32 | static_cast<uint32_t>(height_);
  hash *= 0x100000001b3ULL;
  hash = HashBytes(hash, y_);
  hash = HashBytes(hash, u_);
  hash = HashBytes(hash, v_);
  return hash;
}

}  // namespace visualroad::video
