// Scalar reference kernels. These are the pre-SIMD inner loops moved behind
// the dispatch table, unchanged: every vector variant is validated (and
// tested) byte-identical against this translation unit, which is compiled
// with the build's baseline flags only.

#include <cmath>
#include <cstdlib>

#include "video/kernels/kernels_internal.h"

namespace visualroad::video::kernels::internal {

int64_t ScalarSadBounded(const uint8_t* cur, int cur_stride, const uint8_t* ref,
                         int ref_stride, int size, int64_t bound) {
  int64_t sad = 0;
  for (int y = 0; y < size; ++y) {
    const uint8_t* crow = cur + static_cast<size_t>(y) * cur_stride;
    const uint8_t* rrow = ref + static_cast<size_t>(y) * ref_stride;
    for (int x = 0; x < size; ++x) {
      sad += std::abs(static_cast<int>(crow[x]) - rrow[x]);
    }
    if (sad >= bound) return sad;
  }
  return sad;
}

void ScalarForwardDct(const int16_t* input, double* output) {
  const auto& basis = GetDctTables().b;
  double rows[kDctSize][kDctSize];
  // Transform rows.
  for (int y = 0; y < kDctSize; ++y) {
    for (int k = 0; k < kDctSize; ++k) {
      double sum = 0.0;
      for (int n = 0; n < kDctSize; ++n) {
        sum += basis[k][n] * input[y * kDctSize + n];
      }
      rows[y][k] = sum;
    }
  }
  // Transform columns.
  for (int x = 0; x < kDctSize; ++x) {
    for (int k = 0; k < kDctSize; ++k) {
      double sum = 0.0;
      for (int n = 0; n < kDctSize; ++n) sum += basis[k][n] * rows[n][x];
      output[k * kDctSize + x] = sum;
    }
  }
}

void ScalarInverseDct(const double* input, int16_t* output) {
  const auto& basis = GetDctTables().b;
  double cols[kDctSize][kDctSize];
  // Inverse transform columns.
  for (int x = 0; x < kDctSize; ++x) {
    for (int n = 0; n < kDctSize; ++n) {
      double sum = 0.0;
      for (int k = 0; k < kDctSize; ++k) {
        sum += basis[k][n] * input[k * kDctSize + x];
      }
      cols[n][x] = sum;
    }
  }
  // Inverse transform rows.
  for (int y = 0; y < kDctSize; ++y) {
    for (int n = 0; n < kDctSize; ++n) {
      double sum = 0.0;
      for (int k = 0; k < kDctSize; ++k) sum += basis[k][n] * cols[y][k];
      output[y * kDctSize + n] = static_cast<int16_t>(std::lround(sum));
    }
  }
}

void ScalarQuantize(const double* coefficients, double step, int16_t* levels) {
  for (int i = 0; i < kDctArea; ++i) {
    levels[i] = QuantizeCoefficient(coefficients[i], step);
  }
}

void ScalarDequantize(const int16_t* levels, double step, double* coefficients) {
  for (int i = 0; i < kDctArea; ++i) {
    coefficients[i] = levels[i] * step;
  }
}

void ScalarRgbToYuvRow(const uint8_t* rgb, int n, uint8_t* y, uint8_t* u,
                       uint8_t* v) {
  for (int i = 0; i < n; ++i) {
    const uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    RgbToYuvPixel(p[0], p[1], p[2], y + i, u + i, v + i);
  }
}

void ScalarYuvToRgbRow(const uint8_t* y, const uint8_t* u, const uint8_t* v,
                       int n, uint8_t* rgb) {
  for (int i = 0; i < n; ++i) {
    uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    YuvToRgbPixel(y[i], u[i >> 1], v[i >> 1], p, p + 1, p + 2);
  }
}

void ScalarMaskStaticRow(const uint8_t* pv, const uint8_t* pb, double epsilon,
                         int n, uint8_t* mask) {
  for (int i = 0; i < n; ++i) mask[i] = MaskStaticPixel(pv[i], pb[i], epsilon);
}

void ScalarAccumulateRow(const uint8_t* src, int n, int sign, uint32_t* acc) {
  if (sign >= 0) {
    for (int i = 0; i < n; ++i) acc[i] += src[i];
  } else {
    for (int i = 0; i < n; ++i) acc[i] -= src[i];
  }
}

void ScalarRasterSpan(const SpanSetup& s, double py, int x0, int n,
                      uint8_t* valid, float* depth, double* u, double* v) {
  for (int i = 0; i < n; ++i) {
    double px = (x0 + i) + 0.5;
    valid[i] = RasterPixel(s, px, py, depth + i, u + i, v + i) ? 1 : 0;
  }
}

}  // namespace visualroad::video::kernels::internal
