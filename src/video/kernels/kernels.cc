#include "video/kernels/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>

#include "common/metrics.h"
#include "video/kernels/kernels_internal.h"

namespace visualroad::video::kernels {

namespace internal {

const DctTables& GetDctTables() {
  static const DctTables tables = [] {
    DctTables t;
    const double pi = 3.14159265358979323846;
    for (int k = 0; k < kDctSize; ++k) {
      double ck = k == 0 ? std::sqrt(1.0 / kDctSize) : std::sqrt(2.0 / kDctSize);
      for (int n = 0; n < kDctSize; ++n) {
        t.b[k][n] = ck * std::cos((2 * n + 1) * k * pi / (2.0 * kDctSize));
        t.bt[n][k] = t.b[k][n];
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace internal

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kSad:
      return "sad";
    case Kernel::kForwardDct:
      return "fdct";
    case Kernel::kInverseDct:
      return "idct";
    case Kernel::kQuantize:
      return "quant";
    case Kernel::kDequantize:
      return "dequant";
    case Kernel::kRgbToYuvRow:
      return "rgb2yuv";
    case Kernel::kYuvToRgbRow:
      return "yuv2rgb";
    case Kernel::kMaskStaticRow:
      return "mask";
    case Kernel::kAccumulateRow:
      return "accum";
    case Kernel::kRasterSpan:
      return "raster_span";
    case Kernel::kCount:
      break;
  }
  return "unknown";
}

namespace {

using namespace internal;  // Per-level entry points.

const KernelTable kScalarTable = {
    ScalarSadBounded, ScalarForwardDct, ScalarInverseDct, ScalarQuantize,
    ScalarDequantize, ScalarRgbToYuvRow, ScalarYuvToRgbRow, ScalarMaskStaticRow,
    ScalarAccumulateRow, ScalarRasterSpan,
};

const KernelTable kSse2Table = {
    Sse2SadBounded, Sse2ForwardDct, Sse2InverseDct, Sse2Quantize,
    Sse2Dequantize, Sse2RgbToYuvRow, Sse2YuvToRgbRow, Sse2MaskStaticRow,
    Sse2AccumulateRow, Sse2RasterSpan,
};

const KernelTable kAvx2Table = {
    Avx2SadBounded, Avx2ForwardDct, Avx2InverseDct, Avx2Quantize,
    Avx2Dequantize, Avx2RgbToYuvRow, Avx2YuvToRgbRow, Avx2MaskStaticRow,
    Avx2AccumulateRow, Avx2RasterSpan,
};

const KernelTable& TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return kScalarTable;
    case SimdLevel::kSse2:
      return kSse2Table;
    case SimdLevel::kAvx2:
      return kAvx2Table;
  }
  return kScalarTable;
}

metrics::Gauge& SimdLevelGauge() {
  static metrics::Gauge& gauge = metrics::MetricsRegistry::Global().GetGauge(
      "vr_simd_level",
      "Active SIMD dispatch level for the pixel kernels (0=scalar, 1=sse2, "
      "2=avx2).");
  return gauge;
}

struct ActiveDispatch {
  std::atomic<const KernelTable*> table{&kScalarTable};
  std::atomic<int> level{0};
};

ActiveDispatch& Dispatch() {
  static ActiveDispatch dispatch;
  static const bool initialized = [] {
    SimdLevel level = RequestedSimdLevel();
    dispatch.table.store(&TableFor(level), std::memory_order_release);
    dispatch.level.store(static_cast<int>(level), std::memory_order_release);
    SimdLevelGauge().Set(static_cast<double>(level));
    return true;
  }();
  (void)initialized;
  return dispatch;
}

struct KernelCounters {
  metrics::Counter* calls[kKernelCount] = {};
  std::atomic<uint64_t> local[kKernelCount] = {};
};

KernelCounters& Counters() {
  static KernelCounters counters;
  static const bool initialized = [] {
    for (int i = 0; i < kKernelCount; ++i) {
      counters.calls[i] = &metrics::MetricsRegistry::Global().GetCounter(
          "vr_kernel_calls_total",
          "Dispatched pixel-kernel invocations by kernel (batched at call-site "
          "granularity).",
          std::string("kernel=\"") + KernelName(static_cast<Kernel>(i)) + "\"");
    }
    return true;
  }();
  (void)initialized;
  return counters;
}

}  // namespace

const KernelTable& Kernels() {
  return *Dispatch().table.load(std::memory_order_acquire);
}

SimdLevel ActiveSimdLevel() {
  return static_cast<SimdLevel>(Dispatch().level.load(std::memory_order_acquire));
}

const KernelTable& KernelsFor(SimdLevel level) {
  SimdLevel clamped = std::min(level, DetectedSimdLevel());
  return TableFor(clamped);
}

SimdLevel SetSimdLevelForTest(SimdLevel level) {
  SimdLevel clamped = std::min(level, DetectedSimdLevel());
  ActiveDispatch& dispatch = Dispatch();
  dispatch.table.store(&TableFor(clamped), std::memory_order_release);
  dispatch.level.store(static_cast<int>(clamped), std::memory_order_release);
  SimdLevelGauge().Set(static_cast<double>(clamped));
  return clamped;
}

void CountKernelCalls(Kernel kernel, uint64_t n) {
  if (kernel >= Kernel::kCount || n == 0) return;
  KernelCounters& counters = Counters();
  int index = static_cast<int>(kernel);
  counters.calls[index]->Increment(static_cast<double>(n));
  counters.local[index].fetch_add(n, std::memory_order_relaxed);
}

uint64_t KernelCallCount(Kernel kernel) {
  if (kernel >= Kernel::kCount) return 0;
  return Counters().local[static_cast<int>(kernel)].load(
      std::memory_order_relaxed);
}

}  // namespace visualroad::video::kernels
