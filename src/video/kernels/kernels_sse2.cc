// SSE2 kernel variants (the x86-64 baseline ISA, so this file needs no extra
// compile flags). Identity discipline: integer kernels (SAD, accumulate) are
// exact by nature; floating-point kernels replay the scalar expression tree
// operation for operation — same association order, separate mul/add (the
// baseline has no FMA), truncating conversions — so each lane computes the
// bit-exact scalar value. Final roundings that have no vector twin (lround in
// the inverse DCT) stay scalar on the accumulated sums.

#include "video/kernels/kernels_internal.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cmath>

namespace visualroad::video::kernels::internal {

namespace {

/// Horizontal total of the two 64-bit halves of a psadbw accumulator.
inline int64_t SadHorizontalSum(__m128i sad) {
  return _mm_cvtsi128_si64(sad) +
         _mm_cvtsi128_si64(_mm_unpackhi_epi64(sad, sad));
}

/// SAD of one row of `size` (8, 16, or 32) samples, exact.
inline int64_t RowSad(const uint8_t* c, const uint8_t* r, int size) {
  if (size == 8) {
    __m128i a = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c));
    __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r));
    return _mm_cvtsi128_si64(_mm_sad_epu8(a, b));
  }
  __m128i acc = _mm_setzero_si128();
  for (int x = 0; x < size; x += 16) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + x));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + x));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(a, b));
  }
  return SadHorizontalSum(acc);
}

/// std::clamp(v, 0, 255) + 0.5 on two lanes (identical to ClampByte up to the
/// truncating conversion, which the caller performs with cvttpd).
inline __m128d ClampBytePd(__m128d v) {
  v = _mm_min_pd(v, _mm_set1_pd(255.0));
  v = _mm_max_pd(v, _mm_setzero_pd());
  return _mm_add_pd(v, _mm_set1_pd(0.5));
}

inline __m128d AbsPd(__m128d v) {
  return _mm_andnot_pd(_mm_set1_pd(-0.0), v);
}

/// Two uint8 samples widened to doubles (exact conversions).
inline __m128d PairToPd(uint8_t a, uint8_t b) {
  return _mm_set_pd(static_cast<double>(b), static_cast<double>(a));
}

}  // namespace

int64_t Sse2SadBounded(const uint8_t* cur, int cur_stride, const uint8_t* ref,
                       int ref_stride, int size, int64_t bound) {
  int64_t sad = 0;
  for (int y = 0; y < size; ++y) {
    sad += RowSad(cur + static_cast<size_t>(y) * cur_stride,
                  ref + static_cast<size_t>(y) * ref_stride, size);
    if (sad >= bound) return sad;
  }
  return sad;
}

void Sse2ForwardDct(const int16_t* input, double* output) {
  const DctTables& tables = GetDctTables();
  double rows[kDctSize][kDctSize];
  // Row pass: lanes are k; each lane accumulates over n in scalar order.
  for (int y = 0; y < kDctSize; ++y) {
    for (int k = 0; k < kDctSize; k += 2) {
      __m128d acc = _mm_setzero_pd();
      for (int n = 0; n < kDctSize; ++n) {
        __m128d basis = _mm_loadu_pd(&tables.bt[n][k]);
        __m128d sample = _mm_set1_pd(static_cast<double>(input[y * kDctSize + n]));
        acc = _mm_add_pd(acc, _mm_mul_pd(basis, sample));
      }
      _mm_storeu_pd(&rows[y][k], acc);
    }
  }
  // Column pass: lanes are x; each lane accumulates over n in scalar order.
  for (int k = 0; k < kDctSize; ++k) {
    for (int x = 0; x < kDctSize; x += 2) {
      __m128d acc = _mm_setzero_pd();
      for (int n = 0; n < kDctSize; ++n) {
        __m128d basis = _mm_set1_pd(tables.b[k][n]);
        acc = _mm_add_pd(acc, _mm_mul_pd(basis, _mm_loadu_pd(&rows[n][x])));
      }
      _mm_storeu_pd(&output[k * kDctSize + x], acc);
    }
  }
}

void Sse2InverseDct(const double* input, int16_t* output) {
  const DctTables& tables = GetDctTables();
  double cols[kDctSize][kDctSize];
  // Column pass: lanes are x; accumulate over k in scalar order.
  for (int n = 0; n < kDctSize; ++n) {
    for (int x = 0; x < kDctSize; x += 2) {
      __m128d acc = _mm_setzero_pd();
      for (int k = 0; k < kDctSize; ++k) {
        __m128d basis = _mm_set1_pd(tables.b[k][n]);
        acc = _mm_add_pd(acc,
                         _mm_mul_pd(basis, _mm_loadu_pd(&input[k * kDctSize + x])));
      }
      _mm_storeu_pd(&cols[n][x], acc);
    }
  }
  // Row pass: lanes are n (basis rows are contiguous in n); accumulate over k.
  double sums[kDctArea];
  for (int y = 0; y < kDctSize; ++y) {
    for (int n = 0; n < kDctSize; n += 2) {
      __m128d acc = _mm_setzero_pd();
      for (int k = 0; k < kDctSize; ++k) {
        __m128d basis = _mm_loadu_pd(&tables.b[k][n]);
        __m128d sample = _mm_set1_pd(cols[y][k]);
        acc = _mm_add_pd(acc, _mm_mul_pd(basis, sample));
      }
      _mm_storeu_pd(&sums[y * kDctSize + n], acc);
    }
  }
  // lround has no bit-exact vector twin; round the 64 sums scalar.
  for (int i = 0; i < kDctArea; ++i) {
    output[i] = static_cast<int16_t>(std::lround(sums[i]));
  }
}

void Sse2Quantize(const double* coefficients, double step, int16_t* levels) {
  const __m128d step2 = _mm_set1_pd(step);
  const __m128d dead_zone = _mm_set1_pd(1.0 / 3.0);
  const __m128d round_in = _mm_set1_pd((1.0 - 1.0 / 3.0) * 0.5);
  const __m128i cap = _mm_set1_epi32(32767);
  for (int i = 0; i < kDctArea; i += 2) {
    __m128d scaled = _mm_div_pd(_mm_loadu_pd(coefficients + i), step2);
    __m128d magnitude = AbsPd(scaled);
    __m128d small = _mm_cmplt_pd(magnitude, dead_zone);
    __m128d negative = _mm_cmplt_pd(scaled, _mm_setzero_pd());
    // Truncating conversion of magnitude + round_in, matching (int)(m + c).
    __m128i level = _mm_cvttpd_epi32(_mm_add_pd(magnitude, round_in));
    // Compress the 64-bit double masks onto the two int32 lanes.
    __m128i small_i =
        _mm_shuffle_epi32(_mm_castpd_si128(small), _MM_SHUFFLE(3, 1, 2, 0));
    __m128i neg_i =
        _mm_shuffle_epi32(_mm_castpd_si128(negative), _MM_SHUFFLE(3, 1, 2, 0));
    level = _mm_andnot_si128(small_i, level);
    // min(level, 32767) without SSE4: blend through a compare mask.
    __m128i over = _mm_cmpgt_epi32(level, cap);
    level = _mm_or_si128(_mm_and_si128(over, cap), _mm_andnot_si128(over, level));
    // Conditional negate: (level ^ m) - m.
    level = _mm_sub_epi32(_mm_xor_si128(level, neg_i), neg_i);
    __m128i packed = _mm_packs_epi32(level, level);  // Saturation is a no-op.
    int pair = _mm_cvtsi128_si32(packed);
    levels[i] = static_cast<int16_t>(pair & 0xffff);
    levels[i + 1] = static_cast<int16_t>((pair >> 16) & 0xffff);
  }
}

void Sse2Dequantize(const int16_t* levels, double step, double* coefficients) {
  const __m128d step2 = _mm_set1_pd(step);
  for (int i = 0; i < kDctArea; i += 4) {
    __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(levels + i));
    __m128i wide = _mm_srai_epi32(_mm_unpacklo_epi16(raw, raw), 16);
    __m128d lo = _mm_cvtepi32_pd(wide);
    __m128d hi = _mm_cvtepi32_pd(_mm_shuffle_epi32(wide, _MM_SHUFFLE(3, 2, 3, 2)));
    _mm_storeu_pd(coefficients + i, _mm_mul_pd(lo, step2));
    _mm_storeu_pd(coefficients + i + 2, _mm_mul_pd(hi, step2));
  }
}

void Sse2RgbToYuvRow(const uint8_t* rgb, int n, uint8_t* y, uint8_t* u,
                     uint8_t* v) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    __m128d r = PairToPd(p[0], p[3]);
    __m128d g = PairToPd(p[1], p[4]);
    __m128d b = PairToPd(p[2], p[5]);
    // ((0.299 r) + (0.587 g)) + (0.114 b)
    __m128d yv = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(_mm_set1_pd(0.299), r),
                   _mm_mul_pd(_mm_set1_pd(0.587), g)),
        _mm_mul_pd(_mm_set1_pd(0.114), b));
    // (((-0.168736 r) - (0.331264 g)) + (0.5 b)) + 128
    __m128d uv = _mm_add_pd(
        _mm_add_pd(_mm_sub_pd(_mm_mul_pd(_mm_set1_pd(-0.168736), r),
                              _mm_mul_pd(_mm_set1_pd(0.331264), g)),
                   _mm_mul_pd(_mm_set1_pd(0.5), b)),
        _mm_set1_pd(128.0));
    // (((0.5 r) - (0.418688 g)) - (0.081312 b)) + 128
    __m128d vv = _mm_add_pd(
        _mm_sub_pd(_mm_sub_pd(_mm_mul_pd(_mm_set1_pd(0.5), r),
                              _mm_mul_pd(_mm_set1_pd(0.418688), g)),
                   _mm_mul_pd(_mm_set1_pd(0.081312), b)),
        _mm_set1_pd(128.0));
    __m128i yi = _mm_cvttpd_epi32(ClampBytePd(yv));
    __m128i ui = _mm_cvttpd_epi32(ClampBytePd(uv));
    __m128i vi = _mm_cvttpd_epi32(ClampBytePd(vv));
    y[i] = static_cast<uint8_t>(_mm_cvtsi128_si32(yi));
    y[i + 1] = static_cast<uint8_t>(_mm_cvtsi128_si32(
        _mm_shuffle_epi32(yi, _MM_SHUFFLE(1, 1, 1, 1))));
    u[i] = static_cast<uint8_t>(_mm_cvtsi128_si32(ui));
    u[i + 1] = static_cast<uint8_t>(_mm_cvtsi128_si32(
        _mm_shuffle_epi32(ui, _MM_SHUFFLE(1, 1, 1, 1))));
    v[i] = static_cast<uint8_t>(_mm_cvtsi128_si32(vi));
    v[i + 1] = static_cast<uint8_t>(_mm_cvtsi128_si32(
        _mm_shuffle_epi32(vi, _MM_SHUFFLE(1, 1, 1, 1))));
  }
  for (; i < n; ++i) {
    const uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    RgbToYuvPixel(p[0], p[1], p[2], y + i, u + i, v + i);
  }
}

void Sse2YuvToRgbRow(const uint8_t* y, const uint8_t* u, const uint8_t* v,
                     int n, uint8_t* rgb) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d yv = PairToPd(y[i], y[i + 1]);
    __m128d uv = _mm_sub_pd(PairToPd(u[i >> 1], u[(i + 1) >> 1]),
                            _mm_set1_pd(128.0));
    __m128d vv = _mm_sub_pd(PairToPd(v[i >> 1], v[(i + 1) >> 1]),
                            _mm_set1_pd(128.0));
    // y + (1.402 v)
    __m128d r = _mm_add_pd(yv, _mm_mul_pd(_mm_set1_pd(1.402), vv));
    // (y - (0.344136 u)) - (0.714136 v)
    __m128d g = _mm_sub_pd(_mm_sub_pd(yv, _mm_mul_pd(_mm_set1_pd(0.344136), uv)),
                           _mm_mul_pd(_mm_set1_pd(0.714136), vv));
    // y + (1.772 u)
    __m128d b = _mm_add_pd(yv, _mm_mul_pd(_mm_set1_pd(1.772), uv));
    __m128i ri = _mm_cvttpd_epi32(ClampBytePd(r));
    __m128i gi = _mm_cvttpd_epi32(ClampBytePd(g));
    __m128i bi = _mm_cvttpd_epi32(ClampBytePd(b));
    uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    p[0] = static_cast<uint8_t>(_mm_cvtsi128_si32(ri));
    p[1] = static_cast<uint8_t>(_mm_cvtsi128_si32(gi));
    p[2] = static_cast<uint8_t>(_mm_cvtsi128_si32(bi));
    p[3] = static_cast<uint8_t>(_mm_cvtsi128_si32(
        _mm_shuffle_epi32(ri, _MM_SHUFFLE(1, 1, 1, 1))));
    p[4] = static_cast<uint8_t>(_mm_cvtsi128_si32(
        _mm_shuffle_epi32(gi, _MM_SHUFFLE(1, 1, 1, 1))));
    p[5] = static_cast<uint8_t>(_mm_cvtsi128_si32(
        _mm_shuffle_epi32(bi, _MM_SHUFFLE(1, 1, 1, 1))));
  }
  for (; i < n; ++i) {
    uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    YuvToRgbPixel(y[i], u[i >> 1], v[i >> 1], p, p + 1, p + 2);
  }
}

void Sse2MaskStaticRow(const uint8_t* pv, const uint8_t* pb, double epsilon,
                       int n, uint8_t* mask) {
  const __m128d eps = _mm_set1_pd(epsilon);
  const __m128d zero = _mm_setzero_pd();
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d v = PairToPd(pv[i], pv[i + 1]);
    __m128d b = PairToPd(pb[i], pb[i + 1]);
    // |(pv - pb) / pv| < eps; pv == 0 divides to +-inf or NaN, and both
    // compare false — exactly the scalar branch's "non-static unless pb is
    // also 0", which the second term supplies.
    __m128d moving = _mm_cmplt_pd(AbsPd(_mm_div_pd(_mm_sub_pd(v, b), v)), eps);
    __m128d both_zero =
        _mm_and_pd(_mm_cmpeq_pd(v, zero), _mm_cmpeq_pd(b, zero));
    int bits = _mm_movemask_pd(_mm_or_pd(moving, both_zero));
    mask[i] = static_cast<uint8_t>(bits & 1);
    mask[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
  }
  for (; i < n; ++i) mask[i] = MaskStaticPixel(pv[i], pb[i], epsilon);
}

void Sse2AccumulateRow(const uint8_t* src, int n, int sign, uint32_t* acc) {
  const __m128i zero = _mm_setzero_si128();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i bytes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i lo16 = _mm_unpacklo_epi8(bytes, zero);
    __m128i hi16 = _mm_unpackhi_epi8(bytes, zero);
    __m128i w0 = _mm_unpacklo_epi16(lo16, zero);
    __m128i w1 = _mm_unpackhi_epi16(lo16, zero);
    __m128i w2 = _mm_unpacklo_epi16(hi16, zero);
    __m128i w3 = _mm_unpackhi_epi16(hi16, zero);
    __m128i* out = reinterpret_cast<__m128i*>(acc + i);
    if (sign >= 0) {
      _mm_storeu_si128(out, _mm_add_epi32(_mm_loadu_si128(out), w0));
      _mm_storeu_si128(out + 1, _mm_add_epi32(_mm_loadu_si128(out + 1), w1));
      _mm_storeu_si128(out + 2, _mm_add_epi32(_mm_loadu_si128(out + 2), w2));
      _mm_storeu_si128(out + 3, _mm_add_epi32(_mm_loadu_si128(out + 3), w3));
    } else {
      _mm_storeu_si128(out, _mm_sub_epi32(_mm_loadu_si128(out), w0));
      _mm_storeu_si128(out + 1, _mm_sub_epi32(_mm_loadu_si128(out + 1), w1));
      _mm_storeu_si128(out + 2, _mm_sub_epi32(_mm_loadu_si128(out + 2), w2));
      _mm_storeu_si128(out + 3, _mm_sub_epi32(_mm_loadu_si128(out + 3), w3));
    }
  }
  ScalarAccumulateRow(src + i, n - i, sign, acc + i);
}

void Sse2RasterSpan(const SpanSetup& s, double py, int x0, int n,
                    uint8_t* valid, float* depth, double* u, double* v) {
  const __m128d pyv = _mm_set1_pd(py);
  const __m128d inv_area = _mm_set1_pd(s.inv_area);
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d zero = _mm_setzero_pd();
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d px = _mm_set_pd(static_cast<double>(x0 + i + 1) + 0.5,
                            static_cast<double>(x0 + i) + 0.5);
    // w0 = ((s1x - px)(s2y - py) - (s2x - px)(s1y - py)) * inv_area
    __m128d w0 = _mm_mul_pd(
        _mm_sub_pd(_mm_mul_pd(_mm_sub_pd(_mm_set1_pd(s.s1x), px),
                              _mm_sub_pd(_mm_set1_pd(s.s2y), pyv)),
                   _mm_mul_pd(_mm_sub_pd(_mm_set1_pd(s.s2x), px),
                              _mm_sub_pd(_mm_set1_pd(s.s1y), pyv))),
        inv_area);
    __m128d w1 = _mm_mul_pd(
        _mm_sub_pd(_mm_mul_pd(_mm_sub_pd(_mm_set1_pd(s.s2x), px),
                              _mm_sub_pd(_mm_set1_pd(s.s0y), pyv)),
                   _mm_mul_pd(_mm_sub_pd(_mm_set1_pd(s.s0x), px),
                              _mm_sub_pd(_mm_set1_pd(s.s2y), pyv))),
        inv_area);
    __m128d w2 = _mm_sub_pd(_mm_sub_pd(one, w0), w1);
    __m128d outside = _mm_or_pd(_mm_or_pd(_mm_cmplt_pd(w0, zero),
                                          _mm_cmplt_pd(w1, zero)),
                                _mm_cmplt_pd(w2, zero));
    // inv_z = ((w0 z0) + (w1 z1)) + (w2 z2)
    __m128d inv_z = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(w0, _mm_set1_pd(s.z0)),
                   _mm_mul_pd(w1, _mm_set1_pd(s.z1))),
        _mm_mul_pd(w2, _mm_set1_pd(s.z2)));
    __m128d behind = _mm_cmple_pd(inv_z, zero);
    int reject = _mm_movemask_pd(_mm_or_pd(outside, behind));
    valid[i] = static_cast<uint8_t>(~reject & 1);
    valid[i + 1] = static_cast<uint8_t>((~reject >> 1) & 1);
    __m128 depth_ps = _mm_cvtpd_ps(_mm_div_pd(one, inv_z));
    _mm_storel_pi(reinterpret_cast<__m64*>(depth + i), depth_ps);
    __m128d uz = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(w0, _mm_set1_pd(s.u0)),
                   _mm_mul_pd(w1, _mm_set1_pd(s.u1))),
        _mm_mul_pd(w2, _mm_set1_pd(s.u2)));
    __m128d vz = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(w0, _mm_set1_pd(s.v0)),
                   _mm_mul_pd(w1, _mm_set1_pd(s.v1))),
        _mm_mul_pd(w2, _mm_set1_pd(s.v2)));
    _mm_storeu_pd(u + i, _mm_div_pd(uz, inv_z));
    _mm_storeu_pd(v + i, _mm_div_pd(vz, inv_z));
  }
  for (; i < n; ++i) {
    double px = (x0 + i) + 0.5;
    valid[i] = RasterPixel(s, px, py, depth + i, u + i, v + i) ? 1 : 0;
  }
}

}  // namespace visualroad::video::kernels::internal

#else  // !defined(__SSE2__): forward the whole level to scalar.

namespace visualroad::video::kernels::internal {

int64_t Sse2SadBounded(const uint8_t* cur, int cur_stride, const uint8_t* ref,
                       int ref_stride, int size, int64_t bound) {
  return ScalarSadBounded(cur, cur_stride, ref, ref_stride, size, bound);
}
void Sse2ForwardDct(const int16_t* input, double* output) {
  ScalarForwardDct(input, output);
}
void Sse2InverseDct(const double* input, int16_t* output) {
  ScalarInverseDct(input, output);
}
void Sse2Quantize(const double* coefficients, double step, int16_t* levels) {
  ScalarQuantize(coefficients, step, levels);
}
void Sse2Dequantize(const int16_t* levels, double step, double* coefficients) {
  ScalarDequantize(levels, step, coefficients);
}
void Sse2RgbToYuvRow(const uint8_t* rgb, int n, uint8_t* y, uint8_t* u,
                     uint8_t* v) {
  ScalarRgbToYuvRow(rgb, n, y, u, v);
}
void Sse2YuvToRgbRow(const uint8_t* y, const uint8_t* u, const uint8_t* v,
                     int n, uint8_t* rgb) {
  ScalarYuvToRgbRow(y, u, v, n, rgb);
}
void Sse2MaskStaticRow(const uint8_t* pv, const uint8_t* pb, double epsilon,
                       int n, uint8_t* mask) {
  ScalarMaskStaticRow(pv, pb, epsilon, n, mask);
}
void Sse2AccumulateRow(const uint8_t* src, int n, int sign, uint32_t* acc) {
  ScalarAccumulateRow(src, n, sign, acc);
}
void Sse2RasterSpan(const SpanSetup& s, double py, int x0, int n,
                    uint8_t* valid, float* depth, double* u, double* v) {
  ScalarRasterSpan(s, py, x0, n, valid, depth, u, v);
}

}  // namespace visualroad::video::kernels::internal

#endif  // __SSE2__
