// AVX2 kernel variants. This translation unit alone is compiled with -mavx2
// (per-file COMPILE_OPTIONS); the rest of the build keeps the baseline ISA,
// and dispatch guarantees these bodies only run on CPUs that report AVX2.
// Identity discipline matches kernels_sse2.cc: element-wise IEEE double ops in
// the scalar association order, no FMA intrinsics (and -mavx2 does not imply
// -mfma, so nothing can contract), truncating conversions. Only the lane
// width changes (4 doubles / 32 bytes per step).
//
// If the configure step finds the compiler cannot take -mavx2 it defines
// VISUALROAD_NO_AVX2_COMPILER for this file and every Avx2* entry forwards to
// the SSE2 level, keeping the dispatch tables fully populated.

#include "video/kernels/kernels_internal.h"

#if defined(__AVX2__) && !defined(VISUALROAD_NO_AVX2_COMPILER)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace visualroad::video::kernels::internal {

namespace {

/// Four uint8/int16 samples widened to doubles (exact conversions).
inline __m256d QuadToPd(double a, double b, double c, double d) {
  return _mm256_set_pd(d, c, b, a);
}

inline __m256d AbsPd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

/// std::clamp(v, 0, 255) + 0.5 on four lanes.
inline __m256d ClampBytePd(__m256d v) {
  v = _mm256_min_pd(v, _mm256_set1_pd(255.0));
  v = _mm256_max_pd(v, _mm256_setzero_pd());
  return _mm256_add_pd(v, _mm256_set1_pd(0.5));
}

/// Compresses a 4x64-bit __m256d compare mask onto 4 int32 lanes.
inline __m128i MaskPdToEpi32(__m256d mask) {
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(mask), idx));
}

/// Packs four int32 byte values (already in [0, 255]) into 4 packed bytes.
inline uint32_t PackBytes(__m128i v) {
  __m128i packed16 = _mm_packs_epi32(v, v);
  __m128i packed8 = _mm_packus_epi16(packed16, packed16);
  return static_cast<uint32_t>(_mm_cvtsi128_si32(packed8));
}

}  // namespace

int64_t Avx2SadBounded(const uint8_t* cur, int cur_stride, const uint8_t* ref,
                       int ref_stride, int size, int64_t bound) {
  if (size != 32) {
    // 8/16-wide rows already fit one 128-bit psadbw; nothing for 256-bit
    // lanes to add.
    return Sse2SadBounded(cur, cur_stride, ref, ref_stride, size, bound);
  }
  int64_t sad = 0;
  for (int y = 0; y < size; ++y) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        cur + static_cast<size_t>(y) * cur_stride));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        ref + static_cast<size_t>(y) * ref_stride));
    __m256i row = _mm256_sad_epu8(a, b);
    __m128i halves = _mm_add_epi64(_mm256_castsi256_si128(row),
                                   _mm256_extracti128_si256(row, 1));
    sad += _mm_cvtsi128_si64(halves) +
           _mm_cvtsi128_si64(_mm_unpackhi_epi64(halves, halves));
    if (sad >= bound) return sad;
  }
  return sad;
}

void Avx2ForwardDct(const int16_t* input, double* output) {
  const DctTables& tables = GetDctTables();
  double rows[kDctSize][kDctSize];
  for (int y = 0; y < kDctSize; ++y) {
    for (int k = 0; k < kDctSize; k += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (int n = 0; n < kDctSize; ++n) {
        __m256d basis = _mm256_loadu_pd(&tables.bt[n][k]);
        __m256d sample =
            _mm256_set1_pd(static_cast<double>(input[y * kDctSize + n]));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(basis, sample));
      }
      _mm256_storeu_pd(&rows[y][k], acc);
    }
  }
  for (int k = 0; k < kDctSize; ++k) {
    for (int x = 0; x < kDctSize; x += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (int n = 0; n < kDctSize; ++n) {
        __m256d basis = _mm256_set1_pd(tables.b[k][n]);
        acc = _mm256_add_pd(acc,
                            _mm256_mul_pd(basis, _mm256_loadu_pd(&rows[n][x])));
      }
      _mm256_storeu_pd(&output[k * kDctSize + x], acc);
    }
  }
}

void Avx2InverseDct(const double* input, int16_t* output) {
  const DctTables& tables = GetDctTables();
  double cols[kDctSize][kDctSize];
  for (int n = 0; n < kDctSize; ++n) {
    for (int x = 0; x < kDctSize; x += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (int k = 0; k < kDctSize; ++k) {
        __m256d basis = _mm256_set1_pd(tables.b[k][n]);
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(basis, _mm256_loadu_pd(&input[k * kDctSize + x])));
      }
      _mm256_storeu_pd(&cols[n][x], acc);
    }
  }
  double sums[kDctArea];
  for (int y = 0; y < kDctSize; ++y) {
    for (int n = 0; n < kDctSize; n += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (int k = 0; k < kDctSize; ++k) {
        __m256d basis = _mm256_loadu_pd(&tables.b[k][n]);
        __m256d sample = _mm256_set1_pd(cols[y][k]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(basis, sample));
      }
      _mm256_storeu_pd(&sums[y * kDctSize + n], acc);
    }
  }
  for (int i = 0; i < kDctArea; ++i) {
    output[i] = static_cast<int16_t>(std::lround(sums[i]));
  }
}

void Avx2Quantize(const double* coefficients, double step, int16_t* levels) {
  const __m256d step4 = _mm256_set1_pd(step);
  const __m256d dead_zone = _mm256_set1_pd(1.0 / 3.0);
  const __m256d round_in = _mm256_set1_pd((1.0 - 1.0 / 3.0) * 0.5);
  const __m128i cap = _mm_set1_epi32(32767);
  for (int i = 0; i < kDctArea; i += 4) {
    __m256d scaled = _mm256_div_pd(_mm256_loadu_pd(coefficients + i), step4);
    __m256d magnitude = AbsPd(scaled);
    __m128i small_i = MaskPdToEpi32(
        _mm256_cmp_pd(magnitude, dead_zone, _CMP_LT_OQ));
    __m128i neg_i = MaskPdToEpi32(
        _mm256_cmp_pd(scaled, _mm256_setzero_pd(), _CMP_LT_OQ));
    __m128i level = _mm256_cvttpd_epi32(_mm256_add_pd(magnitude, round_in));
    level = _mm_andnot_si128(small_i, level);
    level = _mm_min_epi32(level, cap);
    level = _mm_sub_epi32(_mm_xor_si128(level, neg_i), neg_i);
    __m128i packed = _mm_packs_epi32(level, level);  // Saturation is a no-op.
    _mm_storel_epi64(reinterpret_cast<__m128i*>(levels + i), packed);
  }
}

void Avx2Dequantize(const int16_t* levels, double step, double* coefficients) {
  const __m256d step4 = _mm256_set1_pd(step);
  for (int i = 0; i < kDctArea; i += 8) {
    __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(levels + i));
    __m256i wide = _mm256_cvtepi16_epi32(raw);
    __m256d lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(wide));
    __m256d hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(wide, 1));
    _mm256_storeu_pd(coefficients + i, _mm256_mul_pd(lo, step4));
    _mm256_storeu_pd(coefficients + i + 4, _mm256_mul_pd(hi, step4));
  }
}

void Avx2RgbToYuvRow(const uint8_t* rgb, int n, uint8_t* y, uint8_t* u,
                     uint8_t* v) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    __m256d r = QuadToPd(p[0], p[3], p[6], p[9]);
    __m256d g = QuadToPd(p[1], p[4], p[7], p[10]);
    __m256d b = QuadToPd(p[2], p[5], p[8], p[11]);
    __m256d yv = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(0.299), r),
                      _mm256_mul_pd(_mm256_set1_pd(0.587), g)),
        _mm256_mul_pd(_mm256_set1_pd(0.114), b));
    __m256d uv = _mm256_add_pd(
        _mm256_add_pd(
            _mm256_sub_pd(_mm256_mul_pd(_mm256_set1_pd(-0.168736), r),
                          _mm256_mul_pd(_mm256_set1_pd(0.331264), g)),
            _mm256_mul_pd(_mm256_set1_pd(0.5), b)),
        _mm256_set1_pd(128.0));
    __m256d vv = _mm256_add_pd(
        _mm256_sub_pd(_mm256_sub_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), r),
                                    _mm256_mul_pd(_mm256_set1_pd(0.418688), g)),
                      _mm256_mul_pd(_mm256_set1_pd(0.081312), b)),
        _mm256_set1_pd(128.0));
    uint32_t ybytes = PackBytes(_mm256_cvttpd_epi32(ClampBytePd(yv)));
    uint32_t ubytes = PackBytes(_mm256_cvttpd_epi32(ClampBytePd(uv)));
    uint32_t vbytes = PackBytes(_mm256_cvttpd_epi32(ClampBytePd(vv)));
    std::memcpy(y + i, &ybytes, 4);
    std::memcpy(u + i, &ubytes, 4);
    std::memcpy(v + i, &vbytes, 4);
  }
  for (; i < n; ++i) {
    const uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    RgbToYuvPixel(p[0], p[1], p[2], y + i, u + i, v + i);
  }
}

void Avx2YuvToRgbRow(const uint8_t* y, const uint8_t* u, const uint8_t* v,
                     int n, uint8_t* rgb) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d yv = QuadToPd(y[i], y[i + 1], y[i + 2], y[i + 3]);
    __m256d uv = _mm256_sub_pd(QuadToPd(u[i >> 1], u[(i + 1) >> 1],
                                        u[(i + 2) >> 1], u[(i + 3) >> 1]),
                               _mm256_set1_pd(128.0));
    __m256d vv = _mm256_sub_pd(QuadToPd(v[i >> 1], v[(i + 1) >> 1],
                                        v[(i + 2) >> 1], v[(i + 3) >> 1]),
                               _mm256_set1_pd(128.0));
    __m256d r =
        _mm256_add_pd(yv, _mm256_mul_pd(_mm256_set1_pd(1.402), vv));
    __m256d g = _mm256_sub_pd(
        _mm256_sub_pd(yv, _mm256_mul_pd(_mm256_set1_pd(0.344136), uv)),
        _mm256_mul_pd(_mm256_set1_pd(0.714136), vv));
    __m256d b =
        _mm256_add_pd(yv, _mm256_mul_pd(_mm256_set1_pd(1.772), uv));
    alignas(16) int32_t ri[4], gi[4], bi[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(ri),
                    _mm256_cvttpd_epi32(ClampBytePd(r)));
    _mm_store_si128(reinterpret_cast<__m128i*>(gi),
                    _mm256_cvttpd_epi32(ClampBytePd(g)));
    _mm_store_si128(reinterpret_cast<__m128i*>(bi),
                    _mm256_cvttpd_epi32(ClampBytePd(b)));
    uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    for (int lane = 0; lane < 4; ++lane) {
      p[3 * lane + 0] = static_cast<uint8_t>(ri[lane]);
      p[3 * lane + 1] = static_cast<uint8_t>(gi[lane]);
      p[3 * lane + 2] = static_cast<uint8_t>(bi[lane]);
    }
  }
  for (; i < n; ++i) {
    uint8_t* p = rgb + 3 * static_cast<size_t>(i);
    YuvToRgbPixel(y[i], u[i >> 1], v[i >> 1], p, p + 1, p + 2);
  }
}

void Avx2MaskStaticRow(const uint8_t* pv, const uint8_t* pb, double epsilon,
                       int n, uint8_t* mask) {
  const __m256d eps = _mm256_set1_pd(epsilon);
  const __m256d zero = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d v = QuadToPd(pv[i], pv[i + 1], pv[i + 2], pv[i + 3]);
    __m256d b = QuadToPd(pb[i], pb[i + 1], pb[i + 2], pb[i + 3]);
    __m256d moving = _mm256_cmp_pd(
        AbsPd(_mm256_div_pd(_mm256_sub_pd(v, b), v)), eps, _CMP_LT_OQ);
    __m256d both_zero = _mm256_and_pd(_mm256_cmp_pd(v, zero, _CMP_EQ_OQ),
                                      _mm256_cmp_pd(b, zero, _CMP_EQ_OQ));
    int bits = _mm256_movemask_pd(_mm256_or_pd(moving, both_zero));
    mask[i] = static_cast<uint8_t>(bits & 1);
    mask[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    mask[i + 2] = static_cast<uint8_t>((bits >> 2) & 1);
    mask[i + 3] = static_cast<uint8_t>((bits >> 3) & 1);
  }
  for (; i < n; ++i) mask[i] = MaskStaticPixel(pv[i], pb[i], epsilon);
}

void Avx2AccumulateRow(const uint8_t* src, int n, int sign, uint32_t* acc) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i wide = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i)));
    __m256i* out = reinterpret_cast<__m256i*>(acc + i);
    __m256i current = _mm256_loadu_si256(out);
    _mm256_storeu_si256(out, sign >= 0 ? _mm256_add_epi32(current, wide)
                                       : _mm256_sub_epi32(current, wide));
  }
  ScalarAccumulateRow(src + i, n - i, sign, acc + i);
}

void Avx2RasterSpan(const SpanSetup& s, double py, int x0, int n,
                    uint8_t* valid, float* depth, double* u, double* v) {
  const __m256d pyv = _mm256_set1_pd(py);
  const __m256d inv_area = _mm256_set1_pd(s.inv_area);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d px = _mm256_set_pd(static_cast<double>(x0 + i + 3) + 0.5,
                               static_cast<double>(x0 + i + 2) + 0.5,
                               static_cast<double>(x0 + i + 1) + 0.5,
                               static_cast<double>(x0 + i) + 0.5);
    __m256d w0 = _mm256_mul_pd(
        _mm256_sub_pd(
            _mm256_mul_pd(_mm256_sub_pd(_mm256_set1_pd(s.s1x), px),
                          _mm256_sub_pd(_mm256_set1_pd(s.s2y), pyv)),
            _mm256_mul_pd(_mm256_sub_pd(_mm256_set1_pd(s.s2x), px),
                          _mm256_sub_pd(_mm256_set1_pd(s.s1y), pyv))),
        inv_area);
    __m256d w1 = _mm256_mul_pd(
        _mm256_sub_pd(
            _mm256_mul_pd(_mm256_sub_pd(_mm256_set1_pd(s.s2x), px),
                          _mm256_sub_pd(_mm256_set1_pd(s.s0y), pyv)),
            _mm256_mul_pd(_mm256_sub_pd(_mm256_set1_pd(s.s0x), px),
                          _mm256_sub_pd(_mm256_set1_pd(s.s2y), pyv))),
        inv_area);
    __m256d w2 = _mm256_sub_pd(_mm256_sub_pd(one, w0), w1);
    __m256d outside = _mm256_or_pd(
        _mm256_or_pd(_mm256_cmp_pd(w0, zero, _CMP_LT_OQ),
                     _mm256_cmp_pd(w1, zero, _CMP_LT_OQ)),
        _mm256_cmp_pd(w2, zero, _CMP_LT_OQ));
    __m256d inv_z = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(w0, _mm256_set1_pd(s.z0)),
                      _mm256_mul_pd(w1, _mm256_set1_pd(s.z1))),
        _mm256_mul_pd(w2, _mm256_set1_pd(s.z2)));
    __m256d behind = _mm256_cmp_pd(inv_z, zero, _CMP_LE_OQ);
    int reject = _mm256_movemask_pd(_mm256_or_pd(outside, behind));
    valid[i] = static_cast<uint8_t>(~reject & 1);
    valid[i + 1] = static_cast<uint8_t>((~reject >> 1) & 1);
    valid[i + 2] = static_cast<uint8_t>((~reject >> 2) & 1);
    valid[i + 3] = static_cast<uint8_t>((~reject >> 3) & 1);
    _mm_storeu_ps(depth + i, _mm256_cvtpd_ps(_mm256_div_pd(one, inv_z)));
    __m256d uz = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(w0, _mm256_set1_pd(s.u0)),
                      _mm256_mul_pd(w1, _mm256_set1_pd(s.u1))),
        _mm256_mul_pd(w2, _mm256_set1_pd(s.u2)));
    __m256d vz = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(w0, _mm256_set1_pd(s.v0)),
                      _mm256_mul_pd(w1, _mm256_set1_pd(s.v1))),
        _mm256_mul_pd(w2, _mm256_set1_pd(s.v2)));
    _mm256_storeu_pd(u + i, _mm256_div_pd(uz, inv_z));
    _mm256_storeu_pd(v + i, _mm256_div_pd(vz, inv_z));
  }
  for (; i < n; ++i) {
    double px = (x0 + i) + 0.5;
    valid[i] = RasterPixel(s, px, py, depth + i, u + i, v + i) ? 1 : 0;
  }
}

}  // namespace visualroad::video::kernels::internal

#else  // AVX2 unavailable at compile time: forward the level to SSE2.

namespace visualroad::video::kernels::internal {

int64_t Avx2SadBounded(const uint8_t* cur, int cur_stride, const uint8_t* ref,
                       int ref_stride, int size, int64_t bound) {
  return Sse2SadBounded(cur, cur_stride, ref, ref_stride, size, bound);
}
void Avx2ForwardDct(const int16_t* input, double* output) {
  Sse2ForwardDct(input, output);
}
void Avx2InverseDct(const double* input, int16_t* output) {
  Sse2InverseDct(input, output);
}
void Avx2Quantize(const double* coefficients, double step, int16_t* levels) {
  Sse2Quantize(coefficients, step, levels);
}
void Avx2Dequantize(const int16_t* levels, double step, double* coefficients) {
  Sse2Dequantize(levels, step, coefficients);
}
void Avx2RgbToYuvRow(const uint8_t* rgb, int n, uint8_t* y, uint8_t* u,
                     uint8_t* v) {
  Sse2RgbToYuvRow(rgb, n, y, u, v);
}
void Avx2YuvToRgbRow(const uint8_t* y, const uint8_t* u, const uint8_t* v,
                     int n, uint8_t* rgb) {
  Sse2YuvToRgbRow(y, u, v, n, rgb);
}
void Avx2MaskStaticRow(const uint8_t* pv, const uint8_t* pb, double epsilon,
                       int n, uint8_t* mask) {
  Sse2MaskStaticRow(pv, pb, epsilon, n, mask);
}
void Avx2AccumulateRow(const uint8_t* src, int n, int sign, uint32_t* acc) {
  Sse2AccumulateRow(src, n, sign, acc);
}
void Avx2RasterSpan(const SpanSetup& s, double py, int x0, int n,
                    uint8_t* valid, float* depth, double* u, double* v) {
  Sse2RasterSpan(s, py, x0, n, valid, depth, u, v);
}

}  // namespace visualroad::video::kernels::internal

#endif  // __AVX2__ && !VISUALROAD_NO_AVX2_COMPILER
