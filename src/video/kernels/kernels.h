#ifndef VISUALROAD_VIDEO_KERNELS_KERNELS_H_
#define VISUALROAD_VIDEO_KERNELS_KERNELS_H_

// Runtime-dispatched SIMD kernels for the pixel hot paths.
//
// Every per-pixel inner loop the engines bottom out in — SAD motion search,
// the 8x8 DCT/IDCT, quantisation, YUV<->RGB conversion, background
// subtraction, plane accumulation, and rasterizer span shading — funnels
// through one function-pointer table selected at startup from CPUID
// (scalar / SSE2 / AVX2). Vector variants are BYTE-IDENTICAL to scalar by
// construction: integer kernels are exact, and floating-point kernels mirror
// the scalar expression tree operation for operation (same association order,
// no FMA contraction, truncating conversions), so the determinism and
// faults-off byte-identity suites pass unchanged at every dispatch level.
//
// Pin a level with VR_SIMD=scalar|sse2|avx2 (clamped to what the CPU
// supports) or SetSimdLevelForTest(). The selected level is exported as the
// vr_simd_level gauge; call volume per kernel flows into
// vr_kernel_calls_total{kernel="..."} at call-site (batched) granularity.

#include <cstdint>

#include "common/cpu.h"

namespace visualroad::video::kernels {

/// Kernel identifiers, used for call accounting and bench sections.
enum class Kernel : int {
  kSad = 0,
  kForwardDct,
  kInverseDct,
  kQuantize,
  kDequantize,
  kRgbToYuvRow,
  kYuvToRgbRow,
  kMaskStaticRow,
  kAccumulateRow,
  kRasterSpan,
  kCount,
};

inline constexpr int kKernelCount = static_cast<int>(Kernel::kCount);

/// Short stable name used as the `kernel=` metric label ("sad", "fdct", ...).
const char* KernelName(Kernel kernel);

/// Screen-space triangle setup for the rasterizer span kernel: vertex
/// positions, the signed-area reciprocal, and per-vertex 1/z and
/// perspective-divided attributes, exactly as Rasterizer::DrawClipped
/// computes them.
struct SpanSetup {
  double s0x, s0y, s1x, s1y, s2x, s2y;
  double inv_area;
  double z0, z1, z2;  // Per-vertex 1/z.
  double u0, u1, u2;  // Per-vertex u/z.
  double v0, v1, v2;  // Per-vertex v/z.
};

/// The dispatch table. One instance per SIMD level; all entries are non-null.
struct KernelTable {
  /// SAD between two size x size blocks that lie fully inside their planes,
  /// with the scalar path's per-row early exit: after each row, if the
  /// running sum has reached `bound`, it is returned as-is. `size` is 8, 16,
  /// or 32. Exact (integer) at every level.
  int64_t (*sad_bounded)(const uint8_t* cur, int cur_stride, const uint8_t* ref,
                         int ref_stride, int size, int64_t bound);

  /// Forward 8x8 DCT-II of a row-major int16 residual block into 64 doubles.
  void (*forward_dct)(const int16_t* input, double* output);

  /// Inverse 8x8 DCT-III of 64 doubles into int16 (lround rounding).
  void (*inverse_dct)(const double* input, int16_t* output);

  /// Dead-zone quantiser over one 64-coefficient block at step size `step`.
  void (*quantize)(const double* coefficients, double step, int16_t* levels);

  /// Reconstruction: coefficient = level * step.
  void (*dequantize)(const int16_t* levels, double step, double* coefficients);

  /// BT.601 RGB -> per-pixel YUV over one interleaved RGB24 row of n pixels,
  /// writing three planar rows (full-resolution chroma; the caller
  /// subsamples).
  void (*rgb_to_yuv_row)(const uint8_t* rgb, int n, uint8_t* y, uint8_t* u,
                         uint8_t* v);

  /// BT.601 YUV -> RGB over one row of n pixels. `u` and `v` point at the
  /// matching chroma row and are indexed x/2 (4:2:0 replication).
  void (*yuv_to_rgb_row)(const uint8_t* y, const uint8_t* u, const uint8_t* v,
                         int n, uint8_t* rgb);

  /// Background-subtraction classifier over one luma row: mask[i] = 1 when
  /// |(pv - pb) / pv| < epsilon (pv == 0 counts as static only when pb == 0).
  void (*mask_static_row)(const uint8_t* pv, const uint8_t* pb, double epsilon,
                          int n, uint8_t* mask);

  /// acc[i] += sign * src[i] over n samples (sign is +1 or -1, uint32 wrap
  /// semantics as the scalar windowed-mean code uses).
  void (*accumulate_row)(const uint8_t* src, int n, int sign, uint32_t* acc);

  /// Rasterizer span shading setup for n pixels starting at integer x0 on
  /// scanline centre py: per pixel, the barycentric coverage test, the
  /// interpolated camera-space depth (float, as written to the z-buffer), and
  /// the perspective-correct (u, v). valid[i] = 1 exactly when the scalar
  /// loop would reach its depth test (covered and 1/z > 0); depth/u/v are
  /// meaningful only for valid pixels.
  void (*raster_span)(const SpanSetup& s, double py, int x0, int n,
                      uint8_t* valid, float* depth, double* u, double* v);
};

/// The active dispatch table. Selected once at first use from
/// RequestedSimdLevel(); stable afterwards unless SetSimdLevelForTest runs.
const KernelTable& Kernels();

/// The level Kernels() currently dispatches to.
SimdLevel ActiveSimdLevel();

/// Table for an explicit level (clamped to DetectedSimdLevel()); lets benches
/// and identity tests exercise every variant side by side without touching
/// the process-wide selection.
const KernelTable& KernelsFor(SimdLevel level);

/// Repoints the process-wide dispatch (clamped to DetectedSimdLevel()) and
/// updates the vr_simd_level gauge. Test/bench only — not safe while kernels
/// are executing on other threads. Returns the level actually selected.
SimdLevel SetSimdLevelForTest(SimdLevel level);

/// Adds `n` calls to the vr_kernel_calls_total{kernel=...} counter. Hot call
/// sites batch (one bump per block search / per plane / per frame row set) so
/// accounting stays off the per-pixel path.
void CountKernelCalls(Kernel kernel, uint64_t n);

/// Reads the accumulated call count for one kernel (test support).
uint64_t KernelCallCount(Kernel kernel);

}  // namespace visualroad::video::kernels

#endif  // VISUALROAD_VIDEO_KERNELS_KERNELS_H_
