#ifndef VISUALROAD_VIDEO_KERNELS_KERNELS_INTERNAL_H_
#define VISUALROAD_VIDEO_KERNELS_KERNELS_INTERNAL_H_

// Shared between the per-level kernel translation units. The inline per-pixel
// helpers here are the single source of truth for the scalar math: the scalar
// kernels loop over them, and the vector kernels use them for their tail
// pixels, so every level agrees bit for bit by construction. They are
// element-wise (no reductions), so compiling them in an -mavx2 translation
// unit cannot change their IEEE results.

#include <cmath>
#include <cstdint>

#include "video/kernels/kernels.h"

namespace visualroad::video::kernels::internal {

// --- DCT basis tables -------------------------------------------------------

inline constexpr int kDctSize = 8;
inline constexpr int kDctArea = kDctSize * kDctSize;

/// Cosine basis in both layouts: b[k][n] = c(k) cos((2n+1) k pi / 16) as the
/// scalar loops read it, and the transpose bt[n][k] so vector row passes can
/// load contiguous k-lanes. Values are computed once with the exact formula
/// the pre-SIMD codec used.
struct DctTables {
  double b[kDctSize][kDctSize];
  double bt[kDctSize][kDctSize];
};

const DctTables& GetDctTables();

// --- Shared per-pixel scalar math -------------------------------------------

inline uint8_t ClampByte(double v) {
  double clamped = v < 0.0 ? 0.0 : (255.0 < v ? 255.0 : v);
  return static_cast<uint8_t>(clamped + 0.5);
}

/// BT.601 RGB -> YUV for one pixel; the exact expressions of
/// video::RgbToYuv, kept here so vector tails can share them.
inline void RgbToYuvPixel(uint8_t r8, uint8_t g8, uint8_t b8, uint8_t* y,
                          uint8_t* u, uint8_t* v) {
  double r = r8, g = g8, b = b8;
  *y = ClampByte(0.299 * r + 0.587 * g + 0.114 * b);
  *u = ClampByte(-0.168736 * r - 0.331264 * g + 0.5 * b + 128.0);
  *v = ClampByte(0.5 * r - 0.418688 * g - 0.081312 * b + 128.0);
}

/// BT.601 YUV -> RGB for one pixel; the exact expressions of
/// video::YuvToRgb.
inline void YuvToRgbPixel(uint8_t y8, uint8_t u8, uint8_t v8, uint8_t* r,
                          uint8_t* g, uint8_t* b) {
  double y = y8, u = u8 - 128.0, v = v8 - 128.0;
  *r = ClampByte(y + 1.402 * v);
  *g = ClampByte(y - 0.344136 * u - 0.714136 * v);
  *b = ClampByte(y + 1.772 * u);
}

/// Background-subtraction static test for one luma sample pair.
inline uint8_t MaskStaticPixel(uint8_t pv8, uint8_t pb8, double epsilon) {
  double pv = pv8;
  double pb = pb8;
  if (pv == 0.0) return pb == 0.0 ? 1 : 0;
  return std::abs((pv - pb) / pv) < epsilon ? 1 : 0;
}

/// Dead-zone quantiser for one coefficient (the exact pre-SIMD expressions).
inline int16_t QuantizeCoefficient(double coefficient, double step) {
  const double dead_zone = 1.0 / 3.0;
  double scaled = coefficient / step;
  double magnitude = std::abs(scaled);
  int level = magnitude < dead_zone
                  ? 0
                  : static_cast<int>(magnitude + (1.0 - dead_zone) * 0.5);
  level = level < 32767 ? level : 32767;
  return static_cast<int16_t>(scaled < 0 ? -level : level);
}

/// Rasterizer span shading for one pixel centre (px, py); mirrors the
/// original Rasterizer::DrawClipped inner loop up to (but excluding) the
/// z-buffer test. Returns false where that loop would `continue`.
inline bool RasterPixel(const SpanSetup& s, double px, double py, float* depth,
                        double* u, double* v) {
  double w0 =
      ((s.s1x - px) * (s.s2y - py) - (s.s2x - px) * (s.s1y - py)) * s.inv_area;
  double w1 =
      ((s.s2x - px) * (s.s0y - py) - (s.s0x - px) * (s.s2y - py)) * s.inv_area;
  double w2 = 1.0 - w0 - w1;
  if (w0 < 0 || w1 < 0 || w2 < 0) return false;
  double inv_z = w0 * s.z0 + w1 * s.z1 + w2 * s.z2;
  if (inv_z <= 0) return false;
  *depth = static_cast<float>(1.0 / inv_z);
  *u = (w0 * s.u0 + w1 * s.u1 + w2 * s.u2) / inv_z;
  *v = (w0 * s.v0 + w1 * s.v1 + w2 * s.v2) / inv_z;
  return true;
}

// --- Per-level kernel entry points ------------------------------------------
// Defined in kernels_scalar.cc / kernels_sse2.cc / kernels_avx2.cc; the
// dispatch tables in kernels.cc are assembled from these. On targets where a
// vector level cannot be compiled, its functions forward to the next level
// down, keeping every table entry non-null.

int64_t ScalarSadBounded(const uint8_t* cur, int cur_stride, const uint8_t* ref,
                         int ref_stride, int size, int64_t bound);
void ScalarForwardDct(const int16_t* input, double* output);
void ScalarInverseDct(const double* input, int16_t* output);
void ScalarQuantize(const double* coefficients, double step, int16_t* levels);
void ScalarDequantize(const int16_t* levels, double step, double* coefficients);
void ScalarRgbToYuvRow(const uint8_t* rgb, int n, uint8_t* y, uint8_t* u,
                       uint8_t* v);
void ScalarYuvToRgbRow(const uint8_t* y, const uint8_t* u, const uint8_t* v,
                       int n, uint8_t* rgb);
void ScalarMaskStaticRow(const uint8_t* pv, const uint8_t* pb, double epsilon,
                         int n, uint8_t* mask);
void ScalarAccumulateRow(const uint8_t* src, int n, int sign, uint32_t* acc);
void ScalarRasterSpan(const SpanSetup& s, double py, int x0, int n,
                      uint8_t* valid, float* depth, double* u, double* v);

int64_t Sse2SadBounded(const uint8_t* cur, int cur_stride, const uint8_t* ref,
                       int ref_stride, int size, int64_t bound);
void Sse2ForwardDct(const int16_t* input, double* output);
void Sse2InverseDct(const double* input, int16_t* output);
void Sse2Quantize(const double* coefficients, double step, int16_t* levels);
void Sse2Dequantize(const int16_t* levels, double step, double* coefficients);
void Sse2RgbToYuvRow(const uint8_t* rgb, int n, uint8_t* y, uint8_t* u,
                     uint8_t* v);
void Sse2YuvToRgbRow(const uint8_t* y, const uint8_t* u, const uint8_t* v,
                     int n, uint8_t* rgb);
void Sse2MaskStaticRow(const uint8_t* pv, const uint8_t* pb, double epsilon,
                       int n, uint8_t* mask);
void Sse2AccumulateRow(const uint8_t* src, int n, int sign, uint32_t* acc);
void Sse2RasterSpan(const SpanSetup& s, double py, int x0, int n,
                    uint8_t* valid, float* depth, double* u, double* v);

int64_t Avx2SadBounded(const uint8_t* cur, int cur_stride, const uint8_t* ref,
                       int ref_stride, int size, int64_t bound);
void Avx2ForwardDct(const int16_t* input, double* output);
void Avx2InverseDct(const double* input, int16_t* output);
void Avx2Quantize(const double* coefficients, double step, int16_t* levels);
void Avx2Dequantize(const int16_t* levels, double step, double* coefficients);
void Avx2RgbToYuvRow(const uint8_t* rgb, int n, uint8_t* y, uint8_t* u,
                     uint8_t* v);
void Avx2YuvToRgbRow(const uint8_t* y, const uint8_t* u, const uint8_t* v,
                     int n, uint8_t* rgb);
void Avx2MaskStaticRow(const uint8_t* pv, const uint8_t* pb, double epsilon,
                       int n, uint8_t* mask);
void Avx2AccumulateRow(const uint8_t* src, int n, int sign, uint32_t* acc);
void Avx2RasterSpan(const SpanSetup& s, double py, int x0, int n,
                    uint8_t* valid, float* depth, double* u, double* v);

}  // namespace visualroad::video::kernels::internal

#endif  // VISUALROAD_VIDEO_KERNELS_KERNELS_INTERNAL_H_
