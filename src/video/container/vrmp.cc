#include "video/container/vrmp.h"

#include <cstring>
#include <fstream>

namespace visualroad::video::container {

namespace {

constexpr uint32_t kVersion = 1;

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutF64(std::vector<uint8_t>& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Sequential little-endian reader with bounds checking.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool Read(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool ReadU32(uint32_t& v) {
    uint8_t b[4];
    if (!Read(b, 4)) return false;
    v = b[0] | (b[1] << 8) | (b[2] << 16) | (static_cast<uint32_t>(b[3]) << 24);
    return true;
  }
  bool ReadU64(uint64_t& v) {
    uint32_t lo, hi;
    if (!ReadU32(lo) || !ReadU32(hi)) return false;
    v = lo | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
  bool ReadF64(double& v) {
    uint64_t bits;
    if (!ReadU64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool ReadBytes(std::vector<uint8_t>& out, size_t n) {
    if (pos_ + n > size_) return false;
    out.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ >= size_; }
  size_t Remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void PutBox(std::vector<uint8_t>& out, const char type[4],
            const std::vector<uint8_t>& payload) {
  out.insert(out.end(), type, type + 4);
  PutU64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

const MetadataTrack* Container::FindTrack(const std::string& kind) const {
  for (const MetadataTrack& track : tracks) {
    if (track.kind == kind) return &track;
  }
  return nullptr;
}

std::vector<uint8_t> Mux(const Container& container) {
  const codec::EncodedVideo& video = container.video;
  std::vector<uint8_t> out;

  std::vector<uint8_t> magic;
  PutU32(magic, kVersion);
  PutBox(out, "VRMP", magic);

  std::vector<uint8_t> prop;
  PutU32(prop, static_cast<uint32_t>(video.profile));
  PutU32(prop, static_cast<uint32_t>(video.width));
  PutU32(prop, static_cast<uint32_t>(video.height));
  PutF64(prop, video.fps);
  PutU32(prop, static_cast<uint32_t>(video.frames.size()));
  PutBox(out, "PROP", prop);

  std::vector<uint8_t> index;
  for (const codec::EncodedFrame& frame : video.frames) {
    PutU64(index, frame.data.size());
    index.push_back(frame.keyframe ? 1 : 0);
    index.push_back(frame.qp);
  }
  PutBox(out, "INDX", index);

  std::vector<uint8_t> mdat;
  for (const codec::EncodedFrame& frame : video.frames) {
    mdat.insert(mdat.end(), frame.data.begin(), frame.data.end());
  }
  PutBox(out, "MDAT", mdat);

  for (const MetadataTrack& track : container.tracks) {
    std::vector<uint8_t> payload;
    char kind[4] = {' ', ' ', ' ', ' '};
    for (size_t i = 0; i < 4 && i < track.kind.size(); ++i) kind[i] = track.kind[i];
    payload.insert(payload.end(), kind, kind + 4);
    payload.insert(payload.end(), track.payload.begin(), track.payload.end());
    PutBox(out, "TRAK", payload);
  }
  return out;
}

StatusOr<Container> Demux(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes.data(), bytes.size());
  Container container;
  bool seen_magic = false, seen_prop = false;
  std::vector<uint64_t> frame_sizes;
  std::vector<uint8_t> key_flags, qps, mdat;

  while (!reader.AtEnd()) {
    char type[4];
    uint64_t size;
    if (!reader.Read(type, 4) || !reader.ReadU64(size)) {
      return Status::DataLoss("truncated VRMP box header");
    }
    if (size > reader.Remaining()) {
      return Status::DataLoss("VRMP box size exceeds file size");
    }
    std::vector<uint8_t> payload;
    if (!reader.ReadBytes(payload, static_cast<size_t>(size))) {
      return Status::DataLoss("truncated VRMP box payload");
    }
    ByteReader body(payload.data(), payload.size());

    if (std::memcmp(type, "VRMP", 4) == 0) {
      uint32_t version;
      if (!body.ReadU32(version)) return Status::DataLoss("bad VRMP magic box");
      if (version != kVersion) {
        return Status::InvalidArgument("unsupported VRMP version");
      }
      seen_magic = true;
    } else if (std::memcmp(type, "PROP", 4) == 0) {
      uint32_t profile, width, height, frame_count;
      double fps;
      if (!body.ReadU32(profile) || !body.ReadU32(width) || !body.ReadU32(height) ||
          !body.ReadF64(fps) || !body.ReadU32(frame_count)) {
        return Status::DataLoss("bad PROP box");
      }
      if (profile > 1) return Status::InvalidArgument("unknown codec profile");
      container.video.profile = static_cast<codec::Profile>(profile);
      container.video.width = static_cast<int>(width);
      container.video.height = static_cast<int>(height);
      container.video.fps = fps;
      container.video.frames.resize(frame_count);
      seen_prop = true;
    } else if (std::memcmp(type, "INDX", 4) == 0) {
      size_t count = payload.size() / 10;
      frame_sizes.resize(count);
      key_flags.resize(count);
      qps.resize(count);
      for (size_t i = 0; i < count; ++i) {
        if (!body.ReadU64(frame_sizes[i]) || !body.Read(&key_flags[i], 1) ||
            !body.Read(&qps[i], 1)) {
          return Status::DataLoss("bad INDX box");
        }
      }
    } else if (std::memcmp(type, "MDAT", 4) == 0) {
      mdat = std::move(payload);
    } else if (std::memcmp(type, "TRAK", 4) == 0) {
      if (payload.size() < 4) return Status::DataLoss("bad TRAK box");
      MetadataTrack track;
      track.kind.assign(payload.begin(), payload.begin() + 4);
      track.payload.assign(payload.begin() + 4, payload.end());
      container.tracks.push_back(std::move(track));
    }
    // Unknown boxes are skipped for forward compatibility.
  }

  if (!seen_magic) return Status::InvalidArgument("missing VRMP magic box");
  if (!seen_prop) return Status::DataLoss("missing PROP box");
  if (frame_sizes.size() != container.video.frames.size()) {
    return Status::DataLoss("INDX entry count does not match PROP frame count");
  }

  size_t offset = 0;
  for (size_t i = 0; i < frame_sizes.size(); ++i) {
    if (offset + frame_sizes[i] > mdat.size()) {
      return Status::DataLoss("MDAT shorter than the frame index claims");
    }
    codec::EncodedFrame& frame = container.video.frames[i];
    frame.keyframe = key_flags[i] != 0;
    frame.qp = qps[i];
    frame.data.assign(mdat.begin() + offset, mdat.begin() + offset + frame_sizes[i]);
    offset += frame_sizes[i];
  }
  return container;
}

Status WriteContainerFile(const Container& container, const std::string& path) {
  std::vector<uint8_t> bytes = Mux(container);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Container> ReadContainerFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!file.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("read failed: " + path);
  }
  return Demux(bytes);
}

}  // namespace visualroad::video::container
