#ifndef VISUALROAD_VIDEO_CONTAINER_VRMP_H_
#define VISUALROAD_VIDEO_CONTAINER_VRMP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "video/codec/codec.h"

namespace visualroad::video::container {

/// A metadata track embedded in a VRMP container. Visual Road uses two
/// kinds: "WVTT" (a WebVTT caption document, Q6(b)) and "GTRU" (serialised
/// ground truth produced by the VCG for semantic validation).
struct MetadataTrack {
  std::string kind;  // Exactly four ASCII characters.
  std::vector<uint8_t> payload;
};

/// An in-memory VRMP container: one encoded video elementary stream plus any
/// number of metadata tracks. VRMP plays the role MP4 plays in the paper
/// (Section 5): it muxes the stream, carries a frame index for random
/// access, and embeds caption/metadata tracks.
struct Container {
  codec::EncodedVideo video;
  std::vector<MetadataTrack> tracks;

  /// Returns the first track of the given kind, or nullptr.
  const MetadataTrack* FindTrack(const std::string& kind) const;
};

/// Serialises a container to bytes. Layout: a "VRMP" magic/version box, a
/// "PROP" stream-properties box, an "INDX" frame index (sizes, key flags,
/// QPs), an "MDAT" box with concatenated frame payloads, and one "TRAK" box
/// per metadata track.
std::vector<uint8_t> Mux(const Container& container);

/// Parses bytes produced by Mux. Validates magic, version, and box sizes.
StatusOr<Container> Demux(const std::vector<uint8_t>& bytes);

/// Writes a muxed container to `path`.
Status WriteContainerFile(const Container& container, const std::string& path);

/// Reads and demuxes a container from `path`.
StatusOr<Container> ReadContainerFile(const std::string& path);

}  // namespace visualroad::video::container

#endif  // VISUALROAD_VIDEO_CONTAINER_VRMP_H_
