// BatchEngine: the Scanner-like comparison system.
//
// Architecture (see DESIGN.md): queries execute as a sequence of stages, and
// every stage eagerly materialises its full output before the next begins.
// Frames are dispatched to a worker pool one task per frame (kernel-dispatch
// overhead), inputs are always decoded in their entirety (no lazy temporal
// selection), and materialised tables are retained for the whole batch. When
// the retained set outgrows the memory budget the engine enters a pressure
// regime in which every stage round-trips its output through disk — the
// honest mechanism behind the paper's observation that Scanner "falls behind
// as the scale factor increases ... due to memory thrashing" (Section 6.2).
// The CNN path runs the detector at an enlarged input resolution, modelling
// the heavyweight Caffe execution path the paper calls out for Q2(c).
//
// Lines between "vr:<query>:begin/end" markers are counted by the Figure 7
// lines-of-code bench.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "systems/vdbms.h"
#include "video/codec/gop_cache.h"
#include "video/image_ops.h"
#include "vision/background.h"
#include "vision/overlay.h"
#include "vision/tiling.h"

namespace visualroad::systems {

namespace {

using queries::QueryId;
using queries::QueryInstance;
using video::Frame;
using video::Video;

class BatchEngine : public Vdbms {
 public:
  explicit BatchEngine(const EngineOptions& options)
      : options_(options),
        pool_(options.threads, "engine_stage"),
        gop_cache_(&detail::ResolveGopCache(options)) {
    detector_options_ = options.detector;
    detector_options_.input_size = 224;  // The heavyweight framework path.
    detector_ = std::make_unique<vision::MiniYolo>(detector_options_);
    model_fingerprint_ = queries::ModelFingerprint(detector_options_, "miniyolo");
  }

  const char* name() const override { return "BatchEngine"; }

  bool Supports(QueryId id) const override {
    (void)id;
    return true;  // General-purpose; Q4 can still fail at runtime on memory.
  }

  /// All mutable engine state is atomic (counters, retained-table
  /// accounting) or per-call (spill files, stage completion), so the VCD may
  /// fan batch instances out to this engine concurrently.
  bool ConcurrentSafe() const override { return true; }

  void Quiesce() override {
    retained_bytes_ = 0;
    gop_cache_->Clear();
  }

  EngineStats stats() const override {
    EngineStats stats;
    stats.frames_decoded = decode_counters_.frames_decoded.load() +
                           frames_decoded_extra_.load();
    stats.frames_encoded = frames_encoded_.load();
    stats.cache_hits = decode_counters_.hits.load();
    stats.cache_misses = decode_counters_.misses.load();
    stats.chunked_redecodes = chunked_redecodes_.load();
    stats.cnn_frames_full = cnn_frames_full_.load();
    return stats;
  }

  std::string Explain(const QueryInstance& instance,
                      const sim::Dataset& dataset) override {
    StatusOr<const sim::VideoAsset*> asset = detail::InputAsset(instance, dataset);
    if (!asset.ok()) return "";
    const video::codec::EncodedVideo& meta = (*asset)->container.video;
    queries::PlanContext context;
    context.meta.identity = video::codec::StreamIdentity(meta);
    context.meta.frame_count = meta.FrameCount();
    context.meta.width = meta.width;
    context.meta.height = meta.height;
    context.meta.fps = meta.fps;
    // Eager materialisation: this engine never trims the decode window.
    context.temporal_pushdown = false;
    context.cache = options_.semantic_cache;
    context.key = SemanticKeyFor(meta);
    if (instance.id == QueryId::kQ2c || instance.id == QueryId::kQ7) {
      context.stages = {"miniyolo224"};
    }
    return std::string(name()) + ": " +
           queries::ExplainPlan(queries::PlanQuery(instance, context));
  }

  StatusOr<QueryOutput> Execute(const QueryInstance& instance,
                                const sim::Dataset& dataset, OutputMode mode,
                                const std::string& output_dir,
                                EngineStats* call_stats = nullptr) override {
    trace::Span span(std::string("batch:") + queries::QueryName(instance.id));
    CallCounters call;
    StatusOr<QueryOutput> result =
        ExecuteImpl(instance, dataset, mode, output_dir, call);
    Fold(call);
    mirror_.Publish(stats());
    if (call_stats != nullptr) *call_stats = AsStats(call);
    return result;
  }

 private:
  /// Counters for exactly one Execute() call, threaded through every stage
  /// and folded into the cumulative atomics afterwards. The decode counters
  /// are the atomic GopCacheCounters because the codec may update them from
  /// its own pool threads. Retained-table accounting (retained_bytes_) stays
  /// on the engine: it is cross-call state by design.
  struct CallCounters {
    video::codec::GopCacheCounters decode;
    int64_t frames_decoded_extra = 0;
    int64_t frames_encoded = 0;
    int64_t chunked_redecodes = 0;
    int64_t cnn_frames_full = 0;
  };

  void Fold(const CallCounters& call) {
    decode_counters_.hits += call.decode.hits.load();
    decode_counters_.misses += call.decode.misses.load();
    decode_counters_.frames_decoded += call.decode.frames_decoded.load();
    frames_decoded_extra_ += call.frames_decoded_extra;
    frames_encoded_ += call.frames_encoded;
    chunked_redecodes_ += call.chunked_redecodes;
    cnn_frames_full_ += call.cnn_frames_full;
  }

  /// The per-call window mapped the same way stats() maps the cumulative
  /// counters.
  static EngineStats AsStats(const CallCounters& call) {
    EngineStats stats;
    stats.frames_decoded =
        call.decode.frames_decoded.load() + call.frames_decoded_extra;
    stats.frames_encoded = call.frames_encoded;
    stats.cache_hits = call.decode.hits.load();
    stats.cache_misses = call.decode.misses.load();
    stats.chunked_redecodes = call.chunked_redecodes;
    stats.cnn_frames_full = call.cnn_frames_full;
    return stats;
  }

  StatusOr<QueryOutput> ExecuteImpl(const QueryInstance& instance,
                                    const sim::Dataset& dataset, OutputMode mode,
                                    const std::string& output_dir,
                                    CallCounters& call);
  /// Full eager decode of an input through the shared GOP cache;
  /// retained-table accounting drives the memory-pressure regime either way
  /// (the materialised table is this engine's copy, hit or miss). The
  /// bitstream comes from the storage service when one is configured.
  StatusOr<Video> MaterializeAll(const sim::VideoAsset& asset,
                                 CallCounters& call) {
    TRACE_SPAN("materialize_input");
    VR_ASSIGN_OR_RETURN(std::shared_ptr<const video::codec::EncodedVideo> encoded,
                        detail::ResolveInput(asset, options_));
    VR_ASSIGN_OR_RETURN(
        Video decoded,
        video::codec::CachedDecode(*encoded, *gop_cache_, &call.decode));
    retained_bytes_ += static_cast<int64_t>(decoded.FrameCount()) *
                       detail::FrameBytes(decoded.Width(), decoded.Height());
    return decoded;
  }

  bool UnderPressure() const { return retained_bytes_ > options_.memory_budget_bytes; }

  /// In the pressure regime, every stage's output is written to disk and
  /// read back (Scanner-style disk-backed tables). Each call gets its own
  /// file so concurrent instances cannot clobber one another's spills.
  Status MaybeSpill(Video& video, CallCounters& call) {
    if (!UnderPressure() || video.frames.empty()) return Status::Ok();
    TRACE_SPAN("spill_roundtrip");
    std::string path =
        (std::filesystem::temp_directory_path() /
         ("vr_batch_spill_" + std::to_string(spill_serial_++) + ".tmp"))
            .string();
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) return Status::IoError("cannot open spill file");
      for (const Frame& frame : video.frames) {
        out.write(reinterpret_cast<const char*>(frame.y_plane().data()),
                  static_cast<std::streamsize>(frame.y_plane().size()));
        out.write(reinterpret_cast<const char*>(frame.u_plane().data()),
                  static_cast<std::streamsize>(frame.u_plane().size()));
        out.write(reinterpret_cast<const char*>(frame.v_plane().data()),
                  static_cast<std::streamsize>(frame.v_plane().size()));
      }
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot re-open spill file");
    for (Frame& frame : video.frames) {
      in.read(reinterpret_cast<char*>(frame.y_plane().data()),
              static_cast<std::streamsize>(frame.y_plane().size()));
      in.read(reinterpret_cast<char*>(frame.u_plane().data()),
              static_cast<std::streamsize>(frame.u_plane().size()));
      in.read(reinterpret_cast<char*>(frame.v_plane().data()),
              static_cast<std::streamsize>(frame.v_plane().size()));
    }
    in.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);  // Best-effort cleanup.
    ++call.chunked_redecodes;
    return Status::Ok();
  }

  /// One materialised stage: applies `fn` to every frame via the worker
  /// pool. Grain 1 dispatches one task per frame — the kernel-dispatch
  /// overhead this architecture models — while the status-returning executor
  /// propagates the first (lowest-frame) failure and keeps per-call
  /// completion state, so concurrent instances can share the pool.
  template <typename Fn>
  StatusOr<Video> Stage(const Video& input, CallCounters& call, Fn&& fn) {
    TRACE_SPAN("batch_stage");
    Video output;
    output.fps = input.fps;
    output.frames.resize(input.frames.size());
    VR_RETURN_IF_ERROR(pool_.ParallelForStatus(
        static_cast<int>(input.frames.size()),
        [&](int i) {
          StatusOr<Frame> result = fn(input.frames[static_cast<size_t>(i)], i);
          if (!result.ok()) return result.status();
          output.frames[static_cast<size_t>(i)] = std::move(result).value();
          return Status::Ok();
        },
        /*grain=*/1));
    retained_bytes_ += static_cast<int64_t>(output.FrameCount()) *
                       detail::FrameBytes(output.Width(), output.Height());
    VR_RETURN_IF_ERROR(MaybeSpill(output, call));
    return output;
  }

  /// Stage running the detector over every frame. Produces detections still
  /// unfiltered by object class — the representation the semantic cache
  /// stores, shared by Q2(c) and Q7 across classes.
  StatusOr<std::vector<std::vector<vision::Detection>>> DetectStage(
      const Video& input, const std::vector<sim::FrameGroundTruth>& truth,
      CallCounters& call) {
    TRACE_SPAN("detect_stage");
    std::vector<std::vector<vision::Detection>> detections(input.frames.size());
    static const sim::FrameGroundTruth kEmpty;
    VR_RETURN_IF_ERROR(pool_.ParallelForStatus(
        static_cast<int>(input.frames.size()),
        [&](int i) {
          const sim::FrameGroundTruth& gt =
              static_cast<size_t>(i) < truth.size() ? truth[static_cast<size_t>(i)]
                                                    : kEmpty;
          detections[static_cast<size_t>(i)] =
              detector_->Detect(input.frames[static_cast<size_t>(i)], gt, i);
          return Status::Ok();
        },
        /*grain=*/1));
    call.cnn_frames_full += input.FrameCount();
    retained_bytes_ += static_cast<int64_t>(input.FrameCount()) *
                       detail::FrameBytes(input.Width(), input.Height());
    return detections;
  }

  queries::SemanticKey SemanticKeyFor(
      const video::codec::EncodedVideo& encoded) const {
    queries::SemanticKey key;
    key.stream = video::codec::StreamIdentity(encoded);
    key.model = model_fingerprint_;
    key.threshold = 0.0;  // Raw detector output is what gets materialized.
    return key;
  }

  /// Whole-stream unfiltered detections plus render geometry, resolved
  /// through the semantic cache when one is configured. With a warm cache
  /// no input table is materialised (and for Q2(c) nothing is decoded at
  /// all); `materialized` is the input table the caller already holds, so
  /// a query that materialises anyway (Q7) feeds the compute path directly.
  struct DetectionSet {
    int width = 0;
    int height = 0;
    double fps = 0.0;
    std::vector<std::vector<vision::Detection>> detections;
  };
  StatusOr<DetectionSet> StreamDetections(const sim::VideoAsset& asset,
                                          const Video* materialized,
                                          CallCounters& call) {
    VR_ASSIGN_OR_RETURN(std::shared_ptr<const video::codec::EncodedVideo> encoded,
                        detail::ResolveInput(asset, options_));
    DetectionSet set;
    set.width = encoded->width;
    set.height = encoded->height;
    set.fps = encoded->fps;
    auto compute_direct = [&]() -> StatusOr<std::vector<std::vector<vision::Detection>>> {
      if (materialized != nullptr) {
        return DetectStage(*materialized, asset.ground_truth, call);
      }
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(asset, call));
      return DetectStage(input, asset.ground_truth, call);
    };
    if (options_.semantic_cache == nullptr) {
      VR_ASSIGN_OR_RETURN(set.detections, compute_direct());
      return set;
    }
    queries::SemanticKey key = SemanticKeyFor(*encoded);
    queries::FrameRange range{0, encoded->FrameCount()};
    VR_ASSIGN_OR_RETURN(
        std::shared_ptr<const queries::SemanticEntry> entry,
        options_.semantic_cache->GetOrCompute(
            key, range, [&]() -> StatusOr<queries::SemanticEntry> {
              queries::SemanticEntry fresh;
              fresh.key = key;
              fresh.range = range;
              fresh.width = encoded->width;
              fresh.height = encoded->height;
              fresh.fps = encoded->fps;
              VR_ASSIGN_OR_RETURN(fresh.detections, compute_direct());
              fresh.RecomputeBytes();
              return fresh;
            }));
    set.detections = queries::SemanticCache::Slice(*entry, range);
    return set;
  }

  /// FinishVideoResult with the encoded-frame count folded into the atomic
  /// counter (the shared helper writes through a plain pointer).
  Status Finish(const Video& result, const QueryInstance& instance,
                OutputMode mode, const std::string& output_dir,
                QueryOutput& output, CallCounters& call) {
    int64_t encoded = 0;
    Status status = detail::FinishVideoResult(result, instance, options_, mode,
                                              output_dir, name(), output, &encoded);
    call.frames_encoded += encoded;
    return status;
  }

  EngineOptions options_;
  ThreadPool pool_;
  vision::DetectorOptions detector_options_;
  std::string model_fingerprint_;
  std::unique_ptr<vision::MiniYolo> detector_;
  video::codec::GopCache* gop_cache_;
  video::codec::GopCacheCounters decode_counters_;
  std::atomic<int64_t> frames_decoded_extra_{0};  // Stitch inputs (Q9/Q10).
  std::atomic<int64_t> frames_encoded_{0};
  std::atomic<int64_t> chunked_redecodes_{0};
  std::atomic<int64_t> cnn_frames_full_{0};
  std::atomic<int64_t> retained_bytes_{0};
  std::atomic<int64_t> spill_serial_{0};
  detail::EngineMetricsMirror mirror_{"batch"};
};

StatusOr<QueryOutput> BatchEngine::ExecuteImpl(const QueryInstance& instance,
                                               const sim::Dataset& dataset,
                                               OutputMode mode,
                                               const std::string& output_dir,
                                               CallCounters& call) {
  QueryOutput output;
  queries::ReferenceContext context;
  context.dataset = &dataset;
  context.detector_options = detector_options_;
  context.plate_match_threshold = options_.plate_match_threshold;

  switch (instance.id) {
    case QueryId::kQ1: {
      // vr:Q1:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      int first = std::clamp(static_cast<int>(instance.q1_t1 * input.fps), 0,
                             input.FrameCount() - 1);
      int last = std::clamp(static_cast<int>(std::ceil(instance.q1_t2 * input.fps)),
                            first + 1, input.FrameCount());
      Video trimmed;
      trimmed.fps = input.fps;
      trimmed.frames.assign(input.frames.begin() + first,
                            input.frames.begin() + last);
      VR_ASSIGN_OR_RETURN(Video cropped, Stage(trimmed, call, [&](const Frame& f, int) {
                            return video::Crop(f, instance.q1_rect);
                          }));
      VR_RETURN_IF_ERROR(Finish(cropped, instance, mode, output_dir, output, call));
      // vr:Q1:end
      return output;
    }
    case QueryId::kQ2a: {
      // vr:Q2(a):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      VR_ASSIGN_OR_RETURN(Video gray, Stage(input, call, [](const Frame& f, int) {
                            return StatusOr<Frame>(video::Grayscale(f));
                          }));
      VR_RETURN_IF_ERROR(Finish(gray, instance, mode, output_dir, output, call));
      // vr:Q2(a):end
      return output;
    }
    case QueryId::kQ2b: {
      // vr:Q2(b):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      VR_ASSIGN_OR_RETURN(Video blurred, Stage(input, call, [&](const Frame& f, int) {
                            return video::GaussianBlur(f, instance.q2b_d);
                          }));
      VR_RETURN_IF_ERROR(Finish(blurred, instance, mode, output_dir, output, call));
      // vr:Q2(b):end
      return output;
    }
    case QueryId::kQ2c: {
      // vr:Q2(c):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      // With a warm semantic cache the input table is never materialised and
      // the decoder never runs; the box video renders from cached detections.
      VR_ASSIGN_OR_RETURN(DetectionSet set,
                          StreamDetections(*asset, /*materialized=*/nullptr, call));
      queries::ReferenceResult result = queries::RenderBoxesFromDetections(
          set.width, set.height, set.fps, set.detections, instance.object_class);
      output.detections = std::move(result.detections);
      VR_RETURN_IF_ERROR(Finish(result.video, instance, mode, output_dir, output, call));
      // vr:Q2(c):end
      return output;
    }
    case QueryId::kQ2d: {
      // vr:Q2(d):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      // Materialised window sums: the batch architecture's natural (and
      // fast) mean-filter implementation.
      VR_ASSIGN_OR_RETURN(Video masked,
                          vision::MaskBackgroundRunning(input, instance.q2d_m,
                                                        instance.q2d_epsilon));
      VR_RETURN_IF_ERROR(MaybeSpill(masked, call));
      VR_RETURN_IF_ERROR(Finish(masked, instance, mode, output_dir, output, call));
      // vr:Q2(d):end
      return output;
    }
    case QueryId::kQ3: {
      // vr:Q3:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      VR_ASSIGN_OR_RETURN(Video tiled,
                          vision::TiledReencode(input, instance.q3_dx, instance.q3_dy,
                                                instance.q3_bitrates,
                                                options_.output_profile));
      VR_RETURN_IF_ERROR(MaybeSpill(tiled, call));
      VR_RETURN_IF_ERROR(Finish(tiled, instance, mode, output_dir, output, call));
      // vr:Q3:end
      return output;
    }
    case QueryId::kQ4: {
      // vr:Q4:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      const video::codec::EncodedVideo& encoded = asset->container.video;
      // Eager materialisation sizes the entire upsampled table up front, and
      // tables are retained for the whole batch, so successive Q4 instances
      // push the engine over its ceiling — the paper's Scanner deployment
      // "quickly allocates all available memory and thereafter fails to make
      // progress" on this query.
      int64_t output_bytes =
          static_cast<int64_t>(encoded.FrameCount()) *
          detail::FrameBytes(encoded.width * instance.q45_alpha,
                             encoded.height * instance.q45_beta);
      if (retained_bytes_ + output_bytes > options_.memory_fail_bytes) {
        retained_bytes_ += output_bytes;  // The doomed allocation still counts.
        return Status::ResourceExhausted(
            "Q4 upsample table exceeds the engine memory ceiling");
      }
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      VR_ASSIGN_OR_RETURN(Video up, Stage(input, call, [&](const Frame& f, int) {
                            return video::BilinearResize(
                                f, f.width() * instance.q45_alpha,
                                f.height() * instance.q45_beta);
                          }));
      VR_RETURN_IF_ERROR(Finish(up, instance, mode, output_dir, output, call));
      // vr:Q4:end
      return output;
    }
    case QueryId::kQ5: {
      // vr:Q5:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      VR_ASSIGN_OR_RETURN(Video down, Stage(input, call, [&](const Frame& f, int) {
                            return video::Downsample(
                                f, std::max(1, f.width() / instance.q45_alpha),
                                std::max(1, f.height() / instance.q45_beta));
                          }));
      VR_RETURN_IF_ERROR(Finish(down, instance, mode, output_dir, output, call));
      // vr:Q5:end
      return output;
    }
    case QueryId::kQ6a: {
      // vr:Q6(a):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      // Consume the VCD's serialized box-sequence input format: parse the
      // class-id/coordinate records and rasterise a box table to join.
      const video::container::MetadataTrack* box_track =
          asset->container.FindTrack("BOXS");
      if (box_track == nullptr) {
        return Status::FailedPrecondition("input has no serialized box stream");
      }
      VR_ASSIGN_OR_RETURN(std::vector<std::vector<vision::Detection>> boxes,
                          vision::ParseDetections(box_track->payload));
      Video box_table;
      box_table.fps = input.fps;
      for (size_t f = 0; f < boxes.size(); ++f) {
        box_table.frames.push_back(vision::RenderDetectionFrame(
            input.Width(), input.Height(), boxes[f]));
      }
      VR_RETURN_IF_ERROR(MaybeSpill(box_table, call));
      VR_ASSIGN_OR_RETURN(Video merged,
                          queries::UnionBoxesQuery(input, box_table));
      VR_RETURN_IF_ERROR(MaybeSpill(merged, call));
      output.detections = std::move(boxes);
      VR_RETURN_IF_ERROR(Finish(merged, instance, mode, output_dir, output, call));
      // vr:Q6(a):end
      return output;
    }
    case QueryId::kQ6b: {
      // vr:Q6(b):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      const video::container::MetadataTrack* track =
          asset->container.FindTrack("WVTT");
      if (track == nullptr) {
        return Status::FailedPrecondition("input has no caption track");
      }
      VR_ASSIGN_OR_RETURN(video::WebVttDocument captions,
                          video::ParseWebVtt(std::string(track->payload.begin(),
                                                         track->payload.end())));
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      // Batch trick: caption overlays are pre-rendered once per distinct
      // active-cue set and reused across every frame that set covers.
      std::vector<Frame> overlay_cache;
      std::vector<int> overlay_index(input.frames.size(), -1);
      std::vector<const video::WebVttCue*> last_active;
      for (int f = 0; f < input.FrameCount(); ++f) {
        double seconds = f / input.fps;
        std::vector<const video::WebVttCue*> active = captions.ActiveAt(seconds);
        if (overlay_cache.empty() || active != last_active) {
          overlay_cache.push_back(vision::RenderCaptionFrame(
              input.Width(), input.Height(), captions, seconds));
          last_active = std::move(active);
        }
        overlay_index[static_cast<size_t>(f)] =
            static_cast<int>(overlay_cache.size()) - 1;
      }
      VR_ASSIGN_OR_RETURN(Video merged, Stage(input, call, [&](const Frame& f, int i) {
        const Frame& overlay =
            overlay_cache[static_cast<size_t>(overlay_index[static_cast<size_t>(i)])];
        Frame merged_frame(f.width(), f.height());
        for (int y = 0; y < f.height(); ++y) {
          for (int x = 0; x < f.width(); ++x) {
            video::Yuv pixel = video::OmegaCoalesce(
                {f.Y(x, y), f.U(x, y), f.V(x, y)},
                {overlay.Y(x, y), overlay.U(x, y), overlay.V(x, y)});
            merged_frame.SetPixel(x, y, pixel.y, pixel.u, pixel.v);
          }
        }
        return StatusOr<Frame>(std::move(merged_frame));
      }));
      VR_RETURN_IF_ERROR(Finish(merged, instance, mode, output_dir, output, call));
      // vr:Q6(b):end
      return output;
    }
    case QueryId::kQ7: {
      // vr:Q7:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, MaterializeAll(*asset, call));
      // Union/mask are pixel-level stages, so Q7 always materialises the
      // input; a warm semantic cache still skips the CNN stage.
      VR_ASSIGN_OR_RETURN(DetectionSet set, StreamDetections(*asset, &input, call));
      queries::ReferenceResult boxes = queries::RenderBoxesFromDetections(
          set.width, set.height, set.fps, set.detections, instance.object_class);
      VR_ASSIGN_OR_RETURN(Video merged,
                          queries::UnionBoxesQuery(input, boxes.video));
      VR_RETURN_IF_ERROR(MaybeSpill(merged, call));
      VR_ASSIGN_OR_RETURN(Video masked,
                          vision::MaskBackgroundRunning(merged, instance.q2d_m,
                                                        instance.q2d_epsilon));
      output.detections = std::move(boxes.detections);
      VR_RETURN_IF_ERROR(Finish(masked, instance, mode, output_dir, output, call));
      // vr:Q7:end
      return output;
    }
    case QueryId::kQ8: {
      // vr:Q8:begin
      VR_ASSIGN_OR_RETURN(Video tracking,
                          queries::TrackingQuery(context, instance.q8_plate,
                                                 nullptr));
      call.cnn_frames_full += tracking.FrameCount();
      VR_RETURN_IF_ERROR(Finish(tracking, instance, mode, output_dir, output, call));
      // vr:Q8:end
      return output;
    }
    case QueryId::kQ9: {
      // vr:Q9:begin
      VR_ASSIGN_OR_RETURN(Video stitched,
                          queries::StitchQuery(context, instance.pano_group));
      call.frames_decoded_extra += 4 * stitched.FrameCount();
      VR_RETURN_IF_ERROR(MaybeSpill(stitched, call));
      VR_RETURN_IF_ERROR(Finish(stitched, instance, mode, output_dir, output, call));
      // vr:Q9:end
      return output;
    }
    case QueryId::kQ10: {
      // vr:Q10:begin
      VR_ASSIGN_OR_RETURN(Video stitched,
                          queries::StitchQuery(context, instance.pano_group));
      call.frames_decoded_extra += 4 * stitched.FrameCount();
      VR_ASSIGN_OR_RETURN(
          Video result,
          queries::TileStreamQuery(stitched, instance.q10_bitrates,
                                   instance.q10_client_width,
                                   instance.q10_client_height,
                                   options_.output_profile));
      VR_RETURN_IF_ERROR(Finish(result, instance, mode, output_dir, output, call));
      // vr:Q10:end
      return output;
    }
  }
  return Status::Unimplemented("unknown query");
}

}  // namespace

std::unique_ptr<Vdbms> MakeBatchEngine(const EngineOptions& options) {
  return std::make_unique<BatchEngine>(options);
}

}  // namespace visualroad::systems
