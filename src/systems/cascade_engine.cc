// CascadeEngine: the NoScope-like comparison system.
//
// Architecture (see DESIGN.md): a highly specialised engine supporting only
// the two operations its design targets — temporal selection (Q1) and CNN
// object detection (Q2(c)). Its Q2(c) path is a model cascade: a cheap
// frame-difference detector skips inference on frames nearly identical to
// the last processed one, a small CNN handles most of the rest, and the full
// reference network runs only on frames whose cheap-model confidence is
// ambiguous. That is why it dominates Figure 5/6 on Q2(c) while supporting
// nothing else.
//
// Lines between "vr:<query>:begin/end" markers are counted by the Figure 7
// lines-of-code bench.

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "systems/vdbms.h"
#include "video/codec/gop_cache.h"
#include "video/image_ops.h"
#include "video/metrics.h"
#include "vision/overlay.h"

namespace visualroad::systems {

namespace {

using queries::QueryId;
using queries::QueryInstance;
using video::Frame;
using video::Video;

class CascadeEngine : public Vdbms {
 public:
  explicit CascadeEngine(const EngineOptions& options)
      : options_(options), gop_cache_(&detail::ResolveGopCache(options)) {
    vision::DetectorOptions cheap = options.detector;
    cheap.input_size = 48;  // The cascade's small model.
    cheap_detector_ = std::make_unique<vision::MiniYolo>(cheap);
    vision::DetectorOptions full = options.detector;
    full.input_size = 96;
    full_detector_ = std::make_unique<vision::MiniYolo>(full);
    // The cascade's output depends on the whole model stack, not just the
    // anchor network, so the fingerprint carries a stack variant tag: its
    // entries never answer probes from the single-detector engines.
    model_fingerprint_ = queries::ModelFingerprint(full, "cascade48+96");
  }

  const char* name() const override { return "CascadeEngine"; }

  bool Supports(QueryId id) const override {
    return id == QueryId::kQ1 || id == QueryId::kQ2c;
  }

  // All cascade state (difference detector, last detections) is per-call;
  // decodes go through the thread-safe shared GOP cache and the counters are
  // atomic, so concurrent Execute() calls are safe.
  bool ConcurrentSafe() const override { return true; }

  void Quiesce() override {
    gop_cache_->Clear();
    tracker_.Clear();
  }

  EngineStats stats() const override {
    EngineStats stats;
    stats.frames_decoded = decode_counters_.frames_decoded.load();
    stats.frames_encoded = frames_encoded_.load();
    stats.cache_hits = decode_counters_.hits.load();
    stats.cache_misses = decode_counters_.misses.load();
    stats.cnn_frames_full = cnn_frames_full_.load();
    stats.cnn_frames_cheap = cnn_frames_cheap_.load();
    stats.cnn_frames_skipped = cnn_frames_skipped_.load();
    return stats;
  }

  std::string Explain(const QueryInstance& instance,
                      const sim::Dataset& dataset) override {
    if (!Supports(instance.id)) return "";
    StatusOr<const sim::VideoAsset*> asset = detail::InputAsset(instance, dataset);
    if (!asset.ok()) return "";
    queries::QueryPlan plan =
        PlanFor(instance, (*asset)->container.video);
    return std::string(name()) + ": " + queries::ExplainPlan(plan);
  }

  StatusOr<QueryOutput> Execute(const QueryInstance& instance,
                                const sim::Dataset& dataset, OutputMode mode,
                                const std::string& output_dir,
                                EngineStats* call_stats = nullptr) override {
    trace::Span span(std::string("cascade:") + queries::QueryName(instance.id));
    CallCounters call;
    StatusOr<QueryOutput> result =
        ExecuteImpl(instance, dataset, mode, output_dir, call);
    Fold(call);
    mirror_.Publish(stats());
    if (call_stats != nullptr) *call_stats = AsStats(call);
    return result;
  }

 private:
  /// Counters for exactly one Execute() call, threaded through every stage
  /// and folded into the cumulative atomics afterwards. The decode counters
  /// are the atomic GopCacheCounters because the codec may update them from
  /// its own pool threads.
  struct CallCounters {
    video::codec::GopCacheCounters decode;
    int64_t frames_encoded = 0;
    int64_t cnn_frames_full = 0;
    int64_t cnn_frames_cheap = 0;
    int64_t cnn_frames_skipped = 0;
  };

  void Fold(const CallCounters& call) {
    decode_counters_.hits += call.decode.hits.load();
    decode_counters_.misses += call.decode.misses.load();
    decode_counters_.frames_decoded += call.decode.frames_decoded.load();
    frames_encoded_ += call.frames_encoded;
    cnn_frames_full_ += call.cnn_frames_full;
    cnn_frames_cheap_ += call.cnn_frames_cheap;
    cnn_frames_skipped_ += call.cnn_frames_skipped;
  }

  /// The per-call window mapped the same way stats() maps the cumulative
  /// counters.
  static EngineStats AsStats(const CallCounters& call) {
    EngineStats stats;
    stats.frames_decoded = call.decode.frames_decoded.load();
    stats.frames_encoded = call.frames_encoded;
    stats.cache_hits = call.decode.hits.load();
    stats.cache_misses = call.decode.misses.load();
    stats.cnn_frames_full = call.cnn_frames_full;
    stats.cnn_frames_cheap = call.cnn_frames_cheap;
    stats.cnn_frames_skipped = call.cnn_frames_skipped;
    return stats;
  }

  StatusOr<QueryOutput> ExecuteImpl(const QueryInstance& instance,
                                    const sim::Dataset& dataset, OutputMode mode,
                                    const std::string& output_dir,
                                    CallCounters& call);

  Status Finish(const Video& result, const QueryInstance& instance,
                OutputMode mode, const std::string& output_dir,
                QueryOutput& output, CallCounters& call) {
    int64_t encoded = 0;
    Status status = detail::FinishVideoResult(result, instance, options_, mode,
                                              output_dir, name(), output, &encoded);
    call.frames_encoded += encoded;
    return status;
  }

  queries::SemanticKey SemanticKeyFor(
      const video::codec::EncodedVideo& encoded) const {
    queries::SemanticKey key;
    key.stream = video::codec::StreamIdentity(encoded);
    key.model = model_fingerprint_;
    key.threshold = 0.0;  // Raw cascade output is what gets materialized.
    return key;
  }

  /// The cascade's plan: semantic-cache temperature plus the measured
  /// selectivity/cost of the three stages. The planner may disable a
  /// prefilter whose observed selectivity cannot pay for itself — e.g. the
  /// difference detector on busy streets where no frame ever repeats, or
  /// the cheap model when nearly every frame escalates anyway.
  queries::QueryPlan PlanFor(const QueryInstance& instance,
                             const video::codec::EncodedVideo& meta) const {
    queries::PlanContext context;
    context.meta.identity = video::codec::StreamIdentity(meta);
    context.meta.frame_count = meta.FrameCount();
    context.meta.width = meta.width;
    context.meta.height = meta.height;
    context.meta.fps = meta.fps;
    context.cache = options_.semantic_cache;
    context.key = SemanticKeyFor(meta);
    context.tracker = &tracker_;
    if (instance.id == QueryId::kQ2c) {
      context.stages = {"cascade.diff", "cascade.cheap", "cascade.full"};
    }
    return queries::PlanQuery(instance, context);
  }

  /// The model cascade over a decoded input, producing per-frame detections
  /// unfiltered by object class. Each stage's attempts, resolutions, and
  /// wall time feed the selectivity tracker, which is what the planner's
  /// stage ordering/disabling decisions are measured against.
  std::vector<std::vector<vision::Detection>> CascadeDetect(
      const Video& input, const std::vector<sim::FrameGroundTruth>& truth,
      bool diff_enabled, bool cheap_enabled, CallCounters& call) {
    std::vector<std::vector<vision::Detection>> result;
    result.reserve(input.frames.size());
    std::vector<vision::Detection> last_detections;
    const Frame* last_processed = nullptr;
    static const sim::FrameGroundTruth kEmpty;
    int64_t diff_attempts = 0, diff_resolved = 0;
    int64_t cheap_attempts = 0, cheap_resolved = 0;
    int64_t full_attempts = 0;
    double diff_seconds = 0.0, cheap_seconds = 0.0, full_seconds = 0.0;

    trace::Span detect_span("cascade_detect");
    for (int f = 0; f < input.FrameCount(); ++f) {
      const Frame& frame = input.frames[static_cast<size_t>(f)];
      const sim::FrameGroundTruth& gt =
          static_cast<size_t>(f) < truth.size() ? truth[static_cast<size_t>(f)]
                                                : kEmpty;

      // Stage 1: difference detector. A frame close to the last processed
      // one reuses its detections outright.
      bool reuse = false;
      if (diff_enabled && last_processed != nullptr) {
        Stopwatch diff_watch;
        StatusOr<double> mse = video::LumaMse(frame, *last_processed);
        diff_seconds += diff_watch.ElapsedSeconds();
        ++diff_attempts;
        reuse = mse.ok() && *mse < 2.0;
      }
      std::vector<vision::Detection> detections;
      if (reuse) {
        ++diff_resolved;
        detections = last_detections;
        ++call.cnn_frames_skipped;
      } else {
        // Stage 2: the cheap model. Ambiguous confidence escalates to the
        // full model (stage 3); with the cheap stage planned out, every
        // frame goes straight to the full model.
        bool ambiguous = !cheap_enabled;
        if (cheap_enabled) {
          Stopwatch cheap_watch;
          detections = cheap_detector_->Detect(frame, gt, f);
          cheap_seconds += cheap_watch.ElapsedSeconds();
          ++cheap_attempts;
          ++call.cnn_frames_cheap;
          for (const vision::Detection& d : detections) {
            if (d.score > 0.35 && d.score < 0.75) ambiguous = true;
          }
          if (!ambiguous) ++cheap_resolved;
        }
        if (ambiguous) {
          Stopwatch full_watch;
          detections = full_detector_->Detect(frame, gt, f);
          full_seconds += full_watch.ElapsedSeconds();
          ++full_attempts;
          ++call.cnn_frames_full;
        }
        last_processed = &frame;
        last_detections = detections;
      }
      result.push_back(std::move(detections));
    }
    tracker_.Record("cascade.diff", diff_attempts, diff_resolved, diff_seconds);
    tracker_.Record("cascade.cheap", cheap_attempts, cheap_resolved,
                    cheap_seconds);
    tracker_.Record("cascade.full", full_attempts, full_attempts, full_seconds);
    return result;
  }

  EngineOptions options_;
  std::string model_fingerprint_;
  queries::SelectivityTracker tracker_;
  std::unique_ptr<vision::MiniYolo> cheap_detector_;
  std::unique_ptr<vision::MiniYolo> full_detector_;
  video::codec::GopCache* gop_cache_;
  video::codec::GopCacheCounters decode_counters_;
  std::atomic<int64_t> frames_encoded_{0};
  std::atomic<int64_t> cnn_frames_full_{0};
  std::atomic<int64_t> cnn_frames_cheap_{0};
  std::atomic<int64_t> cnn_frames_skipped_{0};
  detail::EngineMetricsMirror mirror_{"cascade"};
};

StatusOr<QueryOutput> CascadeEngine::ExecuteImpl(const QueryInstance& instance,
                                                 const sim::Dataset& dataset,
                                                 OutputMode mode,
                                                 const std::string& output_dir,
                                                 CallCounters& call) {
  QueryOutput output;
  switch (instance.id) {
    case QueryId::kQ1: {
      // vr:Q1:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      const video::codec::EncodedVideo& meta = asset->container.video;
      int first = std::clamp(static_cast<int>(instance.q1_t1 * meta.fps), 0,
                             meta.FrameCount() - 1);
      int last = std::clamp(static_cast<int>(std::ceil(instance.q1_t2 * meta.fps)),
                            first + 1, meta.FrameCount());
      VR_ASSIGN_OR_RETURN(
          detail::ResolvedRange input,
          detail::ResolveInputRange(*asset, options_, first, last - first));
      VR_ASSIGN_OR_RETURN(Video range,
                          video::codec::CachedDecodeRange(
                              *input.video, first - input.first_frame,
                              last - first, *gop_cache_, &call.decode));
      Video cropped;
      cropped.fps = range.fps;
      {
        TRACE_SPAN("cascade_crop");
        for (const Frame& frame : range.frames) {
          VR_ASSIGN_OR_RETURN(Frame c, video::Crop(frame, instance.q1_rect));
          cropped.frames.push_back(std::move(c));
        }
      }
      VR_RETURN_IF_ERROR(
          Finish(cropped, instance, mode, output_dir, output, call));
      // vr:Q1:end
      return output;
    }
    case QueryId::kQ2c: {
      // vr:Q2(c):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(
          std::shared_ptr<const video::codec::EncodedVideo> encoded,
          detail::ResolveInput(*asset, options_));

      // Plan the cascade: semantic-cache temperature decides whether any
      // decoding happens at all, and measured stage selectivities decide
      // which prefilters are worth running.
      queries::QueryPlan plan = PlanFor(instance, *encoded);
      bool diff_enabled = true;
      bool cheap_enabled = true;
      for (const queries::PlanStage& stage : plan.stages) {
        if (stage.name == "cascade.diff") diff_enabled = stage.enabled;
        if (stage.name == "cascade.cheap") cheap_enabled = stage.enabled;
      }

      queries::FrameRange range{0, encoded->FrameCount()};
      std::vector<std::vector<vision::Detection>> detections;
      auto compute_direct =
          [&]() -> StatusOr<std::vector<std::vector<vision::Detection>>> {
        VR_ASSIGN_OR_RETURN(Video input,
                            video::codec::CachedDecode(*encoded, *gop_cache_,
                                                       &call.decode));
        return CascadeDetect(input, asset->ground_truth, diff_enabled,
                             cheap_enabled, call);
      };
      if (options_.semantic_cache != nullptr) {
        queries::SemanticKey key = SemanticKeyFor(*encoded);
        VR_ASSIGN_OR_RETURN(
            std::shared_ptr<const queries::SemanticEntry> entry,
            options_.semantic_cache->GetOrCompute(
                key, range, [&]() -> StatusOr<queries::SemanticEntry> {
                  queries::SemanticEntry fresh;
                  fresh.key = key;
                  fresh.range = range;
                  fresh.width = encoded->width;
                  fresh.height = encoded->height;
                  fresh.fps = encoded->fps;
                  VR_ASSIGN_OR_RETURN(fresh.detections, compute_direct());
                  fresh.RecomputeBytes();
                  return fresh;
                }));
        detections = queries::SemanticCache::Slice(*entry, range);
      } else {
        VR_ASSIGN_OR_RETURN(detections, compute_direct());
      }

      queries::ReferenceResult result = queries::RenderBoxesFromDetections(
          encoded->width, encoded->height, encoded->fps, detections,
          instance.object_class);
      output.detections = std::move(result.detections);
      VR_RETURN_IF_ERROR(
          Finish(result.video, instance, mode, output_dir, output, call));
      // vr:Q2(c):end
      return output;
    }
    default:
      return Status::Unimplemented(
          std::string("CascadeEngine does not support ") +
          queries::QueryName(instance.id));
  }
}

}  // namespace

std::unique_ptr<Vdbms> MakeCascadeEngine(const EngineOptions& options) {
  return std::make_unique<CascadeEngine>(options);
}

}  // namespace visualroad::systems
