#include "systems/video_source.h"

#include <algorithm>
#include <thread>

#include "common/metrics.h"
#include "storage/vss.h"

namespace visualroad::systems {

VideoSource::VideoSource(const video::codec::EncodedVideo* stream, bool offline,
                         double rate_multiplier)
    : stream_(stream), offline_(offline), rate_multiplier_(rate_multiplier) {}

VideoSource VideoSource::Offline(const video::codec::EncodedVideo* stream) {
  return VideoSource(stream, /*offline=*/true, 0.0);
}

VideoSource VideoSource::Online(const video::codec::EncodedVideo* stream,
                                double rate_multiplier,
                                fault::FaultInjector* faults) {
  VideoSource source(stream, /*offline=*/false,
                     rate_multiplier > 0 ? rate_multiplier : 1.0);
  source.faults_ = faults;
  return source;
}

StatusOr<VideoSource> VideoSource::StorageOffline(
    storage::VideoStorageService* vss, const std::string& name,
    int readahead_frames) {
  if (vss == nullptr) {
    return Status::InvalidArgument("storage source needs a service");
  }
  VR_ASSIGN_OR_RETURN(storage::CatalogEntry entry, vss->Describe(name));
  VideoSource source(nullptr, /*offline=*/true, 0.0);
  source.vss_ = vss;
  source.name_ = name;
  source.readahead_frames_ = std::max(1, readahead_frames);
  source.frame_count_ = entry.frame_count;
  return source;
}

int VideoSource::FrameCount() const {
  return stream_ != nullptr ? stream_->FrameCount() : frame_count_;
}

Status VideoSource::FillWindow() {
  if (window_ != nullptr && position_ >= window_first_ &&
      position_ < window_first_ + window_->FrameCount()) {
    return Status::Ok();
  }
  VR_ASSIGN_OR_RETURN(storage::VariantKey tier, vss_->BaseTier(name_));
  int count = std::min(readahead_frames_, frame_count_ - position_);
  VR_ASSIGN_OR_RETURN(storage::RangeRead range,
                      vss_->ReadRange(name_, tier, position_, count));
  window_ = std::move(range.video);
  window_first_ = range.first_frame;
  return Status::Ok();
}

StatusOr<const video::codec::EncodedFrame*> VideoSource::Next() {
  if (AtEnd()) return Status::OutOfRange("video source exhausted");
  if (!offline_) {
    if (!started_) {
      // Anchor pacing at the first read, not at construction.
      started_ = true;
      start_ = std::chrono::steady_clock::now();
    }
    // Throttle: frame i becomes available at start + i / (fps * multiplier).
    const double frame_seconds = 1.0 / (stream_->fps * rate_multiplier_);
    double seconds = position_ * frame_seconds;
    auto available_at =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
    // Clamp catch-up after a stall: a consumer that fell more than a few
    // frame periods behind resumes at the camera's rate instead of
    // bursting through the whole backlog (a live feed cannot replay what
    // the consumer slept through). Small lag still catches up, so paced
    // jitter keeps counting against the reader as before.
    const auto max_catchup =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(4.0 * frame_seconds));
    const auto now = std::chrono::steady_clock::now();
    if (now > available_at + max_catchup) {
      start_ += now - (available_at + max_catchup);
      available_at = now - max_catchup;
    }
    std::this_thread::sleep_until(available_at);
    if (faults_ != nullptr) {
      faults_->MaybeDelay(fault::Site::kRtpJitter);
      if (faults_->ShouldInject(fault::Site::kRtpLoss) &&
          last_delivered_ != nullptr) {
        // The channel lost this frame: freeze-frame conceal by repeating
        // the last delivered one. The stream still advances. The registry
        // counter is shared with the depacketizer's concealment path.
        static metrics::Counter& concealed =
            metrics::MetricsRegistry::Global().GetCounter(
                "vr_rtp_frames_concealed_total",
                "Dropped frames replaced by a freeze-frame repeat");
        concealed.Increment();
        ++position_;
        ++frames_degraded_;
        fault::NoteDegraded();
        return last_delivered_;
      }
    }
  }
  if (vss_ != nullptr) {
    VR_RETURN_IF_ERROR(FillWindow());
    return &window_->frames[static_cast<size_t>(position_++ - window_first_)];
  }
  last_delivered_ = &stream_->frames[static_cast<size_t>(position_)];
  ++position_;
  return last_delivered_;
}

Status VideoSource::Seek(int frame_index) {
  if (!offline_) {
    return Status::FailedPrecondition("online sources are forward-only");
  }
  if (frame_index < 0 || frame_index > FrameCount()) {
    return Status::OutOfRange("seek outside the stream");
  }
  position_ = frame_index;
  // Reset position-dependent state: a window that no longer covers the new
  // position would serve frames of the wrong index.
  if (window_ != nullptr &&
      (position_ < window_first_ ||
       position_ >= window_first_ + window_->FrameCount())) {
    window_.reset();
    window_first_ = 0;
  }
  return Status::Ok();
}

}  // namespace visualroad::systems
